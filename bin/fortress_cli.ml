(* fortress-cli: regenerate the paper's evaluation artefacts and explore
   the models from the command line. *)

open Cmdliner
module Systems = Fortress_model.Systems
module Step_level = Fortress_mc.Step_level
module Trial = Fortress_mc.Trial
module Table = Fortress_util.Table
module Figures = Fortress_exp.Figures
module Ablations = Fortress_exp.Ablations
module Validation = Fortress_exp.Validation

(* ---- shared arguments ---- *)

let alpha_arg =
  let doc = "Per-step direct-attack success probability (paper range 1e-5..1e-2)." in
  Arg.(value & opt float 1e-3 & info [ "alpha" ] ~docv:"ALPHA" ~doc)

let kappa_arg =
  let doc = "Indirect attack coefficient in [0,1]." in
  Arg.(value & opt float 0.5 & info [ "kappa" ] ~docv:"KAPPA" ~doc)

let np_arg =
  let doc = "Number of proxies in the FORTRESS tier." in
  Arg.(value & opt int 3 & info [ "np" ] ~docv:"NP" ~doc)

let points_arg =
  let doc = "Points on the alpha sweep." in
  Arg.(value & opt int 13 & info [ "points" ] ~docv:"N" ~doc)

let trials_arg ~default =
  let doc = "Monte-Carlo trials (0 disables MC columns)." in
  Arg.(value & opt int default & info [ "trials" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let jobs_arg =
  let doc =
    "Lanes for the Monte-Carlo trials: the calling domain plus up to N-1 \
     workers from a persistent process-wide domain pool, clamped to what the \
     machine can run. Results are bit-identical at every job count: trials \
     are partitioned by index, each trial's PRNG is derived from its index \
     (never from execution order), and outcomes are consumed in index order \
     at the join."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let launchpad_arg =
  let lp_conv =
    Arg.enum
      [ ("remaining", Systems.Remaining); ("full", Systems.Full); ("next-step", Systems.Next_step) ]
  in
  let doc = "Launch-pad discipline: remaining | full | next-step." in
  Arg.(value & opt lp_conv Systems.Remaining & info [ "launchpad" ] ~docv:"MODE" ~doc)

let system_arg =
  let sys_conv =
    Arg.enum (List.map (fun s -> (Systems.system_to_string s, s)) Systems.all_systems)
  in
  let doc = "System class: s0so | s1so | s0po | s1po | s2po | s2so." in
  Arg.(value & opt sys_conv Systems.S2_PO & info [ "system" ] ~docv:"SYSTEM" ~doc)

let print_table ~csv table =
  print_string (if csv then Table.to_csv table else Table.render table)

(* ---- observability plumbing ---- *)

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the structured event stream as JSON Lines to $(docv). Inspect it with the $(b,obs) subcommand.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ] ~doc:"Print the metrics registry when the run finishes.")

(* the (subscriber, flush-and-close) pair of [Sink.file] *)
let open_trace path =
  try Fortress_obs.Sink.file path
  with Sys_error msg ->
    Printf.eprintf "fortress-cli: cannot open trace file: %s\n" msg;
    exit 1

(* Run [f] against a sink wired to the requested consumers; the trace file
   is flushed and closed (and metrics printed) even when [f] raises. *)
let with_obs ~trace_out ~metrics f =
  let module Obs = Fortress_obs in
  let sink = Obs.Sink.create () in
  let registry = Obs.Metrics.create () in
  if metrics then ignore (Obs.Sink.attach sink (Obs.Sink.counting registry));
  let close_trace =
    match trace_out with
    | None -> Fun.id
    | Some path ->
        let sub, close = open_trace path in
        ignore (Obs.Sink.attach sink sub);
        close
  in
  Fun.protect
    ~finally:(fun () ->
      close_trace ();
      if metrics then print_string (Obs.Metrics.render registry))
    (fun () -> f sink)

(* ---- el ---- *)

let el_cmd =
  let run system alpha kappa np launchpad trials jobs =
    let analytic = Systems.expected_lifetime ~launchpad ~np system ~alpha ~kappa in
    Printf.printf "%s: analytic EL = %.6g unit time-steps (alpha=%g kappa=%g np=%d)\n"
      (Systems.system_to_string system)
      analytic alpha kappa np;
    if trials > 0 then begin
      let cfg = { Step_level.default with alpha; kappa; np; launchpad } in
      let res = Step_level.estimate ~jobs ~trials system cfg in
      Format.printf "%s: monte-carlo %a@." (Systems.system_to_string system) Trial.pp_result res
    end
  in
  let term = Term.(const run $ system_arg $ alpha_arg $ kappa_arg $ np_arg $ launchpad_arg
                   $ trials_arg ~default:0 $ jobs_arg) in
  Cmd.v (Cmd.info "el" ~doc:"Expected lifetime of one system at one operating point.") term

(* ---- figures ---- *)

let plot_arg =
  let doc = "Render an ASCII log-log plot instead of a table." in
  Arg.(value & flag & info [ "plot" ] ~doc)

let figure1_cmd =
  let run points kappa trials csv plot =
    if plot then print_string (Figures.figure1_plot ~kappa ())
    else print_table ~csv (Figures.figure1_table ~points ~kappa ~mc_trials:trials ())
  in
  let term =
    Term.(const run $ points_arg $ kappa_arg $ trials_arg ~default:0 $ csv_arg $ plot_arg)
  in
  Cmd.v
    (Cmd.info "figure1"
       ~doc:"Regenerate Figure 1: expected lifetime comparison across all five systems.")
    term

let figure2_cmd =
  let run points csv plot =
    if plot then print_string (Figures.figure2_plot ())
    else print_table ~csv (Figures.figure2_table ~points ())
  in
  let term = Term.(const run $ points_arg $ csv_arg $ plot_arg) in
  Cmd.v
    (Cmd.info "figure2" ~doc:"Regenerate Figure 2: S2PO expected lifetime as kappa varies.")
    term

let ordering_cmd =
  let run points csv =
    print_table ~csv (Figures.ordering_table ~points ());
    let r = Figures.ordering ~points () in
    let yes b = if b then "holds" else "FAILS" in
    Printf.printf "\nsummary chain (paper section 6):\n";
    Printf.printf "  S0PO -> S2PO for kappa > 0:    %s\n" (yes r.Figures.s0po_beats_s2po);
    Printf.printf "  S2PO -> S1PO at kappa = 0.5:   %s\n"
      (yes r.Figures.s2po_beats_s1po_at_low_kappa);
    Printf.printf "  S1PO -> S1SO:                  %s\n" (yes r.Figures.s1po_beats_s1so);
    Printf.printf "  S1SO -> S0SO:                  %s\n" (yes r.Figures.s1so_beats_s0so)
  in
  let term = Term.(const run $ points_arg $ csv_arg) in
  Cmd.v (Cmd.info "ordering" ~doc:"Check the paper's summary ordering across the alpha range.") term

(* ---- validate ---- *)

let validate_cmd =
  let chi_arg =
    Arg.(value & opt (some int) None
         & info [ "chi" ] ~docv:"CHI"
             ~doc:"Key-space size (default 4096; 256 with $(b,--protocol)).")
  in
  let omega_arg =
    Arg.(value & opt (some int) None
         & info [ "omega" ] ~docv:"OMEGA"
             ~doc:"Probes per channel per step (default 16; 8 with $(b,--protocol)).")
  in
  let protocol_arg =
    Arg.(value & flag
         & info [ "protocol" ]
             ~doc:"Validate the full packet-level protocol stack instead of the samplers.")
  in
  let run chi omega kappa trials jobs csv protocol trace_out metrics =
    let chi = Option.value chi ~default:(if protocol then 256 else 4096) in
    let omega = Option.value omega ~default:(if protocol then 8 else 16) in
    with_obs ~trace_out ~metrics (fun sink ->
        if protocol then begin
          let line =
            Validation.protocol ~sink ~jobs ~trials:(min trials 100) ~chi ~omega ~kappa ()
          in
          print_table ~csv (Validation.protocol_table line);
          Printf.printf "\noperating point: chi=%d omega=%d kappa=%g\n" chi omega kappa;
          Printf.printf "stack agreement: %s\n"
            (if Validation.protocol_agrees line then "holds" else "FAILS")
        end
        else begin
          let lines = Validation.run ~sink ~jobs ~chi ~omega ~kappa ~trials () in
          print_table ~csv (Validation.table lines);
          Printf.printf "\nmax |step-MC - analytic| / analytic = %.3f\n"
            (Validation.max_relative_error lines)
        end)
  in
  let term =
    Term.(const run $ chi_arg $ omega_arg $ kappa_arg $ trials_arg ~default:400 $ jobs_arg
          $ csv_arg $ protocol_arg $ trace_out_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Cross-validate analytic, step-level and probe-level estimates of every system.")
    term

(* ---- ablations ---- *)

let ablation_cmd =
  let which_arg =
    let doc = "Which ablation: np | chi | launchpad | kappa | diversity | overhead | budget | degradation." in
    Arg.(required & pos 0 (some (Arg.enum
      [ ("np", `Np); ("chi", `Chi); ("launchpad", `Launchpad); ("kappa", `Kappa);
        ("diversity", `Diversity); ("overhead", `Overhead); ("budget", `Budget);
        ("degradation", `Degradation) ])) None
      & info [] ~docv:"WHICH" ~doc)
  in
  let run which csv =
    let table =
      match which with
      | `Np -> Ablations.proxy_count_table ()
      | `Chi -> Ablations.entropy_table ()
      | `Launchpad -> Ablations.launchpad_table ()
      | `Kappa -> Ablations.detection_table ()
      | `Diversity -> Ablations.limited_diversity_table ()
      | `Overhead -> Ablations.overhead_table ()
      | `Budget -> Ablations.budget_split_table ()
      | `Degradation -> Fortress_exp.Degradation.table (Fortress_exp.Degradation.run ())
    in
    print_table ~csv table
  in
  let term = Term.(const run $ which_arg $ csv_arg) in
  Cmd.v (Cmd.info "ablation" ~doc:"Run one of the design-choice ablations and extensions (A1-A8).") term

(* ---- podc ---- *)

let podc_cmd =
  let run points csv =
    print_table ~csv (Figures.podc_claim_table ~points ());
    Printf.printf "\nclaim from Ezhilchelvan et al. (OPODIS 2009): %s\n"
      (if Figures.podc_claim_holds ~points () then
         "holds — a fortified PB system (kappa = 0, recovery only) is at least as resilient as 4-replica SMR with proactive recovery"
       else "FAILS")
  in
  let term = Term.(const run $ points_arg $ csv_arg) in
  Cmd.v
    (Cmd.info "podc"
       ~doc:"Re-check the OPODIS 2009 claim the paper builds on (section 1).")
    term

(* ---- shapes ---- *)

let shapes_cmd =
  let run alpha kappa trials =
    let module Distributions = Fortress_exp.Distributions in
    let profiles =
      List.map
        (fun system -> Distributions.profile ~trials system ~alpha ~kappa)
        [ Systems.S1_PO; Systems.S2_PO; Systems.S1_SO; Systems.S0_SO ]
    in
    print_string (Fortress_util.Table.render (Distributions.table profiles))
  in
  let term = Term.(const run $ alpha_arg $ kappa_arg $ trials_arg ~default:4000) in
  Cmd.v
    (Cmd.info "shapes"
       ~doc:"Lifetime distribution shapes: memoryless PO vs exhaustion-bounded SO.")
    term

(* ---- simulate ---- *)

let simulate_cmd =
  let module Deployment = Fortress_core.Deployment in
  let module Obfuscation = Fortress_core.Obfuscation in
  let module Client = Fortress_core.Client in
  let module Proxy = Fortress_core.Proxy in
  let module Campaign = Fortress_attack.Campaign in
  let module Keyspace = Fortress_defense.Keyspace in
  let module Engine = Fortress_sim.Engine in
  let module Trace = Fortress_sim.Trace in
  let service_arg =
    let all = List.map fst Fortress_replication.Services.all in
    let doc = Printf.sprintf "Service to replicate: %s." (String.concat " | " all) in
    Arg.(value & opt string "kv" & info [ "service" ] ~docv:"NAME" ~doc)
  in
  let np_sim = Arg.(value & opt int 3 & info [ "proxies" ] ~docv:"NP" ~doc:"Proxies (0 = bare S1).") in
  let ns_sim = Arg.(value & opt int 3 & info [ "servers" ] ~docv:"NS" ~doc:"Primary-backup servers.") in
  let steps_arg =
    Arg.(value & opt int 20 & info [ "steps" ] ~docv:"N" ~doc:"Unit time-steps to simulate.")
  in
  let mode_arg =
    Arg.(value & opt (Arg.enum [ ("po", Obfuscation.PO); ("so", Obfuscation.SO) ]) Obfuscation.PO
         & info [ "mode" ] ~docv:"MODE" ~doc:"Obfuscation schedule: po | so.")
  in
  let omega_sim =
    Arg.(value & opt int 0 & info [ "attack-omega" ] ~docv:"N"
           ~doc:"Attack intensity (0 disables the campaign).")
  in
  let chi_sim =
    Arg.(value & opt int 65536 & info [ "chi" ] ~docv:"N" ~doc:"Randomization key-space size.")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let rate_arg =
    Arg.(value & opt int 4 & info [ "requests-per-step" ] ~docv:"N" ~doc:"Client workload rate.")
  in
  let trace_arg =
    Arg.(value & opt int 10 & info [ "trace" ] ~docv:"N" ~doc:"Trace lines to print at the end.")
  in
  let jobs_sim =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Accepted for interface uniformity with the Monte-Carlo \
                   subcommands; a single deployment simulation is one event \
                   loop on one domain, so the output is identical for every \
                   value.")
  in
  let run service np ns steps mode omega chi seed rate kappa trace_lines jobs trace_out
      metrics =
    ignore (jobs : int);
    match Fortress_replication.Services.find service with
    | None ->
        prerr_endline ("unknown service: " ^ service);
        exit 1
    | Some svc ->
        let period = 100.0 in
        let deployment =
          Deployment.create
            { Deployment.default_config with np; ns; service = svc; service_name = service;
              keyspace = Keyspace.of_size chi; seed }
        in
        let engine = Deployment.engine deployment in
        let close_trace =
          match trace_out with
          | None -> Fun.id
          | Some path ->
              let sub, close = open_trace path in
              ignore (Fortress_obs.Sink.attach (Engine.sink engine) sub);
              close
        in
        ignore (Obfuscation.attach deployment ~mode ~period);
        let client = Deployment.new_client deployment ~name:"workload" in
        let served = ref 0 and sent = ref 0 in
        ignore
          (Engine.every engine ~period:(period /. float_of_int (max rate 1))
             ~until:(period *. float_of_int steps) (fun () ->
               incr sent;
               ignore
                 (Client.submit client
                    ~cmd:(Printf.sprintf "put k%d v%d" !sent !sent)
                    ~on_response:(fun _ -> incr served))));
        let compromised_at =
          if omega > 0 then begin
            let campaign =
              Campaign.launch deployment
                (Campaign.make_config ~omega ~kappa ~period ~seed:(seed + 1) ())
            in
            Campaign.run_until_compromise campaign ~max_steps:steps
          end
          else begin
            Engine.run ~until:(period *. float_of_int steps) engine;
            None
          end
        in
        Printf.printf "simulated %d unit time-steps (service=%s np=%d ns=%d mode=%s chi=%d)\n"
          steps service np ns (Obfuscation.mode_to_string mode) chi;
        (match compromised_at with
        | Some step -> Printf.printf "system COMPROMISED during step %d\n" step
        | None -> Printf.printf "system survived the horizon\n");
        Printf.printf "workload: %d submitted, %d served\n" !sent !served;
        Array.iter
          (fun proxy ->
            Printf.printf "proxy %d: %d forwarded, %d invalid logged, %d sources blocked\n"
              (Proxy.index proxy) (Proxy.forwarded proxy) (Proxy.invalid_observed proxy)
              (List.length (Proxy.blocked_sources proxy)))
          (Deployment.proxies deployment);
        if trace_lines > 0 then begin
          print_endline "trace tail:";
          print_string (Trace.dump ~limit:trace_lines (Engine.trace engine))
        end;
        close_trace ();
        if metrics then print_string (Fortress_obs.Metrics.render (Engine.metrics engine))
  in
  let term =
    Term.(const run $ service_arg $ np_sim $ ns_sim $ steps_arg $ mode_arg $ omega_sim
          $ chi_sim $ seed_arg $ rate_arg $ kappa_arg $ trace_arg $ jobs_sim $ trace_out_arg
          $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Drive a configurable FORTRESS deployment end to end and summarise what happened.")
    term

(* ---- inject ---- *)

let inject_cmd =
  let module Plan = Fortress_faults.Plan in
  let module Inject = Fortress_exp.Inject in
  let plan_arg =
    let doc =
      "Fault plan: none | lossy | partition | crashy | chaos | all (the whole escalation ladder)."
    in
    Arg.(value & opt string "chaos" & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let chi_arg =
    Arg.(value & opt int 256 & info [ "chi" ] ~docv:"CHI" ~doc:"Key-space size.")
  in
  let omega_arg =
    Arg.(value & opt int 8 & info [ "omega" ] ~docv:"OMEGA" ~doc:"Probes per channel per step.")
  in
  let steps_arg =
    Arg.(value & opt int 400 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Campaign horizon in unit time-steps.")
  in
  let strategy_arg =
    let doc =
      "Adaptive attack strategy: oblivious | stale-key-rush | partition-follower | \
       probe-pacer (rate-limits probes below the proxies' suspicion window after a source \
       burns). Omit for the fixed-schedule attacker; oblivious is bit-identical to it and \
       reports dEL 0."
    in
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"NAME" ~doc)
  in
  let defender_arg =
    let doc =
      "Adaptive defender: static | alarm-rekey | threshold-tightener | mdp (the \
       value-iteration lookup-table policy). Omit for the fixed defense schedule; static \
       observes through the same telemetry plane but never acts and is bit-identical to it."
    in
    Arg.(value & opt (some string) None & info [ "defender" ] ~docv:"NAME" ~doc)
  in
  let game_arg =
    Arg.(value & flag
         & info [ "game" ]
             ~doc:"Run the 2x2 {oblivious, stale-key-rush} x {static, alarm-rekey} \
                   attacker/defender cross over the selected plans on paired seeds, with \
                   the MDP model-level lifetimes as the benchmark bound. Ignores \
                   --strategy/--defender/--smr/--timeline.")
  in
  let smr_arg =
    Arg.(value & flag
         & info [ "smr" ]
             ~doc:"Run the plan on the 1-tier SMR stack (S0) instead of FORTRESS (S2).")
  in
  let load_arg =
    Arg.(value & opt (some string) None
         & info [ "load" ] ~docv:"SPEC"
             ~doc:"Attach the production-scale workload plane to every trial: \
                   $(b,poisson:rate=R) | $(b,uniform:period=P) | \
                   $(b,bursty:rate=R,burst=RB[,on=25][,off=100]) (open-loop aggregated \
                   clients) | $(b,closed:clients=N[,think=50]) (closed-loop virtual \
                   sessions); every kind also takes $(b,,batch=B) and $(b,,timeout=T). \
                   Adds a service-quality table (availability + p50/p99/p999 latency) per \
                   plan; on the SMR stack this is the only workload, so availability \
                   becomes a measured quantity instead of n/a. Off by default; attaching \
                   load never changes attacker or defense randomness.")
  in
  let timeline_arg =
    Arg.(value & opt (some float) None
         & info [ "timeline" ] ~docv:"WIDTH"
             ~doc:"Pool every trial's event stream into a windowed timeline ($(docv) virtual-time units per window, e.g. 100 = one attack step), score the defender signals over it and print the fault-aligned signal table. Off by default; attaching it does not change any other output.")
  in
  let causal_trace_arg =
    Arg.(value & opt (some string) None
         & info [ "causal-trace" ] ~docv:"FILE"
             ~doc:"Turn on causal message tracing (client request \u{2192} net.send \u{2192} net.deliver \u{2192} defense actuation span trees, per-trial trace ids derived from the trial index) and write the merged Perfetto/Chrome trace \u{2014} spans, fault instants, signal.alarm events and send\u{2192}deliver flow arrows \u{2014} to $(docv). Also reports per-plan detection/reaction latency tables. Off by default; with it on the artifact and all tables are bit-identical at every $(b,--jobs) count.")
  in
  let causal_profile_arg =
    Arg.(value & flag
         & info [ "causal-profile" ]
             ~doc:"Add wall-clock profiler sample lanes to the $(b,--causal-trace) artifact. Wall-clock timings are nondeterministic, so leave this off when byte-comparing artifacts across job counts.")
  in
  let run plan trials seed chi omega kappa steps jobs strategy defender game smr load
      timeline causal_trace causal_profile csv trace_out metrics =
    (match timeline with
    | Some w when not (w > 0.0) ->
        Printf.eprintf "fortress-cli: --timeline width must be positive (got %g)\n" w;
        exit 2
    | _ -> ());
    let plans =
      match plan with
      | "all" -> List.filter (fun (p : Plan.t) -> p.Plan.name <> "none") Plan.builtins
      | name -> (
          match Plan.find name with
          | Some p -> [ p ]
          | None ->
              Printf.eprintf "fortress-cli: unknown fault plan %S (try none | lossy | partition | crashy | chaos | all)\n" name;
              exit 2)
    in
    let strategy =
      match strategy with
      | None -> None
      | Some name -> (
          match Fortress_attack.Adaptive.Strategy.find name with
          | Some s -> Some s
          | None ->
              Printf.eprintf "fortress-cli: unknown strategy %S (try %s)\n" name
                (String.concat " | " Fortress_attack.Adaptive.Strategy.names);
              exit 2)
    in
    let defender =
      match defender with
      | None -> None
      | Some name -> (
          match Inject.find_defender name with
          | Some d -> Some d
          | None ->
              Printf.eprintf "fortress-cli: unknown defender %S (try %s)\n" name
                (String.concat " | " Inject.defender_names);
              exit 2)
    in
    let load =
      match load with
      | None -> None
      | Some s -> (
          match Fortress_load.Workload.spec_of_string s with
          | Ok spec -> Some spec
          | Error e ->
              Printf.eprintf "fortress-cli: bad --load spec %S: %s\n" s e;
              exit 2)
    in
    if game then begin
      let config = { Inject.default_config with trials; seed; chi; omega; kappa;
                     max_steps = steps; jobs } in
      let g = Inject.run_game ~config ~plans () in
      Printf.printf "2x2 attacker/defender game (plan %s):\n" plan;
      print_table ~csv (Inject.game_table g);
      Printf.printf
        "\nMDP benchmark (model-level expected lifetime): optimal %.1f, static %.1f\n"
        g.Inject.mdp_optimal g.Inject.mdp_static;
      Printf.printf "operating point: chi=%d omega=%d kappa=%g trials=%d seed=%d\n" chi
        omega kappa trials seed;
      exit 0
    end;
    with_obs ~trace_out ~metrics (fun sink ->
        let causal = causal_trace <> None in
        (* the causal artifact captures the pooled stream in memory; the
           profiler lanes (wall clock, nondeterministic) only join when
           explicitly requested *)
        let capture =
          match causal_trace with
          | None -> None
          | Some path ->
              if causal_profile then begin
                Fortress_prof.Profiler.set_sample_capacity 65536;
                Fortress_prof.Profiler.reset ();
                Fortress_prof.Profiler.enable ()
              end;
              let sub, read = Fortress_obs.Sink.memory ~capacity:(1 lsl 20) () in
              ignore (Fortress_obs.Sink.attach sink sub);
              Some (path, read)
        in
        let config = { Inject.default_config with trials; seed; chi; omega; kappa;
                       max_steps = steps; jobs; load; telemetry = timeline; causal } in
        let stack = if smr then `Smr else `Fortress in
        let report = Inject.run ~sink ?strategy ?defender ~stack ~config ~plans () in
        print_table ~csv (Inject.table report);
        print_newline ();
        print_table ~csv (Inject.fault_breakdown report);
        (match Inject.load_table report with
        | None -> ()
        | Some tbl ->
            Printf.printf "\nservice quality under load (%s):\n"
              (match load with
              | Some spec -> Fortress_load.Workload.spec_to_string spec
              | None -> "");
            print_table ~csv tbl);
        (match report.Inject.adapt with
        | None -> ()
        | Some adapt ->
            Printf.printf "\nadaptive vs oblivious (strategy %s):\n" adapt.Inject.strategy_name;
            print_table ~csv (Inject.adapt_table adapt));
        (match report.Inject.defend with
        | None -> ()
        | Some defend ->
            Printf.printf "\ndefended vs static (defender %s):\n" defend.Inject.defender_name;
            print_table ~csv (Inject.defend_table defend));
        List.iter
          (fun (r : Inject.run) ->
            match Inject.timeline_table r with
            | None -> ()
            | Some tbl ->
                Printf.printf "\nsignal timeline (%s), %g vt per window:\n" r.Inject.plan_name
                  (Option.value ~default:0.0 timeline);
                print_table ~csv tbl;
                (match r.Inject.telemetry with
                | Some (_, signals) when Fortress_obs.Signal.alarms signals <> [] ->
                    Printf.printf "detector alarms (%s):\n" r.Inject.plan_name;
                    Option.iter (print_table ~csv) (Inject.timeline_alarm_table r)
                | _ -> ()))
          (report.Inject.baseline :: report.Inject.runs);
        List.iter
          (fun (r : Inject.run) ->
            match Inject.latency_table r with
            | None -> ()
            | Some tbl ->
                Printf.printf "\ndetection/reaction latency (%s), virtual time:\n"
                  r.Inject.plan_name;
                print_table ~csv tbl)
          (report.Inject.baseline :: report.Inject.runs);
        Printf.printf "\noperating point: chi=%d omega=%d kappa=%g trials=%d seed=%d%s%s%s\n"
          chi omega kappa trials seed
          (match strategy with
          | None -> ""
          | Some s -> " strategy=" ^ s.Fortress_attack.Adaptive.Strategy.name)
          (match defender with
          | None -> ""
          | Some d -> " defender=" ^ d.Fortress_defense.Controller.Strategy.name)
          (if smr then " stack=smr" else "");
        (* stable one-line-per-plan digests, for reproducibility diffing *)
        List.iter
          (fun (r : Inject.run) -> Printf.printf "digest %s %s\n" r.Inject.plan_name r.Inject.digest)
          (report.Inject.baseline :: report.Inject.runs);
        if List.length plans > 1 then
          Printf.printf "escalation ordering (EL non-increasing): %s\n"
            (if Inject.monotone_non_increasing report then "holds" else "FAILS");
        match capture with
        | None -> ()
        | Some (path, read) ->
            let samples =
              if causal_profile then begin
                Fortress_prof.Profiler.disable ();
                Fortress_prof.Profiler.samples ()
              end
              else []
            in
            Fortress_prof.Trace_export.(write ~path (make ~samples (read ())));
            Printf.printf "causal trace written to %s (open at https://ui.perfetto.dev)\n"
              path)
  in
  let term =
    Term.(const run $ plan_arg $ trials_arg ~default:Fortress_exp.Inject.default_config.Fortress_exp.Inject.trials
          $ seed_arg $ chi_arg $ omega_arg $ kappa_arg $ steps_arg $ jobs_arg $ strategy_arg
          $ defender_arg $ game_arg $ smr_arg $ load_arg $ timeline_arg $ causal_trace_arg
          $ causal_profile_arg $ csv_arg $ trace_out_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Run protocol-level attack campaigns under a named fault plan and report expected-lifetime and availability deltas against the fault-free baseline.")
    term

(* ---- load ---- *)

let load_cmd =
  let module Plan = Fortress_faults.Plan in
  let module Inject = Fortress_exp.Inject in
  let module Load_compare = Fortress_exp.Load_compare in
  let module Workload = Fortress_load.Workload in
  let spec_arg =
    Arg.(value & opt string "closed:clients=32,think=50"
         & info [ "spec" ] ~docv:"SPEC"
             ~doc:"Workload to drive both stacks with: $(b,poisson:rate=R) | \
                   $(b,uniform:period=P) | $(b,bursty:rate=R,burst=RB[,on=25][,off=100]) | \
                   $(b,closed:clients=N[,think=50]); every kind also takes $(b,,batch=B) \
                   and $(b,,timeout=T).")
  in
  let plan_arg =
    Arg.(value & opt string "lossy,crashy"
         & info [ "plan" ] ~docv:"PLANS"
             ~doc:"Comma-separated fault plans for the PODC comparison (none is always the \
                   baseline); $(b,all) selects the whole escalation ladder.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let chi_arg =
    Arg.(value & opt int 256 & info [ "chi" ] ~docv:"CHI" ~doc:"Key-space size.")
  in
  let omega_arg =
    Arg.(value & opt int 8 & info [ "omega" ] ~docv:"OMEGA" ~doc:"Probes per channel per step.")
  in
  let steps_arg =
    Arg.(value & opt int 400 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Campaign horizon in unit time-steps.")
  in
  let degradation_arg =
    Arg.(value & opt (some string) None
         & info [ "degradation" ] ~docv:"OMEGAS"
             ~doc:"Also sweep attack intensity (comma-separated probe budgets, e.g. \
                   $(b,0,4,16,64)) on both stacks with the fault plan held at none, and \
                   print the service-degradation surface.")
  in
  let run spec plan trials seed chi omega kappa steps jobs degradation csv =
    let spec =
      match Workload.spec_of_string spec with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "fortress-cli: bad --spec %S: %s\n" spec e;
          exit 2
    in
    let plans =
      match plan with
      | "all" -> List.filter (fun (p : Plan.t) -> p.Plan.name <> "none") Plan.builtins
      | names ->
          List.map
            (fun name ->
              match Plan.find name with
              | Some p -> p
              | None ->
                  Printf.eprintf
                    "fortress-cli: unknown fault plan %S (try none | lossy | partition | \
                     crashy | chaos | all)\n"
                    name;
                  exit 2)
            (List.filter
               (fun n -> n <> "" && n <> "none")
               (String.split_on_char ',' names))
    in
    let config = { Inject.default_config with Inject.trials; seed; chi; omega; kappa;
                   max_steps = steps; jobs } in
    let p = Load_compare.podc ~config ~plans spec in
    Printf.printf "PODC comparison under matched fault plans (load %s):\n"
      (Workload.spec_to_string spec);
    print_table ~csv (Load_compare.podc_table p);
    (match degradation with
    | None -> ()
    | Some omegas ->
        let omegas =
          List.map
            (fun s ->
              match int_of_string_opt (String.trim s) with
              | Some i when i >= 0 -> i
              | _ ->
                  Printf.eprintf "fortress-cli: bad --degradation omega %S\n" s;
                  exit 2)
            (List.filter (fun s -> s <> "") (String.split_on_char ',' omegas))
        in
        let points = Load_compare.degradation ~config ~omegas spec in
        Printf.printf "\nservice degradation vs attack intensity (plan none):\n";
        print_table ~csv (Load_compare.degradation_table points));
    Printf.printf "\noperating point: chi=%d omega=%d kappa=%g trials=%d seed=%d\n"
      chi omega kappa trials seed
  in
  let term =
    Term.(const run $ spec_arg $ plan_arg
          $ trials_arg ~default:Fortress_exp.Inject.default_config.Fortress_exp.Inject.trials
          $ seed_arg $ chi_arg $ omega_arg $ kappa_arg $ steps_arg $ jobs_arg
          $ degradation_arg $ csv_arg)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive both stacks (FORTRESS and SMR) with a production-scale workload under \
             matched fault plans and attacker entropy, reporting expected lifetime, \
             availability and tail latency per stack \u{2014} the PODC comparison at the \
             service level. Bit-identical at any --jobs count.")
    term

(* ---- obs ---- *)

let obs_cmd =
  let module Summary = Fortress_obs.Summary in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE" ~doc:"JSONL trace file written by $(b,--trace-out).")
  in
  let opt_int name doc = Arg.(value & opt (some int) None & info [ name ] ~docv:"N" ~doc) in
  let omega_obs = opt_int "omega" "Probes per channel per step the trace was recorded at." in
  let chi_obs = opt_int "chi" "Key-space size the trace was recorded at." in
  let run file omega chi kappa csv =
    let summary = Summary.of_file file in
    if csv then print_string (Table.to_csv (Summary.table summary))
    else print_string (Summary.render summary);
    match (omega, chi) with
    | Some omega, Some chi ->
        let checks = Summary.consistency ~omega ~chi ~kappa summary in
        print_newline ();
        print_table ~csv (Summary.check_table checks);
        if List.for_all (fun c -> c.Summary.ok) checks then
          print_endline "\ntrace consistent with the analytic per-step laws"
        else begin
          print_endline "\ntrace INCONSISTENT with the analytic per-step laws";
          exit 1
        end
    | Some _, None | None, Some _ ->
        prerr_endline "consistency check needs both --omega and --chi";
        exit 2
    | None, None -> ()
  in
  let term = Term.(const run $ file_arg $ omega_obs $ chi_obs $ kappa_arg $ csv_arg) in
  Cmd.v
    (Cmd.info "obs"
       ~doc:"Summarise a JSONL event trace; with --omega/--chi, cross-check measured per-step rates against the analytic laws.")
    term

(* ---- timeline ---- *)

let timeline_cmd =
  let module Obs = Fortress_obs in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE" ~doc:"JSONL trace file written by $(b,--trace-out).")
  in
  let width_arg =
    Arg.(value & opt float 100.0
         & info [ "width" ] ~docv:"VT"
             ~doc:"Window width in virtual-time units (100 = one attack step).")
  in
  let capacity_arg =
    Arg.(value & opt int 512
         & info [ "capacity" ] ~docv:"N" ~doc:"Windows retained in the ring.")
  in
  let openmetrics_arg =
    Arg.(value & opt (some string) None
         & info [ "openmetrics" ] ~docv:"FILE"
             ~doc:"Write the OpenMetrics text exposition of the reconstructed metrics, the timeline and the final signal state to $(docv).")
  in
  let alarms_only_arg =
    Arg.(value & flag
         & info [ "alarms-only" ] ~doc:"Print only the detector-alarm table.")
  in
  let run file width capacity openmetrics alarms_only csv =
    if not (width > 0.0) then begin
      Printf.eprintf "fortress-cli: --width must be positive (got %g)\n" width;
      exit 2
    end;
    if capacity <= 0 then begin
      Printf.eprintf "fortress-cli: --capacity must be positive (got %d)\n" capacity;
      exit 2
    end;
    let registry = Obs.Metrics.create () in
    let timeline = Obs.Timeline.create ~capacity ~registry ~width () in
    let sink = Obs.Sink.create () in
    ignore (Obs.Sink.attach sink (Obs.Sink.counting registry));
    ignore (Obs.Sink.attach sink (Obs.Timeline.subscriber timeline));
    let malformed = ref 0 in
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Obs.Sink.parse_line line with
              | Ok (time, ev) -> Obs.Sink.emit sink ~time ev
              | Error _ -> incr malformed
          done
        with End_of_file -> ());
    Obs.Timeline.finish timeline;
    let signals = Obs.Signal.of_timeline ~registry timeline in
    let retained = List.length (Obs.Timeline.windows timeline) in
    Printf.printf "trace %s: %d events in %d windows of %g vt (%d retained, %d late-dropped%s)\n"
      file
      (Obs.Timeline.events_seen timeline)
      (Obs.Timeline.window_count timeline)
      width retained
      (Obs.Timeline.dropped timeline)
      (if !malformed > 0 then Printf.sprintf ", %d malformed lines" !malformed else "");
    (match Obs.Metrics.find_histogram registry "timeline.window_events" with
    | Some h ->
        let v = Obs.Metrics.histogram_value h in
        let pct q =
          match Obs.Metrics.quantile v q with Some x -> Printf.sprintf "%.4g" x | None -> "-"
        in
        Printf.printf "events/window: p50=%s p90=%s p99=%s\n" (pct 0.5) (pct 0.9) (pct 0.99)
    | None -> ());
    if not alarms_only then begin
      print_newline ();
      print_table ~csv (Obs.Signal.table ~timeline signals)
    end;
    let alarms = Obs.Signal.alarms signals in
    if alarms = [] then print_endline "\nno detector alarms"
    else begin
      Printf.printf "\ndetector alarms (%d):\n" (List.length alarms);
      print_table ~csv (Obs.Signal.alarm_table signals)
    end;
    (* latest raw signal values, read back through the registry gauges *)
    Printf.printf "final signals:%s\n"
      (String.concat ""
         (List.map
            (fun k ->
              Printf.sprintf " %s=%.4g" (Obs.Signal.short_name k)
                (Obs.Metrics.find_gauge registry ("signal." ^ Obs.Signal.short_name k)))
            Obs.Signal.all));
    match openmetrics with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Openmetrics.render ~metrics:registry ~timeline ~signals ());
        close_out oc;
        Printf.printf "openmetrics exposition written to %s\n" path
  in
  let term =
    Term.(const run $ file_arg $ width_arg $ capacity_arg $ openmetrics_arg $ alarms_only_arg
          $ csv_arg)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Aggregate a JSONL event trace into fixed-width virtual-time windows, score the defender signals (EWMA + CUSUM burst detection) and render the windowed series, detector alarms and OpenMetrics exposition.")
    term

(* ---- trace ---- *)

let trace_cmd =
  let module Obs = Fortress_obs in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"JSONL trace file written by $(b,inject --trace-out) (with \
                   $(b,--causal-trace) on for span parentage and latency chains).")
  in
  let limit_arg =
    Arg.(value & opt int 20
         & info [ "limit" ] ~docv:"N" ~doc:"Rows in the critical-path table.")
  in
  let openmetrics_arg =
    Arg.(value & opt (some string) None
         & info [ "openmetrics" ] ~docv:"FILE"
             ~doc:"Write the OpenMetrics exposition of the latency summaries to $(docv).")
  in
  let run file limit openmetrics csv =
    let malformed = ref 0 in
    let events = ref [] in
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Obs.Sink.parse_line line with
              | Ok tev -> events := tev :: !events
              | Error _ -> incr malformed
          done
        with End_of_file -> ());
    let events = List.rev !events in
    let latency = Obs.Latency.of_events events in
    Printf.printf "trace %s: %d events, %d closed latency chains%s\n" file
      (List.length events) (Obs.Latency.total latency)
      (if !malformed > 0 then Printf.sprintf ", %d malformed lines" !malformed else "");
    Printf.printf "\ndetection/reaction latency (virtual time):\n";
    print_table ~csv (Obs.Latency.table latency);
    if Obs.Latency.total latency > 0 then begin
      Printf.printf "\nclosed chains:\n";
      print_table ~csv (Obs.Latency.chain_table latency)
    end;
    Printf.printf "\ncritical paths (causal span trees by elapsed virtual time):\n";
    print_table ~csv (Obs.Latency.critical_path_table ~limit events);
    match openmetrics with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Openmetrics.render ~latency ());
        close_out oc;
        Printf.printf "openmetrics exposition written to %s\n" path
  in
  let term = Term.(const run $ file_arg $ limit_arg $ openmetrics_arg $ csv_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a JSONL event trace offline: extract the detection/reaction/stall-rekey latency chains, summarise them as distributions and rank the causal span trees by critical-path elapsed time.")
    term

(* ---- prof ---- *)

let prof_cmd =
  let module Profiling = Fortress_exp.Profiling in
  let module Json = Fortress_obs.Json in
  let outdir_arg =
    Arg.(value & opt string "prof-artifacts" & info [ "outdir" ] ~docv:"DIR"
           ~doc:"Directory for trace.json and profile.json.")
  in
  let target_arg =
    Arg.(value & opt float 0.05 & info [ "target" ] ~docv:"REL"
           ~doc:"Target relative ci95 half-width (0.05 = ±5%).")
  in
  let batch_arg =
    Arg.(value & opt int 25 & info [ "batch" ] ~docv:"N"
           ~doc:"Trials per convergence checkpoint.")
  in
  let early_stop_arg =
    Arg.(value & flag
         & info [ "early-stop" ] ~doc:"Stop each class at its first converged checkpoint.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let chi_arg =
    Arg.(value & opt int 256 & info [ "chi" ] ~docv:"CHI" ~doc:"Key-space size.")
  in
  let omega_arg =
    Arg.(value & opt int 8 & info [ "omega" ] ~docv:"OMEGA" ~doc:"Probes per channel per step.")
  in
  let run trials seed target batch early_stop jobs outdir chi omega kappa =
    let t =
      Profiling.run ~trials ~seed ~target_rel:target ~batch ~early_stop ~jobs ~chi ~omega
        ~kappa ()
    in
    print_string (Profiling.render t);
    (try if not (Sys.is_directory outdir) then failwith (outdir ^ " is not a directory")
     with Sys_error _ -> Sys.mkdir outdir 0o755);
    let write name json =
      let path = Filename.concat outdir name in
      Fortress_prof.Trace_export.write ~path json;
      Printf.printf "wrote %s\n" path
    in
    write "trace.json" t.Profiling.trace;
    write "profile.json" t.Profiling.profile;
    Printf.printf "open trace.json at https://ui.perfetto.dev (or chrome://tracing)\n"
  in
  let term =
    Term.(const run $ trials_arg ~default:200 $ seed_arg $ target_arg $ batch_arg
          $ early_stop_arg $ jobs_arg $ outdir_arg $ chi_arg $ omega_arg $ kappa_arg)
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:"Profile the simulation hot paths and report Monte-Carlo convergence per system class; writes Chrome trace.json + profile.json.")
    term

(* ---- report ---- *)

let report_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the report to FILE instead of stdout.")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Include Monte-Carlo validation and campaign ablations (slower).")
  in
  let run output full =
    let module Report = Fortress_exp.Report in
    let fidelity = if full then Report.Full else Report.Quick in
    let body = Report.generate ~fidelity () in
    match output with
    | None -> print_string body
    | Some path ->
        let oc = open_out path in
        output_string oc body;
        close_out oc;
        Printf.printf "report written to %s (%d bytes)\n" path (String.length body)
  in
  let term = Term.(const run $ out_arg $ full_arg) in
  Cmd.v
    (Cmd.info "report" ~doc:"Generate the full markdown reproduction report.")
    term

(* ---- export ---- *)

let export_cmd =
  let dir_arg =
    Arg.(value & opt string "data" & info [ "outdir" ] ~docv:"DIR"
           ~doc:"Directory to write the CSVs and gnuplot scripts into.")
  in
  let run dir =
    List.iter
      (fun (path, bytes) -> Printf.printf "wrote %s (%d bytes)\n" path bytes)
      (Fortress_exp.Export.write_all ~dir)
  in
  let term = Term.(const run $ dir_arg) in
  Cmd.v
    (Cmd.info "export" ~doc:"Write the evaluation data as CSV plus gnuplot scripts.")
    term

(* ---- sensitivity ---- *)

let sensitivity_cmd =
  let run alpha kappa csv =
    print_table ~csv (Fortress_exp.Sensitivity.table ~alpha ~kappa ())
  in
  let term = Term.(const run $ alpha_arg $ kappa_arg $ csv_arg) in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Elasticities of expected lifetime with respect to alpha and kappa.")
    term

(* ---- choose ---- *)

let choose_cmd =
  let run () =
    let module Choice_map = Fortress_exp.Choice_map in
    print_string (Choice_map.map_string ());
    print_endline "";
    print_endline "the DSM premium (EL(S0PO) / EL(S2PO)) - the lifetime factor bought by";
    print_endline "making the service a deterministic state machine:";
    print_string (Fortress_util.Table.render (Choice_map.premium_table ()))
  in
  let term = Term.(const run $ const ()) in
  Cmd.v
    (Cmd.info "choose"
       ~doc:"The section-7 design choice, mapped over the (alpha, kappa) plane.")
    term

(* ---- threats ---- *)

let threats_cmd =
  let run () =
    let module Threat = Fortress_defense.Threat in
    let module Keyspace = Fortress_defense.Keyspace in
    let ks = Keyspace.pax_aslr_32bit in
    let stacks =
      [ [];
        [ Threat.W_xor_x ];
        [ Threat.Isr ks ];
        [ Threat.Heap_randomization ks ];
        [ Threat.W_xor_x; Threat.Isr ks; Threat.Heap_randomization ks ];
        [ Threat.Aslr ks ];
        [ Threat.W_xor_x; Threat.Aslr ks ];
        [ Threat.W_xor_x; Threat.Aslr ks; Threat.Got_randomization ks ] ]
    in
    print_string (Fortress_util.Table.render (Threat.matrix_table stacks));
    print_endline "";
    print_endline "reading the table (paper section 2.1): W^X, ISR and heap randomization";
    print_endline "are all bypassed by return-to-libc; only address randomization forces";
    print_endline "the attacker into the keyed de-randomization game the rest of this";
    print_endline "repository models, and layering randomizers multiplies the entropy."
  in
  let term = Term.(const run $ const ()) in
  Cmd.v
    (Cmd.info "threats"
       ~doc:"The section-2.1 defence/attack-vector matrix and effective entropies.")
    term

(* ---- crossover ---- *)

let crossover_cmd =
  let run alpha =
    Printf.printf "kappa* at alpha=%g: %.4f (S2PO outlives S1PO below this kappa)\n" alpha
      (Figures.kappa_crossover_at ~alpha)
  in
  let term = Term.(const run $ alpha_arg) in
  Cmd.v
    (Cmd.info "crossover" ~doc:"Locate the kappa at which S2PO stops outliving S1PO.")
    term

let main_cmd =
  let doc = "FORTRESS attack-resilience evaluation (Clarke & Ezhilchelvan, DSN 2010)" in
  let man =
    [
      `S "DETERMINISM";
      `P
        "Every Monte-Carlo subcommand is reproducible from its seed, including \
         under $(b,--jobs) parallelism: trials are partitioned over worker \
         domains by trial index, each trial's PRNG stream is derived from its \
         index (never from execution order or domain identity), and per-trial \
         outcomes are consumed in index order at the join. Statistics, event \
         traces, convergence checkpoints and trace digests are therefore \
         bit-identical for every job count \u{2014} $(b,--jobs 1) and \
         $(b,--jobs 8) with the same seed produce the same bytes.";
    ]
  in
  let info = Cmd.info "fortress-cli" ~version:"1.0.0" ~doc ~man in
  Cmd.group info
    [ el_cmd; figure1_cmd; figure2_cmd; ordering_cmd; validate_cmd; ablation_cmd; crossover_cmd;
      podc_cmd; shapes_cmd; report_cmd; simulate_cmd; inject_cmd; load_cmd; obs_cmd;
      timeline_cmd;
      trace_cmd; prof_cmd; export_cmd;
      sensitivity_cmd; threats_cmd; choose_cmd ]

(* Degenerate operating points surface as typed exceptions from the linear
   algebra; report them as user errors, not crashes. *)
let () =
  match Cmd.eval ~catch:false main_cmd with
  | code -> exit code
  | exception Fortress_util.Matrix.Singular { dim; col } ->
      Printf.eprintf
        "fortress-cli: the %dx%d linear system is singular (no pivot in column %d); this operating point has no finite solution\n"
        dim dim col;
      exit 3
  | exception Fortress_model.Markov.No_transient_states ->
      prerr_endline
        "fortress-cli: the chain has no transient states; every state is already absorbing at this operating point";
      exit 3
  | exception Fortress_model.Markov.Absorption_unreachable { state } ->
      Printf.eprintf
        "fortress-cli: absorption is unreachable from transient state %d; expected lifetime is infinite at this operating point\n"
        state;
      exit 3
