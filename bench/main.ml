(* Benchmark harness: one Bechamel test per reproduced artefact (figures,
   ordering, ablations, validation) plus substrate micro-benchmarks, then
   the regenerated tables themselves — the rows/series the paper reports.

   Run with: dune exec bench/main.exe *)

open Bechamel
module Systems = Fortress_model.Systems
module Step_level = Fortress_mc.Step_level
module Probe_level = Fortress_mc.Probe_level
module Figures = Fortress_exp.Figures
module Ablations = Fortress_exp.Ablations
module Validation = Fortress_exp.Validation
module Sha256 = Fortress_crypto.Sha256
module Exec = Fortress_par.Exec

(* ---- one Test.make per experiment artefact ---- *)

let test_figure1 =
  Test.make ~name:"figure1-analytic-rows"
    (Staged.stage (fun () -> ignore (Figures.figure1_rows ~points:7 ())))

let test_figure2 =
  Test.make ~name:"figure2-analytic-rows"
    (Staged.stage (fun () -> ignore (Figures.figure2_rows ~points:7 ())))

let test_ordering =
  Test.make ~name:"ordering-chain-check"
    (Staged.stage (fun () -> ignore (Figures.ordering ~points:5 ())))

let test_ablation_np =
  Test.make ~name:"ablation-np"
    (Staged.stage (fun () -> ignore (Ablations.proxy_count_table ~points:5 ())))

let test_ablation_chi =
  Test.make ~name:"ablation-chi"
    (Staged.stage (fun () ->
         ignore (Ablations.entropy_table ~chis:[ 256; 512 ] ~omega:8 ~trials:20 ())))

let test_ablation_launchpad =
  Test.make ~name:"ablation-launchpad"
    (Staged.stage (fun () -> ignore (Ablations.launchpad_table ())))

let test_ablation_kappa =
  Test.make ~name:"ablation-kappa-campaign"
    (Staged.stage (fun () -> ignore (Ablations.detection_table ~thresholds:[ 5 ] ~steps:5 ())))

let test_ablation_diversity =
  Test.make ~name:"ablation-diversity"
    (Staged.stage (fun () ->
         ignore
           (Ablations.limited_diversity_table ~candidate_counts:[ 1; 4 ] ~trials:100 ())))

let test_ablation_overhead =
  Test.make ~name:"ablation-overhead"
    (Staged.stage (fun () -> ignore (Ablations.overhead_table ~requests:20 ())))

let test_ablation_budget =
  Test.make ~name:"ablation-budget-split"
    (Staged.stage (fun () -> ignore (Ablations.budget_split_table ~kappas:[ 0.5 ] ())))

let test_degradation =
  Test.make ~name:"degradation-under-attack"
    (Staged.stage (fun () ->
         ignore (Fortress_exp.Degradation.run ~omegas:[ 0; 32 ] ~requests:30 ~horizon:10 ())))

let test_podc =
  Test.make ~name:"podc-claim-check"
    (Staged.stage (fun () -> ignore (Figures.podc_claim_holds ~points:5 ())))

let test_distributions =
  Test.make ~name:"distribution-shapes"
    (Staged.stage (fun () ->
         ignore
           (Fortress_exp.Distributions.profile ~trials:200 Systems.S1_PO ~alpha:0.01
              ~kappa:0.5)))

let test_validation =
  Test.make ~name:"validation-three-tier"
    (Staged.stage (fun () ->
         ignore
           (Validation.run ~chi:512 ~omega:8 ~trials:30
              ~systems:[ Systems.S1_PO; Systems.S2_PO ] ())))

let test_protocol_validation =
  Test.make ~name:"validation-packet-level-campaign"
    (Staged.stage (fun () -> ignore (Validation.protocol ~trials:10 ())))

(* ---- substrate micro-benchmarks ---- *)

let test_step_mc =
  Test.make ~name:"mc-step-s2po-1000-trials"
    (Staged.stage (fun () ->
         ignore
           (Step_level.estimate ~trials:1000 Systems.S2_PO
              { Step_level.default with alpha = 3e-3 })))

let test_probe_mc =
  Test.make ~name:"mc-probe-s2po-50-trials"
    (Staged.stage (fun () ->
         ignore
           (Probe_level.estimate ~trials:50 Systems.S2_PO
              { Probe_level.default with chi = 1024; omega = 8 })))

let test_markov =
  Test.make ~name:"model-s0so-inhomogeneous-chain"
    (Staged.stage (fun () -> ignore (Systems.s0_so ~alpha:1e-3)))

let test_sha256 =
  let payload = String.make 4096 'x' in
  Test.make ~name:"crypto-sha256-4KiB" (Staged.stage (fun () -> ignore (Sha256.digest payload)))

let test_pb_deployment =
  Test.make ~name:"protocol-fortress-request-roundtrip"
    (Staged.stage (fun () ->
         let module Deployment = Fortress_core.Deployment in
         let module Client = Fortress_core.Client in
         let module Engine = Fortress_sim.Engine in
         let deployment = Deployment.create Deployment.default_config in
         let client = Deployment.new_client deployment ~name:"bench-client" in
         let served = ref 0 in
         for i = 1 to 10 do
           ignore
             (Client.submit client
                ~cmd:(Printf.sprintf "put k%d v" i)
                ~on_response:(fun _ -> incr served))
         done;
         Engine.run ~until:100.0 (Deployment.engine deployment);
         assert (!served = 10)))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"fortress"
      [
        test_figure1;
        test_figure2;
        test_ordering;
        test_ablation_np;
        test_ablation_chi;
        test_ablation_launchpad;
        test_ablation_kappa;
        test_ablation_diversity;
        test_ablation_overhead;
        test_ablation_budget;
        test_degradation;
        test_podc;
        test_distributions;
        test_validation;
        test_protocol_validation;
        test_step_mc;
        test_probe_mc;
        test_markov;
        test_sha256;
        test_pb_deployment;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some (e :: _) -> Printf.sprintf "%13.1f ns/run" e
           | Some [] | None -> "            n/a"
         in
         Printf.printf "  %-45s %s\n" name ns)

(* ---- wall-clock section timings and the machine-readable report ---- *)

let sections : (string * float) list ref = ref []

let section name f =
  Printf.printf "== %s ==\n" name;
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  sections := (name, dt) :: !sections;
  print_endline ""

(* Event throughput of the instrumented stack: one packet-level campaign
   with a counting subscriber attached. A single campaign is only a few
   tens of milliseconds, so the reported figure is the best of five
   passes measured in process CPU time — scheduler noise is additive and
   preemption by other tenants is invisible to CPU time, so the gate in
   bench_compare.py sees the stack's actual throughput, not the slowest
   interruption. *)
let measure_event_throughput () =
  let module Sink = Fortress_obs.Sink in
  let best_events = ref 0 and best_dt = ref infinity in
  for _ = 1 to 5 do
    let events = ref 0 in
    let sink = Sink.create () in
    ignore (Sink.attach sink (fun ~time:_ _ -> incr events));
    Gc.full_major ();
    let t0 = Sys.time () in
    ignore (Validation.campaign_lifetime ~sink ~chi:256 ~omega:8 ~kappa:0.5 ~seed:11 ());
    let dt = Sys.time () -. t0 in
    if dt < !best_dt then begin
      best_dt := dt;
      best_events := !events
    end
  done;
  (!best_events, !best_dt)

(* Interceptor overhead on the hot [Network.send] path: per-message cost of
   the fault layer in its three configurations — absent (no plan installed),
   installed but always [Pass], and the lossy built-in's link spec. Minor-
   heap words per message show what each layer allocates; the no-plan row is
   the pre-fault-subsystem send path, so pass/lossy deltas against it are
   the whole cost of the feature. *)
let measure_interceptor_overhead () =
  let module Engine = Fortress_sim.Engine in
  let module Network = Fortress_net.Network in
  let module Latency = Fortress_net.Latency in
  let module Injector = Fortress_faults.Injector in
  let module Plan = Fortress_faults.Plan in
  let messages = 200_000 in
  let run name config =
    let engine = Engine.create ~prng:(Fortress_util.Prng.create ~seed:9) () in
    let net = Network.create ~latency:(Latency.constant 0.1) engine in
    let a = Network.register net ~name:"a" ~handler:(fun ~src:_ (_ : int) -> ()) in
    let b = Network.register net ~name:"b" ~handler:(fun ~src:_ (_ : int) -> ()) in
    (match config with
    | `No_plan -> ()
    | `Pass -> Network.set_interceptor net (Some (fun ~src:_ ~dst:_ _ -> Network.Pass))
    | `Lossy ->
        let stats = Injector.fresh_stats () in
        let prng = Injector.derive_prng ~seed:9 in
        Network.set_interceptor net
          (Some (Injector.link_interceptor ~engine ~prng ~stats Plan.lossy.Plan.link)));
    (* warm-up round so both paths are compiled and caches primed *)
    for i = 1 to 1_000 do
      Network.send net ~src:a ~dst:b i
    done;
    Engine.run engine;
    Gc.minor ();
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for i = 1 to messages do
      Network.send net ~src:a ~dst:b i;
      (* drain in batches so the event heap stays small and resident *)
      if i land 4095 = 0 then Engine.run engine
    done;
    Engine.run engine;
    let dt = Unix.gettimeofday () -. t0 in
    let words = (Gc.minor_words () -. words0) /. float_of_int messages in
    (name, dt /. float_of_int messages *. 1e9, words)
  in
  [ run "no-plan" `No_plan; run "pass-interceptor" `Pass; run "lossy-link" `Lossy ]

(* Profiler overhead at an instrumented call site, in its three
   configurations — disabled (the default), enabled, and enabled with the
   sample ring on. The workload allocates nothing itself, so the disabled
   row's minor-words column is the entire per-call allocation cost of
   compiling the profiler in: it must be zero (the guard is one bool read
   and no closure), which is what keeps seeded runs byte-identical whether
   or not fortress_prof is linked. *)
let measure_profiler_overhead () =
  let module Prof = Fortress_prof.Profiler in
  let phase = Prof.register "bench.overhead" in
  let calls = 1_000_000 in
  let acc = ref 0 in
  let work () = acc := Sys.opaque_identity (!acc + 1) in
  let run name config =
    (match config with
    | `Disabled ->
        Prof.disable ();
        Prof.set_sample_capacity 0
    | `Enabled ->
        Prof.reset ();
        Prof.set_sample_capacity 0;
        Prof.enable ()
    | `Sampling ->
        Prof.reset ();
        Prof.set_sample_capacity 4096;
        Prof.enable ());
    (* the guard below is the exact shape of every instrumented site *)
    let site () = if Prof.is_enabled () then Prof.record phase work else work () in
    for _ = 1 to 1_000 do
      site ()
    done;
    Gc.minor ();
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to calls do
      site ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let words = (Gc.minor_words () -. words0) /. float_of_int calls in
    Prof.disable ();
    Prof.reset ();
    (name, dt /. float_of_int calls *. 1e9, words)
  in
  [ run "disabled" `Disabled; run "enabled" `Enabled; run "enabled+sampling" `Sampling ]

(* Domain-parallel Monte-Carlo speedup: the step-level sampler at a fixed
   operating point, fanned over 1, 2 and 4 lanes of the persistent domain
   pool. The runner guarantees bit-identical results at every job count
   (trials partitioned by index, per-trial PRNGs derived from the index,
   outcomes consumed in index order at the join), so the mean is asserted
   equal across rows and only the wall clock may differ. Speedup is
   relative to the jobs=1 row; the executor never runs more lanes than the
   machine has cores, so on a single-core box every row is ~1.0x — the
   report's [domains_available] field tells the CI gate whether the
   2x/1.3x floors are enforceable on this hardware. *)
let measure_parallel_speedup () =
  let trials = 3000 in
  let cfg = { Step_level.default with alpha = 3e-3 } in
  (* warm the pool first: worker domains are spawned once per process, and
     that one-time cost belongs to no timed row *)
  ignore (Step_level.estimate ~jobs:4 ~trials:200 ~seed:1 Systems.S2_PO cfg);
  let run jobs =
    (* best of three passes per row: a single pass is ~100 ms, where one
       scheduler preemption reads as a phantom 20% slowdown; noise is
       additive, so the min converges on true throughput *)
    let best_dt = ref infinity and mean = ref nan in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let res = Step_level.estimate ~jobs ~trials ~seed:42 Systems.S2_PO cfg in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best_dt then best_dt := dt;
      mean := res.Fortress_mc.Trial.mean
    done;
    (jobs, !best_dt, !mean)
  in
  let rows = List.map run [ 1; 2; 4 ] in
  let base_mean = match rows with (_, _, m) :: _ -> m | [] -> nan in
  List.iter
    (fun (jobs, _, mean) ->
      if mean <> base_mean then
        failwith
          (Printf.sprintf
             "parallel determinism violated: jobs=%d mean %.17g <> jobs=1 mean %.17g" jobs
             mean base_mean))
    rows;
  let base_dt = match rows with (_, dt, _) :: _ -> dt | [] -> nan in
  List.map
    (fun (jobs, dt, mean) ->
      let tps = if dt > 0.0 then float_of_int trials /. dt else 0.0 in
      let speedup = if dt > 0.0 then base_dt /. dt else 0.0 in
      (jobs, tps, speedup, mean))
    rows

(* Shared discipline for the gated same-process overhead ratios: run the
   base and variant shapes interleaved [passes] times, assert the digests
   pairwise equal every pass, and gate on min(variant)/min(base).
   Scheduler noise is strictly additive — an interrupted pass reads
   slower, never faster — so the min across interleaved passes converges
   on the true cost of each shape, where both a one-shot ratio and the
   median of per-pass ratios still gate on jitter when a single pass is
   only a second or two. The order within a pass ALTERNATES (ABBA):
   sustained load makes throttled machines drift monotonically slower, so
   a fixed order would systematically tax whichever shape always runs
   second — alternation cancels linear drift out of both mins. The timed
   quantity is PROCESS CPU time, not wall clock: these sections are
   single-threaded, so CPU time measures the same work while being
   immune to preemption by other tenants of the machine — the dominant
   noise source on shared runners. *)
let paired_overhead ~passes ~mismatch base variant =
  let time f =
    (* collect before each timed region so neither shape pays the other's
       heap down during its own window *)
    Gc.full_major ();
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let base_seconds = ref infinity and variant_seconds = ref infinity in
  for pass = 1 to passes do
    let b_digest, b_dt, v_digest, v_dt =
      if pass land 1 = 1 then begin
        let b_digest, b_dt = time base in
        let v_digest, v_dt = time variant in
        (b_digest, b_dt, v_digest, v_dt)
      end
      else begin
        let v_digest, v_dt = time variant in
        let b_digest, b_dt = time base in
        (b_digest, b_dt, v_digest, v_dt)
      end
    in
    if b_digest <> v_digest then failwith (mismatch v_digest b_digest);
    base_seconds := Float.min !base_seconds b_dt;
    variant_seconds := Float.min !variant_seconds v_dt
  done;
  let ratio =
    if !base_seconds > 0.0 then !variant_seconds /. !base_seconds else 0.0
  in
  (!base_seconds, !variant_seconds, ratio)

(* Telemetry-plane overhead: the same seeded packet-level campaign twice,
   once with only a digesting subscriber and once with a Timeline plus
   streaming Signal detectors attached to the same sink (alarms not
   emitted, so the event stream is untouched). The plane is a pure
   observer — the digests are asserted equal, making the ratio an
   apples-to-apples measure of the subscriber cost alone. *)
let measure_timeline_overhead () =
  let module Sink = Fortress_obs.Sink in
  let module Timeline = Fortress_obs.Timeline in
  let module Signal = Fortress_obs.Signal in
  let pass ~telemetry () =
    let sink = Sink.create () in
    let sub, digest_of = Sink.digesting () in
    ignore (Sink.attach sink sub);
    let tl =
      if telemetry then begin
        let tl = Timeline.create ~width:100.0 () in
        ignore (Sink.attach sink (Timeline.subscriber tl));
        ignore (Signal.create tl);
        Some tl
      end
      else None
    in
    (* 16 campaigns per pass: the timed region must be long enough that
       the gate resolves the plane's few-percent cost above timer floor *)
    for seed = 11 to 26 do
      ignore (Validation.campaign_lifetime ~sink ~chi:256 ~omega:8 ~kappa:0.5 ~seed ())
    done;
    Option.iter Timeline.finish tl;
    digest_of ()
  in
  (* warm-up so both shapes are compiled before timing *)
  ignore (pass ~telemetry:false ());
  ignore (pass ~telemetry:true ());
  paired_overhead ~passes:9
    ~mismatch:(fun v b ->
      Printf.sprintf "telemetry subscriber perturbed the trace: %s <> %s" v b)
    (pass ~telemetry:false) (pass ~telemetry:true)

(* Adaptive-campaign overhead: the oblivious strategy runs the full
   observe–decide–act loop (symptom sampling, observation assembly, a
   boundary hook that always answers "unchanged") yet must stay
   byte-identical to the fixed-schedule path and within a few percent of
   its cost — that overhead is the price every legacy caller pays for the
   adaptive machinery existing at all. Both passes run in this process on
   the same paired seeds; the digests are asserted equal so the ratio
   compares identical work. *)
let measure_adaptive_overhead () =
  let module Inject = Fortress_exp.Inject in
  let module Plan = Fortress_faults.Plan in
  let module Adaptive = Fortress_attack.Adaptive in
  let config = { Inject.default_config with trials = 8; chi = 256; seed = 42 } in
  (* warm-up pass so both code paths are compiled and the minor heap is primed *)
  ignore (Inject.run_plan { config with trials = 2 } Plan.lossy);
  ignore
    (Inject.run_plan ~strategy:Adaptive.Strategy.oblivious { config with trials = 2 }
       Plan.lossy);
  paired_overhead ~passes:9
    ~mismatch:(fun v b ->
      Printf.sprintf "oblivious strategy diverged from the fixed schedule: %s <> %s" v b)
    (fun () -> (Inject.run_plan config Plan.lossy).Inject.digest)
    (fun () ->
      (Inject.run_plan ~strategy:Adaptive.Strategy.oblivious config Plan.lossy).Inject.digest)

(* Defender-controller overhead: the static strategy attaches the full
   sensing stack (an extra in-trial timeline + signal plane, observation
   assembly every boundary, a decide that always answers "unchanged") yet
   must stay byte-identical to the undefended path and within a few
   percent of its cost — the price the control loop charges when it never
   acts. Same paired-pass shape as measure_adaptive_overhead. *)
let measure_defender_overhead () =
  let module Inject = Fortress_exp.Inject in
  let module Plan = Fortress_faults.Plan in
  let module Controller = Fortress_defense.Controller in
  let config = { Inject.default_config with trials = 8; chi = 256; seed = 42 } in
  ignore (Inject.run_plan { config with trials = 2 } Plan.lossy);
  ignore
    (Inject.run_plan ~defender:Controller.Strategy.static { config with trials = 2 }
       Plan.lossy);
  paired_overhead ~passes:9
    ~mismatch:(fun v b ->
      Printf.sprintf "static defender diverged from the undefended run: %s <> %s" v b)
    (fun () -> (Inject.run_plan config Plan.lossy).Inject.digest)
    (fun () ->
      (Inject.run_plan ~defender:Controller.Strategy.static config Plan.lossy).Inject.digest)

(* Causal-tracing overhead: the same seeded chaos campaign three times
   per pass — tracing off, tracing on (span plumbing + latency extraction
   live), then off again. The GATED ratio is off2/off1: once the causal
   machinery has run, the disabled path must cost what it did before (the
   per-send [Engine.causal] check is one option read; no state lingers).
   Each pass times its three shapes back-to-back so ambient load drift
   hits them equally, and the gated ratio is min(off2)/min(off1) across
   the passes — a single off pass is well under a second, and scheduler
   noise is strictly additive, so the mins converge on true cost where
   any per-pass ratio gates on jitter (the same discipline as
   [paired_overhead], including the alternation: which of a pass's two
   off samples feeds the off1 vs off2 accumulator flips every pass, so
   monotone throttling drift cancels instead of always taxing the sample
   timed last). The traced ratio is reported for information — spans
   add real event volume, so a tight bound there would gate the feature's
   value, not a regression. The off-pass digests are asserted identical
   (byte-identity of the disabled path) and the traced run's EL is
   asserted equal to the plain one (tracing is a pure observer of the
   simulated world). *)
let measure_causal_overhead () =
  let module Inject = Fortress_exp.Inject in
  let module Plan = Fortress_faults.Plan in
  let config = { Inject.default_config with trials = 8; chi = 256; seed = 42 } in
  let traced_config = { config with causal = true } in
  (* process CPU time for the same reason as [paired_overhead]: immune to
     preemption, and the section is single-threaded *)
  let time f =
    Gc.full_major ();
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  ignore (Inject.run_plan { config with trials = 2 } Plan.chaos);
  ignore (Inject.run_plan { traced_config with trials = 2 } Plan.chaos);
  let passes = 7 in
  let off_digest = ref "" in
  let off1_seconds = ref infinity
  and off2_seconds = ref infinity
  and traced_seconds = ref infinity in
  for pass = 1 to passes do
    let off_a, off_a_dt = time (fun () -> Inject.run_plan config Plan.chaos) in
    let traced, traced_dt = time (fun () -> Inject.run_plan traced_config Plan.chaos) in
    let off_b, off_b_dt = time (fun () -> Inject.run_plan config Plan.chaos) in
    let (off1, off1_dt), (off2, off2_dt) =
      if pass land 1 = 1 then ((off_a, off_a_dt), (off_b, off_b_dt))
      else ((off_b, off_b_dt), (off_a, off_a_dt))
    in
    List.iter
      (fun (r : Inject.run) ->
        if !off_digest = "" then off_digest := r.Inject.digest
        else if r.Inject.digest <> !off_digest then
          failwith
            (Printf.sprintf "causal-off path not byte-identical across passes: %s <> %s"
               r.Inject.digest !off_digest))
      [ off1; off2 ];
    let el_off = Inject.mean_el config off1 in
    let el_on = Inject.mean_el traced_config traced in
    if el_off <> el_on then
      failwith
        (Printf.sprintf "causal tracing perturbed the simulation: EL %.17g <> %.17g" el_on
           el_off);
    off1_seconds := Float.min !off1_seconds off1_dt;
    off2_seconds := Float.min !off2_seconds off2_dt;
    traced_seconds := Float.min !traced_seconds traced_dt
  done;
  let ratio = if !off1_seconds > 0.0 then !off2_seconds /. !off1_seconds else 0.0 in
  let traced_ratio =
    if !off1_seconds > 0.0 then !traced_seconds /. !off1_seconds else 0.0
  in
  (!off1_seconds, !traced_seconds, ratio, traced_ratio)

(* Workload-plane throughput: a fixed closed-loop population driven
   through [Inject.run_plan] on the fortress stack. The logical request
   counts and virtual-time quantiles are deterministic (pinned exactly by
   bench_compare.py); only requests-per-second is a wall measurement, so
   it alone carries a tolerance. *)
let measure_workload_throughput () =
  let module Inject = Fortress_exp.Inject in
  let module Workload = Fortress_load.Workload in
  let module Plan = Fortress_faults.Plan in
  let spec =
    match Workload.spec_of_string "closed:clients=32,think=50" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let config = { Inject.default_config with trials = 6; load = Some spec } in
  let run () = Inject.run_plan config Plan.lossy in
  ignore (run ());
  let passes = 3 in
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to passes do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = run () in
    let dt = Unix.gettimeofday () -. t0 in
    (match !result with
    | Some (prev : Inject.run) ->
        if prev.Inject.digest <> r.Inject.digest then
          failwith
            (Printf.sprintf "workload passes not byte-identical: %s <> %s" r.Inject.digest
               prev.Inject.digest)
    | None -> ());
    if dt < !best then best := dt;
    result := Some r
  done;
  let r = Option.get !result in
  let stats = Option.get r.Inject.load in
  let requests_per_sec =
    if !best > 0.0 then float_of_int stats.Workload.issued /. !best else 0.0
  in
  let quantile q = Option.value ~default:0.0 (Workload.quantile stats q) in
  (requests_per_sec, stats.Workload.issued, stats.Workload.answered, quantile 0.5,
   quantile 0.99, Option.value ~default:0.0 r.Inject.availability)

(* The two long Monte-Carlo tables (A2, V1) run through the domain pool at
   [default_jobs]; their renders are asserted against FNV digests of the
   committed sequential output, so the bench itself is the first
   large-scale determinism gate for the pooled executor. *)
let assert_digest ~name ~expected rendered =
  let got = Fortress_obs.Sink.digest_lines [ rendered ] in
  if got <> expected then
    failwith
      (Printf.sprintf "%s changed under the pool: digest %s <> committed %s" name got
         expected)

let a2_expected_digest = "36332ece1ea6a53d"
let v1_expected_digest = "2b6543a3732f15b0"

let speedup_rows_json speedup =
  let module J = Fortress_obs.Json in
  J.List
    (List.map
       (fun (jobs, tps, sp, mean) ->
         J.Obj
           [
             ("jobs", J.Num (float_of_int jobs));
             ("trials_per_sec", J.Num tps);
             ("speedup_vs_1", J.Num sp);
             ("mean_el", J.Num mean);
           ])
       speedup)

let write_json ~path json =
  let oc = open_out path in
  output_string oc (Fortress_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

let print_speedup_rows speedup =
  Printf.printf "== domain-parallel Monte-Carlo speedup (step-level, 3000 trials) ==\n";
  List.iter
    (fun (jobs, tps, sp, mean) ->
      Printf.printf "jobs=%d  %10.0f trials/sec  %5.2fx vs jobs=1  (mean EL %.6g)\n" jobs tps
        sp mean)
    speedup;
  Printf.printf "means bit-identical across job counts: yes (asserted)\n\n"

let write_bench_json ~path ~wall_seconds ~events ~event_seconds ~interceptor ~profiler
    ~speedup ~adaptive ~defender ~timeline ~causal ~workload =
  let module J = Fortress_obs.Json in
  let secs =
    List.rev_map
      (fun (name, dt) -> J.Obj [ ("name", J.Str name); ("seconds", J.Num dt) ])
      !sections
  in
  let json =
    J.Obj
      [
        ("benchmark", J.Str "fortress");
        ("wall_seconds", J.Num wall_seconds);
        ("domains_available", J.Num (float_of_int (Domain.recommended_domain_count ())));
        ("events_emitted", J.Num (float_of_int events));
        ("event_seconds", J.Num event_seconds);
        ( "events_per_sec",
          J.Num (if event_seconds > 0.0 then float_of_int events /. event_seconds else 0.0) );
        ( "interceptor_overhead",
          J.List
            (List.map
               (fun (name, ns, words) ->
                 J.Obj
                   [
                     ("config", J.Str name);
                     ("ns_per_message", J.Num ns);
                     ("minor_words_per_message", J.Num words);
                   ])
               interceptor) );
        ( "profiler_overhead",
          J.List
            (List.map
               (fun (name, ns, words) ->
                 J.Obj
                   [
                     ("config", J.Str name);
                     ("ns_per_call", J.Num ns);
                     ("minor_words_per_call", J.Num words);
                   ])
               profiler) );
        ("parallel_speedup", speedup_rows_json speedup);
        ( "adaptive_overhead",
          (let fixed_s, obl_s, ratio = adaptive in
           J.Obj
             [
               ("fixed_seconds", J.Num fixed_s);
               ("oblivious_seconds", J.Num obl_s);
               ("ratio", J.Num ratio);
             ]) );
        ( "defender_overhead",
          (let plain_s, static_s, ratio = defender in
           J.Obj
             [
               ("plain_seconds", J.Num plain_s);
               ("static_seconds", J.Num static_s);
               ("ratio", J.Num ratio);
             ]) );
        ( "timeline_overhead",
          (let base_s, sub_s, ratio = timeline in
           J.Obj
             [
               ("baseline_seconds", J.Num base_s);
               ("subscriber_seconds", J.Num sub_s);
               ("ratio", J.Num ratio);
             ]) );
        ( "causal_overhead",
          (let plain_s, traced_s, ratio, traced_ratio = causal in
           J.Obj
             [
               ("plain_seconds", J.Num plain_s);
               ("traced_seconds", J.Num traced_s);
               ("ratio", J.Num ratio);
               ("traced_ratio", J.Num traced_ratio);
             ]) );
        ( "workload_throughput",
          (let rps, issued, answered, p50, p99, avail = workload in
           J.Obj
             [
               ("requests_per_sec", J.Num rps);
               ("logical_requests", J.Num (float_of_int issued));
               ("answered", J.Num (float_of_int answered));
               ("p50_vt", J.Num p50);
               ("p99_vt", J.Num p99);
               ("availability", J.Num avail);
             ]) );
        ("sections", J.List secs);
      ]
  in
  write_json ~path json

(* --speedup-only: just the pooled-speedup section and its slice of the
   report — fast enough for every PR, where the full bench is push/nightly
   material. bench_compare.py consumes the same keys either way. *)
let speedup_only () =
  let t_start = Unix.gettimeofday () in
  let module J = Fortress_obs.Json in
  let speedup = measure_parallel_speedup () in
  print_speedup_rows speedup;
  let wall_seconds = Unix.gettimeofday () -. t_start in
  let path = "BENCH_fortress.json" in
  write_json ~path
    (J.Obj
       [
         ("benchmark", J.Str "fortress-speedup");
         ("wall_seconds", J.Num wall_seconds);
         ("domains_available", J.Num (float_of_int (Domain.recommended_domain_count ())));
         ("parallel_speedup", speedup_rows_json speedup);
       ]);
  Printf.printf "total wall time: %.2f s; speedup report written to %s\n" wall_seconds path

let full_bench () =
  let t_start = Unix.gettimeofday () in
  section "micro-benchmarks (bechamel, monotonic clock)" benchmark;
  section "Figure 1: expected lifetime comparison (analytic, kappa = 0.5)" (fun () ->
      print_string (Fortress_util.Table.render (Figures.figure1_table ~points:13 ())));
  section "Figure 2: S2PO expected lifetime as kappa varies" (fun () ->
      print_string (Fortress_util.Table.render (Figures.figure2_table ~points:13 ())));
  section "Ordering check (paper section 6 summary chain)" (fun () ->
      print_string (Fortress_util.Table.render (Figures.ordering_table ~points:7 ())));
  section "Ablation A1: proxy count" (fun () ->
      print_string (Fortress_util.Table.render (Ablations.proxy_count_table ~points:5 ())));
  section "Ablation A2: key entropy under SO (probe-level)" (fun () ->
      let rendered =
        Fortress_util.Table.render
          (Ablations.entropy_table ~trials:100 ~jobs:(Exec.default_jobs ()) ())
      in
      print_string rendered;
      assert_digest ~name:"A2 entropy table" ~expected:a2_expected_digest rendered);
  section "Ablation A3: launch-pad discipline (alpha = 0.005)" (fun () ->
      print_string (Fortress_util.Table.render (Ablations.launchpad_table ())));
  section "Ablation A4: proxy detection threshold -> effective kappa" (fun () ->
      print_string (Fortress_util.Table.render (Ablations.detection_table ())));
  section "Ablation A5: limited diversity (candidate-set size)" (fun () ->
      print_string
        (Fortress_util.Table.render (Ablations.limited_diversity_table ~trials:1000 ())));
  section "Ablation A6: proxy overhead on the request path" (fun () ->
      print_string (Fortress_util.Table.render (Ablations.overhead_table ())));
  section "Ablation A7: optimizing attacker budget split" (fun () ->
      print_string (Fortress_util.Table.render (Ablations.budget_split_table ())));
  section "Service quality under attack (degradation)" (fun () ->
      print_string
        (Fortress_util.Table.render
           (Fortress_exp.Degradation.table (Fortress_exp.Degradation.run ()))));
  section "PODC 2009 claim: fortified PB vs SMR with proactive recovery" (fun () ->
      print_string (Fortress_util.Table.render (Figures.podc_claim_table ~points:7 ())));
  section "Lifetime distribution shapes (alpha = 0.002, kappa = 0.5)" (fun () ->
      let shape_profiles =
        List.map
          (fun s -> Fortress_exp.Distributions.profile ~trials:2000 s ~alpha:0.002 ~kappa:0.5)
          [ Systems.S1_PO; Systems.S2_PO; Systems.S1_SO; Systems.S0_SO ]
      in
      print_string
        (Fortress_util.Table.render (Fortress_exp.Distributions.table shape_profiles)));
  section "Threat matrix (paper section 2.1)" (fun () ->
      let module Threat = Fortress_defense.Threat in
      let module Keyspace = Fortress_defense.Keyspace in
      let ks = Keyspace.pax_aslr_32bit in
      print_string
        (Fortress_util.Table.render
           (Threat.matrix_table
              [ []; [ Threat.W_xor_x ]; [ Threat.W_xor_x; Threat.Isr ks ];
                [ Threat.Aslr ks ]; [ Threat.W_xor_x; Threat.Aslr ks ];
                [ Threat.W_xor_x; Threat.Aslr ks; Threat.Got_randomization ks ] ])));
  section "Sensitivity: elasticities at alpha = 1e-3, kappa = 0.5" (fun () ->
      print_string (Fortress_util.Table.render (Fortress_exp.Sensitivity.table ())));
  section "Validation V1: analytic vs step-level vs probe-level" (fun () ->
      let lines = Validation.run ~trials:200 ~jobs:(Exec.default_jobs ()) () in
      let rendered = Fortress_util.Table.render (Validation.table lines) in
      print_string rendered;
      assert_digest ~name:"V1 validation table" ~expected:v1_expected_digest rendered;
      Printf.printf "max |step-MC - analytic| / analytic = %.3f\n"
        (Validation.max_relative_error lines));
  section "Validation V2: full packet-level stack vs the models" (fun () ->
      let line = Validation.protocol ~trials:60 () in
      print_string (Fortress_util.Table.render (Validation.protocol_table line));
      Printf.printf "stack agreement: %s\n"
        (if Validation.protocol_agrees line then "holds" else "FAILS"));
  section "Fault-injection campaign: EL under the built-in plan ladder" (fun () ->
      let module Inject = Fortress_exp.Inject in
      let module Plan = Fortress_faults.Plan in
      let config = { Inject.default_config with trials = 6 } in
      let report =
        Inject.run ~config ~plans:[ Plan.lossy; Plan.partition; Plan.crashy; Plan.chaos ] ()
      in
      print_string (Fortress_util.Table.render (Inject.table report));
      Printf.printf "escalation ordering (EL non-increasing): %s\n"
        (if Inject.monotone_non_increasing report then "holds" else "FAILS"));
  let events, event_seconds = measure_event_throughput () in
  Printf.printf "== observability throughput ==\n";
  Printf.printf "instrumented campaign emitted %d events in %.3f s cpu (%.0f events/sec)\n\n" events
    event_seconds
    (if event_seconds > 0.0 then float_of_int events /. event_seconds else 0.0);
  let interceptor = measure_interceptor_overhead () in
  Printf.printf "== fault interceptor overhead (hot Network.send path) ==\n";
  List.iter
    (fun (name, ns, words) ->
      Printf.printf "%-18s %8.1f ns/message  %6.1f minor words/message\n" name ns words)
    interceptor;
  (match interceptor with
  | (_, _, base_words) :: rest ->
      let worst =
        List.fold_left (fun acc (_, _, w) -> Float.max acc (w -. base_words)) 0.0 rest
      in
      Printf.printf
        "no-plan path allocates nothing for the fault layer; worst configured delta %+.1f \
         words/message\n\n"
        worst
  | [] -> print_newline ());
  let profiler = measure_profiler_overhead () in
  Printf.printf "== phase profiler overhead (per instrumented call) ==\n";
  List.iter
    (fun (name, ns, words) ->
      Printf.printf "%-18s %8.1f ns/call  %6.1f minor words/call\n" name ns words)
    profiler;
  (match profiler with
  | ("disabled", _, words) :: _ ->
      Printf.printf "disabled path allocates %s per call\n\n"
        (if words < 0.5 then "nothing" else Printf.sprintf "%.1f words (REGRESSION)" words)
  | _ -> print_newline ());
  let speedup = measure_parallel_speedup () in
  print_speedup_rows speedup;
  let adaptive = measure_adaptive_overhead () in
  let fixed_s, obl_s, ratio = adaptive in
  Printf.printf "== adaptive campaign overhead (oblivious strategy vs fixed schedule) ==\n";
  Printf.printf
    "fixed schedule  %8.3f s cpu\noblivious loop  %8.3f s cpu  (%.2fx min of paired passes)\n"
    fixed_s obl_s ratio;
  Printf.printf "digests bit-identical across the two paths: yes (asserted)\n\n";
  let defender = measure_defender_overhead () in
  let plain_s, static_s, def_ratio = defender in
  Printf.printf "== defender controller overhead (static strategy vs no controller) ==\n";
  Printf.printf
    "no controller   %8.3f s cpu\nstatic defender %8.3f s cpu  (%.2fx min of paired passes)\n"
    plain_s static_s def_ratio;
  Printf.printf "digests bit-identical across the two paths: yes (asserted)\n\n";
  let timeline = measure_timeline_overhead () in
  let base_s, sub_s, tl_ratio = timeline in
  Printf.printf "== telemetry plane overhead (timeline + signal subscriber) ==\n";
  Printf.printf
    "digest only       %8.3f s cpu\ntimeline+signals  %8.3f s cpu  (%.2fx min of paired passes)\n"
    base_s sub_s tl_ratio;
  Printf.printf "trace digest bit-identical with the plane attached: yes (asserted)\n\n";
  let causal = measure_causal_overhead () in
  let plain_s, traced_s, causal_ratio, traced_ratio = causal in
  Printf.printf "== causal tracing overhead (chaos campaign, spans + latency extraction) ==\n";
  Printf.printf
    "tracing off     %8.3f s cpu\ntracing on      %8.3f s cpu  (%.2fx, informational)\noff again       \
     %.2fx of the first off pass (min of paired passes, gated)\n"
    plain_s traced_s traced_ratio causal_ratio;
  Printf.printf
    "off-pass digests bit-identical and EL unchanged by tracing: yes (asserted)\n\n";
  let workload = measure_workload_throughput () in
  let rps, issued, answered, p50, p99, avail = workload in
  Printf.printf "== workload plane: closed-loop throughput (32 clients, think 50, lossy) ==\n";
  Printf.printf
    "%8.0f logical requests/sec wall  (%d issued, %d answered, availability %.3f)\n" rps
    issued answered avail;
  Printf.printf "latency quantiles (virtual time): p50 %.2f  p99 %.2f\n" p50 p99;
  Printf.printf "pass digests bit-identical: yes (asserted)\n\n";
  let wall_seconds = Unix.gettimeofday () -. t_start in
  let path = "BENCH_fortress.json" in
  write_bench_json ~path ~wall_seconds ~events ~event_seconds ~interceptor ~profiler ~speedup
    ~adaptive ~defender ~timeline ~causal ~workload;
  Printf.printf "total wall time: %.2f s; per-section timings written to %s\n" wall_seconds path

let () =
  if Array.exists (String.equal "--speedup-only") Sys.argv then speedup_only ()
  else full_bench ()
