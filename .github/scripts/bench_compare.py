#!/usr/bin/env python3
"""Compare a fresh BENCH_fortress.json against the committed baseline.

Usage: bench_compare.py BASELINE CURRENT [--tolerance 0.25]
                                         [--only parallel-speedup]

The check is one-sided: a metric fails only when it is worse than the
baseline by more than the tolerance (slower, fewer events/sec). Getting
faster never fails. Exit status 1 on any regression, 0 otherwise.

Timing metrics carry the full tolerance because CI runners are noisy and
heterogeneous. Allocation metrics (minor words per call/message) are
deterministic properties of the compiled code, so they get a tight bound:
an allocation regression on a zero-allocation path is a real code change,
not noise.

The parallel-speedup section additionally carries ABSOLUTE floors
(jobs=2 >= 1.3x, jobs=4 >= 2.0x sequential): PR 4 shipped a "parallel"
runner that was a measured slowdown and nothing failed, so the floor is
pinned to the report rather than to a movable baseline. Speedup is a
same-process ratio, immune to runner heterogeneity — but not to runner
*width*, so each floor is enforced only when the report's
[domains_available] says the machine can physically reach it; skips are
printed loudly so a mis-provisioned runner is visible in the log.
--only parallel-speedup restricts the run to that section (the per-PR
gate, against a --speedup-only report); everything else is push/nightly
material.
"""

import argparse
import json
import sys

TIGHT = 0.10  # allocation metrics: deterministic, small slack for GC jitter

# absolute speedup floors vs the jobs=1 row, enforced per job count when
# the machine has at least that many domains
SPEEDUP_FLOORS = {2: 1.3, 4: 2.0}


def load(path):
    with open(path) as f:
        return json.load(f)


def index_by(rows, key):
    return {row[key]: row for row in rows}


def check_parallel_speedup(base, cur, checks, tolerance):
    """Speedup floors + determinism + throughput-vs-baseline. Returns 0/1."""
    b_speed = index_by(base.get("parallel_speedup", []), "jobs")
    c_speed = index_by(cur.get("parallel_speedup", []), "jobs")
    domains = cur.get("domains_available")
    if domains is None:
        print("MISSING  domains_available: not in current report")
        return 1
    for jobs in b_speed:
        if jobs not in c_speed:
            print(f"MISSING  parallel_speedup/jobs={jobs:g}: not in current report")
            return 1
        checks.append((f"parallel_speedup/jobs={jobs:g} trials_per_sec",
                       b_speed[jobs]["trials_per_sec"],
                       c_speed[jobs]["trials_per_sec"], False, tolerance))
        # determinism, not performance: the mean must not move at all
        if b_speed[jobs]["mean_el"] != c_speed[jobs]["mean_el"]:
            print(f"FAIL     parallel_speedup/jobs={jobs:g} mean_el: "
                  f"{c_speed[jobs]['mean_el']!r} != baseline {b_speed[jobs]['mean_el']!r} "
                  "(seeded result changed)")
            return 1
    for jobs, floor in sorted(SPEEDUP_FLOORS.items()):
        row = c_speed.get(jobs)
        if row is None:
            print(f"MISSING  parallel_speedup/jobs={jobs:g}: not in current report")
            return 1
        if domains < jobs:
            print(f"skip     parallel_speedup/jobs={jobs:g} floor {floor:.1f}x: "
                  f"machine has {domains:g} domain(s), floor needs {jobs:g} "
                  "(enforced on wider runners)")
            continue
        speedup = row["speedup_vs_1"]
        if speedup < floor:
            print(f"FAIL     parallel_speedup/jobs={jobs:g}: {speedup:.2f}x < "
                  f"floor {floor:.1f}x vs sequential (the parallel runner "
                  "regressed; see lib/par)")
            return 1
        print(f"ok       parallel_speedup/jobs={jobs:g}: {speedup:.2f}x >= {floor:.1f}x")
    return 0


def evaluate(checks, tolerance):
    failed = 0
    for name, b, c, lower_better, tol in checks:
        if b <= 0:
            # a zero baseline is a hard floor: a path that allocated (or
            # cost) nothing must keep allocating nothing
            worse = lower_better and c > 1e-6
            delta = ""
        else:
            ratio = c / b
            worse = ratio > 1 + tol if lower_better else ratio < 1 - tol
            delta = f" ({c / b - 1:+.0%} vs baseline)"
        status = "FAIL" if worse else "ok"
        if worse:
            failed += 1
        print(f"{status:8s} {name}: baseline {b:.1f}, current {c:.1f}{delta}")

    if failed:
        print(f"\n{failed} metric(s) regressed beyond tolerance "
              f"({tolerance:.0%} timing, {TIGHT:.0%} allocation)")
        return 1
    print("\nno regressions beyond tolerance")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed one-sided slowdown fraction for timing metrics")
    ap.add_argument("--only", choices=["parallel-speedup"],
                    help="restrict the comparison to one section")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    checks = []  # (name, baseline, current, lower_is_better, tolerance)

    if args.only == "parallel-speedup":
        if check_parallel_speedup(base, cur, checks, args.tolerance):
            return 1
        return evaluate(checks, args.tolerance)

    for section, unit in (("interceptor_overhead", "ns_per_message"),
                          ("profiler_overhead", "ns_per_call")):
        b = index_by(base.get(section, []), "config")
        c = index_by(cur.get(section, []), "config")
        words = unit.replace("ns_", "minor_words_")
        for config in b:
            if config not in c:
                print(f"MISSING  {section}/{config}: not in current report")
                return 1
            checks.append((f"{section}/{config} {unit}",
                           b[config][unit], c[config][unit], True, args.tolerance))
            checks.append((f"{section}/{config} {words}",
                           b[config][words], c[config][words], True, TIGHT))

    if "events_per_sec" in base:
        checks.append(("events_per_sec",
                       base["events_per_sec"], cur.get("events_per_sec", 0.0),
                       False, args.tolerance))

    if check_parallel_speedup(base, cur, checks, args.tolerance):
        return 1

    # Adaptive-campaign overhead is self-relative (oblivious-strategy
    # seconds over fixed-schedule seconds, measured in the same process on
    # the same paired seeds), so it is checked against an absolute bound
    # rather than against the baseline file: the oblivious observe-decide-
    # act loop may cost at most 5% over the fixed schedule. The bound is
    # intentionally independent of --tolerance — runner noise cancels out
    # of a same-process ratio.
    ADAPTIVE_MAX_RATIO = 1.05
    adaptive = cur.get("adaptive_overhead")
    if adaptive is None:
        print("MISSING  adaptive_overhead: not in current report")
        return 1
    ratio = adaptive["ratio"]
    if ratio > ADAPTIVE_MAX_RATIO:
        print(f"FAIL     adaptive_overhead ratio: {ratio:.3f} > {ADAPTIVE_MAX_RATIO:.2f} "
              f"(oblivious {adaptive['oblivious_seconds']:.3f}s vs "
              f"fixed {adaptive['fixed_seconds']:.3f}s)")
        return 1
    print(f"ok       adaptive_overhead ratio: {ratio:.3f} <= {ADAPTIVE_MAX_RATIO:.2f}")

    # Defender-controller overhead follows the same discipline: the static
    # strategy attaches the full sensing stack (in-trial telemetry plane,
    # per-boundary observation assembly) but never acts. Paired CPU-time
    # remeasurement puts the sensing stack's true cost at 3-5% of the
    # campaign, right at the original 1.05 bound, which made the gate a
    # coin flip on measurement noise; the bound is set one notch above the
    # known cost so it still fails if sensing cost roughly doubles.
    DEFENDER_MAX_RATIO = 1.10
    defender = cur.get("defender_overhead")
    if defender is None:
        print("MISSING  defender_overhead: not in current report")
        return 1
    ratio = defender["ratio"]
    if ratio > DEFENDER_MAX_RATIO:
        print(f"FAIL     defender_overhead ratio: {ratio:.3f} > {DEFENDER_MAX_RATIO:.2f} "
              f"(static {defender['static_seconds']:.3f}s vs "
              f"plain {defender['plain_seconds']:.3f}s)")
        return 1
    print(f"ok       defender_overhead ratio: {ratio:.3f} <= {DEFENDER_MAX_RATIO:.2f}")

    # The telemetry plane (timeline + signal subscriber) is likewise a
    # same-process ratio against an untelemetered pass of the identical
    # seeded campaign. Paired CPU-time remeasurement puts the plane's true
    # cost at 4-5% of the event-emitting workload — at the original 1.05
    # bound, which made the gate a coin flip on measurement noise; as with
    # the defender gate, the bound sits one notch above the known cost so
    # it still fails if the subscriber cost roughly doubles.
    TIMELINE_MAX_RATIO = 1.10
    timeline = cur.get("timeline_overhead")
    if timeline is None:
        print("MISSING  timeline_overhead: not in current report")
        return 1
    ratio = timeline["ratio"]
    if ratio > TIMELINE_MAX_RATIO:
        print(f"FAIL     timeline_overhead ratio: {ratio:.3f} > {TIMELINE_MAX_RATIO:.2f} "
              f"(subscriber {timeline['subscriber_seconds']:.3f}s vs "
              f"baseline {timeline['baseline_seconds']:.3f}s)")
        return 1
    print(f"ok       timeline_overhead ratio: {ratio:.3f} <= {TIMELINE_MAX_RATIO:.2f}")

    # Causal tracing: the gated ratio compares the tracing-OFF path before
    # and after the traced pass has run (off2/off1) — the disabled path
    # must not get slower because the feature exists. The traced ratio is
    # informational (spans add real event volume) and is not gated.
    CAUSAL_MAX_RATIO = 1.05
    causal = cur.get("causal_overhead")
    if causal is None:
        print("MISSING  causal_overhead: not in current report")
        return 1
    ratio = causal["ratio"]
    if ratio > CAUSAL_MAX_RATIO:
        print(f"FAIL     causal_overhead off-path ratio: {ratio:.3f} > {CAUSAL_MAX_RATIO:.2f} "
              f"(plain {causal['plain_seconds']:.3f}s, "
              f"traced pass {causal['traced_seconds']:.3f}s, "
              f"traced ratio {causal['traced_ratio']:.2f}x informational)")
        return 1
    print(f"ok       causal_overhead off-path ratio: {ratio:.3f} <= {CAUSAL_MAX_RATIO:.2f} "
          f"(traced {causal['traced_ratio']:.2f}x, informational)")

    # Workload plane: requests_per_sec is a wall measurement and carries
    # the one-sided timing tolerance. Everything else in the section is a
    # deterministic property of the seeded simulation (logical request
    # counts, virtual-time latency quantiles, availability), so those are
    # pinned exactly — any drift means the seeded workload changed, which
    # is a semantic regression, not noise.
    workload = cur.get("workload_throughput")
    b_workload = base.get("workload_throughput")
    if workload is None or b_workload is None:
        missing = "current" if workload is None else "baseline"
        print(f"MISSING  workload_throughput: not in {missing} report")
        return 1
    checks.append(("workload_throughput requests_per_sec",
                   b_workload["requests_per_sec"], workload["requests_per_sec"],
                   False, args.tolerance))
    for key in ("logical_requests", "answered", "p50_vt", "p99_vt", "availability"):
        if workload.get(key) != b_workload.get(key):
            print(f"FAIL     workload_throughput {key}: {workload.get(key)!r} != "
                  f"baseline {b_workload.get(key)!r} (seeded workload changed)")
            return 1
        print(f"ok       workload_throughput {key}: {workload[key]!r} (pinned)")

    return evaluate(checks, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
