(* A fortified KV service under fire: the full S2 deployment (3 proxies,
   3 PB servers, shared server key, distinct proxy keys) with proactive
   obfuscation, attacked by a simultaneous direct + indirect campaign.

   The run prints a timeline: client traffic flows, probes are logged and
   sources blocked by proxies, rekeys evict any foothold, and the system
   either survives the horizon or the step of compromise is reported.
   A small key space (2^10) is used so compromise happens within the demo.

   Run with: dune exec examples/fortified_kv_service.exe *)

module Engine = Fortress_sim.Engine
module Trace = Fortress_sim.Trace
module Deployment = Fortress_core.Deployment
module Obfuscation = Fortress_core.Obfuscation
module Proxy = Fortress_core.Proxy
module Client = Fortress_core.Client
module Campaign = Fortress_attack.Campaign
module Keyspace = Fortress_defense.Keyspace

let () =
  let deployment =
    Deployment.create
      {
        Deployment.default_config with
        keyspace = Keyspace.of_size (1 lsl 10);
        seed = 2010;
        proxy = { Fortress_core.Proxy.default_config with detection_threshold = 8 };
      }
  in
  let engine = Deployment.engine deployment in
  let period = 100.0 in
  let sched = Obfuscation.attach deployment ~mode:Obfuscation.PO ~period in

  (* legitimate traffic keeps flowing during the attack *)
  let client = Deployment.new_client deployment ~name:"legit-client" in
  let served = ref 0 in
  ignore
    (Engine.every engine ~period:25.0 (fun () ->
         ignore
           (Client.submit client
              ~cmd:(Printf.sprintf "put k%d v%d" !served !served)
              ~on_response:(fun _ -> incr served))));

  let campaign =
    Campaign.launch deployment
      (Campaign.make_config ~omega:48 ~kappa:0.8 ~period ~seed:99 ())
  in
  let horizon = 60 in
  (match Campaign.run_until_compromise campaign ~max_steps:horizon with
  | Some step -> Printf.printf "system COMPROMISED during unit time-step %d\n" step
  | None -> Printf.printf "system SURVIVED the %d-step horizon\n" horizon);

  let stats = Campaign.stats campaign in
  let open Fortress_attack.Campaign_intf in
  Printf.printf "\ncampaign statistics:\n";
  Printf.printf "  direct probes at proxies : %d\n" stats.Stats.direct_probes_sent;
  Printf.printf "  indirect probes sent     : %d\n" stats.Stats.indirect_probes_sent;
  Printf.printf "  indirect probes blocked  : %d\n" stats.Stats.indirect_probes_blocked;
  Printf.printf "  launch-pad probes        : %d\n" stats.Stats.launchpad_probes_sent;
  Printf.printf "  attacker sources burned  : %d\n" stats.Stats.sources_burned;
  Printf.printf "  effective kappa achieved : %.3f (intended 0.8)\n"
    (Campaign.effective_kappa campaign);
  Printf.printf "\ndefence statistics:\n";
  Printf.printf "  obfuscation steps        : %d (%s)\n"
    (Obfuscation.steps_completed sched)
    (Obfuscation.mode_to_string (Obfuscation.mode sched));
  Array.iter
    (fun proxy ->
      Printf.printf "  proxy %d: %d invalid requests logged, %d sources blocked\n"
        (Proxy.index proxy) (Proxy.invalid_observed proxy)
        (List.length (Proxy.blocked_sources proxy)))
    (Deployment.proxies deployment);
  Printf.printf "  legit requests served    : %d\n" !served;

  print_endline "\nlast trace events:";
  print_string (Trace.dump ~limit:12 (Engine.trace engine))
