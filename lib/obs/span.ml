type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_start : float;
  mutable sp_attrs : (string * string) list;
  mutable sp_finished : bool;
}

type ctx = {
  mutable now : unit -> float;
  mutable on_finish : Event.t -> unit;
  mutable next_id : int;
  mutable active : int;
  mutable finished : int;
}

let create ~now () = { now; on_finish = ignore; next_id = 0; active = 0; finished = 0 }
let set_clock ctx now = ctx.now <- now
let set_on_finish ctx f = ctx.on_finish <- f
let set_id_base ctx base = ctx.next_id <- base

let start ctx ?parent name =
  ctx.next_id <- ctx.next_id + 1;
  ctx.active <- ctx.active + 1;
  {
    sp_id = ctx.next_id;
    sp_parent = Option.map (fun p -> p.sp_id) parent;
    sp_name = name;
    sp_start = ctx.now ();
    sp_attrs = [];
    sp_finished = false;
  }

let set_attr sp key value = sp.sp_attrs <- (key, value) :: List.remove_assoc key sp.sp_attrs

let finish ctx sp =
  if not sp.sp_finished then begin
    sp.sp_finished <- true;
    ctx.active <- ctx.active - 1;
    ctx.finished <- ctx.finished + 1;
    ctx.on_finish
      (Event.Span_finished
         {
           id = sp.sp_id;
           parent = sp.sp_parent;
           name = sp.sp_name;
           start_time = sp.sp_start;
           duration = ctx.now () -. sp.sp_start;
           attrs = List.rev sp.sp_attrs;
         })
  end

let id sp = sp.sp_id
let name sp = sp.sp_name
let parent_id sp = sp.sp_parent
let start_time sp = sp.sp_start
let attrs sp = List.rev sp.sp_attrs
let is_finished sp = sp.sp_finished
let active_count ctx = ctx.active
let finished_count ctx = ctx.finished
