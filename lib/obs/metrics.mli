(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    Handles are obtained once (registering the metric on first lookup) and
    then updated through field mutation only, so [incr] and [observe] on a
    held handle allocate nothing — safe for the probe/message hot paths.
    Histograms reuse {!Fortress_util.Histogram}. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration — idempotent per name}

    Looking a name up again returns the same handle. Registering a name that
    already exists with a different metric kind raises [Invalid_argument]. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram :
  t -> ?log_scale:bool -> lo:float -> hi:float -> bins:int -> string -> histogram
(** Linear bins by default; [log_scale] requires [0 < lo < hi]. The shape
    arguments are only consulted on first registration. *)

(** {2 Hot-path updates} *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {2 Reads} *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_data : histogram -> Fortress_util.Histogram.t

val find_counter : t -> string -> int
(** Value of the named counter, or 0 when it was never registered. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; underflow : int; overflow : int }

val snapshot : t -> (string * value) list
(** All registered metrics, sorted by name. *)

val reset : t -> unit
(** Zero every counter and gauge and empty every histogram; registrations
    (and handles already held) survive. *)

val to_table : t -> Fortress_util.Table.t
val render : t -> string
