(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    Handles are obtained once (registering the metric on first lookup) and
    then updated through field mutation only, so [incr] and [observe] on a
    held handle allocate nothing — safe for the probe/message hot paths.
    Histograms reuse {!Fortress_util.Histogram}. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration — idempotent per name}

    Looking a name up again returns the same handle. Registering a name that
    already exists with a different metric kind raises [Invalid_argument]. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram :
  t -> ?log_scale:bool -> lo:float -> hi:float -> bins:int -> string -> histogram
(** Linear bins by default; [log_scale] requires [0 < lo < hi]. The shape
    arguments are only consulted on first registration. *)

(** {2 Hot-path updates} *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {2 Reads} *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_data : histogram -> Fortress_util.Histogram.t

val find_counter : t -> string -> int
(** Value of the named counter, or 0 when it was never registered. *)

val find_gauge : t -> string -> float
(** Value of the named gauge, or 0.0 when it was never registered. *)

val find_histogram : t -> string -> Fortress_util.Histogram.t option
(** Live data of the named histogram, or [None] when it was never
    registered. The returned histogram is the registry's own — treat it
    as read-only. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;  (** total observations, including under/overflow *)
      underflow : int;
      overflow : int;
      sum : float;  (** sum of every observation *)
      buckets : (float * float * int) list;
          (** per-bucket [(lo, hi, count)], ascending; lo inclusive, hi
              exclusive *)
    }

val snapshot : t -> (string * value) list
(** All registered metrics, sorted by name. *)

val histogram_value : Fortress_util.Histogram.t -> value
(** The [Histogram] {!value} of live histogram data — what {!snapshot}
    records for it; pairs with {!find_histogram} and {!quantile}. *)

val quantile : value -> float -> float option
(** [quantile v q] interpolates the [q]-quantile ([0..1]) from a
    [Histogram] value's bucket counts; [None] for counters, gauges and
    empty histograms. Mass in the under/overflow counters clamps to the
    outermost finite bucket edges. *)

val reset : t -> unit
(** Zero every counter and gauge and empty every histogram; registrations
    (and handles already held) survive. *)

val to_table : t -> Fortress_util.Table.t
val render : t -> string
