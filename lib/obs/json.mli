(** Minimal JSON tree, emitter and parser.

    Kept dependency-free so the observability layer can serialize events
    without pulling a JSON package into the substrate libraries. The parser
    accepts standard JSON (objects, arrays, strings with escapes, numbers,
    booleans, null) and is used by the [obs] trace summarizer and the
    round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Integral [Num] values print without a
    decimal point so counters stay readable. *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing whitespace is allowed, trailing
    garbage is an error. The error string carries a character offset. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** [member key (Obj _)] is the value bound to [key], if any. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
val bool : t -> bool option
val list : t -> t list option
