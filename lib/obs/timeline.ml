(* Windowed aggregation over the event plane.

   A timeline is a plain subscriber: it never emits, never mutates the
   engine, and costs a couple of hashtable bumps per event, so attaching
   one cannot perturb the simulation or its trace digest. Windows are
   fixed-width in virtual time, keyed by [floor (t / width)], and kept in
   a bounded ring: when more than [capacity] windows are live the oldest
   is evicted.

   Virtual time is NOT assumed monotonic. Pooled streams — e.g. an inject
   run replaying per-trial buffers back-to-back, each restarting near
   t = 0 — revisit old windows; those late events land in the retained
   window for their timestamp (or are counted in [dropped] if the ring
   has moved past it) without re-firing close hooks. Close hooks fire
   only when the frontier (highest window index seen) advances, which on
   a monotonic stream is exactly once per window, in order. *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_p50 : float;
  hv_p90 : float;
  hv_p99 : float;
}

type window = {
  index : int;
  t_lo : float;
  t_hi : float;
  total : int;
  counts : (string * int) list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

type acc = {
  a_index : int;
  mutable a_total : int;
  a_counts : (string, int ref) Hashtbl.t;
  (* registry attribution, filled in at close time on monotonic streams *)
  mutable a_counters : (string * int) list;
  mutable a_gauges : (string * float) list;
  mutable a_histograms : (string * hist_view) list;
}

(* lifetime count + latest timestamp per key, merged into one record so
   the per-event path pays one [totals] lookup instead of two *)
type key_stat = { mutable k_n : int; mutable k_last : float }

(* Interned counter for one of the fixed event-plane keys. The subscriber
   runs once per event, and hashing key strings there is the dominant
   subscriber cost — a slot turns the common case (every constructor
   except Note, plus probe kinds/outcomes) into array indexing. A slot
   buffers the count for a single window ([s_widx]/[s_wcount]); the
   buffered count is flushed into that window's hashtable when the slot
   retargets or the window closes, so per-window views stay exact even on
   non-monotone streams. *)
type slot = {
  s_key : string;
  mutable s_n : int;  (* lifetime count *)
  mutable s_last : float;  (* latest timestamp *)
  mutable s_widx : int;  (* window the buffered count belongs to *)
  mutable s_wcount : int;  (* count not yet flushed into that window *)
}

type t = {
  width : float;
  capacity : int;
  registry : Metrics.t option;
  wins : (int, acc) Hashtbl.t;
  mutable cur : acc option;  (* cache for the frontier window's acc *)
  mutable lo : int;  (* lowest retained index; meaningful when hi >= 0 *)
  mutable hi : int;  (* frontier: highest window opened; -1 before any event *)
  mutable opened : int;  (* windows ever opened, gap windows included *)
  mutable dropped : int;  (* late events older than the retained ring *)
  mutable seen : int;
  slots : slot array;  (* fixed keys; dynamic keys fall back to [totals] *)
  totals : (string, key_stat) Hashtbl.t;
  mutable hooks : (window -> unit) list;
  mutable prev_snapshot : (string * Metrics.value) list;
  win_hist : Metrics.histogram option;
  mutable finished : bool;
}

(* Keys must mirror Sink.counting's exactly (the qcheck property depends
   on it). Indices are the contract between [static_keys], [slot_id],
   [kind_slot], and [outcome_slot]. *)
let static_keys =
  [|
    "events.probe";
    "events.compromise";
    "events.rekey";
    "events.recover";
    "events.step";
    "events.invalid_observed";
    "events.source_blocked";
    "events.source_rotated";
    "events.request_submitted";
    "events.request_completed";
    "events.reply_rejected";
    "events.msg_delivered";
    "events.msg_dropped";
    "events.failover";
    "events.repl";
    "events.trial";
    "events.span";
    "events.fault";
    "events.directive";
    "probe.direct";
    "probe.indirect";
    "probe.launchpad";
    "probe.crash";
    "probe.intrusion";
    "probe.blocked";
  |]

(* -1 = no interned slot; Note labels are open-ended *)
let slot_id = function
  | Event.Probe _ -> 0
  | Event.Compromise _ -> 1
  | Event.Rekey _ -> 2
  | Event.Recover _ -> 3
  | Event.Step _ -> 4
  | Event.Invalid_observed _ -> 5
  | Event.Source_blocked _ -> 6
  | Event.Source_rotated _ -> 7
  | Event.Request_submitted _ -> 8
  | Event.Request_completed _ -> 9
  | Event.Reply_rejected _ -> 10
  | Event.Msg_delivered _ -> 11
  | Event.Msg_dropped _ -> 12
  | Event.Failover _ -> 13
  | Event.Repl _ -> 14
  | Event.Trial _ -> 15
  | Event.Span_finished _ -> 16
  | Event.Fault _ -> 17
  | Event.Directive _ -> 18
  | Event.Note _ -> -1

let kind_slot = function Event.Direct -> 19 | Event.Indirect -> 20 | Event.Launchpad -> 21
let outcome_slot = function Event.Crashed -> 22 | Event.Intruded -> 23 | Event.Blocked -> 24

let create ?(capacity = 512) ?registry ~width () =
  if not (width > 0.0) then invalid_arg "Timeline.create: width must be positive";
  if capacity <= 0 then invalid_arg "Timeline.create: capacity must be positive";
  let win_hist =
    (* events-per-window distribution; lives in the caller's registry so it
       shows up in snapshots and the OpenMetrics exposition *)
    Option.map
      (fun r -> Metrics.histogram r ~lo:0.0 ~hi:4096.0 ~bins:64 "timeline.window_events")
      registry
  in
  {
    width;
    capacity;
    registry;
    wins = Hashtbl.create 64;
    cur = None;
    lo = 0;
    hi = -1;
    opened = 0;
    dropped = 0;
    seen = 0;
    slots =
      Array.map
        (fun key -> { s_key = key; s_n = 0; s_last = neg_infinity; s_widx = min_int; s_wcount = 0 })
        static_keys;
    totals = Hashtbl.create 32;
    hooks = [];
    prev_snapshot = [];
    win_hist;
    finished = false;
  }

let width t = t.width
let window_count t = t.opened
let dropped t = t.dropped
let events_seen t = t.seen
let on_window t f = t.hooks <- t.hooks @ [ f ]

(* Window counts live in two places: the acc's hashtable (dynamic keys and
   flushed slot counts) and any slot still buffering for this window. A
   key can appear in both — e.g. a Note whose label collides with a fixed
   one — so the merge is additive. *)
let counts_of t acc =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter (fun k r -> Hashtbl.replace tbl k !r) acc.a_counts;
  Array.iter
    (fun s ->
      if s.s_widx = acc.a_index && s.s_wcount > 0 then
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl s.s_key) in
        Hashtbl.replace tbl s.s_key (prev + s.s_wcount))
    t.slots;
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let view t acc =
  {
    index = acc.a_index;
    t_lo = float_of_int acc.a_index *. t.width;
    t_hi = float_of_int (acc.a_index + 1) *. t.width;
    total = acc.a_total;
    counts = counts_of t acc;
    counters = acc.a_counters;
    gauges = acc.a_gauges;
    histograms = acc.a_histograms;
  }

(* Diff the registry against the snapshot taken at the previous close:
   counter deltas, gauge last-values, histogram bucket deltas reduced to
   count/sum/percentiles. The timeline's own "timeline.*" metrics are
   excluded to avoid self-reference. *)
let hist_delta ~prev cur =
  match (cur, prev) with
  | Metrics.Histogram c, Some (Metrics.Histogram p) ->
      let buckets =
        List.map2
          (fun (lo, hi, cc) (_, _, pc) -> (lo, hi, cc - pc))
          c.buckets p.buckets
      in
      Metrics.Histogram
        {
          count = c.count - p.count;
          underflow = c.underflow - p.underflow;
          overflow = c.overflow - p.overflow;
          sum = c.sum -. p.sum;
          buckets;
        }
  | _ -> cur

let close_attribution t acc =
  match t.registry with
  | None -> ()
  | Some r ->
      let cur =
        List.filter
          (fun (name, _) -> not (String.length name >= 9 && String.sub name 0 9 = "timeline."))
          (Metrics.snapshot r)
      in
      let prev name = List.assoc_opt name t.prev_snapshot in
      let counters = ref [] and gauges = ref [] and hists = ref [] in
      List.iter
        (fun (name, v) ->
          match v with
          | Metrics.Counter n ->
              let p = match prev name with Some (Metrics.Counter p) -> p | _ -> 0 in
              if n - p <> 0 then counters := (name, n - p) :: !counters
          | Metrics.Gauge x -> gauges := (name, x) :: !gauges
          | Metrics.Histogram _ -> (
              let d = hist_delta ~prev:(prev name) v in
              match d with
              | Metrics.Histogram { count; sum; _ } when count > 0 ->
                  let pct q = Option.value ~default:0.0 (Metrics.quantile d q) in
                  hists :=
                    ( name,
                      {
                        hv_count = count;
                        hv_sum = sum;
                        hv_p50 = pct 0.5;
                        hv_p90 = pct 0.9;
                        hv_p99 = pct 0.99;
                      } )
                    :: !hists
              | _ -> ()))
        cur;
      acc.a_counters <- List.rev !counters;
      acc.a_gauges <- List.rev !gauges;
      acc.a_histograms <- List.rev !hists;
      t.prev_snapshot <- cur;
      (* observed after the snapshot so it lands in the next delta, not its
         own window's *)
      Option.iter (fun h -> Metrics.observe h (float_of_int acc.a_total)) t.win_hist

let close_window t index =
  match Hashtbl.find_opt t.wins index with
  | None -> ()
  | Some acc ->
      close_attribution t acc;
      let v = view t acc in
      List.iter (fun f -> f v) t.hooks

let open_window t index =
  let acc =
    {
      a_index = index;
      a_total = 0;
      a_counts = Hashtbl.create 8;
      a_counters = [];
      a_gauges = [];
      a_histograms = [];
    }
  in
  Hashtbl.replace t.wins index acc;
  t.opened <- t.opened + 1;
  while index - t.lo + 1 > t.capacity do
    Hashtbl.remove t.wins t.lo;
    t.lo <- t.lo + 1
  done;
  acc

let advance_to t index =
  (* A pathological jump (e.g. a bogus timestamp) would otherwise open one
     window per step of the gap; windows the ring would immediately evict
     are skipped, and skipped windows still count in [opened]. *)
  if index - t.hi > t.capacity then begin
    close_window t t.hi;
    let skipped = index - t.hi - t.capacity in
    t.opened <- t.opened + skipped;
    Hashtbl.reset t.wins;
    t.hi <- index - t.capacity;
    t.lo <- t.hi + 1
  end;
  while t.hi < index do
    if t.hi >= t.lo then close_window t t.hi;
    ignore (open_window t (t.hi + 1));
    t.hi <- t.hi + 1
  done

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let bump_by tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

(* dynamic keys: Note labels and "fault.<action>" refinements *)
let record t acc ~time key =
  bump acc.a_counts key;
  match Hashtbl.find_opt t.totals key with
  | Some s ->
      s.k_n <- s.k_n + 1;
      if time > s.k_last then s.k_last <- time
  | None -> Hashtbl.replace t.totals key { k_n = 1; k_last = time }

(* interned keys: lifetime stats are plain field bumps; the window count
   buffers in the slot and is flushed into the previous window's
   hashtable only when the slot retargets (evicted windows discard) *)
let record_slot t ~time ~index i =
  let s = Array.unsafe_get t.slots i in
  s.s_n <- s.s_n + 1;
  if time > s.s_last then s.s_last <- time;
  if s.s_widx = index then s.s_wcount <- s.s_wcount + 1
  else begin
    (if s.s_wcount > 0 then
       match Hashtbl.find_opt t.wins s.s_widx with
       | Some old -> bump_by old.a_counts s.s_key s.s_wcount
       | None -> ());
    s.s_widx <- index;
    s.s_wcount <- 1
  end

let index_of t time = int_of_float (Float.floor (time /. t.width))

let subscriber t ~time ev =
  (* Signal alarms are published onto the same sink the timeline watches;
     aggregating them would feed the detector its own output (and re-enter
     this subscriber mid-advance), so the telemetry plane is blind to
     them. Only Note events can carry that label. *)
  match ev with
  | Event.Note { label = "signal.alarm"; _ } -> ()
  | _ -> begin
  t.seen <- t.seen + 1;
  let index = max 0 (index_of t time) in
  let acc =
    (* fast path: consecutive events overwhelmingly share the frontier
       window, so skip the [wins] lookup when the cached acc matches *)
    match t.cur with
    | Some a when a.a_index = index -> Some a
    | _ ->
        let resolved =
          if t.hi < 0 then begin
            t.lo <- index;
            t.hi <- index;
            Some (open_window t index)
          end
          else if index > t.hi then begin
            advance_to t index;
            Hashtbl.find_opt t.wins index
          end
          else Hashtbl.find_opt t.wins index
        in
        if index = t.hi then t.cur <- resolved;
        resolved
  in
  match acc with
  | None -> t.dropped <- t.dropped + 1
  | Some acc -> (
      acc.a_total <- acc.a_total + 1;
      let index = acc.a_index in
      (match slot_id ev with
      | -1 -> record t acc ~time ("events." ^ Event.label ev)
      | i -> record_slot t ~time ~index i);
      match ev with
      | Event.Probe { kind; outcome; _ } ->
          record_slot t ~time ~index (kind_slot kind);
          record_slot t ~time ~index (outcome_slot outcome)
      | Event.Fault { action; _ } -> record t acc ~time ("fault." ^ action)
      | _ -> ())
  end

let finish t =
  if not t.finished then begin
    t.finished <- true;
    if t.hi >= 0 then close_window t t.hi
  end

let windows t =
  if t.hi < 0 then []
  else
    List.filter_map
      (fun i -> Option.map (view t) (Hashtbl.find_opt t.wins i))
      (List.init (t.hi - t.lo + 1) (fun k -> t.lo + k))

let totals t =
  let tbl = Hashtbl.create 32 in
  Hashtbl.iter (fun k s -> Hashtbl.replace tbl k s.k_n) t.totals;
  Array.iter
    (fun s ->
      if s.s_n > 0 then
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl s.s_key) in
        Hashtbl.replace tbl s.s_key (prev + s.s_n))
    t.slots;
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total t key =
  let dyn = match Hashtbl.find_opt t.totals key with Some s -> s.k_n | None -> 0 in
  Array.fold_left (fun n s -> if s.s_key = key then n + s.s_n else n) dyn t.slots

let last_seen t key =
  let dyn = Option.map (fun s -> s.k_last) (Hashtbl.find_opt t.totals key) in
  Array.fold_left
    (fun best s ->
      if s.s_key = key && s.s_n > 0 then
        match best with Some b when b >= s.s_last -> best | _ -> Some s.s_last
      else best)
    dyn t.slots
let count w key = Option.value ~default:0 (List.assoc_opt key w.counts)
let rate t w key = float_of_int (count w key) /. t.width
