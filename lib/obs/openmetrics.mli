(** OpenMetrics / Prometheus text exposition.

    Renders a {!Metrics} snapshot (counters as [_total] series, gauges
    verbatim, histograms as cumulative [_bucket{le="..."}] / [_sum] /
    [_count] families using the per-bucket counts carried by
    {!Metrics.value}) plus, optionally, the final state of a
    {!Timeline} (window/event totals and per-key lifetime counters) and a
    {!Signal} (latest raw/EWMA/CUSUM per signal and alarm totals). The
    output is terminated by the OpenMetrics [# EOF] marker and is a pure
    function of its inputs. *)

val sanitize : string -> string
(** Coerce a string into a valid metric-name fragment
    ([[a-zA-Z_:][a-zA-Z0-9_:]*], sans colons): every other character maps
    to ['_'], a leading digit gains a ['_'] prefix, and the empty string
    becomes ["_"]. *)

val escape_label : string -> string
(** Escape a label {e value} per the exposition format: backslash,
    double quote and newline become the two-character sequences
    ["\\\\"], ["\\\""] and ["\\n"]. Everything else — including braces,
    commas and non-ASCII bytes — passes through verbatim, as the spec
    requires. *)

val render :
  ?prefix:string ->
  ?metrics:Metrics.t ->
  ?timeline:Timeline.t ->
  ?signals:Signal.t ->
  ?latency:Latency.t ->
  unit ->
  string
(** [prefix] defaults to ["fortress"] and goes through {!sanitize};
    label values (timeline keys, signal names, latency chains) go through
    {!escape_label}. [latency] renders a [<prefix>_latency_vt] summary
    family (p50/p90/p99 quantiles, [_sum], [_count]) per non-empty chain,
    plus a [_censored_total] counter for chains left open. *)
