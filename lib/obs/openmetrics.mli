(** OpenMetrics / Prometheus text exposition.

    Renders a {!Metrics} snapshot (counters as [_total] series, gauges
    verbatim, histograms as cumulative [_bucket{le="..."}] / [_sum] /
    [_count] families using the per-bucket counts carried by
    {!Metrics.value}) plus, optionally, the final state of a
    {!Timeline} (window/event totals and per-key lifetime counters) and a
    {!Signal} (latest raw/EWMA/CUSUM per signal and alarm totals). The
    output is terminated by the OpenMetrics [# EOF] marker and is a pure
    function of its inputs. *)

val render :
  ?prefix:string ->
  ?metrics:Metrics.t ->
  ?timeline:Timeline.t ->
  ?signals:Signal.t ->
  unit ->
  string
(** [prefix] defaults to ["fortress"]; metric names are sanitized to
    [[a-zA-Z0-9_]]. *)
