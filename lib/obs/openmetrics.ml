(* OpenMetrics / Prometheus text exposition of a Metrics registry and the
   final state of a Timeline + Signal pair. Pure rendering: iterates
   snapshots, mutates nothing, and is therefore as deterministic as its
   inputs. *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; we don't emit colons,
   so map every other character to '_' and guard the first position
   against digits (and emptiness) — "9p" becomes "_9p", not an invalid
   exposition another scraper rejects. *)
let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let num x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let metric buf ~typ name lines =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ);
  List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) lines

let starts_with ~p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let metrics_section buf ~prefix ~skip_signals registry =
  List.iter
    (fun (name, v) ->
      (* the signals section renders richer labelled families for the
         "signal.*" registry entries; emitting both would duplicate the
         fortress_signal_alarms_total family, which OpenMetrics forbids *)
      if skip_signals && starts_with ~p:"signal." name then ()
      else
      let base = prefix ^ "_" ^ sanitize name in
      match v with
      | Metrics.Counter n -> metric buf ~typ:"counter" (base ^ "_total")
            [ Printf.sprintf "%s_total %d" base n ]
      | Metrics.Gauge x -> metric buf ~typ:"gauge" base [ Printf.sprintf "%s %s" base (num x) ]
      | Metrics.Histogram { count; underflow; sum; buckets; _ } ->
          (* cumulative counts; mass below the first edge (underflow) is
             inside every bucket, the +Inf bucket is the total count *)
          let cum = ref underflow in
          let bucket_lines =
            List.map
              (fun (_, hi, c) ->
                cum := !cum + c;
                Printf.sprintf "%s_bucket{le=\"%s\"} %d" base (num hi) !cum)
              buckets
          in
          metric buf ~typ:"histogram" base
            (bucket_lines
            @ [
                Printf.sprintf "%s_bucket{le=\"+Inf\"} %d" base count;
                Printf.sprintf "%s_sum %s" base (num sum);
                Printf.sprintf "%s_count %d" base count;
              ]))
    (Metrics.snapshot registry)

let timeline_section buf ~prefix tl =
  let p = prefix ^ "_timeline" in
  metric buf ~typ:"gauge" (p ^ "_width") [ Printf.sprintf "%s_width %s" p (num (Timeline.width tl)) ];
  metric buf ~typ:"gauge" (p ^ "_windows")
    [ Printf.sprintf "%s_windows %d" p (Timeline.window_count tl) ];
  metric buf ~typ:"counter" (p ^ "_events_total")
    [ Printf.sprintf "%s_events_total %d" p (Timeline.events_seen tl) ];
  metric buf ~typ:"counter" (p ^ "_dropped_total")
    [ Printf.sprintf "%s_dropped_total %d" p (Timeline.dropped tl) ];
  metric buf ~typ:"counter" (p ^ "_key_total")
    (List.map
       (fun (key, n) -> Printf.sprintf "%s_key_total{key=\"%s\"} %d" p (escape_label key) n)
       (Timeline.totals tl))

let signals_section buf ~prefix sg =
  let p = prefix ^ "_signal" in
  let per series f =
    List.filter_map
      (fun kind ->
        Option.map
          (fun (pt : Signal.point) ->
            Printf.sprintf "%s_%s{signal=\"%s\"} %s" p series
              (escape_label (Signal.kind_name kind))
              (num (f pt)))
          (Signal.latest sg kind))
      Signal.all
  in
  metric buf ~typ:"gauge" (p ^ "_raw") (per "raw" (fun pt -> pt.Signal.raw));
  metric buf ~typ:"gauge" (p ^ "_ewma") (per "ewma" (fun pt -> pt.Signal.ewma));
  metric buf ~typ:"gauge" (p ^ "_cusum") (per "cusum" (fun pt -> pt.Signal.cusum));
  let alarm_counts =
    List.map
      (fun kind ->
        let n =
          List.length (List.filter (fun (k, _) -> k = kind) (Signal.alarms sg))
        in
        Printf.sprintf "%s_alarms_total{signal=\"%s\"} %d" p
          (escape_label (Signal.kind_name kind))
          n)
      Signal.all
  in
  metric buf ~typ:"counter" (p ^ "_alarms_total") alarm_counts

let latency_section buf ~prefix lat =
  let p = prefix ^ "_latency_vt" in
  let lines =
    List.concat_map
      (fun kind ->
        match Latency.summary lat kind with
        | None -> []
        | Some s ->
            let chain = escape_label (Latency.kind_name kind) in
            let q quantile v =
              if Float.is_nan v then []
              else [ Printf.sprintf "%s{chain=\"%s\",quantile=\"%s\"} %s" p chain quantile (num v) ]
            in
            q "0.5" s.Latency.s_p50 @ q "0.9" s.Latency.s_p90 @ q "0.99" s.Latency.s_p99
            @ [
                Printf.sprintf "%s_sum{chain=\"%s\"} %s" p chain (num s.Latency.s_sum);
                Printf.sprintf "%s_count{chain=\"%s\"} %d" p chain s.Latency.s_count;
              ])
      Latency.kinds
  in
  if lines <> [] then metric buf ~typ:"summary" p lines;
  let censored =
    List.filter_map
      (fun kind ->
        match Latency.censored lat kind with
        | 0 -> None
        | n ->
            Some
              (Printf.sprintf "%s_censored_total{chain=\"%s\"} %d" p
                 (escape_label (Latency.kind_name kind))
                 n))
      Latency.kinds
  in
  if censored <> [] then metric buf ~typ:"counter" (p ^ "_censored_total") censored

let render ?(prefix = "fortress") ?metrics ?timeline ?signals ?latency () =
  let prefix = sanitize prefix in
  let buf = Buffer.create 1024 in
  Option.iter (metrics_section buf ~prefix ~skip_signals:(signals <> None)) metrics;
  Option.iter (timeline_section buf ~prefix) timeline;
  Option.iter (signals_section buf ~prefix) signals;
  Option.iter (latency_section buf ~prefix) latency;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
