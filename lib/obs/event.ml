type tier = Proxy_tier | Server_tier
type probe_kind = Direct | Indirect | Launchpad
type probe_outcome = Crashed | Intruded | Blocked

type t =
  | Probe of { kind : probe_kind; tier : tier; target : int; outcome : probe_outcome }
  | Compromise of { tier : tier; index : int }
  | Rekey of { nodes : int }
  | Recover of { nodes : int }
  | Step of { n : int }
  | Invalid_observed of { proxy : int }
  | Source_blocked of { proxy : int; source : int }
  | Source_rotated of { burned : int }
  | Request_submitted of { id : string }
  | Request_completed of { id : string; accepted : bool }
  | Reply_rejected of { id : string }
  | Msg_delivered of { src : int; dst : int }
  | Msg_dropped of { src : int; dst : int; reason : string }
  | Failover of { proto : string; replica : int; view : int }
  | Repl of { proto : string; kind : string; detail : string }
  | Trial of { index : int; seed : int; lifetime : float option }
  | Span_finished of {
      id : int;
      parent : int option;
      name : string;
      start_time : float;
      duration : float;
      attrs : (string * string) list;
    }
  | Fault of { action : string; target : string; detail : string }
  | Directive of { step : int; strategy : string; detail : string }
  | Note of { label : string; detail : string }

let tier_to_string = function Proxy_tier -> "proxy" | Server_tier -> "server"

let tier_of_string = function
  | "proxy" -> Some Proxy_tier
  | "server" -> Some Server_tier
  | _ -> None

let kind_to_string = function Direct -> "direct" | Indirect -> "indirect" | Launchpad -> "launchpad"

let kind_of_string = function
  | "direct" -> Some Direct
  | "indirect" -> Some Indirect
  | "launchpad" -> Some Launchpad
  | _ -> None

let outcome_to_string = function Crashed -> "crash" | Intruded -> "intrusion" | Blocked -> "blocked"

let outcome_of_string = function
  | "crash" -> Some Crashed
  | "intrusion" -> Some Intruded
  | "blocked" -> Some Blocked
  | _ -> None

let label = function
  | Probe _ -> "probe"
  | Compromise _ -> "compromise"
  | Rekey _ -> "rekey"
  | Recover _ -> "recover"
  | Step _ -> "step"
  | Invalid_observed _ -> "invalid_observed"
  | Source_blocked _ -> "source_blocked"
  | Source_rotated _ -> "source_rotated"
  | Request_submitted _ -> "request_submitted"
  | Request_completed _ -> "request_completed"
  | Reply_rejected _ -> "reply_rejected"
  | Msg_delivered _ -> "msg_delivered"
  | Msg_dropped _ -> "msg_dropped"
  | Failover _ -> "failover"
  | Repl _ -> "repl"
  | Trial _ -> "trial"
  | Span_finished _ -> "span"
  | Fault _ -> "fault"
  | Directive _ -> "directive"
  | Note { label; _ } -> label

let detail = function
  | Probe { kind; tier; target; outcome } ->
      Printf.sprintf "%s probe at %s %d: %s" (kind_to_string kind) (tier_to_string tier) target
        (outcome_to_string outcome)
  | Compromise { tier; index } -> Printf.sprintf "%s %d compromised" (tier_to_string tier) index
  | Rekey { nodes } -> Printf.sprintf "rekeyed %d nodes (proactive obfuscation)" nodes
  | Recover { nodes } -> Printf.sprintf "recovered %d nodes (same keys)" nodes
  | Step { n } -> Printf.sprintf "attack step %d begins" n
  | Invalid_observed { proxy } -> Printf.sprintf "proxy %d logged an invalid request" proxy
  | Source_blocked { proxy; source } -> Printf.sprintf "proxy %d blocks source %d" proxy source
  | Source_rotated { burned } -> Printf.sprintf "attacker rotates source (%d burned)" burned
  | Request_submitted { id } -> Printf.sprintf "request %s submitted" id
  | Request_completed { id; accepted } ->
      Printf.sprintf "request %s %s" id (if accepted then "accepted" else "abandoned")
  | Reply_rejected { id } -> Printf.sprintf "reply for %s rejected (bad signature)" id
  | Msg_delivered { src; dst } -> Printf.sprintf "msg %d -> %d delivered" src dst
  | Msg_dropped { src; dst; reason } -> Printf.sprintf "msg %d -> %d dropped (%s)" src dst reason
  | Failover { proto; replica; view } ->
      Printf.sprintf "%s replica %d takes over (view %d)" proto replica view
  | Repl { proto; kind; detail } -> Printf.sprintf "%s %s: %s" proto kind detail
  | Trial { index; seed; lifetime } -> (
      match lifetime with
      | Some l -> Printf.sprintf "trial %d (seed %d): lifetime %g" index seed l
      | None -> Printf.sprintf "trial %d (seed %d): censored" index seed)
  | Span_finished { id; name; start_time; duration; _ } ->
      Printf.sprintf "span %s#%d [%g, %g]" name id start_time (start_time +. duration)
  | Fault { action; target; detail } ->
      if detail = "" then Printf.sprintf "fault %s on %s" action target
      else Printf.sprintf "fault %s on %s (%s)" action target detail
  | Directive { step; strategy; detail } ->
      Printf.sprintf "strategy %s adapts at step %d boundary: %s" strategy step detail
  | Note { detail; _ } -> detail

let verbosity = function
  | Probe _ | Invalid_observed _ | Request_submitted _ | Request_completed _ | Reply_rejected _
  | Msg_delivered _ | Msg_dropped _ | Span_finished _ ->
      `Debug
  (* per-message link faults fire at message rate; lifecycle faults
     (crash/restart/partition/heal/stall) are rare and belong in the ring *)
  | Fault { action = "drop" | "duplicate" | "reorder" | "corrupt" | "delay"; _ } -> `Debug
  | Fault _ -> `Info
  | Compromise _ | Rekey _ | Recover _ | Step _ | Source_blocked _ | Source_rotated _
  | Failover _ | Repl _ | Trial _ | Directive _ | Note _ ->
      `Info

let to_json ev =
  let tag fields = Json.Obj (("event", Json.Str (label ev)) :: fields) in
  match ev with
  | Probe { kind; tier; target; outcome } ->
      tag
        [
          ("kind", Json.Str (kind_to_string kind));
          ("tier", Json.Str (tier_to_string tier));
          ("target", Json.Num (float_of_int target));
          ("outcome", Json.Str (outcome_to_string outcome));
        ]
  | Compromise { tier; index } ->
      tag [ ("tier", Json.Str (tier_to_string tier)); ("index", Json.Num (float_of_int index)) ]
  | Rekey { nodes } -> tag [ ("nodes", Json.Num (float_of_int nodes)) ]
  | Recover { nodes } -> tag [ ("nodes", Json.Num (float_of_int nodes)) ]
  | Step { n } -> tag [ ("n", Json.Num (float_of_int n)) ]
  | Invalid_observed { proxy } -> tag [ ("proxy", Json.Num (float_of_int proxy)) ]
  | Source_blocked { proxy; source } ->
      tag [ ("proxy", Json.Num (float_of_int proxy)); ("source", Json.Num (float_of_int source)) ]
  | Source_rotated { burned } -> tag [ ("burned", Json.Num (float_of_int burned)) ]
  | Request_submitted { id } -> tag [ ("id", Json.Str id) ]
  | Request_completed { id; accepted } ->
      tag [ ("id", Json.Str id); ("accepted", Json.Bool accepted) ]
  | Reply_rejected { id } -> tag [ ("id", Json.Str id) ]
  | Msg_delivered { src; dst } ->
      tag [ ("src", Json.Num (float_of_int src)); ("dst", Json.Num (float_of_int dst)) ]
  | Msg_dropped { src; dst; reason } ->
      tag
        [
          ("src", Json.Num (float_of_int src));
          ("dst", Json.Num (float_of_int dst));
          ("reason", Json.Str reason);
        ]
  | Failover { proto; replica; view } ->
      tag
        [
          ("proto", Json.Str proto);
          ("replica", Json.Num (float_of_int replica));
          ("view", Json.Num (float_of_int view));
        ]
  | Repl { proto; kind; detail } ->
      tag [ ("proto", Json.Str proto); ("kind", Json.Str kind); ("detail", Json.Str detail) ]
  | Trial { index; seed; lifetime } ->
      tag
        [
          ("index", Json.Num (float_of_int index));
          ("seed", Json.Num (float_of_int seed));
          ("lifetime", match lifetime with Some l -> Json.Num l | None -> Json.Null);
        ]
  | Span_finished { id; parent; name; start_time; duration; attrs } ->
      tag
        [
          ("id", Json.Num (float_of_int id));
          ("parent", match parent with Some p -> Json.Num (float_of_int p) | None -> Json.Null);
          ("name", Json.Str name);
          ("start", Json.Num start_time);
          ("duration", Json.Num duration);
          ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs));
        ]
  | Fault { action; target; detail } ->
      tag
        [
          ("action", Json.Str action);
          ("target", Json.Str target);
          ("detail", Json.Str detail);
        ]
  | Directive { step; strategy; detail } ->
      tag
        [
          ("step", Json.Num (float_of_int step));
          ("strategy", Json.Str strategy);
          ("detail", Json.Str detail);
        ]
  | Note { label; detail } -> Json.Obj [ ("event", Json.Str label); ("detail", Json.Str detail) ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or malformed field %S" name)
  in
  let str_field name = field name Json.str in
  let int_field name = field name Json.int in
  match Json.member "event" json with
  | None -> Error "missing \"event\" field"
  | Some (Json.Str tag) -> (
      let enum name of_string =
        let* s = str_field name in
        match of_string s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "bad %s: %S" name s)
      in
      match tag with
      | "probe" ->
          let* kind = enum "kind" kind_of_string in
          let* tier = enum "tier" tier_of_string in
          let* target = int_field "target" in
          let* outcome = enum "outcome" outcome_of_string in
          Ok (Probe { kind; tier; target; outcome })
      | "compromise" ->
          let* tier = enum "tier" tier_of_string in
          let* index = int_field "index" in
          Ok (Compromise { tier; index })
      | "rekey" ->
          let* nodes = int_field "nodes" in
          Ok (Rekey { nodes })
      | "recover" ->
          let* nodes = int_field "nodes" in
          Ok (Recover { nodes })
      | "step" ->
          let* n = int_field "n" in
          Ok (Step { n })
      | "invalid_observed" ->
          let* proxy = int_field "proxy" in
          Ok (Invalid_observed { proxy })
      | "source_blocked" ->
          let* proxy = int_field "proxy" in
          let* source = int_field "source" in
          Ok (Source_blocked { proxy; source })
      | "source_rotated" ->
          let* burned = int_field "burned" in
          Ok (Source_rotated { burned })
      | "request_submitted" ->
          let* id = str_field "id" in
          Ok (Request_submitted { id })
      | "request_completed" ->
          let* id = str_field "id" in
          let* accepted = field "accepted" Json.bool in
          Ok (Request_completed { id; accepted })
      | "reply_rejected" ->
          let* id = str_field "id" in
          Ok (Reply_rejected { id })
      | "msg_delivered" ->
          let* src = int_field "src" in
          let* dst = int_field "dst" in
          Ok (Msg_delivered { src; dst })
      | "msg_dropped" ->
          let* src = int_field "src" in
          let* dst = int_field "dst" in
          let* reason = str_field "reason" in
          Ok (Msg_dropped { src; dst; reason })
      | "failover" ->
          let* proto = str_field "proto" in
          let* replica = int_field "replica" in
          let* view = int_field "view" in
          Ok (Failover { proto; replica; view })
      | "repl" ->
          let* proto = str_field "proto" in
          let* kind = str_field "kind" in
          let* detail = str_field "detail" in
          Ok (Repl { proto; kind; detail })
      | "trial" ->
          let* index = int_field "index" in
          let* seed = int_field "seed" in
          let lifetime =
            match Json.member "lifetime" json with
            | Some (Json.Num l) -> Some l
            | Some Json.Null | None | Some _ -> None
          in
          Ok (Trial { index; seed; lifetime })
      | "span" ->
          let* id = int_field "id" in
          let parent =
            match Json.member "parent" json with
            | Some (Json.Num p) when Float.is_integer p -> Some (int_of_float p)
            | _ -> None
          in
          let* name = str_field "name" in
          let* start_time = field "start" Json.num in
          let* duration = field "duration" Json.num in
          let attrs =
            match Json.member "attrs" json with
            | Some (Json.Obj fields) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.str v))
                  fields
            | _ -> []
          in
          Ok (Span_finished { id; parent; name; start_time; duration; attrs })
      | "fault" ->
          let* action = str_field "action" in
          let* target = str_field "target" in
          let* detail = str_field "detail" in
          Ok (Fault { action; target; detail })
      | "directive" ->
          let* step = int_field "step" in
          let* strategy = str_field "strategy" in
          let* detail = str_field "detail" in
          Ok (Directive { step; strategy; detail })
      | label ->
          (* any unrecognized tag round-trips as a note *)
          let detail =
            Option.value ~default:"" (Option.bind (Json.member "detail" json) Json.str)
          in
          Ok (Note { label; detail }))
  | Some _ -> Error "\"event\" field is not a string"

let pp ppf ev = Format.fprintf ppf "%-18s %s" (label ev) (detail ev)
