(** Fixed-width virtual-time windows over the event plane.

    A timeline is a pure observer: attach {!subscriber} to a {!Sink} and
    it aggregates every event into the window owning its timestamp —
    per-label counts (mirroring the counter names {!Sink.counting}
    registers, plus a ["fault.<action>"] refinement), lifetime totals and
    last-seen times, and — when a {!Metrics} registry is supplied — the
    registry's counter deltas, gauge last-values and per-window histogram
    percentiles captured as each window closes.

    Windows are kept in a bounded ring ([capacity] most recent indices);
    older windows are evicted and events older than the ring are counted
    in {!dropped}. Virtual time need not be monotone: a pooled stream
    (e.g. per-trial buffers replayed back-to-back by an inject run) lands
    late events in the retained window for their timestamp. {!on_window}
    close hooks fire only when the frontier advances — exactly once per
    window, in index order, on a monotone stream. Because aggregation is
    a pure fold over the event sequence, join-replay at any job count
    reproduces the identical timeline. *)

type t

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_p50 : float;
  hv_p90 : float;
  hv_p99 : float;
}
(** A histogram's per-window delta, reduced to count/sum and bucket-
    interpolated percentiles. *)

type window = {
  index : int;  (** [t_lo = index * width] *)
  t_lo : float;  (** inclusive *)
  t_hi : float;  (** exclusive *)
  total : int;  (** events binned into this window *)
  counts : (string * int) list;  (** per-key counts, sorted by key *)
  counters : (string * int) list;
      (** registry counter deltas at close; [[]] without a registry or
          while the window is still open *)
  gauges : (string * float) list;  (** registry gauge values at close *)
  histograms : (string * hist_view) list;
      (** registry histogram deltas at close, empty deltas omitted *)
}

val create : ?capacity:int -> ?registry:Metrics.t -> width:float -> unit -> t
(** [capacity] defaults to 512 retained windows. When [registry] is given
    the timeline also registers a ["timeline.window_events"] histogram
    there, observing each closed window's event total; registry deltas
    are only meaningful on monotone streams. Raises [Invalid_argument]
    when [width] or [capacity] is not positive. *)

val subscriber : t -> Sink.subscriber
(** The subscriber to attach; events at negative times clamp to window 0.
    Events labelled ["signal.alarm"] are ignored — the telemetry plane
    never aggregates its own detector output, which also makes emitting
    alarms back into the watched sink re-entrancy-safe. *)

val on_window : t -> (window -> unit) -> unit
(** Register a close hook; hooks run in registration order each time the
    frontier moves past a window (and once more for the final open window
    on {!finish}). *)

val finish : t -> unit
(** Close the frontier window and fire its hooks; idempotent. Call when
    the stream is complete. *)

(** {2 Queries — usable online at any point} *)

val width : t -> float

val windows : t -> window list
(** Retained windows in ascending index order, the still-open frontier
    window included. *)

val window_count : t -> int
(** Windows ever opened, evicted and gap-skipped ones included. *)

val events_seen : t -> int

val dropped : t -> int
(** Late events whose window had already been evicted from the ring. *)

val totals : t -> (string * int) list
(** Lifetime per-key totals, sorted by key — unaffected by eviction. *)

val total : t -> string -> int
val last_seen : t -> string -> float option

val count : window -> string -> int
val rate : t -> window -> string -> float
(** [count w key / width] — events per unit virtual time. *)
