(* Defender-visible signal series derived from a Timeline.

   Each signal folds the window sequence through an EWMA smoother and a
   one-sided CUSUM detector:

     s_0 = 0
     s_t = max 0 (s_{t-1} + raw_t - reference_t - slack)
     alarm when s_t > threshold, then s resets to 0

   where reference_t is the pre-update EWMA for signals whose operating
   point drifts (probe/block/crash rates) and 0 for signals expected to
   sit at zero (rekey staleness). Everything is a deterministic fold over
   the window sequence, so identical timelines — e.g. jobs 1 vs jobs 4
   join-replays — yield identical series and alarms. *)

module Table = Fortress_util.Table

type kind = Invalid_probe_rate | Blocked_source_rate | Crash_burst | Rekey_staleness

let all = [ Invalid_probe_rate; Blocked_source_rate; Crash_burst; Rekey_staleness ]

let kind_name = function
  | Invalid_probe_rate -> "invalid-probe-rate"
  | Blocked_source_rate -> "blocked-source-rate"
  | Crash_burst -> "crash-burst"
  | Rekey_staleness -> "rekey-staleness"

let short_name = function
  | Invalid_probe_rate -> "invalid"
  | Blocked_source_rate -> "blocked"
  | Crash_burst -> "crash"
  | Rekey_staleness -> "stale"

type params = {
  ewma_alpha : float;
  cusum_slack : float;
  cusum_threshold : float;
  adaptive_ref : bool;
}

let default_params = function
  | Invalid_probe_rate | Blocked_source_rate | Crash_burst ->
      (* rates are per unit virtual time: one extra event per canonical
         100-vt step is +0.01, so slack forgives one stray event per
         window and ~3 sustained extra events per step trip the alarm *)
      { ewma_alpha = 0.3; cusum_slack = 0.01; cusum_threshold = 0.05; adaptive_ref = true }
  | Rekey_staleness ->
      (* staleness is in virtual-time units and should sit near zero; a
         stall longer than ~1.5 canonical periods starts accumulating *)
      { ewma_alpha = 0.3; cusum_slack = 150.0; cusum_threshold = 250.0; adaptive_ref = false }

type point = {
  window : int;
  t_lo : float;
  t_hi : float;
  raw : float;
  ewma : float;
  cusum : float;
  alarm : bool;
}

type state = {
  st_params : params;
  st_gauge : Metrics.gauge option;
  mutable st_have : bool;
  mutable st_ewma : float;
  mutable st_cusum : float;
  mutable st_points_rev : point list;
}

type t = {
  sg_width : float;
  emit : (time:float -> Event.t -> unit) option;
  alarm_counter : Metrics.counter option;
  states : (kind * state) list;
  mutable last_boundary : int option;
  mutable alarms_rev : (kind * point) list;
}

let make ?(params = default_params) ?emit ?registry ~width () =
  let states =
    List.map
      (fun k ->
        let gauge = Option.map (fun r -> Metrics.gauge r ("signal." ^ short_name k)) registry in
        ( k,
          {
            st_params = params k;
            st_gauge = gauge;
            st_have = false;
            st_ewma = 0.0;
            st_cusum = 0.0;
            st_points_rev = [];
          } ))
      all
  in
  let alarm_counter = Option.map (fun r -> Metrics.counter r "signal.alarms") registry in
  { sg_width = width; emit; alarm_counter; states; last_boundary = None; alarms_rev = [] }

let raw_rate w key width = float_of_int (Timeline.count w key) /. width

let process_window t (w : Timeline.window) =
  let boundary = Timeline.count w "events.rekey" + Timeline.count w "events.recover" > 0 in
  let since =
    match t.last_boundary with None -> 0 | Some i -> w.Timeline.index - i
  in
  let staleness = if boundary then 0.0 else float_of_int since *. t.sg_width in
  t.last_boundary <-
    (if boundary || t.last_boundary = None then Some w.Timeline.index else t.last_boundary);
  List.iter
    (fun (kind, st) ->
      let raw =
        match kind with
        | Invalid_probe_rate -> raw_rate w "events.invalid_observed" t.sg_width
        | Blocked_source_rate -> raw_rate w "events.source_blocked" t.sg_width
        | Crash_burst ->
            float_of_int (Timeline.count w "probe.crash" + Timeline.count w "fault.crash")
            /. t.sg_width
        | Rekey_staleness -> staleness
      in
      let p = st.st_params in
      let reference = if p.adaptive_ref then (if st.st_have then st.st_ewma else raw) else 0.0 in
      let s = Float.max 0.0 (st.st_cusum +. raw -. reference -. p.cusum_slack) in
      let alarm = s > p.cusum_threshold in
      st.st_cusum <- (if alarm then 0.0 else s);
      st.st_ewma <-
        (if st.st_have then (p.ewma_alpha *. raw) +. ((1.0 -. p.ewma_alpha) *. st.st_ewma)
         else raw);
      st.st_have <- true;
      Option.iter (fun g -> Metrics.set g raw) st.st_gauge;
      let point =
        {
          window = w.Timeline.index;
          t_lo = w.Timeline.t_lo;
          t_hi = w.Timeline.t_hi;
          raw;
          ewma = st.st_ewma;
          cusum = s;
          alarm;
        }
      in
      st.st_points_rev <- point :: st.st_points_rev;
      if alarm then begin
        t.alarms_rev <- (kind, point) :: t.alarms_rev;
        Option.iter (fun c -> Metrics.incr c) t.alarm_counter;
        Option.iter
          (fun emit ->
            emit ~time:w.Timeline.t_hi
              (Event.Note
                 {
                   label = "signal.alarm";
                   detail =
                     Printf.sprintf "%s: raw=%.6g ewma=%.6g cusum=%.6g > %.6g in window %d"
                       (kind_name kind) raw st.st_ewma s p.cusum_threshold w.Timeline.index;
                 }))
          t.emit
      end)
    t.states

let create ?params ?emit ?registry timeline =
  let t = make ?params ?emit ?registry ~width:(Timeline.width timeline) () in
  Timeline.on_window timeline (process_window t);
  t

let of_timeline ?params ?emit ?registry timeline =
  let t = make ?params ?emit ?registry ~width:(Timeline.width timeline) () in
  List.iter (process_window t) (Timeline.windows timeline);
  t

let state t kind = List.assoc kind t.states
let series t kind = List.rev (state t kind).st_points_rev
let latest t kind = match (state t kind).st_points_rev with [] -> None | p :: _ -> Some p
let alarms t = List.rev t.alarms_rev
let params t kind = (state t kind).st_params

(* ---- rendering ---- *)

let fault_summary (w : Timeline.window) =
  let faults =
    List.filter_map
      (fun (key, n) ->
        if String.length key > 6 && String.sub key 0 6 = "fault." then
          Some (Printf.sprintf "%s:%d" (String.sub key 6 (String.length key - 6)) n)
        else None)
      w.Timeline.counts
  in
  String.concat " " faults

let table ?timeline t =
  let with_faults = timeline <> None in
  let headers =
    [ "win"; "vt" ] @ List.map short_name all @ [ "alarm" ]
    @ (if with_faults then [ "faults" ] else [])
  in
  let table = Table.create ~headers in
  Table.set_align table 1 Table.Left;
  Table.set_align table (List.length headers - 1) Table.Left;
  let by_index =
    match timeline with
    | None -> fun _ -> None
    | Some tl ->
        let wins = Timeline.windows tl in
        fun i -> List.find_opt (fun (w : Timeline.window) -> w.Timeline.index = i) wins
  in
  (* the four series are parallel folds over the same window list *)
  let cols = List.map (fun k -> (k, Array.of_list (series t k))) all in
  let n = match cols with (_, c) :: _ -> Array.length c | [] -> 0 in
  for row_i = 0 to n - 1 do
    let point k = (List.assoc k cols).(row_i) in
    let p0 = point Invalid_probe_rate in
    let alarming =
      List.filter_map (fun k -> if (point k).alarm then Some (short_name k) else None) all
    in
    let cells =
      [ string_of_int p0.window; Printf.sprintf "[%g, %g)" p0.t_lo p0.t_hi ]
      @ List.map (fun k -> Printf.sprintf "%.4g" (point k).raw) all
      @ [ (if alarming = [] then "-" else String.concat "," alarming) ]
      @ (if with_faults then
           [ (match by_index p0.window with
             | Some w -> ( match fault_summary w with "" -> "-" | s -> s)
             | None -> "-") ]
         else [])
    in
    Table.add_row table cells
  done;
  table

let alarm_table t =
  let table =
    Table.create ~headers:[ "signal"; "win"; "vt"; "raw"; "ewma"; "cusum" ]
  in
  Table.set_align table 0 Table.Left;
  Table.set_align table 2 Table.Left;
  List.iter
    (fun (kind, p) ->
      Table.add_row table
        [
          kind_name kind;
          string_of_int p.window;
          Printf.sprintf "[%g, %g)" p.t_lo p.t_hi;
          Printf.sprintf "%.4g" p.raw;
          Printf.sprintf "%.4g" p.ewma;
          Printf.sprintf "%.4g" p.cusum;
        ])
    (alarms t);
  table
