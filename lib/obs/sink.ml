type subscriber = time:float -> Event.t -> unit
type handle = int

type t = {
  mutable subs : (handle * subscriber) list;  (** attachment order *)
  mutable next_handle : int;
  mutable emitted : int;
}

let create () = { subs = []; next_handle = 0; emitted = 0 }

let attach t sub =
  t.next_handle <- t.next_handle + 1;
  t.subs <- t.subs @ [ (t.next_handle, sub) ];
  t.next_handle

let detach t handle = t.subs <- List.filter (fun (h, _) -> h <> handle) t.subs
let subscriber_count t = List.length t.subs

let emit t ~time ev =
  t.emitted <- t.emitted + 1;
  List.iter (fun (_, sub) -> sub ~time ev) t.subs

let emitted t = t.emitted
let forward downstream ~time ev = emit downstream ~time ev

(* ---- stock subscribers ---- *)

let counting metrics =
  (* cache handles so the steady state is one Hashtbl lookup per event *)
  let by_label = Hashtbl.create 16 in
  let counter_for name =
    match Hashtbl.find_opt by_label name with
    | Some c -> c
    | None ->
        let c = Metrics.counter metrics name in
        Hashtbl.replace by_label name c;
        c
  in
  fun ~time:_ ev ->
    Metrics.incr (counter_for ("events." ^ Event.label ev));
    match ev with
    | Event.Probe { kind; outcome; _ } ->
        Metrics.incr (counter_for ("probe." ^ Event.kind_to_string kind));
        Metrics.incr (counter_for ("probe." ^ Event.outcome_to_string outcome))
    | _ -> ()

let memory ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Sink.memory: capacity must be positive";
  let ring = Array.make capacity None in
  let next = ref 0 in
  let stored = ref 0 in
  let sub ~time ev =
    ring.(!next) <- Some (time, ev);
    next := (!next + 1) mod capacity;
    incr stored
  in
  let read () =
    let retained = min !stored capacity in
    let start = if !stored <= capacity then 0 else !next in
    List.init retained (fun i ->
        match ring.((start + i) mod capacity) with
        | Some e -> e
        | None -> assert false)
  in
  (sub, read)

let line ~time ev =
  match Event.to_json ev with
  | Json.Obj fields -> Json.to_string (Json.Obj (("t", Json.Num time) :: fields))
  | other -> Json.to_string other

let jsonl write ~time ev = write (line ~time ev)

let jsonl_channel oc ~time ev =
  output_string oc (line ~time ev);
  output_char oc '\n'

let file path =
  let oc = open_out path in
  let closed = ref false in
  let sub ~time ev = if not !closed then jsonl_channel oc ~time ev in
  let close () =
    if not !closed then begin
      closed := true;
      flush oc;
      close_out oc
    end
  in
  (sub, close)

(* FNV-1a 64-bit, kept here (not in crypto) so determinism checks need no
   extra deps. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_feed h s =
  let acc = ref h in
  String.iter
    (fun c -> acc := Int64.mul (Int64.logxor !acc (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Int64.mul (Int64.logxor !acc 0x0AL) fnv_prime (* trailing '\n' *)

let fnv_hex h = Printf.sprintf "%016Lx" h

let digesting () =
  (* FNV-1a over the JSONL rendering of every event, newline included, so
     the digest equals a hash of the equivalent trace file. *)
  let h = ref fnv_offset in
  let sub ~time ev = h := fnv_feed !h (line ~time ev) in
  (sub, fun () -> fnv_hex !h)

let digest_lines lines = fnv_hex (List.fold_left fnv_feed fnv_offset lines)

let buffered ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Sink.buffered: capacity must be positive";
  (* growable arena, not a cons list: parallel joins replay thousands of
     these per campaign, and list-cons + List.rev churned two cells per
     event. The backing array is only allocated on the first event, so an
     attached-but-silent recorder costs one ref. *)
  let buf = ref [||] in
  let count = ref 0 in
  let sub ~time ev =
    let cap = Array.length !buf in
    if !count = cap then begin
      let grown = Array.make (if cap = 0 then capacity else 2 * cap) None in
      Array.blit !buf 0 grown 0 cap;
      buf := grown
    end;
    !buf.(!count) <- Some (time, ev);
    incr count
  in
  let replay downstream =
    for i = 0 to !count - 1 do
      match !buf.(i) with
      | Some (time, ev) -> emit downstream ~time ev
      | None -> assert false
    done
  in
  (sub, replay)

let parse_line s =
  match Json.parse s with
  | Error e -> Error e
  | Ok json -> (
      match Event.of_json json with
      | Error e -> Error e
      | Ok ev ->
          let time =
            Option.value ~default:0.0 (Option.bind (Json.member "t" json) Json.num)
          in
          Ok (time, ev))
