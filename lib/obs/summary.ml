module Table = Fortress_util.Table

type t = {
  total : int;
  malformed : int;
  t_min : float;
  t_max : float;
  by_label : (string * int) list;
  steps : int;
  rekeys : int;
  recovers : int;
  probes_direct : int;
  probes_indirect : int;
  probes_launchpad : int;
  probes_crashed : int;
  probes_intruded : int;
  probes_blocked : int;
  proxy_probes : int;
  server_probes : int;
  proxies_seen : int;
  compromises_proxy : int;
  compromises_server : int;
  trials : int;
  trials_censored : int;
  trial_lifetime_sum : float;
  spans : (string * int * float) list;
  faults : (string * int) list;
  alarms : (string * int * float) list;  (* detector, count, first alarm vt *)
}

type acc = {
  mutable a_total : int;
  mutable a_malformed : int;
  mutable a_tmin : float;
  mutable a_tmax : float;
  labels : (string, int ref) Hashtbl.t;
  mutable a_steps : int;
  mutable a_rekeys : int;
  mutable a_recovers : int;
  mutable a_direct : int;
  mutable a_indirect : int;
  mutable a_launchpad : int;
  mutable a_crashed : int;
  mutable a_intruded : int;
  mutable a_blocked : int;
  mutable a_proxy_probes : int;
  mutable a_server_probes : int;
  proxy_targets : (int, unit) Hashtbl.t;
  mutable a_comp_proxy : int;
  mutable a_comp_server : int;
  mutable a_trials : int;
  mutable a_censored : int;
  mutable a_lifetime_sum : float;
  span_stats : (string, (int * float) ref) Hashtbl.t;
  fault_actions : (string, int ref) Hashtbl.t;
  alarm_stats : (string, (int * float) ref) Hashtbl.t;  (* count, first time *)
}

let fresh () =
  {
    a_total = 0;
    a_malformed = 0;
    a_tmin = infinity;
    a_tmax = neg_infinity;
    labels = Hashtbl.create 16;
    a_steps = 0;
    a_rekeys = 0;
    a_recovers = 0;
    a_direct = 0;
    a_indirect = 0;
    a_launchpad = 0;
    a_crashed = 0;
    a_intruded = 0;
    a_blocked = 0;
    a_proxy_probes = 0;
    a_server_probes = 0;
    proxy_targets = Hashtbl.create 8;
    a_comp_proxy = 0;
    a_comp_server = 0;
    a_trials = 0;
    a_censored = 0;
    a_lifetime_sum = 0.0;
    span_stats = Hashtbl.create 8;
    fault_actions = Hashtbl.create 8;
    alarm_stats = Hashtbl.create 8;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let add acc time (ev : Event.t) =
  acc.a_total <- acc.a_total + 1;
  if time < acc.a_tmin then acc.a_tmin <- time;
  if time > acc.a_tmax then acc.a_tmax <- time;
  bump acc.labels (Event.label ev);
  match ev with
  | Event.Probe { kind; tier; target; outcome } ->
      (match kind with
      | Event.Direct -> acc.a_direct <- acc.a_direct + 1
      | Event.Indirect -> acc.a_indirect <- acc.a_indirect + 1
      | Event.Launchpad -> acc.a_launchpad <- acc.a_launchpad + 1);
      (match outcome with
      | Event.Crashed -> acc.a_crashed <- acc.a_crashed + 1
      | Event.Intruded -> acc.a_intruded <- acc.a_intruded + 1
      | Event.Blocked -> acc.a_blocked <- acc.a_blocked + 1);
      (match tier with
      | Event.Proxy_tier ->
          acc.a_proxy_probes <- acc.a_proxy_probes + 1;
          Hashtbl.replace acc.proxy_targets target ()
      | Event.Server_tier -> acc.a_server_probes <- acc.a_server_probes + 1)
  | Event.Step _ -> acc.a_steps <- acc.a_steps + 1
  | Event.Rekey _ -> acc.a_rekeys <- acc.a_rekeys + 1
  | Event.Recover _ -> acc.a_recovers <- acc.a_recovers + 1
  | Event.Compromise { tier = Event.Proxy_tier; _ } -> acc.a_comp_proxy <- acc.a_comp_proxy + 1
  | Event.Compromise { tier = Event.Server_tier; _ } -> acc.a_comp_server <- acc.a_comp_server + 1
  | Event.Trial { lifetime; _ } ->
      acc.a_trials <- acc.a_trials + 1;
      (match lifetime with
      | Some l -> acc.a_lifetime_sum <- acc.a_lifetime_sum +. l
      | None -> acc.a_censored <- acc.a_censored + 1)
  | Event.Span_finished { name; duration; _ } -> (
      match Hashtbl.find_opt acc.span_stats name with
      | Some r ->
          let n, d = !r in
          r := (n + 1, d +. duration)
      | None -> Hashtbl.replace acc.span_stats name (ref (1, duration)))
  | Event.Fault { action; _ } -> bump acc.fault_actions action
  | Event.Note { label = "signal.alarm"; detail } ->
      (* alarm detail leads with the detector kind: "<detector>: raw=..." *)
      let detector =
        match String.index_opt detail ':' with
        | Some i -> String.sub detail 0 i
        | None -> "unknown"
      in
      (match Hashtbl.find_opt acc.alarm_stats detector with
      | Some r ->
          let n, first = !r in
          r := (n + 1, Float.min first time)
      | None -> Hashtbl.replace acc.alarm_stats detector (ref (1, time)))
  | _ -> ()

let finalize acc =
  {
    total = acc.a_total;
    malformed = acc.a_malformed;
    t_min = (if acc.a_total = 0 then 0.0 else acc.a_tmin);
    t_max = (if acc.a_total = 0 then 0.0 else acc.a_tmax);
    by_label =
      Hashtbl.fold (fun k r l -> (k, !r) :: l) acc.labels []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    steps = acc.a_steps;
    rekeys = acc.a_rekeys;
    recovers = acc.a_recovers;
    probes_direct = acc.a_direct;
    probes_indirect = acc.a_indirect;
    probes_launchpad = acc.a_launchpad;
    probes_crashed = acc.a_crashed;
    probes_intruded = acc.a_intruded;
    probes_blocked = acc.a_blocked;
    proxy_probes = acc.a_proxy_probes;
    server_probes = acc.a_server_probes;
    proxies_seen = Hashtbl.length acc.proxy_targets;
    compromises_proxy = acc.a_comp_proxy;
    compromises_server = acc.a_comp_server;
    trials = acc.a_trials;
    trials_censored = acc.a_censored;
    trial_lifetime_sum = acc.a_lifetime_sum;
    spans =
      Hashtbl.fold (fun name r l -> (name, fst !r, snd !r) :: l) acc.span_stats []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b);
    faults =
      Hashtbl.fold (fun k r l -> (k, !r) :: l) acc.fault_actions []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    alarms =
      Hashtbl.fold (fun k r l -> (k, fst !r, snd !r) :: l) acc.alarm_stats []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b);
  }

let of_events events =
  let acc = fresh () in
  List.iter (fun (time, ev) -> add acc time ev) events;
  finalize acc

let of_lines ?(on_malformed = ignore) lines =
  let acc = fresh () in
  Seq.iter
    (fun line ->
      if String.trim line <> "" then
        match Sink.parse_line line with
        | Ok (time, ev) -> add acc time ev
        | Error _ ->
            acc.a_malformed <- acc.a_malformed + 1;
            on_malformed line)
    lines;
  finalize acc

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines =
        Seq.of_dispenser (fun () -> match input_line ic with
          | line -> Some line
          | exception End_of_file -> None)
      in
      of_lines lines)

let steps_observed s = max s.steps (max s.rekeys s.recovers)

let table s =
  let t = Table.create ~headers:[ "quantity"; "value" ] in
  Table.set_align t 0 Table.Left;
  let steps = steps_observed s in
  let row name v = Table.add_row t [ name; v ] in
  let rowi name v = row name (string_of_int v) in
  rowi "events" s.total;
  if s.malformed > 0 then rowi "malformed lines" s.malformed;
  row "virtual time range" (Printf.sprintf "[%.4g, %.4g]" s.t_min s.t_max);
  rowi "steps observed" steps;
  rowi "rekeys (PO boundaries)" s.rekeys;
  rowi "recoveries (SO boundaries)" s.recovers;
  rowi "probes: direct" s.probes_direct;
  rowi "probes: indirect" s.probes_indirect;
  rowi "probes: launch-pad" s.probes_launchpad;
  rowi "probe outcomes: crash" s.probes_crashed;
  rowi "probe outcomes: intrusion" s.probes_intruded;
  rowi "probe outcomes: blocked" s.probes_blocked;
  rowi "proxy-tier probes" s.proxy_probes;
  rowi "server-tier probes" s.server_probes;
  rowi "distinct proxies probed" s.proxies_seen;
  rowi "compromises: proxy" s.compromises_proxy;
  rowi "compromises: server" s.compromises_server;
  if steps > 0 then begin
    let per_step n = Printf.sprintf "%.3f" (float_of_int n /. float_of_int steps) in
    row "probes/step" (per_step (s.probes_direct + s.probes_indirect + s.probes_launchpad));
    row "rekeys/step" (per_step s.rekeys)
  end;
  if s.trials > 0 then begin
    rowi "mc trials" s.trials;
    rowi "mc trials censored" s.trials_censored;
    let observed = s.trials - s.trials_censored in
    if observed > 0 then
      row "mc mean lifetime" (Printf.sprintf "%.4g" (s.trial_lifetime_sum /. float_of_int observed))
  end;
  t

let span_table s =
  let t = Table.create ~headers:[ "span"; "count"; "total vt"; "mean vt" ] in
  Table.set_align t 0 Table.Left;
  List.iter
    (fun (name, count, dur) ->
      Table.add_row t
        [
          name;
          string_of_int count;
          Printf.sprintf "%.4g" dur;
          Printf.sprintf "%.4g" (dur /. float_of_int count);
        ])
    s.spans;
  t

let fault_table s =
  let t = Table.create ~headers:[ "fault action"; "count" ] in
  Table.set_align t 0 Table.Left;
  List.iter (fun (action, n) -> Table.add_row t [ action; string_of_int n ]) s.faults;
  t

let alarm_table s =
  let t = Table.create ~headers:[ "detector"; "alarms"; "first alarm vt" ] in
  Table.set_align t 0 Table.Left;
  List.iter
    (fun (detector, n, first) ->
      Table.add_row t [ detector; string_of_int n; Printf.sprintf "%.4g" first ])
    s.alarms;
  t

let by_label_table s =
  let t = Table.create ~headers:[ "event"; "count"; "per vt" ] in
  Table.set_align t 0 Table.Left;
  let span = s.t_max -. s.t_min in
  let rate n =
    if span > 0.0 then Printf.sprintf "%.4g" (float_of_int n /. span) else "-"
  in
  List.iter
    (fun (label, n) -> Table.add_row t [ label; string_of_int n; rate n ])
    s.by_label;
  t

let render s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render (table s));
  Buffer.add_string buf "\nevents by label:\n";
  Buffer.add_string buf (Table.render (by_label_table s));
  if s.faults <> [] then begin
    Buffer.add_string buf "\ninjected faults by action:\n";
    Buffer.add_string buf (Table.render (fault_table s))
  end;
  if s.alarms <> [] then begin
    Buffer.add_string buf "\ndefender signal alarms:\n";
    Buffer.add_string buf (Table.render (alarm_table s))
  end;
  if s.spans <> [] then begin
    Buffer.add_string buf "\nspans (virtual-time durations):\n";
    Buffer.add_string buf (Table.render (span_table s))
  end;
  Buffer.contents buf

type check = { metric : string; measured : float; expected : float; ok : bool }

let consistency ~omega ~chi ~kappa s =
  let steps = float_of_int (steps_observed s) in
  let checks = ref [] in
  let push metric measured expected ok = checks := { metric; measured; expected; ok } :: !checks in
  if steps > 0.0 then begin
    (* Direct probes: omega per live proxy channel per step. Captured or
       late-step proxies receive fewer, so accept a wide band below and a
       small overshoot above. *)
    let np = float_of_int (max s.proxies_seen 1) in
    let direct_rate = float_of_int s.probes_direct /. steps in
    let direct_expected = np *. float_of_int omega in
    push "direct probes/step" direct_rate direct_expected
      (direct_rate <= 1.10 *. direct_expected && direct_rate >= 0.50 *. direct_expected);
    (* Indirect stream paced at kappa * omega. *)
    let indirect_rate = float_of_int s.probes_indirect /. steps in
    let indirect_expected = Float.round (kappa *. float_of_int omega) in
    let slack = Float.max 1.0 (0.5 *. indirect_expected) in
    push "indirect probes/step" indirect_rate indirect_expected
      (Float.abs (indirect_rate -. indirect_expected) <= slack);
    (* Exactly one obfuscation boundary per step. *)
    let boundary_rate = float_of_int (s.rekeys + s.recovers) /. steps in
    push "obfuscation boundaries/step" boundary_rate 1.0
      (Float.abs (boundary_rate -. 1.0) <= 0.25)
  end;
  (* Per-probe intrusion fraction: each tested probe hits with probability
     about 1/chi (elimination within a step is negligible for omega << chi).
     Use a 3-sigma binomial band plus slack for tiny expectations. *)
  let tested = s.probes_crashed + s.probes_intruded in
  if tested > 0 then begin
    let expected_hits = float_of_int tested /. float_of_int chi in
    let sigma = Float.sqrt expected_hits in
    let measured = float_of_int s.probes_intruded in
    push "intrusions (count)" measured expected_hits
      (Float.abs (measured -. expected_hits) <= (3.0 *. sigma) +. 3.0)
  end;
  List.rev !checks

let check_table checks =
  let t = Table.create ~headers:[ "check"; "measured"; "expected"; "verdict" ] in
  Table.set_align t 0 Table.Left;
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.metric;
          Printf.sprintf "%.4g" c.measured;
          Printf.sprintf "%.4g" c.expected;
          (if c.ok then "consistent" else "INCONSISTENT");
        ])
    checks;
  t
