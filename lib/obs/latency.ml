module Table = Fortress_util.Table

type kind = Detection | Reaction | Stall_rekey

let kinds = [ Detection; Reaction; Stall_rekey ]

let kind_name = function
  | Detection -> "detection"
  | Reaction -> "reaction"
  | Stall_rekey -> "stall-rekey"

let kind_chain = function
  | Detection -> "fault onset -> first alarm"
  | Reaction -> "alarm -> defender directive"
  | Stall_rekey -> "stall -> forced rekey"

type t = {
  chains : (kind * (float * float) list) list;  (* (t_open, t_close), oldest first *)
  censored : (kind * int) list;
}

let empty = { chains = List.map (fun k -> (k, [])) kinds; censored = List.map (fun k -> (k, 0)) kinds }
let chains t k = try List.assoc k t.chains with Not_found -> []
let censored t k = try List.assoc k t.censored with Not_found -> 0
let durations t k = List.map (fun (a, b) -> b -. a) (chains t k)
let total t = List.fold_left (fun n (_, cs) -> n + List.length cs) 0 t.chains

let merge ts =
  {
    chains = List.map (fun k -> (k, List.concat_map (fun t -> chains t k) ts)) kinds;
    censored = List.map (fun k -> (k, List.fold_left (fun n t -> n + censored t k) 0 ts)) kinds;
  }

type summary = {
  s_count : int;
  s_censored : int;
  s_sum : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let summary t k =
  let ds = durations t k in
  let cens = censored t k in
  if ds = [] && cens = 0 then None
  else
    let a = Array.of_list ds in
    Array.sort compare a;
    let n = Array.length a in
    let sum = Array.fold_left ( +. ) 0.0 a in
    Some
      {
        s_count = n;
        s_censored = cens;
        s_sum = sum;
        s_mean = (if n = 0 then nan else sum /. float_of_int n);
        s_p50 = percentile a 0.5;
        s_p90 = percentile a 0.9;
        s_p99 = percentile a 0.99;
        s_max = (if n = 0 then nan else a.(n - 1));
      }

(* Chain extraction. Three independent state machines over a
   time-ordered event stream:
   - detection:   first real fault with no chain open -> next signal.alarm
   - reaction:    signal.alarm -> next defender directive
   - stall-rekey: obfuscation stall -> next rekey (or recovery) boundary
   An open chain at end of stream counts as censored, never as a zero. *)

(* bookkeeping Fault actions that do not constitute a fault onset *)
let onset_action = function
  | "plan_installed" | "plan_uninstalled" | "heal" | "resume" | "restart" | "stall_skip" -> false
  | _ -> true

let is_defender_directive strategy =
  String.length strategy >= 9 && String.sub strategy 0 9 = "defender:"

type cell = {
  mutable open_since : float option;
  mutable closed : (float * float) list;  (* newest first *)
  mutable cens : int;
}

type acc = { det : cell; rea : cell; stall : cell }

let cell () = { open_since = None; closed = []; cens = 0 }
let make_acc () = { det = cell (); rea = cell (); stall = cell () }

let open_at c time = if c.open_since = None then c.open_since <- Some time

let close_at c time =
  match c.open_since with
  | None -> ()
  | Some t0 ->
      c.open_since <- None;
      c.closed <- (t0, time) :: c.closed

let feed acc ~time ev =
  match ev with
  | Event.Fault { action; _ } when onset_action action ->
      open_at acc.det time;
      if action = "stall" then open_at acc.stall time
  | Event.Note { label = "signal.alarm"; _ } ->
      close_at acc.det time;
      open_at acc.rea time
  | Event.Directive { strategy; _ } when is_defender_directive strategy -> close_at acc.rea time
  | Event.Rekey _ | Event.Recover _ -> close_at acc.stall time
  | _ -> ()

let finalize acc =
  let fin c =
    (match c.open_since with None -> () | Some _ -> c.cens <- c.cens + 1);
    c.open_since <- None
  in
  fin acc.det;
  fin acc.rea;
  fin acc.stall;
  {
    chains =
      [
        (Detection, List.rev acc.det.closed);
        (Reaction, List.rev acc.rea.closed);
        (Stall_rekey, List.rev acc.stall.closed);
      ];
    censored = [ (Detection, acc.det.cens); (Reaction, acc.rea.cens); (Stall_rekey, acc.stall.cens) ];
  }

let collector () =
  let acc = make_acc () in
  let sub ~time ev = feed acc ~time ev in
  (sub, fun () -> finalize acc)

(* Offline extraction from an arbitrary (possibly reordered) event list.
   A pooled JSONL trace restarts virtual time at each trial boundary, so
   the stream is first split into per-trial segments on Trial events; each
   segment is then canonically ordered — by time, ties broken by the
   rendered JSONL line — making the result a pure function of the event
   multiset (invariant under reordering within a segment). *)

let canonical_sort seg =
  List.stable_sort
    (fun (t1, e1) (t2, e2) ->
      match compare (t1 : float) t2 with
      | 0 -> compare (Sink.line ~time:t1 e1) (Sink.line ~time:t2 e2)
      | c -> c)
    seg

let of_events events =
  let segments = ref [] and current = ref [] in
  List.iter
    (fun (time, ev) ->
      match ev with
      | Event.Trial _ ->
          segments := List.rev !current :: !segments;
          current := []
      | _ -> current := (time, ev) :: !current)
    events;
  segments := List.rev !current :: !segments;
  let extract seg =
    let acc = make_acc () in
    List.iter (fun (time, ev) -> feed acc ~time ev) (canonical_sort seg);
    finalize acc
  in
  merge (List.rev_map extract !segments |> List.rev)

let of_file path =
  let ic = open_in path in
  let events = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then
         match Sink.parse_line l with
         | Ok te -> events := te :: !events
         | Error _ -> ()
     done
   with End_of_file -> close_in ic);
  of_events (List.rev !events)

let num = Printf.sprintf "%.6g"

let table t =
  let tbl =
    Table.create ~headers:[ "chain"; "n"; "censored"; "mean"; "p50"; "p90"; "p99"; "max" ]
  in
  Table.set_align tbl 0 Table.Left;
  List.iter
    (fun k ->
      match summary t k with
      | None -> Table.add_row tbl [ kind_name k; "0"; "0"; "-"; "-"; "-"; "-"; "-" ]
      | Some s ->
          let f x = if Float.is_nan x then "-" else num x in
          Table.add_row tbl
            [
              kind_name k;
              string_of_int s.s_count;
              string_of_int s.s_censored;
              f s.s_mean;
              f s.s_p50;
              f s.s_p90;
              f s.s_p99;
              f s.s_max;
            ])
    kinds;
  tbl

let chain_table t =
  let tbl = Table.create ~headers:[ "chain"; "t_open"; "t_close"; "latency" ] in
  Table.set_align tbl 0 Table.Left;
  List.iter
    (fun k ->
      List.iter
        (fun (a, b) -> Table.add_row tbl [ kind_name k; num a; num b; num (b -. a) ])
        (chains t k))
    kinds;
  tbl

(* Critical paths through the causal span tree: for each root span, the
   total elapsed virtual time to the deepest-ending descendant, with the
   chain of span names along the way. *)

let critical_path_table ?(limit = 20) events =
  let spans = Hashtbl.create 256 and children = Hashtbl.create 256 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Event.Span_finished { id; parent; name; start_time; duration; _ } ->
          Hashtbl.replace spans id (name, parent, start_time, duration);
          (match parent with
          | Some p -> Hashtbl.replace children p (id :: (try Hashtbl.find children p with Not_found -> []))
          | None -> ())
      | _ -> ())
    events;
  let roots =
    Hashtbl.fold
      (fun id (_, parent, _, _) acc ->
        match parent with
        | None -> id :: acc
        | Some p -> if Hashtbl.mem spans p then acc else id :: acc)
      spans []
    |> List.sort compare
  in
  (* walk the subtree following, at each step, the child whose subtree ends
     latest — that chain is the span-tree critical path *)
  let rec walk id =
    let name, _, start, dur = Hashtbl.find spans id in
    let kids = List.sort compare (try Hashtbl.find children id with Not_found -> []) in
    let results = List.map walk kids in
    let count = 1 + List.fold_left (fun n (_, _, c) -> n + c) 0 results in
    match results with
    | [] -> (start +. dur, [ name ], count)
    | _ ->
        let best_end, best_chain =
          List.fold_left
            (fun (be, bc) (e, c, _) -> if e > be then (e, c) else (be, bc))
            (neg_infinity, []) results
        in
        (Float.max (start +. dur) best_end, name :: best_chain, count)
  in
  let rows =
    List.map
      (fun id ->
        let _, _, start, _ = Hashtbl.find spans id in
        let end_, chain, count = walk id in
        (end_ -. start, start, count, chain))
      roots
    |> List.sort (fun (a, sa, _, _) (b, sb, _, _) ->
           match compare (b : float) a with 0 -> compare (sa : float) sb | c -> c)
  in
  let tbl = Table.create ~headers:[ "elapsed"; "t_start"; "spans"; "critical path" ] in
  Table.set_align tbl 3 Table.Left;
  List.iteri
    (fun i (elapsed, start, count, chain) ->
      if i < limit then
        let path =
          let rec take n = function
            | [] -> []
            | _ when n = 0 -> [ "..." ]
            | x :: rest -> x :: take (n - 1) rest
          in
          String.concat " -> " (take 6 chain)
        in
        Table.add_row tbl [ num elapsed; num start; string_of_int count; path ])
    rows;
  tbl
