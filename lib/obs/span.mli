(** Virtual-time spans.

    A span brackets an interval of simulated time — a request's
    proxy->server->reply path, an attack campaign's step — with optional
    parent links and string attributes, so causally related events can be
    stitched back together from a trace. Timestamps come from the clock the
    context was created with (the simulation engine's [now]), never from
    wall time. Finishing a span produces an {!Event.Span_finished} through
    the context's [on_finish] hook. *)

type ctx
type span

val create : now:(unit -> float) -> unit -> ctx

val set_clock : ctx -> (unit -> float) -> unit
(** Replace the clock; used by the engine to close the knot between the
    span context and its own mutable clock. *)

val set_on_finish : ctx -> (Event.t -> unit) -> unit
(** Install the hook that receives each finished span (typically
    [Sink.emit]). Replaces any previous hook. *)

val set_id_base : ctx -> int -> unit
(** Reseed the id counter: the next span gets id [base + 1]. Pooled
    Monte-Carlo runs give each trial a disjoint id block derived from the
    trial index so span ids are stable at any job count and unique across
    the pooled stream. *)

val start : ctx -> ?parent:span -> string -> span
(** Opens a span at the current clock reading. *)

val set_attr : span -> string -> string -> unit
(** Attach or overwrite a string attribute. *)

val finish : ctx -> span -> unit
(** Stamp the end time and emit the [Span_finished] event. Finishing twice
    is a no-op. *)

val id : span -> int
val name : span -> string
val parent_id : span -> int option
val start_time : span -> float
val attrs : span -> (string * string) list
val is_finished : span -> bool

val active_count : ctx -> int
(** Spans started but not yet finished. *)

val finished_count : ctx -> int
