(** Causal trace context.

    A thin ambient-span discipline over a {!Span.ctx}: whichever span is on
    top of the stack when a message is handed to the network becomes the
    parent of that message's [net.send] span, and the delivery handler runs
    with the [net.deliver] span ambient, so nested sends chain into one
    causal tree across nodes. The context is per-engine and therefore
    per-trial; ids are seeded from the trial index ({!create}'s [trace_id])
    so a pooled Monte-Carlo stream carries globally unique, job-count
    invariant span ids.

    Only defender-side and protocol-side code opens spans. Attacker probes
    deliberately carry no context — see DESIGN.md §13. *)

type t

val id_stride : int
(** Width of the id block reserved per trace id (1_000_000). *)

val create : ?trace_id:int -> Span.ctx -> t
(** Wrap a span context, reseeding its id counter to
    [trace_id * id_stride]. Defaults to trace id 0. *)

val trace_id : t -> int

val ambient : t -> Span.span option
(** The innermost span currently in scope, if any. *)

val span_of : t -> ?attrs:(string * string) list -> ?parent:Span.span -> string -> Span.span
(** Open a span. [parent] defaults to the ambient span; attributes are
    applied in order. The caller owns finishing it (via {!finish}). *)

val finish : t -> Span.span -> unit

val with_ambient : t -> Span.span -> (unit -> 'a) -> 'a
(** Run [f] with an already-open span made ambient; does not finish it. *)

val with_span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Open a child of the ambient span, run [f] with it ambient, finish it. *)
