(** Detection- and reaction-latency extraction.

    Walks a finished event stream and measures the defender's sensing and
    actuation chains as virtual-time distributions rather than anecdotes:

    - {e detection}: first real fault action (crash, partition, stall,
      link fault — never bookkeeping like [plan_installed]) with no chain
      already open, to the next [signal.alarm];
    - {e reaction}: [signal.alarm] to the next defender directive
      (strategy ["defender:*"]);
    - {e stall-rekey}: obfuscation [stall] to the next forced rekey or
      recovery boundary.

    A chain still open when the stream ends is counted as censored. All
    extraction is a pure fold over events — nothing here perturbs the
    simulation, so attaching a {!collector} never changes digests. *)

type kind = Detection | Reaction | Stall_rekey

val kinds : kind list
val kind_name : kind -> string
(** ["detection"], ["reaction"], ["stall-rekey"]. *)

val kind_chain : kind -> string
(** Human-readable description of the chain's endpoints. *)

type t
(** A finished extraction: closed chains plus censored counts per kind. *)

val empty : t

val merge : t list -> t
(** Concatenate chains in list order. Pooled runs merge per-trial results
    in trial-index order, keeping the merged value job-count invariant. *)

val chains : t -> kind -> (float * float) list
(** (open-time, close-time) pairs, oldest first. *)

val durations : t -> kind -> float list
val censored : t -> kind -> int
val total : t -> int
(** Closed chains across all kinds. *)

type summary = {
  s_count : int;
  s_censored : int;
  s_sum : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

val summary : t -> kind -> summary option
(** [None] when the kind has neither closed nor censored chains.
    Percentiles are nearest-rank over the closed-chain durations. *)

val collector : unit -> Sink.subscriber * (unit -> t)
(** Streaming extraction: attach the subscriber to a live sink, call the
    thunk once the stream is finished. *)

val of_events : (float * Event.t) list -> t
(** Offline extraction. The stream is split into per-trial segments on
    [Trial] events (pooled traces restart virtual time per trial), and each
    segment is canonically ordered — by time, ties broken by the rendered
    JSONL line — so the result is invariant under event reordering within
    a segment (late-delivery tolerance). *)

val of_file : string -> t
(** {!of_events} over a JSONL trace file; unparseable lines are skipped. *)

val table : t -> Fortress_util.Table.t
(** Per-kind summary table (n, censored, mean, p50/p90/p99, max). *)

val chain_table : t -> Fortress_util.Table.t
(** Every closed chain as its own row. *)

val critical_path_table : ?limit:int -> (float * Event.t) list -> Fortress_util.Table.t
(** Roots of the causal span tree ranked by elapsed virtual time to their
    deepest-ending descendant, with the chain of span names along the
    critical path. [limit] caps the rows (default 20). *)
