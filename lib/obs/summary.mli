(** Aggregate view of a structured event stream (usually a JSONL trace).

    Folds a stream of (time, event) pairs into per-label counts, probe
    breakdowns, span statistics and per-step rates, and can cross-check the
    measured per-step event rates against the paper's analytic laws at an
    (omega, chi, kappa) operating point. *)

type t = {
  total : int;
  malformed : int;  (** lines that failed to parse (files only) *)
  t_min : float;
  t_max : float;
  by_label : (string * int) list;  (** sorted by label *)
  steps : int;  (** campaign step boundaries observed *)
  rekeys : int;
  recovers : int;
  probes_direct : int;
  probes_indirect : int;
  probes_launchpad : int;
  probes_crashed : int;
  probes_intruded : int;
  probes_blocked : int;
  proxy_probes : int;  (** probes aimed at the proxy tier *)
  server_probes : int;  (** probes aimed at the server tier *)
  proxies_seen : int;  (** distinct proxy-tier probe targets *)
  compromises_proxy : int;
  compromises_server : int;
  trials : int;
  trials_censored : int;
  trial_lifetime_sum : float;
  spans : (string * int * float) list;  (** name, count, total virtual duration *)
  faults : (string * int) list;  (** injected-fault counts per action, sorted *)
  alarms : (string * int * float) list;
      (** per-detector [signal.alarm] counts and first-alarm virtual time,
          sorted by detector name *)
}

val of_events : (float * Event.t) list -> t
val of_lines : ?on_malformed:(string -> unit) -> string Seq.t -> t
val of_file : string -> t

val table : t -> Fortress_util.Table.t

val fault_table : t -> Fortress_util.Table.t
(** Per-action injected-fault counts ({!Event.Fault} events, e.g. "drop",
    "crash", "partition"). Empty for traces recorded without a plan. *)

val alarm_table : t -> Fortress_util.Table.t
(** Per-detector [signal.alarm] counts with first-alarm virtual time —
    what the defender saw and when, straight from a bare JSONL trace.
    Empty for traces recorded without an alarm-emitting signal plane. *)

val render : t -> string
(** Overview plus per-label counts (with an events-per-unit-virtual-time
    rate over the observed [t_min..t_max] span), probe breakdown,
    per-step rates, fault breakdown and span statistics. *)

type check = { metric : string; measured : float; expected : float; ok : bool }

val consistency : omega:int -> chi:int -> kappa:float -> t -> check list
(** Compare measured per-step rates against the analytic laws: direct proxy
    probes/step vs np*omega, server-aimed probes/step vs kappa*omega,
    rekeys/step vs 1, and the per-probe intrusion fraction vs the sampling
    law at key-space size chi. A check passes within a generous tolerance
    that accounts for Monte-Carlo noise and edge steps. *)

val check_table : check list -> Fortress_util.Table.t
