(** Structured observability events.

    Every notable occurrence in the FORTRESS stack is one of these tagged
    variants — not a printf string — so sinks can count, filter and export
    them mechanically. The taxonomy follows the paper's vocabulary: probes
    (direct / indirect at rate kappa / launch-pad), obfuscation boundaries
    (rekey under PO, recover under SO), compromises, and the protocol and
    workload events around them. [Note] is the escape hatch for free-form
    trace lines; [Span_finished] carries a completed virtual-time span. *)

type tier = Proxy_tier | Server_tier
type probe_kind = Direct | Indirect | Launchpad

type probe_outcome =
  | Crashed  (** wrong key: the forked child dies, the attacker learns *)
  | Intruded  (** right key: the target is compromised *)
  | Blocked  (** the proxy's suspicion detector dropped the probe *)

type t =
  | Probe of { kind : probe_kind; tier : tier; target : int; outcome : probe_outcome }
  | Compromise of { tier : tier; index : int }
  | Rekey of { nodes : int }  (** PO boundary: fresh keys everywhere *)
  | Recover of { nodes : int }  (** SO boundary: intruders evicted, keys kept *)
  | Step of { n : int }  (** attack-campaign unit time-step boundary *)
  | Invalid_observed of { proxy : int }  (** proxy logged an invalid request *)
  | Source_blocked of { proxy : int; source : int }
  | Source_rotated of { burned : int }  (** attacker abandons a blocked source *)
  | Request_submitted of { id : string }
  | Request_completed of { id : string; accepted : bool }
  | Reply_rejected of { id : string }  (** signature check failed at the client *)
  | Msg_delivered of { src : int; dst : int }
  | Msg_dropped of { src : int; dst : int; reason : string }
  | Failover of { proto : string; replica : int; view : int }
  | Repl of { proto : string; kind : string; detail : string }
      (** replication-protocol internals: ack timeouts, resyncs, divergence *)
  | Trial of { index : int; seed : int; lifetime : float option }
      (** one Monte-Carlo trial: root seed + censored-or-observed lifetime *)
  | Span_finished of {
      id : int;
      parent : int option;
      name : string;
      start_time : float;
      duration : float;
      attrs : (string * string) list;
    }
  | Fault of { action : string; target : string; detail : string }
      (** injected by the fault subsystem: [action] is the fault kind
          ("drop", "crash", "partition", "stall_skip", ...), [target] the
          link / node / daemon it hit *)
  | Directive of { step : int; strategy : string; detail : string }
      (** an adaptive attack strategy changed the campaign's settings at
          the boundary of [step]; emitted only when something actually
          changed, so an oblivious strategy's trace carries none *)
  | Note of { label : string; detail : string }

val tier_to_string : tier -> string
val kind_to_string : probe_kind -> string
val outcome_to_string : probe_outcome -> string

val label : t -> string
(** Short stable tag ("probe", "rekey", ...) used for counters and the
    per-label summary; [Note] events report their embedded label. *)

val detail : t -> string
(** Human-readable one-line rendering, used when bridging into the legacy
    {!Fortress_sim.Trace} ring. *)

val verbosity : t -> [ `Info | `Debug ]
(** [`Debug] events are high-rate (per probe / per message / per request)
    and are only counted by default; [`Info] events also land in the
    bounded trace ring. *)

val to_json : t -> Json.t
(** An object whose ["event"] field is {!label}; {!of_json} inverts it. *)

val of_json : Json.t -> (t, string) result

val pp : Format.formatter -> t -> unit
