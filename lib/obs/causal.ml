type t = { spans : Span.ctx; trace_id : int; mutable stack : Span.span list }

let id_stride = 1_000_000

let create ?(trace_id = 0) spans =
  Span.set_id_base spans (trace_id * id_stride);
  { spans; trace_id; stack = [] }

let trace_id t = t.trace_id
let ambient t = match t.stack with [] -> None | sp :: _ -> Some sp

let span_of t ?(attrs = []) ?parent name =
  let parent = match parent with Some _ as p -> p | None -> ambient t in
  let sp = Span.start t.spans ?parent name in
  List.iter (fun (k, v) -> Span.set_attr sp k v) attrs;
  sp

let finish t sp = Span.finish t.spans sp

let with_ambient t sp f =
  t.stack <- sp :: t.stack;
  Fun.protect
    ~finally:(fun () -> t.stack <- (match t.stack with [] -> [] | _ :: rest -> rest))
    f

let with_span t ?attrs name f =
  let sp = span_of t ?attrs name in
  Fun.protect ~finally:(fun () -> finish t sp) (fun () -> with_ambient t sp f)
