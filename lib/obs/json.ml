type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- emitter ---- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_nan x || Float.abs x = Float.infinity then
    (* JSON has no NaN/inf; null is the least-surprising degradation *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ---- parser ---- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    (* strict hex only: int_of_string's 0x syntax would raise Failure past
       the parser's own exception, and also tolerates '_' separators *)
    let v = ref 0 in
    for k = 0 to 3 do
      let d =
        match s.[!pos + k] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ ->
            pos := !pos + k;
            (* the offset names the offending digit *)
            fail "invalid \\u escape"
      in
      v := (!v lsl 4) lor d
    done;
    pos := !pos + 4;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | None -> fail "truncated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let code = hex4 () in
                  let code =
                    (* combine a surrogate pair when one follows *)
                    if code >= 0xD800 && code <= 0xDBFF && !pos + 6 <= n
                       && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                      pos := !pos + 2;
                      let low = hex4 () in
                      if low >= 0xDC00 && low <= 0xDFFF then
                        0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
                      else fail "invalid low surrogate"
                    end
                    else code
                  in
                  if Uchar.is_valid code then Buffer.add_utf_8_uchar buf (Uchar.of_int code)
                  else Buffer.add_utf_8_uchar buf Uchar.rep
              | _ ->
                  (* point at the offending escape character *)
                  decr pos;
                  fail "unknown escape"));
          go ()
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at %d: %s" at msg)

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num x -> Some x | _ -> None

let int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List items -> Some items | _ -> None
