(** Defender-visible signal series over a {!Timeline}.

    Four signals — the ones the ROADMAP's adaptive defender needs — are
    derived per window and folded through an EWMA smoother plus a
    one-sided CUSUM change-point detector:

    - {!Invalid_probe_rate}: [invalid_observed] events per unit virtual
      time (proxies logging malformed/invalid requests);
    - {!Blocked_source_rate}: [source_blocked] events per unit virtual
      time (the proxy tier burning attacker sources);
    - {!Crash_burst}: crash-outcome probes plus crash fault actions per
      unit virtual time (children dying to wrong-key probes);
    - {!Rekey_staleness}: virtual time since the last window containing a
      [rekey]/[recover] boundary — the defender's inference of how stale
      the proactive-obfuscation epoch is.

    The CUSUM statistic is [s_t = max 0 (s_(t-1) + raw - ref - slack)]
    with an alarm (and reset) once [s_t > threshold]; [ref] is the
    pre-update EWMA for the rate signals and 0 for staleness. The fold is
    deterministic, so identical timelines give identical series — the
    jobs-1-vs-4 contract extends to every alarm. *)

type kind = Invalid_probe_rate | Blocked_source_rate | Crash_burst | Rekey_staleness

val all : kind list

val kind_name : kind -> string
(** e.g. ["invalid-probe-rate"] — stable, used in alarm events. *)

val short_name : kind -> string
(** e.g. ["invalid"] — column header / gauge suffix. *)

type params = {
  ewma_alpha : float;  (** smoothing weight on the newest window *)
  cusum_slack : float;  (** per-window deviation forgiven before accumulating *)
  cusum_threshold : float;  (** alarm once the statistic exceeds this *)
  adaptive_ref : bool;  (** reference = pre-update EWMA (true) or 0 (false) *)
}

val default_params : kind -> params
(** Tuned for the canonical 100-vt step width; see DESIGN.md §11. *)

type point = {
  window : int;
  t_lo : float;
  t_hi : float;
  raw : float;
  ewma : float;
  cusum : float;  (** statistic value this window, pre-reset *)
  alarm : bool;
}

type t

val create :
  ?params:(kind -> params) ->
  ?emit:(time:float -> Event.t -> unit) ->
  ?registry:Metrics.t ->
  Timeline.t ->
  t
(** Streaming mode: registers a {!Timeline.on_window} hook so every
    window is scored as it closes. [emit] (typically
    [Sink.emit sink] partially applied) publishes each alarm as a
    [Note {label = "signal.alarm"; _}] at the window's closing edge, so
    alarms land on the same trace as fault-plan actions. [registry] (when
    given) keeps a ["signal.<short_name>"] gauge per signal at the latest
    raw value and a ["signal.alarms"] counter. *)

val of_timeline :
  ?params:(kind -> params) ->
  ?emit:(time:float -> Event.t -> unit) ->
  ?registry:Metrics.t ->
  Timeline.t ->
  t
(** Batch mode: score the timeline's currently retained windows in index
    order. Use this for pooled/non-monotone streams (inject runs, trace
    files) where close hooks do not fire once per window. With [emit],
    alarms are appended to the trace as the fold runs — after the pooled
    stream, in window order. *)

(** {2 Typed query API} *)

val series : t -> kind -> point list
(** Scored points in window order. *)

val latest : t -> kind -> point option
val alarms : t -> (kind * point) list
(** Every alarm in the order it fired. *)

val params : t -> kind -> params

(** {2 Rendering} *)

val table : ?timeline:Timeline.t -> t -> Fortress_util.Table.t
(** One row per scored window: raw value per signal, which signals alarm,
    and — when [timeline] is supplied — the window's fault-plan actions,
    aligning detector output with injected faults. *)

val alarm_table : t -> Fortress_util.Table.t
