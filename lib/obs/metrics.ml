module Histo = Fortress_util.Histogram
module Table = Fortress_util.Table

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  h_log : bool;
  h_lo : float;
  h_hi : float;
  h_bins : int;
  mutable h_data : Histo.t;
}

type metric = C of counter | G of gauge | H of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name make match_existing =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match match_existing m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name (kind_name m)))
  | None ->
      let v, m = make () in
      Hashtbl.replace t.tbl name m;
      v

let counter t name =
  register t name
    (fun () ->
      let c = { c_value = 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g_value = 0.0 } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let make_histo ~log_scale ~lo ~hi ~bins =
  if log_scale then Histo.create_log ~lo ~hi ~bins else Histo.create_linear ~lo ~hi ~bins

let histogram t ?(log_scale = false) ~lo ~hi ~bins name =
  register t name
    (fun () ->
      let h =
        {
          h_log = log_scale;
          h_lo = lo;
          h_hi = hi;
          h_bins = bins;
          h_data = make_histo ~log_scale ~lo ~hi ~bins;
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set g v = g.g_value <- v
let observe h x = Histo.add h.h_data x

let counter_value c = c.c_value
let gauge_value g = g.g_value
let histogram_data h = h.h_data

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with Some (C c) -> c.c_value | _ -> 0

let find_gauge t name =
  match Hashtbl.find_opt t.tbl name with Some (G g) -> g.g_value | _ -> 0.0

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with Some (H h) -> Some h.h_data | _ -> None

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      underflow : int;
      overflow : int;
      sum : float;
      buckets : (float * float * int) list;
    }

let histogram_value data =
  let buckets =
    List.init (Histo.bin_count data) (fun i ->
        let lo, hi = Histo.bin_edges data i in
        (lo, hi, Histo.bin_value data i))
  in
  Histogram
    {
      count = Histo.count data;
      underflow = Histo.underflow data;
      overflow = Histo.overflow data;
      sum = Histo.sum data;
      buckets;
    }

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | C c -> Counter c.c_value
        | G g -> Gauge g.g_value
        | H h -> histogram_value h.h_data
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let quantile v q =
  match v with
  | Counter _ | Gauge _ -> None
  | Histogram { count; underflow; buckets; _ } ->
      if count = 0 then None
      else begin
        let q = Float.max 0.0 (Float.min 1.0 q) in
        let rank = q *. float_of_int count in
        (* Walk cumulative counts; interpolate linearly inside the owning
           bucket. Under/overflow mass clamps to the outermost finite edges. *)
        let rec walk cum = function
          | [] -> ( match List.rev buckets with (_, hi, _) :: _ -> Some hi | [] -> None)
          | (lo, hi, c) :: rest ->
              let cum' = cum +. float_of_int c in
              if c > 0 && rank <= cum' then
                Some (lo +. ((rank -. cum) /. float_of_int c *. (hi -. lo)))
              else walk cum' rest
        in
        if rank <= float_of_int underflow then
          match buckets with (lo, _, _) :: _ -> Some lo | [] -> None
        else walk (float_of_int underflow) buckets
      end

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c_value <- 0
      | G g -> g.g_value <- 0.0
      | H h -> h.h_data <- make_histo ~log_scale:h.h_log ~lo:h.h_lo ~hi:h.h_hi ~bins:h.h_bins)
    t.tbl

let to_table t =
  let table = Table.create ~headers:[ "metric"; "kind"; "value" ] in
  Table.set_align table 0 Table.Left;
  Table.set_align table 1 Table.Left;
  List.iter
    (fun (name, v) ->
      let kind, rendered =
        match v with
        | Counter n -> ("counter", string_of_int n)
        | Gauge x -> ("gauge", Printf.sprintf "%.6g" x)
        | Histogram { count; underflow; overflow; sum; _ } ->
            let pct q = match quantile v q with Some x -> Printf.sprintf "%.4g" x | None -> "-" in
            ( "histogram",
              Printf.sprintf "n=%d sum=%.6g p50=%s p90=%s p99=%s under=%d over=%d" count sum
                (pct 0.5) (pct 0.9) (pct 0.99) underflow overflow )
      in
      Table.add_row table [ name; kind; rendered ])
    (snapshot t);
  table

let render t = Table.render (to_table t)
