module Histo = Fortress_util.Histogram
module Table = Fortress_util.Table

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  h_log : bool;
  h_lo : float;
  h_hi : float;
  h_bins : int;
  mutable h_data : Histo.t;
}

type metric = C of counter | G of gauge | H of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name make match_existing =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match match_existing m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name (kind_name m)))
  | None ->
      let v, m = make () in
      Hashtbl.replace t.tbl name m;
      v

let counter t name =
  register t name
    (fun () ->
      let c = { c_value = 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g_value = 0.0 } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let make_histo ~log_scale ~lo ~hi ~bins =
  if log_scale then Histo.create_log ~lo ~hi ~bins else Histo.create_linear ~lo ~hi ~bins

let histogram t ?(log_scale = false) ~lo ~hi ~bins name =
  register t name
    (fun () ->
      let h =
        {
          h_log = log_scale;
          h_lo = lo;
          h_hi = hi;
          h_bins = bins;
          h_data = make_histo ~log_scale ~lo ~hi ~bins;
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set g v = g.g_value <- v
let observe h x = Histo.add h.h_data x

let counter_value c = c.c_value
let gauge_value g = g.g_value
let histogram_data h = h.h_data

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with Some (C c) -> c.c_value | _ -> 0

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; underflow : int; overflow : int }

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | C c -> Counter c.c_value
        | G g -> Gauge g.g_value
        | H h ->
            Histogram
              {
                count = Histo.count h.h_data;
                underflow = Histo.underflow h.h_data;
                overflow = Histo.overflow h.h_data;
              }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c_value <- 0
      | G g -> g.g_value <- 0.0
      | H h -> h.h_data <- make_histo ~log_scale:h.h_log ~lo:h.h_lo ~hi:h.h_hi ~bins:h.h_bins)
    t.tbl

let to_table t =
  let table = Table.create ~headers:[ "metric"; "kind"; "value" ] in
  Table.set_align table 0 Table.Left;
  Table.set_align table 1 Table.Left;
  List.iter
    (fun (name, v) ->
      let kind, rendered =
        match v with
        | Counter n -> ("counter", string_of_int n)
        | Gauge x -> ("gauge", Printf.sprintf "%.6g" x)
        | Histogram { count; underflow; overflow } ->
            ("histogram", Printf.sprintf "n=%d under=%d over=%d" count underflow overflow)
      in
      Table.add_row table [ name; kind; rendered ])
    (snapshot t);
  table

let render t = Table.render (to_table t)
