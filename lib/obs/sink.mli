(** Structured event sink with pluggable subscribers.

    Components emit {!Event.t} values stamped with virtual time; every
    attached subscriber sees every event. Stock subscribers cover the three
    standard consumers: a counting subscriber feeding a {!Metrics.t}
    registry, a bounded in-memory collector, and a JSONL writer whose lines
    {!parse_line} inverts. *)

type t

type subscriber = time:float -> Event.t -> unit
type handle

val create : unit -> t
val attach : t -> subscriber -> handle
val detach : t -> handle -> unit
(** Detaching an unknown or already-detached handle is a no-op. *)

val subscriber_count : t -> int

val emit : t -> time:float -> Event.t -> unit

val emitted : t -> int
(** Total events emitted through this sink since creation. *)

val forward : t -> subscriber
(** [forward downstream] is a subscriber that re-emits into [downstream] —
    used to splice a per-engine sink into a run-wide one. *)

(** {2 Stock subscribers} *)

val counting : Metrics.t -> subscriber
(** Bumps ["events.<label>"] for every event, plus refined
    ["probe.<kind>"] / ["probe.<outcome>"] counters for probes. *)

val memory : ?capacity:int -> unit -> subscriber * (unit -> (float * Event.t) list)
(** Keeps the most recent [capacity] (default 65536) events; the closure
    returns them oldest first. *)

val jsonl : (string -> unit) -> subscriber
(** Renders each event as one JSON line (no trailing newline) and hands it
    to the writer. *)

val jsonl_channel : out_channel -> subscriber
(** [jsonl] wired to an [out_channel], newline-terminated. *)

val file : string -> subscriber * (unit -> unit)
(** [file path] opens (truncating) a JSONL trace file and returns the
    writing subscriber with its teardown closure, which flushes and closes
    the file. Closing twice is a no-op; events arriving after close are
    dropped rather than written to a dead descriptor. *)

val digesting : unit -> subscriber * (unit -> string)
(** Streaming FNV-1a 64-bit digest of the newline-terminated JSONL
    rendering of every event seen. The closure returns the current digest
    as 16 lowercase hex digits; two runs are trace-identical iff their
    digests match. *)

val digest_lines : string list -> string
(** FNV-1a 64-bit digest of the given strings, each newline-terminated —
    the same fold {!digesting} applies to trace lines. Parallel campaigns
    use it to combine per-trial digests in trial-index order into one
    run-level digest that is independent of the job count. *)

val buffered : ?capacity:int -> unit -> subscriber * (t -> unit)
(** [buffered ()] is a subscriber that records every event in arrival
    order, plus a replay closure that re-emits the recording into a
    downstream sink with original timestamps. The recording lives in a
    growable arena whose backing array is allocated lazily at the first
    event (initial size [capacity], default 64, doubling as needed), so
    an attached-but-silent recorder is almost free and a busy one
    allocates O(log events) arrays instead of a cons cell per event.
    Sinks themselves are not
    thread-safe; parallel workers each write to their own buffered
    subscriber and the join replays the buffers in deterministic trial
    order, which is how a shared [--trace-out] stream stays byte-identical
    across job counts. *)

(** {2 JSONL codec} *)

val line : time:float -> Event.t -> string
(** [{"t": <time>, "event": ..., ...}] — one trace line. *)

val parse_line : string -> (float * Event.t, string) result
