module Engine = Fortress_sim.Engine
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Pb = Fortress_replication.Pb
module Event = Fortress_obs.Event

type config = {
  detection_window : float;
  detection_threshold : int;
  forward_probes : bool;
}

let default_config = { detection_window = 100.0; detection_threshold = 10; forward_probes = true }

type pending = {
  mutable waiting : Address.t list;
  mutable answer : (Pb.reply * Sign.signature) option;
      (** cached doubly-signed answer, replayed to retrying clients *)
}

type t = {
  engine : Engine.t;
  config : config;
  p_index : int;
  secret : Sign.secret_key;
  pk : Sign.public_key;
  self : Address.t;
  server_addresses : Address.t array;
  server_keys : Sign.public_key array;
  send : dst:Address.t -> Message.t -> unit;
  pending : (string, pending) Hashtbl.t;  (** request id -> waiting clients *)
  invalid_log : (Address.t, float Queue.t) Hashtbl.t;  (** source -> event times *)
  blocked : (Address.t, unit) Hashtbl.t;
  mutable eff_threshold : int;
      (** live suspicion threshold; starts at [config.detection_threshold]
          and moves only through {!set_detection_threshold} (the adaptive
          defender's effective-kappa actuator) *)
  mutable invalid_total : int;
  mutable forwarded : int;
  mutable relayed : int;
  mutable rejected_replies : int;
  mutable p_compromised : bool;
}

let create ~engine ~config ~index ~secret ~self ~server_addresses ~server_keys ~send =
  if Array.length server_addresses <> Array.length server_keys then
    invalid_arg "Proxy.create: server address/key mismatch";
  {
    engine;
    config;
    p_index = index;
    secret;
    pk = Sign.public_of_secret secret;
    self;
    server_addresses;
    server_keys;
    send;
    pending = Hashtbl.create 64;
    invalid_log = Hashtbl.create 16;
    blocked = Hashtbl.create 16;
    eff_threshold = config.detection_threshold;
    invalid_total = 0;
    forwarded = 0;
    relayed = 0;
    rejected_replies = 0;
    p_compromised = false;
  }

let index t = t.p_index
let public_key t = t.pk
let is_blocked t src = Hashtbl.mem t.blocked src
let blocked_sources t = Hashtbl.fold (fun a () acc -> a :: acc) t.blocked []
let invalid_observed t = t.invalid_total
let forwarded t = t.forwarded
let relayed t = t.relayed
let rejected_server_replies t = t.rejected_replies
let unblock_all t = Hashtbl.reset t.blocked
let detection_threshold t = t.eff_threshold

let set_detection_threshold t k =
  if k < 0 then invalid_arg "Proxy.set_detection_threshold: threshold must be non-negative";
  t.eff_threshold <- k
let set_compromised t v = t.p_compromised <- v
let compromised t = t.p_compromised

(* A proxy crash wipes every volatile table: pending requests are orphaned
   (clients must retry), the suspicion window forgets its evidence and —
   crucially for the attacker — blocked sources become unblocked. Lifetime
   counters are kept: they are measurement state, not process state. *)
let crash_reset t =
  Hashtbl.reset t.pending;
  Hashtbl.reset t.invalid_log;
  Hashtbl.reset t.blocked

(* Log an invalid request from [src]; block the source once the sliding
   window holds more than the threshold. *)
let note_invalid t src =
  t.invalid_total <- t.invalid_total + 1;
  Engine.emit t.engine (Event.Invalid_observed { proxy = t.p_index });
  let now = Engine.now t.engine in
  let q =
    match Hashtbl.find_opt t.invalid_log src with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.invalid_log src q;
        q
  in
  Queue.push now q;
  while (not (Queue.is_empty q)) && Queue.peek q < now -. t.config.detection_window do
    ignore (Queue.pop q)
  done;
  if Queue.length q > t.eff_threshold then begin
    Hashtbl.replace t.blocked src ();
    Engine.emit t.engine (Event.Source_blocked { proxy = t.p_index; source = Address.id src })
  end

let relay_to t ~client (reply, proxy_signature) =
  t.relayed <- t.relayed + 1;
  t.send ~dst:client
    (Message.Client_reply { reply; proxy_index = t.p_index; proxy_signature })

let forward_request t ~id ~cmd ~client =
  let entry =
    match Hashtbl.find_opt t.pending id with
    | Some p -> p
    | None ->
        let p = { waiting = []; answer = None } in
        Hashtbl.replace t.pending id p;
        p
  in
  match entry.answer with
  | Some cached ->
      (* a retry for an answered request: replay the cached reply *)
      relay_to t ~client cached
  | None ->
      if not (List.mem client entry.waiting) then entry.waiting <- client :: entry.waiting;
      t.forwarded <- t.forwarded + 1;
      Array.iter
        (fun dst ->
          t.send ~dst (Message.Server (Pb.Request { id; cmd; reply_to = t.self })))
        t.server_addresses

let handle_client_request t ~src ~id ~cmd ~client =
  if is_blocked t src then ()
  else if Message.is_probe_command cmd then begin
    (* a wrongly guessed probe is an invalid request in the proxy's eyes *)
    note_invalid t src;
    if t.config.forward_probes && not (is_blocked t src) then
      forward_request t ~id ~cmd ~client
  end
  else forward_request t ~id ~cmd ~client

let handle_server_reply t (reply : Pb.reply) =
  let valid =
    reply.Pb.server_index >= 0
    && reply.Pb.server_index < Array.length t.server_keys
    && Pb.verify_reply t.server_keys.(reply.Pb.server_index) reply
  in
  if not valid then t.rejected_replies <- t.rejected_replies + 1
  else
    match Hashtbl.find_opt t.pending reply.Pb.request_id with
    | None -> ()
    | Some entry ->
        if entry.answer = None then begin
          let proxy_signature =
            Sign.sign t.secret (Message.over_sign_payload ~reply ~proxy_index:t.p_index)
          in
          entry.answer <- Some (reply, proxy_signature);
          List.iter (fun client -> relay_to t ~client (reply, proxy_signature)) entry.waiting;
          entry.waiting <- []
        end

let handle t ~src msg =
  if not t.p_compromised then
    match msg with
    | Message.Client_request { id; cmd; client } -> handle_client_request t ~src ~id ~cmd ~client
    | Message.Server (Pb.Reply reply) -> handle_server_reply t reply
    | Message.Server _ | Message.Client_reply _ -> ()
