module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Latency = Fortress_net.Latency
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Smr = Fortress_replication.Smr
module Dsm = Fortress_replication.Dsm
module Keyspace = Fortress_defense.Keyspace
module Instance = Fortress_defense.Instance
module Prng = Fortress_util.Prng
module Nonce = Fortress_crypto.Nonce

type config = {
  n : int;
  f : int;
  service : Dsm.t;
  keyspace : Keyspace.t;
  smr : Smr.config;
  latency : Latency.t;
  seed : int;
}

let default_config =
  {
    n = 4;
    f = 1;
    service = Fortress_replication.Services.kv;
    keyspace = Keyspace.pax_aslr_32bit;
    smr = Smr.default_config;
    latency = Latency.constant 0.5;
    seed = 0;
  }

type t = {
  cfg : config;
  engine : Engine.t;
  net : Smr.msg Network.t;
  replicas : Smr.replica array;
  instances : Instance.t array;
  addresses : Address.t array;
  comp : bool array;
}

let create cfg =
  let engine = Engine.create ~prng:(Prng.create ~seed:cfg.seed) () in
  let prng = Engine.prng engine in
  let net = Network.create ~latency:cfg.latency engine in
  let addresses =
    Array.init cfg.n (fun i ->
        Network.register net ~name:(Printf.sprintf "smr%d" i) ~handler:(fun ~src:_ _ -> ()))
  in
  (* diverse randomization: each replica gets its own distinct key *)
  let used = ref [] in
  let instances =
    Array.init cfg.n (fun _ ->
        let inst = Instance.create cfg.keyspace prng in
        let rec fresh () =
          let k = Keyspace.random_key cfg.keyspace prng in
          if List.mem k !used then fresh () else k
        in
        let k = fresh () in
        used := k :: !used;
        Instance.set_key inst k;
        inst)
  in
  let smr_config = { cfg.smr with Smr.n = cfg.n; f = cfg.f } in
  let replicas =
    Array.init cfg.n (fun i ->
        let secret, _ = Sign.generate prng in
        Smr.create ~engine ~config:smr_config ~index:i ~service:cfg.service ~secret
          ~self:addresses.(i) ~addresses
          ~send:(fun ~dst msg -> Network.send net ~src:addresses.(i) ~dst msg))
  in
  Array.iteri
    (fun i addr ->
      Network.set_handler net addr (fun ~src msg -> Smr.handle replicas.(i) ~src msg))
    addresses;
  Array.iter Smr.start replicas;
  { cfg; engine; net; replicas; instances; addresses; comp = Array.make cfg.n false }

let engine t = t.engine
let attach_telemetry ?window ?capacity ?alarms ?params t =
  Engine.attach_telemetry ?window ?capacity ?alarms ?params t.engine
let network t = t.net
let replicas t = t.replicas
let instances t = t.instances
let addresses t = t.addresses

(* What an attacker-side liveness check observes: a down replica times
   out. Pure read — no PRNG, no events. *)
let replica_unreachable t i =
  (not (Network.quiescent t.net))
  && i >= 0 && i < t.cfg.n
  && not (Network.is_up t.net t.addresses.(i))

let symptoms t =
  if Network.quiescent t.net then []
  else begin
    let acc = ref [] in
    for i = t.cfg.n - 1 downto 0 do
      if replica_unreachable t i then
        acc := Symptom.Unreachable (Fortress_model.Node_id.Replica i) :: !acc
    done;
    !acc
  end

type client = {
  c_net : Smr.msg Network.t;
  c_self : Address.t;
  c_addresses : Address.t array;
  voter : Smr.Voter.t;
  nonce_source : Nonce.source;
  callbacks : (string, string -> unit) Hashtbl.t;
  mutable c_accepted : int;
}

let new_client t ~name =
  let self = Network.register t.net ~name ~handler:(fun ~src:_ _ -> ()) in
  let voter =
    Smr.Voter.create ~f:t.cfg.f ~public_keys:(Array.map Smr.public_key t.replicas)
  in
  let client =
    {
      c_net = t.net;
      c_self = self;
      c_addresses = t.addresses;
      voter;
      nonce_source = Nonce.source (Prng.split (Engine.prng t.engine));
      callbacks = Hashtbl.create 16;
      c_accepted = 0;
    }
  in
  Network.set_handler t.net self (fun ~src:_ msg ->
      match msg with
      | Smr.Reply r -> (
          match Smr.Voter.offer client.voter r with
          | Some response -> (
              client.c_accepted <- client.c_accepted + 1;
              match Hashtbl.find_opt client.callbacks r.Smr.request_id with
              | Some k ->
                  Hashtbl.remove client.callbacks r.Smr.request_id;
                  k response
              | None -> ())
          | None -> ())
      | _ -> ());
  client

let submit c ~cmd ~on_response =
  let id = Nonce.to_string (Nonce.fresh c.nonce_source) in
  Hashtbl.replace c.callbacks id on_response;
  Array.iter
    (fun dst ->
      Network.send c.c_net ~src:c.c_self ~dst (Smr.Request { id; cmd; reply_to = c.c_self }))
    c.c_addresses;
  id

let client_accepted c = c.c_accepted

let cycle_replica t i ~fresh_key =
  let replica = t.replicas.(i) in
  Smr.stop replica;
  Network.set_down t.net t.addresses.(i);
  (if fresh_key then
     let prng = Engine.prng t.engine in
     let rec fresh () =
       let k = Keyspace.random_key t.cfg.keyspace prng in
       let clash =
         Array.exists (fun inst -> inst != t.instances.(i) && Instance.key inst = k) t.instances
       in
       if clash then fresh () else k
     in
     Instance.set_key t.instances.(i) (fresh ())
   else Instance.recover t.instances.(i));
  t.comp.(i) <- false;
  Smr.set_compromised replica false;
  (* the wipe-and-restore happens promptly: rejoin via state transfer *)
  ignore
    (Engine.schedule t.engine ~delay:0.5 (fun () ->
         Network.set_up t.net t.addresses.(i);
         Smr.restart replica;
         Smr.begin_state_transfer replica))

let rekey_batch t batch = List.iter (fun i -> cycle_replica t i ~fresh_key:true) batch
let recover_batch t batch = List.iter (fun i -> cycle_replica t i ~fresh_key:false) batch

let batches t =
  let rec chunk acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | i :: rest ->
        if count = t.cfg.f then chunk (List.rev current :: acc) [ i ] 1 rest
        else chunk acc (i :: current) (count + 1) rest
  in
  chunk [] [] 0 (List.init t.cfg.n Fun.id)

type schedule = {
  mutable sched_stalled : bool;
  mutable sched_skipped : int;
  mutable sched_period : float;
  mutable sched_fire : unit -> unit;  (** run one boundary's batches immediately *)
}

(* Like Obfuscation.attach, the boundary series is a self-re-arming chain
   of [schedule_at] events reading the (mutable) period at each re-arm —
   body first, then re-arm at [now + period], one enqueue per boundary, so
   a fixed-period run is byte-identical to the historical [Engine.every]
   schedule. *)
let attach_schedule ?(stagger = true) t ~mode ~period =
  let bs = batches t in
  let nb = List.length bs in
  let sched =
    { sched_stalled = false; sched_skipped = 0; sched_period = period; sched_fire = ignore }
  in
  let fire_batches () =
    let spacing = if stagger then sched.sched_period /. float_of_int (nb + 1) else 1.0 in
    List.iteri
      (fun bi batch ->
        ignore
          (Engine.schedule t.engine ~delay:(spacing *. float_of_int bi) (fun () ->
               match mode with
               | Obfuscation.PO -> rekey_batch t batch
               | Obfuscation.SO -> recover_batch t batch)))
      bs
  in
  sched.sched_fire <- fire_batches;
  let rec arm () =
    ignore
      (Engine.schedule_at t.engine
         ~time:(Engine.now t.engine +. sched.sched_period)
         (fun () ->
           (if sched.sched_stalled then begin
              (* the daemon is wedged: the boundary silently does not happen,
                 mirroring Obfuscation.set_stalled on the FORTRESS stack *)
              sched.sched_skipped <- sched.sched_skipped + 1;
              Engine.emit t.engine
                (Fortress_obs.Event.Fault
                   {
                     action = "stall_skip";
                     target = "obfuscation";
                     detail =
                       Printf.sprintf "%s boundary skipped" (Obfuscation.mode_to_string mode);
                   })
            end
            else fire_batches ());
           arm ()))
  in
  arm ();
  sched

let set_stalled sched v = sched.sched_stalled <- v
let skipped_boundaries sched = sched.sched_skipped
let schedule_period sched = sched.sched_period

let set_schedule_period sched p =
  if p <= 0.0 then invalid_arg "Smr_deployment.set_schedule_period: period must be positive";
  sched.sched_period <- p

let force_boundary sched = sched.sched_fire ()

let crash_replica t i =
  Network.set_down t.net t.addresses.(i);
  Smr.crash t.replicas.(i);
  t.comp.(i) <- false;
  Smr.set_compromised t.replicas.(i) false;
  Engine.emit t.engine
    (Fortress_obs.Event.Fault
       {
         action = "crash";
         target = Fortress_model.Node_id.to_string (Fortress_model.Node_id.Replica i);
         detail = "";
       })

let restart_replica t i =
  Network.set_up t.net t.addresses.(i);
  Smr.restart t.replicas.(i);
  Smr.begin_state_transfer t.replicas.(i);
  Engine.emit t.engine
    (Fortress_obs.Event.Fault
       {
         action = "restart";
         target = Fortress_model.Node_id.to_string (Fortress_model.Node_id.Replica i);
         detail = "state transfer";
       })

let compromise t i =
  t.comp.(i) <- true;
  Smr.set_compromised t.replicas.(i) true;
  Engine.emit t.engine
    (Fortress_obs.Event.Compromise { tier = Fortress_obs.Event.Server_tier; index = i })

let compromised t i = t.comp.(i)
let compromised_count t = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.comp
let system_compromised t = compromised_count t > t.cfg.f
