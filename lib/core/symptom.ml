module Node_id = Fortress_model.Node_id

type t = Unreachable of Node_id.t

let to_string = function
  | Unreachable id -> Printf.sprintf "unreachable %s" (Node_id.to_string id)

let unreachable syms = List.map (function Unreachable id -> id) syms
let is_unreachable syms id = List.mem (Unreachable id) syms
