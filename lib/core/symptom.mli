(** Externally observable symptoms of a deployed stack.

    A symptom is what an outside observer — an attacker-side liveness
    check, a client-side health probe — can see without any access to
    defender internals: today that is only unreachability (a request to
    the node would time out). Both stacks expose one
    [symptoms : t -> Symptom.t list] accessor built on these values,
    replacing the per-stack ad-hoc boolean methods; the reads are pure
    (no PRNG consumption, no events), so sampling them never perturbs a
    trace. *)

type t = Unreachable of Fortress_model.Node_id.t

val to_string : t -> string

val unreachable : t list -> Fortress_model.Node_id.t list
(** The unreachable node ids, in the order the stack listed them
    (node order: servers, proxies, nameserver on FORTRESS; replicas on
    SMR). *)

val is_unreachable : t list -> Fortress_model.Node_id.t -> bool
(** Membership test: whether the listed symptoms mark [id] unreachable. *)
