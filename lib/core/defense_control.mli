(** Wire a {!Fortress_defense.Controller} to a live deployment.

    The controller library sits {e below} fortress_core in the dependency
    order, so it never sees a deployment: it acts through an actuator of
    closures built here. Sensing goes through
    [attach_telemetry ~alarms:false] — the signal plane records alarms for
    the query API without re-emitting them onto the sink, so attaching a
    defender whose strategy never acts (notably
    {!Fortress_defense.Controller.Strategy.static}) leaves the event trace
    byte-identical to an undefended run. *)

val attach :
  ?window:float ->
  ?capacity:int ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  ?period:float ->
  Deployment.t ->
  obfuscation:Obfuscation.t ->
  Fortress_defense.Controller.Strategy.t ->
  Fortress_defense.Controller.t
(** Attach a defender to a FORTRESS (S1/S2) deployment. Defaults come
    from the live configuration ([Obfuscation.period] and the configured
    proxy suspicion threshold); the actuator drives
    {!Obfuscation.set_period}, {!Proxy.set_detection_threshold} on every
    proxy, and {!Deployment.rekey} / {!Deployment.recover} for boosts.
    [period] is the controller boundary spacing (default: the obfuscation
    period, so decisions land between obfuscation boundaries). Telemetry
    options are passed through to {!Deployment.attach_telemetry}. *)

val attach_smr :
  ?window:float ->
  ?capacity:int ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  ?period:float ->
  Smr_deployment.t ->
  schedule:Smr_deployment.schedule ->
  Fortress_defense.Controller.Strategy.t ->
  Fortress_defense.Controller.t
(** Attach a defender to the S0 SMR baseline. The rekey-period knob
    drives {!Smr_deployment.set_schedule_period}; both boosts run
    {!Smr_deployment.force_boundary} (recovery is the batched boundary
    there); the proxy-threshold knob is a graceful no-op — S0 has no
    proxy tier. *)
