(** Wire a {!Fortress_defense.Controller} to a live deployment.

    The controller library sits {e below} fortress_core in the dependency
    order, so it never sees a deployment: it acts through an actuator of
    closures built here. Sensing goes through
    [attach_telemetry ~alarms:false] — the signal plane records alarms for
    the query API without re-emitting them onto the sink, so attaching a
    defender whose strategy never acts (notably
    {!Fortress_defense.Controller.Strategy.static}) leaves the event trace
    byte-identical to an undefended run. *)

val attach_stack :
  (module Stack_intf.S with type t = 's) ->
  ?window:float ->
  ?capacity:int ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  ?period:float ->
  's ->
  Fortress_defense.Controller.Strategy.t ->
  Fortress_defense.Controller.t
(** Attach a defender to any stack implementing {!Stack_intf.S}. Defaults
    come from the stack's live configuration ({!Stack_intf.S.rekey_period}
    and {!Stack_intf.S.default_threshold} — the stack must have an
    obfuscation schedule attached); the actuator drives the signature's
    period/threshold knobs and wraps both boosts in
    [Engine.causal_scope "defense.actuate"]. [period] is the controller
    boundary spacing (default: the stack's rekey period, so decisions land
    between obfuscation boundaries). Telemetry options are passed through
    to {!Stack_intf.S.attach_telemetry}. *)

val attach :
  ?window:float ->
  ?capacity:int ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  ?period:float ->
  Deployment.t ->
  obfuscation:Obfuscation.t ->
  Fortress_defense.Controller.Strategy.t ->
  Fortress_defense.Controller.t
(** [attach_stack] over {!Fortress_stack}: the actuator drives
    {!Obfuscation.set_period}, {!Proxy.set_detection_threshold} on every
    proxy, and {!Deployment.rekey} / {!Deployment.recover} for boosts.
    Kept for callers that hold the raw parts; new code should build a
    {!Fortress_stack.t} and call {!attach_stack}. *)

val attach_smr :
  ?window:float ->
  ?capacity:int ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  ?period:float ->
  Smr_deployment.t ->
  schedule:Smr_deployment.schedule ->
  Fortress_defense.Controller.Strategy.t ->
  Fortress_defense.Controller.t
(** [attach_stack] over {!Smr_stack}: the rekey-period knob drives
    {!Smr_deployment.set_schedule_period}; both boosts run
    {!Smr_deployment.force_boundary} (recovery is the batched boundary
    there); the proxy-threshold knob is a graceful no-op — S0 has no
    proxy tier. Kept for callers that hold the raw parts; new code should
    build an {!Smr_stack.t} and call {!attach_stack}. *)
