(** The shared stack signature both deployments implement.

    {!Fortress_stack} (the paper's fortified S1/S2 systems) and
    {!Smr_stack} (the S0 SMR baseline) satisfy [S], so everything that
    drives a stack from the outside — the {!Defense_control} wiring, the
    fault-injection experiment loop, and the [fortress_load] workload
    plane — is written once against the signature instead of twice per
    stack, mirroring the attack layer's [Campaign_intf.S].

    The signature covers the four surfaces an external driver needs:

    - {b requests}: [new_client] / [submit] / [client_accepted]. Both
      stacks emit [Request_submitted] / [Request_completed] events on the
      engine's sink for every accepted request, so workload accounting
      reads one event stream regardless of stack.
    - {b symptoms}: the pure read-only {!Symptom.t} surface.
    - {b defense actuators}: rekey-period and threshold knobs plus
      immediate rekey/recovery boosts. The actuators are plain calls —
      callers that want causal attribution (e.g. {!Defense_control})
      wrap them in [Engine.causal_scope] themselves.
    - {b telemetry}: the windowed timeline + defender-signal plane over
      the stack's event stream. *)

module type S = sig
  type t
  type client

  val name : string
  (** Stable stack label used in tables and artifacts ("fortress",
      "smr"). *)

  val engine : t -> Fortress_sim.Engine.t

  val attach_telemetry :
    ?window:float ->
    ?capacity:int ->
    ?alarms:bool ->
    ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
    t ->
    Fortress_obs.Timeline.t * Fortress_obs.Signal.t

  val symptoms : t -> Symptom.t list
  (** The externally observable symptom surface; pure read (no PRNG, no
      events), cheap when the network is quiescent. *)

  val rekey_period : t -> float
  (** The live obfuscation boundary spacing. Raises [Invalid_argument]
      if the stack has no obfuscation schedule attached. *)

  val set_rekey_period : t -> float -> unit
  val default_threshold : t -> int
  (** The configured detection-threshold default the controller resets
      to; a stack without a threshold knob reports a harmless constant. *)

  val set_threshold : t -> int -> unit
  (** Graceful no-op on stacks without a proxy tier. *)

  val rekey_now : t -> unit
  val recover_now : t -> unit
  val system_compromised : t -> bool
  val new_client : t -> name:string -> client
  val submit : client -> cmd:string -> on_response:(string -> unit) -> string
  val client_accepted : client -> int
end
