(** The S0 SMR baseline behind the shared {!Stack_intf.S} signature: a
    {!Smr_deployment} plus its (optional) batched obfuscation schedule.

    The client wrapper emits the same [Request_submitted] /
    [Request_completed] event pair the fortress {!Client} emits — the raw
    {!Smr_deployment.client} predates the workload plane and is silent —
    so per-window goodput and latency accounting read one event stream on
    either stack. The defense actuators raise [Invalid_argument] until a
    schedule is attached; both boosts run the batched boundary
    ({!Smr_deployment.force_boundary}), and the proxy-threshold knob is a
    graceful no-op. *)

include Stack_intf.S

val of_parts : ?schedule:Smr_deployment.schedule -> Smr_deployment.t -> t
val deployment : t -> Smr_deployment.t
val schedule : t -> Smr_deployment.schedule option
val set_schedule : t -> Smr_deployment.schedule -> unit
