module Controller = Fortress_defense.Controller

(* The wiring layer between the deployment-agnostic controller and the two
   concrete stacks. The controller library sits below fortress_core, so it
   steers through an actuator of closures built here; the signal it reads
   comes from [attach_telemetry ~alarms:false] so that attaching a defender
   that never acts leaves the event trace byte-identical to an undefended
   run (the [static] conformance contract). Everything below is written
   once against [Stack_intf.S]; the historical per-stack entry points are
   kept as thin shims over [attach_stack]. *)

let attach_stack (type s) (module St : Stack_intf.S with type t = s) ?window ?capacity
    ?params ?(period : float option) (stack : s) strategy =
  let engine = St.engine stack in
  let _timeline, signal = St.attach_telemetry ?window ?capacity ?params ~alarms:false stack in
  let defaults : Controller.defaults =
    { rekey_period = St.rekey_period stack; threshold = St.default_threshold stack }
  in
  let actuator =
    {
      Controller.set_rekey_period = (fun p -> St.set_rekey_period stack p);
      set_threshold = (fun k -> St.set_threshold stack k);
      rekey_now =
        (fun () ->
          Fortress_sim.Engine.causal_scope engine "defense.actuate" (fun () ->
              St.rekey_now stack));
      recover_now =
        (fun () ->
          Fortress_sim.Engine.causal_scope engine "defense.actuate" (fun () ->
              St.recover_now stack));
    }
  in
  let period = match period with Some p -> p | None -> St.rekey_period stack in
  Controller.launch ~engine ~signal ~period ~defaults ~actuator strategy

let attach ?window ?capacity ?params ?period deployment ~obfuscation strategy =
  attach_stack
    (module Fortress_stack)
    ?window ?capacity ?params ?period
    (Fortress_stack.of_parts ~obfuscation deployment)
    strategy

let attach_smr ?window ?capacity ?params ?period deployment ~schedule strategy =
  attach_stack
    (module Smr_stack)
    ?window ?capacity ?params ?period
    (Smr_stack.of_parts ~schedule deployment)
    strategy
