module Controller = Fortress_defense.Controller

(* The wiring layer between the deployment-agnostic controller and the two
   concrete stacks. The controller library sits below fortress_core, so it
   steers through an actuator of closures built here; the signal it reads
   comes from [attach_telemetry ~alarms:false] so that attaching a defender
   that never acts leaves the event trace byte-identical to an undefended
   run (the [static] conformance contract). *)

let attach ?window ?capacity ?params ?(period : float option) deployment ~obfuscation strategy
    =
  let engine = Deployment.engine deployment in
  let _timeline, signal =
    Deployment.attach_telemetry ?window ?capacity ?params ~alarms:false deployment
  in
  let defaults : Controller.defaults =
    {
      rekey_period = Obfuscation.period obfuscation;
      threshold = (Deployment.config deployment).Deployment.proxy.Proxy.detection_threshold;
    }
  in
  let actuator =
    {
      Controller.set_rekey_period = (fun p -> Obfuscation.set_period obfuscation p);
      set_threshold =
        (fun k ->
          Array.iter
            (fun proxy -> Proxy.set_detection_threshold proxy k)
            (Deployment.proxies deployment));
      rekey_now =
        (fun () ->
          Fortress_sim.Engine.causal_scope engine "defense.actuate" (fun () ->
              Deployment.rekey deployment));
      recover_now =
        (fun () ->
          Fortress_sim.Engine.causal_scope engine "defense.actuate" (fun () ->
              Deployment.recover deployment));
    }
  in
  let period =
    match period with Some p -> p | None -> Obfuscation.period obfuscation
  in
  Controller.launch ~engine ~signal ~period ~defaults ~actuator strategy

let attach_smr ?window ?capacity ?params ?(period : float option) deployment ~schedule
    strategy =
  let engine = Smr_deployment.engine deployment in
  let _timeline, signal =
    Smr_deployment.attach_telemetry ?window ?capacity ?params ~alarms:false deployment
  in
  let defaults : Controller.defaults =
    {
      rekey_period = Smr_deployment.schedule_period schedule;
      (* S0 has no proxy tier; the threshold knob is a graceful no-op. *)
      threshold = 1;
    }
  in
  let actuator =
    {
      Controller.set_rekey_period =
        (fun p -> Smr_deployment.set_schedule_period schedule p);
      set_threshold = (fun _ -> ());
      rekey_now =
        (fun () ->
          Fortress_sim.Engine.causal_scope engine "defense.actuate" (fun () ->
              Smr_deployment.force_boundary schedule));
      recover_now =
        (fun () ->
          Fortress_sim.Engine.causal_scope engine "defense.actuate" (fun () ->
              Smr_deployment.force_boundary schedule));
    }
  in
  let period =
    match period with Some p -> p | None -> Smr_deployment.schedule_period schedule
  in
  Controller.launch ~engine ~signal ~period ~defaults ~actuator strategy
