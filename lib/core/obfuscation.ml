module Engine = Fortress_sim.Engine
module Event = Fortress_obs.Event

type mode = PO | SO

let mode_to_string = function PO -> "po" | SO -> "so"
let mode_of_string = function "po" -> Some PO | "so" -> Some SO | _ -> None

type t = {
  obf_mode : mode;
  mutable obf_period : float;
  mutable steps : int;
  mutable obf_stalled : bool;
  mutable skipped : int;
  mutable detached : bool;
  mutable pending : Engine.handle option;
}

(* The boundary series is a self-re-arming chain of [schedule_at] events
   rather than [Engine.every] so the period can move between boundaries
   (the adaptive defender's rekey-period actuator). The chain replicates
   [every]'s exact semantics — body first, then re-arm at [now + period],
   one enqueue per boundary — so a run whose period never moves is
   byte-identical to the historical [every]-based schedule. *)
let attach deployment ~mode ~period =
  if period <= 0.0 then invalid_arg "Obfuscation.attach: period must be positive";
  let engine = Deployment.engine deployment in
  let t =
    {
      obf_mode = mode;
      obf_period = period;
      steps = 0;
      obf_stalled = false;
      skipped = 0;
      detached = false;
      pending = None;
    }
  in
  let rec arm () =
    t.pending <-
      Some
        (Engine.schedule_at engine
           ~time:(Engine.now engine +. t.obf_period)
           (fun () ->
             if not t.detached then begin
               (if t.obf_stalled then begin
                  (* the daemon is wedged: the boundary silently does not happen,
                     so every key stays exactly as exposed as it already was *)
                  t.skipped <- t.skipped + 1;
                  Engine.emit engine
                    (Event.Fault
                       {
                         action = "stall_skip";
                         target = "obfuscation";
                         detail = Printf.sprintf "%s boundary skipped" (mode_to_string mode);
                       })
                end
                else begin
                  Engine.causal_scope engine "obf.boundary" (fun () ->
                      match mode with
                      | PO -> Deployment.rekey deployment
                      | SO -> Deployment.recover deployment);
                  t.steps <- t.steps + 1
                end);
               arm ()
             end))
  in
  arm ();
  t

let mode t = t.obf_mode
let period t = t.obf_period
let steps_completed t = t.steps

let set_period t p =
  if p <= 0.0 then invalid_arg "Obfuscation.set_period: period must be positive";
  t.obf_period <- p

let set_stalled t v = t.obf_stalled <- v
let stalled t = t.obf_stalled
let skipped_boundaries t = t.skipped

let detach t =
  t.detached <- true;
  Option.iter Engine.cancel t.pending
