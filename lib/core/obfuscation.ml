module Engine = Fortress_sim.Engine
module Event = Fortress_obs.Event

type mode = PO | SO

let mode_to_string = function PO -> "po" | SO -> "so"
let mode_of_string = function "po" -> Some PO | "so" -> Some SO | _ -> None

type t = {
  obf_mode : mode;
  obf_period : float;
  mutable steps : int;
  mutable obf_stalled : bool;
  mutable skipped : int;
  handle : Engine.handle;
}

let attach deployment ~mode ~period =
  if period <= 0.0 then invalid_arg "Obfuscation.attach: period must be positive";
  let t_ref = ref None in
  let engine = Deployment.engine deployment in
  let handle =
    Engine.every engine ~period (fun () ->
        match !t_ref with
        | Some t when t.obf_stalled ->
            (* the daemon is wedged: the boundary silently does not happen,
               so every key stays exactly as exposed as it already was *)
            t.skipped <- t.skipped + 1;
            Engine.emit engine
              (Event.Fault
                 {
                   action = "stall_skip";
                   target = "obfuscation";
                   detail = Printf.sprintf "%s boundary skipped" (mode_to_string mode);
                 })
        | (Some _ | None) as r -> (
            (match mode with
            | PO -> Deployment.rekey deployment
            | SO -> Deployment.recover deployment);
            match r with Some t -> t.steps <- t.steps + 1 | None -> ()))
  in
  let t =
    { obf_mode = mode; obf_period = period; steps = 0; obf_stalled = false; skipped = 0; handle }
  in
  t_ref := Some t;
  t

let mode t = t.obf_mode
let period t = t.obf_period
let steps_completed t = t.steps
let set_stalled t v = t.obf_stalled <- v
let stalled t = t.obf_stalled
let skipped_boundaries t = t.skipped
let detach t = Engine.cancel t.handle
