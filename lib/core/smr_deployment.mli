(** The paper's S0 comparison system: a 1-tier, 4-replica SMR deployment
    whose clients interact with the replicas directly and vote over f + 1
    matching signed replies.

    Each replica carries its own randomized-executable instance with a
    {e distinct} key (diverse randomization is S0's whole defence), and the
    deployment implements the Roeder-Schneider obfuscation schedule:
    batches of at most [f] replicas leave the system per boundary, are
    re-randomized (or merely recovered), and rejoin via state transfer from
    the remaining majority — so the SMR service never stops. *)

type config = {
  n : int;
  f : int;
  service : Fortress_replication.Dsm.t;
  keyspace : Fortress_defense.Keyspace.t;
  smr : Fortress_replication.Smr.config;  (** [n], [f] overridden *)
  latency : Fortress_net.Latency.t;
  seed : int;
}

val default_config : config
(** n = 4, f = 1, kv service, chi = 2^16. *)

type t

val create : config -> t
val engine : t -> Fortress_sim.Engine.t

val attach_telemetry :
  ?window:float ->
  ?capacity:int ->
  ?alarms:bool ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  t ->
  Fortress_obs.Timeline.t * Fortress_obs.Signal.t
(** The telemetry plane over the SMR baseline's event stream — same
    windows and defender signals as {!Deployment.attach_telemetry}, so S0
    and S2 signal timelines are directly comparable. *)

val network : t -> Fortress_replication.Smr.msg Fortress_net.Network.t
(** The deployment's network — exposed so the fault-injection layer can
    install link interceptors and partitions on the SMR stack too. *)

val replicas : t -> Fortress_replication.Smr.replica array
val instances : t -> Fortress_defense.Instance.t array
val addresses : t -> Fortress_net.Address.t array

val symptoms : t -> Symptom.t list
(** External symptom surface: every replica whose requests would time out
    right now (node down), in replica order. Pure read — no PRNG
    consumption, no events; empty at O(1) cost while the network is
    quiescent. Replaces the former [replica_unreachable] boolean method
    and is the {!Stack_intf.S} symptom surface. *)

type client

val new_client : t -> name:string -> client
val submit : client -> cmd:string -> on_response:(string -> unit) -> string
(** Send to all replicas; [on_response] fires on the first f+1 matching,
    validly signed replies. *)

val client_accepted : client -> int

(** {1 Obfuscation and recovery} *)

val rekey_batch : t -> int list -> unit
(** Re-randomize the given replicas (fresh distinct keys) and put them
    through recovery: stop, wipe, restart, state transfer. *)

val recover_batch : t -> int list -> unit
(** Same, but the keys are unchanged (proactive recovery). *)

val batches : t -> int list list
(** The ceil(n/f) batches of at most f replicas, covering every index. *)

type schedule
(** Handle on the batched obfuscation daemon, the SMR counterpart of
    {!Obfuscation.t}: fault plans wedge it via {!set_stalled}. *)

val attach_schedule : ?stagger:bool -> t -> mode:Obfuscation.mode -> period:float -> schedule
(** Run batched obfuscation/recovery. With [stagger] (the default, and what
    Roeder-Schneider deployment constraints force) the batches are spaced
    evenly inside each step so the SMR system always has a 2f+1 quorum of
    settled replicas; with [stagger:false] every batch fires back-to-back at
    the boundary, which aligns all replicas' exposure windows — measurably
    stronger against the simultaneity condition (see EXPERIMENTS.md V3) but
    only deployable when recovery is fast enough to overlap. *)

val set_stalled : schedule -> bool -> unit
(** Wedge (or unwedge) the daemon: while stalled each boundary elapses
    without rekey or recovery, emitting a ["stall_skip"] fault event —
    mirroring {!Obfuscation.set_stalled} on the FORTRESS stack. *)

val skipped_boundaries : schedule -> int

val schedule_period : schedule -> float
(** The current boundary spacing (mutable via {!set_schedule_period}). *)

val set_schedule_period : schedule -> float -> unit
(** Defender actuator, mirroring {!Obfuscation.set_period}: takes effect
    when the already-armed boundary fires (the next interval). Raises
    [Invalid_argument] on a non-positive period. *)

val force_boundary : schedule -> unit
(** Defender actuator: run one boundary's rekey/recovery batches
    immediately, even while the daemon is stalled — the controller's
    recovery-priority escape hatch. Does not disturb the periodic chain. *)

(** {1 Crash faults} *)

val crash_replica : t -> int -> unit
(** Crash replica [i] with amnesia: node down, volatile ordering state
    lost, any intrusion on it dies with the process. *)

val restart_replica : t -> int -> unit
(** Bring replica [i] back and rejoin via state transfer. *)

(** {1 Compromise bookkeeping} *)

val compromise : t -> int -> unit
val compromised : t -> int -> bool
val compromised_count : t -> int

val system_compromised : t -> bool
(** S0 fails as soon as more than [f] replicas are simultaneously
    compromised. *)
