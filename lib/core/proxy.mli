(** The FORTRESS proxy.

    Proxies are the only processes clients can reach. A proxy forwards each
    valid client request to every server, collects the servers' signed
    replies, over-signs the first authentic one and relays it to the
    waiting clients. Proxies do no service processing, which is what makes
    them harder to exploit than servers and cheap to log on.

    The proxy's second role is the one the paper's kappa coefficient
    models: every de-randomization probe a client submits looks, at the
    proxy, like an invalid request. The proxy logs invalid requests per
    source over a sliding window and blocks sources that exceed the
    threshold — forcing an attacker to pace indirect probes far below
    omega, i.e. kappa < 1. *)

type config = {
  detection_window : float;
      (** sliding window over which invalid requests are counted *)
  detection_threshold : int;
      (** invalid requests in a window that make a source suspect *)
  forward_probes : bool;
      (** whether unrecognised/probe traffic is still forwarded to servers
          (imperfect filtering; [true] is the conservative default — the
          proxy logs, it does not deep-inspect) *)
}

val default_config : config
(** window 100.0, threshold 10, forward_probes true. *)

type t

val create :
  engine:Fortress_sim.Engine.t ->
  config:config ->
  index:int ->
  secret:Fortress_crypto.Sign.secret_key ->
  self:Fortress_net.Address.t ->
  server_addresses:Fortress_net.Address.t array ->
  server_keys:Fortress_crypto.Sign.public_key array ->
  send:(dst:Fortress_net.Address.t -> Message.t -> unit) ->
  t

val handle : t -> src:Fortress_net.Address.t -> Message.t -> unit

val index : t -> int
val public_key : t -> Fortress_crypto.Sign.public_key

val is_blocked : t -> Fortress_net.Address.t -> bool
val blocked_sources : t -> Fortress_net.Address.t list
val invalid_observed : t -> int
(** Total invalid requests logged. *)

val forwarded : t -> int
(** Valid requests forwarded to the server tier. *)

val relayed : t -> int
(** Doubly-signed replies sent back to clients. *)

val rejected_server_replies : t -> int
(** Server replies whose signature failed verification. *)

val unblock_all : t -> unit
(** Operator action: clear the blocklist (e.g. at a re-randomization
    boundary). *)

val detection_threshold : t -> int
(** The live suspicion threshold; starts at [config.detection_threshold]. *)

val set_detection_threshold : t -> int -> unit
(** Defender actuator: tighten or relax the suspicion threshold — the
    knob behind the paper's effective kappa. The override is policy, not
    volatile process state, so it survives {!crash_reset}. Raises
    [Invalid_argument] on a negative threshold. *)

val crash_reset : t -> unit
(** Crash with amnesia: pending requests, the invalid-request sliding
    window and the blocklist are wiped (lifetime counters survive — they
    are measurement, not process state). The restarted proxy answers
    again immediately but has forgotten every suspect. *)

val set_compromised : t -> bool -> unit
(** A compromised proxy stops serving clients (it is the attacker's launch
    pad now); it cannot forge server signatures, so integrity is preserved
    as long as one honest proxy remains. *)

val compromised : t -> bool
