(** Assemble a complete FORTRESS system on a simulated network.

    A deployment is [np] proxies fronting [ns] primary-backup servers (the
    paper's S2 with np = ns = 3), or — with [np = 0] — a bare S1 system
    whose clients talk to the servers directly. Each proxy and server node
    carries a randomized-executable {!Fortress_defense.Instance}: per the
    FORTRESS prescription, all servers share one randomization key, each
    proxy has its own, and at any time np + 1 randomly selected keys are in
    use. The deployment owns the engine, the network, the nameserver
    record and the compromise bookkeeping used by attack campaigns. *)

type config = {
  np : int;  (** proxies; 0 builds an unfortified S1 system *)
  ns : int;  (** primary-backup servers *)
  service : Fortress_replication.Dsm.t;
  service_name : string;
  keyspace : Fortress_defense.Keyspace.t;
  pb : Fortress_replication.Pb.config;  (** [ns] is overridden by [ns] above *)
  proxy : Proxy.config;
  latency : Fortress_net.Latency.t;
  seed : int;
}

val default_config : config
(** The paper's S2: np = 3, ns = 3, kv service, chi = 2^16, seed 0. *)

type t

val create : config -> t
val config : t -> config
val engine : t -> Fortress_sim.Engine.t

val attach_telemetry :
  ?window:float ->
  ?capacity:int ->
  ?alarms:bool ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  t ->
  Fortress_obs.Timeline.t * Fortress_obs.Signal.t
(** {!Fortress_sim.Engine.attach_telemetry} on this deployment's engine:
    windowed timeline plus defender signals (invalid-probe rate,
    blocked-source rate, crash bursts, rekey staleness) over the FORTRESS
    stack's event plane. Off by default — nothing is observed unless this
    is called. *)

val network : t -> Message.t Fortress_net.Network.t
val nameserver : t -> Nameserver.t
val record : t -> Nameserver.record

val proxies : t -> Proxy.t array
val servers : t -> Fortress_replication.Pb.replica array
val proxy_instances : t -> Fortress_defense.Instance.t array
val server_instances : t -> Fortress_defense.Instance.t array
val proxy_addresses : t -> Fortress_net.Address.t array
val server_addresses : t -> Fortress_net.Address.t array

val new_client : t -> name:string -> Client.t
(** Register a fresh client node wired for this deployment's mode
    (via proxies when np > 0, direct otherwise). *)

val new_attacker_address : t -> name:string ->
  handler:(src:Fortress_net.Address.t -> Message.t -> unit) ->
  Fortress_net.Address.t
(** Register an attacker-controlled node with a custom handler. *)

(** {1 Obfuscation operations} *)

val rekey : t -> unit
(** Proactive obfuscation step: draw one fresh key for all servers and a
    distinct fresh key per proxy (np + 1 keys in use), then evict intruders
    (clear all compromise flags). *)

val recover : t -> unit
(** Proactive recovery step: reinstall the same executables (keys
    unchanged), evicting intruders. *)

(** {1 Crash faults (driven by the fault-injection subsystem)} *)

val crash_server : t -> int -> unit
(** Crash server [i]: its network node goes down (in-flight deliveries
    voided), the replica loses volatile state, and any intrusion on it
    dies with the process. While down it misses obfuscation boundaries —
    {!rekey} / {!recover} skip down nodes, leaving stale keys behind. *)

val restart_server : t -> int -> unit
(** Bring server [i] back up; it resyncs over the network from the current
    primary. *)

val crash_proxy : t -> int -> unit
(** Crash proxy [i]: node down, pending requests orphaned, suspicion
    window and blocklist forgotten. *)

val restart_proxy : t -> int -> unit

val crash_nameserver : t -> unit
(** Lookups fail until restart; new clients cannot discover the service. *)

val restart_nameserver : t -> unit

(** {1 External symptom surface (read-only)}

    What an attacker-side liveness check observes from outside the
    perimeter — a request to a down node, or to a proxy cut off from every
    live server, times out; nothing about keys, epochs or compromise flags
    leaks. Pure reads: no PRNG consumption, no events, so adaptive
    campaigns can sample them without perturbing traces. *)

val symptoms : t -> Symptom.t list
(** Every node that would time out right now, in node order (servers,
    proxies, nameserver): a down server, a proxy that is down or
    partitioned from every live server, a downed nameserver. Empty — at
    O(1) cost — while the network is quiescent and the nameserver is up.
    This accessor replaces the former [server_unreachable] /
    [proxy_unreachable] / [unreachable_symptom] boolean methods and is
    the {!Stack_intf.S} symptom surface. *)

(** {1 Compromise bookkeeping (driven by attack campaigns)} *)

val compromise_server : t -> int -> unit
(** Mark server [i] intruded: its replies become attacker-controlled. *)

val compromise_proxy : t -> int -> unit
val server_compromised : t -> int -> bool
val proxy_compromised : t -> int -> bool
val compromised_proxy_count : t -> int

val system_compromised : t -> bool
(** The paper's S2 failure condition: any server compromised, or all
    proxies compromised. For np = 0 (S1) it is any server compromised. *)
