module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign

type replication = Primary_backup | State_machine of int

type record = {
  service : string;
  proxy_addresses : Address.t array;
  proxy_keys : Sign.public_key array;
  server_indices : int array;
  server_keys : Sign.public_key array;
  replication : replication;
}

type t = { records : (string, record) Hashtbl.t; mutable up : bool }

let create () = { records = Hashtbl.create 8; up = true }

let set_down t = t.up <- false
let set_up t = t.up <- true
let is_up t = t.up

let publish t record =
  if Array.length record.proxy_addresses <> Array.length record.proxy_keys then
    invalid_arg "Nameserver.publish: proxy address/key mismatch";
  if Array.length record.server_indices <> Array.length record.server_keys then
    invalid_arg "Nameserver.publish: server index/key mismatch";
  Hashtbl.replace t.records record.service record

let lookup t name = if t.up then Hashtbl.find_opt t.records name else None

let services t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.records [] |> List.sort String.compare

let client_view r =
  let repl =
    match r.replication with
    | Primary_backup -> "primary-backup"
    | State_machine f -> Printf.sprintf "state-machine (f=%d)" f
  in
  Format.asprintf "service %s: %d proxies at [%s], %d servers (indices only: [%s]), %s"
    r.service
    (Array.length r.proxy_addresses)
    (String.concat "; "
       (Array.to_list (Array.map Address.to_string r.proxy_addresses)))
    (Array.length r.server_indices)
    (String.concat "; " (Array.to_list (Array.map string_of_int r.server_indices)))
    repl
