(** Obfuscation schedules over a FORTRESS deployment.

    The paper models two regimes (section 4.1). {b PO} (proactive
    obfuscation): every node is re-randomized with fresh keys at the end of
    each unit time-step — guessing across steps is sampling {e with}
    replacement. {b SO} (start-up-only obfuscation): nodes are randomized
    once at start-up and merely {e recovered} each step (same keys, Castro-
    Liskov proactive recovery) — an attacker eliminates keys across steps,
    sampling {e without} replacement. Re-randomization is modelled as
    instantaneous at the step boundary, as in the paper. *)

type mode = PO | SO

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type t

val attach : Deployment.t -> mode:mode -> period:float -> t
(** Start the schedule: the first boundary fires at [period], then every
    [period] thereafter. *)

val mode : t -> mode

val period : t -> float
(** The current boundary spacing (mutable via {!set_period}). *)

val steps_completed : t -> int

val set_period : t -> float -> unit
(** Defender actuator: change the boundary spacing. Takes effect when the
    already-armed boundary fires — the next interval, not the current one —
    so a mid-interval change never reschedules an in-flight boundary and a
    run that never calls this is byte-identical to a fixed schedule.
    Raises [Invalid_argument] on a non-positive period. *)

val set_stalled : t -> bool -> unit
(** Fault hook: while stalled, boundaries fire but perform no rekey /
    recovery — the daemon is wedged, keys stay exposed, and each skipped
    boundary emits a ["stall_skip"] fault event. *)

val stalled : t -> bool
val skipped_boundaries : t -> int
(** Boundaries that elapsed while stalled. *)

val detach : t -> unit
(** Stop future boundaries (used when tearing an experiment down). *)
