module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Latency = Fortress_net.Latency
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Pb = Fortress_replication.Pb
module Dsm = Fortress_replication.Dsm
module Keyspace = Fortress_defense.Keyspace
module Instance = Fortress_defense.Instance
module Prng = Fortress_util.Prng
module Event = Fortress_obs.Event
module Node_id = Fortress_model.Node_id

type config = {
  np : int;
  ns : int;
  service : Dsm.t;
  service_name : string;
  keyspace : Keyspace.t;
  pb : Pb.config;
  proxy : Proxy.config;
  latency : Latency.t;
  seed : int;
}

let default_config =
  {
    np = 3;
    ns = 3;
    service = Fortress_replication.Services.kv;
    service_name = "kv";
    keyspace = Keyspace.pax_aslr_32bit;
    pb = Pb.default_config;
    proxy = Proxy.default_config;
    latency = Latency.constant 0.5;
    seed = 0;
  }

type t = {
  cfg : config;
  engine : Engine.t;
  net : Message.t Network.t;
  nameserver : Nameserver.t;
  record : Nameserver.record;
  proxies : Proxy.t array;
  servers : Pb.replica array;
  proxy_instances : Instance.t array;
  server_instances : Instance.t array;
  proxy_addresses : Address.t array;
  server_addresses : Address.t array;
  server_comp : bool array;
  proxy_comp : bool array;
  key_prng : Prng.t;
      (* obfuscation key draws live on their own stream, decoupled from the
         engine's: network-level perturbations (fault injection, extra
         clients) never change which keys the defense rotates through, so
         runs under different fault plans stay pairwise comparable *)
  mutable client_count : int;
}

(* Draw a key distinct from every key in [avoid]. *)
let rec fresh_key keyspace prng avoid =
  let k = Keyspace.random_key keyspace prng in
  if List.mem k avoid then fresh_key keyspace prng avoid else k

let create cfg =
  if cfg.np < 0 then invalid_arg "Deployment.create: np must be >= 0";
  if cfg.ns < 1 then invalid_arg "Deployment.create: ns must be >= 1";
  let engine = Engine.create ~prng:(Prng.create ~seed:cfg.seed) () in
  let prng = Engine.prng engine in
  let key_prng = Prng.create ~seed:(cfg.seed lxor 0x6b657973) in
  let net = Network.create ~latency:cfg.latency engine in
  (* addresses first, handlers wired once the nodes exist *)
  let server_addresses =
    Array.init cfg.ns (fun i ->
        Network.register net ~name:(Printf.sprintf "server%d" i) ~handler:(fun ~src:_ _ -> ()))
  in
  let proxy_addresses =
    Array.init cfg.np (fun i ->
        Network.register net ~name:(Printf.sprintf "proxy%d" i) ~handler:(fun ~src:_ _ -> ()))
  in
  (* randomization: one shared key for the servers, a distinct key per proxy *)
  let server_key = Keyspace.random_key cfg.keyspace key_prng in
  let server_instances =
    Array.init cfg.ns (fun _ ->
        let inst = Instance.create cfg.keyspace key_prng in
        Instance.set_key inst server_key;
        inst)
  in
  let proxy_keys = ref [ server_key ] in
  let proxy_instances =
    Array.init cfg.np (fun _ ->
        let inst = Instance.create cfg.keyspace key_prng in
        let k = fresh_key cfg.keyspace key_prng !proxy_keys in
        proxy_keys := k :: !proxy_keys;
        Instance.set_key inst k;
        inst)
  in
  let pb_config = { cfg.pb with Pb.ns = cfg.ns } in
  let servers =
    Array.init cfg.ns (fun i ->
        let secret, _ = Sign.generate prng in
        Pb.create ~engine ~config:pb_config ~index:i ~service:cfg.service ~secret
          ~self:server_addresses.(i) ~addresses:server_addresses
          (fun ~dst msg ->
            Network.send net ~src:server_addresses.(i) ~dst (Message.Server msg)))
  in
  Array.iteri
    (fun i addr ->
      Network.set_handler net addr (fun ~src msg ->
          match msg with
          | Message.Server m -> Pb.handle servers.(i) ~src m
          | Message.Client_request _ | Message.Client_reply _ ->
              (* servers accept messages only from proxies and the
                 nameserver: client-tier traffic is dropped *)
              ()))
    server_addresses;
  let server_keys = Array.map Pb.public_key servers in
  let proxies =
    Array.init cfg.np (fun i ->
        let secret, _ = Sign.generate prng in
        Proxy.create ~engine ~config:cfg.proxy ~index:i ~secret ~self:proxy_addresses.(i)
          ~server_addresses ~server_keys
          ~send:(fun ~dst msg -> Network.send net ~src:proxy_addresses.(i) ~dst msg))
  in
  Array.iteri
    (fun i addr ->
      Network.set_handler net addr (fun ~src msg -> Proxy.handle proxies.(i) ~src msg))
    proxy_addresses;
  Array.iter Pb.start servers;
  let record =
    {
      Nameserver.service = cfg.service_name;
      proxy_addresses;
      proxy_keys = Array.map Proxy.public_key proxies;
      server_indices = Array.init cfg.ns Fun.id;
      server_keys;
      replication = Nameserver.Primary_backup;
    }
  in
  let nameserver = Nameserver.create () in
  Nameserver.publish nameserver record;
  {
    cfg;
    engine;
    net;
    nameserver;
    record;
    proxies;
    servers;
    proxy_instances;
    server_instances;
    proxy_addresses;
    server_addresses;
    server_comp = Array.make cfg.ns false;
    proxy_comp = Array.make (max cfg.np 1) false;
    key_prng;
    client_count = 0;
  }

let config t = t.cfg
let engine t = t.engine
let attach_telemetry ?window ?capacity ?alarms ?params t =
  Engine.attach_telemetry ?window ?capacity ?alarms ?params t.engine
let network t = t.net
let nameserver t = t.nameserver
let record t = t.record
let proxies t = t.proxies
let servers t = t.servers
let proxy_instances t = t.proxy_instances
let server_instances t = t.server_instances
let proxy_addresses t = t.proxy_addresses
let server_addresses t = t.server_addresses

let new_client t ~name =
  t.client_count <- t.client_count + 1;
  let self = Network.register t.net ~name ~handler:(fun ~src:_ _ -> ()) in
  let mode =
    if t.cfg.np > 0 then Client.Via_proxies t.record
    else
      Client.Direct_servers
        { addresses = t.server_addresses; keys = t.record.Nameserver.server_keys }
  in
  let client =
    Client.create ~engine:t.engine ~mode ~self
      ~send:(fun ~dst msg -> Network.send t.net ~src:self ~dst msg)
      (Prng.split (Engine.prng t.engine))
  in
  Network.set_handler t.net self (fun ~src msg -> Client.handle client ~src msg);
  client

let new_attacker_address t ~name ~handler = Network.register t.net ~name ~handler

let clear_compromises t =
  Array.iteri
    (fun i _ ->
      t.server_comp.(i) <- false;
      Pb.set_compromised t.servers.(i) false)
    t.server_comp;
  Array.iter (fun p -> Proxy.set_compromised p false) t.proxies;
  Array.fill t.proxy_comp 0 (Array.length t.proxy_comp) false

(* An obfuscation boundary only reaches nodes that are up: a crashed node
   cannot re-randomize, so it keeps its stale key (and the attacker's
   accumulated knowledge about it) until it is rekeyed after restart. *)
let rekey t =
  let prng = t.key_prng in
  let server_key = Keyspace.random_key t.cfg.keyspace prng in
  let missed = ref 0 in
  Array.iteri
    (fun i inst ->
      if Network.is_up t.net t.server_addresses.(i) then Instance.set_key inst server_key
      else incr missed)
    t.server_instances;
  let used = ref [ server_key ] in
  Array.iteri
    (fun i inst ->
      let k = fresh_key t.cfg.keyspace prng !used in
      used := k :: !used;
      if Network.is_up t.net t.proxy_addresses.(i) then Instance.set_key inst k
      else incr missed)
    t.proxy_instances;
  clear_compromises t;
  if !missed > 0 then
    Engine.emit t.engine
      (Event.Fault
         {
           action = "rekey_miss";
           target = "deployment";
           detail = Printf.sprintf "%d down nodes kept stale keys" !missed;
         });
  Engine.emit t.engine (Event.Rekey { nodes = t.cfg.ns + t.cfg.np - !missed })

let recover t =
  let missed = ref 0 in
  Array.iteri
    (fun i inst ->
      if Network.is_up t.net t.server_addresses.(i) then Instance.recover inst
      else incr missed)
    t.server_instances;
  Array.iteri
    (fun i inst ->
      if Network.is_up t.net t.proxy_addresses.(i) then Instance.recover inst
      else incr missed)
    t.proxy_instances;
  clear_compromises t;
  if !missed > 0 then
    Engine.emit t.engine
      (Event.Fault
         {
           action = "recover_miss";
           target = "deployment";
           detail = Printf.sprintf "%d down nodes not recovered" !missed;
         });
  Engine.emit t.engine (Event.Recover { nodes = t.cfg.ns + t.cfg.np - !missed })

(* ---- crash faults ---- *)

let fault t ~action ~target ~detail = Engine.emit t.engine (Event.Fault { action; target; detail })

let crash_server t i =
  (* the process dies: the intruder's foothold dies with it *)
  Network.set_down t.net t.server_addresses.(i);
  Pb.crash t.servers.(i);
  t.server_comp.(i) <- false;
  Pb.set_compromised t.servers.(i) false;
  fault t ~action:"crash" ~target:(Node_id.to_string (Node_id.Server i)) ~detail:""

let restart_server t i =
  Network.set_up t.net t.server_addresses.(i);
  Pb.restart t.servers.(i);
  fault t ~action:"restart" ~target:(Node_id.to_string (Node_id.Server i)) ~detail:"network resync"

let crash_proxy t i =
  Network.set_down t.net t.proxy_addresses.(i);
  Proxy.crash_reset t.proxies.(i);
  t.proxy_comp.(i) <- false;
  Proxy.set_compromised t.proxies.(i) false;
  fault t ~action:"crash" ~target:(Node_id.to_string (Node_id.Proxy i)) ~detail:""

let restart_proxy t i =
  Network.set_up t.net t.proxy_addresses.(i);
  fault t ~action:"restart" ~target:(Node_id.to_string (Node_id.Proxy i))
    ~detail:"blocklist forgotten"

let crash_nameserver t =
  Nameserver.set_down t.nameserver;
  fault t ~action:"crash" ~target:(Node_id.to_string Node_id.Nameserver) ~detail:""

let restart_nameserver t =
  Nameserver.set_up t.nameserver;
  fault t ~action:"restart" ~target:(Node_id.to_string Node_id.Nameserver) ~detail:""

let compromise_server t i =
  t.server_comp.(i) <- true;
  Pb.set_compromised t.servers.(i) true;
  Engine.emit t.engine (Event.Compromise { tier = Event.Server_tier; index = i })

let compromise_proxy t i =
  t.proxy_comp.(i) <- true;
  Proxy.set_compromised t.proxies.(i) true;
  Engine.emit t.engine (Event.Compromise { tier = Event.Proxy_tier; index = i })

(* ---- external symptom surface ----

   What an attacker-side liveness check observes right now, with no access
   to defender internals: a request to a down node, or to a proxy cut off
   from every live server, simply times out. These reads consume no PRNG
   and emit no events, so sampling them never perturbs a trace. *)

let server_unreachable t i =
  (not (Network.quiescent t.net))
  && i >= 0 && i < t.cfg.ns
  && not (Network.is_up t.net t.server_addresses.(i))

let proxy_unreachable t i =
  (not (Network.quiescent t.net))
  && i >= 0 && i < t.cfg.np
  && (not (Network.is_up t.net t.proxy_addresses.(i))
     || not
          (Array.exists
             (fun s -> Network.is_up t.net s && not (Network.partitioned t.net t.proxy_addresses.(i) s))
             t.server_addresses))

(* The list is in node order: servers, proxies, nameserver. The quiescent
   precheck must also cover the nameserver — its liveness is tracked by
   Nameserver.set_down, not by the network — or a nameserver-only outage
   would read as symptom-free. *)
let symptoms t =
  if Network.quiescent t.net && Nameserver.is_up t.nameserver then []
  else begin
    let acc = ref [] in
    if not (Nameserver.is_up t.nameserver) then
      acc := Symptom.Unreachable Node_id.Nameserver :: !acc;
    for j = t.cfg.np - 1 downto 0 do
      if proxy_unreachable t j then acc := Symptom.Unreachable (Node_id.Proxy j) :: !acc
    done;
    for i = t.cfg.ns - 1 downto 0 do
      if server_unreachable t i then acc := Symptom.Unreachable (Node_id.Server i) :: !acc
    done;
    !acc
  end

let server_compromised t i = t.server_comp.(i)
let proxy_compromised t i = t.cfg.np > 0 && t.proxy_comp.(i)

let compromised_proxy_count t =
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0
    (Array.sub t.proxy_comp 0 t.cfg.np)

let system_compromised t =
  Array.exists Fun.id t.server_comp
  || (t.cfg.np > 0 && compromised_proxy_count t = t.cfg.np)
