(** The trusted, read-only name service.

    FORTRESS prescribes that clients learn the proxies' addresses and public
    keys, the servers' {e indices} and public keys (never their addresses),
    the replication type and — for SMR — the fault-tolerance degree, all
    from a trusted nameserver that clients can only read (paper section 3).
    Server addresses are deliberately absent from the client view. *)

type replication = Primary_backup | State_machine of int  (** payload: f *)

type record = {
  service : string;
  proxy_addresses : Fortress_net.Address.t array;
  proxy_keys : Fortress_crypto.Sign.public_key array;
  server_indices : int array;
  server_keys : Fortress_crypto.Sign.public_key array;
  replication : replication;
}

type t

val create : unit -> t

val publish : t -> record -> unit
(** Register or replace a service record (operator-side interface). Raises
    [Invalid_argument] when array lengths are inconsistent. *)

val lookup : t -> string -> record option
(** Client-side read; [None] for unknown services and whenever the
    nameserver is down. *)

val set_down : t -> unit
(** Crash the nameserver: lookups fail until {!set_up}. Records survive —
    the store is stable, only availability is lost. *)

val set_up : t -> unit
val is_up : t -> bool

val services : t -> string list

val client_view : record -> string
(** Render what a client is allowed to know — useful in examples and as
    documentation of the information boundary. *)
