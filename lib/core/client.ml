module Engine = Fortress_sim.Engine
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Pb = Fortress_replication.Pb
module Nonce = Fortress_crypto.Nonce
module Event = Fortress_obs.Event

type mode =
  | Via_proxies of Nameserver.record
  | Direct_servers of { addresses : Address.t array; keys : Sign.public_key array }

type request_state = {
  mutable response : string option;
  on_response : string -> unit;
  span : Fortress_obs.Span.span;  (** open from submit until the first accepted reply *)
}

type t = {
  engine : Fortress_sim.Engine.t;
  mode : mode;
  self : Address.t;
  send : dst:Address.t -> Message.t -> unit;
  retry_period : float;
  max_retries : int;
  nonce_source : Nonce.source;
  requests : (string, request_state) Hashtbl.t;
  mutable accepted : int;
  mutable rejected : int;
  mutable retries : int;
}

let create ?(retry_period = 25.0) ?(max_retries = 10) ~engine ~mode ~self ~send prng =
  if retry_period <= 0.0 then invalid_arg "Client.create: retry_period must be positive";
  if max_retries < 0 then invalid_arg "Client.create: max_retries must be >= 0";
  { engine; mode; self; send; retry_period; max_retries; nonce_source = Nonce.source prng;
    requests = Hashtbl.create 32; accepted = 0; rejected = 0; retries = 0 }

let accepted t = t.accepted
let rejected t = t.rejected
let retries_sent t = t.retries

let outstanding t =
  Hashtbl.fold (fun _ r acc -> if r.response = None then acc + 1 else acc) t.requests 0

let response_for t ~id =
  match Hashtbl.find_opt t.requests id with Some r -> r.response | None -> None

let transmit t ~id ~cmd =
  match t.mode with
  | Via_proxies record ->
      Array.iter
        (fun dst -> t.send ~dst (Message.Client_request { id; cmd; client = t.self }))
        record.Nameserver.proxy_addresses
  | Direct_servers { addresses; _ } ->
      Array.iter
        (fun dst -> t.send ~dst (Message.Server (Pb.Request { id; cmd; reply_to = t.self })))
        addresses

let submit t ~cmd ~on_response =
  let id = Nonce.to_string (Nonce.fresh t.nonce_source) in
  let span = Engine.span t.engine "client.request" in
  Fortress_obs.Span.set_attr span "id" id;
  Hashtbl.replace t.requests id { response = None; on_response; span };
  Engine.emit t.engine (Event.Request_submitted { id });
  (* the open request span is ambient around every (re)transmission, so
     all net.send spans of a request parent to it in the causal tree; the
     closure only exists when a context is attached, so the causal-free
     submit path allocates nothing extra *)
  (match Engine.causal t.engine with
  | None -> transmit t ~id ~cmd
  | Some _ -> Engine.causal_ambient t.engine span (fun () -> transmit t ~id ~cmd));
  (* requests are idempotent end to end, so retry until answered *)
  let rec arm_retry remaining =
    if remaining > 0 then
      ignore
        (Fortress_sim.Engine.schedule t.engine ~delay:t.retry_period (fun () ->
             match Hashtbl.find_opt t.requests id with
             | Some r when r.response = None ->
                 t.retries <- t.retries + 1;
                 (match Engine.causal t.engine with
                 | None -> transmit t ~id ~cmd
                 | Some _ ->
                     Engine.causal_ambient t.engine r.span (fun () -> transmit t ~id ~cmd));
                 arm_retry (remaining - 1)
             | Some _ | None -> ()))
  in
  arm_retry t.max_retries;
  id

let server_key_for t server_index =
  let keys =
    match t.mode with
    | Via_proxies record -> record.Nameserver.server_keys
    | Direct_servers { keys; _ } -> keys
  in
  if server_index >= 0 && server_index < Array.length keys then Some keys.(server_index)
  else None

let deliver t ~id ~response =
  match Hashtbl.find_opt t.requests id with
  | None -> ()
  | Some r -> (
      match r.response with
      | Some _ -> () (* duplicate authenticated reply *)
      | None ->
          r.response <- Some response;
          t.accepted <- t.accepted + 1;
          Engine.finish_span t.engine r.span;
          Engine.emit t.engine (Event.Request_completed { id; accepted = true });
          r.on_response response)

let reject t (reply : Pb.reply) =
  t.rejected <- t.rejected + 1;
  Engine.emit t.engine (Event.Reply_rejected { id = reply.Pb.request_id })

let handle_doubly_signed t ~reply ~proxy_index ~proxy_signature =
  match t.mode with
  | Direct_servers _ -> reject t reply
  | Via_proxies record ->
      let proxy_ok =
        proxy_index >= 0
        && proxy_index < Array.length record.Nameserver.proxy_keys
        && Sign.verify
             record.Nameserver.proxy_keys.(proxy_index)
             ~msg:(Message.over_sign_payload ~reply ~proxy_index)
             proxy_signature
      in
      let server_ok =
        match server_key_for t reply.Pb.server_index with
        | Some pk -> Pb.verify_reply pk reply
        | None -> false
      in
      if proxy_ok && server_ok then
        deliver t ~id:reply.Pb.request_id ~response:reply.Pb.response
      else reject t reply

let handle_direct t (reply : Pb.reply) =
  match t.mode with
  | Via_proxies _ ->
      (* a fortified client never accepts a singly-signed reply *)
      reject t reply
  | Direct_servers _ -> (
      match server_key_for t reply.Pb.server_index with
      | Some pk when Pb.verify_reply pk reply ->
          deliver t ~id:reply.Pb.request_id ~response:reply.Pb.response
      | Some _ | None -> reject t reply)

let handle t ~src:_ msg =
  match msg with
  | Message.Client_reply { reply; proxy_index; proxy_signature } ->
      handle_doubly_signed t ~reply ~proxy_index ~proxy_signature
  | Message.Server (Pb.Reply reply) -> handle_direct t reply
  | Message.Server _ | Message.Client_request _ -> ()
