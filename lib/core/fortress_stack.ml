type t = {
  deployment : Deployment.t;
  mutable obfuscation : Obfuscation.t option;
}

type client = Client.t

let of_parts ?obfuscation deployment = { deployment; obfuscation }
let deployment t = t.deployment
let obfuscation t = t.obfuscation
let set_obfuscation t o = t.obfuscation <- Some o

let obf t =
  match t.obfuscation with
  | Some o -> o
  | None -> invalid_arg "Fortress_stack: no obfuscation schedule attached"

let name = "fortress"
let engine t = Deployment.engine t.deployment

let attach_telemetry ?window ?capacity ?alarms ?params t =
  Deployment.attach_telemetry ?window ?capacity ?alarms ?params t.deployment

let symptoms t = Deployment.symptoms t.deployment
let rekey_period t = Obfuscation.period (obf t)
let set_rekey_period t p = Obfuscation.set_period (obf t) p

let default_threshold t =
  (Deployment.config t.deployment).Deployment.proxy.Proxy.detection_threshold

let set_threshold t k =
  Array.iter (fun p -> Proxy.set_detection_threshold p k) (Deployment.proxies t.deployment)

let rekey_now t = Deployment.rekey t.deployment
let recover_now t = Deployment.recover t.deployment
let system_compromised t = Deployment.system_compromised t.deployment
let new_client t ~name = Deployment.new_client t.deployment ~name
let submit = Client.submit
let client_accepted = Client.accepted
