module Engine = Fortress_sim.Engine
module Event = Fortress_obs.Event

type t = {
  deployment : Smr_deployment.t;
  mutable schedule : Smr_deployment.schedule option;
}

(* The raw Smr_deployment client emits no events (it predates the shared
   workload plane); the wrapper adds the Request_submitted /
   Request_completed pair the fortress Client emits, so workload
   accounting — timelines, goodput windows — reads one event stream on
   either stack. *)
type client = { c : Smr_deployment.client; c_engine : Engine.t }

let of_parts ?schedule deployment = { deployment; schedule }
let deployment t = t.deployment
let schedule t = t.schedule
let set_schedule t s = t.schedule <- Some s

let sched t =
  match t.schedule with
  | Some s -> s
  | None -> invalid_arg "Smr_stack: no obfuscation schedule attached"

let name = "smr"
let engine t = Smr_deployment.engine t.deployment

let attach_telemetry ?window ?capacity ?alarms ?params t =
  Smr_deployment.attach_telemetry ?window ?capacity ?alarms ?params t.deployment

let symptoms t = Smr_deployment.symptoms t.deployment
let rekey_period t = Smr_deployment.schedule_period (sched t)
let set_rekey_period t p = Smr_deployment.set_schedule_period (sched t) p

(* S0 has no proxy tier; the threshold knob is a graceful no-op and the
   default is the constant Defense_control has always used. *)
let default_threshold _ = 1
let set_threshold _ _ = ()
let rekey_now t = Smr_deployment.force_boundary (sched t)
let recover_now t = Smr_deployment.force_boundary (sched t)
let system_compromised t = Smr_deployment.system_compromised t.deployment

let new_client t ~name =
  { c = Smr_deployment.new_client t.deployment ~name; c_engine = engine t }

let submit cl ~cmd ~on_response =
  (* the id is minted inside Smr_deployment.submit, so the submitted event
     lands just after the fan-out sends; replies only arrive via scheduled
     network deliveries, never synchronously, so the completion callback
     always sees the id filled in *)
  let id_ref = ref "" in
  let id =
    Smr_deployment.submit cl.c ~cmd ~on_response:(fun response ->
        Engine.emit cl.c_engine (Event.Request_completed { id = !id_ref; accepted = true });
        on_response response)
  in
  id_ref := id;
  Engine.emit cl.c_engine (Event.Request_submitted { id });
  id

let client_accepted cl = Smr_deployment.client_accepted cl.c
