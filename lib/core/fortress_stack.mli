(** The fortified S1/S2 system behind the shared {!Stack_intf.S}
    signature: a {!Deployment} plus its (optional) {!Obfuscation}
    schedule.

    The wrapper owns no state of its own — it pairs the deployment with
    the schedule handle so the signature's rekey-period knobs have a
    target. The defense actuators ({!rekey_period}, {!set_rekey_period})
    raise [Invalid_argument] until a schedule is attached; everything
    else works on a bare deployment. *)

include Stack_intf.S with type client = Client.t

val of_parts : ?obfuscation:Obfuscation.t -> Deployment.t -> t
val deployment : t -> Deployment.t
val obfuscation : t -> Obfuscation.t option
val set_obfuscation : t -> Obfuscation.t -> unit
