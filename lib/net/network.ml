module Engine = Fortress_sim.Engine
module Event = Fortress_obs.Event
module Causal = Fortress_obs.Causal
module Prof = Fortress_prof.Profiler

let send_phase = Prof.register "net.send"
let deliver_phase = Prof.register "net.deliver"

type 'msg node = {
  name : string;
  mutable handler : src:Address.t -> 'msg -> unit;
  mutable up : bool;
  mutable epoch : int;  (** bumped on crash so in-flight deliveries are voided *)
}

type delivery = { extra_delay : float; corrupt : bool }

type verdict =
  | Pass
  | Drop of string
  | Deliver of delivery list

type 'msg interceptor = src:Address.t -> dst:Address.t -> 'msg -> verdict

type 'msg t = {
  engine : Engine.t;
  default_latency : Latency.t;
  nodes : (Address.t, 'msg node) Hashtbl.t;
  link_latency : (int * int, Latency.t) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t;
  mutable next_addr : int;
  mutable down_nodes : int;  (** registered nodes currently down *)
  mutable delivered : int;
  mutable dropped : int;
  mutable interceptor : 'msg interceptor option;
  mutable corrupter : ('msg -> 'msg option) option;
}

let create ?(latency = Latency.default) engine =
  {
    engine;
    default_latency = latency;
    nodes = Hashtbl.create 32;
    link_latency = Hashtbl.create 16;
    partitions = Hashtbl.create 16;
    next_addr = 0;
    down_nodes = 0;
    delivered = 0;
    dropped = 0;
    interceptor = None;
    corrupter = None;
  }

let set_interceptor t i = t.interceptor <- i
let set_corrupter t c = t.corrupter <- c

let engine t = t.engine

let register t ~name ~handler =
  let addr = Address.make t.next_addr in
  t.next_addr <- t.next_addr + 1;
  Hashtbl.replace t.nodes addr { name; handler; up = true; epoch = 0 };
  addr

let find t addr =
  match Hashtbl.find_opt t.nodes addr with
  | Some node -> node
  | None -> invalid_arg (Printf.sprintf "Network: unknown address %s" (Address.to_string addr))

let set_handler t addr handler = (find t addr).handler <- handler
let name t addr = (find t addr).name

let nodes t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.nodes [] |> List.sort Address.compare

let pair_key a b =
  let ia = Address.id a and ib = Address.id b in
  if ia <= ib then (ia, ib) else (ib, ia)

let partitioned t a b = Hashtbl.mem t.partitions (pair_key a b)

let latency_for t a b =
  match Hashtbl.find_opt t.link_latency (pair_key a b) with
  | Some l -> l
  | None -> t.default_latency

let drop t ~src ~dst ~reason =
  t.dropped <- t.dropped + 1;
  Engine.emit t.engine
    (Event.Msg_dropped { src = Address.id src; dst = Address.id dst; reason })

(* One physical transmission attempt: sample latency, add [extra], deliver
   unless the destination went down (or crashed and came back) in flight.
   With a causal context attached, the in-flight message is stamped with a
   [net.send] span (child of whatever span is ambient at the send site) and
   delivery opens a [net.deliver] child of it, made ambient around the
   handler so nested sends chain — that parent edge is what the trace
   export renders as a cross-node flow arrow. *)
let transmit t ~src ~dst dst_node ~extra msg =
  match Latency.sample (latency_for t src dst) (Engine.prng t.engine) with
  | None -> drop t ~src ~dst ~reason:"loss"
  | Some delay ->
      let epoch_at_send = dst_node.epoch in
      let send_span =
        match Engine.causal t.engine with
        | None -> None
        | Some c ->
            let sp =
              Causal.span_of c
                ~attrs:[ ("node", (find t src).name); ("dst", dst_node.name) ]
                "net.send"
            in
            Causal.finish c sp;
            Some (c, sp)
      in
      ignore
        (Engine.schedule t.engine ~delay:(delay +. extra) (fun () ->
             if dst_node.up && dst_node.epoch = epoch_at_send then begin
               t.delivered <- t.delivered + 1;
               Engine.emit t.engine
                 (Event.Msg_delivered { src = Address.id src; dst = Address.id dst });
               match send_span with
               | None ->
                   (* no causal context: keep the pre-causal delivery path
                      allocation-free (the closure for [Prof.record] only
                      exists when the profiler is on, as before) *)
                   if Prof.is_enabled () then
                     Prof.record deliver_phase (fun () -> dst_node.handler ~src msg)
                   else dst_node.handler ~src msg
               | Some (c, sp) ->
                   let dsp =
                     Causal.span_of c ~parent:sp ~attrs:[ ("node", dst_node.name) ] "net.deliver"
                   in
                   Causal.with_ambient c dsp (fun () ->
                       if Prof.is_enabled () then
                         Prof.record deliver_phase (fun () -> dst_node.handler ~src msg)
                       else dst_node.handler ~src msg);
                   Causal.finish c dsp
             end
             else drop t ~src ~dst ~reason:"down"))

let send_unprofiled t ~src ~dst msg =
  let dst_node = find t dst in
  (* sender must exist too: catches stale addresses in protocols *)
  let _ = find t src in
  if partitioned t src dst then drop t ~src ~dst ~reason:"partition"
  else
    match t.interceptor with
    | None -> transmit t ~src ~dst dst_node ~extra:0.0 msg
    | Some intercept -> (
        match intercept ~src ~dst msg with
        | Pass -> transmit t ~src ~dst dst_node ~extra:0.0 msg
        | Drop reason -> drop t ~src ~dst ~reason
        | Deliver deliveries ->
            List.iter
              (fun { extra_delay; corrupt } ->
                if not corrupt then transmit t ~src ~dst dst_node ~extra:extra_delay msg
                else
                  match Option.bind t.corrupter (fun f -> f msg) with
                  | Some msg' -> transmit t ~src ~dst dst_node ~extra:extra_delay msg'
                  | None ->
                      (* no corrupter (or message kind not corruptible):
                         the mangled bytes fail framing and are lost *)
                      drop t ~src ~dst ~reason:"fault:corrupt")
              deliveries)

let send t ~src ~dst msg =
  if Prof.is_enabled () then
    Prof.record send_phase (fun () -> send_unprofiled t ~src ~dst msg)
  else send_unprofiled t ~src ~dst msg

let multicast t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let set_down t addr =
  let node = find t addr in
  if node.up then begin
    node.up <- false;
    t.down_nodes <- t.down_nodes + 1
  end;
  node.epoch <- node.epoch + 1

let set_up t addr =
  let node = find t addr in
  if not node.up then begin
    node.up <- true;
    t.down_nodes <- t.down_nodes - 1
  end

let is_up t addr = (find t addr).up

(* O(1) precheck for the symptom surface: with every node up and no
   partition installed, no reachability scan can come back positive. *)
let quiescent t = t.down_nodes = 0 && Hashtbl.length t.partitions = 0

let partition t a b = Hashtbl.replace t.partitions (pair_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (pair_key a b)
let heal_all t = Hashtbl.reset t.partitions
let set_link_latency t a b l = Hashtbl.replace t.link_latency (pair_key a b) l
let delivered t = t.delivered
let dropped t = t.dropped
