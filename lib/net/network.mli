(** The simulated message-passing network.

    A network carries one message type ['msg]; protocols define a variant
    covering all their message kinds. Delivery is asynchronous with sampled
    latency, optional loss, node up/down state, and pairwise partitions.
    Messages to a down or unreachable node vanish silently — exactly the
    behaviour crash-observation attacks and failure detectors must cope
    with. *)

type 'msg t

type delivery = { extra_delay : float; corrupt : bool }
(** One copy the interceptor wants delivered: [extra_delay] is added on top
    of the sampled link latency; [corrupt] routes the message through the
    network's corrupter first. *)

type verdict =
  | Pass  (** normal path, exactly as if no interceptor were installed *)
  | Drop of string  (** lose the message, counting it with this reason *)
  | Deliver of delivery list
      (** replace the single normal delivery: two entries duplicate the
          message, reordering is expressed through unequal extra delays, and
          [[]] delivers nothing (prefer [Drop] so the loss is counted) *)

type 'msg interceptor = src:Address.t -> dst:Address.t -> 'msg -> verdict
(** Consulted once per [send] after the partition check but before latency
    sampling, so a [Pass] verdict leaves the PRNG consumption — and hence
    the trace — identical to the interceptor-free network. *)

val create : ?latency:Latency.t -> Fortress_sim.Engine.t -> 'msg t
val engine : 'msg t -> Fortress_sim.Engine.t

val register :
  'msg t -> name:string -> handler:(src:Address.t -> 'msg -> unit) -> Address.t
(** Attach a node and return its fresh address. The handler runs at message
    delivery time on the simulation engine. *)

val set_handler : 'msg t -> Address.t -> (src:Address.t -> 'msg -> unit) -> unit
(** Replace a node's handler (used when a node changes role, e.g. a backup
    becoming primary). *)

val name : 'msg t -> Address.t -> string
val nodes : 'msg t -> Address.t list

val send : 'msg t -> src:Address.t -> dst:Address.t -> 'msg -> unit
(** Fire-and-forget. Unknown destinations raise [Invalid_argument]; down
    nodes, sampled drops and partitions lose the message silently. *)

val multicast : 'msg t -> src:Address.t -> dsts:Address.t list -> 'msg -> unit

val set_down : 'msg t -> Address.t -> unit
(** Crash a node: all queued and future deliveries to it are lost until
    [set_up]. *)

val set_up : 'msg t -> Address.t -> unit
val is_up : 'msg t -> Address.t -> bool

val partition : 'msg t -> Address.t -> Address.t -> unit
(** Block both directions between the pair. *)

val partitioned : 'msg t -> Address.t -> Address.t -> bool
(** Whether the pair is currently partitioned (order-insensitive). A pure
    read — no PRNG consumption, no events — safe for symptom sampling. *)

val quiescent : 'msg t -> bool
(** Every registered node is up and no partition is installed — an O(1)
    precheck that lets symptom reads skip their reachability scan on the
    (common) fault-free network. A pure read, like {!partitioned}. *)

val heal : 'msg t -> Address.t -> Address.t -> unit
val heal_all : 'msg t -> unit

val set_link_latency : 'msg t -> Address.t -> Address.t -> Latency.t -> unit
(** Override the default latency for the (symmetric) pair. *)

val set_interceptor : 'msg t -> 'msg interceptor option -> unit
(** Install (or with [None] remove) the fault interceptor. With no
    interceptor the send path allocates nothing extra and behaves exactly
    as before. *)

val set_corrupter : 'msg t -> ('msg -> 'msg option) option -> unit
(** How to mangle a message the interceptor marked [corrupt]. Returning
    [None] (or having no corrupter) turns the corruption into a drop with
    reason ["fault:corrupt"]. *)

val delivered : 'msg t -> int
(** Total messages delivered so far. *)

val dropped : 'msg t -> int
(** Messages lost to sampling, downed nodes, or partitions. *)
