(** Canonical names for the nodes of every deployment flavour.

    Fault plans, attacker observations and trace events all need to name
    nodes; before this module each subsystem had its own scheme. The
    rendered forms ([server0], [proxy1], [replica2], [nameserver]) are the
    exact strings the fault and crash events have always carried, so
    adopting [to_string] at the emission sites changes no trace digest.

    [Server]/[Proxy] name the two FORTRESS tiers; [Replica] names a node
    of the 1-tier SMR comparison system; [Nameserver] is the directory
    service (not a network node — partitions naming it are rejected by
    plan validation). *)

type t = Server of int | Proxy of int | Replica of int | Nameserver

val to_string : t -> string
(** [server%d] / [proxy%d] / [replica%d] / [nameserver] — stable wire
    format, round-tripped by {!of_string}. *)

val of_string : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
