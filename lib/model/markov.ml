module Matrix = Fortress_util.Matrix
module Prng = Fortress_util.Prng

exception No_transient_states
exception Absorption_unreachable of { state : int }

let () =
  Printexc.register_printer (function
    | No_transient_states -> Some "Markov.No_transient_states: every state is absorbing"
    | Absorption_unreachable { state } ->
        Some
          (Printf.sprintf
             "Markov.Absorption_unreachable: absorption unreachable from transient state %d"
             state)
    | _ -> None)

type t = {
  labels : string array;
  absorbing : bool array;
  p : Matrix.t;
  transient_index : int array;  (** original index of each transient state *)
}

let create ~labels ~absorbing p =
  let n = Array.length labels in
  if Array.length absorbing <> n then invalid_arg "Markov.create: absorbing size mismatch";
  if Matrix.rows p <> n || Matrix.cols p <> n then invalid_arg "Markov.create: matrix size mismatch";
  for i = 0 to n - 1 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      let v = Matrix.get p i j in
      if v < -1e-12 then invalid_arg "Markov.create: negative transition probability";
      sum := !sum +. v
    done;
    if Float.abs (!sum -. 1.0) > 1e-9 then invalid_arg "Markov.create: row does not sum to 1";
    if absorbing.(i) && Float.abs (Matrix.get p i i -. 1.0) > 1e-9 then
      invalid_arg "Markov.create: absorbing state must self-loop"
  done;
  let transient_index =
    Array.of_list
      (List.filter (fun i -> not absorbing.(i)) (List.init n Fun.id))
  in
  { labels; absorbing; p; transient_index }

let size t = Array.length t.labels
let labels t = t.labels
let is_absorbing t i = t.absorbing.(i)
let transition t i j = Matrix.get t.p i j

let q_matrix t =
  let m = Array.length t.transient_index in
  if m = 0 then raise No_transient_states;
  Matrix.init ~rows:m ~cols:m (fun i j ->
      Matrix.get t.p t.transient_index.(i) t.transient_index.(j))

let fundamental t =
  let q = q_matrix t in
  let m = Matrix.rows q in
  let i_minus_q = Matrix.sub (Matrix.identity m) q in
  try Matrix.inverse i_minus_q
  with Matrix.Singular { col; _ } ->
    raise (Absorption_unreachable { state = t.transient_index.(col) })

let transient_position t s =
  let pos = ref (-1) in
  Array.iteri (fun i orig -> if orig = s then pos := i) t.transient_index;
  !pos

let expected_steps t ~start =
  if start < 0 || start >= size t then invalid_arg "Markov.expected_steps: bad state";
  if t.absorbing.(start) then 0.0
  else begin
    let n = fundamental t in
    let ones = Array.make (Matrix.rows n) 1.0 in
    let times = Matrix.apply n ones in
    times.(transient_position t start)
  end

let absorption_probabilities t ~start =
  if start < 0 || start >= size t then invalid_arg "Markov.absorption_probabilities: bad state";
  let n_states = size t in
  let out = Array.make n_states 0.0 in
  if t.absorbing.(start) then begin
    out.(start) <- 1.0;
    out
  end
  else begin
    let absorbing_index =
      Array.of_list (List.filter (fun i -> t.absorbing.(i)) (List.init n_states Fun.id))
    in
    let m = Array.length t.transient_index in
    let r =
      Matrix.init ~rows:m ~cols:(Array.length absorbing_index) (fun i j ->
          Matrix.get t.p t.transient_index.(i) absorbing_index.(j))
    in
    let b = Matrix.mul (fundamental t) r in
    let row = transient_position t start in
    Array.iteri (fun j orig -> out.(orig) <- Matrix.get b row j) absorbing_index;
    out
  end

let simulate t ~start ~prng ~max_steps =
  let n = size t in
  let rec go state step =
    if t.absorbing.(state) then Some step
    else if step >= max_steps then None
    else begin
      let u = Prng.float prng in
      let rec pick j acc =
        if j = n - 1 then j
        else
          let acc = acc +. Matrix.get t.p state j in
          if u < acc then j else pick (j + 1) acc
      in
      go (pick 0 0.0) (step + 1)
    end
  in
  go start 0

let expected_steps_inhomogeneous ?(eps = 1e-12) ?(max_steps = 10_000_000) ~transient ~start
    ~step_matrix () =
  if transient <= 0 then invalid_arg "Markov: transient must be positive";
  if start < 0 || start >= transient then invalid_arg "Markov: bad start state";
  let dist = Array.make transient 0.0 in
  dist.(start) <- 1.0;
  let el = ref 0.0 in
  let alive = ref 1.0 in
  let k = ref 1 in
  let finished = ref false in
  while not !finished do
    let m = step_matrix !k in
    if Matrix.rows m <> transient || Matrix.cols m <> transient + 1 then
      invalid_arg "Markov: step matrix has wrong shape";
    let next = Array.make transient 0.0 in
    let absorbed = ref 0.0 in
    for i = 0 to transient - 1 do
      if dist.(i) > 0.0 then begin
        for j = 0 to transient - 1 do
          next.(j) <- next.(j) +. (dist.(i) *. Matrix.get m i j)
        done;
        absorbed := !absorbed +. (dist.(i) *. Matrix.get m i transient)
      end
    done;
    el := !el +. (float_of_int !k *. !absorbed);
    alive := !alive -. !absorbed;
    Array.blit next 0 dist 0 transient;
    if !alive < eps then finished := true
    else if !k >= max_steps then begin
      (* bound the tail with the current per-step absorption hazard *)
      let hazard = if !alive > 0.0 then !absorbed /. (!alive +. !absorbed) else 1.0 in
      let tail =
        if hazard <= 0.0 then infinity
        else !alive *. (float_of_int !k +. ((1.0 -. hazard) /. hazard))
      in
      el := !el +. tail;
      finished := true
    end
    else incr k
  done;
  !el
