type t = Server of int | Proxy of int | Replica of int | Nameserver

let to_string = function
  | Server i -> Printf.sprintf "server%d" i
  | Proxy i -> Printf.sprintf "proxy%d" i
  | Replica i -> Printf.sprintf "replica%d" i
  | Nameserver -> "nameserver"

let of_string s =
  let prefixed prefix k =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      match int_of_string_opt (String.sub s pl (String.length s - pl)) with
      | Some i when i >= 0 -> Some (k i)
      | _ -> None
    else None
  in
  if s = "nameserver" then Some Nameserver
  else
    match prefixed "server" (fun i -> Server i) with
    | Some _ as r -> r
    | None -> (
        match prefixed "proxy" (fun i -> Proxy i) with
        | Some _ as r -> r
        | None -> prefixed "replica" (fun i -> Replica i))

let equal (a : t) b = a = b
let compare (a : t) b = compare a b
let pp ppf t = Format.pp_print_string ppf (to_string t)
