(** Absorbing Markov chains in discrete time.

    The paper computes expected lifetimes with absorbing-chain methods when
    the state space is small. For a chain with transient states T and
    transition matrix P, write Q for P restricted to T; the fundamental
    matrix N = (I - Q)^-1 gives the expected number of steps spent in each
    transient state, and the expected absorption time from state s is the
    s-th entry of N 1. Start-up-only obfuscation makes the chain
    inhomogeneous (the hazard grows as keys are eliminated), which is
    handled by forward propagation of the transient distribution. *)

type t

exception No_transient_states
(** Raised by {!fundamental} / {!expected_steps} when every state of the
    chain is absorbing, so there is no transient dynamics to analyse. *)

exception Absorption_unreachable of { state : int }
(** Raised by {!fundamental} when (I - Q) is singular, i.e. the chain can
    loop forever without absorbing. [state] is the original index of a
    transient state implicated by the failing elimination column. *)

val create : labels:string array -> absorbing:bool array -> Fortress_util.Matrix.t -> t
(** Raises [Invalid_argument] if dimensions disagree, a row does not sum to
    1 (tolerance 1e-9), an entry is negative, or an absorbing state does
    not self-loop with probability 1. *)

val size : t -> int
val labels : t -> string array
val is_absorbing : t -> int -> bool
val transition : t -> int -> int -> float

val fundamental : t -> Fortress_util.Matrix.t
(** N = (I - Q)^-1 over the transient states, indexed in their original
    relative order. Raises {!No_transient_states} if no state is transient
    and {!Absorption_unreachable} if the chain cannot reach absorption. *)

val expected_steps : t -> start:int -> float
(** Expected number of steps to absorption from [start]. 0 when [start] is
    absorbing. *)

val absorption_probabilities : t -> start:int -> float array
(** Probability of ending in each absorbing state (indexed over the full
    state space; transient positions hold 0). *)

val simulate : t -> start:int -> prng:Fortress_util.Prng.t -> max_steps:int -> int option
(** Walk the chain; [Some k] if absorbed at step k <= max_steps. Used to
    cross-validate the algebra in tests. *)

(** {1 Inhomogeneous chains} *)

val expected_steps_inhomogeneous :
  ?eps:float ->
  ?max_steps:int ->
  transient:int ->
  start:int ->
  step_matrix:(int -> Fortress_util.Matrix.t) ->
  unit ->
  float
(** [step_matrix k] (k >= 1) is a [transient x (transient + 1)] matrix: the
    first [transient] columns are transitions among transient states at
    step k, the last column is the probability of absorption during step
    k. Rows must sum to 1. The expected absorption step is computed by
    propagating the distribution until the surviving mass drops below
    [eps] (default 1e-12) or [max_steps] (default 10^7) is hit, in which
    case the tail is bounded using the final step's absorption rates. *)
