(** Service abstraction for both replication styles.

    State machine replication requires a {e deterministic} state machine:
    [apply] must be a pure function of state and command. Classical
    primary-backup has no such constraint, because only the primary
    executes. We capture the difference with an explicit [entropy]
    parameter: all nondeterminism a service wants (random draws, timestamps)
    must be derived from it. Under primary-backup, the primary picks the
    entropy and ships it with the state update, so backups replay
    identically; under SMR, each replica supplies {e its own} entropy, so a
    service that actually consumes it diverges across replicas — the
    paper's motivating problem, demonstrated in the test suite. *)

module type SERVICE = sig
  type state

  val name : string
  val init : state

  val apply : state -> entropy:int64 -> string -> state * string
  (** [apply state ~entropy cmd] returns the new state and the response.
      Unknown commands should produce an ["err:..."] response rather than
      raise. *)

  val snapshot : state -> string
  (** Serialize for state transfer and checkpoint digests. Must be
      canonical: equal states yield equal snapshots. *)

  val restore : string -> state
  (** Inverse of [snapshot]. May raise [Invalid_argument] on garbage. *)
end

type t = (module SERVICE)

module Instance : sig
  (** A running service: a service module plus its current state. *)

  type instance

  val create : t -> instance
  val name : instance -> string
  val apply : instance -> entropy:int64 -> string -> string
  (** Execute a command, mutating the held state, and return the
      response. *)

  val snapshot : instance -> string
  val restore : instance -> string -> unit
  val digest : instance -> string
  (** SHA-256 of the snapshot: the checkpoint/divergence-detection
      digest. *)

  val reset : instance -> unit
  (** Back to [init]; bumps the {!generation} counter. *)

  val applied : instance -> int
  (** Commands executed over this instance's whole life (survives
      resets) — lets fault accounting compare work done across crash
      generations. *)

  val generation : instance -> int
  (** How many times this instance was wiped ([reset]): 0 for an
      uncrashed, never-recovered instance. *)
end
