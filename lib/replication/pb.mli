(** Classical primary-backup replication (the paper's S1 server tier).

    One replica, the primary, executes client commands; backups install the
    primary's updates and therefore need no determinism from the service:
    the primary draws the entropy each command consumes and ships it with
    the update, so backups replay to the identical state. Crash of the
    primary is detected by heartbeat timeout and the next index takes over
    (view [v] is led by replica [v mod ns]).

    Every replica signs the response together with its index (paper
    section 3); the signed reply is sent to the request's [reply_to]
    address, which is a proxy under FORTRESS or the client itself in a bare
    S1 deployment.

    The module is transport-agnostic: the host supplies [send] and wires
    {!handle} into its network, so PB messages can be embedded into a larger
    message type (as the FORTRESS deployment does). *)

type config = {
  ns : int;  (** number of replicas, >= 1 *)
  heartbeat_period : float;
  suspect_timeout : float;  (** no heartbeat for this long => view change *)
  ack_quorum : int;  (** backup acks awaited before the primary replies *)
  ack_timeout : float;  (** reply anyway after this long without acks *)
  persist_interval : int;
      (** with stable storage attached, snapshot every this many applied
          commands (the update log covers the gap) *)
}

val default_config : config
(** ns = 3, heartbeat 5.0, suspect 20.0, quorum 1, ack timeout 30.0 (in
    simulation time units), persist every 8. *)

type reply = {
  request_id : string;
  response : string;
  server_index : int;
  signature : Fortress_crypto.Sign.signature;
}

type msg =
  | Request of { id : string; cmd : string; reply_to : Fortress_net.Address.t }
  | Update of {
      view : int;
      seq : int;
      id : string;
      cmd : string;
      entropy : int64;
      reply_to : Fortress_net.Address.t;
      response : string;
    }
  | Update_ack of { seq : int; index : int }
  | Heartbeat of { view : int }
  | Reply of reply
  | Sync_req of { index : int }
  | Sync_resp of {
      view : int;
      seq : int;
      executed : (string * string) list;
      snapshot : string;
    }

val reply_payload : id:string -> response:string -> server_index:int -> string
(** The byte string a reply signature covers. *)

val verify_reply : Fortress_crypto.Sign.public_key -> reply -> bool

type replica

val create :
  ?storage:Storage.t ->
  engine:Fortress_sim.Engine.t ->
  config:config ->
  index:int ->
  service:Dsm.t ->
  secret:Fortress_crypto.Sign.secret_key ->
  self:Fortress_net.Address.t ->
  addresses:Fortress_net.Address.t array ->
  (dst:Fortress_net.Address.t -> msg -> unit) ->
  replica
(** [create ... send] — the final positional argument is the transport
    callback. [addresses.(i)] is replica [i]'s network address;
    [addresses.(index)] must equal [self]. With [storage], every applied command is appended to
    a write-ahead log and a snapshot is taken every
    [config.persist_interval] commands, enabling {!restart_from_storage}.
    Commands, ids and responses must not contain the bytes 0x01/0x02 (our
    services never produce them). *)

val start : replica -> unit
(** Arm heartbeat and suspicion timers. Idempotent. *)

val stop : replica -> unit
(** Crash the replica: timers stop and incoming messages are ignored until
    [restart]. *)

val crash : replica -> unit
(** Crash with amnesia: like {!stop} but volatile state (service memory,
    dedup table, buffered and in-flight work) is lost. A subsequent
    {!restart} resyncs over the network; {!restart_from_storage} reloads
    locally first when storage is attached. *)

val restart : replica -> unit
(** Bring a stopped replica back. It requests a state sync from the current
    primary (snapshot, sequence number and request-dedup table), then
    resumes as a backup; until the sync answer arrives it buffers updates.
    Also usable for a fresh rejoin after proactive recovery. *)

val restart_from_storage : replica -> bool
(** Proactive recovery with local reload: wipe volatile state, restore the
    last persisted snapshot and replay the intact prefix of the write-ahead
    log, then rejoin (a network sync still reconciles anything past the
    log). Returns [false] — falling back to a plain {!restart} — when no
    storage is attached or the snapshot record is missing or damaged. *)

val persisted_seq : replica -> int
(** Highest sequence number recoverable from local storage alone; -1
    without storage. *)

val syncing : replica -> bool

val handle : replica -> src:Fortress_net.Address.t -> msg -> unit

(** {1 Introspection} *)

val index : replica -> int
val view : replica -> int
val is_primary : replica -> bool
val alive : replica -> bool
val applied_seq : replica -> int
val executed_count : replica -> int
val service_digest : replica -> string
val service_snapshot : replica -> string
val public_key : replica -> Fortress_crypto.Sign.public_key

val set_compromised : replica -> bool -> unit
(** A compromised replica still signs (the intruder holds its key) but
    returns attacker-chosen responses — used to demonstrate that PB alone
    offers no intrusion tolerance. *)

val compromised : replica -> bool
