module Engine = Fortress_sim.Engine
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Event = Fortress_obs.Event

type config = {
  ns : int;
  heartbeat_period : float;
  suspect_timeout : float;
  ack_quorum : int;
  ack_timeout : float;
  persist_interval : int;
}

let default_config =
  { ns = 3; heartbeat_period = 5.0; suspect_timeout = 20.0; ack_quorum = 1;
    ack_timeout = 30.0; persist_interval = 8 }

type reply = {
  request_id : string;
  response : string;
  server_index : int;
  signature : Sign.signature;
}

type msg =
  | Request of { id : string; cmd : string; reply_to : Address.t }
  | Update of {
      view : int;
      seq : int;
      id : string;
      cmd : string;
      entropy : int64;
      reply_to : Address.t;
      response : string;
    }
  | Update_ack of { seq : int; index : int }
  | Heartbeat of { view : int }
  | Reply of reply
  | Sync_req of { index : int }
  | Sync_resp of {
      view : int;
      seq : int;
      executed : (string * string) list;
      snapshot : string;
    }

let reply_payload ~id ~response ~server_index =
  Printf.sprintf "pb-reply|%s|%s|%d" id response server_index

let verify_reply pk (r : reply) =
  Sign.verify pk
    ~msg:(reply_payload ~id:r.request_id ~response:r.response ~server_index:r.server_index)
    r.signature

(* An update the primary has executed but not yet fully acknowledged. *)
type in_progress = {
  ip_seq : int;
  ip_id : string;
  ip_response : string;
  mutable ip_waiters : Address.t list;
  mutable ip_acks : int list;  (** backup indices that acked *)
  mutable ip_done : bool;
}

type replica = {
  engine : Engine.t;
  config : config;
  rep_index : int;
  service : Dsm.Instance.instance;
  secret : Sign.secret_key;
  pk : Sign.public_key;
  self : Address.t;
  addresses : Address.t array;
  send : dst:Address.t -> msg -> unit;
  executed : (string, string) Hashtbl.t;  (** request id -> response *)
  in_progress : (string, in_progress) Hashtbl.t;
  buffered_requests : (string, string * Address.t) Hashtbl.t;
      (** seen at a backup, not yet executed: id -> (cmd, reply_to) *)
  pending_updates : (int, msg) Hashtbl.t;  (** out-of-order updates by seq *)
  mutable rep_view : int;
  mutable seq : int;  (** last sequence number assigned/applied *)
  mutable last_heartbeat : float;
  mutable rep_alive : bool;
  mutable started : bool;
  mutable rep_syncing : bool;
  mutable timers : Engine.handle list;
  mutable rep_compromised : bool;
  persistence : persistence option;
  mutable applies_since_snapshot : int;
}

and persistence = { store : Storage.t; wal : Storage.Log.t }

let create ?storage ~engine ~config ~index ~service ~secret ~self ~addresses send =
  if config.ns < 1 then invalid_arg "Pb.create: ns must be >= 1";
  if config.persist_interval < 1 then invalid_arg "Pb.create: persist_interval must be >= 1";
  if Array.length addresses <> config.ns then invalid_arg "Pb.create: addresses size mismatch";
  if index < 0 || index >= config.ns then invalid_arg "Pb.create: bad index";
  if not (Address.equal addresses.(index) self) then
    invalid_arg "Pb.create: self address mismatch";
  {
    engine;
    config;
    rep_index = index;
    service = Dsm.Instance.create service;
    secret;
    pk = Sign.public_of_secret secret;
    self;
    addresses;
    send;
    executed = Hashtbl.create 64;
    in_progress = Hashtbl.create 16;
    buffered_requests = Hashtbl.create 16;
    pending_updates = Hashtbl.create 16;
    rep_view = 0;
    seq = 0;
    last_heartbeat = 0.0;
    rep_alive = false;
    started = false;
    rep_syncing = false;
    timers = [];
    rep_compromised = false;
    persistence =
      Option.map
        (fun store -> { store; wal = Storage.Log.attach store ~name:(string_of_int index) })
        storage;
    applies_since_snapshot = 0;
  }

let index t = t.rep_index
let view t = t.rep_view
let primary_index t = t.rep_view mod t.config.ns
let is_primary t = primary_index t = t.rep_index
let alive t = t.rep_alive
let applied_seq t = t.seq
let executed_count t = Hashtbl.length t.executed
let service_digest t = Dsm.Instance.digest t.service
let service_snapshot t = Dsm.Instance.snapshot t.service
let public_key t = t.pk
let set_compromised t v = t.rep_compromised <- v
let compromised t = t.rep_compromised

let signed_reply t ~id ~response =
  let payload = reply_payload ~id ~response ~server_index:t.rep_index in
  { request_id = id; response; server_index = t.rep_index; signature = Sign.sign t.secret payload }

let send_reply t ~id ~response ~to_ = t.send ~dst:to_ (Reply (signed_reply t ~id ~response))

let backups t = List.init t.config.ns Fun.id |> List.filter (fun i -> i <> primary_index t)

(* ---- persistence ----
   Wire formats use 0x01 as field separator and 0x02 as record separator;
   service commands, request ids and responses never contain them. *)

let field_sep = '\x01'
let record_sep = '\x02'
let snapshot_key = "pb-snapshot"

let encode_wal_entry ~seq ~id ~cmd ~entropy ~response =
  String.concat (String.make 1 field_sep)
    [ string_of_int seq; id; cmd; Int64.to_string entropy; response ]

let decode_wal_entry s =
  match String.split_on_char field_sep s with
  | [ seq; id; cmd; entropy; response ] -> (
      match (int_of_string_opt seq, Int64.of_string_opt entropy) with
      | Some seq, Some entropy -> Some (seq, id, cmd, entropy, response)
      | _ -> None)
  | _ -> None

let write_snapshot t p =
  t.applies_since_snapshot <- 0;
  let executed =
    Hashtbl.fold (fun id r acc -> (id ^ String.make 1 field_sep ^ r) :: acc) t.executed []
  in
  let payload =
    String.concat (String.make 1 record_sep)
      (string_of_int t.seq :: string_of_int t.rep_view :: Dsm.Instance.snapshot t.service
      :: executed)
  in
  Storage.write p.store ~key:snapshot_key payload;
  Storage.Log.truncate p.wal

let persist_apply t ~seq ~id ~cmd ~entropy ~response =
  match t.persistence with
  | None -> ()
  | Some p ->
      Storage.Log.append p.wal (encode_wal_entry ~seq ~id ~cmd ~entropy ~response);
      t.applies_since_snapshot <- t.applies_since_snapshot + 1;
      if t.applies_since_snapshot >= t.config.persist_interval then write_snapshot t p

let decode_snapshot payload =
  match String.split_on_char record_sep payload with
  | seq :: view :: snapshot :: executed -> (
      match (int_of_string_opt seq, int_of_string_opt view) with
      | Some seq, Some view ->
          let table =
            List.filter_map
              (fun entry ->
                match String.split_on_char field_sep entry with
                | [ id; response ] -> Some (id, response)
                | _ -> None)
              executed
          in
          Some (seq, view, snapshot, table)
      | _ -> None)
  | _ -> None

let persisted_seq t =
  match t.persistence with
  | None -> -1
  | Some p ->
      let base =
        match Option.bind (Storage.read p.store ~key:snapshot_key) decode_snapshot with
        | Some (seq, _, _, _) -> seq
        | None -> 0
      in
      List.fold_left
        (fun acc entry ->
          match decode_wal_entry entry with Some (seq, _, _, _, _) -> max acc seq | None -> acc)
        base
        (Storage.Log.entries p.wal)

(* ---- primary behaviour ---- *)

let complete t ip =
  if not ip.ip_done then begin
    ip.ip_done <- true;
    Hashtbl.replace t.executed ip.ip_id ip.ip_response;
    Hashtbl.remove t.in_progress ip.ip_id;
    List.iter (fun w -> send_reply t ~id:ip.ip_id ~response:ip.ip_response ~to_:w) ip.ip_waiters
  end

let execute_as_primary t ~id ~cmd ~reply_to =
  t.seq <- t.seq + 1;
  let entropy = Fortress_util.Prng.bits64 (Engine.prng t.engine) in
  let response = Dsm.Instance.apply t.service ~entropy cmd in
  (* an intruded primary controls execution: the poisoned response flows
     into the state update, so even honest backups attest to it — this is
     exactly why compromising the primary compromises S1/S2 *)
  let response = if t.rep_compromised then "pwned:" ^ response else response in
  let ip =
    { ip_seq = t.seq; ip_id = id; ip_response = response; ip_waiters = [ reply_to ];
      ip_acks = []; ip_done = false }
  in
  Hashtbl.replace t.in_progress id ip;
  persist_apply t ~seq:t.seq ~id ~cmd ~entropy ~response;
  let update =
    Update { view = t.rep_view; seq = t.seq; id; cmd; entropy; reply_to; response }
  in
  List.iter (fun i -> t.send ~dst:t.addresses.(i) update) (backups t);
  let need = min t.config.ack_quorum (t.config.ns - 1) in
  if need <= 0 then complete t ip
  else
    (* availability fallback: reply even if backups are gone *)
    ignore
      (Engine.schedule t.engine ~delay:t.config.ack_timeout (fun () ->
           if t.rep_alive && not ip.ip_done then begin
             Engine.emit t.engine
               (Event.Repl
                  {
                    proto = "pb";
                    kind = "ack_timeout";
                    detail = Printf.sprintf "seq=%d" ip.ip_seq;
                  });
             complete t ip
           end))

let handle_request t ~id ~cmd ~reply_to =
  match Hashtbl.find_opt t.executed id with
  | Some response -> send_reply t ~id ~response ~to_:reply_to
  | None ->
      if is_primary t then begin
        match Hashtbl.find_opt t.in_progress id with
        | Some ip -> if not (List.mem reply_to ip.ip_waiters) then ip.ip_waiters <- reply_to :: ip.ip_waiters
        | None -> execute_as_primary t ~id ~cmd ~reply_to
      end
      else Hashtbl.replace t.buffered_requests id (cmd, reply_to)

(* ---- backup behaviour ---- *)

let rec apply_ready_updates t =
  match Hashtbl.find_opt t.pending_updates (t.seq + 1) with
  | Some (Update { view = _; seq; id; cmd; entropy; reply_to; response }) ->
      Hashtbl.remove t.pending_updates (t.seq + 1);
      t.seq <- seq;
      let local_response = Dsm.Instance.apply t.service ~entropy cmd in
      if local_response <> response then
        Engine.emit t.engine
          (Event.Repl
             {
               proto = "pb";
               kind = "divergence";
               detail = Printf.sprintf "replica %d: response divergence on %s" t.rep_index id;
             });
      Hashtbl.replace t.executed id response;
      Hashtbl.remove t.buffered_requests id;
      persist_apply t ~seq ~id ~cmd ~entropy ~response;
      t.send ~dst:t.addresses.(primary_index t) (Update_ack { seq; index = t.rep_index });
      (* the paper's protocol: each server signs the PRIMARY's response and
         returns it — the primary is authoritative, backups attest *)
      send_reply t ~id ~response ~to_:reply_to;
      apply_ready_updates t
  | Some _ | None -> ()

(* A view increase means the primary lineage changed: updates this backup
   applied from the dead primary may never have reached the new one, so the
   safe move is to resync from the new primary's authoritative state. *)
let resync_on_view_change t view =
  if view > t.rep_view then begin
    t.rep_view <- view;
    if not (is_primary t) && not t.rep_syncing then begin
      t.rep_syncing <- true;
      t.send ~dst:t.addresses.(primary_index t) (Sync_req { index = t.rep_index });
      ignore
        (Engine.schedule t.engine ~delay:t.config.suspect_timeout (fun () ->
             if t.rep_alive && t.rep_syncing then begin
               t.rep_syncing <- false;
               t.last_heartbeat <- Engine.now t.engine
             end))
    end
  end

let handle_update t ~view ~seq ~id ~cmd ~entropy ~reply_to ~response =
  resync_on_view_change t view;
  if seq > t.seq && not (Hashtbl.mem t.pending_updates seq) then begin
    Hashtbl.replace t.pending_updates seq
      (Update { view; seq; id; cmd; entropy; reply_to; response });
    if not t.rep_syncing then apply_ready_updates t
  end

let handle_ack t ~seq ~index:backup_index =
  let needed = min t.config.ack_quorum (t.config.ns - 1) in
  Hashtbl.iter
    (fun _ ip ->
      if ip.ip_seq = seq && not (List.mem backup_index ip.ip_acks) then begin
        ip.ip_acks <- backup_index :: ip.ip_acks;
        if List.length ip.ip_acks >= needed then complete t ip
      end)
    t.in_progress

(* ---- view management ---- *)

let become_primary t =
  Engine.emit t.engine
    (Event.Failover { proto = "pb"; replica = t.rep_index; view = t.rep_view });
  (* execute everything buffered and not yet known executed *)
  let pending = Hashtbl.fold (fun id (cmd, rt) acc -> (id, cmd, rt) :: acc) t.buffered_requests [] in
  Hashtbl.reset t.buffered_requests;
  List.iter
    (fun (id, cmd, reply_to) ->
      if not (Hashtbl.mem t.executed id) then handle_request t ~id ~cmd ~reply_to)
    pending

let check_suspicion t =
  if t.rep_alive && not (is_primary t) then begin
    let elapsed = Engine.now t.engine -. t.last_heartbeat in
    if elapsed > t.config.suspect_timeout then begin
      t.rep_view <- t.rep_view + 1;
      t.last_heartbeat <- Engine.now t.engine;
      Engine.emit t.engine
        (Event.Repl
           {
             proto = "pb";
             kind = "suspect";
             detail =
               Printf.sprintf "replica %d suspects primary; moves to view %d" t.rep_index
                 t.rep_view;
           });
      if is_primary t then become_primary t
    end
  end

let handle_heartbeat t ~view =
  if view >= t.rep_view then begin
    resync_on_view_change t view;
    t.last_heartbeat <- Engine.now t.engine
  end

(* ---- rejoin ---- *)

let handle_sync_req t ~index:requester =
  if is_primary t && requester >= 0 && requester < t.config.ns && requester <> t.rep_index then
    t.send ~dst:t.addresses.(requester)
      (Sync_resp
         {
           view = t.rep_view;
           seq = t.seq;
           executed = Hashtbl.fold (fun id r acc -> (id, r) :: acc) t.executed [];
           snapshot = Dsm.Instance.snapshot t.service;
         })

let handle_sync_resp t ~view ~seq ~executed ~snapshot =
  if t.rep_syncing then begin
    t.rep_syncing <- false;
    t.rep_view <- max t.rep_view view;
    t.seq <- seq;
    Dsm.Instance.restore t.service snapshot;
    Hashtbl.reset t.executed;
    List.iter (fun (id, r) -> Hashtbl.replace t.executed id r) executed;
    (* drop updates the snapshot already covers, keep newer buffered ones *)
    Hashtbl.iter
      (fun s _ -> if s <= seq then Hashtbl.remove t.pending_updates s)
      (Hashtbl.copy t.pending_updates);
    t.last_heartbeat <- Engine.now t.engine;
    (* bring stable storage in line with the installed state *)
    Option.iter (fun p -> write_snapshot t p) t.persistence;
    Engine.emit t.engine
      (Event.Repl
         {
           proto = "pb";
           kind = "sync";
           detail =
             Printf.sprintf "replica %d synced to seq %d (view %d)" t.rep_index seq t.rep_view;
         });
    apply_ready_updates t
  end

let handle t ~src:_ msg =
  if t.rep_alive then
    match msg with
    | Sync_resp { view; seq; executed; snapshot } ->
        handle_sync_resp t ~view ~seq ~executed ~snapshot
    | Update { view; seq; id; cmd; entropy; reply_to; response } ->
        (* buffered even while syncing; applied once contiguous *)
        handle_update t ~view ~seq ~id ~cmd ~entropy ~reply_to ~response
    | _ when t.rep_syncing -> ()
    | Request { id; cmd; reply_to } -> handle_request t ~id ~cmd ~reply_to
    | Update_ack { seq; index } -> if is_primary t then handle_ack t ~seq ~index
    | Heartbeat { view } -> handle_heartbeat t ~view
    | Sync_req { index } -> handle_sync_req t ~index
    | Reply _ -> ()

let start t =
  if not t.started then begin
    t.started <- true;
    t.rep_alive <- true;
    t.last_heartbeat <- Engine.now t.engine;
    let hb =
      Engine.every t.engine ~period:t.config.heartbeat_period (fun () ->
          if t.rep_alive && is_primary t then
            List.iter
              (fun i -> t.send ~dst:t.addresses.(i) (Heartbeat { view = t.rep_view }))
              (backups t))
    in
    let suspect =
      Engine.every t.engine ~period:(t.config.suspect_timeout /. 2.0) (fun () ->
          check_suspicion t)
    in
    t.timers <- [ hb; suspect ]
  end
  else t.rep_alive <- true

let stop t = t.rep_alive <- false
let syncing t = t.rep_syncing

(* A crash, unlike [stop], loses volatile state: the service memory image,
   the dedup table and everything buffered or in flight. Only the view
   number survives (it is re-learned from heartbeats anyway, keeping it
   avoids a spurious extra view change on restart). *)
let crash t =
  t.rep_alive <- false;
  t.rep_syncing <- false;
  Dsm.Instance.reset t.service;
  Hashtbl.reset t.executed;
  Hashtbl.reset t.in_progress;
  Hashtbl.reset t.buffered_requests;
  Hashtbl.reset t.pending_updates;
  t.seq <- 0;
  t.applies_since_snapshot <- 0

let restart t =
  t.rep_alive <- true;
  t.last_heartbeat <- Engine.now t.engine;
  t.rep_syncing <- true;
  List.iter
    (fun i ->
      if i <> t.rep_index then t.send ~dst:t.addresses.(i) (Sync_req { index = t.rep_index }))
    (List.init t.config.ns Fun.id);
  (* if nobody answers (e.g. we are the only live replica), resume on our
     own state rather than staying mute forever *)
  ignore
    (Engine.schedule t.engine ~delay:t.config.suspect_timeout (fun () ->
         if t.rep_alive && t.rep_syncing then begin
           t.rep_syncing <- false;
           t.last_heartbeat <- Engine.now t.engine;
           Engine.emit t.engine
             (Event.Repl
                {
                  proto = "pb";
                  kind = "sync_timeout";
                  detail =
                    Printf.sprintf "replica %d sync timed out; resuming on local state"
                      t.rep_index;
                })
         end))

(* Reboot after losing volatile state: reload the last snapshot, replay the
   intact write-ahead-log prefix, then rejoin normally — the network sync
   reconciles anything the log missed. *)
let restart_from_storage t =
  match t.persistence with
  | None -> false
  | Some p -> (
      match Option.bind (Storage.read p.store ~key:snapshot_key) decode_snapshot with
      | None -> false
      | Some (seq, view, snapshot, executed) ->
          (* the reboot wiped memory *)
          Dsm.Instance.reset t.service;
          Hashtbl.reset t.executed;
          Hashtbl.reset t.in_progress;
          Hashtbl.reset t.buffered_requests;
          Hashtbl.reset t.pending_updates;
          Dsm.Instance.restore t.service snapshot;
          t.seq <- seq;
          t.rep_view <- max t.rep_view view;
          List.iter (fun (id, response) -> Hashtbl.replace t.executed id response) executed;
          List.iter
            (fun entry ->
              match decode_wal_entry entry with
              | Some (eseq, id, cmd, entropy, response) when eseq = t.seq + 1 ->
                  ignore (Dsm.Instance.apply t.service ~entropy cmd);
                  t.seq <- eseq;
                  Hashtbl.replace t.executed id response
              | Some _ | None -> ())
            (Storage.Log.entries p.wal);
          Engine.emit t.engine
            (Event.Repl
               {
                 proto = "pb";
                 kind = "reload";
                 detail =
                   Printf.sprintf "replica %d reloaded seq %d from stable storage" t.rep_index
                     t.seq;
               });
          restart t;
          true)
