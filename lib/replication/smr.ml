module Engine = Fortress_sim.Engine
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Sha256 = Fortress_crypto.Sha256
module Event = Fortress_obs.Event

type config = {
  n : int;
  f : int;
  checkpoint_interval : int;
  request_timeout : float;
  watchdog_period : float;
}

let default_config =
  { n = 4; f = 1; checkpoint_interval = 16; request_timeout = 30.0; watchdog_period = 10.0 }

type reply = {
  request_id : string;
  response : string;
  server_index : int;
  view : int;
  signature : Sign.signature;
}

type msg =
  | Request of { id : string; cmd : string; reply_to : Address.t }
  | Preprepare of { view : int; seq : int; id : string; cmd : string; reply_to : Address.t }
  | Prepare of { view : int; seq : int; digest : string; index : int }
  | Commit of { view : int; seq : int; digest : string; index : int }
  | Reply of reply
  | Checkpoint of { seq : int; digest : string; index : int }
  | Viewchange of { new_view : int; last_exec : int; index : int }
  | Newview of { view : int }
  | State_req of { reply_to : Address.t }
  | State_resp of { seq : int; snapshot : string; index : int }

let reply_payload ~id ~response ~server_index ~view =
  Printf.sprintf "smr-reply|%s|%s|%d|%d" id response server_index view

let verify_reply pk (r : reply) =
  Sign.verify pk
    ~msg:
      (reply_payload ~id:r.request_id ~response:r.response ~server_index:r.server_index
         ~view:r.view)
    r.signature

module Iset = Set.Make (Int)

type entry = {
  e_view : int;
  e_id : string;
  e_cmd : string;
  e_reply_to : Address.t;
  e_digest : string;
  mutable e_prepares : Iset.t;
  mutable e_commits : Iset.t;
  mutable e_committed : bool;
  mutable e_executed : bool;
}

type pending = { p_cmd : string; p_reply_to : Address.t; p_since : float }

type replica = {
  engine : Engine.t;
  config : config;
  rep_index : int;
  service : Dsm.Instance.instance;
  secret : Sign.secret_key;
  pk : Sign.public_key;
  self : Address.t;
  addresses : Address.t array;
  send : dst:Address.t -> msg -> unit;
  log : (int, entry) Hashtbl.t;  (** seq -> entry *)
  executed : (string, string) Hashtbl.t;  (** request id -> response *)
  pending : (string, pending) Hashtbl.t;  (** awaiting execution *)
  checkpoints : (int, (string, Iset.t) Hashtbl.t) Hashtbl.t;
      (** seq -> digest -> voter set *)
  own_snapshots : (int, string) Hashtbl.t;  (** seq -> snapshot *)
  viewchange_votes : (int, Iset.t ref) Hashtbl.t;  (** new view -> voters *)
  state_votes : (int * string, Iset.t ref) Hashtbl.t;
      (** (seq, digest) -> voter set during state transfer *)
  state_payload : (int * string, string) Hashtbl.t;
  mutable rep_view : int;
  mutable next_seq : int;  (** last seq this leader assigned *)
  mutable last_exec : int;
  mutable stable_checkpoint : int;
  mutable rep_alive : bool;
  mutable started : bool;
  mutable transferring : bool;
  mutable transfer_since : float;
      (** when the current state transfer began; the watchdog re-broadcasts
          [State_req] once a full period has passed without the f+1 match *)
  mutable rep_compromised : bool;
  mutable exec_since_checkpoint : int;
}

let create ~engine ~config ~index ~service ~secret ~self ~addresses ~send =
  if config.n <> (3 * config.f) + 1 then invalid_arg "Smr.create: n must be 3f+1";
  if Array.length addresses <> config.n then invalid_arg "Smr.create: addresses size mismatch";
  if index < 0 || index >= config.n then invalid_arg "Smr.create: bad index";
  if not (Address.equal addresses.(index) self) then invalid_arg "Smr.create: self address mismatch";
  {
    engine;
    config;
    rep_index = index;
    service = Dsm.Instance.create service;
    secret;
    pk = Sign.public_of_secret secret;
    self;
    addresses;
    send;
    log = Hashtbl.create 128;
    executed = Hashtbl.create 128;
    pending = Hashtbl.create 32;
    checkpoints = Hashtbl.create 16;
    own_snapshots = Hashtbl.create 16;
    viewchange_votes = Hashtbl.create 8;
    state_votes = Hashtbl.create 8;
    state_payload = Hashtbl.create 8;
    rep_view = 0;
    next_seq = 0;
    last_exec = 0;
    stable_checkpoint = 0;
    rep_alive = false;
    started = false;
    transferring = false;
    transfer_since = 0.0;
    rep_compromised = false;
    exec_since_checkpoint = 0;
  }

let index t = t.rep_index
let view t = t.rep_view
let leader_index t = t.rep_view mod t.config.n
let is_leader t = leader_index t = t.rep_index
let alive t = t.rep_alive
let last_executed t = t.last_exec
let executed_count t = Hashtbl.length t.executed
let service_digest t = Dsm.Instance.digest t.service
let service_snapshot t = Dsm.Instance.snapshot t.service
let public_key t = t.pk
let stable_checkpoint t = t.stable_checkpoint
let in_state_transfer t = t.transferring
let set_compromised t v = t.rep_compromised <- v
let compromised t = t.rep_compromised

let others t = List.init t.config.n Fun.id |> List.filter (fun i -> i <> t.rep_index)
let broadcast t msg = List.iter (fun i -> t.send ~dst:t.addresses.(i) msg) (others t)
let request_digest ~id ~cmd = Sha256.digest (Printf.sprintf "%s|%s" id cmd)

let signed_reply t ~id ~response =
  let response = if t.rep_compromised then "pwned:" ^ response else response in
  let payload = reply_payload ~id ~response ~server_index:t.rep_index ~view:t.rep_view in
  {
    request_id = id;
    response;
    server_index = t.rep_index;
    view = t.rep_view;
    signature = Sign.sign t.secret payload;
  }

(* ---- checkpointing ---- *)

let take_checkpoint t =
  let seq = t.last_exec in
  let snapshot = Dsm.Instance.snapshot t.service in
  Hashtbl.replace t.own_snapshots seq snapshot;
  t.exec_since_checkpoint <- 0;
  let digest = Sha256.digest snapshot in
  broadcast t (Checkpoint { seq; digest; index = t.rep_index });
  (* count our own vote *)
  let by_digest =
    match Hashtbl.find_opt t.checkpoints seq with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.checkpoints seq h;
        h
  in
  let votes = Option.value ~default:Iset.empty (Hashtbl.find_opt by_digest digest) in
  Hashtbl.replace by_digest digest (Iset.add t.rep_index votes)

let garbage_collect t upto =
  Hashtbl.iter
    (fun seq _ -> if seq < upto then Hashtbl.remove t.log seq)
    (Hashtbl.copy t.log);
  Hashtbl.iter
    (fun seq _ -> if seq < upto then Hashtbl.remove t.checkpoints seq)
    (Hashtbl.copy t.checkpoints);
  Hashtbl.iter
    (fun seq _ -> if seq < upto then Hashtbl.remove t.own_snapshots seq)
    (Hashtbl.copy t.own_snapshots)

let handle_checkpoint t ~seq ~digest ~index:voter =
  let by_digest =
    match Hashtbl.find_opt t.checkpoints seq with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.checkpoints seq h;
        h
  in
  let votes = Option.value ~default:Iset.empty (Hashtbl.find_opt by_digest digest) in
  let votes = Iset.add voter votes in
  Hashtbl.replace by_digest digest votes;
  if Iset.cardinal votes >= (2 * t.config.f) + 1 && seq > t.stable_checkpoint then begin
    t.stable_checkpoint <- seq;
    garbage_collect t seq
  end

(* ---- execution ---- *)

let rec try_execute t =
  let seq = t.last_exec + 1 in
  match Hashtbl.find_opt t.log seq with
  | Some entry when entry.e_committed && not entry.e_executed ->
      entry.e_executed <- true;
      t.last_exec <- seq;
      let response =
        match Hashtbl.find_opt t.executed entry.e_id with
        | Some r -> r (* duplicate proposal of an already-executed request *)
        | None ->
            (* every replica uses its own entropy: SMR requires determinism *)
            let entropy = Fortress_util.Prng.bits64 (Engine.prng t.engine) in
            let r = Dsm.Instance.apply t.service ~entropy entry.e_cmd in
            Hashtbl.replace t.executed entry.e_id r;
            r
      in
      Hashtbl.remove t.pending entry.e_id;
      t.send ~dst:entry.e_reply_to (Reply (signed_reply t ~id:entry.e_id ~response));
      t.exec_since_checkpoint <- t.exec_since_checkpoint + 1;
      if t.exec_since_checkpoint >= t.config.checkpoint_interval then take_checkpoint t;
      try_execute t
  | Some _ | None -> ()

let check_committed t seq entry =
  if
    (not entry.e_committed)
    && Iset.cardinal entry.e_commits >= (2 * t.config.f) + 1
    && Iset.cardinal entry.e_prepares >= 2 * t.config.f
  then begin
    entry.e_committed <- true;
    ignore seq;
    try_execute t
  end

let send_commit t seq entry =
  let commit = Commit { view = entry.e_view; seq; digest = entry.e_digest; index = t.rep_index } in
  entry.e_commits <- Iset.add t.rep_index entry.e_commits;
  broadcast t commit;
  check_committed t seq entry

let check_prepared t seq entry =
  if Iset.cardinal entry.e_prepares >= 2 * t.config.f && not (Iset.mem t.rep_index entry.e_commits)
  then send_commit t seq entry

(* ---- ordering ---- *)

let insert_entry t ~view ~seq ~id ~cmd ~reply_to =
  let entry =
    {
      e_view = view;
      e_id = id;
      e_cmd = cmd;
      e_reply_to = reply_to;
      e_digest = request_digest ~id ~cmd;
      e_prepares = Iset.empty;
      e_commits = Iset.empty;
      e_committed = false;
      e_executed = false;
    }
  in
  Hashtbl.replace t.log seq entry;
  entry

let propose t ~id ~cmd ~reply_to =
  t.next_seq <- max t.next_seq t.last_exec + 1;
  let seq = t.next_seq in
  let entry = insert_entry t ~view:t.rep_view ~seq ~id ~cmd ~reply_to in
  broadcast t (Preprepare { view = t.rep_view; seq; id; cmd; reply_to });
  (* leader's implicit prepare *)
  entry.e_prepares <- Iset.add t.rep_index entry.e_prepares

let handle_request t ~id ~cmd ~reply_to =
  match Hashtbl.find_opt t.executed id with
  | Some response -> t.send ~dst:reply_to (Reply (signed_reply t ~id ~response))
  | None ->
      if not (Hashtbl.mem t.pending id) then
        Hashtbl.replace t.pending id
          { p_cmd = cmd; p_reply_to = reply_to; p_since = Engine.now t.engine };
      if is_leader t then begin
        let already_proposed =
          Hashtbl.fold (fun _ e acc -> acc || e.e_id = id) t.log false
        in
        if not already_proposed then propose t ~id ~cmd ~reply_to
      end

let handle_preprepare t ~view ~seq ~id ~cmd ~reply_to =
  if view >= t.rep_view && seq > t.last_exec && not (Hashtbl.mem t.log seq) then begin
    if view > t.rep_view then t.rep_view <- view;
    let entry = insert_entry t ~view ~seq ~id ~cmd ~reply_to in
    if not (Hashtbl.mem t.pending id) && not (Hashtbl.mem t.executed id) then
      Hashtbl.replace t.pending id
        { p_cmd = cmd; p_reply_to = reply_to; p_since = Engine.now t.engine };
    let prepare = Prepare { view; seq; digest = entry.e_digest; index = t.rep_index } in
    entry.e_prepares <- Iset.add t.rep_index entry.e_prepares;
    broadcast t prepare;
    check_prepared t seq entry
  end

let handle_prepare t ~view ~seq ~digest ~index:voter =
  match Hashtbl.find_opt t.log seq with
  | Some entry when entry.e_view = view && entry.e_digest = digest ->
      entry.e_prepares <- Iset.add voter entry.e_prepares;
      check_prepared t seq entry
  | Some _ | None -> ()

let handle_commit t ~view ~seq ~digest ~index:voter =
  match Hashtbl.find_opt t.log seq with
  | Some entry when entry.e_view = view && entry.e_digest = digest ->
      entry.e_commits <- Iset.add voter entry.e_commits;
      check_committed t seq entry
  | Some _ | None -> ()

(* ---- view change ---- *)

let adopt_view t new_view =
  t.rep_view <- new_view;
  (* drop uncommitted entries from older views; committed ones stay *)
  Hashtbl.iter
    (fun seq e -> if (not e.e_committed) && e.e_view < new_view then Hashtbl.remove t.log seq)
    (Hashtbl.copy t.log);
  if is_leader t then begin
    Engine.emit t.engine
      (Event.Failover { proto = "smr"; replica = t.rep_index; view = new_view });
    t.next_seq <- Hashtbl.fold (fun seq _ acc -> max acc seq) t.log t.last_exec;
    (* re-propose everything pending and unexecuted *)
    Hashtbl.iter
      (fun id p ->
        if not (Hashtbl.mem t.executed id) then begin
          let already =
            Hashtbl.fold (fun _ e acc -> acc || (e.e_id = id && e.e_view = new_view)) t.log false
          in
          if not already then propose t ~id ~cmd:p.p_cmd ~reply_to:p.p_reply_to
        end)
      (Hashtbl.copy t.pending)
  end

let request_viewchange t new_view =
  let votes =
    match Hashtbl.find_opt t.viewchange_votes new_view with
    | Some v -> v
    | None ->
        let v = ref Iset.empty in
        Hashtbl.replace t.viewchange_votes new_view v;
        v
  in
  if not (Iset.mem t.rep_index !votes) then begin
    votes := Iset.add t.rep_index !votes;
    broadcast t (Viewchange { new_view; last_exec = t.last_exec; index = t.rep_index })
  end

let handle_viewchange t ~new_view ~last_exec:_ ~index:voter =
  if new_view > t.rep_view then begin
    let votes =
      match Hashtbl.find_opt t.viewchange_votes new_view with
      | Some v -> v
      | None ->
          let v = ref Iset.empty in
          Hashtbl.replace t.viewchange_votes new_view v;
          v
    in
    votes := Iset.add voter !votes;
    (* join the view change once f+1 replicas demand it *)
    if Iset.cardinal !votes >= t.config.f + 1 && not (Iset.mem t.rep_index !votes) then
      request_viewchange t new_view;
    if
      Iset.cardinal !votes >= (2 * t.config.f) + 1
      && new_view mod t.config.n = t.rep_index
    then begin
      broadcast t (Newview { view = new_view });
      adopt_view t new_view
    end
  end

let handle_newview t ~view = if view > t.rep_view then adopt_view t view

(* ---- state transfer (recovery rejoin) ---- *)

let begin_state_transfer t =
  t.transferring <- true;
  t.transfer_since <- Engine.now t.engine;
  Hashtbl.reset t.state_votes;
  Hashtbl.reset t.state_payload;
  Dsm.Instance.reset t.service;
  Hashtbl.reset t.log;
  Hashtbl.reset t.executed;
  Hashtbl.reset t.pending;
  t.last_exec <- 0;
  t.exec_since_checkpoint <- 0;
  broadcast t (State_req { reply_to = t.self })

let handle_state_req t ~reply_to =
  t.send ~dst:reply_to
    (State_resp
       { seq = t.last_exec; snapshot = Dsm.Instance.snapshot t.service; index = t.rep_index })

let handle_state_resp t ~seq ~snapshot ~index:voter =
  if t.transferring then begin
    let digest = Sha256.digest snapshot in
    let key = (seq, digest) in
    let votes =
      match Hashtbl.find_opt t.state_votes key with
      | Some v -> v
      | None ->
          let v = ref Iset.empty in
          Hashtbl.replace t.state_votes key v;
          Hashtbl.replace t.state_payload key snapshot;
          v
    in
    votes := Iset.add voter !votes;
    if Iset.cardinal !votes >= t.config.f + 1 then begin
      Dsm.Instance.restore t.service (Hashtbl.find t.state_payload key);
      t.last_exec <- seq;
      t.next_seq <- seq;
      t.stable_checkpoint <- seq;
      t.transferring <- false;
      Engine.emit t.engine
        (Event.Repl
           {
             proto = "smr";
             kind = "restore";
             detail = Printf.sprintf "replica %d restored state at seq %d" t.rep_index seq;
           })
    end
  end

(* ---- dispatch ---- *)

(* A recovering replica's [State_req] is one-shot and its peers answer
   with their live snapshots, so under concurrent load the f+1 match can
   fail (peers caught at different execution points) and, without the
   timers below, the replica would stay [transferring] forever — and a
   wedged replica ignores ordering traffic AND [State_req], so wedges
   cascade until the whole group is silent. Both timers fire only in
   states that were previously permanent wedges: a quiescent group
   completes every transfer within the same instant, keeping fault-free
   traces byte-identical to the timer-free build. *)
let watchdog t =
  let now = Engine.now t.engine in
  if t.rep_alive && t.transferring then begin
    (* the one-shot transfer did not land an f+1 match: re-poll the peers
       (vote sets persist across polls, so any two answers that ever agree
       on (seq, digest) complete the transfer) *)
    if now -. t.transfer_since >= t.config.watchdog_period then begin
      Engine.emit t.engine
        (Event.Repl
           {
             proto = "smr";
             kind = "transfer_retry";
             detail = Printf.sprintf "replica %d re-polling state transfer" t.rep_index;
           });
      broadcast t (State_req { reply_to = t.self })
    end
  end
  else if t.rep_alive then begin
    (* a replica that was recovering while a sequence number committed has
       a permanent gap — [try_execute] only walks contiguously — so it can
       never execute anything newer; detect the gap and re-transfer *)
    let gapped =
      t.stable_checkpoint > t.last_exec
      || (not (Hashtbl.mem t.log (t.last_exec + 1)))
         && Hashtbl.fold
              (fun seq (e : entry) acc -> acc || (e.e_committed && seq > t.last_exec + 1))
              t.log false
    in
    if gapped then begin
      Engine.emit t.engine
        (Event.Repl
           {
             proto = "smr";
             kind = "resync";
             detail =
               Printf.sprintf "replica %d behind (executed %d), re-transferring state"
                 t.rep_index t.last_exec;
           });
      begin_state_transfer t
    end
    else begin
      let stuck =
        Hashtbl.fold
          (fun id p acc ->
            acc
            || ((not (Hashtbl.mem t.executed id)) && now -. p.p_since > t.config.request_timeout))
          t.pending false
      in
      if stuck then begin
        Engine.emit t.engine
          (Event.Repl
             {
               proto = "smr";
               kind = "view_demand";
               detail =
                 Printf.sprintf "replica %d: request timeout, demanding view %d" t.rep_index
                   (t.rep_view + 1);
             });
        (* refresh timers so we do not spam view changes every tick *)
        Hashtbl.iter
          (fun id p ->
            if not (Hashtbl.mem t.executed id) then
              Hashtbl.replace t.pending id { p with p_since = now })
          (Hashtbl.copy t.pending);
        request_viewchange t (t.rep_view + 1)
      end
    end
  end

let handle t ~src:_ msg =
  if t.rep_alive then
    match msg with
    | State_req { reply_to } -> if not t.transferring then handle_state_req t ~reply_to
    | State_resp { seq; snapshot; index } -> handle_state_resp t ~seq ~snapshot ~index
    | _ when t.transferring -> () (* ignore ordering traffic while restoring *)
    | Request { id; cmd; reply_to } -> handle_request t ~id ~cmd ~reply_to
    | Preprepare { view; seq; id; cmd; reply_to } ->
        if leader_index t <> t.rep_index || view > t.rep_view then
          handle_preprepare t ~view ~seq ~id ~cmd ~reply_to
    | Prepare { view; seq; digest; index } -> handle_prepare t ~view ~seq ~digest ~index
    | Commit { view; seq; digest; index } -> handle_commit t ~view ~seq ~digest ~index
    | Checkpoint { seq; digest; index } -> handle_checkpoint t ~seq ~digest ~index
    | Viewchange { new_view; last_exec; index } -> handle_viewchange t ~new_view ~last_exec ~index
    | Newview { view } -> handle_newview t ~view
    | Reply _ -> ()

let start t =
  if not t.started then begin
    t.started <- true;
    t.rep_alive <- true;
    ignore
      (Engine.every t.engine ~period:t.config.watchdog_period (fun () -> watchdog t))
  end
  else t.rep_alive <- true

let stop t = t.rep_alive <- false
let restart t = t.rep_alive <- true

(* Crash with amnesia: volatile ordering state is gone. The replica keeps
   its view number (cheaply re-learned) and rejoins via state transfer. *)
let crash t =
  t.rep_alive <- false;
  t.transferring <- false;
  Dsm.Instance.reset t.service;
  Hashtbl.reset t.log;
  Hashtbl.reset t.executed;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.checkpoints;
  Hashtbl.reset t.own_snapshots;
  Hashtbl.reset t.viewchange_votes;
  Hashtbl.reset t.state_votes;
  Hashtbl.reset t.state_payload;
  t.next_seq <- 0;
  t.last_exec <- 0;
  t.stable_checkpoint <- 0;
  t.exec_since_checkpoint <- 0

module Voter = struct
  type vote = { mutable replies : (int * string) list; mutable result : string option }

  type t = { f : int; public_keys : Sign.public_key array; votes : (string, vote) Hashtbl.t }

  let create ~f ~public_keys = { f; public_keys; votes = Hashtbl.create 32 }

  let offer t (r : reply) =
    if r.server_index < 0 || r.server_index >= Array.length t.public_keys then None
    else if not (verify_reply t.public_keys.(r.server_index) r) then None
    else begin
      let vote =
        match Hashtbl.find_opt t.votes r.request_id with
        | Some v -> v
        | None ->
            let v = { replies = []; result = None } in
            Hashtbl.replace t.votes r.request_id v;
            v
      in
      match vote.result with
      | Some _ -> None
      | None ->
          if List.mem_assoc r.server_index vote.replies then None
          else begin
            vote.replies <- (r.server_index, r.response) :: vote.replies;
            let matching =
              List.length (List.filter (fun (_, resp) -> resp = r.response) vote.replies)
            in
            if matching >= t.f + 1 then begin
              vote.result <- Some r.response;
              Some r.response
            end
            else None
          end
    end

  let decided t ~id =
    match Hashtbl.find_opt t.votes id with Some v -> v.result | None -> None
end
