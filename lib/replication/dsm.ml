module type SERVICE = sig
  type state

  val name : string
  val init : state
  val apply : state -> entropy:int64 -> string -> state * string
  val snapshot : state -> string
  val restore : string -> state
end

type t = (module SERVICE)

module Instance = struct
  type meta = { mutable applied : int; mutable generation : int }

  type instance =
    | Inst : (module SERVICE with type state = 's) * 's ref * meta -> instance

  let create (module S : SERVICE) =
    Inst ((module S), ref S.init, { applied = 0; generation = 0 })

  let name (Inst ((module S), _, _)) = S.name

  let apply (Inst ((module S), state, meta)) ~entropy cmd =
    let next, response = S.apply !state ~entropy cmd in
    state := next;
    meta.applied <- meta.applied + 1;
    response

  let snapshot (Inst ((module S), state, _)) = S.snapshot !state
  let restore (Inst ((module S), state, _)) s = state := S.restore s
  let digest inst = Fortress_crypto.Sha256.digest (snapshot inst)

  let reset (Inst ((module S), state, meta)) =
    state := S.init;
    meta.generation <- meta.generation + 1

  let applied (Inst (_, _, meta)) = meta.applied
  let generation (Inst (_, _, meta)) = meta.generation
end
