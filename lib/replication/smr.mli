(** State machine replication with Byzantine agreement (the paper's S0).

    A leader-based three-phase ordering protocol in the PBFT mould for
    n = 3f + 1 replicas: the view-[v] leader (replica [v mod n]) assigns
    sequence numbers in pre-prepare messages; replicas broadcast prepare
    and then commit votes; an entry executes once it is committed locally
    and all lower sequence numbers have executed. Replicas checkpoint every
    [checkpoint_interval] executions, and a recovering replica restores
    state from [f + 1] matching peer snapshots. Requests that sit
    unexecuted past [request_timeout] trigger a view change; the new leader
    re-proposes unexecuted requests (duplicate suppression is by request
    id).

    Unlike {!Pb}, every replica executes every command with {e its own}
    entropy — SMR is correct only for deterministic services, which is the
    paper's point: run the [lottery] service here and replicas diverge
    (visible in checkpoint digests and failed client votes).

    Clients must vote over replies: {!Voter} accepts a response once
    [f + 1] validly signed, matching replies from distinct replicas
    arrive. *)

type config = {
  n : int;  (** number of replicas; must equal [3 * f + 1] *)
  f : int;  (** tolerated faulty replicas *)
  checkpoint_interval : int;
  request_timeout : float;
  watchdog_period : float;  (** how often pending requests are re-checked *)
}

val default_config : config
(** n = 4, f = 1, checkpoint every 16, request timeout 30.0,
    watchdog 10.0. *)

type reply = {
  request_id : string;
  response : string;
  server_index : int;
  view : int;
  signature : Fortress_crypto.Sign.signature;
}

type msg =
  | Request of { id : string; cmd : string; reply_to : Fortress_net.Address.t }
  | Preprepare of {
      view : int;
      seq : int;
      id : string;
      cmd : string;
      reply_to : Fortress_net.Address.t;
    }
  | Prepare of { view : int; seq : int; digest : string; index : int }
  | Commit of { view : int; seq : int; digest : string; index : int }
  | Reply of reply
  | Checkpoint of { seq : int; digest : string; index : int }
  | Viewchange of { new_view : int; last_exec : int; index : int }
  | Newview of { view : int }
  | State_req of { reply_to : Fortress_net.Address.t }
  | State_resp of { seq : int; snapshot : string; index : int }

val reply_payload : id:string -> response:string -> server_index:int -> view:int -> string
val verify_reply : Fortress_crypto.Sign.public_key -> reply -> bool

type replica

val create :
  engine:Fortress_sim.Engine.t ->
  config:config ->
  index:int ->
  service:Dsm.t ->
  secret:Fortress_crypto.Sign.secret_key ->
  self:Fortress_net.Address.t ->
  addresses:Fortress_net.Address.t array ->
  send:(dst:Fortress_net.Address.t -> msg -> unit) ->
  replica

val start : replica -> unit
val stop : replica -> unit
val restart : replica -> unit
(** Rejoin with state intact. *)

val crash : replica -> unit
(** Crash with amnesia: like {!stop} but all volatile ordering and service
    state is lost; rejoin with {!restart} followed by
    {!begin_state_transfer}. *)

val begin_state_transfer : replica -> unit
(** Rejoin after losing state (proactive recovery wipes the process):
    request snapshots from peers and install the [f + 1]-matching one. The
    replica ignores ordering messages until the transfer completes. *)

val handle : replica -> src:Fortress_net.Address.t -> msg -> unit

val index : replica -> int
val view : replica -> int
val is_leader : replica -> bool
val alive : replica -> bool
val last_executed : replica -> int
val executed_count : replica -> int
val service_digest : replica -> string
val service_snapshot : replica -> string
val public_key : replica -> Fortress_crypto.Sign.public_key
val stable_checkpoint : replica -> int
val in_state_transfer : replica -> bool

val set_compromised : replica -> bool -> unit
(** The intruder holds the replica's signing key and substitutes its own
    responses; agreement-phase messages still follow the protocol (a
    stealthy intruder), so the system stays live and the client vote is the
    only defence. *)

val compromised : replica -> bool

module Voter : sig
  (** Client-side reply collection: accept once [f + 1] matching, validly
      signed replies from distinct replicas arrive. *)

  type t

  val create : f:int -> public_keys:Fortress_crypto.Sign.public_key array -> t

  val offer : t -> reply -> string option
  (** Feed a reply; [Some response] once the request's vote first reaches
      [f + 1] matching valid replies (subsequent replies return [None]
      again). Invalid signatures and out-of-range indices are ignored. *)

  val decided : t -> id:string -> string option
end
