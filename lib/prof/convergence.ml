module Stats = Fortress_util.Stats
module Table = Fortress_util.Table
module Json = Fortress_obs.Json

type checkpoint = {
  after : int;
  observed : int;
  mean : float;
  half_width : float;
  rel_half_width : float;
}

type t = {
  stats : Stats.t;
  batch : int;
  target_rel : float;
  z : float;
  mutable total : int;
  mutable censored : int;
  mutable checkpoints : checkpoint list;  (** newest first *)
  mutable converged_at : int option;
}

let create ?(batch = 25) ?(target_rel = 0.05) ?(z = 1.96) () =
  if batch <= 0 then invalid_arg "Convergence.create: batch must be positive";
  if target_rel <= 0.0 then invalid_arg "Convergence.create: target_rel must be positive";
  {
    stats = Stats.create ();
    batch;
    target_rel;
    z;
    total = 0;
    censored = 0;
    checkpoints = [];
    converged_at = None;
  }

let total t = t.total
let censored t = t.censored
let observed t = Stats.count t.stats
let mean t = Stats.mean t.stats
let target_rel t = t.target_rel
let batch t = t.batch

let half_width t =
  if Stats.count t.stats < 2 then nan else t.z *. Stats.std_error t.stats

let rel_half_width t =
  let m = mean t in
  let hw = half_width t in
  if Float.is_nan m || Float.is_nan hw || m = 0.0 then nan else hw /. Float.abs m

let converged t =
  let rel = rel_half_width t in
  (not (Float.is_nan rel)) && rel <= t.target_rel

let converged_at t = t.converged_at

(* The Welford accumulator gives sd and mean at any point; assuming the
   per-trial coefficient of variation is stable, the trial count needed to
   reach the target relative half-width is (z * sd / (target * |mean|))^2.
   This is what "how many trials does the CI actually need" means before
   the run has reached it. *)
let projected_trials t =
  let m = mean t in
  if Stats.count t.stats < 2 || Float.is_nan m || m = 0.0 then None
  else
    let sd = Stats.stddev t.stats in
    let n = (t.z *. sd /. (t.target_rel *. Float.abs m)) ** 2.0 in
    Some (max 2 (int_of_float (Float.ceil n)))

let observe t outcome =
  t.total <- t.total + 1;
  (match outcome with
  | Some x -> Stats.add t.stats x
  | None -> t.censored <- t.censored + 1);
  if t.total mod t.batch = 0 then begin
    let cp =
      {
        after = t.total;
        observed = Stats.count t.stats;
        mean = mean t;
        half_width = half_width t;
        rel_half_width = rel_half_width t;
      }
    in
    t.checkpoints <- cp :: t.checkpoints;
    if t.converged_at = None && converged t then t.converged_at <- Some t.total;
    Some cp
  end
  else None

let checkpoints t = List.rev t.checkpoints

(* Combine per-domain monitors as if [a]'s trials preceded [b]'s. The
   Welford states combine exactly (Stats.combine); [a]'s checkpoints are
   genuine prefixes of the merged stream and are kept, while [b]'s were
   computed without [a]'s prefix and correspond to no prefix of the merged
   stream, so they are dropped and one new checkpoint is taken at the
   merged boundary — a deterministic trial-count boundary, never a
   wall-clock one. Exact per-batch checkpoint streams under parallel
   execution come from index-order replay at the join (Mc.Trial), not from
   this function. *)
let merge a b =
  if a.batch <> b.batch || a.target_rel <> b.target_rel || a.z <> b.z then
    invalid_arg "Convergence.merge: monitors configured differently";
  let t =
    {
      stats = Stats.combine a.stats b.stats;
      batch = a.batch;
      target_rel = a.target_rel;
      z = a.z;
      total = a.total + b.total;
      censored = a.censored + b.censored;
      checkpoints = a.checkpoints;
      converged_at = a.converged_at;
    }
  in
  if t.total > 0 then begin
    let cp =
      {
        after = t.total;
        observed = Stats.count t.stats;
        mean = mean t;
        half_width = half_width t;
        rel_half_width = rel_half_width t;
      }
    in
    t.checkpoints <- cp :: t.checkpoints;
    if t.converged_at = None && converged t then t.converged_at <- Some t.total
  end;
  t

let checkpoint_detail cp =
  Printf.sprintf "after %d trials (%d observed): mean=%.6g hw95=%.4g rel=%.4g" cp.after
    cp.observed cp.mean cp.half_width cp.rel_half_width

let table t =
  let tbl =
    Table.create ~headers:[ "trials"; "observed"; "mean"; "ci95 half-width"; "relative" ]
  in
  List.iter
    (fun cp ->
      Table.add_row tbl
        [
          string_of_int cp.after;
          string_of_int cp.observed;
          Printf.sprintf "%.5g" cp.mean;
          Printf.sprintf "%.4g" cp.half_width;
          Printf.sprintf "%.4g" cp.rel_half_width;
        ])
    (checkpoints t);
  tbl

let num x = if Float.is_nan x then Json.Null else Json.Num x

let to_json t =
  Json.Obj
    [
      ("trials", Json.Num (float_of_int t.total));
      ("observed", Json.Num (float_of_int (observed t)));
      ("censored", Json.Num (float_of_int t.censored));
      ("mean", num (mean t));
      ("half_width", num (half_width t));
      ("rel_half_width", num (rel_half_width t));
      ("target_rel_half_width", Json.Num t.target_rel);
      ( "converged_at",
        match t.converged_at with Some n -> Json.Num (float_of_int n) | None -> Json.Null );
      ( "projected_trials",
        match projected_trials t with Some n -> Json.Num (float_of_int n) | None -> Json.Null
      );
      ( "checkpoints",
        Json.List
          (List.map
             (fun cp ->
               Json.Obj
                 [
                   ("after", Json.Num (float_of_int cp.after));
                   ("observed", Json.Num (float_of_int cp.observed));
                   ("mean", num cp.mean);
                   ("half_width", num cp.half_width);
                   ("rel_half_width", num cp.rel_half_width);
                 ])
             (checkpoints t)) );
    ]
