(** Online Monte-Carlo convergence monitor.

    Wraps the Welford accumulator of {!Fortress_util.Stats} with a
    batch-checkpoint discipline: every [batch] trials it records the
    running mean and 95%-CI half-width, decides whether the estimate has
    reached the target {e relative} half-width (default ±5% of the mean),
    and projects how many trials the target will need if it has not.
    [Mc.Trial.run] feeds one outcome per trial; censored trials (no
    observed lifetime) count toward the trial budget but not the mean. *)

type checkpoint = {
  after : int;  (** trials consumed when the checkpoint was taken *)
  observed : int;  (** uncensored trials among them *)
  mean : float;
  half_width : float;  (** z * standard error; [nan] below 2 observations *)
  rel_half_width : float;  (** half-width / |mean|; [nan] when undefined *)
}

type t

val create : ?batch:int -> ?target_rel:float -> ?z:float -> unit -> t
(** [create ()] monitors with checkpoints every [batch] (default 25)
    trials, targeting a relative half-width of [target_rel] (default
    0.05) at confidence [z] (default 1.96, i.e. 95%). Raises
    [Invalid_argument] on a non-positive [batch] or [target_rel]. *)

val observe : t -> float option -> checkpoint option
(** [observe t outcome] feeds one trial result ([None] = censored).
    Returns the new checkpoint when this trial completes a batch. *)

val total : t -> int
val observed : t -> int
val censored : t -> int
val batch : t -> int
val target_rel : t -> float
val mean : t -> float
val half_width : t -> float
val rel_half_width : t -> float

val converged : t -> bool
(** Whether the current relative half-width is at or below the target. *)

val converged_at : t -> int option
(** Trial count of the first checkpoint at which the target held. *)

val projected_trials : t -> int option
(** Estimated total trials needed to reach the target, extrapolating from
    the current sample standard deviation: [ceil ((z*sd/(target*|mean|))^2)].
    [None] below 2 observations or with a zero mean. *)

val checkpoints : t -> checkpoint list
(** All checkpoints, oldest first. *)

val merge : t -> t -> t
(** [merge a b] is a monitor equivalent to observing [a]'s trials and then
    [b]'s: totals and censored counts add, and the underlying Welford
    states combine via {!Fortress_util.Stats.combine}, so mean, half-width
    and convergence status equal sequential accumulation. [a]'s
    checkpoints (true prefixes of the merged stream) are kept and one new
    checkpoint is recorded at the merged trial-count boundary; [b]'s
    checkpoints are dropped because they describe no prefix of the merged
    stream. The parallel trial runner instead replays outcomes through a
    single monitor in index order, which reproduces the full sequential
    checkpoint stream bit for bit; [merge] is the coarse summary for
    combining independently collected monitors. Raises [Invalid_argument]
    when the monitors' batch, target or z differ. Neither input is
    mutated. *)

val checkpoint_detail : checkpoint -> string
(** One-line rendering used as the [Note] event detail in trial streams. *)

val table : t -> Fortress_util.Table.t
val to_json : t -> Fortress_obs.Json.t
