module Event = Fortress_obs.Event
module Json = Fortress_obs.Json

(* Chrome trace-event ("Trace Event Format") export, the JSON-array flavour
   accepted by chrome://tracing and by Perfetto's legacy-JSON importer.

   Two processes keep the two clocks apart:
     pid 1 — the simulated world: Span_finished events on the virtual
             clock, one thread lane per node (span attr "node", falling
             back to the name prefix before the first '.');
     pid 2 — the simulator itself: profiler wall-clock samples, one lane
             per top-level phase scope.
   Timestamps are microseconds, so virtual time units are scaled by
   [scale] (default 1e6: one virtual time unit renders as one second). *)

let default_scale = 1_000_000.0

let name_prefix name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let span_lane ~attrs ~name =
  match List.assoc_opt "node" attrs with
  | Some node -> node
  | None -> name_prefix name

(* trace viewers sort thread lanes by tid; intern lanes in first-seen
   order so the layout is deterministic for a given event stream *)
type lanes = { tbl : (string, int) Hashtbl.t; mutable rev : (string * int) list }

let lanes_create () = { tbl = Hashtbl.create 16; rev = [] }

let lane_id lanes name =
  match Hashtbl.find_opt lanes.tbl name with
  | Some tid -> tid
  | None ->
      let tid = Hashtbl.length lanes.tbl + 1 in
      Hashtbl.replace lanes.tbl name tid;
      lanes.rev <- (name, tid) :: lanes.rev;
      tid

let lanes_sorted lanes = List.rev lanes.rev

let str k v = (k, Json.Str v)
let num k v = (k, Json.Num v)

let metadata ~pid ?tid ~name ~value () =
  Json.Obj
    ([ str "name" name; str "ph" "M"; num "pid" (float_of_int pid) ]
    @ (match tid with Some t -> [ num "tid" (float_of_int t) ] | None -> [])
    @ [ ("args", Json.Obj [ str "name" value ]) ])

let complete ~pid ~tid ~name ~ts ~dur ~args =
  Json.Obj
    [
      str "name" name;
      str "ph" "X";
      num "pid" (float_of_int pid);
      num "tid" (float_of_int tid);
      num "ts" ts;
      num "dur" dur;
      ("args", Json.Obj args);
    ]

let instant ~pid ~tid ~name ~ts ~args =
  Json.Obj
    [
      str "name" name;
      str "ph" "i";
      str "s" "t";
      num "pid" (float_of_int pid);
      num "tid" (float_of_int tid);
      num "ts" ts;
      ("args", Json.Obj args);
    ]

let sim_pid = 1
let prof_pid = 2

let make ?(scale = default_scale) ?(samples = []) events =
  let sim_lanes = lanes_create () in
  let prof_lanes = lanes_create () in
  let rows = ref [] in
  let push row = rows := row :: !rows in
  List.iter
    (fun (time, ev) ->
      match ev with
      | Event.Span_finished { name; start_time; duration; attrs; id; parent } ->
          let tid = lane_id sim_lanes (span_lane ~attrs ~name) in
          let args =
            [ num "id" (float_of_int id) ]
            @ (match parent with
              | Some p -> [ num "parent" (float_of_int p) ]
              | None -> [])
            @ List.map (fun (k, v) -> str k v) attrs
          in
          push
            (complete ~pid:sim_pid ~tid ~name ~ts:(start_time *. scale)
               ~dur:(duration *. scale) ~args)
      | ev when Event.verbosity ev = `Info ->
          (* milestones (compromises, failovers, faults, notes) render as
             instants on an "events" lane so they line up against spans *)
          let tid = lane_id sim_lanes "events" in
          push
            (instant ~pid:sim_pid ~tid ~name:(Event.label ev) ~ts:(time *. scale)
               ~args:[ str "detail" (Event.detail ev) ])
      | _ -> ())
    events;
  List.iter
    (fun (s : Profiler.sample) ->
      let tid = lane_id prof_lanes (name_prefix s.Profiler.s_phase) in
      push
        (complete ~pid:prof_pid ~tid ~name:s.Profiler.s_phase
           ~ts:(s.Profiler.s_start *. 1e6) ~dur:(s.Profiler.s_dur *. 1e6) ~args:[]))
    samples;
  let meta =
    metadata ~pid:sim_pid ~name:"process_name" ~value:"simulation (virtual time)" ()
    :: metadata ~pid:prof_pid ~name:"process_name" ~value:"profiler (wall clock)" ()
    :: List.map
         (fun (lane, tid) ->
           metadata ~pid:sim_pid ~tid ~name:"thread_name" ~value:lane ())
         (lanes_sorted sim_lanes)
    @ List.map
        (fun (lane, tid) ->
          metadata ~pid:prof_pid ~tid ~name:"thread_name" ~value:lane ())
        (lanes_sorted prof_lanes)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.rev !rows));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
