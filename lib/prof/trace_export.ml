module Event = Fortress_obs.Event
module Json = Fortress_obs.Json

(* Chrome trace-event ("Trace Event Format") export, the JSON-array flavour
   accepted by chrome://tracing and by Perfetto's legacy-JSON importer.

   Two processes keep the two clocks apart:
     pid 1 — the simulated world: Span_finished events on the virtual
             clock, one thread lane per node (span attr "node", falling
             back to the name prefix before the first '.');
     pid 2 — the simulator itself: profiler wall-clock samples, one lane
             per top-level phase scope.
   Timestamps are microseconds, so virtual time units are scaled by
   [scale] (default 1e6: one virtual time unit renders as one second). *)

let default_scale = 1_000_000.0

let name_prefix name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let span_lane ~attrs ~name =
  match List.assoc_opt "node" attrs with
  | Some node -> node
  | None -> name_prefix name

(* trace viewers sort thread lanes by tid; intern lanes in first-seen
   order so the layout is deterministic for a given event stream *)
type lanes = { tbl : (string, int) Hashtbl.t; mutable rev : (string * int) list }

let lanes_create () = { tbl = Hashtbl.create 16; rev = [] }

let lane_id lanes name =
  match Hashtbl.find_opt lanes.tbl name with
  | Some tid -> tid
  | None ->
      let tid = Hashtbl.length lanes.tbl + 1 in
      Hashtbl.replace lanes.tbl name tid;
      lanes.rev <- (name, tid) :: lanes.rev;
      tid

let lanes_sorted lanes = List.rev lanes.rev

let str k v = (k, Json.Str v)
let num k v = (k, Json.Num v)

let metadata ~pid ?tid ~name ~value () =
  Json.Obj
    ([ str "name" name; str "ph" "M"; num "pid" (float_of_int pid) ]
    @ (match tid with Some t -> [ num "tid" (float_of_int t) ] | None -> [])
    @ [ ("args", Json.Obj [ str "name" value ]) ])

let complete ~pid ~tid ~name ~ts ~dur ~args =
  Json.Obj
    [
      str "name" name;
      str "ph" "X";
      num "pid" (float_of_int pid);
      num "tid" (float_of_int tid);
      num "ts" ts;
      num "dur" dur;
      ("args", Json.Obj args);
    ]

let instant ~pid ~tid ~name ~ts ~args =
  Json.Obj
    [
      str "name" name;
      str "ph" "i";
      str "s" "t";
      num "pid" (float_of_int pid);
      num "tid" (float_of_int tid);
      num "ts" ts;
      ("args", Json.Obj args);
    ]

(* Flow events bind a send lane to a deliver lane with an arrow: a "s"
   (start) at the producer and a "f" (finish, bp:"e") at the consumer,
   paired by id. Binding id is the deliver span's id, which the causal
   layer keeps unique across a pooled trace. *)
let flow ~phase ~tid ~ts ~id =
  Json.Obj
    ([ str "name" "net.flow"; str "cat" "net"; str "ph" phase ]
    @ (if phase = "f" then [ str "bp" "e" ] else [])
    @ [ num "id" id; num "pid" 1.0; num "tid" (float_of_int tid); num "ts" ts ])

let sim_pid = 1
let prof_pid = 2

let make ?(scale = default_scale) ?(samples = []) events =
  let sim_lanes = lanes_create () in
  let prof_lanes = lanes_create () in
  (* pre-index finished spans so a net.deliver can find its net.send parent
     regardless of emission order *)
  let span_index = Hashtbl.create 64 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Event.Span_finished { id; name; start_time; attrs; _ } ->
          Hashtbl.replace span_index id (name, span_lane ~attrs ~name, start_time)
      | _ -> ())
    events;
  let rows = ref [] in
  let push row = rows := row :: !rows in
  List.iter
    (fun (time, ev) ->
      match ev with
      | Event.Span_finished { name; start_time; duration; attrs; id; parent } ->
          let tid = lane_id sim_lanes (span_lane ~attrs ~name) in
          let args =
            [ num "id" (float_of_int id) ]
            @ (match parent with
              | Some p -> [ num "parent" (float_of_int p) ]
              | None -> [])
            @ List.map (fun (k, v) -> str k v) attrs
          in
          push
            (complete ~pid:sim_pid ~tid ~name ~ts:(start_time *. scale)
               ~dur:(duration *. scale) ~args);
          (match (name, parent) with
          | "net.deliver", Some p -> (
              match Hashtbl.find_opt span_index p with
              | Some ("net.send", send_lane, send_start) ->
                  let fid = float_of_int id in
                  push
                    (flow ~phase:"s" ~tid:(lane_id sim_lanes send_lane)
                       ~ts:(send_start *. scale) ~id:fid);
                  push (flow ~phase:"f" ~tid ~ts:(start_time *. scale) ~id:fid)
              | _ -> ())
          | _ -> ())
      | ev when Event.verbosity ev = `Info ->
          (* milestones (compromises, failovers, faults, notes) render as
             instants on an "events" lane so they line up against spans *)
          let tid = lane_id sim_lanes "events" in
          push
            (instant ~pid:sim_pid ~tid ~name:(Event.label ev) ~ts:(time *. scale)
               ~args:[ str "detail" (Event.detail ev) ])
      | _ -> ())
    events;
  List.iter
    (fun (s : Profiler.sample) ->
      let tid = lane_id prof_lanes (name_prefix s.Profiler.s_phase) in
      push
        (complete ~pid:prof_pid ~tid ~name:s.Profiler.s_phase
           ~ts:(s.Profiler.s_start *. 1e6) ~dur:(s.Profiler.s_dur *. 1e6) ~args:[]))
    samples;
  let meta =
    metadata ~pid:sim_pid ~name:"process_name" ~value:"simulation (virtual time)" ()
    :: metadata ~pid:prof_pid ~name:"process_name" ~value:"profiler (wall clock)" ()
    :: List.map
         (fun (lane, tid) ->
           metadata ~pid:sim_pid ~tid ~name:"thread_name" ~value:lane ())
         (lanes_sorted sim_lanes)
    @ List.map
        (fun (lane, tid) ->
          metadata ~pid:prof_pid ~tid ~name:"thread_name" ~value:lane ())
        (lanes_sorted prof_lanes)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.rev !rows));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
