(** Wall-clock phase profiler for the simulation hot paths.

    A process-wide registry of named {e phases}. Instrumented code brackets
    its hot sections with {!enter}/{!leave} (or the scoped {!record}) on a
    pre-registered phase handle; the profiler maintains per-phase counts,
    inclusive ("total") and exclusive ("self") wall-clock time, and minor-
    heap words allocated, using a frame stack so nested phases attribute
    correctly (e.g. [crypto.sha256] under [net.deliver] under
    [engine.fire]).

    Disabled (the default) the whole feature is one atomic-bool read per
    instrumented site and allocates nothing — measured in [bench/main.exe]
    and reported in [BENCH_fortress.json] under [profiler_overhead].

    {b Domains.} All mutable accumulation state (frame stack, per-phase
    counters, sample ring) is domain-local, so instrumented code may run
    concurrently on several domains — the situation created by
    [Fortress_par] when Monte-Carlo trials fan out — without locking on
    the hot path or racing. Reports ({!snapshot}, {!samples}) merge the
    per-domain states in a deterministic order: by {!set_merge_rank} rank
    first (the parallel executor tags each worker with its chunk index),
    then by state-creation order. Control operations ({!enable},
    {!disable}, {!reset}, {!set_sample_capacity}) and reports are meant
    to be called from the controlling domain while no workers run. Times
    here are {e wall-clock} seconds, deliberately distinct from the
    virtual-time spans of {!Fortress_obs.Span}: spans answer "how long did
    this take in the simulated world", the profiler answers "where does the
    simulator spend real CPU time". *)

type phase
(** A registered phase handle. Registration interns by name, so modules can
    register at initialization and share handles. *)

val register : string -> phase
(** [register name] returns the phase named [name], creating it on first
    use. Conventional names are dot-scoped: ["engine.fire"],
    ["net.send"], ["crypto.sha256"], ["mc.trial"]. *)

val phase_name : phase -> string

val is_enabled : unit -> bool
val enable : unit -> unit
(** Start profiling: clears the frame stack and stamps the sample-ring
    epoch. Counters accumulated earlier are kept (call {!reset} first for
    a fresh run). *)

val disable : unit -> unit
(** Stop profiling; open frames are discarded. *)

val reset : unit -> unit
(** Zero every phase's counters and drop collected samples. Registered
    handles stay valid. *)

val set_clock : (unit -> float) -> unit
(** Replace the clock (default [Unix.gettimeofday]) — for deterministic
    tests. *)

val enter : phase -> unit
(** Open a frame; no-op when disabled. *)

val leave : phase -> unit
(** Close the innermost frame if it belongs to this phase, attributing
    elapsed time and allocated words; a mismatched or spurious [leave] is
    ignored. No-op when disabled. *)

val record : phase -> (unit -> 'a) -> 'a
(** [record p f] runs [f] inside phase [p], exception-safely. When
    disabled, just calls [f]. *)

(** {1 Timeline samples}

    With a non-zero sample capacity, every finished frame is also logged as
    an individual (start, duration) sample in a bounded ring — the raw
    material for the Chrome-trace wall-clock lanes
    ({!Trace_export.make}). *)

type sample = {
  s_phase : string;
  s_start : float;  (** seconds since the enable/reset epoch *)
  s_dur : float;  (** seconds *)
}

val set_sample_capacity : int -> unit
(** Resize the sample ring ([0] — the default — disables sampling; the
    ring keeps the most recent [n] frames). Raises [Invalid_argument] on a
    negative capacity. *)

val samples : unit -> sample list
(** Collected samples: per-domain rings concatenated in merge-rank order,
    each ring oldest first. With a single domain this is simply oldest
    first. *)

val set_merge_rank : int -> unit
(** Tag the calling domain's profiler state with a merge rank. The
    parallel executor assigns each worker its deterministic chunk index so
    {!samples} and {!snapshot} merge domain states in partition order
    rather than domain-spawn order. The main domain defaults to rank 0. *)

(** {1 Reporting} *)

type entry = {
  name : string;
  count : int;
  total_s : float;  (** inclusive wall-clock seconds *)
  self_s : float;  (** exclusive wall-clock seconds *)
  self_minor_words : float;  (** minor words allocated, children excluded *)
}

val snapshot : unit -> entry list
(** Phases with at least one finished frame, sorted by self time,
    descending. *)

val table : unit -> Fortress_util.Table.t
val render : unit -> string

val to_json : unit -> Fortress_obs.Json.t
(** The snapshot as a JSON list — the ["phases"] section of
    [profile.json]. *)
