(** Chrome trace-event export ([trace.json]).

    Renders a recorded event stream and profiler timeline samples in the
    Trace Event Format understood by [chrome://tracing] and Perfetto's
    legacy-JSON importer ({{:https://ui.perfetto.dev} ui.perfetto.dev} →
    "Open trace file"). Two processes separate the two clocks: pid 1
    carries {!Fortress_obs.Event.Span_finished} spans in {e virtual}
    time, one thread lane per node (span attr ["node"], else the span
    name's prefix before the first ['.']) plus an ["events"] lane of
    [`Info]-level instants; pid 2 carries {!Profiler} wall-clock samples,
    one lane per phase scope.

    When the stream carries causal message spans (a [net.deliver] whose
    parent is a [net.send], as opened by the network layer under
    {!Fortress_sim.Engine.attach_causal}), each such edge additionally
    renders as a flow arrow (["ph":"s"]/["ph":"f"] pair bound by the
    deliver span's id) from the sender's lane to the receiver's lane.
    Streams without causal spans produce no flow events, so existing
    artifacts are unchanged. *)

val make :
  ?scale:float -> ?samples:Profiler.sample list -> (float * Fortress_obs.Event.t) list ->
  Fortress_obs.Json.t
(** [make events] builds the trace document
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] from timestamped
    events (as captured by {!Fortress_obs.Sink.memory}). [scale] converts
    virtual time units to trace microseconds (default [1e6]: one virtual
    unit renders as a second). [samples] adds profiler lanes (wall-clock
    seconds, scaled to microseconds). Lane ids are assigned in first-seen
    order, so the same stream always yields the same document. *)

val write : path:string -> Fortress_obs.Json.t -> unit
(** Serialize to [path] (trailing newline), closing the file even on
    error. *)
