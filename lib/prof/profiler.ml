module Table = Fortress_util.Table
module Json = Fortress_obs.Json

type phase = {
  p_name : string;
  mutable p_count : int;
  mutable p_total : float;
  mutable p_self : float;
  mutable p_self_words : float;
  mutable p_depth : int;  (** frames of this phase currently on the stack *)
}

type frame = {
  f_phase : phase;
  f_start : float;
  f_words : float;
  mutable f_child_time : float;
  mutable f_child_words : float;
}

type sample = { s_phase : string; s_start : float; s_dur : float }

(* The profiler is a process-wide singleton on purpose: the hot paths it
   brackets (engine dispatch, network delivery, crypto) are scattered
   across libraries that share no common context object, and threading one
   through every call chain would cost more than the feature. All state
   below is only touched when [enabled]; the disabled fast path is a
   single immediate [bool ref] read and performs no allocation. *)

let enabled = ref false
let registry : (string, phase) Hashtbl.t = Hashtbl.create 32
let order : phase list ref = ref []
let default_clock = Unix.gettimeofday
let clock = ref default_clock
let stack : frame list ref = ref []
let epoch = ref 0.0

(* bounded ring of finished-phase samples for the timeline export *)
let sample_cap = ref 0
let ring : sample array ref = ref [||]
let ring_next = ref 0
let ring_stored = ref 0

let is_enabled () = !enabled

let register name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
      let p =
        { p_name = name; p_count = 0; p_total = 0.0; p_self = 0.0; p_self_words = 0.0;
          p_depth = 0 }
      in
      Hashtbl.replace registry name p;
      order := !order @ [ p ];
      p

let phase_name p = p.p_name

let clear_counters () =
  List.iter
    (fun p ->
      p.p_count <- 0;
      p.p_total <- 0.0;
      p.p_self <- 0.0;
      p.p_self_words <- 0.0;
      p.p_depth <- 0)
    !order;
  stack := [];
  ring_next := 0;
  ring_stored := 0;
  epoch := !clock ()

let reset () = clear_counters ()

let enable () =
  if not !enabled then begin
    (* stale frames from a previous enabled period would mis-attribute
       time; start from a clean stack *)
    stack := [];
    epoch := !clock ();
    enabled := true
  end

let disable () =
  enabled := false;
  stack := []

let set_clock f = clock := f
let set_sample_capacity n =
  if n < 0 then invalid_arg "Profiler.set_sample_capacity: negative capacity";
  sample_cap := n;
  ring := (if n = 0 then [||] else Array.make n { s_phase = ""; s_start = 0.0; s_dur = 0.0 });
  ring_next := 0;
  ring_stored := 0

let samples () =
  let cap = !sample_cap in
  if cap = 0 || !ring_stored = 0 then []
  else begin
    let retained = min !ring_stored cap in
    let start = if !ring_stored <= cap then 0 else !ring_next in
    List.init retained (fun i -> !ring.((start + i) mod cap))
  end

let push_sample name ~start ~dur =
  let cap = !sample_cap in
  if cap > 0 then begin
    !ring.(!ring_next) <- { s_phase = name; s_start = start -. !epoch; s_dur = dur };
    ring_next := (!ring_next + 1) mod cap;
    incr ring_stored
  end

let enter p =
  if !enabled then begin
    p.p_depth <- p.p_depth + 1;
    stack :=
      { f_phase = p; f_start = !clock (); f_words = Gc.minor_words ();
        f_child_time = 0.0; f_child_words = 0.0 }
      :: !stack
  end

let leave p =
  if !enabled then
    match !stack with
    | f :: rest when f.f_phase == p ->
        stack := rest;
        let dt = !clock () -. f.f_start in
        let dw = Gc.minor_words () -. f.f_words in
        p.p_count <- p.p_count + 1;
        p.p_self <- p.p_self +. (dt -. f.f_child_time);
        p.p_self_words <- p.p_self_words +. (dw -. f.f_child_words);
        p.p_depth <- p.p_depth - 1;
        (* recursive re-entry would double-count inclusive time; only the
           outermost frame of a phase contributes to its total *)
        if p.p_depth = 0 then p.p_total <- p.p_total +. dt;
        (match rest with
        | parent :: _ ->
            parent.f_child_time <- parent.f_child_time +. dt;
            parent.f_child_words <- parent.f_child_words +. dw
        | [] -> ());
        push_sample p.p_name ~start:f.f_start ~dur:dt
    | _ -> () (* mismatched leave (exception unwound past a frame): drop it *)

let record p f =
  if !enabled then begin
    enter p;
    match f () with
    | v ->
        leave p;
        v
    | exception e ->
        leave p;
        raise e
  end
  else f ()

type entry = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  self_minor_words : float;
}

let snapshot () =
  List.filter_map
    (fun p ->
      if p.p_count = 0 then None
      else
        Some
          { name = p.p_name; count = p.p_count; total_s = p.p_total; self_s = p.p_self;
            self_minor_words = p.p_self_words })
    !order
  |> List.sort (fun a b -> compare b.self_s a.self_s)

let table () =
  let t =
    Table.create ~headers:[ "phase"; "count"; "self (s)"; "total (s)"; "self minor words" ]
  in
  Table.set_align t 0 Table.Left;
  List.iter
    (fun e ->
      Table.add_row t
        [
          e.name;
          string_of_int e.count;
          Printf.sprintf "%.6f" e.self_s;
          Printf.sprintf "%.6f" e.total_s;
          Printf.sprintf "%.0f" e.self_minor_words;
        ])
    (snapshot ());
  t

let render () = Table.render (table ())

let to_json () =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("phase", Json.Str e.name);
             ("count", Json.Num (float_of_int e.count));
             ("self_s", Json.Num e.self_s);
             ("total_s", Json.Num e.total_s);
             ("self_minor_words", Json.Num e.self_minor_words);
           ])
       (snapshot ()))
