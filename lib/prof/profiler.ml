module Table = Fortress_util.Table
module Json = Fortress_obs.Json

type phase = { p_id : int; p_name : string }

type counters = {
  mutable c_count : int;
  mutable c_total : float;
  mutable c_self : float;
  mutable c_self_words : float;
  mutable c_depth : int;  (** frames of this phase currently on this domain's stack *)
}

type frame = {
  f_phase : phase;
  f_counters : counters;
  f_start : float;
  f_words : float;
  mutable f_child_time : float;
  mutable f_child_words : float;
}

type sample = { s_phase : string; s_start : float; s_dur : float }

(* Per-domain accumulation state. The profiler stays a process-wide
   singleton (the hot paths it brackets share no common context object),
   but every mutable accumulator below is owned by exactly one domain via
   DLS, so parallel Monte-Carlo workers never contend or race: each domain
   has its own frame stack, its own counter row per phase, and its own
   bounded sample ring. Reports merge the domain states in a deterministic
   order — rank first (the parallel executor tags workers with their chunk
   index), then creation sequence — so exports are stable run to run. *)
type dstate = {
  d_seq : int;  (** creation order; the main domain's state is 0 *)
  mutable d_rank : int;  (** merge rank; defaults to [d_seq] *)
  mutable d_counters : counters array;  (** indexed by [p_id], grown on demand *)
  mutable d_stack : frame list;
  mutable d_ring : sample array;
  mutable d_ring_next : int;
  mutable d_ring_stored : int;
}

let enabled = Atomic.make false

(* Guards the phase registry and the domain-state list. Never taken on the
   enter/leave/record hot path, only at registration and report time. *)
let lock = Mutex.create ()
let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let by_name : (string, phase) Hashtbl.t = Hashtbl.create 32
let phase_order : phase list ref = ref []
let next_phase_id = ref 0

let states : dstate list ref = ref []
let next_state_seq = ref 0

let default_clock = Unix.gettimeofday
let clock = ref default_clock
let epoch = ref 0.0
let sample_cap = ref 0

let fresh_counters () =
  { c_count = 0; c_total = 0.0; c_self = 0.0; c_self_words = 0.0; c_depth = 0 }

let null_sample = { s_phase = ""; s_start = 0.0; s_dur = 0.0 }

let fresh_state () =
  locked (fun () ->
      let seq = !next_state_seq in
      incr next_state_seq;
      let st =
        {
          d_seq = seq;
          d_rank = seq;
          d_counters = [||];
          d_stack = [];
          d_ring = (if !sample_cap = 0 then [||] else Array.make !sample_cap null_sample);
          d_ring_next = 0;
          d_ring_stored = 0;
        }
      in
      states := !states @ [ st ];
      st)

let dls_key = Domain.DLS.new_key fresh_state
let my_state () = Domain.DLS.get dls_key
let set_merge_rank rank = (my_state ()).d_rank <- rank

let is_enabled () = Atomic.get enabled

let register name =
  locked (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some p -> p
      | None ->
          let p = { p_id = !next_phase_id; p_name = name } in
          incr next_phase_id;
          Hashtbl.replace by_name name p;
          phase_order := !phase_order @ [ p ];
          p)

let phase_name p = p.p_name

let counters_for st p =
  let n = Array.length st.d_counters in
  if p.p_id >= n then begin
    let size = max (p.p_id + 1) ((2 * n) + 8) in
    let grown = Array.init size (fun i -> if i < n then st.d_counters.(i) else fresh_counters ()) in
    st.d_counters <- grown
  end;
  st.d_counters.(p.p_id)

let zero_state st =
  Array.iter
    (fun c ->
      c.c_count <- 0;
      c.c_total <- 0.0;
      c.c_self <- 0.0;
      c.c_self_words <- 0.0;
      c.c_depth <- 0)
    st.d_counters;
  st.d_stack <- [];
  st.d_ring_next <- 0;
  st.d_ring_stored <- 0

let reset () =
  locked (fun () -> List.iter zero_state !states);
  epoch := !clock ()

let enable () =
  if not (Atomic.get enabled) then begin
    (* stale frames from a previous enabled period would mis-attribute
       time; start every domain from a clean stack *)
    locked (fun () -> List.iter (fun st -> st.d_stack <- []) !states);
    epoch := !clock ();
    Atomic.set enabled true
  end

let disable () =
  Atomic.set enabled false;
  locked (fun () -> List.iter (fun st -> st.d_stack <- []) !states)

let set_clock f = clock := f

let set_sample_capacity n =
  if n < 0 then invalid_arg "Profiler.set_sample_capacity: negative capacity";
  sample_cap := n;
  locked (fun () ->
      List.iter
        (fun st ->
          st.d_ring <- (if n = 0 then [||] else Array.make n null_sample);
          st.d_ring_next <- 0;
          st.d_ring_stored <- 0)
        !states)

let ordered_states () =
  List.sort (fun a b -> compare (a.d_rank, a.d_seq) (b.d_rank, b.d_seq)) !states

let state_samples st =
  let cap = Array.length st.d_ring in
  if cap = 0 || st.d_ring_stored = 0 then []
  else begin
    let retained = min st.d_ring_stored cap in
    let start = if st.d_ring_stored <= cap then 0 else st.d_ring_next in
    List.init retained (fun i -> st.d_ring.((start + i) mod cap))
  end

let samples () =
  locked (fun () -> List.concat_map state_samples (ordered_states ()))

let push_sample st name ~start ~dur =
  let cap = Array.length st.d_ring in
  if cap > 0 then begin
    st.d_ring.(st.d_ring_next) <- { s_phase = name; s_start = start -. !epoch; s_dur = dur };
    st.d_ring_next <- (st.d_ring_next + 1) mod cap;
    st.d_ring_stored <- st.d_ring_stored + 1
  end

let enter p =
  if Atomic.get enabled then begin
    let st = my_state () in
    let c = counters_for st p in
    c.c_depth <- c.c_depth + 1;
    st.d_stack <-
      { f_phase = p; f_counters = c; f_start = !clock (); f_words = Gc.minor_words ();
        f_child_time = 0.0; f_child_words = 0.0 }
      :: st.d_stack
  end

let leave p =
  if Atomic.get enabled then begin
    let st = my_state () in
    match st.d_stack with
    | f :: rest when f.f_phase.p_id = p.p_id ->
        st.d_stack <- rest;
        let dt = !clock () -. f.f_start in
        let dw = Gc.minor_words () -. f.f_words in
        let c = f.f_counters in
        c.c_count <- c.c_count + 1;
        c.c_self <- c.c_self +. (dt -. f.f_child_time);
        c.c_self_words <- c.c_self_words +. (dw -. f.f_child_words);
        c.c_depth <- c.c_depth - 1;
        (* recursive re-entry would double-count inclusive time; only the
           outermost frame of a phase contributes to its total *)
        if c.c_depth = 0 then c.c_total <- c.c_total +. dt;
        (match rest with
        | parent :: _ ->
            parent.f_child_time <- parent.f_child_time +. dt;
            parent.f_child_words <- parent.f_child_words +. dw
        | [] -> ());
        push_sample st p.p_name ~start:f.f_start ~dur:dt
    | _ -> () (* mismatched leave (exception unwound past a frame): drop it *)
  end

let record p f =
  if Atomic.get enabled then begin
    enter p;
    match f () with
    | v ->
        leave p;
        v
    | exception e ->
        leave p;
        raise e
  end
  else f ()

type entry = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  self_minor_words : float;
}

let snapshot () =
  locked (fun () ->
      let sts = ordered_states () in
      List.filter_map
        (fun p ->
          let count = ref 0 and total = ref 0.0 and self = ref 0.0 and words = ref 0.0 in
          List.iter
            (fun st ->
              if p.p_id < Array.length st.d_counters then begin
                let c = st.d_counters.(p.p_id) in
                count := !count + c.c_count;
                total := !total +. c.c_total;
                self := !self +. c.c_self;
                words := !words +. c.c_self_words
              end)
            sts;
          if !count = 0 then None
          else
            Some
              { name = p.p_name; count = !count; total_s = !total; self_s = !self;
                self_minor_words = !words })
        !phase_order)
  |> List.sort (fun a b -> compare b.self_s a.self_s)

let table () =
  let t =
    Table.create ~headers:[ "phase"; "count"; "self (s)"; "total (s)"; "self minor words" ]
  in
  Table.set_align t 0 Table.Left;
  List.iter
    (fun e ->
      Table.add_row t
        [
          e.name;
          string_of_int e.count;
          Printf.sprintf "%.6f" e.self_s;
          Printf.sprintf "%.6f" e.total_s;
          Printf.sprintf "%.0f" e.self_minor_words;
        ])
    (snapshot ());
  t

let render () = Table.render (table ())

let to_json () =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("phase", Json.Str e.name);
             ("count", Json.Num (float_of_int e.count));
             ("self_s", Json.Num e.self_s);
             ("total_s", Json.Num e.total_s);
             ("self_minor_words", Json.Num e.self_minor_words);
           ])
       (snapshot ()))
