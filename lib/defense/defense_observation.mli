(** What the defender saw by the time a controller boundary fires.

    The observation is assembled {e exclusively} from the telemetry
    plane's typed query API ({!Fortress_obs.Signal.latest} /
    [series] / [alarms]) — the defender reads its own detectors, never
    attacker-internal state, so everything here is operationally
    plausible: a real operator has exactly these dashboards. Assembly is
    pure (no PRNG consumption, no emitted events), so a strategy that
    observes but never acts leaves the trace bit-identical. *)

type reading = {
  raw : float;  (** the latest scored window's raw value *)
  ewma : float;
  cusum : float;  (** change-point statistic, pre-reset *)
  alarming : bool;  (** that window tripped the detector *)
}

type t = {
  step : int;  (** the 1-based controller step that just completed *)
  invalid_rate : reading option;  (** latest scored window per detector; [None] before the first window closes *)
  blocked_rate : reading option;
  crash_burst : reading option;
  staleness : reading option;
  alarms_invalid : int;  (** alarms newly fired since the previous boundary, per detector *)
  alarms_blocked : int;
  alarms_crash : int;
  alarms_staleness : int;
  alarms_total : int;
  windows_scored : int;  (** scored windows so far (staleness series length) *)
}

val assemble :
  step:int -> alarm_cursor:int -> Fortress_obs.Signal.t -> t * int
(** [assemble ~step ~alarm_cursor signal] builds the observation and
    returns the new cursor (total alarms seen); the caller threads the
    cursor between boundaries so each alarm is reported exactly once. *)

val alarming : reading option -> bool
(** Whether the latest window tripped — [false] when no window has been
    scored yet. *)

val pp : Format.formatter -> t -> unit
