module Markov = Fortress_model.Markov
module Matrix = Fortress_util.Matrix
module Table = Fortress_util.Table

type action = Hold | Shrink | Tighten | Recover

let actions = [ Hold; Shrink; Tighten; Recover ]

let action_name = function
  | Hold -> "hold"
  | Shrink -> "shrink"
  | Tighten -> "tighten"
  | Recover -> "recover"

type model = {
  base_hazard : float;
  threat_mult : float array;  (** 3: calm / elevated / attack *)
  stale_mult : float array;  (** 3: fresh / aging / stale *)
  shrink_relief : float;
  tighten_relief : float;
  recover_relief : float;
  threat_up : float;
  threat_down : float;
  tighten_calm : float;  (** multiplier on threat de-escalation while tightened *)
  recover_knockdown : float;  (** probability a recovery voids the attacker's foothold *)
  age : float;  (** staleness +1 probability when keys are left alone *)
  compromise_cost : float;
  shrink_cost : float;
  tighten_cost : float;
  recover_cost : float;
  stale_aging : float;  (** observation staleness (vt) mapping to level 1 *)
  stale_stale : float;  (** ... and to level 2 *)
  rate_elevated : float;  (** invalid-rate EWMA mapping to elevated threat *)
}

let default_model =
  {
    base_hazard = 0.003;
    threat_mult = [| 0.2; 1.0; 4.0 |];
    stale_mult = [| 1.0; 2.0; 5.0 |];
    shrink_relief = 0.6;
    tighten_relief = 0.4;
    recover_relief = 0.35;
    threat_up = 0.15;
    threat_down = 0.25;
    tighten_calm = 3.0;
    recover_knockdown = 0.5;
    age = 0.35;
    compromise_cost = 200.0;
    shrink_cost = 0.25;
    tighten_cost = 0.1;
    recover_cost = 0.45;
    stale_aging = 150.0;
    stale_stale = 300.0;
    rate_elevated = 0.02;
  }

let transient = 9  (* threat (3) x staleness (3) *)
let compromised = transient  (* the absorbing state *)
let state ~threat ~stale = (threat * 3) + stale
let threat_of s = s / 3
let stale_of s = s mod 3

let state_label s =
  if s = compromised then "compromised"
  else
    Printf.sprintf "%s/%s"
      [| "calm"; "elevated"; "attack" |].(threat_of s)
      [| "fresh"; "aging"; "stale" |].(stale_of s)

let hazard m s a =
  let relief =
    match a with
    | Hold -> 1.0
    | Shrink -> m.shrink_relief
    | Tighten -> m.tighten_relief
    | Recover -> m.recover_relief
  in
  Float.min 0.999
    (m.base_hazard *. m.threat_mult.(threat_of s) *. m.stale_mult.(stale_of s) *. relief)

let action_cost m = function
  | Hold -> 0.0
  | Shrink -> m.shrink_cost
  | Tighten -> m.tighten_cost
  | Recover -> m.recover_cost

(* Each action works an axis. Shrink resets staleness (an extra rekey —
   fresh keys); Recover knocks the threat down a level (redeployment
   voids the attacker's accumulated foothold) while freezing staleness;
   Tighten speeds threat de-escalation (burned sources throttle the
   probing that drives it); Hold lets both drift. *)
let threat_step m tau a =
  match a with
  | Recover ->
      if tau = 0 then [ (0, 1.0) ]
      else [ (tau - 1, m.recover_knockdown); (tau, 1.0 -. m.recover_knockdown) ]
  | Hold | Shrink | Tighten -> (
      let down =
        match a with
        | Tighten -> Float.min 0.9 (m.threat_down *. m.tighten_calm)
        | _ -> m.threat_down
      in
      match tau with
      | 0 -> [ (1, m.threat_up); (0, 1.0 -. m.threat_up) ]
      | 1 -> [ (2, m.threat_up); (0, down); (1, 1.0 -. m.threat_up -. down) ]
      | _ -> [ (1, down); (2, 1.0 -. down) ])

let stale_step m sigma a =
  match a with
  | Shrink -> [ (0, 1.0) ]
  | Recover -> [ (sigma, 1.0) ]
  | Hold | Tighten ->
      let aged = min (sigma + 1) 2 in
      if aged = sigma then [ (sigma, 1.0) ] else [ (aged, m.age); (sigma, 1.0 -. m.age) ]

(* Probability of reaching transient [s'] from [s] under [a], conditional
   on surviving the step. *)
let survive_step m s a =
  let moves = ref [] in
  List.iter
    (fun (tau', pt) ->
      List.iter
        (fun (sigma', ps) -> moves := (state ~threat:tau' ~stale:sigma', pt *. ps) :: !moves)
        (stale_step m (stale_of s) a))
    (threat_step m (threat_of s) a);
  !moves

type solution = {
  policy : action array;  (** indexed by transient state *)
  value : float array;  (** expected discounted cost under the policy *)
  gamma : float;
  iterations : int;
}

let solve ?(gamma = 0.95) ?(tol = 1e-9) ?(max_iter = 100_000) m =
  let v = Array.make transient 0.0 in
  let q s a =
    let p = hazard m s a in
    let future =
      List.fold_left (fun acc (s', pr) -> acc +. (pr *. v.(s'))) 0.0 (survive_step m s a)
    in
    action_cost m a +. (p *. m.compromise_cost) +. (gamma *. (1.0 -. p) *. future)
  in
  let iterations = ref 0 in
  let rec iterate n =
    if n >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to transient - 1 do
        let best = List.fold_left (fun acc a -> Float.min acc (q s a)) infinity actions in
        delta := Float.max !delta (Float.abs (best -. v.(s)));
        v.(s) <- best
      done;
      iterations := n + 1;
      if !delta > tol then iterate (n + 1)
    end
  in
  iterate 0;
  let policy =
    Array.init transient (fun s ->
        let _, best =
          List.fold_left
            (fun ((bq, _) as acc) a ->
              let qa = q s a in
              if qa < bq -. 1e-12 then (qa, a) else acc)
            (infinity, Hold) actions
        in
        best)
  in
  { policy; value = Array.copy v; gamma; iterations = !iterations }

(* The policy-induced absorbing chain: transient states plus "compromised",
   scored with the existing Markov machinery. *)
let chain m ~policy =
  let n = transient + 1 in
  let matrix =
    Matrix.init ~rows:n ~cols:n (fun i j ->
        if i = compromised then if j = compromised then 1.0 else 0.0
        else begin
          let a = policy i in
          let p = hazard m i a in
          if j = compromised then p
          else
            (1.0 -. p)
            *. List.fold_left
                 (fun acc (s', pr) -> if s' = j then acc +. pr else acc)
                 0.0 (survive_step m i a)
        end)
  in
  let labels = Array.init n state_label in
  let absorbing = Array.init n (fun i -> i = compromised) in
  Markov.create ~labels ~absorbing matrix

let expected_lifetime ?(start = state ~threat:0 ~stale:0) m ~policy =
  Markov.expected_steps (chain m ~policy) ~start

let optimal_lifetime ?start m =
  let sol = solve m in
  expected_lifetime ?start m ~policy:(fun s -> sol.policy.(s))

let static_lifetime ?start m = expected_lifetime ?start m ~policy:(fun _ -> Hold)

(* Map a defender observation onto the discretized state. Pure reads. *)
let discretize m (obs : Defense_observation.t) =
  let threat =
    if
      obs.Defense_observation.alarms_invalid > 0
      || obs.Defense_observation.alarms_blocked > 0
      || obs.Defense_observation.alarms_crash > 0
    then 2
    else
      match obs.Defense_observation.invalid_rate with
      | Some r when r.Defense_observation.ewma >= m.rate_elevated -> 1
      | _ -> 0
  in
  let stale =
    match obs.Defense_observation.staleness with
    | Some r when r.Defense_observation.raw >= m.stale_stale -> 2
    | Some r when r.Defense_observation.raw >= m.stale_aging -> 1
    | _ -> 0
  in
  state ~threat ~stale

(* Export the solved policy as a lookup-table controller strategy: each
   boundary discretizes the observation and stages the state's action
   (restores included — the apply step only emits when a setting actually
   moves, so repeated Hold boundaries stay silent). *)
let strategy ?(model = default_model) () =
  let sol = solve model in
  {
    Controller.Strategy.name = "mdp";
    describe = "lookup-table policy from the Kreidl-style value-iteration MDP";
    make =
      (fun ~defaults ->
        fun obs ->
          let restore_period = defaults.Controller.rekey_period in
          let restore_threshold = defaults.Controller.threshold in
          match sol.policy.(discretize model obs) with
          | Hold ->
              Defense_directive.make ~rekey_period:restore_period ~threshold:restore_threshold
                ()
          | Shrink ->
              Defense_directive.make
                ~rekey_period:(restore_period /. 2.0)
                ~threshold:restore_threshold ()
          | Tighten ->
              Defense_directive.make ~rekey_period:restore_period
                ~threshold:(min 1 restore_threshold) ()
          | Recover ->
              Defense_directive.make ~rekey_period:restore_period ~threshold:restore_threshold
                ~boost:Defense_directive.Recover_now ());
  }

let policy_table ?(model = default_model) (sol : solution) =
  let t = Table.create ~headers:[ "state"; "action"; "hazard"; "value" ] in
  Array.iteri
    (fun s a ->
      Table.add_row t
        [
          state_label s;
          action_name a;
          Printf.sprintf "%.4f" (hazard model s a);
          Printf.sprintf "%.2f" sol.value.(s);
        ])
    sol.policy;
  t
