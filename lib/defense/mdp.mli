(** A Kreidl-style MDP over the discretized defender signal state, solved
    by value iteration for a benchmark-optimal policy.

    The state space is the product of a {e threat} level (calm / elevated
    / attack — from the invalid-probe detectors) and a {e staleness}
    level (fresh / aging / stale — from the rekey-staleness detector),
    plus an absorbing {e compromised} state. Actions are the controller's
    actuator verbs: hold the schedule, shrink the rekey period, tighten
    the proxy suspicion threshold, or force a recovery. Value iteration
    minimizes expected discounted cost (action churn plus a large
    compromise penalty); the induced absorbing chain is scored with the
    existing {!Fortress_model.Markov} machinery, giving a model-level
    expected lifetime for any policy — the upper bound the heuristic
    controllers are compared against.

    Limits (DESIGN.md section 12): the model is a {e coarse abstraction} —
    threat drift and hazard multipliers are parameters, not estimates fit
    to the simulator, so the "optimal" policy is optimal for the model,
    and its simulated performance is an empirical question the 2x2 game
    answers. *)

type action = Hold | Shrink | Tighten | Recover

val actions : action list
val action_name : action -> string

type model = {
  base_hazard : float;  (** per-step compromise probability at calm/fresh under Hold *)
  threat_mult : float array;  (** 3: calm / elevated / attack *)
  stale_mult : float array;  (** 3: fresh / aging / stale *)
  shrink_relief : float;  (** hazard multiplier while shrinking *)
  tighten_relief : float;
  recover_relief : float;
  threat_up : float;  (** per-step threat escalation probability *)
  threat_down : float;
  tighten_calm : float;  (** multiplier on threat de-escalation while tightened *)
  recover_knockdown : float;  (** probability a recovery voids the attacker's foothold *)
  age : float;  (** staleness +1 probability when keys are left alone *)
  compromise_cost : float;
  shrink_cost : float;  (** rekey churn *)
  tighten_cost : float;  (** false positives on legitimate clients *)
  recover_cost : float;
  stale_aging : float;  (** observation staleness (vt) mapping to level 1 *)
  stale_stale : float;  (** ... and to level 2 *)
  rate_elevated : float;  (** invalid-rate EWMA mapping to elevated threat *)
}

val default_model : model

val transient : int
(** 9 — the transient state count; state [transient] is absorbing. *)

val state : threat:int -> stale:int -> int
val state_label : int -> string
val hazard : model -> int -> action -> float
(** Per-step compromise probability in state [s] under the action. *)

type solution = {
  policy : action array;  (** indexed by transient state *)
  value : float array;  (** expected discounted cost under the policy *)
  gamma : float;
  iterations : int;
}

val solve : ?gamma:float -> ?tol:float -> ?max_iter:int -> model -> solution
(** Value iteration to [tol] (default 1e-9) at discount [gamma]
    (default 0.95). *)

val chain : model -> policy:(int -> action) -> Fortress_model.Markov.t
(** The policy-induced absorbing chain over the 10 states. *)

val expected_lifetime : ?start:int -> model -> policy:(int -> action) -> float
(** {!Fortress_model.Markov.expected_steps} of the induced chain, from
    calm/fresh by default — the model-level EL benchmark. *)

val optimal_lifetime : ?start:int -> model -> float
val static_lifetime : ?start:int -> model -> float
(** The always-Hold policy — the model's image of the static defender. *)

val discretize : model -> Defense_observation.t -> int
(** Map an observation onto the discretized state (pure reads). *)

val strategy : ?model:model -> unit -> Controller.Strategy.t
(** The solved policy as a lookup-table strategy named ["mdp"]: each
    boundary discretizes the observation and stages the state's action
    (with restores for the untouched knobs — the apply step only emits
    when a setting actually moves). *)

val policy_table : ?model:model -> solution -> Fortress_util.Table.t
