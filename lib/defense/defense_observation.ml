module Signal = Fortress_obs.Signal

type reading = { raw : float; ewma : float; cusum : float; alarming : bool }

type t = {
  step : int;
  invalid_rate : reading option;
  blocked_rate : reading option;
  crash_burst : reading option;
  staleness : reading option;
  alarms_invalid : int;
  alarms_blocked : int;
  alarms_crash : int;
  alarms_staleness : int;
  alarms_total : int;
  windows_scored : int;
}

let reading_of_point (pt : Signal.point) =
  { raw = pt.Signal.raw; ewma = pt.Signal.ewma; cusum = pt.Signal.cusum; alarming = pt.Signal.alarm }

let kind_reading signal kind = Option.map reading_of_point (Signal.latest signal kind)

(* Count the alarms the query API has recorded past [cursor], per kind.
   [Signal.alarms] returns every alarm in firing order, so the slice past
   the cursor is exactly what fired since the previous boundary. *)
let count_new_alarms signal ~cursor =
  let all = Signal.alarms signal in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  let fresh = drop cursor all in
  let count k = List.length (List.filter (fun (kind, _) -> kind = k) fresh) in
  ( count Signal.Invalid_probe_rate,
    count Signal.Blocked_source_rate,
    count Signal.Crash_burst,
    count Signal.Rekey_staleness,
    List.length all )

let assemble ~step ~alarm_cursor signal =
  let alarms_invalid, alarms_blocked, alarms_crash, alarms_staleness, total =
    count_new_alarms signal ~cursor:alarm_cursor
  in
  ( {
      step;
      invalid_rate = kind_reading signal Signal.Invalid_probe_rate;
      blocked_rate = kind_reading signal Signal.Blocked_source_rate;
      crash_burst = kind_reading signal Signal.Crash_burst;
      staleness = kind_reading signal Signal.Rekey_staleness;
      alarms_invalid;
      alarms_blocked;
      alarms_crash;
      alarms_staleness;
      alarms_total = total - alarm_cursor;
      windows_scored = List.length (Signal.series signal Signal.Rekey_staleness);
    },
    total )

let alarming = function Some r -> r.alarming | None -> false

let pp ppf t =
  let r name = function
    | Some { raw; ewma; cusum; alarming } ->
        Printf.sprintf "%s raw %g ewma %g cusum %g%s" name raw ewma cusum
          (if alarming then "!" else "")
    | None -> Printf.sprintf "%s -" name
  in
  Format.fprintf ppf "step %d (%d windows): %s; %s; %s; %s; +%d alarms" t.step t.windows_scored
    (r "invalid" t.invalid_rate) (r "blocked" t.blocked_rate) (r "crash" t.crash_burst)
    (r "stale" t.staleness) t.alarms_total
