module Engine = Fortress_sim.Engine
module Signal = Fortress_obs.Signal
module Event = Fortress_obs.Event

type defaults = { rekey_period : float; threshold : int }

type actuator = {
  set_rekey_period : float -> unit;
  set_threshold : int -> unit;
  rekey_now : unit -> unit;
  recover_now : unit -> unit;
}

let null_actuator =
  {
    set_rekey_period = (fun _ -> ());
    set_threshold = (fun _ -> ());
    rekey_now = (fun () -> ());
    recover_now = (fun () -> ());
  }

module Strategy = struct
  type decide = Defense_observation.t -> Defense_directive.t

  type t = {
    name : string;
    describe : string;
    make : defaults:defaults -> decide;
        (** build a fresh decide function (with fresh internal state) for
            one deployment; [defaults] are the configured settings to
            restore when an override is lifted *)
  }

  let static =
    {
      name = "static";
      describe = "observes but never acts; bit-identical to the fixed schedule";
      make = (fun ~defaults:_ _obs -> Defense_directive.unchanged);
    }

  (* While staleness or probe-rate alarms fire, halve the rekey period and
     force an immediate rekey — the obfuscation epoch is provably behind
     (or the attacker is hammering), so fresh keys are cheap insurance.
     Restore the configured period after two quiet boundaries. *)
  let alarm_rekey =
    {
      name = "alarm-rekey";
      describe = "halves the rekey period (and rekeys at once) while staleness/probe-rate alarms fire";
      make =
        (fun ~defaults ->
          let shrunk = ref false and quiet = ref 0 in
          fun obs ->
            let firing =
              obs.Defense_observation.alarms_staleness > 0
              || obs.Defense_observation.alarms_invalid > 0
            in
            if firing then begin
              quiet := 0;
              if !shrunk then
                (* already shrunk: keep forcing boundaries while stale *)
                if obs.Defense_observation.alarms_staleness > 0 then
                  Defense_directive.make ~boost:Defense_directive.Rekey_now ()
                else Defense_directive.unchanged
              else begin
                shrunk := true;
                Defense_directive.make
                  ~rekey_period:(defaults.rekey_period /. 2.0)
                  ~boost:Defense_directive.Rekey_now ()
              end
            end
            else if !shrunk then begin
              incr quiet;
              if !quiet >= 2 then begin
                shrunk := false;
                quiet := 0;
                Defense_directive.make ~rekey_period:defaults.rekey_period ()
              end
              else Defense_directive.unchanged
            end
            else Defense_directive.unchanged);
    }

  (* Under blocked-source or invalid-probe bursts, drop the proxy
     suspicion threshold to 1 — sources are burned after two invalids in a
     window, cutting the attacker's effective kappa hard. Relax back to
     the configured threshold after three quiet boundaries (the cost of a
     tight threshold is false positives on legitimate bursty clients). *)
  let threshold_tightener =
    {
      name = "threshold-tightener";
      describe = "drops the proxy suspicion threshold under blocked/invalid bursts; relaxes on quiet";
      make =
        (fun ~defaults ->
          let tightened = ref false and quiet = ref 0 in
          fun obs ->
            let burst =
              obs.Defense_observation.alarms_blocked > 0
              || obs.Defense_observation.alarms_invalid > 0
            in
            if burst then begin
              quiet := 0;
              if !tightened then Defense_directive.unchanged
              else begin
                tightened := true;
                Defense_directive.make ~threshold:(min 1 defaults.threshold) ()
              end
            end
            else if !tightened then begin
              incr quiet;
              if !quiet >= 3 then begin
                tightened := false;
                quiet := 0;
                Defense_directive.make ~threshold:defaults.threshold ()
              end
              else Defense_directive.unchanged
            end
            else Defense_directive.unchanged);
    }

  let builtins = [ static; alarm_rekey; threshold_tightener ]
  let names = List.map (fun s -> s.name) builtins
  let find name = List.find_opt (fun s -> s.name = name) builtins
end

(* The live settings the actuator has been driven to. They start as copies
   of the defaults and move only when a staged directive is applied at a
   boundary, so a controller that never stages anything behaves — to the
   byte — like no controller at all. *)
type settings = { mutable rekey_period : float; mutable threshold : int }

type t = {
  engine : Engine.t;
  signal : Signal.t;
  name : string;
  defaults : defaults;
  actuator : actuator;
  eff : settings;
  decide : Strategy.decide;
  mutable staged : Defense_directive.t;
  mutable step : int;  (** completed controller boundaries *)
  mutable alarm_cursor : int;
  mutable applied : int;
}

let stage t directive =
  if not (Defense_directive.is_unchanged directive) then
    t.staged <- Defense_directive.merge t.staged directive

(* Fold the staged directive (if any) into the live settings and drive the
   actuator. Runs only at boundaries; emits one Directive event when — and
   only when — a setting actually moved or a boost fired. *)
let apply_staged t =
  let d = t.staged in
  t.staged <- Defense_directive.unchanged;
  if not (Defense_directive.is_unchanged d) then begin
    let changed = ref [] in
    let note what = changed := what :: !changed in
    (match d.Defense_directive.rekey_period with
    | Some p ->
        let p = Float.max 1.0 p in
        if p <> t.eff.rekey_period then begin
          t.eff.rekey_period <- p;
          t.actuator.set_rekey_period p;
          note (Printf.sprintf "rekey-period=%g" p)
        end
    | None -> ());
    (match d.Defense_directive.threshold with
    | Some k ->
        let k = max 1 k in
        if k <> t.eff.threshold then begin
          t.eff.threshold <- k;
          t.actuator.set_threshold k;
          note (Printf.sprintf "threshold=%d" k)
        end
    | None -> ());
    (match d.Defense_directive.boost with
    | Some Defense_directive.Rekey_now ->
        t.actuator.rekey_now ();
        note "rekey-now"
    | Some Defense_directive.Recover_now ->
        t.actuator.recover_now ();
        note "recover-now"
    | None -> ());
    if !changed <> [] then begin
      t.applied <- t.applied + 1;
      Engine.emit t.engine
        (Event.Directive
           {
             step = t.step;
             strategy = "defender:" ^ t.name;
             detail = String.concat ", " (List.rev !changed);
           })
    end
  end

(* observe -> decide -> stage -> apply, mirroring the attacker campaign's
   boundary mechanics: externally staged directives (tests, manual
   operators) merge with the strategy's own and everything lands at once. *)
let boundary t =
  let obs, cursor =
    Defense_observation.assemble ~step:(t.step + 1) ~alarm_cursor:t.alarm_cursor t.signal
  in
  t.alarm_cursor <- cursor;
  let d = t.decide obs in
  if not (Defense_directive.is_unchanged d) then stage t d;
  t.step <- t.step + 1;
  apply_staged t

let launch ~engine ~signal ~period ~defaults ~actuator (strategy : Strategy.t) =
  if period <= 0.0 then invalid_arg "Controller.launch: period must be positive";
  let t =
    {
      engine;
      signal;
      name = strategy.Strategy.name;
      defaults;
      actuator;
      eff = { rekey_period = defaults.rekey_period; threshold = defaults.threshold };
      decide = strategy.Strategy.make ~defaults;
      staged = Defense_directive.unchanged;
      step = 0;
      alarm_cursor = 0;
      applied = 0;
    }
  in
  ignore (Engine.every engine ~period (fun () -> boundary t));
  t

let name t = t.name
let defaults t = t.defaults
let settings t = { rekey_period = t.eff.rekey_period; threshold = t.eff.threshold }
let effective_rekey_period t = t.eff.rekey_period
let effective_threshold t = t.eff.threshold
let steps_completed t = t.step
let directives_applied t = t.applied
