type boost = Rekey_now | Recover_now

let boost_to_string = function Rekey_now -> "rekey-now" | Recover_now -> "recover-now"

type t = {
  rekey_period : float option;
  threshold : int option;
  boost : boost option;
}

let unchanged = { rekey_period = None; threshold = None; boost = None }
let is_unchanged d = d = unchanged
let make ?rekey_period ?threshold ?boost () = { rekey_period; threshold; boost }

let merge prev next =
  {
    rekey_period =
      (match next.rekey_period with Some _ as p -> p | None -> prev.rekey_period);
    threshold = (match next.threshold with Some _ as k -> k | None -> prev.threshold);
    boost = (match next.boost with Some _ as b -> b | None -> prev.boost);
  }

let to_string d =
  if is_unchanged d then "unchanged"
  else
    String.concat ", "
      (List.concat
         [
           (match d.rekey_period with
           | Some p -> [ Printf.sprintf "rekey-period=%g" p ]
           | None -> []);
           (match d.threshold with
           | Some k -> [ Printf.sprintf "threshold=%d" k ]
           | None -> []);
           (match d.boost with Some b -> [ boost_to_string b ] | None -> []);
         ])
