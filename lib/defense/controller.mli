(** The adaptive defender: an observe–decide–act loop closing the control
    loop the telemetry plane opened.

    The mirror of [Fortress_attack.Adaptive] on the defense side. Each
    controller boundary (aligned with the obfuscation period) a
    {!Defense_observation.t} is assembled from the {!Fortress_obs.Signal}
    query API — defender-visible detectors only — and handed to the
    strategy; non-trivial {!Defense_directive}s are staged and applied at
    the boundary through an {!actuator} of closures, so the controller
    module never needs to see the deployment it steers (the wiring lives
    in [Fortress_core.Defense_control]). Decisions never touch the engine
    mid-step, consume no PRNG, and emit events only when a setting
    actually moves, so

    - {!Strategy.static} is bit-identical to the fixed-schedule run (the
      regression anchor, same contract as the attacker's [oblivious]), and
    - every strategy is deterministic and job-count invariant. *)

type defaults = {
  rekey_period : float;  (** the configured obfuscation period *)
  threshold : int;  (** the configured proxy suspicion threshold *)
}

type actuator = {
  set_rekey_period : float -> unit;
  set_threshold : int -> unit;
  rekey_now : unit -> unit;  (** force an immediate obfuscation boundary *)
  recover_now : unit -> unit;  (** force an immediate recovery *)
}

val null_actuator : actuator
(** Every field a no-op — for tests exercising staging semantics alone. *)

module Strategy : sig
  type decide = Defense_observation.t -> Defense_directive.t

  type t = {
    name : string;  (** CLI name, e.g. ["alarm-rekey"] *)
    describe : string;  (** one-line help text *)
    make : defaults:defaults -> decide;
        (** build a fresh decide function (with fresh internal state) for
            one deployment; [defaults] are the configured settings to
            restore when an override is lifted *)
  }

  val static : t
  (** Observes but never acts. Bit-identical traces to the undefended
      fixed schedule — CI-pinned. *)

  val alarm_rekey : t
  (** While rekey-staleness or invalid-probe-rate alarms fire, halve the
      rekey period and force an immediate rekey; restore the configured
      period after two quiet boundaries. The counter to the attacker's
      [stale-key-rush]. *)

  val threshold_tightener : t
  (** Under blocked-source or invalid-probe alarms, drop the proxy
      suspicion threshold to 1 (sources burn after two invalid requests
      per window — effective kappa collapses); relax to the configured
      threshold after three quiet boundaries. *)

  val builtins : t list
  (** Heuristic built-ins only; [Mdp.strategy] adds the lookup-table
      policy. *)

  val names : string list
  val find : string -> t option
end

type t

val launch :
  engine:Fortress_sim.Engine.t ->
  signal:Fortress_obs.Signal.t ->
  period:float ->
  defaults:defaults ->
  actuator:actuator ->
  Strategy.t ->
  t
(** Arm the boundary loop: every [period] the controller observes,
    decides, and applies staged directives. The [signal] should be
    attached with alarms {e not} re-emitted onto the sink
    ([attach_telemetry ~alarms:false]) so attaching a controller that
    never acts leaves the trace byte-identical. *)

val stage : t -> Defense_directive.t -> unit
(** Stage a directive externally (tests, manual operators). Field-wise
    last-wins against anything already staged; applied only at the next
    boundary. *)

type settings = { mutable rekey_period : float; mutable threshold : int }

val settings : t -> settings
(** Snapshot of the live settings the actuator has been driven to. *)

val name : t -> string
val defaults : t -> defaults
val effective_rekey_period : t -> float
val effective_threshold : t -> int
val steps_completed : t -> int

val directives_applied : t -> int
(** Boundaries at which at least one setting actually moved (or a boost
    fired); each emitted one [Event.Directive] with strategy
    ["defender:<name>"]. *)
