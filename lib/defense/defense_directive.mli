(** What a defender strategy asks the controller to change.

    The mirror of the attacker's [Fortress_attack.Directive]: a sparse
    override where [None] fields leave the current setting alone.
    Directives are {e staged} when decided and {e applied} only at the
    next controller boundary with field-wise last-wins merging, so a
    mid-step decision can never perturb the schedule already armed for
    the step — the property that keeps defended trials deterministic and
    job-count invariant. *)

type boost = Rekey_now | Recover_now
    (** One-shot scheduling priority: force an immediate obfuscation
        boundary (fresh keys) or recovery (same keys) at the moment the
        directive is applied, ahead of the periodic schedule. *)

val boost_to_string : boost -> string

type t = {
  rekey_period : float option;
      (** new spacing of proactive-obfuscation boundaries *)
  threshold : int option;
      (** new proxy suspicion threshold — the knob behind the paper's
          effective kappa; ignored on deployments without proxies *)
  boost : boost option;
}

val unchanged : t
val is_unchanged : t -> bool
val make : ?rekey_period:float -> ?threshold:int -> ?boost:boost -> unit -> t

val merge : t -> t -> t
(** [merge prev next] — field-wise, [next] wins where it is [Some]. *)

val to_string : t -> string
