(** Ablations over FORTRESS design choices (DESIGN.md experiments A1-A4). *)

val proxy_count_table : ?kappa:float -> ?nps:int list -> ?points:int -> unit -> Fortress_util.Table.t
(** A1: EL of S2PO as the number of proxies varies (paper fixes np = 3). *)

val entropy_table :
  ?chis:int list -> ?omega:int -> ?trials:int -> ?jobs:int -> unit -> Fortress_util.Table.t
(** A2: probe-level S1SO/S0SO lifetimes under different key entropies —
    start-up-only randomization depletes small key spaces quickly.
    [jobs] fans the per-cell estimates over the domain pool; the table is
    identical at every job count. *)

val launchpad_table : ?alpha:float -> ?kappas:float list -> unit -> Fortress_util.Table.t
(** A3: S2PO under the three launch-pad disciplines, with the kappa
    crossover against S1PO for each. *)

val detection_table :
  ?thresholds:int list -> ?steps:int -> unit -> Fortress_util.Table.t
(** A4: run the packet-level attack campaign against a live FORTRESS
    deployment for several proxy detection thresholds and report the
    effective kappa the attacker achieved — the mechanism that justifies
    modelling indirect attacks at kappa * alpha. *)

val limited_diversity_table :
  ?alpha:float -> ?candidate_counts:int list -> ?trials:int -> unit -> Fortress_util.Table.t
(** A5: limited diversity (Sousa et al., paper section 2.3) — choosing at
    re-boot from a pre-compiled candidate set of size c interpolates
    between SO (c = 1) and PO (c -> infinity); the table shows the measured
    lifetime against both anchors. *)

val overhead_table : ?requests:int -> unit -> Fortress_util.Table.t
(** A6: the proxies' latency overhead on the fortified request path
    (section 2.2's "overhead is minimal" observation, measured in the
    protocol simulation). *)

val budget_split_table :
  ?total:float -> ?chi:float -> ?kappas:float list -> unit -> Fortress_util.Table.t
(** A7: the optimizing attacker — for each kappa, the best split of a
    single total probe budget between proxy capture and indirect attack,
    and the resulting worst-case lifetime against the per-channel-budget
    baseline the paper assumes. *)
