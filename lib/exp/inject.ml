module Controller = Fortress_defense.Controller
module Mdp = Fortress_defense.Mdp
module Adaptive = Fortress_attack.Adaptive
module Engine = Fortress_sim.Engine
module Plan = Fortress_faults.Plan
module Injector = Fortress_faults.Injector
module Trial = Fortress_mc.Trial
module Sink = Fortress_obs.Sink
module Timeline = Fortress_obs.Timeline
module Signal = Fortress_obs.Signal
module Latency = Fortress_obs.Latency
module Table = Fortress_util.Table
module Workload = Fortress_load.Workload

type config = {
  trials : int;
  chi : int;
  omega : int;
  kappa : float;
  max_steps : int;
  workload_period : float;
  seed : int;
  jobs : int;
  load : Workload.spec option;
      (** attach the {!Fortress_load.Workload} plane (open/closed-loop
          seeded load with latency accounting) to every trial; [None]
          (the default) keeps the run byte-identical to a load-free
          build *)
  telemetry : float option;
      (** window width (virtual time) for the pooled timeline; [None]
          (the default) keeps the run byte-identical to a telemetry-free
          build *)
  causal : bool;
      (** attach a causal trace context (plus an in-trial alarm-emitting
          telemetry plane) to every trial's engine and extract detection/
          reaction latency chains; off by default — the event stream is
          then byte-identical to a causal-free build *)
}

let default_config =
  {
    trials = 12;
    chi = 256;
    omega = 8;
    kappa = 0.5;
    max_steps = 400;
    workload_period = 20.0;
    seed = 1;
    jobs = 1;
    load = None;
    telemetry = None;
    causal = false;
  }

type run = {
  plan_name : string;
  el : Trial.result;
  requests_issued : int;
  requests_answered : int;
  availability : float option;
      (** answered / issued; [None] when the run issued no requests (the
          SMR path without [--load]) instead of a fabricated 1.0 *)
  load : Workload.stats option;
      (** workload-plane accounting (logical counts + latency histogram),
          merged over all trials in index order; present when
          {!config.load} was set *)
  faults : Injector.stats;  (** summed over all trials *)
  directives : int;  (** adaptive directives applied, summed over all trials *)
  defender_directives : int;
      (** defender directives applied, summed over all trials; 0 without a
          controller (and, by the static conformance contract, with the
          [static] one) *)
  digest : string;
  telemetry : (Timeline.t * Signal.t) option;
      (** pooled windowed timeline over every trial's replayed stream,
          present when {!config.telemetry} was set *)
  latency : Latency.t option;
      (** detection/reaction/stall-rekey chains merged over all trials in
          index order, present when {!config.causal} was set *)
}

let accumulate (acc : Injector.stats) (s : Injector.stats) =
  acc.Injector.dropped <- acc.Injector.dropped + s.Injector.dropped;
  acc.Injector.duplicated <- acc.Injector.duplicated + s.Injector.duplicated;
  acc.Injector.reordered <- acc.Injector.reordered + s.Injector.reordered;
  acc.Injector.corrupted <- acc.Injector.corrupted + s.Injector.corrupted;
  acc.Injector.delayed <- acc.Injector.delayed + s.Injector.delayed;
  acc.Injector.timeline_fired <- acc.Injector.timeline_fired + s.Injector.timeline_fired

(* One campaign under the plan: the attacker hunts the key while a benign
   client polls the service; the trial's lifetime is the campaign's, the
   availability sample is answered / issued over the same horizon. *)
(* With a trace id (cfg.causal), the trial additionally gets a causal
   span context — ids drawn from the trial's own block, so the pooled
   stream is job-count invariant — and its own alarm-emitting telemetry
   plane: the defender's sensing plane stays [~alarms:false] (the static
   byte-identity contract), so the alarms that detection latency is
   measured against must come from a separate, observation-only plane. *)
let attach_causal_plane engine = function
  | None -> None
  | Some trace_id ->
      ignore (Engine.attach_causal ~trace_id engine);
      let tl, _signals = Engine.attach_telemetry ~alarms:true engine in
      Some tl

(* One campaign on any stack implementing Stack_driver.S — the fortress
   and SMR trial bodies used to be near-duplicates of this function. The
   operation order is load-bearing for byte-identity with the historical
   per-stack code: sinks, causal plane, obfuscation, fault plan, defender,
   the default health-probe workload (fortress only), then the campaign.
   The [--load] workload plane attaches after the default client so a
   load-free run consumes exactly the historical PRNG stream. *)
let stack_trial (type s) (module D : Stack_driver.S with type t = s) ?strategy ?defender
    cfg plan ~digest ~record ~latency ~trace_id ~faults ~issued ~answered ~load_stats
    ~directives ~ddirectives ~seed =
  let period = 100.0 in
  let stack : s = D.make ~chi:cfg.chi ~seed in
  let engine = D.engine stack in
  ignore (Sink.attach (Engine.sink engine) digest);
  Option.iter (fun r -> ignore (Sink.attach (Engine.sink engine) r)) record;
  Option.iter (fun l -> ignore (Sink.attach (Engine.sink engine) l)) latency;
  let causal_tl = attach_causal_plane engine trace_id in
  D.start_obfuscation stack ~period;
  let plan_stats = D.install_plan stack plan ~seed in
  (* the defender arms after the obfuscation daemon, so at a shared
     boundary time the rekey lands (closing the telemetry window) before
     the controller observes it *)
  let defense = Option.map (fun s -> D.attach_defense stack s) defender in
  if D.default_workload then begin
    let client = D.new_client stack ~name:"workload" in
    let n = ref 0 in
    ignore
      (Engine.every engine ~period:cfg.workload_period (fun () ->
           incr n;
           incr issued;
           ignore
             (D.submit client
                ~cmd:(Printf.sprintf "get health%d" !n)
                ~on_response:(fun _ -> incr answered))))
  end;
  let load_handle =
    Option.map
      (fun spec -> Workload.attach (module D : Fortress_core.Stack_intf.S with type t = s and type client = D.client) stack ~seed spec)
      cfg.load
  in
  let lifetime =
    if cfg.omega = 0 then begin
      (* the no-attack baseline of the degradation surface: no campaign
         is launched (both campaign constructors reject omega = 0), the
         engine just runs the same virtual horizon the campaign would *)
      Engine.run ~until:(float_of_int cfg.max_steps *. period) (D.engine stack);
      None
    end
    else
      D.run_campaign ?strategy stack ~omega:cfg.omega ~kappa:cfg.kappa ~period
        ~seed:(seed + 7919) ~max_steps:cfg.max_steps ~directives
  in
  Option.iter
    (fun c -> ddirectives := !ddirectives + Controller.directives_applied c)
    defense;
  (match (load_handle, load_stats) with
  | Some h, Some acc ->
      let s = Workload.stats h in
      (* logical load requests join the availability denominator *)
      issued := !issued + s.Workload.issued;
      answered := !answered + s.Workload.answered;
      Workload.accumulate acc s
  | _ -> ());
  Option.iter Timeline.finish causal_tl;
  accumulate faults (plan_stats ());
  lifetime

(* The per-trial side channel filled in by whichever domain runs the
   trial: every cell is written by exactly one trial index, and the join
   reads them only after all workers complete, so the slots are race-free
   under the deterministic partition. *)
type trial_slot = {
  ts_digest : string;
  ts_faults : Injector.stats;
  ts_issued : int;
  ts_answered : int;
  ts_directives : int;
  ts_ddirectives : int;
  ts_replay : (Sink.t -> unit) option;
      (** the trial's buffered event stream, replayed at the join *)
  ts_latency : Latency.t option;
      (** the trial's extracted latency chains, merged at the join *)
  ts_load : Workload.stats option;
      (** the trial's workload-plane accounting, merged at the join *)
}

let run_plan_with trial ?sink ?(causal_offset = 0) cfg plan =
  let slots = Array.make cfg.trials None in
  (* Telemetry rides on the join-replay machinery: each trial records its
     engine's event stream into a private buffer, [on_join] replays the
     buffers into the shared sink in trial-index order, and the timeline
     subscribed there aggregates the pooled stream. Late events from
     later trials (virtual time restarts near 0 every trial) land in the
     retained window for their timestamp, so the pooled timeline — like
     everything else at the join — is independent of the job count. *)
  let sink, timeline =
    match cfg.telemetry with
    | None -> (sink, None)
    | Some width ->
        let s = match sink with Some s -> s | None -> Sink.create () in
        let tl = Timeline.create ~width () in
        let handle = Sink.attach s (Timeline.subscriber tl) in
        (Some s, Some (tl, handle))
  in
  (* Per-trial capture is lazy: the buffer is allocated and events are
     recorded only when the pooled stream has a consumer — a timeline, a
     trace writer, or any other subscriber on the shared sink. A bare run
     (no subscribers) skips buffer allocation and event capture entirely;
     the per-trial digest subscriber is unaffected either way. *)
  let capture =
    match sink with Some s -> Sink.subscriber_count s > 0 | None -> false
  in
  (* index-structural per-trial seeds (cfg.seed * 1000 + index), the same
     sequence the original sequential counter produced: every plan replays
     the same seed sequence, so deltas are paired comparisons, and every
     job count replays the same per-index seed, so parallel runs stay
     paired too *)
  let on_join =
    match sink with
    | Some s when capture ->
        Some
          (fun ~index ->
            match slots.(index - 1) with
            | Some { ts_replay = Some replay; _ } -> replay s
            | _ -> ())
    | _ -> None
  in
  let el =
    Trial.run_indexed ?sink ?on_join ~jobs:cfg.jobs ~trials:cfg.trials ~seed:cfg.seed
      ~sampler:(fun ~index _prng ->
        let digest, finalize = Sink.digesting () in
        let buffer = if capture then Some (Sink.buffered ()) else None in
        let latency = if cfg.causal then Some (Latency.collector ()) else None in
        let faults = Injector.fresh_stats () in
        let issued = ref 0 and answered = ref 0 in
        let directives = ref 0 and ddirectives = ref 0 in
        let load_stats = Option.map (fun _ -> Workload.fresh_stats ()) cfg.load in
        let lifetime =
          trial cfg plan ~digest ~record:(Option.map fst buffer)
            ~latency:(Option.map fst latency)
            ~trace_id:(if cfg.causal then Some (causal_offset + index) else None)
            ~faults ~issued ~answered ~load_stats ~directives ~ddirectives
            ~seed:((cfg.seed * 1000) + index)
        in
        slots.(index - 1) <-
          Some
            { ts_digest = finalize (); ts_faults = faults; ts_issued = !issued;
              ts_answered = !answered; ts_directives = !directives;
              ts_ddirectives = !ddirectives; ts_replay = Option.map snd buffer;
              ts_latency = Option.map (fun (_, fin) -> fin ()) latency;
              ts_load = load_stats };
        lifetime)
      ()
  in
  let faults = Injector.fresh_stats () in
  let issued = ref 0 and answered = ref 0 in
  let directives = ref 0 and ddirectives = ref 0 in
  let digests = ref [] in
  let load = Option.map (fun _ -> Workload.fresh_stats ()) cfg.load in
  (* fold the per-trial digests and counters in index order at the join *)
  Array.iter
    (function
      | None -> ()
      | Some s ->
          digests := s.ts_digest :: !digests;
          accumulate faults s.ts_faults;
          issued := !issued + s.ts_issued;
          answered := !answered + s.ts_answered;
          directives := !directives + s.ts_directives;
          ddirectives := !ddirectives + s.ts_ddirectives;
          (match (load, s.ts_load) with
          | Some acc, Some l -> Workload.accumulate acc l
          | _ -> ()))
    slots;
  let telemetry =
    Option.map
      (fun (tl, handle) ->
        Timeline.finish tl;
        (* score the pooled windows, appending alarms to the shared trace
           after the replayed streams; then detach so a later plan on the
           same sink cannot mutate this run's timeline *)
        let emit =
          Option.map (fun s -> fun ~time ev -> Sink.emit s ~time ev) sink
        in
        let signals = Signal.of_timeline ?emit tl in
        Option.iter (fun s -> Sink.detach s handle) sink;
        (tl, signals))
      timeline
  in
  let latency =
    if cfg.causal then
      Some
        (Latency.merge
           (Array.to_list slots
           |> List.filter_map (function
                | Some { ts_latency = Some l; _ } -> Some l
                | _ -> None)))
    else None
  in
  {
    plan_name = plan.Plan.name;
    el;
    requests_issued = !issued;
    requests_answered = !answered;
    availability =
      (if !issued = 0 then None
       else Some (float_of_int !answered /. float_of_int !issued));
    load;
    faults;
    directives = !directives;
    defender_directives = !ddirectives;
    digest = Sink.digest_lines (List.rev !digests);
    telemetry;
    latency;
  }

let run_plan ?sink ?causal_offset ?strategy ?defender cfg plan =
  run_plan_with
    (stack_trial (module Stack_driver.Fortress) ?strategy ?defender)
    ?sink ?causal_offset cfg plan

let run_smr_plan ?sink ?causal_offset ?strategy ?defender cfg plan =
  run_plan_with
    (stack_trial (module Stack_driver.Smr) ?strategy ?defender)
    ?sink ?causal_offset cfg plan

(* Option-typed availability rendering: [None] (nothing issued) prints as
   "n/a", and a delta exists only when both sides measured something. *)
let avail_str = function None -> "n/a" | Some a -> Printf.sprintf "%.3f" a

let davail_str a b =
  match (a, b) with
  | Some a, Some b -> Printf.sprintf "%+.3f" (b -. a)
  | _ -> "-"

let find_defender name =
  if name = "mdp" then Some (Mdp.strategy ()) else Controller.Strategy.find name

let defender_names = Controller.Strategy.names @ [ "mdp" ]

type adapt_row = {
  ar_plan : string;
  ar_oblivious_el : float;
  ar_adaptive_el : float;
  ar_delta : float;  (** adaptive minus oblivious; negative = attacker gained *)
  ar_directives : int;
}

type adapt = { strategy_name : string; rows : adapt_row list }

type defend_row = {
  dr_plan : string;
  dr_static_el : float;
  dr_defended_el : float;
  dr_delta : float;  (** defended minus static; positive = defender gained *)
  dr_static_avail : float option;
  dr_defended_avail : float option;
  dr_davail : float option;
      (** defended minus static; [None] when either side issued nothing *)
  dr_directives : int;  (** defender directives applied *)
}

type defend = { defender_name : string; drows : defend_row list }

type report = {
  config : config;
  baseline : run;
  runs : run list;
  adapt : adapt option;
  defend : defend option;
}

(* Mean EL treating an all-censored run as the horizon itself: a plan so
   gentle the system always survives is "at least max_steps". *)
let mean_el cfg (r : run) =
  if Float.is_nan r.el.Trial.mean then float_of_int cfg.max_steps else r.el.Trial.mean

let run ?sink ?strategy ?defender ?(stack = `Fortress) ?(config = default_config) ~plans ()
    =
  let run_plan ?sink ?causal_offset ?strategy ?defender cfg plan =
    match stack with
    | `Fortress -> run_plan ?sink ?causal_offset ?strategy ?defender cfg plan
    | `Smr -> run_smr_plan ?sink ?causal_offset ?strategy ?defender cfg plan
  in
  (* each plan run gets its own block of trace ids so causal span ids stay
     unique when several plans share one pooled trace sink *)
  let baseline = run_plan ?sink ~causal_offset:0 ?strategy ?defender config Plan.none in
  let runs =
    List.mapi
      (fun i plan ->
        run_plan ?sink ~causal_offset:((i + 1) * 1000) ?strategy ?defender config plan)
      plans
  in
  let adapt =
    match strategy with
    | None -> None
    | Some s ->
        let oblivious_el plan run =
          (* oblivious is byte-identical to the fixed schedule, so its own
             runs double as the reference; other strategies pay one extra
             fixed-schedule pass per plan (no sink: the trace was already
             exported by the strategy pass). The defender — if any — rides
             along in the reference too, so the comparison varies only the
             attacker. *)
          if s.Adaptive.Strategy.name = Adaptive.Strategy.oblivious.Adaptive.Strategy.name
          then mean_el config run
          else
            mean_el config
              (run_plan ?defender { config with telemetry = None; causal = false } plan)
        in
        let rows =
          List.map2
            (fun plan r ->
              let obl = oblivious_el plan r in
              let ada = mean_el config r in
              {
                ar_plan = r.plan_name;
                ar_oblivious_el = obl;
                ar_adaptive_el = ada;
                ar_delta = ada -. obl;
                ar_directives = r.directives;
              })
            (Plan.none :: plans) (baseline :: runs)
        in
        Some { strategy_name = s.Adaptive.Strategy.name; rows }
  in
  let defend =
    match defender with
    | None -> None
    | Some (d : Controller.Strategy.t) ->
        let reference plan run =
          (* static is byte-identical to the undefended path, so its own
             runs double as the reference; other defenders pay one extra
             undefended pass per plan — holding the attacker constant, so
             the comparison varies only the defender *)
          if d.Controller.Strategy.name = Controller.Strategy.static.Controller.Strategy.name
          then run
          else run_plan ?strategy { config with telemetry = None; causal = false } plan
        in
        let drows =
          List.map2
            (fun plan r ->
              let base = reference plan r in
              let s_el = mean_el config base and d_el = mean_el config r in
              {
                dr_plan = r.plan_name;
                dr_static_el = s_el;
                dr_defended_el = d_el;
                dr_delta = d_el -. s_el;
                dr_static_avail = base.availability;
                dr_defended_avail = r.availability;
                dr_davail =
                  (match (base.availability, r.availability) with
                  | Some b, Some d -> Some (d -. b)
                  | _ -> None);
                dr_directives = r.defender_directives;
              })
            (Plan.none :: plans) (baseline :: runs)
        in
        Some { defender_name = d.Controller.Strategy.name; drows }
  in
  { config; baseline; runs; adapt; defend }

let el_means report =
  List.map
    (fun r -> (r.plan_name, mean_el report.config r))
    (report.baseline :: report.runs)

let monotone_non_increasing report =
  let rec check = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && check rest
    | _ -> true
  in
  check (List.map snd (el_means report))

let table report =
  let t =
    Table.create
      ~headers:
        [ "plan"; "EL (steps)"; "ci95"; "dEL"; "censored"; "avail"; "davail"; "link faults";
          "timeline"; "trace digest" ]
  in
  let base_el = mean_el report.config report.baseline in
  let base_av = report.baseline.availability in
  let row (r : run) =
    let lo, hi = r.el.Trial.ci95 in
    let el = mean_el report.config r in
    Table.add_row t
      [
        r.plan_name;
        Printf.sprintf "%.1f" el;
        Printf.sprintf "[%.1f, %.1f]" lo hi;
        (if r == report.baseline then "-" else Printf.sprintf "%+.1f" (el -. base_el));
        string_of_int r.el.Trial.censored;
        avail_str r.availability;
        (if r == report.baseline then "-" else davail_str base_av r.availability);
        string_of_int (Injector.stats_total r.faults);
        string_of_int r.faults.Injector.timeline_fired;
        r.digest;
      ]
  in
  row report.baseline;
  List.iter row report.runs;
  t

let fault_breakdown report =
  let t =
    Table.create
      ~headers:[ "plan"; "dropped"; "duplicated"; "reordered"; "corrupted"; "delayed" ]
  in
  List.iter
    (fun (r : run) ->
      let s = r.faults in
      Table.add_row t
        [
          r.plan_name;
          string_of_int s.Injector.dropped;
          string_of_int s.Injector.duplicated;
          string_of_int s.Injector.reordered;
          string_of_int s.Injector.corrupted;
          string_of_int s.Injector.delayed;
        ])
    (report.baseline :: report.runs);
  t

let timeline_table (r : run) =
  Option.map (fun (tl, sg) -> Signal.table ~timeline:tl sg) r.telemetry

let timeline_alarm_table (r : run) =
  Option.map (fun (_, sg) -> Signal.alarm_table sg) r.telemetry

let latency_table (r : run) = Option.map Latency.table r.latency

(* Service quality under load, one row per plan: logical counts from the
   workload plane plus the latency tail (virtual-time quantiles from the
   merged per-trial histograms). Present only when the run carried a
   [--load] workload. *)
let load_table report =
  match report.baseline.load with
  | None -> None
  | Some _ ->
      let t =
        Table.create
          ~headers:
            [ "plan"; "issued"; "answered"; "timed out"; "physical"; "avail"; "p50";
              "p99"; "p999" ]
      in
      let quantile_str s q =
        match Workload.quantile s q with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "-"
      in
      let row (r : run) =
        Option.iter
          (fun (s : Workload.stats) ->
            Table.add_row t
              [
                r.plan_name;
                string_of_int s.Workload.issued;
                string_of_int s.Workload.answered;
                string_of_int s.Workload.timed_out;
                string_of_int s.Workload.submitted;
                avail_str (Workload.availability s);
                quantile_str s 0.5;
                quantile_str s 0.99;
                quantile_str s 0.999;
              ])
          r.load
      in
      row report.baseline;
      List.iter row report.runs;
      Some t

let adapt_table (a : adapt) =
  let t =
    Table.create
      ~headers:[ "plan"; "EL oblivious"; "EL adaptive"; "dEL"; "directives" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.ar_plan;
          Printf.sprintf "%.1f" r.ar_oblivious_el;
          Printf.sprintf "%.1f" r.ar_adaptive_el;
          Printf.sprintf "%+.1f" r.ar_delta;
          string_of_int r.ar_directives;
        ])
    a.rows;
  t

let defend_table (d : defend) =
  let t =
    Table.create
      ~headers:
        [ "plan"; "EL static"; "EL defended"; "dEL"; "avail static"; "avail defended";
          "davail"; "directives" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.dr_plan;
          Printf.sprintf "%.1f" r.dr_static_el;
          Printf.sprintf "%.1f" r.dr_defended_el;
          Printf.sprintf "%+.1f" r.dr_delta;
          avail_str r.dr_static_avail;
          avail_str r.dr_defended_avail;
          (match r.dr_davail with Some d -> Printf.sprintf "%+.3f" d | None -> "-");
          string_of_int r.dr_directives;
        ])
    d.drows;
  t

(* {2 The 2x2 attacker/defender game} *)

type game_cell = {
  gc_plan : string;
  gc_attacker : string;
  gc_defender : string;
  gc_el : float;
  gc_availability : float option;
  gc_attack_directives : int;
  gc_defense_directives : int;
}

type game = {
  game_config : config;
  cells : game_cell list;  (** plan-major, attacker then defender within *)
  mdp_optimal : float;  (** model-level EL of the value-iteration policy *)
  mdp_static : float;  (** model-level EL of always-Hold *)
}

(* The full cross: {oblivious, adaptive} attacker x {static, adaptive}
   defender over each plan, on paired seeds (every cell replays the same
   per-index seed sequence, so cell deltas are paired comparisons). The
   static/oblivious row and column double as the undefended references —
   no extra passes needed. *)
let run_game ?(config = default_config)
    ?(attackers = [ Adaptive.Strategy.oblivious; Adaptive.Strategy.stale_key_rush ])
    ?(defenders = [ Controller.Strategy.static; Controller.Strategy.alarm_rekey ]) ~plans
    () =
  let config = { config with telemetry = None; causal = false } in
  let cells =
    List.concat_map
      (fun plan ->
        List.concat_map
          (fun (attacker : Adaptive.Strategy.t) ->
            List.map
              (fun (defender : Controller.Strategy.t) ->
                let r = run_plan ~strategy:attacker ~defender config plan in
                {
                  gc_plan = r.plan_name;
                  gc_attacker = attacker.Adaptive.Strategy.name;
                  gc_defender = defender.Controller.Strategy.name;
                  gc_el = mean_el config r;
                  gc_availability = r.availability;
                  gc_attack_directives = r.directives;
                  gc_defense_directives = r.defender_directives;
                })
              defenders)
          attackers)
      plans
  in
  {
    game_config = config;
    cells;
    mdp_optimal = Mdp.optimal_lifetime Mdp.default_model;
    mdp_static = Mdp.static_lifetime Mdp.default_model;
  }

let game_table (g : game) =
  let t =
    Table.create
      ~headers:
        [ "plan"; "attacker"; "defender"; "EL (steps)"; "dEL"; "avail"; "davail";
          "atk dirs"; "def dirs" ]
  in
  (* deltas are against the static-defender cell for the same plan and
     attacker — the defender's marginal contribution, attacker held fixed *)
  let static_cell plan attacker =
    List.find_opt
      (fun c -> c.gc_plan = plan && c.gc_attacker = attacker && c.gc_defender = "static")
      g.cells
  in
  List.iter
    (fun c ->
      let base = static_cell c.gc_plan c.gc_attacker in
      let delta f = match base with Some b -> Printf.sprintf "%+.3g" (f c -. f b) | None -> "-" in
      Table.add_row t
        [
          c.gc_plan;
          c.gc_attacker;
          c.gc_defender;
          Printf.sprintf "%.1f" c.gc_el;
          (if c.gc_defender = "static" then "-" else delta (fun c -> c.gc_el));
          avail_str c.gc_availability;
          (if c.gc_defender = "static" then "-"
           else
             match base with
             | Some b -> davail_str b.gc_availability c.gc_availability
             | None -> "-");
          string_of_int c.gc_attack_directives;
          string_of_int c.gc_defense_directives;
        ])
    g.cells;
  t
