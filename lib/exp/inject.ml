module Deployment = Fortress_core.Deployment
module Smr_deployment = Fortress_core.Smr_deployment
module Obfuscation = Fortress_core.Obfuscation
module Client = Fortress_core.Client
module Smr_campaign = Fortress_attack.Smr_campaign
module Campaign = Fortress_attack.Campaign
module Adaptive = Fortress_attack.Adaptive
module Stats = Fortress_attack.Campaign_intf.Stats
module Keyspace = Fortress_defense.Keyspace
module Engine = Fortress_sim.Engine
module Plan = Fortress_faults.Plan
module Wiring = Fortress_faults.Wiring
module Smr_wiring = Fortress_faults.Smr_wiring
module Injector = Fortress_faults.Injector
module Trial = Fortress_mc.Trial
module Sink = Fortress_obs.Sink
module Timeline = Fortress_obs.Timeline
module Signal = Fortress_obs.Signal
module Table = Fortress_util.Table

type config = {
  trials : int;
  chi : int;
  omega : int;
  kappa : float;
  max_steps : int;
  workload_period : float;
  seed : int;
  jobs : int;
  telemetry : float option;
      (** window width (virtual time) for the pooled timeline; [None]
          (the default) keeps the run byte-identical to a telemetry-free
          build *)
}

let default_config =
  {
    trials = 12;
    chi = 256;
    omega = 8;
    kappa = 0.5;
    max_steps = 400;
    workload_period = 20.0;
    seed = 1;
    jobs = 1;
    telemetry = None;
  }

type run = {
  plan_name : string;
  el : Trial.result;
  requests_issued : int;
  requests_answered : int;
  availability : float;
  faults : Injector.stats;  (** summed over all trials *)
  directives : int;  (** adaptive directives applied, summed over all trials *)
  digest : string;
  telemetry : (Timeline.t * Signal.t) option;
      (** pooled windowed timeline over every trial's replayed stream,
          present when {!config.telemetry} was set *)
}

let accumulate (acc : Injector.stats) (s : Injector.stats) =
  acc.Injector.dropped <- acc.Injector.dropped + s.Injector.dropped;
  acc.Injector.duplicated <- acc.Injector.duplicated + s.Injector.duplicated;
  acc.Injector.reordered <- acc.Injector.reordered + s.Injector.reordered;
  acc.Injector.corrupted <- acc.Injector.corrupted + s.Injector.corrupted;
  acc.Injector.delayed <- acc.Injector.delayed + s.Injector.delayed;
  acc.Injector.timeline_fired <- acc.Injector.timeline_fired + s.Injector.timeline_fired

(* One campaign under the plan: the attacker hunts the key while a benign
   client polls the service; the trial's lifetime is the campaign's, the
   availability sample is answered / issued over the same horizon. *)
let one_trial ?strategy cfg plan ~digest ~record ~faults ~issued ~answered ~directives ~seed =
  let period = 100.0 in
  let deployment =
    Deployment.create
      { Deployment.default_config with keyspace = Keyspace.of_size cfg.chi; seed }
  in
  let engine = Deployment.engine deployment in
  ignore (Sink.attach (Engine.sink engine) digest);
  Option.iter (fun r -> ignore (Sink.attach (Engine.sink engine) r)) record;
  let obfuscation = Obfuscation.attach deployment ~mode:Obfuscation.PO ~period in
  let handle = Wiring.install plan ~deployment ~obfuscation ~seed () in
  let client = Deployment.new_client deployment ~name:"workload" in
  let n = ref 0 in
  ignore
    (Engine.every engine ~period:cfg.workload_period (fun () ->
         incr n;
         incr issued;
         ignore
           (Client.submit client
              ~cmd:(Printf.sprintf "get health%d" !n)
              ~on_response:(fun _ -> incr answered))));
  let attack_cfg =
    Campaign.make_config ~omega:cfg.omega ~kappa:cfg.kappa ~period ~seed:(seed + 7919) ()
  in
  let lifetime =
    match strategy with
    | None ->
        (* the legacy fixed-schedule path, kept separate so its byte-trace
           never depends on the adaptive plumbing *)
        let campaign = Campaign.launch deployment attack_cfg in
        Campaign.run_until_compromise campaign ~max_steps:cfg.max_steps
    | Some strategy ->
        let adaptive =
          Adaptive.launch deployment (Adaptive.make_config ~strategy attack_cfg)
        in
        let lifetime = Adaptive.run_until_compromise adaptive ~max_steps:cfg.max_steps in
        directives := !directives + (Adaptive.stats adaptive).Stats.directives_applied;
        lifetime
  in
  accumulate faults (Wiring.stats handle);
  lifetime

(* The S0 counterpart: the same plan folded onto the replica tier by
   Smr_wiring, the same paired seeds. S0 has no separate workload client
   here — EL is the quantity of interest — so availability reports 1. *)
let one_smr_trial ?strategy cfg plan ~digest ~record ~faults ~issued:_ ~answered:_ ~directives ~seed
    =
  let period = 100.0 in
  let deployment =
    Smr_deployment.create
      { Smr_deployment.default_config with keyspace = Keyspace.of_size cfg.chi; seed }
  in
  let engine = Smr_deployment.engine deployment in
  ignore (Sink.attach (Engine.sink engine) digest);
  Option.iter (fun r -> ignore (Sink.attach (Engine.sink engine) r)) record;
  let schedule = Smr_deployment.attach_schedule deployment ~mode:Obfuscation.PO ~period in
  let handle = Smr_wiring.install plan ~deployment ~schedule ~seed () in
  let attack_cfg = Smr_campaign.make_config ~omega:cfg.omega ~period ~seed:(seed + 7919) () in
  let lifetime =
    match strategy with
    | None ->
        let campaign = Smr_campaign.launch deployment attack_cfg in
        Smr_campaign.run_until_compromise campaign ~max_steps:cfg.max_steps
    | Some strategy ->
        let adaptive =
          Adaptive.Smr.launch deployment (Adaptive.Smr.make_config ~strategy attack_cfg)
        in
        let lifetime = Adaptive.Smr.run_until_compromise adaptive ~max_steps:cfg.max_steps in
        directives := !directives + (Adaptive.Smr.stats adaptive).Stats.directives_applied;
        lifetime
  in
  accumulate faults (Smr_wiring.stats handle);
  lifetime

(* The per-trial side channel filled in by whichever domain runs the
   trial: every cell is written by exactly one trial index, and the join
   reads them only after all workers complete, so the slots are race-free
   under the deterministic partition. *)
type trial_slot = {
  ts_digest : string;
  ts_faults : Injector.stats;
  ts_issued : int;
  ts_answered : int;
  ts_directives : int;
  ts_replay : (Sink.t -> unit) option;
      (** the trial's buffered event stream, replayed at the join *)
}

let run_plan_with trial ?sink cfg plan =
  let slots = Array.make cfg.trials None in
  (* Telemetry rides on the join-replay machinery: each trial records its
     engine's event stream into a private buffer, [on_join] replays the
     buffers into the shared sink in trial-index order, and the timeline
     subscribed there aggregates the pooled stream. Late events from
     later trials (virtual time restarts near 0 every trial) land in the
     retained window for their timestamp, so the pooled timeline — like
     everything else at the join — is independent of the job count. *)
  let sink, timeline =
    match cfg.telemetry with
    | None -> (sink, None)
    | Some width ->
        let s = match sink with Some s -> s | None -> Sink.create () in
        let tl = Timeline.create ~width () in
        let handle = Sink.attach s (Timeline.subscriber tl) in
        (Some s, Some (tl, handle))
  in
  (* index-structural per-trial seeds (cfg.seed * 1000 + index), the same
     sequence the original sequential counter produced: every plan replays
     the same seed sequence, so deltas are paired comparisons, and every
     job count replays the same per-index seed, so parallel runs stay
     paired too *)
  let on_join =
    match (timeline, sink) with
    | Some _, Some s ->
        Some
          (fun ~index ->
            match slots.(index - 1) with
            | Some { ts_replay = Some replay; _ } -> replay s
            | _ -> ())
    | _ -> None
  in
  let el =
    Trial.run_indexed ?sink ?on_join ~jobs:cfg.jobs ~trials:cfg.trials ~seed:cfg.seed
      ~sampler:(fun ~index _prng ->
        let digest, finalize = Sink.digesting () in
        let buffer =
          match timeline with None -> None | Some _ -> Some (Sink.buffered ())
        in
        let faults = Injector.fresh_stats () in
        let issued = ref 0 and answered = ref 0 and directives = ref 0 in
        let lifetime =
          trial cfg plan ~digest ~record:(Option.map fst buffer) ~faults ~issued ~answered
            ~directives
            ~seed:((cfg.seed * 1000) + index)
        in
        slots.(index - 1) <-
          Some
            { ts_digest = finalize (); ts_faults = faults; ts_issued = !issued;
              ts_answered = !answered; ts_directives = !directives;
              ts_replay = Option.map snd buffer };
        lifetime)
      ()
  in
  let faults = Injector.fresh_stats () in
  let issued = ref 0 and answered = ref 0 and directives = ref 0 in
  let digests = ref [] in
  (* fold the per-trial digests and counters in index order at the join *)
  Array.iter
    (function
      | None -> ()
      | Some s ->
          digests := s.ts_digest :: !digests;
          accumulate faults s.ts_faults;
          issued := !issued + s.ts_issued;
          answered := !answered + s.ts_answered;
          directives := !directives + s.ts_directives)
    slots;
  let telemetry =
    Option.map
      (fun (tl, handle) ->
        Timeline.finish tl;
        (* score the pooled windows, appending alarms to the shared trace
           after the replayed streams; then detach so a later plan on the
           same sink cannot mutate this run's timeline *)
        let emit =
          Option.map (fun s -> fun ~time ev -> Sink.emit s ~time ev) sink
        in
        let signals = Signal.of_timeline ?emit tl in
        Option.iter (fun s -> Sink.detach s handle) sink;
        (tl, signals))
      timeline
  in
  {
    plan_name = plan.Plan.name;
    el;
    requests_issued = !issued;
    requests_answered = !answered;
    availability =
      (if !issued = 0 then 1.0 else float_of_int !answered /. float_of_int !issued);
    faults;
    directives = !directives;
    digest = Sink.digest_lines (List.rev !digests);
    telemetry;
  }

let run_plan ?sink ?strategy cfg plan = run_plan_with (one_trial ?strategy) ?sink cfg plan

let run_smr_plan ?sink ?strategy cfg plan =
  run_plan_with (one_smr_trial ?strategy) ?sink cfg plan

type adapt_row = {
  ar_plan : string;
  ar_oblivious_el : float;
  ar_adaptive_el : float;
  ar_delta : float;  (** adaptive minus oblivious; negative = attacker gained *)
  ar_directives : int;
}

type adapt = { strategy_name : string; rows : adapt_row list }
type report = { config : config; baseline : run; runs : run list; adapt : adapt option }

(* Mean EL treating an all-censored run as the horizon itself: a plan so
   gentle the system always survives is "at least max_steps". *)
let mean_el cfg (r : run) =
  if Float.is_nan r.el.Trial.mean then float_of_int cfg.max_steps else r.el.Trial.mean

let run ?sink ?strategy ?(stack = `Fortress) ?(config = default_config) ~plans () =
  let run_plan ?sink ?strategy cfg plan =
    match stack with
    | `Fortress -> run_plan ?sink ?strategy cfg plan
    | `Smr -> run_smr_plan ?sink ?strategy cfg plan
  in
  let baseline = run_plan ?sink ?strategy config Plan.none in
  let runs = List.map (run_plan ?sink ?strategy config) plans in
  let adapt =
    match strategy with
    | None -> None
    | Some s ->
        let oblivious_el plan run =
          (* oblivious is byte-identical to the fixed schedule, so its own
             runs double as the reference; other strategies pay one extra
             fixed-schedule pass per plan (no sink: the trace was already
             exported by the strategy pass) *)
          if s.Adaptive.Strategy.name = Adaptive.Strategy.oblivious.Adaptive.Strategy.name
          then mean_el config run
          else mean_el config (run_plan { config with telemetry = None } plan)
        in
        let rows =
          List.map2
            (fun plan r ->
              let obl = oblivious_el plan r in
              let ada = mean_el config r in
              {
                ar_plan = r.plan_name;
                ar_oblivious_el = obl;
                ar_adaptive_el = ada;
                ar_delta = ada -. obl;
                ar_directives = r.directives;
              })
            (Plan.none :: plans) (baseline :: runs)
        in
        Some { strategy_name = s.Adaptive.Strategy.name; rows }
  in
  { config; baseline; runs; adapt }

let el_means report =
  List.map
    (fun r -> (r.plan_name, mean_el report.config r))
    (report.baseline :: report.runs)

let monotone_non_increasing report =
  let rec check = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && check rest
    | _ -> true
  in
  check (List.map snd (el_means report))

let table report =
  let t =
    Table.create
      ~headers:
        [ "plan"; "EL (steps)"; "ci95"; "dEL"; "censored"; "avail"; "davail"; "link faults";
          "timeline"; "trace digest" ]
  in
  let base_el = mean_el report.config report.baseline in
  let base_av = report.baseline.availability in
  let row (r : run) =
    let lo, hi = r.el.Trial.ci95 in
    let el = mean_el report.config r in
    Table.add_row t
      [
        r.plan_name;
        Printf.sprintf "%.1f" el;
        Printf.sprintf "[%.1f, %.1f]" lo hi;
        (if r == report.baseline then "-" else Printf.sprintf "%+.1f" (el -. base_el));
        string_of_int r.el.Trial.censored;
        Printf.sprintf "%.3f" r.availability;
        (if r == report.baseline then "-"
         else Printf.sprintf "%+.3f" (r.availability -. base_av));
        string_of_int (Injector.stats_total r.faults);
        string_of_int r.faults.Injector.timeline_fired;
        r.digest;
      ]
  in
  row report.baseline;
  List.iter row report.runs;
  t

let fault_breakdown report =
  let t =
    Table.create
      ~headers:[ "plan"; "dropped"; "duplicated"; "reordered"; "corrupted"; "delayed" ]
  in
  List.iter
    (fun (r : run) ->
      let s = r.faults in
      Table.add_row t
        [
          r.plan_name;
          string_of_int s.Injector.dropped;
          string_of_int s.Injector.duplicated;
          string_of_int s.Injector.reordered;
          string_of_int s.Injector.corrupted;
          string_of_int s.Injector.delayed;
        ])
    (report.baseline :: report.runs);
  t

let timeline_table (r : run) =
  Option.map (fun (tl, sg) -> Signal.table ~timeline:tl sg) r.telemetry

let timeline_alarm_table (r : run) =
  Option.map (fun (_, sg) -> Signal.alarm_table sg) r.telemetry

let adapt_table (a : adapt) =
  let t =
    Table.create
      ~headers:[ "plan"; "EL oblivious"; "EL adaptive"; "dEL"; "directives" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.ar_plan;
          Printf.sprintf "%.1f" r.ar_oblivious_el;
          Printf.sprintf "%.1f" r.ar_adaptive_el;
          Printf.sprintf "%+.1f" r.ar_delta;
          string_of_int r.ar_directives;
        ])
    a.rows;
  t
