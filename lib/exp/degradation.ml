module Engine = Fortress_sim.Engine
module Deployment = Fortress_core.Deployment
module Obfuscation = Fortress_core.Obfuscation
module Client = Fortress_core.Client
module Campaign = Fortress_attack.Campaign
module Keyspace = Fortress_defense.Keyspace
module Stats = Fortress_util.Stats
module Table = Fortress_util.Table

type point = {
  omega : int;
  offered : int;
  served : int;
  served_fraction : float;
  mean_rtt : float;
  survived_steps : int;
}

let run_one ~omega ~requests ~horizon ~chi ~seed =
  let period = 100.0 in
  let deployment =
    Deployment.create
      { Deployment.default_config with keyspace = Keyspace.of_size chi; seed }
  in
  let engine = Deployment.engine deployment in
  ignore (Obfuscation.attach deployment ~mode:Obfuscation.PO ~period);
  let client = Deployment.new_client deployment ~name:"workload" in
  let rtts = Stats.create () in
  let served = ref 0 in
  let interval = period *. float_of_int horizon /. float_of_int requests in
  for i = 0 to requests - 1 do
    ignore
      (Engine.schedule engine
         ~delay:(interval *. float_of_int i)
         (fun () ->
           let started = Engine.now engine in
           ignore
             (Client.submit client
                ~cmd:(Printf.sprintf "put k%d v" i)
                ~on_response:(fun _ ->
                  incr served;
                  Stats.add rtts (Engine.now engine -. started)))))
  done;
  let survived =
    if omega = 0 then begin
      Engine.run ~until:(period *. float_of_int horizon) engine;
      horizon
    end
    else begin
      let campaign =
        Campaign.launch deployment
          (Campaign.make_config ~omega ~kappa:0.8 ~period ~seed:(seed + 13) ())
      in
      match Campaign.run_until_compromise campaign ~max_steps:horizon with
      | Some step -> step
      | None -> horizon
    end
  in
  (* drain outstanding replies *)
  Engine.run ~until:(Engine.now engine +. (2.0 *. period)) engine;
  {
    omega;
    offered = requests;
    served = !served;
    served_fraction = float_of_int !served /. float_of_int requests;
    mean_rtt = Stats.mean rtts;
    survived_steps = survived;
  }

let run ?(omegas = [ 0; 8; 32; 128 ]) ?(requests = 100) ?(horizon = 30) ?(chi = 1 lsl 14)
    ?(seed = 3) () =
  List.map (fun omega -> run_one ~omega ~requests ~horizon ~chi ~seed) omegas

let table points =
  let t =
    Table.create
      ~headers:
        [ "attacker omega"; "offered"; "served"; "served %"; "mean RTT"; "survived steps" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.omega;
          string_of_int p.offered;
          string_of_int p.served;
          Printf.sprintf "%.0f%%" (100.0 *. p.served_fraction);
          Printf.sprintf "%.2f" p.mean_rtt;
          string_of_int p.survived_steps;
        ])
    points;
  t
