module Systems = Fortress_model.Systems
module Step_level = Fortress_mc.Step_level
module Probe_level = Fortress_mc.Probe_level
module Trial = Fortress_mc.Trial
module Table = Fortress_util.Table
module Sink = Fortress_obs.Sink

type line = {
  system : Systems.system;
  alpha : float;
  analytic : float;
  step_mc : Trial.result;
  probe_mc : Trial.result;
}

let run ?sink ?jobs ?(chi = 4096) ?(omega = 16) ?(kappa = 0.5) ?(trials = 400) ?systems () =
  let systems =
    match systems with Some s -> s | None -> Systems.all_systems
  in
  let probe_cfg = { Probe_level.default with chi; omega; kappa } in
  let alpha = Probe_level.alpha_of probe_cfg in
  let step_cfg = { Step_level.default with alpha; kappa } in
  List.map
    (fun system ->
      {
        system;
        alpha;
        analytic = Systems.expected_lifetime system ~alpha ~kappa;
        step_mc = Step_level.estimate ?sink ?jobs ~trials system step_cfg;
        probe_mc = Probe_level.estimate ?sink ?jobs ~trials system probe_cfg;
      })
    systems

let table lines =
  let t =
    Table.create
      ~headers:
        [ "system"; "alpha"; "analytic"; "step-MC"; "step ci95"; "probe-MC"; "probe ci95" ]
  in
  List.iter
    (fun l ->
      let ci r =
        let lo, hi = r.Trial.ci95 in
        Printf.sprintf "[%.3g, %.3g]" lo hi
      in
      Table.add_row t
        [
          Systems.system_to_string l.system;
          Printf.sprintf "%.3g" l.alpha;
          Printf.sprintf "%.4g" l.analytic;
          Printf.sprintf "%.4g" l.step_mc.Trial.mean;
          ci l.step_mc;
          Printf.sprintf "%.4g" l.probe_mc.Trial.mean;
          ci l.probe_mc;
        ])
    lines;
  t

type protocol_line = {
  pl_alpha : float;
  pl_kappa : float;
  campaign : Trial.result;
  pl_probe : Trial.result;
  pl_analytic : float;
}

let campaign_lifetime ?sink ~chi ~omega ~kappa ~seed () =
  let module Deployment = Fortress_core.Deployment in
  let module Obfuscation = Fortress_core.Obfuscation in
  let module Campaign = Fortress_attack.Campaign in
  let module Proxy = Fortress_core.Proxy in
  let period = 100.0 in
  let deployment =
    Deployment.create
      {
        Deployment.default_config with
        keyspace = Fortress_defense.Keyspace.of_size chi;
        seed;
        (* detection off: the model's kappa is the attacker's rate, and we
           want to validate the rate -> lifetime law, not the detector *)
        proxy = { Proxy.default_config with detection_threshold = max_int - 1 };
      }
  in
  (* splice the deployment's own event stream into the caller's sink, so
     one JSONL trace covers every trial of a validation run *)
  (match sink with
  | None -> ()
  | Some downstream ->
      ignore
        (Sink.attach
           (Fortress_sim.Engine.sink (Deployment.engine deployment))
           (Sink.forward downstream)));
  ignore (Obfuscation.attach deployment ~mode:Obfuscation.PO ~period);
  let campaign =
    Campaign.launch deployment
      (Campaign.make_config ~omega ~kappa ~period ~seed:(seed + 7919) ())
  in
  Campaign.run_until_compromise campaign ~max_steps:10_000

let protocol ?sink ?jobs ?(trials = 60) ?(chi = 256) ?(omega = 8) ?(kappa = 0.5) ?(seed = 1)
    () =
  let alpha = float_of_int omega /. float_of_int chi in
  let campaign =
    (* index-structural per-trial seeds (seed * 1000 + index, matching the
       original sequential counter); each trial's engine events go into a
       private buffer that the join replays into the shared sink in trial
       order, so the JSONL trace is byte-identical at every job count *)
    let replays = Array.make trials None in
    Trial.run_indexed ?sink ?jobs ~trials ~seed
      ~on_join:(fun ~index ->
        match (sink, replays.(index - 1)) with
        | Some downstream, Some replay -> replay downstream
        | _ -> ())
      ~sampler:(fun ~index _prng ->
        let trial_seed = (seed * 1000) + index in
        match sink with
        | None -> campaign_lifetime ~chi ~omega ~kappa ~seed:trial_seed ()
        | Some _ ->
            let local = Sink.create () in
            let sub, replay = Sink.buffered () in
            ignore (Sink.attach local sub);
            replays.(index - 1) <- Some replay;
            campaign_lifetime ~sink:local ~chi ~omega ~kappa ~seed:trial_seed ())
      ()
  in
  let probe_cfg = { Probe_level.default with chi; omega; kappa; max_steps = 10_000 } in
  let pl_probe =
    Probe_level.estimate ?jobs ~trials:(4 * trials) ~seed Systems.S2_PO probe_cfg
  in
  { pl_alpha = alpha; pl_kappa = kappa; campaign; pl_probe;
    pl_analytic = Systems.s2_po ~alpha ~kappa () }

let protocol_table line =
  let t =
    Table.create ~headers:[ "tier"; "expected lifetime"; "ci95"; "n" ]
  in
  let ci r =
    let lo, hi = r.Trial.ci95 in
    Printf.sprintf "[%.1f, %.1f]" lo hi
  in
  Table.add_row t
    [ "packet-level campaign"; Printf.sprintf "%.1f" line.campaign.Trial.mean;
      ci line.campaign; string_of_int line.campaign.Trial.trials ];
  Table.add_row t
    [ "probe-level sampler"; Printf.sprintf "%.1f" line.pl_probe.Trial.mean;
      ci line.pl_probe; string_of_int line.pl_probe.Trial.trials ];
  Table.add_row t [ "analytic S2PO law"; Printf.sprintf "%.1f" line.pl_analytic; "-"; "-" ];
  t

let protocol_agrees line =
  let lo, hi = line.campaign.Trial.ci95 in
  let margin = 0.25 *. line.pl_analytic in
  let plo, phi = line.pl_probe.Trial.ci95 in
  line.pl_analytic > lo -. margin
  && line.pl_analytic < hi +. margin
  && plo < hi +. margin
  && lo -. margin < phi

let max_relative_error lines =
  List.fold_left
    (fun acc l ->
      if Float.is_nan l.step_mc.Trial.mean || l.analytic = 0.0 then acc
      else Float.max acc (Float.abs (l.step_mc.Trial.mean -. l.analytic) /. l.analytic))
    0.0 lines
