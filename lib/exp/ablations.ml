module Systems = Fortress_model.Systems
module Table = Fortress_util.Table
module Probe_level = Fortress_mc.Probe_level
module Trial = Fortress_mc.Trial
module Deployment = Fortress_core.Deployment
module Proxy = Fortress_core.Proxy
module Obfuscation = Fortress_core.Obfuscation
module Campaign = Fortress_attack.Campaign
module Keyspace = Fortress_defense.Keyspace

let sci v = Printf.sprintf "%.3g" v

let proxy_count_table ?(kappa = 0.5) ?(nps = [ 1; 2; 3; 4; 5; 6 ]) ?points () =
  let headers = "alpha" :: List.map (fun np -> Printf.sprintf "np=%d" np) nps in
  let table = Table.create ~headers in
  List.iter
    (fun alpha ->
      Table.add_row table
        (sci alpha :: List.map (fun np -> sci (Systems.s2_po ~np ~alpha ~kappa ())) nps))
    (Sweep.alpha_grid ?points ());
  table

let entropy_table ?(chis = [ 1 lsl 10; 1 lsl 12; 1 lsl 14 ]) ?(omega = 16) ?(trials = 200)
    ?jobs () =
  let table =
    Table.create ~headers:[ "chi"; "alpha=omega/chi"; "S1SO EL"; "S0SO EL"; "S1SO/S0SO" ]
  in
  List.iter
    (fun chi ->
      let cfg = { Probe_level.default with chi; omega; max_steps = 100 * chi / omega } in
      let s1 = Probe_level.estimate ?jobs ~trials Systems.S1_SO cfg in
      let s0 = Probe_level.estimate ?jobs ~trials Systems.S0_SO cfg in
      Table.add_row table
        [
          string_of_int chi;
          sci (Probe_level.alpha_of cfg);
          sci s1.Trial.mean;
          sci s0.Trial.mean;
          sci (s1.Trial.mean /. s0.Trial.mean);
        ])
    chis;
  table

let launchpad_table ?(alpha = 0.005) ?(kappas = Sweep.paper_kappas) () =
  let disciplines =
    [ ("remaining", Systems.Remaining); ("full", Systems.Full); ("next-step", Systems.Next_step) ]
  in
  let table =
    Table.create
      ~headers:("kappa" :: List.map fst disciplines @ [ "S1PO (reference)" ])
  in
  List.iter
    (fun kappa ->
      Table.add_row table
        (sci kappa
         :: List.map (fun (_, lp) -> sci (Systems.s2_po ~launchpad:lp ~alpha ~kappa ())) disciplines
        @ [ sci (Systems.s1_po ~alpha) ]))
    kappas;
  (* crossover row: the kappa at which each discipline stops beating S1PO *)
  let crossover lp =
    let s1 = Systems.s1_po ~alpha in
    let gap kappa = Systems.s2_po ~launchpad:lp ~alpha ~kappa () -. s1 in
    if gap 1.0 >= 0.0 then 1.0
    else begin
      let lo = ref 0.0 and hi = ref 1.0 in
      for _ = 1 to 60 do
        let mid = (!lo +. !hi) /. 2.0 in
        if gap mid > 0.0 then lo := mid else hi := mid
      done;
      !lo
    end
  in
  Table.add_row table
    ("kappa*"
     :: List.map (fun (_, lp) -> Printf.sprintf "%.4f" (crossover lp)) disciplines
    @ [ "-" ]);
  table

let limited_diversity_table ?(alpha = 0.005) ?(candidate_counts = [ 1; 2; 4; 8; 16; 64 ])
    ?(trials = 2000) () =
  let module Limited = Fortress_mc.Limited in
  let so = Systems.s1_so ~alpha in
  let po = Systems.s1_po ~alpha in
  let table =
    Table.create ~headers:[ "candidates"; "EL (MC)"; "S1SO anchor"; "S1PO anchor"; "position" ]
  in
  List.iter
    (fun candidates ->
      let el =
        Limited.expected_lifetime ~trials { Limited.default with alpha; candidates }
      in
      let position = (el -. so) /. (po -. so) in
      Table.add_row table
        [
          string_of_int candidates;
          sci el;
          sci so;
          sci po;
          Printf.sprintf "%.2f" position;
        ])
    candidate_counts;
  table

let overhead_table ?requests () = Overhead.table (Overhead.compare_tiers ?requests ())

let budget_split_table ?(total = 256.0) ?(chi = 65536.0) ?(kappas = Sweep.paper_kappas) () =
  let table =
    Table.create
      ~headers:[ "kappa"; "optimal direct fraction"; "worst-case EL"; "paper-model EL (same omega)" ]
  in
  (* the comparable per-channel model gives each of the np+1 channels the
     full per-channel budget omega = total / (np + 1) *)
  let np = 3 in
  let omega = total /. float_of_int (np + 1) in
  let alpha = omega /. chi in
  List.iter
    (fun kappa ->
      let x_star, worst = Systems.s2_po_worst_case ~np ~total ~chi ~kappa () in
      Table.add_row table
        [
          sci kappa;
          Printf.sprintf "%.3f" x_star;
          sci worst;
          sci (Systems.s2_po ~np ~alpha ~kappa ());
        ])
    kappas;
  table

let detection_table ?(thresholds = [ 2; 5; 10; 50; 1000 ]) ?(steps = 15) () =
  let table =
    Table.create
      ~headers:
        [
          "threshold"; "indirect sent"; "indirect blocked"; "sources burned"; "effective kappa";
        ]
  in
  List.iter
    (fun threshold ->
      let deployment =
        Deployment.create
          {
            Deployment.default_config with
            keyspace = Keyspace.of_size (1 lsl 14);
            proxy = { Proxy.default_config with detection_threshold = threshold };
            seed = 7;
          }
      in
      let _sched = Obfuscation.attach deployment ~mode:Obfuscation.PO ~period:100.0 in
      let campaign =
        Campaign.launch deployment
          (Campaign.make_config ~omega:32 ~kappa:1.0 ~period:100.0 ~seed:11 ())
      in
      ignore (Campaign.run_until_compromise campaign ~max_steps:steps);
      let stats = Campaign.stats campaign in
      Table.add_row table
        [
          string_of_int threshold;
          string_of_int stats.Fortress_attack.Campaign_intf.Stats.indirect_probes_sent;
          string_of_int stats.Fortress_attack.Campaign_intf.Stats.indirect_probes_blocked;
          string_of_int stats.Fortress_attack.Campaign_intf.Stats.sources_burned;
          Printf.sprintf "%.3f" (Campaign.effective_kappa campaign);
        ])
    thresholds;
  table
