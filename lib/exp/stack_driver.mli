(** The experiment loop's view of a stack: {!Fortress_core.Stack_intf.S}
    plus the five construction hooks {!Inject} needs to run one trial —
    build at a key-space size, start the obfuscation schedule, fold a
    fault plan on, arm a defender, and run the attack campaign. The two
    implementations pin down everything stack-specific that used to live
    in duplicated per-stack trial functions; {!Inject} is written once
    against [S]. *)

module type S = sig
  include Fortress_core.Stack_intf.S

  val make : chi:int -> seed:int -> t
  (** A fresh deployment at key-space size [chi], engine seeded with
      [seed]. *)

  val start_obfuscation : t -> period:float -> unit
  (** Attach the stack's proactive-obfuscation schedule (PO mode) — the
      fortress {!Fortress_core.Obfuscation} daemon, or the SMR batched
      schedule. Must run before {!install_plan}. *)

  val install_plan : t -> Fortress_faults.Plan.t -> seed:int -> unit -> Fortress_faults.Injector.stats
  (** Fold the fault plan onto the stack; the returned thunk reads the
      injector's statistics (call it after the run). *)

  val attach_defense :
    t -> Fortress_defense.Controller.Strategy.t -> Fortress_defense.Controller.t

  val default_workload : bool
  (** Whether {!Inject} arms its periodic health-probe client on this
      stack (the historical fortress behaviour; the SMR path measures EL
      only unless an explicit [--load] workload is attached). *)

  val run_campaign :
    ?strategy:Fortress_attack.Adaptive.Strategy.t ->
    t ->
    omega:int ->
    kappa:float ->
    period:float ->
    seed:int ->
    max_steps:int ->
    directives:int ref ->
    int option
  (** Run the stack's attack campaign to compromise or [max_steps];
      adds any adaptive directives applied to [directives]. [kappa] is
      ignored by stacks without an indirect-probe channel (SMR). *)
end

module Fortress : S
module Smr : S
