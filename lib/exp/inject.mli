(** Fault-injection campaigns: expected lifetime and availability under the
    built-in fault plans, against a fault-free baseline.

    Every plan replays the same per-trial seed sequence — derived from the
    trial index, never from execution order — so the reported deltas are
    paired comparisons: the organic randomness (latencies, key draws,
    attacker behaviour) is identical across plans, and only the injected
    faults differ. Each trial folds its full event trace — including every
    injected-fault event — into an FNV-1a digest, and the run digest folds
    the per-trial digests in trial-index order; identical (plan, seed,
    config) reproduce it bit for bit, at any job count.

    Passing [?strategy] swaps the fixed-schedule attacker for the
    {!Fortress_attack.Adaptive} observe–decide–act loop; the report then
    carries an {!adapt} section comparing the strategy against the
    oblivious reference on the same paired seeds. Passing [?defender]
    symmetrically arms a {!Fortress_defense.Controller} over the trial's
    telemetry plane (wired by {!Fortress_core.Defense_control}); the
    report then carries a {!defend} section against the static reference.
    {!run_game} runs the full attacker x defender cross. *)

type config = {
  trials : int;
  chi : int;  (** key-space size *)
  omega : int;  (** probes per channel per step *)
  kappa : float;
  max_steps : int;  (** campaign horizon in unit time-steps *)
  workload_period : float;  (** one availability probe every this many time units *)
  seed : int;
  jobs : int;  (** trial-level parallelism; results are job-count invariant *)
  load : Fortress_load.Workload.spec option;
      (** when [Some spec], attach the {!Fortress_load.Workload} plane —
          a seeded open- or closed-loop generator with batch-weighted
          latency accounting — to every trial, on either stack; its
          logical requests join the availability denominator. [None]
          (the default) attaches nothing and leaves every output
          byte-identical to a load-free build. *)
  telemetry : float option;
      (** when [Some width], pool every trial's event stream (replayed at
          the join in trial-index order via [Sink.buffered]) into a
          {!Fortress_obs.Timeline} of [width]-wide windows and score the
          defender signals over it; [None] (the default) attaches nothing
          and leaves every output byte-identical to a telemetry-free
          build *)
  causal : bool;
      (** when true, every trial's engine gets a causal trace context
          (trace id derived from the trial index, so span ids are unique
          across the pooled stream and invariant under [jobs]) plus its
          own alarm-emitting telemetry plane, and the run extracts
          {!Fortress_obs.Latency} chains per trial; [false] (the default)
          opens no span anywhere and leaves every output byte-identical
          to a causal-free build *)
}

val default_config : config
(** trials 12, chi 256, omega 8, kappa 0.5, horizon 400 steps, workload
    every 20.0, seed 1, jobs 1, telemetry and causal tracing off — the
    protocol-validation operating point. *)

type run = {
  plan_name : string;
  el : Fortress_mc.Trial.result;
  requests_issued : int;
  requests_answered : int;
  availability : float option;
      (** answered / issued, pooled over all trials; [None] when the run
          issued no requests at all (the SMR path without {!config.load}),
          rather than a fabricated perfect score *)
  load : Fortress_load.Workload.stats option;
      (** workload-plane accounting — logical counts and the latency
          histogram — merged over all trials in trial-index order;
          present when {!config.load} was set *)
  faults : Fortress_faults.Injector.stats;  (** summed over all trials *)
  directives : int;
      (** adaptive directives applied, summed over all trials; 0 on the
          fixed-schedule path *)
  defender_directives : int;
      (** defender directives applied, summed over all trials; 0 without
          a controller (and, by the static conformance contract, with the
          [static] one) *)
  digest : string;
      (** FNV-1a fold, in trial-index order, of the per-trial trace
          digests *)
  telemetry : (Fortress_obs.Timeline.t * Fortress_obs.Signal.t) option;
      (** the pooled timeline and its scored signals, present when
          {!config.telemetry} was set. The timeline aggregates every
          trial's stream (virtual time restarts each trial, so a window
          pools the same phase of all trials) and is identical at every
          job count. Detector alarms are appended to the run's [?sink]
          after the replayed streams, in window order. *)
  latency : Fortress_obs.Latency.t option;
      (** detection / reaction / stall-rekey chains, extracted per trial
          and merged in trial-index order; present when {!config.causal}
          was set *)
}

val run_plan :
  ?sink:Fortress_obs.Sink.t ->
  ?causal_offset:int ->
  ?strategy:Fortress_attack.Adaptive.Strategy.t ->
  ?defender:Fortress_defense.Controller.Strategy.t ->
  config ->
  Fortress_faults.Plan.t ->
  run
(** [causal_offset] (default 0) shifts this run's causal trace ids so
    several plan runs sharing one pooled sink keep disjoint span-id
    blocks; {!run} sets it per plan automatically. *)

val run_smr_plan :
  ?sink:Fortress_obs.Sink.t ->
  ?causal_offset:int ->
  ?strategy:Fortress_attack.Adaptive.Strategy.t ->
  ?defender:Fortress_defense.Controller.Strategy.t ->
  config ->
  Fortress_faults.Plan.t ->
  run
(** The same plan folded onto the 1-tier SMR stack (S0) by
    {!Fortress_faults.Smr_wiring}. Without {!config.load} this path runs
    no client at all, so [availability] is [None]; with a load spec the
    workload plane drives the replicas and availability is measured, not
    fabricated. The defender steers the batched schedule through the
    shared {!Fortress_core.Stack_intf.S} surface. *)

val find_defender : string -> Fortress_defense.Controller.Strategy.t option
(** The controller built-ins plus ["mdp"] (the value-iteration
    lookup-table policy over {!Fortress_defense.Mdp.default_model}). *)

val defender_names : string list

type adapt_row = {
  ar_plan : string;
  ar_oblivious_el : float;
  ar_adaptive_el : float;
  ar_delta : float;  (** adaptive minus oblivious; negative = attacker gained *)
  ar_directives : int;
}

type adapt = { strategy_name : string; rows : adapt_row list }

type defend_row = {
  dr_plan : string;
  dr_static_el : float;
  dr_defended_el : float;
  dr_delta : float;  (** defended minus static; positive = defender gained *)
  dr_static_avail : float option;
  dr_defended_avail : float option;
  dr_davail : float option;
      (** defended minus static; [None] when either side issued nothing *)
  dr_directives : int;  (** defender directives applied *)
}

type defend = { defender_name : string; drows : defend_row list }

type report = {
  config : config;
  baseline : run;
  runs : run list;
  adapt : adapt option;  (** present iff a strategy was requested *)
  defend : defend option;  (** present iff a defender was requested *)
}

val run :
  ?sink:Fortress_obs.Sink.t ->
  ?strategy:Fortress_attack.Adaptive.Strategy.t ->
  ?defender:Fortress_defense.Controller.Strategy.t ->
  ?stack:[ `Fortress | `Smr ] ->
  ?config:config ->
  plans:Fortress_faults.Plan.t list ->
  unit ->
  report
(** The baseline is always {!Fortress_faults.Plan.none}. With a strategy,
    [baseline] and [runs] are the adaptive runs and [adapt] compares them
    to an oblivious reference; the oblivious strategy reuses its own runs
    as the reference (it is bit-identical to the fixed schedule), any
    other strategy pays one extra fixed-schedule pass per plan. The
    defender section works the same way with the [static] controller in
    the reference role; each reference pass holds the other side's
    strategy fixed, so both sections report one-sided marginals. *)

val mean_el : config -> run -> float
(** Mean uncensored lifetime; an all-censored run counts as the horizon. *)

val el_means : report -> (string * float) list
(** Baseline first, then the requested plans in order. *)

val monotone_non_increasing : report -> bool
(** Whether EL never increases along [baseline :: runs] — the escalation
    property the built-in ladder is tuned for. *)

val table : report -> Fortress_util.Table.t
val fault_breakdown : report -> Fortress_util.Table.t
val adapt_table : adapt -> Fortress_util.Table.t
val defend_table : defend -> Fortress_util.Table.t

val timeline_table : run -> Fortress_util.Table.t option
(** One row per pooled window: each defender signal's raw value, which
    signals alarm, and the fault-plan actions that landed in the window —
    the fault-ladder profile the ROADMAP asks for. [None] when the run
    was made without telemetry. *)

val timeline_alarm_table : run -> Fortress_util.Table.t option

val latency_table : run -> Fortress_util.Table.t option
(** The detection-latency report: per-chain count, censored count, mean,
    p50/p90/p99 and max over the run's merged {!Fortress_obs.Latency}
    chains. [None] when the run was made without {!config.causal}. *)

val load_table : report -> Fortress_util.Table.t option
(** Service quality under load, one row per plan: logical issued /
    answered / timed-out counts, physical submissions, availability, and
    the virtual-time latency tail (p50 / p99 / p999) from the merged
    workload histograms. [None] when the report was made without
    {!config.load}. *)

(** {1 The 2x2 attacker/defender game} *)

type game_cell = {
  gc_plan : string;
  gc_attacker : string;
  gc_defender : string;
  gc_el : float;
  gc_availability : float option;
  gc_attack_directives : int;
  gc_defense_directives : int;
}

type game = {
  game_config : config;
  cells : game_cell list;  (** plan-major, attacker then defender within *)
  mdp_optimal : float;  (** model-level EL of the value-iteration policy *)
  mdp_static : float;  (** model-level EL of always-Hold *)
}

val run_game :
  ?config:config ->
  ?attackers:Fortress_attack.Adaptive.Strategy.t list ->
  ?defenders:Fortress_defense.Controller.Strategy.t list ->
  plans:Fortress_faults.Plan.t list ->
  unit ->
  game
(** The full attacker x defender cross on the FORTRESS stack — by default
    {oblivious, stale-key-rush} x {static, alarm-rekey} — over each plan
    on paired seeds, so cell deltas are paired comparisons. Telemetry is
    forced off (each cell's controller attaches its own signal plane
    in-trial). The MDP numbers are model-level expected lifetimes — the
    benchmark bound the simulated cells are read against, not a simulated
    quantity. *)

val game_table : game -> Fortress_util.Table.t
(** One row per cell; dEL / davail are against the static-defender cell
    for the same plan and attacker. *)
