(** The PODC comparison at the service level, plus the degradation
    surface.

    {!Figures.podc_claim} checks the paper's fortified-PB-vs-SMR ordering
    on the analytical lifetime model; this module measures the same
    comparison on the simulated stacks under a production-scale
    {!Fortress_load.Workload}: both architectures face {e matched} fault
    plans and attacker entropy (the per-trial seeds are a pure function of
    the trial index), and each reports expected lifetime {e and} what
    legitimate clients experienced — availability, timeout counts, and
    tail latency. Everything is bit-identical at any [jobs] count. *)

type stack_point = {
  sp_stack : string;  (** ["fortress"] or ["smr"] *)
  sp_plan : string;
  sp_el : float;  (** mean expected lifetime, horizon if censored *)
  sp_availability : float option;
  sp_issued : int;  (** logical requests issued by the workload plane *)
  sp_timed_out : int;
  sp_p50 : float option;  (** latency quantiles in virtual time *)
  sp_p99 : float option;
  sp_p999 : float option;
  sp_digest : string;
}

type podc = {
  podc_config : Inject.config;
  podc_spec : Fortress_load.Workload.spec;
  podc_rows : stack_point list;  (** plan-major; fortress then smr within *)
}

val podc :
  ?config:Inject.config ->
  ?plans:Fortress_faults.Plan.t list ->
  Fortress_load.Workload.spec ->
  podc
(** Both stacks under [Plan.none :: plans] (default lossy and crashy)
    with the workload attached; same config and seeds for both stacks, so
    rows differ only in the architecture. *)

val podc_table : podc -> Fortress_util.Table.t

type degradation_point = {
  dp_stack : string;
  dp_omega : int;  (** attacker probes per channel per step *)
  dp_el : float;
  dp_availability : float option;
  dp_timed_out : int;
  dp_p50 : float option;
  dp_p99 : float option;
  dp_p999 : float option;
}

val degradation :
  ?config:Inject.config ->
  ?omegas:int list ->
  Fortress_load.Workload.spec ->
  degradation_point list
(** Service quality vs attack intensity: sweep the attacker's probe
    budget (default 0, 4, 16, 64) on both stacks with the fault plan held
    at none, so the only stressor is the campaign itself. *)

val degradation_table : degradation_point list -> Fortress_util.Table.t
