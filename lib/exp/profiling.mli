(** Profiling and Monte-Carlo convergence experiment (backs
    [fortress_cli prof]).

    Two questions the headline numbers depend on: {e where does
    wall-clock time go} in the packet-level simulation, and {e how many
    trials does the lifetime CI actually need} per system class. The run
    enables the {!Fortress_prof.Profiler}, drives one full packet-level
    campaign (engine, network, crypto, and probe hot paths all lit), then
    runs the step-level sampler for each of the paper's five system
    classes under a {!Fortress_prof.Convergence} monitor. *)

type class_report = {
  system : Fortress_model.Systems.system;
  result : Fortress_mc.Trial.result;
  monitor : Fortress_prof.Convergence.t;
}

type t = {
  classes : class_report list;
  phases : Fortress_prof.Profiler.entry list;  (** snapshot at end of run *)
  trace : Fortress_obs.Json.t;  (** Chrome trace-event document *)
  profile : Fortress_obs.Json.t;  (** params + phases + convergence *)
  campaign_events : int;  (** events captured from the campaign workload *)
}

val run :
  ?trials:int ->
  ?seed:int ->
  ?target_rel:float ->
  ?batch:int ->
  ?early_stop:bool ->
  ?jobs:int ->
  ?chi:int ->
  ?omega:int ->
  ?kappa:float ->
  unit ->
  t
(** Defaults: 200 trials per class, seed 42, ±5% target at batch 25, no
    early stop, jobs 1, chi = 256 / omega = 8 (alpha = 1/32), kappa = 0.5.
    The profiler is enabled for the duration of the run and disabled on
    exit, even on exception. With [jobs > 1] the per-class trials fan out
    over domains: convergence checkpoints still fall at the same
    deterministic trial-count boundaries (outcomes replay through the
    monitor in index order at the join), and the per-domain profiler
    sample rings merge in partition order at export. Raises
    [Invalid_argument] when [trials <= 0]. *)

val phase_table : t -> Fortress_util.Table.t
val convergence_table : t -> Fortress_util.Table.t
(** One row per class: trials run, mean lifetime, relative ci95
    half-width, the trial count at which the target was first met (["-"]
    if never), and the projected trials needed to reach it. *)

val render : t -> string
(** Both tables, ready for the terminal. *)
