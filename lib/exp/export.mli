(** Export the evaluation data for external plotting.

    Writes one CSV per artefact plus ready-to-run gnuplot scripts that
    regenerate the paper's two figures as log-log PNG plots, so the data
    can leave the terminal. *)

val artefacts : unit -> (string * string) list
(** [(filename, contents)] pairs: the CSVs for Figure 1, Figure 2, the
    ordering table, ablations A1/A3 and the PODC claim, plus
    [figure1.gp] / [figure2.gp] gnuplot scripts referencing them. *)

val ensure_dir : string -> unit
(** Create [dir] and any missing parents (like [mkdir -p]). Raises
    [Sys_error] when a component exists but is not a directory. *)

val write_all : dir:string -> (string * int) list
(** Create [dir] (and any missing parents) if needed and write every
    artefact; returns [(path, bytes)] per file written. Raises [Sys_error]
    on an unwritable destination. *)
