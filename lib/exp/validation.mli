(** Cross-validation of the three fidelities (experiment V1).

    For each system class the expected lifetime is computed three ways:
    the analytic model, the step-level Monte-Carlo (events per step), and
    the probe-level Monte-Carlo (real keys, alpha emergent as omega/chi).
    Agreement within confidence intervals validates the alpha = omega/chi
    reduction the paper's models rest on. *)

type line = {
  system : Fortress_model.Systems.system;
  alpha : float;  (** the emergent probe-level alpha, used by all tiers *)
  analytic : float;
  step_mc : Fortress_mc.Trial.result;
  probe_mc : Fortress_mc.Trial.result;
}

val run :
  ?sink:Fortress_obs.Sink.t ->
  ?jobs:int ->
  ?chi:int ->
  ?omega:int ->
  ?kappa:float ->
  ?trials:int ->
  ?systems:Fortress_model.Systems.system list ->
  unit ->
  line list
(** With [sink], per-trial progress events from both Monte-Carlo tiers are
    streamed to it (see {!Fortress_mc.Trial.run}). [jobs] fans trials out
    over domains; every estimate is bit-identical for every job count. *)

val table : line list -> Fortress_util.Table.t

val max_relative_error : line list -> float
(** max over lines of |step_mc - analytic| / analytic — a single headline
    agreement number. *)

(** {1 V2: the full protocol stack against the models}

    The strongest validation in the repository: expected lifetimes measured
    by running complete packet-level attack campaigns (real proxies, real
    PB servers, real probe messages, launch-pad escalation, rekeys on the
    simulation clock) against FORTRESS deployments, compared with the
    probe-level sampler and the analytic S2PO law at the emergent
    alpha = omega/chi. *)

type protocol_line = {
  pl_alpha : float;
  pl_kappa : float;
  campaign : Fortress_mc.Trial.result;  (** packet-level deployments *)
  pl_probe : Fortress_mc.Trial.result;
  pl_analytic : float;
}

val campaign_lifetime :
  ?sink:Fortress_obs.Sink.t ->
  chi:int ->
  omega:int ->
  kappa:float ->
  seed:int ->
  unit ->
  int option
(** One packet-level campaign against a fresh PO deployment (detection
    disabled, period 100, horizon 10^4 steps): the step at which the system
    fell, or [None] if it survived. With [sink], the deployment's engine
    events are forwarded to it. *)

val protocol :
  ?sink:Fortress_obs.Sink.t ->
  ?jobs:int ->
  ?trials:int ->
  ?chi:int ->
  ?omega:int ->
  ?kappa:float ->
  ?seed:int ->
  unit ->
  protocol_line
(** Defaults: 60 trials, chi = 256, omega = 8 (alpha = 1/32),
    kappa = 0.5. Each trial builds a fresh deployment with an
    index-derived seed ([seed * 1000 + index]) and runs the campaign to
    compromise. With [sink], every deployment's event stream (probes,
    rekeys, compromises, message traffic) plus per-trial progress is
    forwarded to it — one sink sees the whole run. With [jobs], each
    trial's events are buffered on its worker domain and replayed into the
    sink in trial order at the join, so the stream is byte-identical at
    every job count. *)

val protocol_table : protocol_line -> Fortress_util.Table.t

val protocol_agrees : protocol_line -> bool
(** The analytic value lies within (a slightly widened) campaign confidence
    interval, and campaign and probe-level intervals overlap. *)
