module Table = Fortress_util.Table

let gnuplot_figure1 =
  {|# Figure 1: expected lifetime comparison (log-log)
set datafile separator ","
set terminal png size 900,600
set output "figure1.png"
set logscale xy
set xlabel "alpha"
set ylabel "expected lifetime (unit time-steps)"
set key outside
plot "figure1.csv" using 1:2 with linespoints title "S0SO", \
     "figure1.csv" using 1:3 with linespoints title "S1SO", \
     "figure1.csv" using 1:4 with linespoints title "S1PO", \
     "figure1.csv" using 1:5 with linespoints title "S2PO (k=0.5)", \
     "figure1.csv" using 1:6 with linespoints title "S0PO"
|}

let gnuplot_figure2 =
  {|# Figure 2: S2PO expected lifetime as kappa varies (log-log)
set datafile separator ","
set terminal png size 900,600
set output "figure2.png"
set logscale xy
set xlabel "alpha"
set ylabel "S2PO expected lifetime (unit time-steps)"
set key outside
plot for [col=2:8] "figure2.csv" using 1:col with linespoints title columnheader(col)
|}

let artefacts () =
  [
    ("figure1.csv", Table.to_csv (Figures.figure1_table ~points:25 ()));
    ("figure2.csv", Table.to_csv (Figures.figure2_table ~points:25 ()));
    ("ordering.csv", Table.to_csv (Figures.ordering_table ~points:13 ()));
    ("ablation_np.csv", Table.to_csv (Ablations.proxy_count_table ~points:13 ()));
    ("ablation_launchpad.csv", Table.to_csv (Ablations.launchpad_table ()));
    ("podc_claim.csv", Table.to_csv (Figures.podc_claim_table ~points:13 ()));
    ("sensitivity.csv", Table.to_csv (Sensitivity.table ()));
    ("figure1.gp", gnuplot_figure1);
    ("figure2.gp", gnuplot_figure2);
  ]

(* [Sys.mkdir] fails with ENOENT when the parent is missing: create the
   whole chain, tolerating components that already exist (or races that
   create them first). *)
let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

let write_all ~dir =
  ensure_dir dir;
  List.map
    (fun (name, contents) ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      (path, String.length contents))
    (artefacts ())
