module Plan = Fortress_faults.Plan
module Table = Fortress_util.Table
module Workload = Fortress_load.Workload

type stack_point = {
  sp_stack : string;
  sp_plan : string;
  sp_el : float;
  sp_availability : float option;
  sp_issued : int;
  sp_timed_out : int;
  sp_p50 : float option;
  sp_p99 : float option;
  sp_p999 : float option;
  sp_digest : string;
}

type podc = {
  podc_config : Inject.config;
  podc_spec : Workload.spec;
  podc_rows : stack_point list;
}

let point ~stack ~config (r : Inject.run) =
  let stats = r.Inject.load in
  let q p = Option.bind stats (fun s -> Workload.quantile s p) in
  {
    sp_stack = stack;
    sp_plan = r.Inject.plan_name;
    sp_el = Inject.mean_el config r;
    sp_availability = r.Inject.availability;
    sp_issued = (match stats with Some s -> s.Workload.issued | None -> 0);
    sp_timed_out = (match stats with Some s -> s.Workload.timed_out | None -> 0);
    sp_p50 = q 0.5;
    sp_p99 = q 0.99;
    sp_p999 = q 0.999;
    sp_digest = r.Inject.digest;
  }

(* Both stacks under matched fault plans: the per-trial seed sequence is a
   pure function of (cfg.seed, trial index), so for every plan the two
   stacks face the same injected-fault randomness and the same attacker
   entropy — the comparison varies the architecture, nothing else. This is
   the paper's PODC claim measured at the service level: the fortified
   primary-backup construction is compared against SMR-with-recovery not
   just on expected lifetime but on what legitimate clients experience
   (availability and tail latency) while the attack runs. *)
let podc ?(config = Inject.default_config) ?(plans = [ Plan.lossy; Plan.crashy ]) spec =
  let config = { config with Inject.load = Some spec } in
  let rows =
    List.concat_map
      (fun plan ->
        [
          point ~stack:"fortress" ~config (Inject.run_plan config plan);
          point ~stack:"smr" ~config (Inject.run_smr_plan config plan);
        ])
      (Plan.none :: plans)
  in
  { podc_config = config; podc_spec = spec; podc_rows = rows }

let quantile_str = function Some v -> Printf.sprintf "%.2f" v | None -> "-"
let avail_str = function Some a -> Printf.sprintf "%.3f" a | None -> "n/a"

let podc_table p =
  let t =
    Table.create
      ~headers:
        [ "plan"; "stack"; "EL (steps)"; "avail"; "issued"; "timed out"; "p50"; "p99";
          "p999"; "digest" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.sp_plan;
          r.sp_stack;
          Printf.sprintf "%.1f" r.sp_el;
          avail_str r.sp_availability;
          string_of_int r.sp_issued;
          string_of_int r.sp_timed_out;
          quantile_str r.sp_p50;
          quantile_str r.sp_p99;
          quantile_str r.sp_p999;
          r.sp_digest;
        ])
    p.podc_rows;
  t

(* The service-degradation surface: quality of service as a function of
   attack intensity, fault plan held at none so the only stressor is the
   attacker (probe pressure plus whatever the campaign compromises). *)
type degradation_point = {
  dp_stack : string;
  dp_omega : int;
  dp_el : float;
  dp_availability : float option;
  dp_timed_out : int;
  dp_p50 : float option;
  dp_p99 : float option;
  dp_p999 : float option;
}

let degradation ?(config = Inject.default_config) ?(omegas = [ 0; 4; 16; 64 ]) spec =
  let base = { config with Inject.load = Some spec } in
  List.concat_map
    (fun omega ->
      let cfg = { base with Inject.omega } in
      let dp stack (r : Inject.run) =
        let q p = Option.bind r.Inject.load (fun s -> Workload.quantile s p) in
        {
          dp_stack = stack;
          dp_omega = omega;
          dp_el = Inject.mean_el cfg r;
          dp_availability = r.Inject.availability;
          dp_timed_out =
            (match r.Inject.load with Some s -> s.Workload.timed_out | None -> 0);
          dp_p50 = q 0.5;
          dp_p99 = q 0.99;
          dp_p999 = q 0.999;
        }
      in
      [
        dp "fortress" (Inject.run_plan cfg Plan.none);
        dp "smr" (Inject.run_smr_plan cfg Plan.none);
      ])
    omegas

let degradation_table points =
  let t =
    Table.create
      ~headers:
        [ "omega"; "stack"; "EL (steps)"; "avail"; "timed out"; "p50"; "p99"; "p999" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.dp_omega;
          p.dp_stack;
          Printf.sprintf "%.1f" p.dp_el;
          avail_str p.dp_availability;
          string_of_int p.dp_timed_out;
          quantile_str p.dp_p50;
          quantile_str p.dp_p99;
          quantile_str p.dp_p999;
        ])
    points;
  t
