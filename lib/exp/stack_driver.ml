module Deployment = Fortress_core.Deployment
module Smr_deployment = Fortress_core.Smr_deployment
module Obfuscation = Fortress_core.Obfuscation
module Defense_control = Fortress_core.Defense_control
module Keyspace = Fortress_defense.Keyspace
module Campaign = Fortress_attack.Campaign
module Smr_campaign = Fortress_attack.Smr_campaign
module Adaptive = Fortress_attack.Adaptive
module Stats = Fortress_attack.Campaign_intf.Stats
module Plan = Fortress_faults.Plan
module Wiring = Fortress_faults.Wiring
module Smr_wiring = Fortress_faults.Smr_wiring
module Injector = Fortress_faults.Injector

module type S = sig
  include Fortress_core.Stack_intf.S

  val make : chi:int -> seed:int -> t
  val start_obfuscation : t -> period:float -> unit
  val install_plan : t -> Plan.t -> seed:int -> unit -> Injector.stats

  val attach_defense :
    t -> Fortress_defense.Controller.Strategy.t -> Fortress_defense.Controller.t

  val default_workload : bool

  val run_campaign :
    ?strategy:Adaptive.Strategy.t ->
    t ->
    omega:int ->
    kappa:float ->
    period:float ->
    seed:int ->
    max_steps:int ->
    directives:int ref ->
    int option
end

module Fortress : S = struct
  include Fortress_core.Fortress_stack

  let make ~chi ~seed =
    of_parts
      (Deployment.create
         { Deployment.default_config with keyspace = Keyspace.of_size chi; seed })

  let start_obfuscation t ~period =
    set_obfuscation t (Obfuscation.attach (deployment t) ~mode:Obfuscation.PO ~period)

  let require_obfuscation t =
    match obfuscation t with
    | Some o -> o
    | None -> invalid_arg "Stack_driver.Fortress: obfuscation not started"

  let install_plan t plan ~seed =
    let handle =
      Wiring.install plan ~deployment:(deployment t)
        ~obfuscation:(require_obfuscation t) ~seed ()
    in
    fun () -> Wiring.stats handle

  let attach_defense t strategy =
    Defense_control.attach_stack (module Fortress_core.Fortress_stack) t strategy

  let default_workload = true

  let run_campaign ?strategy t ~omega ~kappa ~period ~seed ~max_steps ~directives =
    let attack_cfg = Campaign.make_config ~omega ~kappa ~period ~seed () in
    match strategy with
    | None ->
        (* the legacy fixed-schedule path, kept separate so its byte-trace
           never depends on the adaptive plumbing *)
        let campaign = Campaign.launch (deployment t) attack_cfg in
        Campaign.run_until_compromise campaign ~max_steps
    | Some strategy ->
        let adaptive =
          Adaptive.launch (deployment t) (Adaptive.make_config ~strategy attack_cfg)
        in
        let lifetime = Adaptive.run_until_compromise adaptive ~max_steps in
        directives := !directives + (Adaptive.stats adaptive).Stats.directives_applied;
        lifetime
end

module Smr : S = struct
  include Fortress_core.Smr_stack

  let make ~chi ~seed =
    of_parts
      (Smr_deployment.create
         { Smr_deployment.default_config with keyspace = Keyspace.of_size chi; seed })

  let start_obfuscation t ~period =
    set_schedule t
      (Smr_deployment.attach_schedule (deployment t) ~mode:Obfuscation.PO ~period)

  let require_schedule t =
    match schedule t with
    | Some s -> s
    | None -> invalid_arg "Stack_driver.Smr: obfuscation schedule not started"

  let install_plan t plan ~seed =
    let handle =
      Smr_wiring.install plan ~deployment:(deployment t) ~schedule:(require_schedule t)
        ~seed ()
    in
    fun () -> Smr_wiring.stats handle

  let attach_defense t strategy =
    Defense_control.attach_stack (module Fortress_core.Smr_stack) t strategy

  let default_workload = false

  let run_campaign ?strategy t ~omega ~kappa:_ ~period ~seed ~max_steps ~directives =
    let attack_cfg = Smr_campaign.make_config ~omega ~period ~seed () in
    match strategy with
    | None ->
        let campaign = Smr_campaign.launch (deployment t) attack_cfg in
        Smr_campaign.run_until_compromise campaign ~max_steps
    | Some strategy ->
        let adaptive =
          Adaptive.Smr.launch (deployment t) (Adaptive.Smr.make_config ~strategy attack_cfg)
        in
        let lifetime = Adaptive.Smr.run_until_compromise adaptive ~max_steps in
        directives := !directives + (Adaptive.Smr.stats adaptive).Stats.directives_applied;
        lifetime
end
