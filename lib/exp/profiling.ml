module Systems = Fortress_model.Systems
module Step_level = Fortress_mc.Step_level
module Trial = Fortress_mc.Trial
module Profiler = Fortress_prof.Profiler
module Convergence = Fortress_prof.Convergence
module Trace_export = Fortress_prof.Trace_export
module Table = Fortress_util.Table
module Json = Fortress_obs.Json
module Sink = Fortress_obs.Sink

(* The paper's five system classes (table 2); S2_SO is the repository's
   own extension and is excluded so the convergence report matches the
   paper's grid. *)
let paper_classes = [ Systems.S0_SO; Systems.S1_SO; Systems.S0_PO; Systems.S1_PO; Systems.S2_PO ]

type class_report = {
  system : Systems.system;
  result : Trial.result;
  monitor : Convergence.t;
}

type t = {
  classes : class_report list;
  phases : Profiler.entry list;
  trace : Json.t;  (** Chrome trace-event document *)
  profile : Json.t;  (** phases + per-class convergence, for profile.json *)
  campaign_events : int;  (** events captured from the packet-level workload *)
}

let run ?(trials = 200) ?(seed = 42) ?(target_rel = 0.05) ?(batch = 25) ?(early_stop = false)
    ?(jobs = 1) ?(chi = 256) ?(omega = 8) ?(kappa = 0.5) () =
  if trials <= 0 then invalid_arg "Profiling.run: trials must be positive";
  Profiler.reset ();
  Profiler.set_sample_capacity 8192;
  Profiler.enable ();
  Fun.protect ~finally:Profiler.disable (fun () ->
      (* packet-level workload: one full campaign exercises the engine,
         network delivery, crypto, and probe hot paths, and its span events
         become the virtual-time lanes of trace.json *)
      let sink = Sink.create () in
      let mem, read_events = Sink.memory () in
      ignore (Sink.attach sink mem);
      ignore (Validation.campaign_lifetime ~sink ~chi ~omega ~kappa ~seed ());
      let campaign_events = read_events () in
      (* convergence: step-level sampler per paper class at the emergent
         alpha = omega/chi, monitored per trial batch *)
      let alpha = float_of_int omega /. float_of_int chi in
      let cfg = { Step_level.default with alpha; kappa; max_steps = 100_000 } in
      let classes =
        List.map
          (fun system ->
            let monitor = Convergence.create ~batch ~target_rel () in
            let result =
              Step_level.estimate ~monitor ~early_stop ~jobs ~trials ~seed system cfg
            in
            { system; result; monitor })
          paper_classes
      in
      let samples = Profiler.samples () in
      let phases = Profiler.snapshot () in
      let trace = Trace_export.make ~samples campaign_events in
      let profile =
        Json.Obj
          [
            ( "params",
              Json.Obj
                [
                  ("trials", Json.Num (float_of_int trials));
                  ("seed", Json.Num (float_of_int seed));
                  ("alpha", Json.Num alpha);
                  ("kappa", Json.Num kappa);
                  ("chi", Json.Num (float_of_int chi));
                  ("omega", Json.Num (float_of_int omega));
                  ("target_rel_half_width", Json.Num target_rel);
                  ("batch", Json.Num (float_of_int batch));
                  ("early_stop", Json.Bool early_stop);
                ] );
            ("phases", Profiler.to_json ());
            ( "convergence",
              Json.Obj
                (List.map
                   (fun c -> (Systems.system_to_string c.system, Convergence.to_json c.monitor))
                   classes) );
          ]
      in
      { classes; phases; trace; profile; campaign_events = List.length campaign_events })

let phase_table t =
  let tbl =
    Table.create ~headers:[ "phase"; "count"; "self (s)"; "total (s)"; "self minor words" ]
  in
  Table.set_align tbl 0 Table.Left;
  List.iter
    (fun (e : Profiler.entry) ->
      Table.add_row tbl
        [
          e.name;
          string_of_int e.count;
          Printf.sprintf "%.6f" e.self_s;
          Printf.sprintf "%.6f" e.total_s;
          Printf.sprintf "%.0f" e.self_minor_words;
        ])
    t.phases;
  tbl

let convergence_table t =
  let tbl =
    Table.create
      ~headers:
        [ "system"; "trials"; "mean EL"; "rel ci95"; "converged@"; "projected to target" ]
  in
  Table.set_align tbl 0 Table.Left;
  List.iter
    (fun c ->
      let rel = Convergence.rel_half_width c.monitor in
      Table.add_row tbl
        [
          Systems.system_to_string c.system;
          string_of_int c.result.Trial.trials;
          Printf.sprintf "%.4g" c.result.Trial.mean;
          (if Float.is_nan rel then "-" else Printf.sprintf "%.1f%%" (100.0 *. rel));
          (match Convergence.converged_at c.monitor with
          | Some n -> string_of_int n
          | None -> "-");
          (match Convergence.projected_trials c.monitor with
          | Some n -> string_of_int n
          | None -> "-");
        ])
    t.classes;
  tbl

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== phase profile (wall clock) ==\n";
  Buffer.add_string buf (Table.render (phase_table t));
  Buffer.add_string buf "\n== Monte-Carlo convergence (target ";
  (match t.classes with
  | c :: _ ->
      Buffer.add_string buf
        (Printf.sprintf "±%g%% relative ci95" (100.0 *. Convergence.target_rel c.monitor))
  | [] -> Buffer.add_string buf "-");
  Buffer.add_string buf ") ==\n";
  Buffer.add_string buf (Table.render (convergence_table t));
  Buffer.add_string buf
    (Printf.sprintf "\ncampaign workload: %d events captured for trace.json\n"
       t.campaign_events);
  Buffer.contents buf
