(** A full attack campaign against a FORTRESS {!Fortress_core.Deployment}.

    The campaign runs on the deployment's simulation engine in unit
    time-steps aligned with the obfuscation schedule. In every step the
    attacker

    - launches up to [omega] {e direct} probes at each proxy (proxies are
      the only reachable nodes; with [np = 0] the servers are reachable and
      probed directly instead),
    - launches up to [kappa * omega] {e indirect} probes at the server key
      through the proxies, each of which the handling proxy logs as an
      invalid request — enough of them and the source gets blocked, which
      is the mechanism that forces kappa below 1 in the first place, and
    - on compromising a proxy, escalates: with [`Within_step] discipline
      the rest of that proxy's probe budget for the step is redirected at
      the server over the captured launch pad; with [`Next_step] the
      escalation only starts at the following step (where PO has already
      evicted the intruder — making launch pads useless, which is exactly
      the modelling difference ablation A3 measures).

    The campaign ends when {!Fortress_core.Deployment.system_compromised}
    first holds; the step index at that moment is the system's lifetime.

    {2 Adaptive hooks}

    An adaptive attacker (see {!Adaptive}) plugs into the campaign through
    three narrow points: {!set_boundary_hook} delivers one
    {!Observation.t} per completed step, {!stage} queues a {!Directive.t},
    and staged directives are folded into the live settings {e only at the
    next step boundary}. Between boundaries the schedule is exactly the
    fixed one, which keeps adaptive runs deterministic and job-count
    invariant. A campaign with no hook and no staged directive is
    bit-identical — every event, PRNG draw, and schedule time — to the
    fixed-schedule attacker. *)

type launchpad = Directive.launchpad = Within_step | Next_step

type config = {
  omega : int;  (** probes per target per unit time-step *)
  kappa : float;  (** indirect-attack coefficient the attacker can sustain *)
  period : float;  (** the unit time-step; align with the obfuscation period *)
  pacing : Pacing.t;  (** how probes are laid out within each step *)
  launchpad : launchpad;
  target_mode : Fortress_core.Obfuscation.mode;
      (** what the attacker assumes about the defender's schedule: under PO
          it discards eliminated keys at each boundary, under SO it keeps
          them *)
  rotate_sources : bool;
      (** register a fresh source address whenever one gets blocked *)
  seed : int;
}

val default_config : config
(** omega 64, kappa 0.5, period 100.0, uniform pacing, Within_step, PO,
    rotate, seed 0. *)

val make_config :
  ?omega:int ->
  ?kappa:float ->
  ?period:float ->
  ?pacing:Pacing.t ->
  ?launchpad:launchpad ->
  ?target_mode:Fortress_core.Obfuscation.mode ->
  ?rotate_sources:bool ->
  seed:int ->
  unit ->
  config
(** Smart constructor over {!default_config}. Prefer this to bare record
    literals: new fields get defaults instead of breaking every caller. *)

type t

val launch : Fortress_core.Deployment.t -> config -> t
(** Arm the campaign on the deployment's engine; run the engine to make it
    progress. Raises [Invalid_argument] unless [omega > 0] and
    [kappa] is in [0,1]. *)

val run_until_compromise : t -> max_steps:int -> int option
(** Drive the engine until the system is compromised or [max_steps] whole
    steps have elapsed. Returns the 1-based step of compromise. *)

val stats : t -> Campaign_intf.Stats.t
(** One snapshot of every campaign counter. Replaces the per-counter
    getters ([direct_probes_sent], [indirect_probes_sent], ...) this
    module used to export. *)

val current_step : t -> int
(** The 1-based step currently in progress. *)

val config : t -> config

val effective_kappa : t -> float
(** Delivered indirect probes over [kappa * omega * steps]: how much of the
    attacker's intended indirect rate survived proxy detection. *)

(** {2 Observe–decide–act plumbing}

    Used by {!Adaptive}; exposed so tests can assert the boundary-only
    application property directly. *)

val set_boundary_hook : t -> name:string -> (Observation.t -> unit) -> unit
(** Install the per-boundary observer. [name] tags emitted
    {!Fortress_obs.Event.Directive} events. Installing a hook also turns
    on mid-step symptom sampling (pure reads of the deployment's
    {{!Fortress_core.Deployment.symptoms} symptom surface} at
    probe times — partition windows can heal before the boundary, so
    sampling must ride the probes). *)

val stage : t -> Directive.t -> unit
(** Queue a directive for the next step boundary. Staging
    {!Directive.unchanged} is a no-op; staging twice in one step merges
    field-wise with the later stage winning. Nothing changes until the
    boundary. *)

type live_settings = {
  kappa : float;
  pacing : Pacing.t;
  launchpad : launchpad;
  excluded : int list;  (** proxy indices currently steered away from *)
}

val settings : t -> live_settings
(** The settings the arm loop is reading {e right now} — directives staged
    but not yet applied are invisible here. *)
