(** A full attack campaign against a FORTRESS {!Fortress_core.Deployment}.

    The campaign runs on the deployment's simulation engine in unit
    time-steps aligned with the obfuscation schedule. In every step the
    attacker

    - launches up to [omega] {e direct} probes at each proxy (proxies are
      the only reachable nodes; with [np = 0] the servers are reachable and
      probed directly instead),
    - launches up to [kappa * omega] {e indirect} probes at the server key
      through the proxies, each of which the handling proxy logs as an
      invalid request — enough of them and the source gets blocked, which
      is the mechanism that forces kappa below 1 in the first place, and
    - on compromising a proxy, escalates: with [`Within_step] discipline
      the rest of that proxy's probe budget for the step is redirected at
      the server over the captured launch pad; with [`Next_step] the
      escalation only starts at the following step (where PO has already
      evicted the intruder — making launch pads useless, which is exactly
      the modelling difference ablation A3 measures).

    The campaign ends when {!Fortress_core.Deployment.system_compromised}
    first holds; the step index at that moment is the system's lifetime. *)

type launchpad = Within_step | Next_step

type config = {
  omega : int;  (** probes per target per unit time-step *)
  kappa : float;  (** indirect-attack coefficient the attacker can sustain *)
  period : float;  (** the unit time-step; align with the obfuscation period *)
  pacing : Pacing.t;  (** how probes are laid out within each step *)
  launchpad : launchpad;
  target_mode : Fortress_core.Obfuscation.mode;
      (** what the attacker assumes about the defender's schedule: under PO
          it discards eliminated keys at each boundary, under SO it keeps
          them *)
  rotate_sources : bool;
      (** register a fresh source address whenever one gets blocked *)
  seed : int;
}

val default_config : config
(** omega 64, kappa 0.5, period 100.0, uniform pacing, Within_step, PO,
    rotate, seed 0. *)

type t

val launch : Fortress_core.Deployment.t -> config -> t
(** Arm the campaign on the deployment's engine; run the engine to make it
    progress. *)

val run_until_compromise : t -> max_steps:int -> int option
(** Drive the engine until the system is compromised or [max_steps] whole
    steps have elapsed. Returns the 1-based step of compromise. *)

val compromised_at_step : t -> int option
val direct_probes_sent : t -> int
val indirect_probes_sent : t -> int
val indirect_probes_blocked : t -> int
val launchpad_probes_sent : t -> int
val sources_burned : t -> int
(** Attacker addresses that got blocked by proxies. *)

val exhausted_slots : t -> int
(** Probe slots skipped because the attacker had eliminated every key in
    the current epoch without a hit (possible only when the target changed
    keys unobserved, e.g. under fault injection). The attacker idles and
    resumes at the next epoch change. *)

val effective_kappa : t -> float
(** Delivered indirect probes over [kappa * omega * steps]: how much of the
    attacker's intended indirect rate survived proxy detection. *)
