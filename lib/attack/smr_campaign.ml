module Engine = Fortress_sim.Engine
module Instance = Fortress_defense.Instance
module Smr_deployment = Fortress_core.Smr_deployment
module Obfuscation = Fortress_core.Obfuscation
module Prng = Fortress_util.Prng

type config = {
  omega : int;
  period : float;
  target_mode : Obfuscation.mode;
  seed : int;
}

let default_config = { omega = 64; period = 100.0; target_mode = Obfuscation.PO; seed = 0 }

type tracked = { knowledge : Knowledge.t; mutable epoch_seen : int }

type t = {
  deployment : Smr_deployment.t;
  cfg : config;
  prng : Prng.t;
  tracks : tracked array;
  mutable current_step : int;
  mutable compromised_at : int option;
  mutable probes : int;
  mutable intrusions : int;
}

let make deployment cfg =
  let instances = Smr_deployment.instances deployment in
  let tracks =
    Array.map
      (fun inst ->
        { knowledge = Knowledge.create (Instance.keyspace inst); epoch_seen = Instance.epoch inst })
      instances
  in
  {
    deployment;
    cfg;
    prng = Prng.create ~seed:cfg.seed;
    tracks;
    current_step = 1;
    compromised_at = None;
    probes = 0;
    intrusions = 0;
  }

let sync_track t track inst =
  let epoch = Instance.epoch inst in
  if epoch <> track.epoch_seen then begin
    track.epoch_seen <- epoch;
    match t.cfg.target_mode with
    | Obfuscation.PO -> Knowledge.on_target_rekeyed track.knowledge
    | Obfuscation.SO -> Knowledge.on_target_recovered track.knowledge
  end

let probe_replica t i =
  if t.compromised_at = None then begin
    let inst = (Smr_deployment.instances t.deployment).(i) in
    let track = t.tracks.(i) in
    sync_track t track inst;
    if not (Smr_deployment.compromised t.deployment i) then begin
      t.probes <- t.probes + 1;
      match Knowledge.next_guess track.knowledge t.prng with
      | None -> () (* exhausted: idle until the next epoch change *)
      | Some guess -> (
          match Instance.probe inst ~guess with
          | Instance.Crash -> Knowledge.observe_crash track.knowledge ~guess
          | Instance.Intrusion ->
              Knowledge.observe_intrusion track.knowledge ~guess;
              t.intrusions <- t.intrusions + 1;
              Smr_deployment.compromise t.deployment i;
              if Smr_deployment.system_compromised t.deployment then
                t.compromised_at <- Some t.current_step)
    end
    else if Knowledge.known_key track.knowledge <> None then begin
      (* SO: the key is known and recovery did not change it — instant
         re-capture *)
      t.probes <- t.probes + 1;
      t.intrusions <- t.intrusions + 1;
      Smr_deployment.compromise t.deployment i;
      if Smr_deployment.system_compromised t.deployment then
        t.compromised_at <- Some t.current_step
    end
  end

let arm t =
  let engine = Smr_deployment.engine t.deployment in
  let n = Array.length (Smr_deployment.instances t.deployment) in
  let rec arm_step () =
    if t.compromised_at = None then begin
      let base = Engine.now engine in
      let spacing = t.cfg.period /. float_of_int (t.cfg.omega + 2) in
      for s = 0 to t.cfg.omega - 1 do
        let at = base +. (spacing *. float_of_int (s + 1)) in
        for i = 0 to n - 1 do
          ignore (Engine.schedule_at engine ~time:at (fun () -> probe_replica t i))
        done
      done;
      ignore
        (Engine.schedule_at engine ~time:(base +. t.cfg.period) (fun () ->
             t.current_step <- t.current_step + 1;
             arm_step ()))
    end
  in
  arm_step ()

let launch deployment cfg =
  if cfg.omega <= 0 then invalid_arg "Smr_campaign.launch: omega must be positive";
  let t = make deployment cfg in
  arm t;
  t

let run_until_compromise t ~max_steps =
  let engine = Smr_deployment.engine t.deployment in
  let rec go () =
    match t.compromised_at with
    | Some s -> Some s
    | None ->
        if t.current_step > max_steps then None
        else begin
          Engine.run ~until:(Engine.now engine +. t.cfg.period) engine;
          go ()
        end
  in
  go ()

let compromised_at_step t = t.compromised_at
let probes_sent t = t.probes
let intrusions t = t.intrusions
