module Engine = Fortress_sim.Engine
module Instance = Fortress_defense.Instance
module Smr_deployment = Fortress_core.Smr_deployment
module Obfuscation = Fortress_core.Obfuscation
module Prng = Fortress_util.Prng
module Event = Fortress_obs.Event
module Node_id = Fortress_model.Node_id
module Stats = Campaign_intf.Stats

type config = {
  omega : int;
  period : float;
  target_mode : Obfuscation.mode;
  seed : int;
}

let default_config = { omega = 64; period = 100.0; target_mode = Obfuscation.PO; seed = 0 }

let make_config ?(omega = default_config.omega) ?(period = default_config.period)
    ?(target_mode = default_config.target_mode) ~seed () =
  { omega; period; target_mode; seed }

type tracked = { knowledge : Knowledge.t; mutable epoch_seen : int; mutable flips : int }

type t = {
  deployment : Smr_deployment.t;
  cfg : config;
  prng : Prng.t;
  tracks : tracked array;
  excluded : bool array;
  mutable staged : Directive.t option;
  mutable boundary_hook : (Observation.t -> unit) option;
  mutable strategy_name : string;
  mutable observing : bool;
  unreach_seen : bool array;
  mutable redirect : int;
  mutable current_step : int;
  mutable compromised_at : int option;
  mutable probes : int;
  mutable intrusions : int;
  mutable directives_applied : int;
  mutable m_probes : int;
  mutable m_flips : int;
  mutable stale_steps : int;
}

let make deployment cfg =
  let instances = Smr_deployment.instances deployment in
  let tracks =
    Array.map
      (fun inst ->
        {
          knowledge = Knowledge.create (Instance.keyspace inst);
          epoch_seen = Instance.epoch inst;
          flips = 0;
        })
      instances
  in
  let n = Array.length instances in
  {
    deployment;
    cfg;
    prng = Prng.create ~seed:cfg.seed;
    tracks;
    excluded = Array.make (max n 1) false;
    staged = None;
    boundary_hook = None;
    strategy_name = "";
    observing = false;
    unreach_seen = Array.make (max n 1) false;
    redirect = 0;
    current_step = 1;
    compromised_at = None;
    probes = 0;
    intrusions = 0;
    directives_applied = 0;
    m_probes = 0;
    m_flips = 0;
    stale_steps = 0;
  }

let sync_track t track inst =
  let epoch = Instance.epoch inst in
  if epoch <> track.epoch_seen then begin
    track.epoch_seen <- epoch;
    track.flips <- track.flips + 1;
    match t.cfg.target_mode with
    | Obfuscation.PO -> Knowledge.on_target_rekeyed track.knowledge
    | Obfuscation.SO -> Knowledge.on_target_recovered track.knowledge
  end

let do_probe_replica t i =
  let inst = (Smr_deployment.instances t.deployment).(i) in
  let track = t.tracks.(i) in
  sync_track t track inst;
  if not (Smr_deployment.compromised t.deployment i) then begin
    t.probes <- t.probes + 1;
    match Knowledge.next_guess track.knowledge t.prng with
    | None -> () (* exhausted: idle until the next epoch change *)
    | Some guess -> (
        match Instance.probe inst ~guess with
        | Instance.Crash -> Knowledge.observe_crash track.knowledge ~guess
        | Instance.Intrusion ->
            Knowledge.observe_intrusion track.knowledge ~guess;
            t.intrusions <- t.intrusions + 1;
            Smr_deployment.compromise t.deployment i;
            if Smr_deployment.system_compromised t.deployment then
              t.compromised_at <- Some t.current_step)
  end
  else if Knowledge.known_key track.knowledge <> None then begin
    (* SO: the key is known and recovery did not change it — instant
       re-capture *)
    t.probes <- t.probes + 1;
    t.intrusions <- t.intrusions + 1;
    Smr_deployment.compromise t.deployment i;
    if Smr_deployment.system_compromised t.deployment then
      t.compromised_at <- Some t.current_step
  end

(* Steer an excluded replica's slot to the next included replica (cursor
   scan); with nothing excluded this is the identity. *)
let redirect_target t i n =
  if not t.excluded.(i) then i
  else begin
    let rec find k m = if m = 0 then i else if not t.excluded.(k) then k else find ((k + 1) mod n) (m - 1) in
    let k = find (t.redirect mod n) n in
    if k <> i then t.redirect <- t.redirect + 1;
    k
  end

let probe_replica t i =
  if t.compromised_at = None then begin
    let n = Array.length (Smr_deployment.instances t.deployment) in
    (* each probe is its own liveness check (see Campaign.sample_unreach) *)
    if t.observing && not t.unreach_seen.(i) then
      if
        Fortress_core.Symptom.is_unreachable
          (Smr_deployment.symptoms t.deployment)
          (Node_id.Replica i)
      then t.unreach_seen.(i) <- true;
    let i = redirect_target t i n in
    do_probe_replica t i
  end

(* ---- observe / decide / act plumbing (mirrors Campaign) ---- *)

let stage t directive =
  if not (Directive.is_unchanged directive) then
    t.staged <-
      Some
        (match t.staged with
        | None -> directive
        | Some prev ->
            {
              Directive.kappa = prev.Directive.kappa;
              exclude =
                (match directive.Directive.exclude with Some _ as e -> e | None -> prev.Directive.exclude);
              pacing = prev.Directive.pacing;
              launchpad = prev.Directive.launchpad;
            })

let set_boundary_hook t ~name hook =
  t.boundary_hook <- Some hook;
  t.strategy_name <- name;
  t.observing <- true

let observe t =
  let n = Array.length (Smr_deployment.instances t.deployment) in
  let flips = Array.fold_left (fun acc tr -> acc + tr.flips) 0 t.tracks in
  let probes_delta = t.probes - t.m_probes in
  let rekey_missed = flips = t.m_flips && probes_delta > 0 in
  let unreachable = ref [] in
  for i = n - 1 downto 0 do
    if t.unreach_seen.(i) then unreachable := Node_id.Replica i :: !unreachable
  done;
  t.stale_steps <- (if rekey_missed then t.stale_steps + 1 else 0);
  {
    Observation.step = t.current_step;
    direct_sent = probes_delta;
    indirect_sent = 0;
    indirect_blocked = 0;
    launchpad_sent = 0;
    sources_burned = 0;
    server_key_flips = flips;
    rekey_missed;
    stale_steps = t.stale_steps;
    unreachable = !unreachable;
    targets = n;
  }

let reset_step_marks t =
  t.m_probes <- t.probes;
  t.m_flips <- Array.fold_left (fun acc tr -> acc + tr.flips) 0 t.tracks;
  Array.fill t.unreach_seen 0 (Array.length t.unreach_seen) false

(* S0 has no kappa/pacing/launchpad knobs — only the exclusion set acts;
   other directive fields are silently inert here. *)
let apply_staged t =
  match t.staged with
  | None -> ()
  | Some d ->
      t.staged <- None;
      (match d.Directive.exclude with
      | Some nodes ->
          let n = Array.length (Smr_deployment.instances t.deployment) in
          let fresh = Array.make (max n 1) false in
          List.iter
            (function
              | Node_id.Replica i when i >= 0 && i < n -> fresh.(i) <- true
              | _ -> ())
            nodes;
          if Array.for_all Fun.id fresh then Array.fill fresh 0 (Array.length fresh) false;
          if fresh <> t.excluded then begin
            Array.blit fresh 0 t.excluded 0 (Array.length fresh);
            t.directives_applied <- t.directives_applied + 1;
            let named = ref [] in
            for i = n - 1 downto 0 do
              if fresh.(i) then named := string_of_int i :: !named
            done;
            Engine.emit
              (Smr_deployment.engine t.deployment)
              (Event.Directive
                 {
                   step = t.current_step;
                   strategy = (if t.strategy_name = "" then "manual" else t.strategy_name);
                   detail =
                     (if !named = [] then "exclude=none"
                      else "exclude=replica" ^ String.concat "+replica" !named);
                 })
          end
      | None -> ())

let arm t =
  let engine = Smr_deployment.engine t.deployment in
  let n = Array.length (Smr_deployment.instances t.deployment) in
  let rec arm_step () =
    if t.compromised_at = None then begin
      let base = Engine.now engine in
      let spacing = t.cfg.period /. float_of_int (t.cfg.omega + 2) in
      for s = 0 to t.cfg.omega - 1 do
        let at = base +. (spacing *. float_of_int (s + 1)) in
        for i = 0 to n - 1 do
          ignore (Engine.schedule_at engine ~time:at (fun () -> probe_replica t i))
        done
      done;
      ignore
        (Engine.schedule_at engine ~time:(base +. t.cfg.period) (fun () ->
             (match t.boundary_hook with
             | Some hook ->
                 let obs = observe t in
                 reset_step_marks t;
                 hook obs
             | None -> ());
             t.current_step <- t.current_step + 1;
             apply_staged t;
             arm_step ()))
    end
  in
  arm_step ()

let launch deployment cfg =
  if cfg.omega <= 0 then invalid_arg "Smr_campaign.launch: omega must be positive";
  let t = make deployment cfg in
  arm t;
  t

let run_until_compromise t ~max_steps =
  let engine = Smr_deployment.engine t.deployment in
  let rec go () =
    match t.compromised_at with
    | Some s -> Some s
    | None ->
        if t.current_step > max_steps then None
        else begin
          Engine.run ~until:(Engine.now engine +. t.cfg.period) engine;
          go ()
        end
  in
  go ()

let stats t =
  {
    Stats.zero with
    Stats.compromised_at_step = t.compromised_at;
    direct_probes_sent = t.probes;
    intrusions = t.intrusions;
    directives_applied = t.directives_applied;
  }

let current_step t = t.current_step

let excluded_replicas t =
  let out = ref [] in
  for i = Array.length t.excluded - 1 downto 0 do
    if t.excluded.(i) then out := i :: !out
  done;
  !out

(* conformance witness: Smr_campaign implements the shared surface *)
module _ :
  Campaign_intf.S
    with type t = t
     and type deployment = Smr_deployment.t
     and type config = config = struct
  type nonrec t = t
  type deployment = Smr_deployment.t
  type nonrec config = config

  let launch = launch
  let run_until_compromise = run_until_compromise
  let stats = stats
end
