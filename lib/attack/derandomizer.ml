module Engine = Fortress_sim.Engine
module Daemon = Fortress_defense.Daemon
module Instance = Fortress_defense.Instance

type result = {
  found_key : int option;
  probes : int;
  crashes_caused : int;
  finished_at : float;
}

let run ~engine ~daemon ~prng ?max_probes ~on_done () =
  let keyspace = Instance.keyspace (Daemon.instance daemon) in
  let budget =
    match max_probes with
    | Some b -> b
    | None -> Fortress_defense.Keyspace.size keyspace
  in
  let knowledge = Knowledge.create keyspace in
  let probes = ref 0 in
  let crashes = ref 0 in
  let finish found_key =
    on_done { found_key; probes = !probes; crashes_caused = !crashes; finished_at = Engine.now engine }
  in
  let rec attempt () =
    if !probes >= budget then finish None
    else
      match Knowledge.next_guess knowledge prng with
      | None -> finish None (* key space exhausted: the attacker gives up *)
      | Some guess ->
          incr probes;
          let submit, _is_open =
            Daemon.accept daemon
              ~on_reply:(fun reply ->
                if reply = "shell" then begin
                  Knowledge.observe_intrusion knowledge ~guess;
                  finish (Some guess)
                end)
              ~on_crash_observed:(fun () ->
                incr crashes;
                Knowledge.observe_crash knowledge ~guess;
                attempt ())
          in
          submit (Daemon.Probe guess)
  in
  attempt ()
