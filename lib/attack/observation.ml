(** What the attacker saw during one completed attack step.

    The observation is assembled by the campaign at each step boundary
    from attacker-plausible signals only — its own probe bookkeeping,
    blocked-source feedback, key-change inference from probe statistics,
    and request timeouts (the deployment symptom surface). Nothing here
    reads defender internals the attacker could not measure from outside;
    DESIGN.md section 10 argues each field's plausibility. Assembly is
    pure: no PRNG consumption, no emitted events, so a strategy that
    observes but never acts leaves the trace bit-identical. *)

type t = {
  step : int;  (** the 1-based step that just completed *)
  direct_sent : int;  (** probes this step, by kind *)
  indirect_sent : int;
  indirect_blocked : int;
  launchpad_sent : int;
  sources_burned : int;  (** sources newly blocked this step *)
  server_key_flips : int;
      (** server-tier key changes the attacker has inferred so far, from
          its elimination statistics resetting *)
  rekey_missed : bool;
      (** this boundary elapsed with the server key provably unchanged:
          eliminations kept accumulating without a reset while probes were
          landing *)
  stale_steps : int;
      (** consecutive completed steps ending with [rekey_missed] *)
  unreachable : Fortress_model.Node_id.t list;
      (** nodes whose requests timed out at least once during the step,
          in node order *)
  targets : int;  (** size of the reachable tier: np for S2, n for S0 *)
}

let unreachable_proxies t =
  List.filter_map
    (function Fortress_model.Node_id.Proxy i -> Some i | _ -> None)
    t.unreachable

let unreachable_replicas t =
  List.filter_map
    (function Fortress_model.Node_id.Replica i -> Some i | _ -> None)
    t.unreachable

let pp ppf t =
  Format.fprintf ppf
    "step %d: direct %d, indirect %d (%d blocked), launchpad %d, flips %d, stale %d, \
     unreachable [%s]"
    t.step t.direct_sent t.indirect_sent t.indirect_blocked t.launchpad_sent
    t.server_key_flips t.stale_steps
    (String.concat " " (List.map Fortress_model.Node_id.to_string t.unreachable))
