(** What an adaptive strategy asks the campaign to change.

    A directive is a sparse override: [None] fields leave the current
    setting alone. Directives are {e staged} when decided and {e applied}
    only at the next step boundary, so a mid-step decision can never
    perturb the probes already scheduled for the step — the property that
    keeps adaptive trials deterministic and job-count invariant. *)

type launchpad = Within_step | Next_step

let launchpad_to_string = function Within_step -> "within-step" | Next_step -> "next-step"

type t = {
  kappa : float option;  (** new indirect split of the omega budget, in [0,1] *)
  exclude : Fortress_model.Node_id.t list option;
      (** nodes to steer probes away from; [Some []] clears all exclusions *)
  pacing : Pacing.t option;
  launchpad : launchpad option;
}

let unchanged = { kappa = None; exclude = None; pacing = None; launchpad = None }
let is_unchanged d = d = unchanged

let make ?kappa ?exclude ?pacing ?launchpad () = { kappa; exclude; pacing; launchpad }

let to_string d =
  if is_unchanged d then "unchanged"
  else
    String.concat ", "
      (List.concat
         [
           (match d.kappa with Some k -> [ Printf.sprintf "kappa=%g" k ] | None -> []);
           (match d.exclude with
           | Some [] -> [ "exclude=none" ]
           | Some nodes ->
               [
                 "exclude="
                 ^ String.concat "+" (List.map Fortress_model.Node_id.to_string nodes);
               ]
           | None -> []);
           (match d.pacing with Some p -> [ "pacing=" ^ Pacing.to_string p ] | None -> []);
           (match d.launchpad with
           | Some l -> [ "launchpad=" ^ launchpad_to_string l ]
           | None -> []);
         ])
