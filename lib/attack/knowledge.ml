module Keyspace = Fortress_defense.Keyspace
module Prng = Fortress_util.Prng

type t = {
  ks : Keyspace.t;
  mutable tried : (int, unit) Hashtbl.t;
  mutable key : int option;
}

let create ks = { ks; tried = Hashtbl.create 64; key = None }
let keyspace t = t.ks
let eliminated t = Hashtbl.length t.tried
let remaining t = Keyspace.size t.ks - eliminated t
let known_key t = t.key

let next_guess t prng =
  match t.key with
  | Some k -> Some k
  | None ->
      let n = Keyspace.size t.ks in
      let left = remaining t in
      if left <= 0 then
        (* every key eliminated with none confirmed: only possible when the
           target changed keys under us (e.g. missed a rekey signal under
           faults) — the attacker is exhausted, not the program wrong *)
        None
      else if left > n / 2 then begin
        (* rejection sampling is cheap while most keys are untried *)
        let rec draw () =
          let g = Prng.int prng ~bound:n in
          if Hashtbl.mem t.tried g then draw () else g
        in
        Some (draw ())
      end
      else begin
        (* few keys left: walk to the j-th untried key *)
        let j = ref (Prng.int prng ~bound:left) in
        let result = ref (-1) in
        (try
           for g = 0 to n - 1 do
             if not (Hashtbl.mem t.tried g) then begin
               if !j = 0 then begin
                 result := g;
                 raise Exit
               end;
               decr j
             end
           done
         with Exit -> ());
        assert (!result >= 0);
        Some !result
      end

let observe_crash t ~guess = Hashtbl.replace t.tried guess ()
let observe_intrusion t ~guess = t.key <- Some guess

let on_target_rekeyed t =
  t.tried <- Hashtbl.create 64;
  t.key <- None

let on_target_recovered _ = ()
