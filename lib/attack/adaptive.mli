(** The adaptive attacker: an observe–decide–act loop over {!Campaign}.

    Each step boundary the campaign hands the strategy one
    {!Observation.t} assembled from attacker-plausible signals only (probe
    bookkeeping, blocked-source feedback, inferred key staleness, request
    timeouts — see DESIGN.md section 10). The strategy answers with a
    {!Directive.t}; non-trivial directives are staged and folded into the
    campaign's live settings at the {e next} boundary. Decisions never
    touch the engine mid-step, consume no PRNG, and emit events only when
    a setting actually moves, so

    - {!Strategy.oblivious} is bit-identical to the fixed-schedule
      campaign (the regression anchor), and
    - every strategy is deterministic and job-count invariant. *)

module Strategy : sig
  type decide = Observation.t -> Directive.t

  type t = {
    name : string;  (** CLI name, e.g. ["stale-key-rush"] *)
    describe : string;  (** one-line help text *)
    make : default_kappa:float -> decide;
        (** build a fresh decide function (with fresh internal state) for
            one campaign; [default_kappa] is the config value to restore
            when an override is lifted *)
  }

  val oblivious : t
  (** Observes but never acts. Bit-identical traces to the fixed schedule. *)

  val stale_key_rush : t
  (** While the server key is provably stale (probes keep landing and the
      elimination count never resets — e.g. chaos has wedged the
      obfuscation coordinator), pour the whole indirect budget at the
      server tier ([kappa -> 1]); restore the configured kappa on the
      next observed rekey. *)

  val partition_follower : t
  (** Steer probes away from nodes whose requests timed out during the
      step; lift the exclusion once they answer again. Matters under
      partition plans, where probes at unreachable proxies are wasted
      budget. *)

  val probe_pacer : t
  (** After a source burns, switch probe pacing to
      [Pacing.Below_threshold] (stay under the suspicion window the burn
      reveals); return to uniform pacing after three steps without a
      burn. The dual of the defender's threshold-tightener. *)

  val builtins : t list
  val names : string list
  val find : string -> t option
end

type config = { campaign : Campaign.config; strategy : Strategy.t }

val make_config : ?strategy:Strategy.t -> Campaign.config -> config
(** Default strategy: {!Strategy.oblivious}. *)

type t

val launch : Fortress_core.Deployment.t -> config -> t
val run_until_compromise : t -> max_steps:int -> int option
val stats : t -> Campaign_intf.Stats.t
val strategy : t -> Strategy.t

val campaign : t -> Campaign.t
(** The wrapped campaign, e.g. for {!Campaign.settings} introspection. *)

(** The same wrapper over the 1-tier SMR campaign (S0). Only the
    exclusion field of a directive acts there, so
    {!Strategy.partition_follower} is the interesting strategy; the
    others degrade gracefully to oblivious behaviour. *)
module Smr : sig
  type config = { campaign : Smr_campaign.config; strategy : Strategy.t }

  val make_config : ?strategy:Strategy.t -> Smr_campaign.config -> config

  type t

  val launch : Fortress_core.Smr_deployment.t -> config -> t
  val run_until_compromise : t -> max_steps:int -> int option
  val stats : t -> Campaign_intf.Stats.t
  val campaign : t -> Smr_campaign.t
end
