module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Address = Fortress_net.Address
module Instance = Fortress_defense.Instance
module Deployment = Fortress_core.Deployment
module Proxy = Fortress_core.Proxy
module Message = Fortress_core.Message
module Obfuscation = Fortress_core.Obfuscation
module Pb = Fortress_replication.Pb
module Prng = Fortress_util.Prng
module Event = Fortress_obs.Event
module Prof = Fortress_prof.Profiler

let probe_phase = Prof.register "attack.probe"

type launchpad = Within_step | Next_step

type config = {
  omega : int;
  kappa : float;
  period : float;
  pacing : Pacing.t;
  launchpad : launchpad;
  target_mode : Obfuscation.mode;
  rotate_sources : bool;
  seed : int;
}

let default_config =
  {
    omega = 64;
    kappa = 0.5;
    period = 100.0;
    pacing = Pacing.Uniform;
    launchpad = Within_step;
    target_mode = Obfuscation.PO;
    rotate_sources = true;
    seed = 0;
  }

type tracked = {
  knowledge : Knowledge.t;
  mutable epoch_seen : int;
  mutable exhausted_noted : bool;  (** one trace line per exhausted epoch *)
}

type t = {
  deployment : Deployment.t;
  cfg : config;
  prng : Prng.t;
  proxy_tracks : tracked array;
  server_track : tracked;  (** servers share one key, so one knowledge pool *)
  proxy_fell_at : int option array;  (** step at which each proxy fell *)
  mutable source : Address.t;
  mutable current_step : int;
  mutable compromised_at : int option;
  mutable direct_sent : int;
  mutable indirect_sent : int;
  mutable indirect_blocked : int;
  mutable launchpad_sent : int;
  mutable sources_burned : int;
  mutable exhausted_slots : int;  (** probe slots skipped for want of untried keys *)
  mutable rr : int;  (** round-robin proxy cursor for indirect probes *)
}

let new_source t =
  Deployment.new_attacker_address t.deployment
    ~name:(Printf.sprintf "attacker-src%d" t.sources_burned)
    ~handler:(fun ~src:_ _ -> ())

let make deployment cfg =
  let ks = Deployment.config deployment in
  let keyspace = ks.Deployment.keyspace in
  let np = Array.length (Deployment.proxies deployment) in
  let track inst =
    {
      knowledge = Knowledge.create keyspace;
      epoch_seen = Instance.epoch inst;
      exhausted_noted = false;
    }
  in
  let proxy_instances = Deployment.proxy_instances deployment in
  let server_instances = Deployment.server_instances deployment in
  let t =
    {
      deployment;
      cfg;
      prng = Prng.create ~seed:cfg.seed;
      proxy_tracks = Array.map track proxy_instances;
      server_track = track server_instances.(0);
      proxy_fell_at = Array.make (max np 1) None;
      source = Address.make 0;
      current_step = 1;
      compromised_at = None;
      direct_sent = 0;
      indirect_sent = 0;
      indirect_blocked = 0;
      launchpad_sent = 0;
      sources_burned = 0;
      exhausted_slots = 0;
      rr = 0;
    }
  in
  t.source <- new_source t;
  t

(* The attacker knows the defender's schedule: on an epoch change, PO means
   fresh keys (knowledge void), SO means recovery only (knowledge holds). *)
let sync_track t track inst =
  let epoch = Instance.epoch inst in
  if epoch <> track.epoch_seen then begin
    track.epoch_seen <- epoch;
    track.exhausted_noted <- false;
    match t.cfg.target_mode with
    | Obfuscation.PO -> Knowledge.on_target_rekeyed track.knowledge
    | Obfuscation.SO -> Knowledge.on_target_recovered track.knowledge
  end

(* The attacker has eliminated the whole key space without a hit: the
   target's key changed under it. Skip the slot and keep waiting for the
   epoch change the next sync will pick up. *)
let note_exhausted t track ~what =
  t.exhausted_slots <- t.exhausted_slots + 1;
  if not track.exhausted_noted then begin
    track.exhausted_noted <- true;
    Engine.emit
      (Deployment.engine t.deployment)
      (Event.Note
         {
           label = "attacker_exhausted";
           detail = Printf.sprintf "key space exhausted against %s; attacker idles" what;
         })
  end

let note_if_compromised t =
  if t.compromised_at = None && Deployment.system_compromised t.deployment then
    t.compromised_at <- Some t.current_step

let primary_server_index t =
  let servers = Deployment.servers t.deployment in
  let found = ref 0 in
  Array.iteri (fun i r -> if Pb.is_primary r then found := i) servers;
  !found

let emit_probe t ~kind ~tier ~target outcome =
  Engine.emit
    (Deployment.engine t.deployment)
    (Event.Probe { kind; tier; target; outcome })

(* A probe against the shared server key, whether indirect (through a
   proxy) or over a captured launch pad. *)
let probe_server t ~kind =
  let insts = Deployment.server_instances t.deployment in
  sync_track t t.server_track insts.(0);
  match Knowledge.next_guess t.server_track.knowledge t.prng with
  | None -> note_exhausted t t.server_track ~what:"server tier"
  | Some guess -> (
      let target = primary_server_index t in
      match Instance.probe insts.(0) ~guess with
      | Instance.Crash ->
          Knowledge.observe_crash t.server_track.knowledge ~guess;
          emit_probe t ~kind ~tier:Event.Server_tier ~target Event.Crashed
      | Instance.Intrusion ->
          Knowledge.observe_intrusion t.server_track.knowledge ~guess;
          emit_probe t ~kind ~tier:Event.Server_tier ~target Event.Intruded;
          Deployment.compromise_server t.deployment target;
          note_if_compromised t)

let probe_proxy t j =
  let insts = Deployment.proxy_instances t.deployment in
  let track = t.proxy_tracks.(j) in
  sync_track t track insts.(j);
  match Knowledge.next_guess track.knowledge t.prng with
  | None -> note_exhausted t track ~what:(Printf.sprintf "proxy %d" j)
  | Some guess -> (
      match Instance.probe insts.(j) ~guess with
      | Instance.Crash ->
          Knowledge.observe_crash track.knowledge ~guess;
          emit_probe t ~kind:Event.Direct ~tier:Event.Proxy_tier ~target:j Event.Crashed
      | Instance.Intrusion ->
          Knowledge.observe_intrusion track.knowledge ~guess;
          emit_probe t ~kind:Event.Direct ~tier:Event.Proxy_tier ~target:j Event.Intruded;
          Deployment.compromise_proxy t.deployment j;
          if t.proxy_fell_at.(j) = None then t.proxy_fell_at.(j) <- Some t.current_step;
          note_if_compromised t)

(* Direct probe slot aimed at proxy [j] (or at a server directly when there
   are no proxies). A fallen proxy turns its remaining slots into
   launch-pad probes, subject to the launchpad discipline. *)
let direct_probe_slot_unprofiled t j =
  if t.compromised_at = None then begin
    let np = Array.length (Deployment.proxies t.deployment) in
    if np = 0 then begin
      t.direct_sent <- t.direct_sent + 1;
      probe_server t ~kind:Event.Direct
    end
    else if not (Deployment.proxy_compromised t.deployment j) then begin
      t.direct_sent <- t.direct_sent + 1;
      (* the deployment may have cleared the flag at a boundary *)
      if t.proxy_fell_at.(j) <> None && t.cfg.target_mode = Obfuscation.PO then
        t.proxy_fell_at.(j) <- None;
      probe_proxy t j
    end
    else begin
      let usable =
        match t.cfg.launchpad with
        | Within_step -> true
        | Next_step -> (
            match t.proxy_fell_at.(j) with
            | Some s -> s < t.current_step
            | None -> true (* fell before we started tracking: treat as old *))
      in
      if usable then begin
        t.launchpad_sent <- t.launchpad_sent + 1;
        probe_server t ~kind:Event.Launchpad
      end
    end
  end

(* Indirect probe: route a probe command through a live proxy. The proxy
   logs it as an invalid request (and may block the source); if the source
   was not blocked, the probe reaches the server tier and tests the shared
   server key. *)
let direct_probe_slot t j =
  if Prof.is_enabled () then Prof.record probe_phase (fun () -> direct_probe_slot_unprofiled t j)
  else direct_probe_slot_unprofiled t j

let indirect_probe_slot_unprofiled t =
  if t.compromised_at = None then begin
    let proxies = Deployment.proxies t.deployment in
    let np = Array.length proxies in
    if np > 0 then begin
      let j = t.rr mod np in
      t.rr <- t.rr + 1;
      let proxy = proxies.(j) in
      let net = Deployment.network t.deployment in
      let engine = Deployment.engine t.deployment in
      match Knowledge.next_guess t.server_track.knowledge t.prng with
      | None -> note_exhausted t t.server_track ~what:"server tier"
      | Some guess ->
          let cmd = Printf.sprintf "probe:%d" guess in
          let src = t.source in
          t.indirect_sent <- t.indirect_sent + 1;
          Network.send net ~src ~dst:(Deployment.proxy_addresses t.deployment).(j)
            (Message.Client_request
               { id = Printf.sprintf "atk-%d" t.indirect_sent; cmd; client = src });
          (* evaluate after the proxy has processed the request *)
          ignore
            (Engine.schedule engine ~delay:2.0 (fun () ->
                 if Proxy.is_blocked proxy src then begin
                   t.indirect_blocked <- t.indirect_blocked + 1;
                   emit_probe t ~kind:Event.Indirect ~tier:Event.Proxy_tier ~target:j
                     Event.Blocked;
                   if t.cfg.rotate_sources then begin
                     t.sources_burned <- t.sources_burned + 1;
                     t.source <- new_source t;
                     Engine.emit engine (Event.Source_rotated { burned = t.sources_burned })
                   end
                 end
                 else if t.compromised_at = None then probe_server t ~kind:Event.Indirect))
    end
  end

let indirect_probe_slot t =
  if Prof.is_enabled () then Prof.record probe_phase (fun () -> indirect_probe_slot_unprofiled t)
  else indirect_probe_slot_unprofiled t

let arm t =
  let engine = Deployment.engine t.deployment in
  let np = Array.length (Deployment.proxies t.deployment) in
  let direct_targets = max np 1 in
  let indirect_per_step =
    if np = 0 then 0
    else int_of_float (Float.round (t.cfg.kappa *. float_of_int t.cfg.omega))
  in
  let rec arm_step () =
    if t.compromised_at = None then begin
      let base = Engine.now engine in
      Engine.emit engine (Event.Step { n = t.current_step });
      let step_span = Engine.span engine "attack.step" in
      Fortress_obs.Span.set_attr step_span "step" (string_of_int t.current_step);
      let direct_offsets = Pacing.offsets t.cfg.pacing ~budget:t.cfg.omega ~period:t.cfg.period in
      List.iteri
        (fun s offset ->
          let at = base +. offset in
          for j = 0 to direct_targets - 1 do
            ignore (Engine.schedule_at engine ~time:at (fun () -> direct_probe_slot t j))
          done;
          if s < indirect_per_step then
            ignore
              (Engine.schedule_at engine
                 ~time:(at +. (t.cfg.period /. float_of_int (3 * (t.cfg.omega + 2))))
                 (fun () -> indirect_probe_slot t)))
        direct_offsets;
      ignore
        (Engine.schedule_at engine ~time:(base +. t.cfg.period) (fun () ->
             Engine.finish_span engine step_span;
             t.current_step <- t.current_step + 1;
             arm_step ()))
    end
  in
  arm_step ()

let launch deployment cfg =
  if cfg.omega <= 0 then invalid_arg "Campaign.launch: omega must be positive";
  if cfg.kappa < 0.0 || cfg.kappa > 1.0 then invalid_arg "Campaign.launch: kappa in [0,1]";
  let t = make deployment cfg in
  arm t;
  t

let run_until_compromise t ~max_steps =
  let engine = Deployment.engine t.deployment in
  let rec go () =
    match t.compromised_at with
    | Some s -> Some s
    | None ->
        if t.current_step > max_steps then None
        else begin
          Engine.run ~until:(Engine.now engine +. t.cfg.period) engine;
          go ()
        end
  in
  go ()

let compromised_at_step t = t.compromised_at
let direct_probes_sent t = t.direct_sent
let indirect_probes_sent t = t.indirect_sent
let indirect_probes_blocked t = t.indirect_blocked
let launchpad_probes_sent t = t.launchpad_sent
let sources_burned t = t.sources_burned
let exhausted_slots t = t.exhausted_slots

let effective_kappa t =
  let intended = t.cfg.kappa *. float_of_int t.cfg.omega *. float_of_int t.current_step in
  if intended <= 0.0 then 0.0
  else float_of_int (t.indirect_sent - t.indirect_blocked) /. intended
