module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Address = Fortress_net.Address
module Instance = Fortress_defense.Instance
module Deployment = Fortress_core.Deployment
module Proxy = Fortress_core.Proxy
module Message = Fortress_core.Message
module Obfuscation = Fortress_core.Obfuscation
module Pb = Fortress_replication.Pb
module Prng = Fortress_util.Prng
module Event = Fortress_obs.Event
module Prof = Fortress_prof.Profiler
module Node_id = Fortress_model.Node_id
module Stats = Campaign_intf.Stats

let probe_phase = Prof.register "attack.probe"

type launchpad = Directive.launchpad = Within_step | Next_step

type config = {
  omega : int;
  kappa : float;
  period : float;
  pacing : Pacing.t;
  launchpad : launchpad;
  target_mode : Obfuscation.mode;
  rotate_sources : bool;
  seed : int;
}

let default_config =
  {
    omega = 64;
    kappa = 0.5;
    period = 100.0;
    pacing = Pacing.Uniform;
    launchpad = Within_step;
    target_mode = Obfuscation.PO;
    rotate_sources = true;
    seed = 0;
  }

let make_config ?(omega = default_config.omega) ?(kappa = default_config.kappa)
    ?(period = default_config.period) ?(pacing = default_config.pacing)
    ?(launchpad = default_config.launchpad) ?(target_mode = default_config.target_mode)
    ?(rotate_sources = default_config.rotate_sources) ~seed () =
  { omega; kappa; period; pacing; launchpad; target_mode; rotate_sources; seed }

type tracked = {
  knowledge : Knowledge.t;
  mutable epoch_seen : int;
  mutable flips : int;  (** epoch changes observed so far *)
  mutable exhausted_noted : bool;  (** one trace line per exhausted epoch *)
}

(* The live settings the arm loop reads. They start as copies of the
   config and move only when a staged directive is applied at a step
   boundary, so a campaign that never stages anything behaves — to the
   byte — like the fixed schedule. *)
type settings = {
  mutable kappa : float;
  mutable pacing : Pacing.t;
  mutable launchpad : launchpad;
  mutable excluded : bool array;  (** per-proxy target-set exclusion *)
}

type t = {
  deployment : Deployment.t;
  cfg : config;
  prng : Prng.t;
  proxy_tracks : tracked array;
  server_track : tracked;  (** servers share one key, so one knowledge pool *)
  proxy_fell_at : int option array;  (** step at which each proxy fell *)
  eff : settings;
  mutable staged : Directive.t option;
  mutable boundary_hook : (Observation.t -> unit) option;
  mutable strategy_name : string;
  mutable observing : bool;  (** sample the symptom surface during steps *)
  unreach_seen : bool array;  (** per-proxy timeout symptoms this step *)
  mutable source : Address.t;
  mutable current_step : int;
  mutable compromised_at : int option;
  mutable direct_sent : int;
  mutable indirect_sent : int;
  mutable indirect_blocked : int;
  mutable launchpad_sent : int;
  mutable sources_burned : int;
  mutable intrusions : int;
  mutable exhausted_slots : int;  (** probe slots skipped for want of untried keys *)
  mutable server_probes : int;  (** probe attempts against the server tier *)
  mutable directives_applied : int;
  mutable rr : int;  (** round-robin proxy cursor for indirect probes *)
  mutable redirect : int;  (** cursor for re-targeting excluded proxies' slots *)
  (* per-step counter marks, snapshotted at each boundary *)
  mutable m_direct : int;
  mutable m_indirect : int;
  mutable m_blocked : int;
  mutable m_launchpad : int;
  mutable m_burned : int;
  mutable m_server_probes : int;
  mutable m_flips : int;
  mutable stale_steps : int;
}

let new_source t =
  Deployment.new_attacker_address t.deployment
    ~name:(Printf.sprintf "attacker-src%d" t.sources_burned)
    ~handler:(fun ~src:_ _ -> ())

let make deployment cfg =
  let ks = Deployment.config deployment in
  let keyspace = ks.Deployment.keyspace in
  let np = Array.length (Deployment.proxies deployment) in
  let track inst =
    {
      knowledge = Knowledge.create keyspace;
      epoch_seen = Instance.epoch inst;
      flips = 0;
      exhausted_noted = false;
    }
  in
  let proxy_instances = Deployment.proxy_instances deployment in
  let server_instances = Deployment.server_instances deployment in
  let t =
    {
      deployment;
      cfg;
      prng = Prng.create ~seed:cfg.seed;
      proxy_tracks = Array.map track proxy_instances;
      server_track = track server_instances.(0);
      proxy_fell_at = Array.make (max np 1) None;
      eff =
        {
          kappa = cfg.kappa;
          pacing = cfg.pacing;
          launchpad = cfg.launchpad;
          excluded = Array.make (max np 1) false;
        };
      staged = None;
      boundary_hook = None;
      strategy_name = "";
      observing = false;
      unreach_seen = Array.make (max np 1) false;
      source = Address.make 0;
      current_step = 1;
      compromised_at = None;
      direct_sent = 0;
      indirect_sent = 0;
      indirect_blocked = 0;
      launchpad_sent = 0;
      sources_burned = 0;
      intrusions = 0;
      exhausted_slots = 0;
      server_probes = 0;
      directives_applied = 0;
      rr = 0;
      redirect = 0;
      m_direct = 0;
      m_indirect = 0;
      m_blocked = 0;
      m_launchpad = 0;
      m_burned = 0;
      m_server_probes = 0;
      m_flips = 0;
      stale_steps = 0;
    }
  in
  t.source <- new_source t;
  t

(* The attacker knows the defender's schedule: on an epoch change, PO means
   fresh keys (knowledge void), SO means recovery only (knowledge holds).
   The epoch read stands in for an inference the attacker can make from its
   own statistics — a re-randomized target starts crashing on guesses the
   attacker had already eliminated (see DESIGN.md section 10). *)
let sync_track t track inst =
  let epoch = Instance.epoch inst in
  if epoch <> track.epoch_seen then begin
    track.epoch_seen <- epoch;
    track.flips <- track.flips + 1;
    track.exhausted_noted <- false;
    match t.cfg.target_mode with
    | Obfuscation.PO -> Knowledge.on_target_rekeyed track.knowledge
    | Obfuscation.SO -> Knowledge.on_target_recovered track.knowledge
  end

(* The attacker has eliminated the whole key space without a hit: the
   target's key changed under it. Skip the slot and keep waiting for the
   epoch change the next sync will pick up. *)
let note_exhausted t track ~what =
  t.exhausted_slots <- t.exhausted_slots + 1;
  if not track.exhausted_noted then begin
    track.exhausted_noted <- true;
    Engine.emit
      (Deployment.engine t.deployment)
      (Event.Note
         {
           label = "attacker_exhausted";
           detail = Printf.sprintf "key space exhausted against %s; attacker idles" what;
         })
  end

let note_if_compromised t =
  if t.compromised_at = None && Deployment.system_compromised t.deployment then
    t.compromised_at <- Some t.current_step

let primary_server_index t =
  let servers = Deployment.servers t.deployment in
  let found = ref 0 in
  Array.iteri (fun i r -> if Pb.is_primary r then found := i) servers;
  !found

let emit_probe t ~kind ~tier ~target outcome =
  Engine.emit
    (Deployment.engine t.deployment)
    (Event.Probe { kind; tier; target; outcome })

(* A probe against the shared server key, whether indirect (through a
   proxy) or over a captured launch pad. *)
let probe_server t ~kind =
  let insts = Deployment.server_instances t.deployment in
  t.server_probes <- t.server_probes + 1;
  sync_track t t.server_track insts.(0);
  match Knowledge.next_guess t.server_track.knowledge t.prng with
  | None -> note_exhausted t t.server_track ~what:"server tier"
  | Some guess -> (
      let target = primary_server_index t in
      match Instance.probe insts.(0) ~guess with
      | Instance.Crash ->
          Knowledge.observe_crash t.server_track.knowledge ~guess;
          emit_probe t ~kind ~tier:Event.Server_tier ~target Event.Crashed
      | Instance.Intrusion ->
          Knowledge.observe_intrusion t.server_track.knowledge ~guess;
          t.intrusions <- t.intrusions + 1;
          emit_probe t ~kind ~tier:Event.Server_tier ~target Event.Intruded;
          Deployment.compromise_server t.deployment target;
          note_if_compromised t)

let probe_proxy t j =
  let insts = Deployment.proxy_instances t.deployment in
  let track = t.proxy_tracks.(j) in
  sync_track t track insts.(j);
  match Knowledge.next_guess track.knowledge t.prng with
  | None -> note_exhausted t track ~what:(Printf.sprintf "proxy %d" j)
  | Some guess -> (
      match Instance.probe insts.(j) ~guess with
      | Instance.Crash ->
          Knowledge.observe_crash track.knowledge ~guess;
          emit_probe t ~kind:Event.Direct ~tier:Event.Proxy_tier ~target:j Event.Crashed
      | Instance.Intrusion ->
          Knowledge.observe_intrusion track.knowledge ~guess;
          t.intrusions <- t.intrusions + 1;
          emit_probe t ~kind:Event.Direct ~tier:Event.Proxy_tier ~target:j Event.Intruded;
          Deployment.compromise_proxy t.deployment j;
          if t.proxy_fell_at.(j) = None then t.proxy_fell_at.(j) <- Some t.current_step;
          note_if_compromised t)

(* Steer an excluded proxy's slot to the next included proxy (cursor scan);
   with nothing excluded this is the identity and touches no cursor. *)
let redirect_target t j np =
  if not t.eff.excluded.(j) then j
  else begin
    let rec find k n = if n = 0 then j else if not t.eff.excluded.(k) then k else find ((k + 1) mod np) (n - 1) in
    let k = find (t.redirect mod np) np in
    if k <> j then t.redirect <- t.redirect + 1;
    k
  end

(* Sample proxy [j]'s reachability symptom: a probe either times out or
   answers, and each probe is its own liveness check — fault windows open
   and close mid-step, so the verdict must not be cached across a step
   (a window period-aligned after the step's first probe would otherwise
   go unseen forever). Once a timeout has been seen this step the flag is
   monotone and resampling is skipped. Reads only; no PRNG, no events. *)
let sample_unreach t j =
  if t.observing && not t.unreach_seen.(j) then
    if
      Fortress_core.Symptom.is_unreachable
        (Deployment.symptoms t.deployment)
        (Node_id.Proxy j)
    then t.unreach_seen.(j) <- true

(* Direct probe slot aimed at proxy [j] (or at a server directly when there
   are no proxies). A fallen proxy turns its remaining slots into
   launch-pad probes, subject to the launchpad discipline. *)
let direct_probe_slot_unprofiled t j =
  if t.compromised_at = None then begin
    let np = Array.length (Deployment.proxies t.deployment) in
    if np = 0 then begin
      t.direct_sent <- t.direct_sent + 1;
      probe_server t ~kind:Event.Direct
    end
    else begin
      (* the probe is an interaction: its timeout-or-answer is the
         attacker's partition symptom (sampled against the slot's original
         target, before any redirect) *)
      sample_unreach t j;
      let j = redirect_target t j np in
      if not (Deployment.proxy_compromised t.deployment j) then begin
        t.direct_sent <- t.direct_sent + 1;
        (* the deployment may have cleared the flag at a boundary *)
        if t.proxy_fell_at.(j) <> None && t.cfg.target_mode = Obfuscation.PO then
          t.proxy_fell_at.(j) <- None;
        probe_proxy t j
      end
      else begin
        let usable =
          match t.eff.launchpad with
          | Within_step -> true
          | Next_step -> (
              match t.proxy_fell_at.(j) with
              | Some s -> s < t.current_step
              | None -> true (* fell before we started tracking: treat as old *))
        in
        if usable then begin
          t.launchpad_sent <- t.launchpad_sent + 1;
          probe_server t ~kind:Event.Launchpad
        end
      end
    end
  end

(* Indirect probe: route a probe command through a live proxy. The proxy
   logs it as an invalid request (and may block the source); if the source
   was not blocked, the probe reaches the server tier and tests the shared
   server key. *)
let direct_probe_slot t j =
  if Prof.is_enabled () then Prof.record probe_phase (fun () -> direct_probe_slot_unprofiled t j)
  else direct_probe_slot_unprofiled t j

(* Round-robin over the included proxies; with nothing excluded this is
   exactly the legacy single-increment round-robin. *)
let pick_indirect_proxy t np =
  let rec go n =
    let j = t.rr mod np in
    t.rr <- t.rr + 1;
    if n = 0 || not t.eff.excluded.(j) then j else go (n - 1)
  in
  go np

let indirect_probe_slot_unprofiled t =
  if t.compromised_at = None then begin
    let proxies = Deployment.proxies t.deployment in
    let np = Array.length proxies in
    if np > 0 then begin
      let j = pick_indirect_proxy t np in
      let proxy = proxies.(j) in
      let net = Deployment.network t.deployment in
      let engine = Deployment.engine t.deployment in
      sample_unreach t j;
      match Knowledge.next_guess t.server_track.knowledge t.prng with
      | None -> note_exhausted t t.server_track ~what:"server tier"
      | Some guess ->
          let cmd = Printf.sprintf "probe:%d" guess in
          let src = t.source in
          t.indirect_sent <- t.indirect_sent + 1;
          Network.send net ~src ~dst:(Deployment.proxy_addresses t.deployment).(j)
            (Message.Client_request
               { id = Printf.sprintf "atk-%d" t.indirect_sent; cmd; client = src });
          (* evaluate after the proxy has processed the request *)
          ignore
            (Engine.schedule engine ~delay:2.0 (fun () ->
                 if Proxy.is_blocked proxy src then begin
                   t.indirect_blocked <- t.indirect_blocked + 1;
                   emit_probe t ~kind:Event.Indirect ~tier:Event.Proxy_tier ~target:j
                     Event.Blocked;
                   if t.cfg.rotate_sources then begin
                     t.sources_burned <- t.sources_burned + 1;
                     t.source <- new_source t;
                     Engine.emit engine (Event.Source_rotated { burned = t.sources_burned })
                   end
                 end
                 else if t.compromised_at = None then probe_server t ~kind:Event.Indirect))
    end
  end

let indirect_probe_slot t =
  if Prof.is_enabled () then Prof.record probe_phase (fun () -> indirect_probe_slot_unprofiled t)
  else indirect_probe_slot_unprofiled t

(* ---- observe / decide / act plumbing ---- *)

let stage t directive =
  if not (Directive.is_unchanged directive) then
    t.staged <-
      Some
        (match t.staged with
        | None -> directive
        | Some prev ->
            (* later stages win field-wise within the same step *)
            {
              Directive.kappa =
                (match directive.Directive.kappa with Some _ as k -> k | None -> prev.Directive.kappa);
              exclude =
                (match directive.Directive.exclude with Some _ as e -> e | None -> prev.Directive.exclude);
              pacing =
                (match directive.Directive.pacing with Some _ as p -> p | None -> prev.Directive.pacing);
              launchpad =
                (match directive.Directive.launchpad with
                | Some _ as l -> l
                | None -> prev.Directive.launchpad);
            })

let set_boundary_hook t ~name hook =
  t.boundary_hook <- Some hook;
  t.strategy_name <- name;
  t.observing <- true

(* Assemble what the attacker saw during the step that just completed.
   Pure reads and arithmetic only: no PRNG, no events. *)
let observe t =
  let np = Array.length (Deployment.proxies t.deployment) in
  let flips = t.server_track.flips in
  let server_delta = t.server_probes - t.m_server_probes in
  let rekey_missed = flips = t.m_flips && server_delta > 0 in
  let unreachable = ref [] in
  (if np = 0 then begin
     let syms = Deployment.symptoms t.deployment in
     for i = Array.length (Deployment.server_instances t.deployment) - 1 downto 0 do
       if Fortress_core.Symptom.is_unreachable syms (Node_id.Server i) then
         unreachable := Node_id.Server i :: !unreachable
     done
   end
   else
     for j = np - 1 downto 0 do
       if t.unreach_seen.(j) then unreachable := Node_id.Proxy j :: !unreachable
     done);
  t.stale_steps <- (if rekey_missed then t.stale_steps + 1 else 0);
  {
    Observation.step = t.current_step;
    direct_sent = t.direct_sent - t.m_direct;
    indirect_sent = t.indirect_sent - t.m_indirect;
    indirect_blocked = t.indirect_blocked - t.m_blocked;
    launchpad_sent = t.launchpad_sent - t.m_launchpad;
    sources_burned = t.sources_burned - t.m_burned;
    server_key_flips = flips;
    rekey_missed;
    stale_steps = t.stale_steps;
    unreachable = !unreachable;
    targets = (if np = 0 then Array.length (Deployment.server_instances t.deployment) else np);
  }

let reset_step_marks t =
  t.m_direct <- t.direct_sent;
  t.m_indirect <- t.indirect_sent;
  t.m_blocked <- t.indirect_blocked;
  t.m_launchpad <- t.launchpad_sent;
  t.m_burned <- t.sources_burned;
  t.m_server_probes <- t.server_probes;
  t.m_flips <- t.server_track.flips;
  Array.fill t.unreach_seen 0 (Array.length t.unreach_seen) false

(* Fold the staged directive (if any) into the live settings. Runs only at
   step boundaries; emits one Directive event when — and only when — a
   setting actually moved. *)
let apply_staged t =
  match t.staged with
  | None -> ()
  | Some d ->
      t.staged <- None;
      let np = Array.length (Deployment.proxies t.deployment) in
      let changed = ref [] in
      let note what = changed := what :: !changed in
      (match d.Directive.kappa with
      | Some k ->
          let k = Float.min 1.0 (Float.max 0.0 k) in
          if k <> t.eff.kappa then begin
            t.eff.kappa <- k;
            note (Printf.sprintf "kappa=%g" k)
          end
      | None -> ());
      (match d.Directive.pacing with
      | Some p ->
          if p <> t.eff.pacing then begin
            t.eff.pacing <- p;
            note ("pacing=" ^ Pacing.to_string p)
          end
      | None -> ());
      (match d.Directive.launchpad with
      | Some l ->
          if l <> t.eff.launchpad then begin
            t.eff.launchpad <- l;
            note ("launchpad=" ^ Directive.launchpad_to_string l)
          end
      | None -> ());
      (match d.Directive.exclude with
      | Some nodes ->
          let fresh = Array.make (max np 1) false in
          List.iter
            (function
              | Node_id.Proxy j when j >= 0 && j < np -> fresh.(j) <- true
              | _ -> ())
            nodes;
          (* never exclude everything: an attacker with no targets left
             falls back to the full set *)
          if Array.for_all Fun.id (Array.sub fresh 0 (max np 1)) then
            Array.fill fresh 0 (Array.length fresh) false;
          if fresh <> t.eff.excluded then begin
            t.eff.excluded <- fresh;
            let named = ref [] in
            for j = np - 1 downto 0 do
              if fresh.(j) then named := string_of_int j :: !named
            done;
            note
              (if !named = [] then "exclude=none"
               else "exclude=proxy" ^ String.concat "+proxy" !named)
          end
      | None -> ());
      if !changed <> [] then begin
        t.directives_applied <- t.directives_applied + 1;
        Engine.emit
          (Deployment.engine t.deployment)
          (Event.Directive
             {
               step = t.current_step;
               strategy = (if t.strategy_name = "" then "manual" else t.strategy_name);
               detail = String.concat ", " (List.rev !changed);
             })
      end

let arm t =
  let engine = Deployment.engine t.deployment in
  let np = Array.length (Deployment.proxies t.deployment) in
  let direct_targets = max np 1 in
  let rec arm_step () =
    if t.compromised_at = None then begin
      let base = Engine.now engine in
      Engine.emit engine (Event.Step { n = t.current_step });
      let step_span = Engine.span engine "attack.step" in
      Fortress_obs.Span.set_attr step_span "step" (string_of_int t.current_step);
      let indirect_per_step =
        if np = 0 then 0
        else int_of_float (Float.round (t.eff.kappa *. float_of_int t.cfg.omega))
      in
      let direct_offsets = Pacing.offsets t.eff.pacing ~budget:t.cfg.omega ~period:t.cfg.period in
      List.iteri
        (fun s offset ->
          let at = base +. offset in
          for j = 0 to direct_targets - 1 do
            ignore (Engine.schedule_at engine ~time:at (fun () -> direct_probe_slot t j))
          done;
          if s < indirect_per_step then
            ignore
              (Engine.schedule_at engine
                 ~time:(at +. (t.cfg.period /. float_of_int (3 * (t.cfg.omega + 2))))
                 (fun () -> indirect_probe_slot t)))
        direct_offsets;
      ignore
        (Engine.schedule_at engine ~time:(base +. t.cfg.period) (fun () ->
             Engine.finish_span engine step_span;
             (match t.boundary_hook with
             | Some hook ->
                 let obs = observe t in
                 reset_step_marks t;
                 hook obs
             | None -> ());
             t.current_step <- t.current_step + 1;
             apply_staged t;
             arm_step ()))
    end
  in
  arm_step ()

let launch deployment cfg =
  if cfg.omega <= 0 then invalid_arg "Campaign.launch: omega must be positive";
  if cfg.kappa < 0.0 || cfg.kappa > 1.0 then invalid_arg "Campaign.launch: kappa in [0,1]";
  let t = make deployment cfg in
  arm t;
  t

let run_until_compromise t ~max_steps =
  let engine = Deployment.engine t.deployment in
  let rec go () =
    match t.compromised_at with
    | Some s -> Some s
    | None ->
        if t.current_step > max_steps then None
        else begin
          Engine.run ~until:(Engine.now engine +. t.cfg.period) engine;
          go ()
        end
  in
  go ()

let stats t =
  {
    Stats.compromised_at_step = t.compromised_at;
    direct_probes_sent = t.direct_sent;
    indirect_probes_sent = t.indirect_sent;
    indirect_probes_blocked = t.indirect_blocked;
    launchpad_probes_sent = t.launchpad_sent;
    sources_burned = t.sources_burned;
    exhausted_slots = t.exhausted_slots;
    intrusions = t.intrusions;
    directives_applied = t.directives_applied;
  }

let current_step t = t.current_step
let config t = t.cfg

type live_settings = {
  kappa : float;
  pacing : Pacing.t;
  launchpad : launchpad;
  excluded : int list;
}

let settings t =
  let excluded = ref [] in
  for j = Array.length t.eff.excluded - 1 downto 0 do
    if t.eff.excluded.(j) then excluded := j :: !excluded
  done;
  { kappa = t.eff.kappa; pacing = t.eff.pacing; launchpad = t.eff.launchpad; excluded = !excluded }

let effective_kappa t =
  let intended = t.cfg.kappa *. float_of_int t.cfg.omega *. float_of_int t.current_step in
  if intended <= 0.0 then 0.0
  else float_of_int (t.indirect_sent - t.indirect_blocked) /. intended

(* conformance witness: Campaign implements the shared surface *)
module _ : Campaign_intf.S with type t = t and type deployment = Deployment.t and type config = config =
struct
  type nonrec t = t
  type deployment = Deployment.t
  type nonrec config = config

  let launch = launch
  let run_until_compromise = run_until_compromise
  let stats = stats
end
