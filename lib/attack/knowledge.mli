(** What a de-randomization attacker knows about one target's key.

    Each failed probe eliminates one key from the chi possibilities —
    provided the target keeps its key (SO / proactive recovery). When the
    target is re-randomized (PO), accumulated eliminations become worthless
    and the attacker starts over; this is exactly the sampling
    with/without replacement distinction the paper's models rest on. The
    attacker detects re-randomization by the target's epoch. *)

type t

val create : Fortress_defense.Keyspace.t -> t
val keyspace : t -> Fortress_defense.Keyspace.t

val eliminated : t -> int
(** Keys ruled out so far in the current randomization epoch. *)

val remaining : t -> int

val known_key : t -> int option
(** [Some k] once the attacker has confirmed the key (a probe succeeded).
    Survives proactive recovery — the key did not change — but is discarded
    on re-randomization. *)

val next_guess : t -> Fortress_util.Prng.t -> int option
(** A uniformly random not-yet-eliminated key; the confirmed key when one
    is known. [None] when every key has been eliminated — the attacker is
    exhausted. Against an unfaulted live target this cannot happen (the
    last remaining key is the key), but under fault injection a target can
    change keys without the attacker noticing, so campaigns must treat
    exhaustion as a graceful outcome. *)

val observe_crash : t -> guess:int -> unit
(** The probe [guess] crashed the child: that key is ruled out. *)

val observe_intrusion : t -> guess:int -> unit
(** The probe succeeded: the key is confirmed. *)

val on_target_rekeyed : t -> unit
(** The target re-randomized: all eliminations and any confirmed key are
    void. *)

val on_target_recovered : t -> unit
(** Proactive recovery: the key is unchanged, knowledge survives. (A no-op,
    present so campaign code can treat both transitions uniformly.) *)
