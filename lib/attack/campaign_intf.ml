(** The shared campaign surface.

    Every campaign flavour — the fixed-schedule FORTRESS {!Campaign}, the
    SMR {!Smr_campaign}, and the adaptive observe–decide–act {!Adaptive}
    wrapper — implements {!S}: launch on a deployment, drive to compromise
    or a horizon, and report one {!Stats} record. Experiments program
    against this signature instead of pattern-matching on concrete
    modules; the six per-counter getters the modules used to export are
    replaced by the single [stats] projection. *)

module Stats = struct
  type t = {
    compromised_at_step : int option;
        (** 1-based step at which the system fell; [None] while it stands *)
    direct_probes_sent : int;
    indirect_probes_sent : int;
    indirect_probes_blocked : int;
    launchpad_probes_sent : int;
    sources_burned : int;  (** attacker addresses blocked by proxies *)
    exhausted_slots : int;
        (** probe slots skipped for want of untried keys in the epoch *)
    intrusions : int;  (** individual node compromises, evicted or not *)
    directives_applied : int;
        (** adaptive directives that actually changed a setting; 0 for
            fixed-schedule campaigns *)
  }

  let zero =
    {
      compromised_at_step = None;
      direct_probes_sent = 0;
      indirect_probes_sent = 0;
      indirect_probes_blocked = 0;
      launchpad_probes_sent = 0;
      sources_burned = 0;
      exhausted_slots = 0;
      intrusions = 0;
      directives_applied = 0;
    }

  let probes_sent s = s.direct_probes_sent + s.indirect_probes_sent + s.launchpad_probes_sent

  let pp ppf s =
    Format.fprintf ppf
      "direct %d, indirect %d (%d blocked), launchpad %d, burned %d, intrusions %d%s"
      s.direct_probes_sent s.indirect_probes_sent s.indirect_probes_blocked
      s.launchpad_probes_sent s.sources_burned s.intrusions
      (match s.compromised_at_step with
      | Some step -> Printf.sprintf ", compromised at step %d" step
      | None -> "")
end

module type S = sig
  type t
  type deployment
  type config

  val launch : deployment -> config -> t
  (** Arm the campaign on the deployment's engine; run the engine to make
      it progress. *)

  val run_until_compromise : t -> max_steps:int -> int option
  (** Drive the engine until the system is compromised or [max_steps]
      whole steps have elapsed. Returns the 1-based step of compromise. *)

  val stats : t -> Stats.t
end
