module Deployment = Fortress_core.Deployment
module Smr_deployment = Fortress_core.Smr_deployment
module Node_id = Fortress_model.Node_id

module Strategy = struct
  type decide = Observation.t -> Directive.t

  type t = {
    name : string;
    describe : string;
    make : default_kappa:float -> decide;
        (** build a fresh decide function (with fresh internal state) for
            one campaign; [default_kappa] is the config value to restore
            when an override is lifted *)
  }

  let oblivious =
    {
      name = "oblivious";
      describe = "observes but never acts; bit-identical to the fixed schedule";
      make = (fun ~default_kappa:_ _obs -> Directive.unchanged);
    }

  (* While the server key is provably stale — probes keep landing and the
     attacker's eliminations keep accumulating with no reset — pour the
     whole indirect budget at the server tier; back off to the configured
     kappa as soon as a rekey is observed again. *)
  let stale_key_rush =
    {
      name = "stale-key-rush";
      describe = "raises kappa to 1 while the server rekey is provably missed";
      make =
        (fun ~default_kappa ->
          let rushing = ref false in
          fun obs ->
            if obs.Observation.stale_steps >= 1 && not !rushing then begin
              rushing := true;
              Directive.make ~kappa:1.0 ()
            end
            else if obs.Observation.stale_steps = 0 && !rushing then begin
              rushing := false;
              Directive.make ~kappa:default_kappa ()
            end
            else Directive.unchanged);
    }

  (* Steer probes away from nodes whose requests timed out during the
     step; lift the exclusion when they answer again. *)
  let partition_follower =
    {
      name = "partition-follower";
      describe = "redirects probes away from unreachable nodes";
      make =
        (fun ~default_kappa:_ ->
          let current = ref [] in
          fun obs ->
            let seen = obs.Observation.unreachable in
            if seen = !current then Directive.unchanged
            else begin
              current := seen;
              Directive.make ~exclude:seen ()
            end);
    }

  (* The moment a source is burned the proxies' suspicion window is
     evidently biting: switch probe pacing to rate-limited mode (stay
     below the per-window threshold the burn reveals) and return to
     uniform pacing after three steps with no further burns. Exercises
     the [Pacing] plumbing end to end — the defender's threshold knob
     and this strategy are duals. *)
  let probe_pacer =
    {
      name = "probe-pacer";
      describe = "rate-limits probes below the suspicion window after a source burns";
      make =
        (fun ~default_kappa:_ ->
          let pacing = ref false and quiet = ref 0 in
          fun obs ->
            if obs.Observation.sources_burned > 0 then begin
              quiet := 0;
              if !pacing then Directive.unchanged
              else begin
                pacing := true;
                Directive.make
                  ~pacing:(Pacing.Below_threshold { window = 100.0; threshold = 8 })
                  ()
              end
            end
            else if !pacing then begin
              incr quiet;
              if !quiet >= 3 then begin
                pacing := false;
                quiet := 0;
                Directive.make ~pacing:Pacing.Uniform ()
              end
              else Directive.unchanged
            end
            else Directive.unchanged);
    }

  let builtins = [ oblivious; stale_key_rush; partition_follower; probe_pacer ]
  let names = List.map (fun s -> s.name) builtins
  let find name = List.find_opt (fun s -> s.name = name) builtins
end

type config = { campaign : Campaign.config; strategy : Strategy.t }

let make_config ?(strategy = Strategy.oblivious) campaign = { campaign; strategy }

type t = { campaign : Campaign.t; strategy : Strategy.t }

let launch deployment (cfg : config) =
  let campaign = Campaign.launch deployment cfg.campaign in
  let decide = cfg.strategy.Strategy.make ~default_kappa:cfg.campaign.Campaign.kappa in
  Campaign.set_boundary_hook campaign ~name:cfg.strategy.Strategy.name (fun obs ->
      let d = decide obs in
      if not (Directive.is_unchanged d) then Campaign.stage campaign d);
  { campaign; strategy = cfg.strategy }

let run_until_compromise t ~max_steps = Campaign.run_until_compromise t.campaign ~max_steps
let stats t = Campaign.stats t.campaign
let strategy t = t.strategy
let campaign t = t.campaign

(* conformance witness: the adaptive wrapper is itself a campaign *)
module _ : Campaign_intf.S with type t = t and type deployment = Deployment.t and type config = config =
struct
  type nonrec t = t
  type deployment = Deployment.t
  type nonrec config = config

  let launch = launch
  let run_until_compromise = run_until_compromise
  let stats = stats
end

(* The same wrapper over the 1-tier SMR campaign. Only the exclusion field
   of a directive acts there, so [partition_follower] is the interesting
   strategy; the others degrade gracefully to oblivious behaviour. *)
module Smr = struct
  type config = { campaign : Smr_campaign.config; strategy : Strategy.t }

  let make_config ?(strategy = Strategy.oblivious) campaign = { campaign; strategy }

  type t = { campaign : Smr_campaign.t; strategy : Strategy.t }

  let launch deployment (cfg : config) =
    let campaign = Smr_campaign.launch deployment cfg.campaign in
    let decide = cfg.strategy.Strategy.make ~default_kappa:0.0 in
    Smr_campaign.set_boundary_hook campaign ~name:cfg.strategy.Strategy.name (fun obs ->
        let d = decide obs in
        if not (Directive.is_unchanged d) then Smr_campaign.stage campaign d);
    { campaign; strategy = cfg.strategy }

  let run_until_compromise t ~max_steps = Smr_campaign.run_until_compromise t.campaign ~max_steps
  let stats t = Smr_campaign.stats t.campaign
  let campaign t = t.campaign

  module _ :
    Campaign_intf.S
      with type t = t
       and type deployment = Smr_deployment.t
       and type config = config = struct
    type nonrec t = t
    type deployment = Smr_deployment.t
    type nonrec config = config

    let launch = launch
    let run_until_compromise = run_until_compromise
    let stats = stats
  end
end
