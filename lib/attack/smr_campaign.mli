(** Attack campaign against the 1-tier SMR system (the paper's S0).

    S0's replicas are directly reachable, so every channel is a direct
    attack: each replica gets its own omega-probe stream per unit
    time-step against its own key. The system falls when more than f
    replicas are compromised {e simultaneously} — under proactive
    obfuscation a compromised replica is evicted (and re-keyed) when its
    batch cycles, so the attacker must land its second intrusion while the
    first still stands. Run together with
    {!Fortress_core.Smr_deployment.attach_schedule}.

    Supports the same observe–decide–act plumbing as {!Campaign}
    ({!set_boundary_hook}, {!stage}); since S0 has no indirect channel,
    only the exclusion field of a {!Directive.t} acts — the others are
    inert. A campaign with no hook and no staged directive is
    bit-identical to the fixed-schedule attacker. *)

type config = {
  omega : int;
  period : float;
  target_mode : Fortress_core.Obfuscation.mode;
  seed : int;
}

val default_config : config
(** omega 64, period 100.0, PO, seed 0. *)

val make_config :
  ?omega:int ->
  ?period:float ->
  ?target_mode:Fortress_core.Obfuscation.mode ->
  seed:int ->
  unit ->
  config
(** Smart constructor over {!default_config}. Prefer this to bare record
    literals. *)

type t

val launch : Fortress_core.Smr_deployment.t -> config -> t
val run_until_compromise : t -> max_steps:int -> int option

val stats : t -> Campaign_intf.Stats.t
(** All probes are direct here; the indirect/launchpad/source counters are
    0 by construction. Replaces the per-counter getters this module used
    to export. *)

val current_step : t -> int

val set_boundary_hook : t -> name:string -> (Observation.t -> unit) -> unit
(** Install the per-boundary observer; also turns on mid-step reachability
    sampling at probe times. *)

val stage : t -> Directive.t -> unit
(** Queue a directive for the next step boundary; only the [exclude] field
    has effect on S0. *)

val excluded_replicas : t -> int list
(** Replica indices probes are currently steered away from. *)
