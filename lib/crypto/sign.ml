type secret_key = string
type public_key = string (* SHA-256 fingerprint of the secret *)
type signature = string

(* The trapdoor registry is process-wide and deployments are built on
   whichever domain runs the trial, so lookups and registrations must be
   serialised: concurrent Hashtbl mutation is unsafe under OCaml 5. Key
   generation is rare and verification's critical section is one probe, so
   the uncontended mutex cost is noise on the signing path. *)
let registry : (public_key, secret_key) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let equal_public = String.equal
let compare_public = String.compare
let public_to_hex = Sha256.to_hex
let pp_public ppf pk = Format.pp_print_string ppf (String.sub (public_to_hex pk) 0 12)

let signature_to_hex = Sha256.to_hex
let equal_signature = String.equal

let generate prng =
  let buf = Bytes.create 32 in
  for i = 0 to 3 do
    Bytes.set_int64_be buf (8 * i) (Fortress_util.Prng.bits64 prng)
  done;
  let secret = Bytes.to_string buf in
  let public = Sha256.digest secret in
  with_registry (fun () -> Hashtbl.replace registry public secret);
  (secret, public)

let public_of_secret secret = Sha256.digest secret

let sign secret msg = Hmac.mac ~key:secret msg

let verify public ~msg signature =
  match with_registry (fun () -> Hashtbl.find_opt registry public) with
  | None -> false
  | Some secret -> Hmac.verify ~key:secret ~msg ~tag:signature

let forge prng =
  let buf = Bytes.create 32 in
  for i = 0 to 3 do
    Bytes.set_int64_be buf (8 * i) (Fortress_util.Prng.bits64 prng)
  done;
  Bytes.to_string buf
