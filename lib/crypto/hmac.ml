let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

let xor_with pad key =
  String.mapi (fun i a -> Char.chr (Char.code a lxor Char.code key.[i])) pad

let mac_phase = Fortress_prof.Profiler.register "crypto.hmac"

let mac_unprofiled ~key msg =
  let key = normalize_key key in
  let ipad = String.make block_size '\x36' in
  let opad = String.make block_size '\x5c' in
  let inner = Sha256.digest (xor_with ipad key ^ msg) in
  Sha256.digest (xor_with opad key ^ inner)

let mac ~key msg =
  if Fortress_prof.Profiler.is_enabled () then
    Fortress_prof.Profiler.record mac_phase (fun () -> mac_unprofiled ~key msg)
  else mac_unprofiled ~key msg

let mac_hex ~key msg = Sha256.to_hex (mac ~key msg)

let verify ~key ~msg ~tag =
  let expected = mac ~key msg in
  String.length tag = String.length expected
  &&
  (* constant-time comparison *)
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code expected.[i])) tag;
  !diff = 0
