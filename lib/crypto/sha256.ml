(* FIPS 180-4 SHA-256 over Int32 words. The message is buffered into
   64-byte blocks; [finalize] applies the 0x80 / length padding. *)

let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
    0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
    0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
    0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
    0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
    0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
    0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
    0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
    0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

type ctx = {
  h : int32 array;
  block : Bytes.t;
  mutable block_len : int;
  mutable total_len : int64;
  mutable finished : bool;
  w : int32 array;
}

let init () =
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
        0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
      |];
    block = Bytes.create 64;
    block_len = 0;
    total_len = 0L;
    finished = false;
    w = Array.make 64 0l;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add

let compress ctx =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <- Bytes.get_int32_be ctx.block (4 * i)
  done;
  for i = 16 to 63 do
    let s0 =
      Int32.logxor
        (Int32.logxor (rotr w.(i - 15) 7) (rotr w.(i - 15) 18))
        (Int32.shift_right_logical w.(i - 15) 3)
    in
    let s1 =
      Int32.logxor
        (Int32.logxor (rotr w.(i - 2) 17) (rotr w.(i - 2) 19))
        (Int32.shift_right_logical w.(i - 2) 10)
    in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2) and d = ref ctx.h.(3) in
  let e = ref ctx.h.(4) and f = ref ctx.h.(5) and g = ref ctx.h.(6) and hh = ref ctx.h.(7) in
  for i = 0 to 63 do
    let s1 = Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25) in
    let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
    let temp1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22) in
    let maj =
      Int32.logxor
        (Int32.logxor (Int32.logand !a !b) (Int32.logand !a !c))
        (Int32.logand !b !c)
    in
    let temp2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  ctx.h.(0) <- ctx.h.(0) +% !a;
  ctx.h.(1) <- ctx.h.(1) +% !b;
  ctx.h.(2) <- ctx.h.(2) +% !c;
  ctx.h.(3) <- ctx.h.(3) +% !d;
  ctx.h.(4) <- ctx.h.(4) +% !e;
  ctx.h.(5) <- ctx.h.(5) +% !f;
  ctx.h.(6) <- ctx.h.(6) +% !g;
  ctx.h.(7) <- ctx.h.(7) +% !hh

let feed ctx s =
  if ctx.finished then invalid_arg "Sha256.feed: context already finalized";
  ctx.total_len <- Int64.add ctx.total_len (Int64.of_int (String.length s));
  let pos = ref 0 in
  let len = String.length s in
  while !pos < len do
    let take = min (64 - ctx.block_len) (len - !pos) in
    Bytes.blit_string s !pos ctx.block ctx.block_len take;
    ctx.block_len <- ctx.block_len + take;
    pos := !pos + take;
    if ctx.block_len = 64 then begin
      compress ctx;
      ctx.block_len <- 0
    end
  done

let finalize ctx =
  if ctx.finished then invalid_arg "Sha256.finalize: context already finalized";
  ctx.finished <- true;
  let bit_len = Int64.mul ctx.total_len 8L in
  Bytes.set ctx.block ctx.block_len '\x80';
  ctx.block_len <- ctx.block_len + 1;
  if ctx.block_len > 56 then begin
    Bytes.fill ctx.block ctx.block_len (64 - ctx.block_len) '\x00';
    compress ctx;
    ctx.block_len <- 0
  end;
  Bytes.fill ctx.block ctx.block_len (64 - ctx.block_len) '\x00';
  Bytes.set_int64_be ctx.block 56 bit_len;
  compress ctx;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) ctx.h.(i)
  done;
  Bytes.to_string out

let digest_phase = Fortress_prof.Profiler.register "crypto.sha256"

let digest_unprofiled s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let digest s =
  if Fortress_prof.Profiler.is_enabled () then
    Fortress_prof.Profiler.record digest_phase (fun () -> digest_unprofiled s)
  else digest_unprofiled s

let to_hex raw =
  let buf = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let hex s = to_hex (digest s)
