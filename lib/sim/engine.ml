module Obs = Fortress_obs
module Prof = Fortress_prof.Profiler

let fire_phase = Prof.register "engine.fire"

type event = { fire : unit -> unit; mutable cancelled : bool; mutable live : bool }

type handle = event

type t = {
  mutable clock : float;
  mutable seq : int;
  queue : event Heap.t;
  prng : Fortress_util.Prng.t;
  trace : Trace.t;
  sink : Obs.Sink.t;
  metrics : Obs.Metrics.t;
  spans : Obs.Span.ctx;
  mutable delay_xform : (float -> float) option;
  mutable causal : Obs.Causal.t option;
}

(* Bridge structured events into the legacy trace ring: every event bumps
   its label counter; only `Info events (bounded rate) occupy ring slots,
   so per-probe/per-message `Debug noise cannot evict the interesting
   entries. *)
let trace_bridge trace ~time ev =
  Trace.incr trace (Obs.Event.label ev);
  match Obs.Event.verbosity ev with
  | `Info -> Trace.record trace ~time ~label:(Obs.Event.label ev) (Obs.Event.detail ev)
  | `Debug -> ()

let create ?trace ?prng ?sink ?metrics () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let prng = match prng with Some p -> p | None -> Fortress_util.Prng.create ~seed:0 in
  let sink = match sink with Some s -> s | None -> Obs.Sink.create () in
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  ignore (Obs.Sink.attach sink (Obs.Sink.counting metrics));
  ignore (Obs.Sink.attach sink (trace_bridge trace));
  let t =
    {
      clock = 0.0;
      seq = 0;
      queue = Heap.create ();
      prng;
      trace;
      sink;
      metrics;
      spans = Obs.Span.create ~now:(fun () -> 0.0) ();
      delay_xform = None;
      causal = None;
    }
  in
  Obs.Span.set_clock t.spans (fun () -> t.clock);
  Obs.Span.set_on_finish t.spans (fun ev -> Obs.Sink.emit t.sink ~time:t.clock ev);
  t

let now t = t.clock
let prng t = t.prng
let trace t = t.trace
let sink t = t.sink
let metrics t = t.metrics
let spans t = t.spans
let emit t ev = Obs.Sink.emit t.sink ~time:t.clock ev
let span t ?parent name = Obs.Span.start t.spans ?parent name
let finish_span t sp = Obs.Span.finish t.spans sp

let attach_causal ?(trace_id = 0) t =
  let c = Obs.Causal.create ~trace_id t.spans in
  t.causal <- Some c;
  c

let causal t = t.causal

let causal_scope t ?attrs name f =
  match t.causal with None -> f () | Some c -> Obs.Causal.with_span c ?attrs name f

let causal_ambient t sp f =
  match t.causal with None -> f () | Some c -> Obs.Causal.with_ambient c sp f

let enqueue t ~time fire =
  let ev = { fire; cancelled = false; live = true } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ~priority:time ~seq:t.seq ev;
  ev

let set_delay_interceptor t x = t.delay_xform <- x

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  let delay =
    match t.delay_xform with None -> delay | Some x -> Float.max 0.0 (x delay)
  in
  enqueue t ~time:(t.clock +. delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  enqueue t ~time f

let cancel ev =
  ev.cancelled <- true;
  ev.live <- false

let is_cancelled ev = ev.cancelled

let every t ~period ?until f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  (* The returned handle outlives individual firings: it is re-armed by
     pointing its [fire] at each successive scheduled event. We model this
     with a control cell checked before each firing. *)
  let control = { fire = (fun () -> ()); cancelled = false; live = true } in
  let rec arm () =
    let deadline = t.clock +. period in
    let fire_once () =
      if not control.cancelled then begin
        f ();
        match until with
        | Some u when t.clock +. period > u -> ()
        | _ -> arm ()
      end
    in
    (match until with
    | Some u when deadline > u -> ()
    | _ -> ignore (enqueue t ~time:deadline fire_once))
  in
  arm ();
  control

let pending t =
  (* count live events lazily: heap length may include cancelled ones *)
  let count = ref 0 in
  let rec drain acc =
    match Heap.pop t.queue with
    | None -> acc
    | Some (p, s, ev) ->
        if not ev.cancelled then incr count;
        drain ((p, s, ev) :: acc)
  in
  let all = drain [] in
  List.iter (fun (p, s, ev) -> Heap.push t.queue ~priority:p ~seq:s ev) all;
  !count

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, ev) ->
      if ev.cancelled then step t
      else begin
        assert (time >= t.clock);
        t.clock <- time;
        ev.live <- false;
        if Prof.is_enabled () then Prof.record fire_phase ev.fire else ev.fire ();
        true
      end

let rec run ?until t =
  match until with
  | None -> if step t then run t
  | Some limit -> (
      match Heap.peek t.queue with
      | Some (time, _, _) when time <= limit ->
          ignore (step t);
          run ~until:limit t
      | Some _ | None -> if t.clock < limit then t.clock <- limit)

let record t ~label detail = emit t (Obs.Event.Note { label; detail })

let attach_telemetry ?(window = 100.0) ?capacity ?(alarms = true) ?params t =
  let timeline = Obs.Timeline.create ?capacity ~registry:t.metrics ~width:window () in
  ignore (Obs.Sink.attach t.sink (Obs.Timeline.subscriber timeline));
  let emit = if alarms then Some (fun ~time ev -> Obs.Sink.emit t.sink ~time ev) else None in
  let signals = Obs.Signal.create ?params ?emit ~registry:t.metrics timeline in
  (timeline, signals)
