(** Deterministic discrete-event simulation engine.

    Events are callbacks scheduled at virtual times; [run] executes them in
    (time, insertion) order. All protocol simulations in this repository run
    on this engine, so a fixed PRNG seed reproduces an entire execution
    bit-for-bit. *)

type t

type handle
(** A scheduled event; may be cancelled before it fires. *)

val create :
  ?trace:Trace.t ->
  ?prng:Fortress_util.Prng.t ->
  ?sink:Fortress_obs.Sink.t ->
  ?metrics:Fortress_obs.Metrics.t ->
  unit ->
  t
(** [create ()] starts the clock at 0. A shared [prng] (default seed 0) is
    available to components via {!prng}; pass an explicit one to control the
    seed of a whole execution. The engine owns an observability {!sink}
    (with a counting subscriber into {!metrics} and a bridge into the
    legacy {!trace} ring pre-attached) and a virtual-time span context. *)

val now : t -> float
val prng : t -> Fortress_util.Prng.t
val trace : t -> Trace.t

val sink : t -> Fortress_obs.Sink.t
(** Attach further subscribers (JSONL writers, forwarders) here. *)

val metrics : t -> Fortress_obs.Metrics.t
(** Per-event-label counters maintained by the built-in counting
    subscriber, plus whatever components register directly. *)

val emit : t -> Fortress_obs.Event.t -> unit
(** Emit a structured event stamped with the current virtual time. *)

val spans : t -> Fortress_obs.Span.ctx

val span : t -> ?parent:Fortress_obs.Span.span -> string -> Fortress_obs.Span.span
(** Open a virtual-time span at [now t]. *)

val finish_span : t -> Fortress_obs.Span.span -> unit
(** Close a span; the finished span is emitted through {!sink}. *)

val attach_causal : ?trace_id:int -> t -> Fortress_obs.Causal.t
(** Attach a causal trace context over this engine's span context,
    reseeding span ids to the [trace_id]'s disjoint block (see
    {!Fortress_obs.Causal.create}). Once attached, the network layer opens
    [net.send]/[net.deliver] spans around every message and instrumented
    components ({!causal_scope}/{!causal_ambient} call sites) thread
    parentage through them. Off by default: without this call no span is
    opened anywhere on the message plane and the event stream is
    byte-identical to pre-causal builds. *)

val causal : t -> Fortress_obs.Causal.t option

val causal_scope :
  t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a named causal span when a context is attached;
    the identity function otherwise (no allocation on the disabled path
    beyond the closure the caller already built). *)

val causal_ambient : t -> Fortress_obs.Span.span -> (unit -> 'a) -> 'a
(** Run a thunk with an existing span ambient (it becomes the parent of
    any span opened inside, e.g. the [net.send] of an outgoing message);
    identity when no context is attached. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] fires [f] at [now t +. delay]. Raises
    [Invalid_argument] on a negative delay. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Raises [Invalid_argument] when [time] is in the past. Exempt from the
    delay interceptor — fault timelines use this to stay on schedule while
    slowing everyone else down. *)

val set_delay_interceptor : t -> (float -> float) option -> unit
(** Install (or with [None] remove) a transform applied to every relative
    delay passed to {!schedule} — the fault subsystem's "slowdown" hook.
    The transformed delay is clamped to be non-negative. {!schedule_at} and
    {!every} are exempt: absolute timelines and periodic daemons keep their
    cadence. *)

val every : t -> period:float -> ?until:float -> (unit -> unit) -> handle
(** [every t ~period f] fires [f] at [now + period], [now + 2 period], ...
    Cancelling the returned handle stops the series. With [until], the
    series stops after that time. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. *)

val is_cancelled : handle -> bool
val pending : t -> int
(** Number of scheduled, uncancelled events. *)

val step : t -> bool
(** Execute the next event. Returns [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the event queue; with [until], stop once the next event is
    strictly later than [until] (the clock then advances to [until]). *)

val record : t -> label:string -> string -> unit
(** Convenience: emit a free-form {!Fortress_obs.Event.Note} at the current
    time; the trace bridge records it in the ring as before. *)

val attach_telemetry :
  ?window:float ->
  ?capacity:int ->
  ?alarms:bool ->
  ?params:(Fortress_obs.Signal.kind -> Fortress_obs.Signal.params) ->
  t ->
  Fortress_obs.Timeline.t * Fortress_obs.Signal.t
(** Attach the telemetry plane to this engine's sink: a
    {!Fortress_obs.Timeline} of [window]-wide virtual-time windows
    (default 100, the canonical attack step) backed by the engine's
    metrics registry, and a {!Fortress_obs.Signal} scoring the defender
    signals as each window closes. With [alarms] (default true) detector
    alarms are emitted back onto the sink as ["signal.alarm"] notes, so
    they interleave with fault-plan actions in any attached trace.
    Entirely subscriber-side: nothing schedules, no PRNG draws, so an
    execution's event stream is unchanged by attaching — only the trace
    gains the alarm notes. *)
