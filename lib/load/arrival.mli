(** Seeded open-loop arrival processes.

    An open-loop generator models an {e aggregate} client population: a
    Poisson stream at rate R is exactly what any number of independent
    clients whose demands sum to R produce, so one generator stands for
    thousands to millions of users without simulating them individually.
    [Bursty] is a 2-phase Markov-modulated Poisson process (MMPP-2): a
    quiet phase at the base rate and a burst phase at a higher rate, with
    exponentially distributed phase holds — the standard model for flash
    crowds and correlated demand.

    All draws come from the caller's {!Fortress_util.Prng.t} and nothing
    else, so an arrival stream is a pure function of the seed: trials are
    reproducible and job-count invariant. *)

type t =
  | Uniform of { period : float }  (** one arrival every [period] *)
  | Poisson of { rate : float }  (** exponential gaps at [rate] per unit time *)
  | Bursty of { rate : float; burst : float; mean_on : float; mean_off : float }
      (** MMPP-2: base [rate], burst-phase [burst] rate, exponential phase
          holds with means [mean_on] / [mean_off] *)

val validate : t -> (unit, string) result
val to_string : t -> string

type state
(** Mutable phase state (MMPP phase and its remaining hold). *)

val init : t -> Fortress_util.Prng.t -> state

val next_gap : t -> state -> Fortress_util.Prng.t -> float
(** Time to the next arrival; advances [state] across phase boundaries. *)
