module Engine = Fortress_sim.Engine
module Prng = Fortress_util.Prng
module Histogram = Fortress_util.Histogram

type loop = Open of Arrival.t | Closed of { clients : int; think : float }
type spec = { loop : loop; batch : int; timeout : float }

let default_timeout = 200.0

let make ?(batch = 1) ?(timeout = default_timeout) loop = { loop; batch; timeout }

let validate spec =
  if spec.batch < 1 then Error "batch must be >= 1"
  else if spec.timeout <= 0.0 then Error "timeout must be positive"
  else
    match spec.loop with
    | Open arrival -> Arrival.validate arrival
    | Closed { clients; think } ->
        if clients < 1 then Error "closed: clients must be >= 1"
        else if think < 0.0 then Error "closed: think must be >= 0"
        else Ok ()

let spec_to_string spec =
  let base =
    match spec.loop with
    | Open arrival -> Arrival.to_string arrival
    | Closed { clients; think } ->
        Printf.sprintf "closed:clients=%d,think=%g,timeout=%g" clients think spec.timeout
  in
  if spec.batch = 1 then base else Printf.sprintf "%s,batch=%d" base spec.batch

(* Grammar: KIND:k=v,k=v,... — e.g. "poisson:rate=0.5,batch=8",
   "bursty:rate=0.2,burst=2,on=25,off=100", "closed:clients=64,think=50". *)
let spec_of_string s =
  let ( let* ) = Result.bind in
  let kind, rest =
    match String.index_opt s ':' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "")
  in
  let* kvs =
    if rest = "" then Ok []
    else
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          match String.index_opt part '=' with
          | Some i ->
              Ok
                ((String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1))
                :: acc)
          | None -> Error (Printf.sprintf "expected key=value, got %S" part))
        (Ok [])
        (String.split_on_char ',' rest)
  in
  let lookup k = List.assoc_opt k kvs in
  let known keys =
    match List.find_opt (fun (k, _) -> not (List.mem k keys)) kvs with
    | Some (k, _) -> Error (Printf.sprintf "unknown key %S for %s spec" k kind)
    | None -> Ok ()
  in
  let floatv k default =
    match lookup k with
    | None -> (
        match default with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "%s spec needs %s=" kind k))
    | Some v -> (
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "%s: not a number, %S" k v))
  in
  let intv k default =
    match lookup k with
    | None -> (
        match default with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "%s spec needs %s=" kind k))
    | Some v -> (
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "%s: not an integer, %S" k v))
  in
  let* spec =
    match kind with
    | "uniform" ->
        let* () = known [ "period"; "batch"; "timeout" ] in
        let* period = floatv "period" None in
        Ok (Open (Arrival.Uniform { period }))
    | "poisson" ->
        let* () = known [ "rate"; "batch"; "timeout" ] in
        let* rate = floatv "rate" None in
        Ok (Open (Arrival.Poisson { rate }))
    | "bursty" ->
        let* () = known [ "rate"; "burst"; "on"; "off"; "batch"; "timeout" ] in
        let* rate = floatv "rate" None in
        let* burst = floatv "burst" None in
        let* mean_on = floatv "on" (Some 25.0) in
        let* mean_off = floatv "off" (Some 100.0) in
        Ok (Open (Arrival.Bursty { rate; burst; mean_on; mean_off }))
    | "closed" ->
        let* () = known [ "clients"; "think"; "batch"; "timeout" ] in
        let* clients = intv "clients" None in
        let* think = floatv "think" (Some 50.0) in
        Ok (Closed { clients; think })
    | other -> Error (Printf.sprintf "unknown workload kind %S" other)
  in
  let* batch = intv "batch" (Some 1) in
  let* timeout = floatv "timeout" (Some default_timeout) in
  let spec = { loop = spec; batch; timeout } in
  let* () = validate spec in
  Ok spec

(* One latency-histogram shape for every workload, so per-trial histograms
   always merge at the join: log bins from sub-hop latency to well past the
   client's full retry budget (10 retries x 25.0). *)
let latency_histogram () = Histogram.create_log ~lo:0.1 ~hi:10_000.0 ~bins:64

type stats = {
  mutable issued : int;
  mutable answered : int;
  mutable timed_out : int;
  mutable submitted : int;
  latency : Histogram.t;
}

let fresh_stats () =
  { issued = 0; answered = 0; timed_out = 0; submitted = 0; latency = latency_histogram () }

let accumulate acc s =
  acc.issued <- acc.issued + s.issued;
  acc.answered <- acc.answered + s.answered;
  acc.timed_out <- acc.timed_out + s.timed_out;
  acc.submitted <- acc.submitted + s.submitted;
  Histogram.merge acc.latency s.latency

let availability s =
  if s.issued = 0 then None
  else Some (float_of_int s.answered /. float_of_int s.issued)

let quantile s q = Histogram.quantile s.latency q

type handle = { h_spec : spec; h_stats : stats }

let stats h = h.h_stats
let spec h = h.h_spec

(* The generator's PRNG is its own stream, decoupled from the engine's:
   arrival jitter must not change which keys the defense rotates through
   or what the attacker draws, so runs with and without load stay
   pairwise comparable on everything the load does not itself touch. *)
let attach (type s c)
    (module St : Fortress_core.Stack_intf.S with type t = s and type client = c)
    (stack : s) ~seed spec =
  (match validate spec with Ok () -> () | Error e -> invalid_arg ("Workload.attach: " ^ e));
  let engine = St.engine stack in
  let prng = Prng.create ~seed:(seed lxor 0x6c6f6164) (* "load" *) in
  let st = fresh_stats () in
  let h = { h_spec = spec; h_stats = st } in
  let b = spec.batch in
  (* one physical submission carries [b] logical requests; accounting is
     O(1) per batch via weighted histogram adds *)
  let submit_batch client ~cmd ~on_settled =
    let t0 = Engine.now engine in
    st.issued <- st.issued + b;
    st.submitted <- st.submitted + 1;
    let settled = ref false in
    ignore
      (St.submit client ~cmd ~on_response:(fun _ ->
           if not !settled then begin
             settled := true;
             st.answered <- st.answered + b;
             Histogram.add_n st.latency (Engine.now engine -. t0) b;
             on_settled ()
           end));
    settled
  in
  (match spec.loop with
  | Open arrival ->
      let client = St.new_client stack ~name:"load" in
      let arrival_state = Arrival.init arrival prng in
      let n = ref 0 in
      (* open loop: arrivals are independent of responses — a slow system
         does not slow the offered load, it just grows the in-flight set *)
      let rec arm () =
        ignore
          (Engine.schedule engine ~delay:(Arrival.next_gap arrival arrival_state prng)
             (fun () ->
               incr n;
               ignore
                 (submit_batch client
                    ~cmd:(Printf.sprintf "get load%d" !n)
                    ~on_settled:ignore);
               arm ()))
      in
      arm ()
  | Closed { clients; think } ->
      (* N virtual sessions multiplexed over one protocol client: each
         session waits for its answer (or the timeout), thinks, and
         submits again — response time feeds back into offered load *)
      let client = St.new_client stack ~name:"load" in
      for session = 0 to clients - 1 do
        let n = ref 0 in
        let rec next_request () =
          incr n;
          let advanced = ref false in
          let advance () =
            if not !advanced then begin
              advanced := true;
              ignore (Engine.schedule engine ~delay:think next_request)
            end
          in
          let settled =
            submit_batch client
              ~cmd:(Printf.sprintf "get s%dr%d" session !n)
              ~on_settled:advance
          in
          ignore
            (Engine.schedule engine ~delay:spec.timeout (fun () ->
                 if not !settled then begin
                   (* give up on this request: late replies are ignored *)
                   settled := true;
                   st.timed_out <- st.timed_out + b;
                   advance ()
                 end))
        in
        (* stagger session starts uniformly over one think time so a
           thousand sessions do not fire a synchronized first volley *)
        let start = Prng.float prng *. Float.max think 1.0 in
        ignore (Engine.schedule engine ~delay:start next_request)
      done);
  h
