(** The production-scale workload plane: deterministic, seeded request
    generators over any {!Fortress_core.Stack_intf.S} stack.

    Two regimes, both standard in load testing:

    - {b open loop}: requests arrive on an {!Arrival} process regardless
      of how fast the system answers — the aggregate-client model, where
      a Poisson rate stands for an arbitrarily large population of
      independent users. Overload shows up as a growing in-flight set and
      rising tail latency, exactly as in production.
    - {b closed loop}: [clients] virtual sessions, each submitting, then
      waiting for its answer (or a [timeout]), thinking for [think] time
      units, and submitting again — response time feeds back into offered
      load, and throughput obeys Little's law (N / (Z + R)).

    {b Batching}: one physical protocol request carries [batch] logical
    requests; counters and latency samples are batch-weighted in O(1)
    (see {!Fortress_util.Histogram.add_n}), so a trial can account for
    millions of logical requests while simulating only thousands of
    messages.

    {b Determinism}: the generator draws from its own PRNG stream derived
    from [seed], never from the engine's, so attaching load changes
    nothing about key rotation or attacker draws, and the event stream is
    a pure function of (seed, spec) — bit-identical at any [--jobs]
    count. Virtual sessions share {e one} protocol client per trial: the
    plane scales past per-client simulation by multiplexing sessions, not
    by registering network nodes. *)

type loop =
  | Open of Arrival.t
  | Closed of { clients : int; think : float }

type spec = { loop : loop; batch : int; timeout : float }

val default_timeout : float
(** 200.0 virtual time units — below the fortress client's full retry
    budget, so a timed-out request is one the system was genuinely slow
    to answer. The timeout governs closed-loop sessions (a session gives
    up and thinks on); open-loop arrivals never wait. *)

val make : ?batch:int -> ?timeout:float -> loop -> spec
(** [batch] defaults to 1, [timeout] to {!default_timeout}. *)

val validate : spec -> (unit, string) result

val spec_of_string : string -> (spec, string) result
(** Parse the CLI grammar [KIND:k=v,k=v,...]:
    - [uniform:period=P]
    - [poisson:rate=R]
    - [bursty:rate=R,burst=RB\[,on=25\]\[,off=100\]]
    - [closed:clients=N\[,think=50\]]
    every kind also takes [,batch=B] and [,timeout=T]. *)

val spec_to_string : spec -> string

(** {1 Streaming accounting} *)

type stats = {
  mutable issued : int;  (** logical requests issued (batch-weighted) *)
  mutable answered : int;  (** logical requests answered before any timeout *)
  mutable timed_out : int;  (** logical requests abandoned at the timeout *)
  mutable submitted : int;  (** physical protocol submissions *)
  latency : Fortress_util.Histogram.t;
      (** response-time samples (virtual time), batch-weighted; fixed log
          shape so per-trial histograms merge at the join *)
}

val fresh_stats : unit -> stats
val accumulate : stats -> stats -> unit

val availability : stats -> float option
(** answered / issued; [None] when nothing was issued. *)

val quantile : stats -> float -> float option
(** Latency quantile (p50 = 0.5, p99 = 0.99, p999 = 0.999) from the
    binned samples; [None] when nothing was answered. *)

(** {1 Attaching to a stack} *)

type handle

val attach :
  (module Fortress_core.Stack_intf.S with type t = 's and type client = 'c) ->
  's ->
  seed:int ->
  spec ->
  handle
(** Register the generator's client on the stack and schedule the first
    arrival (open) or session starts (closed); the engine run drives
    everything else. Raises [Invalid_argument] on an invalid spec. *)

val stats : handle -> stats
(** Live counters — read after the engine run for final totals. *)

val spec : handle -> spec
