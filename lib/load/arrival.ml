module Prng = Fortress_util.Prng

type t =
  | Uniform of { period : float }
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst : float; mean_on : float; mean_off : float }

let validate = function
  | Uniform { period } ->
      if period <= 0.0 then Error "uniform: period must be positive" else Ok ()
  | Poisson { rate } -> if rate <= 0.0 then Error "poisson: rate must be positive" else Ok ()
  | Bursty { rate; burst; mean_on; mean_off } ->
      if rate <= 0.0 then Error "bursty: rate must be positive"
      else if burst <= rate then Error "bursty: burst rate must exceed the base rate"
      else if mean_on <= 0.0 || mean_off <= 0.0 then
        Error "bursty: phase means must be positive"
      else Ok ()

let to_string = function
  | Uniform { period } -> Printf.sprintf "uniform:period=%g" period
  | Poisson { rate } -> Printf.sprintf "poisson:rate=%g" rate
  | Bursty { rate; burst; mean_on; mean_off } ->
      Printf.sprintf "bursty:rate=%g,burst=%g,on=%g,off=%g" rate burst mean_on mean_off

type state = { mutable burst_on : bool; mutable phase_left : float }

let init t prng =
  match t with
  | Uniform _ | Poisson _ -> { burst_on = false; phase_left = 0.0 }
  | Bursty { mean_off; _ } ->
      (* the process starts in the quiet phase; exponential phase holds *)
      { burst_on = false; phase_left = Prng.exponential prng ~rate:(1.0 /. mean_off) }

(* MMPP-2 interarrival: draw a candidate gap at the current phase's rate;
   if the phase ends first, consume the remaining phase time, flip phase
   (redrawing its exponential hold), and — by memorylessness — redraw the
   candidate at the new rate. Terminates with probability 1; every draw
   comes from [prng] alone, so the stream is fully determined by the
   seed. *)
let next_gap t state prng =
  match t with
  | Uniform { period } -> period
  | Poisson { rate } -> Prng.exponential prng ~rate
  | Bursty { rate; burst; mean_on; mean_off } ->
      let rec go acc =
        let r = if state.burst_on then burst else rate in
        let gap = Prng.exponential prng ~rate:r in
        if gap <= state.phase_left then begin
          state.phase_left <- state.phase_left -. gap;
          acc +. gap
        end
        else begin
          let acc = acc +. state.phase_left in
          state.burst_on <- not state.burst_on;
          let mean = if state.burst_on then mean_on else mean_off in
          state.phase_left <- Prng.exponential prng ~rate:(1.0 /. mean);
          go acc
        end
      in
      go 0.0
