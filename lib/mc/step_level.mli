(** Step-level Monte-Carlo samplers for every system class.

    These samplers draw the {e events} of each unit time-step explicitly —
    which nodes fall, when within the step a proxy falls, whether its
    launch pad converts — rather than using the closed-form one-step laws
    from {!Fortress_model.Systems}. Agreement between the two is therefore
    a meaningful cross-validation (exercised in the test suite and the
    validation experiment), not a tautology. *)

type config = {
  alpha : float;  (** per-node, per-step direct success probability *)
  kappa : float;  (** indirect coefficient (S2 only) *)
  np : int;  (** proxies (S2 only) *)
  launchpad : Fortress_model.Systems.launchpad;
  max_steps : int;  (** censoring horizon *)
}

val default : config
(** alpha 1e-3, kappa 0.5, np 3, Remaining, horizon 10^7. *)

val sampler :
  Fortress_model.Systems.system -> config -> Fortress_util.Prng.t -> int option
(** One lifetime draw; [None] when censored at [max_steps]. *)

val estimate :
  ?sink:Fortress_obs.Sink.t ->
  ?monitor:Fortress_prof.Convergence.t ->
  ?early_stop:bool ->
  ?jobs:int ->
  ?trials:int ->
  ?seed:int ->
  Fortress_model.Systems.system ->
  config ->
  Trial.result
(** [trials] defaults to 2000, [seed] to 42. [sink] receives per-trial
    progress events; [monitor]/[early_stop]/[jobs] are passed through to
    {!Trial.run} — estimates are bit-identical for every job count. *)
