(** Seeded Monte-Carlo trial runner with censoring.

    A sampler draws one system lifetime (in whole time-steps) per call;
    [None] means the system survived past the trial horizon (censored).
    Each trial gets an independent PRNG split from the run seed, so results
    are reproducible and individual trials can be re-run in isolation. *)

type result = {
  lifetimes : float array;  (** uncensored observations *)
  censored : int;  (** trials that outlived the horizon *)
  trials : int;  (** trials actually run (< the budget under early stop) *)
  mean : float;  (** mean of uncensored lifetimes; [nan] if all censored *)
  ci95 : float * float;
  median : float;
}

val run :
  ?sink:Fortress_obs.Sink.t ->
  ?monitor:Fortress_prof.Convergence.t ->
  ?early_stop:bool ->
  trials:int ->
  seed:int ->
  sampler:(Fortress_util.Prng.t -> int option) ->
  unit ->
  result
(** Raises [Invalid_argument] when [trials <= 0]. With [sink], a
    {!Fortress_obs.Event.Trial} progress event is emitted per trial at
    time = trial index; [(seed, index)] identifies the trial's PRNG
    split exactly, so any single trial can be re-run in isolation.

    With [monitor], every trial outcome is fed to the convergence monitor
    and each batch checkpoint is emitted as a ["convergence"]
    {!Fortress_obs.Event.Note}; with [early_stop:true] (default [false])
    the loop additionally stops at the first converged checkpoint. The
    per-trial PRNG split is unconditional, so enabling the monitor alone
    never changes any trial's randomness, and early stopping only
    truncates the sequence — prefixes stay bit-identical. When the
    {!Fortress_prof.Profiler} is enabled, each sampler call is recorded
    under the ["mc.trial"] phase. *)

val pp_result : Format.formatter -> result -> unit
