(** Seeded Monte-Carlo trial runner with censoring and optional
    domain-parallel execution.

    A sampler draws one system lifetime (in whole time-steps) per call;
    [None] means the system survived past the trial horizon (censored).
    Trial [i] always draws from [Prng.split_nth root i] — the PRNG stream
    is a function of the trial {e index}, never of execution order — so
    results are reproducible, individual trials can be re-run in
    isolation, and [jobs = 1] and [jobs = N] produce bit-identical
    per-trial outcomes. *)

type result = {
  lifetimes : float array;  (** uncensored observations *)
  censored : int;  (** trials that outlived the horizon *)
  trials : int;  (** trials actually run (< the budget under early stop) *)
  mean : float;  (** mean of uncensored lifetimes; [nan] if all censored *)
  ci95 : float * float;
  median : float;
}

val run :
  ?sink:Fortress_obs.Sink.t ->
  ?monitor:Fortress_prof.Convergence.t ->
  ?early_stop:bool ->
  ?jobs:int ->
  ?min_chunk:int ->
  trials:int ->
  seed:int ->
  sampler:(Fortress_util.Prng.t -> int option) ->
  unit ->
  result
(** Raises [Invalid_argument] when [trials <= 0]. With [sink], a
    {!Fortress_obs.Event.Trial} progress event is emitted per trial at
    time = trial index; [(seed, index)] identifies the trial's PRNG
    split exactly, so any single trial can be re-run in isolation.

    With [monitor], every trial outcome is fed to the convergence monitor
    and each batch checkpoint is emitted as a ["convergence"]
    {!Fortress_obs.Event.Note}; with [early_stop:true] (default [false])
    the loop additionally stops at the first converged checkpoint. The
    per-trial PRNG derivation is index-structural, so enabling the monitor
    alone never changes any trial's randomness, and early stopping only
    truncates the sequence — prefixes stay bit-identical. When the
    {!Fortress_prof.Profiler} is enabled, each sampler call is recorded
    under the ["mc.trial"] phase.

    With [jobs > 1], trials fan out over the persistent domain pool under
    the deterministic contiguous partition of {!Fortress_par.Partition}
    ([min_chunk] is the partition's coarse-chunking floor — pass it when
    individual trials are cheap enough that per-chunk overhead matters);
    at the join, per-trial outcomes are consumed in index order, so
    statistics, emitted events and convergence checkpoints (which fall at
    deterministic trial-count boundaries) are bit-identical to [jobs = 1].
    Under early stopping the parallel runner samples the full budget
    speculatively and discards the tail past the stopping point; the
    result is still identical to the sequential run. Samplers used with
    [jobs > 1] must not share mutable state across calls — use
    {!run_indexed} to derive any per-trial context from the index. *)

val run_indexed :
  ?sink:Fortress_obs.Sink.t ->
  ?monitor:Fortress_prof.Convergence.t ->
  ?early_stop:bool ->
  ?jobs:int ->
  ?min_chunk:int ->
  ?on_join:(index:int -> unit) ->
  trials:int ->
  seed:int ->
  sampler:(index:int -> Fortress_util.Prng.t -> int option) ->
  unit ->
  result
(** Like {!run}, but the sampler also receives the 1-based trial index —
    the hook campaigns use to derive per-trial seeds, digests and side
    channels structurally instead of from a shared counter. [on_join] is
    invoked once per consumed trial, in index order, on the calling
    domain, just before the trial's progress event is emitted — the place
    to replay a worker's buffered observability stream
    ({!Fortress_obs.Sink.buffered}) into a shared sink deterministically. *)

val pp_result : Format.formatter -> result -> unit
