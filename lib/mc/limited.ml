module Prng = Fortress_util.Prng

type config = { alpha : float; candidates : int; max_steps : int }

let default = { alpha = 1e-3; candidates = 4; max_steps = 10_000_000 }

let lifetime cfg prng =
  if cfg.alpha < 0.0 || cfg.alpha > 1.0 then invalid_arg "Limited: alpha in [0,1]";
  if cfg.candidates < 1 then invalid_arg "Limited: candidates >= 1";
  (* eliminated fraction of each candidate's key space *)
  let eliminated = Array.make cfg.candidates 0.0 in
  let rec step i =
    if i > cfg.max_steps then None
    else begin
      let v = Prng.int prng ~bound:cfg.candidates in
      let denom = 1.0 -. eliminated.(v) in
      let hazard = if denom <= cfg.alpha then 1.0 else cfg.alpha /. denom in
      if Prng.bernoulli prng ~p:hazard then Some i
      else begin
        eliminated.(v) <- Float.min 0.999999 (eliminated.(v) +. cfg.alpha);
        step (i + 1)
      end
    end
  in
  step 1

let estimate ?(trials = 2000) ?(seed = 42) cfg =
  Trial.run ~trials ~seed ~sampler:(lifetime cfg) ()

let expected_lifetime ?trials ?seed cfg = (estimate ?trials ?seed cfg).Trial.mean
