(** Probe-level Monte-Carlo: the attack is simulated probe by probe against
    real randomized instances ({!Fortress_defense.Instance}) with real key
    spaces, using the attacker-side bookkeeping from
    {!Fortress_attack.Knowledge}.

    This is the highest-fidelity, slowest tier: alpha is not a parameter
    but an {e emergent} quantity, alpha = omega / chi, so agreement with
    the step-level samplers and the analytic models validates exactly the
    derivation the paper's evaluation rests on. Launch-pad timing is exact:
    a proxy captured by its m-th probe of a step attacks the server with
    the remaining omega - m probes of that step. *)

type mode = PO | SO

type config = {
  chi : int;  (** key-space size *)
  omega : int;  (** probes per channel per unit time-step *)
  kappa : float;
  np : int;
  mode : mode;
  launchpad : Fortress_model.Systems.launchpad;
  max_steps : int;
}

val default : config
(** chi 4096, omega 8 (so alpha ~ 2e-3), kappa 0.5, np 3, PO, Remaining,
    horizon 200_000. *)

val alpha_of : config -> float
(** The emergent per-step success probability omega / chi. *)

val lifetime :
  Fortress_model.Systems.system -> config -> Fortress_util.Prng.t -> int option
(** One end-to-end trial. S0 uses 4 diversely keyed instances probed by a
    shared request stream; S1 one shared key; S2 the full proxy/server key
    layout with indirect and launch-pad streams. *)

val estimate :
  ?sink:Fortress_obs.Sink.t ->
  ?jobs:int ->
  ?trials:int ->
  ?seed:int ->
  Fortress_model.Systems.system ->
  config ->
  Trial.result
(** [jobs] fans the trials out over domains ({!Trial.run}); estimates are
    bit-identical for every job count. *)
