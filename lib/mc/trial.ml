module Prng = Fortress_util.Prng
module Stats = Fortress_util.Stats
module Obs = Fortress_obs
module Profiler = Fortress_prof.Profiler
module Convergence = Fortress_prof.Convergence
module Exec = Fortress_par.Exec

type result = {
  lifetimes : float array;
  censored : int;
  trials : int;
  mean : float;
  ci95 : float * float;
  median : float;
}

let trial_phase = Profiler.register "mc.trial"

(* Trial [i] (1-based) always draws from the [i]-th split of the root
   generator — [Prng.split_nth root i] — whether the trial runs on the
   main domain or a worker. Seeding is structural (by index), never
   sequential (by execution order), so [jobs = 1] and [jobs = N] produce
   bit-identical per-trial outcomes and the paired-comparison discipline
   survives parallel execution. *)
let trial_prng root i = Prng.split_nth root i

let run_sampler sampler ~index prng =
  if Profiler.is_enabled () then Profiler.record trial_phase (fun () -> sampler ~index prng)
  else sampler ~index prng

(* The join: consume per-trial outcomes in index order, feeding statistics,
   the sink and the convergence monitor exactly as the sequential loop
   would. [next] pulls outcome [i] (1-based) or [None] when the budget is
   exhausted; under early stopping the consumer simply stops pulling. *)
type accum = {
  acc : Stats.t;
  mutable observed : float list;
  mutable acc_censored : int;
  mutable consumed : int;
}

let consume ?sink ?monitor ~early_stop ?on_join ~seed st i outcome =
  st.consumed <- i;
  let emit ev =
    match sink with None -> () | Some sink -> Obs.Sink.emit sink ~time:(float_of_int i) ev
  in
  (match on_join with None -> () | Some f -> f ~index:i);
  let lifetime =
    match outcome with
    | Some steps ->
        let x = float_of_int steps in
        Stats.add st.acc x;
        st.observed <- x :: st.observed;
        Some x
    | None ->
        st.acc_censored <- st.acc_censored + 1;
        None
  in
  (* (seed, index) identifies the trial's PRNG split exactly, so any
     single trial can be re-run in isolation *)
  emit (Obs.Event.Trial { index = i; seed; lifetime });
  match monitor with
  | None -> false
  | Some m -> (
      match Convergence.observe m lifetime with
      | None -> false
      | Some cp ->
          emit
            (Obs.Event.Note
               { label = "convergence"; detail = Convergence.checkpoint_detail cp });
          early_stop && Convergence.converged m)

let finish st =
  let lifetimes = Array.of_list (List.rev st.observed) in
  {
    lifetimes;
    censored = st.acc_censored;
    trials = st.consumed;
    mean = Stats.mean st.acc;
    ci95 = Stats.confidence_interval st.acc;
    median = (if Array.length lifetimes = 0 then nan else Stats.median lifetimes);
  }

let run_indexed ?sink ?monitor ?(early_stop = false) ?(jobs = 1) ?min_chunk ?on_join
    ~trials ~seed ~sampler () =
  if trials <= 0 then invalid_arg "Trial.run: trials must be positive";
  let root = Prng.create ~seed in
  let st = { acc = Stats.create (); observed = []; acc_censored = 0; consumed = 0 } in
  let consume = consume ?sink ?monitor ~early_stop ?on_join ~seed st in
  if jobs <= 1 then begin
    (* sequential: sample and consume one trial at a time, so early
       stopping truncates the work as well as the result *)
    let i = ref 0 in
    let stop = ref false in
    while (not !stop) && !i < trials do
      incr i;
      let i = !i in
      let outcome = run_sampler sampler ~index:i (trial_prng root i) in
      if consume i outcome then stop := true
    done
  end
  else begin
    (* parallel: one arena for the whole budget, each chunk writing its
       contiguous slice — slices are disjoint, so domains never touch the
       same slot and the join's pool hand-off orders the writes before the
       reads. The join then replays all outcomes in index order, which
       reproduces the sequential statistics, events and checkpoints bit
       for bit. Under early stopping the tail past the stopping point is
       sampled speculatively and discarded. *)
    let outcomes = Array.make trials None in
    let (_ : unit array) =
      Exec.map_chunks ?min_chunk ~jobs ~n:trials (fun ~chunk:_ ~lo ~hi ->
          for k = lo to hi - 1 do
            let i = k + 1 in
            outcomes.(k) <- run_sampler sampler ~index:i (trial_prng root i)
          done)
    in
    (try
       Array.iteri
         (fun k outcome -> if consume (k + 1) outcome then raise Exit)
         outcomes
     with Exit -> ())
  end;
  finish st

let run ?sink ?monitor ?early_stop ?jobs ?min_chunk ~trials ~seed ~sampler () =
  run_indexed ?sink ?monitor ?early_stop ?jobs ?min_chunk ~trials ~seed
    ~sampler:(fun ~index:_ prng -> sampler prng)
    ()

let pp_result ppf r =
  let lo, hi = r.ci95 in
  Format.fprintf ppf "EL=%.4g ci95=[%.4g, %.4g] median=%.4g (n=%d, censored=%d)" r.mean lo hi
    r.median r.trials r.censored
