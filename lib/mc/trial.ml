module Prng = Fortress_util.Prng
module Stats = Fortress_util.Stats
module Obs = Fortress_obs
module Profiler = Fortress_prof.Profiler
module Convergence = Fortress_prof.Convergence

type result = {
  lifetimes : float array;
  censored : int;
  trials : int;
  mean : float;
  ci95 : float * float;
  median : float;
}

let trial_phase = Profiler.register "mc.trial"

let run ?sink ?monitor ?(early_stop = false) ~trials ~seed ~sampler () =
  if trials <= 0 then invalid_arg "Trial.run: trials must be positive";
  let root = Prng.create ~seed in
  let acc = Stats.create () in
  let observed = ref [] in
  let censored = ref 0 in
  (* trial progress events: stream index i derives from the run seed, so
     (seed, index) identifies a trial's PRNG exactly *)
  let emit i ev =
    match sink with None -> () | Some sink -> Obs.Sink.emit sink ~time:(float_of_int i) ev
  in
  let emit_trial i lifetime = emit i (Obs.Event.Trial { index = i; seed; lifetime }) in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < trials do
    incr i;
    let i = !i in
    (* split unconditionally, whether or not the trial runs to completion,
       so trial i's PRNG is the same with and without early stopping *)
    let prng = Prng.split root in
    let outcome =
      if Profiler.is_enabled () then Profiler.record trial_phase (fun () -> sampler prng)
      else sampler prng
    in
    let lifetime =
      match outcome with
      | Some steps ->
          let x = float_of_int steps in
          Stats.add acc x;
          observed := x :: !observed;
          Some x
      | None ->
          incr censored;
          None
    in
    emit_trial i lifetime;
    match monitor with
    | None -> ()
    | Some m -> (
        match Convergence.observe m lifetime with
        | None -> ()
        | Some cp ->
            emit i
              (Obs.Event.Note
                 { label = "convergence"; detail = Convergence.checkpoint_detail cp });
            if early_stop && Convergence.converged m then stop := true)
  done;
  let lifetimes = Array.of_list (List.rev !observed) in
  {
    lifetimes;
    censored = !censored;
    trials = !i;
    mean = Stats.mean acc;
    ci95 = Stats.confidence_interval acc;
    median = (if Array.length lifetimes = 0 then nan else Stats.median lifetimes);
  }

let pp_result ppf r =
  let lo, hi = r.ci95 in
  Format.fprintf ppf "EL=%.4g ci95=[%.4g, %.4g] median=%.4g (n=%d, censored=%d)" r.mean lo hi
    r.median r.trials r.censored
