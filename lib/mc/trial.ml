module Prng = Fortress_util.Prng
module Stats = Fortress_util.Stats
module Obs = Fortress_obs

type result = {
  lifetimes : float array;
  censored : int;
  trials : int;
  mean : float;
  ci95 : float * float;
  median : float;
}

let run ?sink ~trials ~seed ~sampler () =
  if trials <= 0 then invalid_arg "Trial.run: trials must be positive";
  let root = Prng.create ~seed in
  let acc = Stats.create () in
  let observed = ref [] in
  let censored = ref 0 in
  (* trial progress events: stream index i derives from the run seed, so
     (seed, index) identifies a trial's PRNG exactly *)
  let emit_trial i lifetime =
    match sink with
    | None -> ()
    | Some sink ->
        Obs.Sink.emit sink ~time:(float_of_int i) (Obs.Event.Trial { index = i; seed; lifetime })
  in
  for i = 1 to trials do
    let prng = Prng.split root in
    match sampler prng with
    | Some steps ->
        let x = float_of_int steps in
        Stats.add acc x;
        observed := x :: !observed;
        emit_trial i (Some x)
    | None ->
        incr censored;
        emit_trial i None
  done;
  let lifetimes = Array.of_list (List.rev !observed) in
  {
    lifetimes;
    censored = !censored;
    trials;
    mean = Stats.mean acc;
    ci95 = Stats.confidence_interval acc;
    median = (if Array.length lifetimes = 0 then nan else Stats.median lifetimes);
  }

let pp_result ppf r =
  let lo, hi = r.ci95 in
  Format.fprintf ppf "EL=%.4g ci95=[%.4g, %.4g] median=%.4g (n=%d, censored=%d)" r.mean lo hi
    r.median r.trials r.censored
