module Prng = Fortress_util.Prng
module Systems = Fortress_model.Systems
module Keyspace = Fortress_defense.Keyspace
module Instance = Fortress_defense.Instance
module Knowledge = Fortress_attack.Knowledge

type mode = PO | SO

type config = {
  chi : int;
  omega : int;
  kappa : float;
  np : int;
  mode : mode;
  launchpad : Systems.launchpad;
  max_steps : int;
}

let default =
  {
    chi = 4096;
    omega = 8;
    kappa = 0.5;
    np = 3;
    mode = PO;
    launchpad = Systems.Remaining;
    max_steps = 200_000;
  }

let alpha_of cfg = float_of_int cfg.omega /. float_of_int cfg.chi

let validate cfg =
  if cfg.chi < 2 then invalid_arg "Probe_level: chi must be >= 2";
  if cfg.omega < 1 then invalid_arg "Probe_level: omega must be >= 1";
  if cfg.kappa < 0.0 || cfg.kappa > 1.0 then invalid_arg "Probe_level: kappa in [0,1]";
  if cfg.np < 1 then invalid_arg "Probe_level: np must be >= 1"

(* Draw a key different from everything in [avoid]. *)
let rec distinct_key ks prng avoid =
  let k = Keyspace.random_key ks prng in
  if List.mem k avoid then distinct_key ks prng avoid else k

(* ---- one-tier systems: a single probe stream tests all replicas ---- *)

(* S0: requests reach all four replicas, so one probe tests four distinct
   keys at once; S1: the three replicas share one key, so the same stream
   tests a single key. *)
let one_tier ~nkeys ~fail_at cfg prng =
  let ks = Keyspace.of_size cfg.chi in
  let keys = Array.make nkeys 0 in
  let assign_keys () =
    let avoid = ref [] in
    for i = 0 to nkeys - 1 do
      let k = distinct_key ks prng !avoid in
      avoid := k :: !avoid;
      keys.(i) <- k
    done
  in
  assign_keys ();
  let knowledge = ref (Knowledge.create ks) in
  let found = Array.make nkeys false in
  let found_count = ref 0 in
  let rec step i =
    if i > cfg.max_steps then None
    else begin
      let compromised = ref false in
      let budget = min cfg.omega (Knowledge.remaining !knowledge) in
      let m = ref 0 in
      while (not !compromised) && !m < budget do
        incr m;
        match Knowledge.next_guess !knowledge prng with
        | None -> () (* unreachable: budget <= remaining *)
        | Some guess ->
            Knowledge.observe_crash !knowledge ~guess;
            for n = 0 to nkeys - 1 do
              if (not found.(n)) && keys.(n) = guess then begin
                found.(n) <- true;
                incr found_count
              end
            done;
            if !found_count >= fail_at then compromised := true
      done;
      if !compromised then Some i
      else begin
        (match cfg.mode with
        | PO ->
            (* boundary: fresh diverse keys, attacker knowledge void,
               intruders evicted *)
            assign_keys ();
            knowledge := Knowledge.create ks;
            Array.fill found 0 nkeys false;
            found_count := 0
        | SO -> (* recovery: same keys, knowledge and found keys persist *) ());
        step (i + 1)
      end
    end
  in
  step 1

(* ---- FORTRESS ---- *)

let s2 cfg prng =
  let ks = Keyspace.of_size cfg.chi in
  let proxy_keys = Array.make cfg.np 0 in
  let server_key = ref 0 in
  let assign_keys () =
    let sk = Keyspace.random_key ks prng in
    server_key := sk;
    let avoid = ref [ sk ] in
    for j = 0 to cfg.np - 1 do
      let k = distinct_key ks prng !avoid in
      avoid := k :: !avoid;
      proxy_keys.(j) <- k
    done
  in
  assign_keys ();
  let proxy_knowledge = ref (Array.init cfg.np (fun _ -> Knowledge.create ks)) in
  let server_knowledge = ref (Knowledge.create ks) in
  let owned = Array.make cfg.np false in
  let indirect_budget = int_of_float (Float.round (cfg.kappa *. float_of_int cfg.omega)) in
  let server_found = ref false in
  (* fire [n] probes at the server key from a stream sharing the server
     knowledge pool *)
  let probe_server n =
    let m = ref 0 in
    while (not !server_found) && !m < n && Knowledge.remaining !server_knowledge > 0 do
      incr m;
      match Knowledge.next_guess !server_knowledge prng with
      | None -> () (* unreachable: the loop guard checks [remaining] *)
      | Some guess ->
          if guess = !server_key then begin
            Knowledge.observe_intrusion !server_knowledge ~guess;
            server_found := true
          end
          else Knowledge.observe_crash !server_knowledge ~guess
    done
  in
  let rec step i =
    if i > cfg.max_steps then None
    else begin
      server_found := false;
      let owned_this_step = Array.copy owned in
      (* direct channels: each proxy gets its own omega budget *)
      for j = 0 to cfg.np - 1 do
        if not !server_found then
          if owned_this_step.(j) then
            (* a standing launch pad (SO): the whole budget turns on the
               server *)
            probe_server cfg.omega
          else begin
            let kn = !proxy_knowledge.(j) in
            let budget = min cfg.omega (Knowledge.remaining kn) in
            let m = ref 0 in
            let fell_at = ref None in
            while !fell_at = None && !m < budget do
              incr m;
              match Knowledge.next_guess kn prng with
              | None -> () (* unreachable: budget <= remaining *)
              | Some guess ->
                  if guess = proxy_keys.(j) then begin
                    Knowledge.observe_intrusion kn ~guess;
                    fell_at := Some !m
                  end
                  else Knowledge.observe_crash kn ~guess
            done;
            match !fell_at with
            | None -> ()
            | Some m ->
                owned_this_step.(j) <- true;
                (match cfg.launchpad with
                | Systems.Remaining -> probe_server (cfg.omega - m)
                | Systems.Full -> probe_server cfg.omega
                | Systems.Next_step -> ())
          end
      done;
      (* the indirect stream, paced at kappa * omega through the proxies *)
      if not !server_found then probe_server indirect_budget;
      let all_proxies = Array.for_all Fun.id owned_this_step in
      if !server_found || all_proxies then Some i
      else begin
        (match cfg.mode with
        | PO ->
            assign_keys ();
            proxy_knowledge := Array.init cfg.np (fun _ -> Knowledge.create ks);
            server_knowledge := Knowledge.create ks;
            Array.fill owned 0 cfg.np false
        | SO ->
            (* recovery evicts the intruder but keys survive: a learned
               proxy key means instant re-capture next step *)
            Array.blit owned_this_step 0 owned 0 cfg.np);
        step (i + 1)
      end
    end
  in
  step 1

let lifetime system cfg prng =
  validate cfg;
  match system with
  | Systems.S0_PO -> one_tier ~nkeys:4 ~fail_at:2 { cfg with mode = PO } prng
  | Systems.S0_SO -> one_tier ~nkeys:4 ~fail_at:2 { cfg with mode = SO } prng
  | Systems.S1_PO -> one_tier ~nkeys:1 ~fail_at:1 { cfg with mode = PO } prng
  | Systems.S1_SO -> one_tier ~nkeys:1 ~fail_at:1 { cfg with mode = SO } prng
  | Systems.S2_PO -> s2 { cfg with mode = PO } prng
  | Systems.S2_SO -> s2 { cfg with mode = SO } prng

let estimate ?sink ?jobs ?(trials = 500) ?(seed = 42) system cfg =
  Trial.run ?sink ?jobs ~trials ~seed ~sampler:(lifetime system cfg) ()
