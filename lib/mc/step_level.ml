module Prng = Fortress_util.Prng
module Systems = Fortress_model.Systems

type config = {
  alpha : float;
  kappa : float;
  np : int;
  launchpad : Systems.launchpad;
  max_steps : int;
}

let default =
  { alpha = 1e-3; kappa = 0.5; np = 3; launchpad = Systems.Remaining; max_steps = 10_000_000 }

let bern = Prng.bernoulli

(* S0 under PO: four diversely keyed replicas, all state reset each step;
   compromise = two falls in one step. *)
let s0_po cfg prng =
  let rec step i =
    if i > cfg.max_steps then None
    else begin
      let falls = ref 0 in
      for _ = 1 to 4 do
        if bern prng ~p:cfg.alpha then incr falls
      done;
      if !falls >= 2 then Some i else step (i + 1)
    end
  in
  step 1

let s1_po cfg prng =
  let rec step i =
    if i > cfg.max_steps then None
    else if bern prng ~p:cfg.alpha then Some i
    else step (i + 1)
  in
  step 1

(* S2 under PO: per step, draw each proxy's fate and fall instant, the
   indirect attack, and each captured proxy's launch-pad conversion. *)
let s2_po cfg prng =
  let rec step i =
    if i > cfg.max_steps then None
    else begin
      let fallen = ref 0 in
      let server_hit = ref (bern prng ~p:(cfg.kappa *. cfg.alpha)) in
      for _ = 1 to cfg.np do
        if bern prng ~p:cfg.alpha then begin
          incr fallen;
          let convert =
            match cfg.launchpad with
            | Systems.Remaining ->
                let u = Prng.float prng in
                bern prng ~p:((1.0 -. u) *. cfg.alpha)
            | Systems.Full -> bern prng ~p:cfg.alpha
            | Systems.Next_step -> false (* the boundary rekey evicts first *)
          in
          if convert then server_hit := true
        end
      done;
      if !server_hit || !fallen = cfg.np then Some i else step (i + 1)
    end
  in
  step 1

let s1_so cfg prng =
  let rec step i =
    if i > cfg.max_steps then None
    else begin
      let h = Systems.so_hazard ~alpha:cfg.alpha i in
      if bern prng ~p:h then Some i else step (i + 1)
    end
  in
  step 1

(* S0 under SO: uncovered keys accumulate across steps. *)
let s0_so cfg prng =
  let rec step i found =
    if i > cfg.max_steps then None
    else begin
      let h = Systems.so_hazard ~alpha:cfg.alpha i in
      let new_finds = ref 0 in
      for _ = 1 to 4 - found do
        if bern prng ~p:h then incr new_finds
      done;
      let found = found + !new_finds in
      if found >= 2 then Some i else step (i + 1) found
    end
  in
  step 1 0

(* S2 under SO: a learned proxy key is permanent (recovery does not change
   keys), so captured proxies are standing launch pads with a full budget.
   The server key's eliminated mass grows with every stream aimed at it. *)
let s2_so cfg prng =
  let rec step i known eliminated =
    if i > cfg.max_steps then None
    else begin
      let hp = Systems.so_hazard ~alpha:cfg.alpha i in
      let rate = (cfg.kappa +. float_of_int known) *. cfg.alpha in
      let hs =
        let denom = 1.0 -. eliminated in
        if denom <= rate then 1.0 else rate /. denom
      in
      if bern prng ~p:hs then Some i
      else begin
        let new_known = ref 0 in
        for _ = 1 to cfg.np - known do
          if bern prng ~p:hp then incr new_known
        done;
        let known = known + !new_known in
        if known >= cfg.np then Some i
        else step (i + 1) known (min 0.999999 (eliminated +. rate))
      end
    end
  in
  step 1 0 0.0

let sampler system cfg =
  if cfg.alpha < 0.0 || cfg.alpha > 1.0 then invalid_arg "Step_level: alpha in [0,1]";
  if cfg.kappa < 0.0 || cfg.kappa > 1.0 then invalid_arg "Step_level: kappa in [0,1]";
  if cfg.np <= 0 then invalid_arg "Step_level: np must be positive";
  match system with
  | Systems.S0_PO -> s0_po cfg
  | Systems.S1_PO -> s1_po cfg
  | Systems.S2_PO -> s2_po cfg
  | Systems.S1_SO -> s1_so cfg
  | Systems.S0_SO -> s0_so cfg
  | Systems.S2_SO -> s2_so cfg

let estimate ?sink ?monitor ?early_stop ?jobs ?(trials = 2000) ?(seed = 42) system cfg =
  (* step-level trials cost microseconds, so floor the chunk size: a short
     run must not pay per-chunk hand-off larger than the chunk's work.
     The floor only coarsens the partition — results are index-structural
     and stay bit-identical at every (jobs, min_chunk). *)
  Trial.run ?sink ?monitor ?early_stop ?jobs ~min_chunk:32 ~trials ~seed
    ~sampler:(sampler system cfg) ()
