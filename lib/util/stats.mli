(** Streaming and batch descriptive statistics for Monte-Carlo output. *)

type t
(** A streaming accumulator (Welford's algorithm): numerically stable mean
    and variance without storing samples. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the observed samples; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float
val std_error : t -> float
(** Standard error of the mean. *)

val min : t -> float
val max : t -> float
val total : t -> float

val confidence_interval : ?z:float -> t -> float * float
(** [confidence_interval ?z t] is the normal-approximation interval
    [mean -/+ z * std_error]; [z] defaults to 1.96 (95%). *)

val combine : t -> t -> t
(** [combine a b] combines two accumulators as if all samples were fed to
    one (Chan et al. pairwise merge). Neither input is mutated. This is
    the parallel-safe reduction used to fold per-domain accumulators at a
    Monte-Carlo join; mean, variance and confidence intervals agree with
    sequential accumulation up to floating-point reassociation. *)

val merge : t -> t -> t
(** Alias of {!combine}, kept for callers of the original name. *)

(** {1 Batch helpers} *)

val mean_of : float array -> float
val variance_of : float array -> float
val quantile : float array -> q:float -> float
(** [quantile xs ~q] is the linear-interpolation quantile, [q] in [0, 1].
    The input need not be sorted. Raises [Invalid_argument] when empty or
    [q] out of range. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95_lo : float;
  ci95_hi : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary
(** Full batch summary. Raises [Invalid_argument] on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
