type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  mutable sum : float;
}

let create_linear ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_linear: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create_linear: hi <= lo";
  {
    scale = Linear;
    lo;
    hi;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    sum = 0.0;
  }

let create_log ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_log: bins must be positive";
  if not (lo > 0.0 && hi > lo) then invalid_arg "Histogram.create_log: need 0 < lo < hi";
  {
    scale = Log;
    lo;
    hi;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    sum = 0.0;
  }

let position t x =
  match t.scale with
  | Linear -> (x -. t.lo) /. (t.hi -. t.lo)
  | Log -> if x <= 0.0 then -1.0 else (log x -. log t.lo) /. (log t.hi -. log t.lo)

let add t x =
  t.total <- t.total + 1;
  t.sum <- t.sum +. x;
  let pos = position t x in
  if pos < 0.0 then t.underflow <- t.underflow + 1
  else if pos >= 1.0 then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float (pos *. float_of_int (Array.length t.counts)) in
    let i = Stdlib.min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let sum t = t.sum
let underflow t = t.underflow
let overflow t = t.overflow
let bin_count t = Array.length t.counts

let edge t frac =
  match t.scale with
  | Linear -> t.lo +. (frac *. (t.hi -. t.lo))
  | Log -> exp (log t.lo +. (frac *. (log t.hi -. log t.lo)))

let bin_edges t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_edges";
  let n = float_of_int (Array.length t.counts) in
  (edge t (float_of_int i /. n), edge t (float_of_int (i + 1) /. n))

let bin_value t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_value";
  t.counts.(i)

let fraction t i =
  if t.total = 0 then 0.0 else float_of_int (bin_value t i) /. float_of_int t.total

let render ?(width = 50) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  for i = 0 to Array.length t.counts - 1 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bin_edges t i in
      let bar = t.counts.(i) * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%10.4g, %10.4g) %6d %s\n" lo hi t.counts.(i) (String.make bar '#'))
    end
  done;
  if t.underflow > 0 then Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.underflow);
  if t.overflow > 0 then Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.overflow);
  Buffer.contents buf
