type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  mutable sum : float;
}

let create_linear ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_linear: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create_linear: hi <= lo";
  {
    scale = Linear;
    lo;
    hi;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    sum = 0.0;
  }

let create_log ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_log: bins must be positive";
  if not (lo > 0.0 && hi > lo) then invalid_arg "Histogram.create_log: need 0 < lo < hi";
  {
    scale = Log;
    lo;
    hi;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
    sum = 0.0;
  }

let position t x =
  match t.scale with
  | Linear -> (x -. t.lo) /. (t.hi -. t.lo)
  | Log -> if x <= 0.0 then -1.0 else (log x -. log t.lo) /. (log t.hi -. log t.lo)

let add_n t x n =
  if n < 0 then invalid_arg "Histogram.add_n: negative weight";
  if n > 0 then begin
    t.total <- t.total + n;
    t.sum <- t.sum +. (x *. float_of_int n);
    let pos = position t x in
    if pos < 0.0 then t.underflow <- t.underflow + n
    else if pos >= 1.0 then t.overflow <- t.overflow + n
    else begin
      let i = int_of_float (pos *. float_of_int (Array.length t.counts)) in
      let i = Stdlib.min i (Array.length t.counts - 1) in
      t.counts.(i) <- t.counts.(i) + n
    end
  end

let add t x = add_n t x 1

let count t = t.total
let sum t = t.sum
let underflow t = t.underflow
let overflow t = t.overflow
let bin_count t = Array.length t.counts

let edge t frac =
  match t.scale with
  | Linear -> t.lo +. (frac *. (t.hi -. t.lo))
  | Log -> exp (log t.lo +. (frac *. (log t.hi -. log t.lo)))

let bin_edges t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_edges";
  let n = float_of_int (Array.length t.counts) in
  (edge t (float_of_int i /. n), edge t (float_of_int (i + 1) /. n))

let bin_value t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_value";
  t.counts.(i)

let fraction t i =
  if t.total = 0 then 0.0 else float_of_int (bin_value t i) /. float_of_int t.total

let same_shape a b =
  a.scale = b.scale && a.lo = b.lo && a.hi = b.hi
  && Array.length a.counts = Array.length b.counts

let merge t other =
  if not (same_shape t other) then invalid_arg "Histogram.merge: shapes differ";
  Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) other.counts;
  t.underflow <- t.underflow + other.underflow;
  t.overflow <- t.overflow + other.overflow;
  t.total <- t.total + other.total;
  t.sum <- t.sum +. other.sum

(* Rank statistics from binned counts: walk the cumulative distribution to
   the bin holding rank q * (total - 1), then interpolate linearly inside
   it. Underflow mass reads as [lo], overflow as [hi] — the truncation the
   caller accepted by choosing the range. *)
let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0, 1]";
  if t.total = 0 then None
  else begin
    let rank = q *. float_of_int (t.total - 1) in
    let seen = ref (float_of_int t.underflow) in
    if rank < !seen then Some t.lo
    else begin
      let result = ref None in
      (try
         for i = 0 to Array.length t.counts - 1 do
           let c = float_of_int t.counts.(i) in
           if c > 0.0 && rank < !seen +. c then begin
             let lo, hi = bin_edges t i in
             let frac = (rank -. !seen) /. c in
             result := Some (lo +. (frac *. (hi -. lo)));
             raise Exit
           end;
           seen := !seen +. c
         done
       with Exit -> ());
      match !result with Some _ as r -> r | None -> Some t.hi
    end
  end

let render ?(width = 50) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  for i = 0 to Array.length t.counts - 1 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bin_edges t i in
      let bar = t.counts.(i) * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%10.4g, %10.4g) %6d %s\n" lo hi t.counts.(i) (String.make bar '#'))
    end
  done;
  if t.underflow > 0 then Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.underflow);
  if t.overflow > 0 then Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.overflow);
  Buffer.contents buf
