(** Fixed-bin histograms over linear or logarithmic scales, used to inspect
    lifetime distributions from Monte-Carlo runs. *)

type t

val create_linear : lo:float -> hi:float -> bins:int -> t
(** Equal-width bins covering [lo, hi). Raises [Invalid_argument] if
    [bins <= 0] or [hi <= lo]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Bins whose edges are equally spaced in log-space; requires
    [0 < lo < hi]. *)

val add : t -> float -> unit
(** Samples below [lo] land in an underflow counter, samples at or above
    [hi] in an overflow counter. *)

val count : t -> int
(** Total samples added, including under/overflow. *)

val sum : t -> float
(** Sum of every sample added, including under/overflow — pairs with
    [count] to recover the mean, and backs the [_sum] series of the
    OpenMetrics histogram exposition. *)

val underflow : t -> int
val overflow : t -> int

val bin_count : t -> int
val bin_edges : t -> int -> float * float
(** [bin_edges t i] are the inclusive-lo/exclusive-hi edges of bin [i]. *)

val bin_value : t -> int -> int
(** Number of samples in bin [i]. *)

val fraction : t -> int -> float
(** [bin_value] over total [count]; 0 when the histogram is empty. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per non-empty bin. *)
