(** Fixed-bin histograms over linear or logarithmic scales, used to inspect
    lifetime distributions from Monte-Carlo runs. *)

type t

val create_linear : lo:float -> hi:float -> bins:int -> t
(** Equal-width bins covering [lo, hi). Raises [Invalid_argument] if
    [bins <= 0] or [hi <= lo]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Bins whose edges are equally spaced in log-space; requires
    [0 < lo < hi]. *)

val add : t -> float -> unit
(** Samples below [lo] land in an underflow counter, samples at or above
    [hi] in an overflow counter. *)

val add_n : t -> float -> int -> unit
(** [add_n t x n] adds [n] samples of value [x] in O(1) — the accounting
    primitive behind request batching, where one protocol message stands
    for [n] logical requests. [add_n t x 0] is a no-op; raises
    [Invalid_argument] on negative [n]. *)

val count : t -> int
(** Total samples added, including under/overflow. *)

val sum : t -> float
(** Sum of every sample added, including under/overflow — pairs with
    [count] to recover the mean, and backs the [_sum] series of the
    OpenMetrics histogram exposition. *)

val underflow : t -> int
val overflow : t -> int

val bin_count : t -> int
val bin_edges : t -> int -> float * float
(** [bin_edges t i] are the inclusive-lo/exclusive-hi edges of bin [i]. *)

val bin_value : t -> int -> int
(** Number of samples in bin [i]. *)

val fraction : t -> int -> float
(** [bin_value] over total [count]; 0 when the histogram is empty. *)

val merge : t -> t -> unit
(** [merge t other] folds [other]'s counts, under/overflow and sum into
    [t] ([other] is unchanged). Raises [Invalid_argument] unless both
    histograms share scale, range and bin count — merging is meant for
    same-shaped per-trial histograms joined in index order. *)

val quantile : t -> float -> float option
(** [quantile t q] estimates the [q]-quantile (q in [0, 1]) by walking the
    cumulative counts and interpolating linearly inside the holding bin;
    resolution is the bin width at that point. Underflow mass reads as
    [lo], overflow mass as [hi]. [None] on an empty histogram; raises
    [Invalid_argument] when [q] is outside [0, 1]. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per non-empty bin. *)
