type t = { rows : int; cols : int; data : float array }

let make ~rows ~cols v =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.make: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) v }

let init ~rows ~cols f =
  let m = make ~rows ~cols 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Matrix.of_rows: empty";
  let cols = Array.length arr.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Matrix.of_rows: ragged rows")
    arr;
  init ~rows ~cols (fun i j -> arr.(i).(j))

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix: index out of bounds"

let get m i j =
  check_bounds m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- v

let copy m = { m with data = Array.copy m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let elementwise name op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg (name ^ ": dimension mismatch");
  { a with data = Array.mapi (fun i x -> op x b.data.(i)) a.data }

let add a b = elementwise "Matrix.add" ( +. ) a b
let sub a b = elementwise "Matrix.sub" ( -. ) a b
let scale m s = { m with data = Array.map (fun x -> x *. s) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let out = make ~rows:a.rows ~cols:b.cols 0.0 in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          out.data.((i * b.cols) + j) <-
            out.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  out

let apply m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.apply: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let apply_left v m =
  if Array.length v <> m.rows then invalid_arg "Matrix.apply_left: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0.0 in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (v.(i) *. m.data.((i * m.cols) + j))
      done;
      !acc)

exception Singular of { dim : int; col : int }

let () =
  Printexc.register_printer (function
    | Singular { dim; col } ->
        Some
          (Printf.sprintf "Matrix.Singular: %dx%d matrix has no usable pivot in column %d" dim
             dim col)
    | _ -> None)

(* Gaussian elimination with partial pivoting on the augmented system
   [a | b]; returns x column-wise. Shared by [solve] and [solve_many]. *)
let eliminate a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: matrix must be square";
  if b.rows <> a.rows then invalid_arg "Matrix.solve: rhs dimension mismatch";
  let n = a.rows and m = b.cols in
  let lhs = copy a and rhs = copy b in
  for col = 0 to n - 1 do
    (* pivot selection *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (get lhs r col) > Float.abs (get lhs !pivot col) then pivot := r
    done;
    if Float.abs (get lhs !pivot col) < 1e-12 then raise (Singular { dim = n; col });
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let tmp = get lhs col j in
        set lhs col j (get lhs !pivot j);
        set lhs !pivot j tmp
      done;
      for j = 0 to m - 1 do
        let tmp = get rhs col j in
        set rhs col j (get rhs !pivot j);
        set rhs !pivot j tmp
      done
    end;
    let inv_p = 1.0 /. get lhs col col in
    for r = col + 1 to n - 1 do
      let factor = get lhs r col *. inv_p in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          set lhs r j (get lhs r j -. (factor *. get lhs col j))
        done;
        for j = 0 to m - 1 do
          set rhs r j (get rhs r j -. (factor *. get rhs col j))
        done
      end
    done
  done;
  (* back substitution *)
  let x = make ~rows:n ~cols:m 0.0 in
  for j = 0 to m - 1 do
    for i = n - 1 downto 0 do
      let acc = ref (get rhs i j) in
      for k = i + 1 to n - 1 do
        acc := !acc -. (get lhs i k *. get x k j)
      done;
      set x i j (!acc /. get lhs i i)
    done
  done;
  x

let solve_many a b = eliminate a b

let solve a b =
  let bm = init ~rows:(Array.length b) ~cols:1 (fun i _ -> b.(i)) in
  let x = eliminate a bm in
  Array.init (rows x) (fun i -> get x i 0)

let inverse a = solve_many a (identity a.rows)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := Float.max !acc (Float.abs (x -. b.data.(i)))) a.data;
  !acc

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= eps

let row_sums m =
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. get m i j
      done;
      !acc)

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%8.4g" (get m i j)
    done;
    Format.fprintf ppf "]@."
  done
