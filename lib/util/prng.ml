type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

(* SplitMix64 advances by a fixed gamma per draw, so the state feeding the
   n-th [split] is [state + n*gamma]: the n-th child stream is a pure
   function of (state, n). This is what makes parallel trial scheduling
   seed-stable — a worker derives trial n's generator directly from the
   trial index, never from how many splits other workers performed. *)
let split_nth t n =
  if n <= 0 then invalid_arg "Prng.split_nth: n must be positive";
  let s = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int n)) in
  { state = mix (mix s) }

(* Draw uniformly from [0, bound) by rejection on the top multiple of
   [bound], avoiding modulo bias. *)
let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
  let rec draw () =
    let v = Int64.shift_right_logical (bits64 t) 1 in
    if v >= limit then draw () else Int64.to_int (Int64.rem v bound64)
  in
  draw ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t ~bound:(hi - lo + 1)

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float_in_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)
let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t in
  -.log u /. rate

let geometric t ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Prng.geometric: p must be in (0, 1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t ~bound:(Array.length a))

(* Floyd's algorithm: O(k) expected draws, uniform over k-subsets. *)
let sample_without_replacement t ~k ~n =
  if k < 0 || n < 0 then invalid_arg "Prng.sample_without_replacement: negative argument";
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  for i = 0 to k - 1 do
    let j = n - k + i in
    let v = int t ~bound:(j + 1) in
    let pick = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen pick ();
    out.(i) <- pick
  done;
  out
