(** Small dense matrices over floats, sufficient for absorbing-Markov-chain
    transient analysis (fundamental matrix, expected absorption times). *)

type t

val make : rows:int -> cols:int -> float -> t
(** [make ~rows ~cols v] is a [rows * cols] matrix filled with [v]. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val identity : int -> t
val of_rows : float array array -> t
(** Raises [Invalid_argument] when rows have inconsistent lengths or the
    input is empty. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : t -> float -> t

val apply : t -> float array -> float array
(** [apply m v] is the matrix-vector product [m v]. *)

val apply_left : float array -> t -> float array
(** [apply_left v m] is the row-vector product [v m]. *)

exception Singular of { dim : int; col : int }
(** Raised by {!solve} / {!solve_many} / {!inverse} when partial pivoting
    finds no usable pivot: the [dim * dim] system is (numerically) singular
    at elimination column [col]. *)

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Raises {!Singular} on a (numerically) singular matrix. *)

val solve_many : t -> t -> t
(** [solve_many a b] solves [a x = b] column-wise; [inverse a] is
    [solve_many a (identity n)]. *)

val inverse : t -> t
val max_abs_diff : t -> t -> float
val equal : ?eps:float -> t -> t -> bool
val row_sums : t -> float array
val pp : Format.formatter -> t -> unit
