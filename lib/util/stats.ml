type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let std_error t = if t.n = 0 then nan else stddev t /. sqrt (float_of_int t.n)
let min t = t.min
let max t = t.max
let total t = t.total

let confidence_interval ?(z = 1.96) t =
  let m = mean t and se = std_error t in
  (m -. (z *. se), m +. (z *. se))

(* Chan et al. parallel-variance combination: associative enough to fold
   per-domain accumulators in index order at a parallel join. *)
let combine a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      total = a.total +. b.total;
    }
  end

let merge = combine

let mean_of xs =
  let t = create () in
  Array.iter (add t) xs;
  mean t

let variance_of xs =
  let t = create () in
  Array.iter (add t) xs;
  variance t

let quantile xs ~q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0, 1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = quantile xs ~q:0.5

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95_lo : float;
  ci95_hi : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty array";
  let t = create () in
  Array.iter (add t) xs;
  let ci_lo, ci_hi = confidence_interval t in
  {
    n = count t;
    mean = mean t;
    stddev = (if count t < 2 then 0.0 else stddev t);
    ci95_lo = ci_lo;
    ci95_hi = ci_hi;
    min = min t;
    p25 = quantile xs ~q:0.25;
    median = median xs;
    p75 = quantile xs ~q:0.75;
    max = max t;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g ci95=[%.4g, %.4g] min=%.4g med=%.4g max=%.4g" s.n
    s.mean s.stddev s.ci95_lo s.ci95_hi s.min s.median s.max
