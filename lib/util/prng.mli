(** Deterministic, splittable pseudo-random number generator.

    The generator is a SplitMix64 stream. It is deliberately not
    cryptographic: it drives Monte-Carlo trials and simulated network jitter,
    where reproducibility from a seed matters and unpredictability does not.
    Splitting derives an independent stream, so concurrent simulation
    components can draw without perturbing each other's sequences. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    evolve independently. *)

val split : t -> t
(** [split t] advances [t] once and returns a generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val split_nth : t -> int -> t
(** [split_nth t n] is the generator the [n]-th successive call of
    {!split} on [t] would return ([n >= 1]), computed directly from [n]
    without advancing [t]. Because the child stream depends only on
    [t]'s current state and the index [n], any partitioning of indices
    across parallel workers derives bit-identical streams — the
    foundation of the [-j 1] / [-j N] determinism guarantee. Raises
    [Invalid_argument] when [n <= 0]. *)

val bits64 : t -> int64
(** [bits64 t] returns the next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. Uses rejection sampling, so the
    distribution is exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] draws uniformly from the inclusive range
    [lo, hi]. Raises [Invalid_argument] if [hi < lo]. *)

val float : t -> float
(** [float t] draws uniformly from [0, 1) with 53 bits of precision. *)

val float_in_range : t -> lo:float -> hi:float -> float
(** [float_in_range t ~lo ~hi] draws uniformly from [lo, hi). *)

val bool : t -> bool
(** [bool t] draws a fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] returns [true] with probability [p]. Values of [p]
    outside [0, 1] are clamped. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from Exp(rate). Raises [Invalid_argument]
    if [rate <= 0]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] returns the number of Bernoulli(p) failures before the
    first success (support 0, 1, 2, ...). Raises [Invalid_argument] unless
    [0 < p <= 1]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher-Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] returns a uniformly random element. Raises
    [Invalid_argument] on an empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] returns [k] distinct integers drawn
    uniformly from [0, n). Raises [Invalid_argument] if [k > n] or either is
    negative. *)
