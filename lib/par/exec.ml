module Profiler = Fortress_prof.Profiler

(* Lane-scheduled execution over the persistent Pool.

   The partition (how [0, n) splits into chunks) is a pure function of
   (jobs, n, min_chunk) and fully determines every result: per-trial PRNG
   streams come from the trial index and joins replay chunks in index
   order, so outputs never depend on WHICH domain ran a chunk. That frees
   the execution side to adapt to the machine: chunks are dealt round-robin
   onto [lanes = min (#chunks) (active domains limit)] lanes, lane 0 on the
   calling domain and each other lane on one pooled worker. Capping lanes
   at the hardware's domain count matters more than it sounds — in OCaml 5
   every *running* domain participates in stop-the-world minor-GC barriers,
   so oversubscribing actively-running domains turns a speedup into a
   many-fold slowdown. Parked pool workers are exempt (blocked in
   [Condition.wait]), which is why a large warm pool costs nothing. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let forced_active : int option ref = ref None
let set_max_active_domains limit = forced_active := limit

let active_limit () =
  match !forced_active with
  | Some m -> max 1 m
  | None -> max 1 (Domain.recommended_domain_count ())

let map_chunks ?min_chunk ~jobs ~n f =
  let chunks = Partition.chunks ?min_chunk ~jobs ~n () in
  let k = Array.length chunks in
  if k = 0 then [||]
  else begin
    let results = Array.make k None in
    let run_chunk c =
      let lo, hi = chunks.(c) in
      results.(c) <- Some (try Ok (f ~chunk:c ~lo ~hi) with e -> Error e)
    in
    let lanes = min k (active_limit ()) in
    if lanes <= 1 then
      for c = 0 to k - 1 do
        run_chunk c
      done
    else begin
      let run_lane lane =
        let c = ref lane in
        while !c < k do
          run_chunk !c;
          c := !c + lanes
        done
      in
      let tasks =
        Array.init (lanes - 1) (fun i ->
            let lane = i + 1 in
            fun () ->
              (* deterministic merge order for per-domain profiler rings:
                 pooled workers keep their DLS state across calls, and the
                 lane index pins where that state sorts at export *)
              Profiler.set_merge_rank lane;
              run_lane lane)
      in
      Pool.run (Pool.global ()) ~tasks ~inline:(fun () ->
          Profiler.set_merge_rank 0;
          run_lane 0)
    end;
    (* settle in chunk order: the lowest-numbered failing chunk wins, no
       matter which lane ran it or when it finished *)
    for c = 0 to k - 1 do
      match results.(c) with Some (Error e) -> raise e | _ -> ()
    done;
    Array.map (function Some (Ok v) -> v | _ -> assert false) results
  end

let map_indices ?min_chunk ~jobs ~n f =
  let per_chunk =
    map_chunks ?min_chunk ~jobs ~n (fun ~chunk:_ ~lo ~hi ->
        Array.init (hi - lo) (fun k -> f (lo + k)))
  in
  Array.concat (Array.to_list per_chunk)
