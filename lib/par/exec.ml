module Profiler = Fortress_prof.Profiler

(* A fixed pool of domains, one per chunk: chunk 0 runs inline on the
   calling domain, chunks 1.. each get a fresh domain. Chunk counts are
   small (the CLI's --jobs), so spawn cost is negligible next to a chunk
   of Monte-Carlo trials, and a fixed one-domain-per-chunk pool keeps the
   work assignment identical to the deterministic partition — there is no
   queue whose drain order could leak into results. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let map_chunks ~jobs ~n ~f =
  let chunks = Partition.chunks ~jobs ~n in
  match Array.length chunks with
  | 0 -> [||]
  | 1 ->
      let lo, hi = chunks.(0) in
      [| f ~chunk:0 ~lo ~hi |]
  | k ->
      let workers =
        Array.init (k - 1) (fun i ->
            let chunk = i + 1 in
            let lo, hi = chunks.(chunk) in
            Domain.spawn (fun () ->
                (* deterministic merge order for per-domain profiler rings *)
                Profiler.set_merge_rank chunk;
                f ~chunk ~lo ~hi))
      in
      let first =
        let lo, hi = chunks.(0) in
        try Ok (f ~chunk:0 ~lo ~hi) with e -> Error e
      in
      (* always join every worker, even when one failed, so no domain
         outlives the call; then re-raise the first failure in chunk order *)
      let rest = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) workers in
      let results = Array.append [| first |] rest in
      Array.map
        (function Ok v -> v | Error e -> raise e)
        results

let map_indices ~jobs ~n ~f =
  let per_chunk = map_chunks ~jobs ~n ~f:(fun ~chunk:_ ~lo ~hi ->
      Array.init (hi - lo) (fun k -> f (lo + k)))
  in
  Array.concat (Array.to_list per_chunk)
