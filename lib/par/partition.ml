(* Deterministic work partitioning by trial index: contiguous, balanced
   chunks fixed entirely by (jobs, n). Workers never steal across chunk
   boundaries, so which domain runs trial i is a pure function of the
   requested job count — the scheduling half of the [-j 1] / [-j N]
   determinism guarantee (the other half is Prng.split_nth). *)

let clamp_jobs ~jobs ~n =
  if n <= 0 then 0
  else if jobs <= 1 then 1
  else min jobs n

let chunks ~jobs ~n =
  if n < 0 then invalid_arg "Partition.chunks: n must be non-negative";
  let k = clamp_jobs ~jobs ~n in
  if k = 0 then [||]
  else begin
    let base = n / k and extra = n mod k in
    (* the first [extra] chunks carry one more index, so sizes differ by
       at most one and lower chunks are never smaller than higher ones *)
    let lo = ref 0 in
    Array.init k (fun c ->
        let size = base + if c < extra then 1 else 0 in
        let range = (!lo, !lo + size) in
        lo := !lo + size;
        range)
  end

let chunk_of ~jobs ~n index =
  if index < 0 || index >= n then invalid_arg "Partition.chunk_of: index out of range";
  let k = clamp_jobs ~jobs ~n in
  let base = n / k and extra = n mod k in
  let boundary = extra * (base + 1) in
  if index < boundary then index / (base + 1)
  else extra + ((index - boundary) / max base 1)
