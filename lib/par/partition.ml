(* Deterministic work partitioning by trial index: contiguous, balanced
   chunks fixed entirely by (jobs, n, min_chunk). Workers never steal
   across chunk boundaries, so which chunk owns trial i is a pure function
   of the requested job count — the scheduling half of the [-j 1] / [-j N]
   determinism guarantee (the other half is Prng.split_nth). *)

let clamp_jobs ?(min_chunk = 1) ~jobs ~n () =
  if n <= 0 then 0
  else if jobs <= 1 then 1
  else begin
    let k = min jobs n in
    (* coarse-chunking floor: per-chunk overhead (task hand-off, arena
       setup, join-replay) is paid k times, so when trials are cheap a
       short run must not be shredded into chunks smaller than the
       overhead is worth. Fewer chunks than jobs is always safe — spare
       lanes just stay idle. *)
    if min_chunk <= 1 then k else max 1 (min k (n / min_chunk))
  end

let chunks ?min_chunk ~jobs ~n () =
  if n < 0 then invalid_arg "Partition.chunks: n must be non-negative";
  let k = clamp_jobs ?min_chunk ~jobs ~n () in
  if k = 0 then [||]
  else begin
    let base = n / k and extra = n mod k in
    (* the first [extra] chunks carry one more index, so sizes differ by
       at most one and lower chunks are never smaller than higher ones *)
    let lo = ref 0 in
    Array.init k (fun c ->
        let size = base + if c < extra then 1 else 0 in
        let range = (!lo, !lo + size) in
        lo := !lo + size;
        range)
  end

let chunk_of ?min_chunk ~jobs ~n index =
  if index < 0 || index >= n then invalid_arg "Partition.chunk_of: index out of range";
  let k = clamp_jobs ?min_chunk ~jobs ~n () in
  let base = n / k and extra = n mod k in
  let boundary = extra * (base + 1) in
  if index < boundary then index / (base + 1)
  else extra + ((index - boundary) / max base 1)
