(** Persistent worker-domain pool.

    Domains are spawned lazily, once, and reused for the life of the
    process; between calls every worker parks in [Condition.wait], where a
    blocked domain neither consumes CPU nor delays OCaml's stop-the-world
    minor-GC barriers — an idle pool is free. This amortizes the two costs
    that made the spawn-per-call executor a measured slowdown: the
    [Domain.spawn] itself (~ms) and the GC-barrier tax of extra running
    domains.

    The pool is scheduling-free by design: {!run} hands task [i] to worker
    [i], nothing more. All policy — how many lanes to use, which chunk of
    work goes to which lane — lives in {!Exec}, where it is a deterministic
    function of the partition, so nothing about pool scheduling can leak
    into results. *)

type t

val global : unit -> t
(** The process-wide pool, created on first use. An [at_exit] hook joins
    all of its domains, so callers never manage the pool's lifetime. *)

val create : unit -> t
(** A private pool — only tests should need one. *)

val workers : t -> int
(** Worker domains currently spawned (the calling domain is not one). *)

val ensure : t -> int -> unit
(** [ensure t n] grows the pool to at least [n] worker domains. Never
    shrinks. Cheap when already satisfied (one array-length read). *)

val run : t -> tasks:(unit -> unit) array -> inline:(unit -> 'a) -> 'a
(** [run t ~tasks ~inline] submits [tasks.(i)] to worker [i] (growing the
    pool as needed), executes [inline] on the calling domain, then blocks
    until every submitted task has finished, and returns [inline]'s
    result.

    Tasks are contractually no-raise: callers store per-chunk outcomes
    (including exceptions) in their own slots and settle them after the
    join. If a task raises anyway, the pool survives — the worker keeps
    running — and [run] re-raises the crash after joining the batch. Must
    not be called concurrently from two domains on the same pool; the
    fortress runners only ever fan out from the controlling domain. *)

val shutdown : t -> unit
(** Join every worker domain. The pool is empty but usable afterwards
    ({!ensure} respawns). Called automatically at exit for {!global}. *)
