(* A persistent pool of worker domains, spawned lazily and reused for the
   life of the process. The pool replaces the spawn-per-call executor that
   made the parallel runner a measured slowdown: Domain.spawn costs
   milliseconds and — much worse — every extra *running* domain joins the
   stop-the-world minor-GC barriers, so repeatedly spawning short-lived
   domains taxed every Trial.run call twice. Pool workers pay the spawn
   once and park in [Condition.wait] between calls, where a blocked domain
   does not delay the GC barrier, so an idle pool is free.

   Scheduling is deliberately dumb: there is no shared run queue. A call
   hands worker [i] exactly the task at index [i] of its batch, runs its
   own share on the calling domain, then joins every submitted worker.
   Which work lands in which task is decided by the caller (Exec's
   deterministic chunk->lane assignment), so nothing about pool scheduling
   can leak into results. *)

type worker = {
  w_mutex : Mutex.t;
  w_has_task : Condition.t;
  w_done : Condition.t;
  mutable w_task : (unit -> unit) option;
  mutable w_busy : bool;  (** a task is pending or running *)
  mutable w_quit : bool;
  mutable w_crash : exn option;
      (** a task that raised anyway (tasks are contractually no-raise);
          kept so [run] can re-raise instead of losing the error *)
}

type t = {
  p_mutex : Mutex.t;  (** guards growth; never held while tasks run *)
  mutable p_workers : worker array;
  mutable p_domains : unit Domain.t array;
}

let worker_loop w =
  let rec loop () =
    Mutex.lock w.w_mutex;
    while w.w_task = None && not w.w_quit do
      Condition.wait w.w_has_task w.w_mutex
    done;
    if w.w_quit then Mutex.unlock w.w_mutex
    else begin
      let task = Option.get w.w_task in
      Mutex.unlock w.w_mutex;
      (try task () with e -> w.w_crash <- Some e);
      Mutex.lock w.w_mutex;
      w.w_task <- None;
      w.w_busy <- false;
      Condition.signal w.w_done;
      Mutex.unlock w.w_mutex;
      loop ()
    end
  in
  loop ()

let create () = { p_mutex = Mutex.create (); p_workers = [||]; p_domains = [||] }

let workers t = Array.length t.p_workers

let shutdown t =
  Mutex.lock t.p_mutex;
  let ws = t.p_workers and ds = t.p_domains in
  t.p_workers <- [||];
  t.p_domains <- [||];
  Mutex.unlock t.p_mutex;
  Array.iter
    (fun w ->
      Mutex.lock w.w_mutex;
      w.w_quit <- true;
      Condition.signal w.w_has_task;
      Mutex.unlock w.w_mutex)
    ws;
  Array.iter Domain.join ds

let ensure t n =
  if n > workers t then begin
    Mutex.lock t.p_mutex;
    let have = Array.length t.p_workers in
    if n > have then begin
      let fresh =
        Array.init (n - have) (fun _ ->
            {
              w_mutex = Mutex.create ();
              w_has_task = Condition.create ();
              w_done = Condition.create ();
              w_task = None;
              w_busy = false;
              w_quit = false;
              w_crash = None;
            })
      in
      let domains = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) fresh in
      t.p_workers <- Array.append t.p_workers fresh;
      t.p_domains <- Array.append t.p_domains domains
    end;
    Mutex.unlock t.p_mutex
  end

let submit w task =
  Mutex.lock w.w_mutex;
  (* [run] never submits to a busy worker; a stuck assert here would mean
     two concurrent [run] calls shared the pool, which the API forbids *)
  assert (not w.w_busy);
  w.w_task <- Some task;
  w.w_busy <- true;
  Condition.signal w.w_has_task;
  Mutex.unlock w.w_mutex

let await w =
  Mutex.lock w.w_mutex;
  while w.w_busy do
    Condition.wait w.w_done w.w_mutex
  done;
  Mutex.unlock w.w_mutex

let run t ~tasks ~inline =
  let k = Array.length tasks in
  ensure t k;
  Array.iteri (fun i task -> submit t.p_workers.(i) task) tasks;
  let own = try Ok (inline ()) with e -> Error e in
  for i = 0 to k - 1 do
    await t.p_workers.(i)
  done;
  (* a worker crash (contract violation) outranks the inline result: the
     batch is broken either way and losing the exception would hide it *)
  for i = 0 to k - 1 do
    let w = t.p_workers.(i) in
    match w.w_crash with
    | Some e ->
        w.w_crash <- None;
        raise e
    | None -> ()
  done;
  match own with Ok v -> v | Error e -> raise e

(* The process-wide pool. Created on first parallel call; its workers are
   parked (not consuming CPU, not delaying GC) whenever no call is active.
   The at_exit hook joins every domain so the runtime shuts down cleanly
   even though callers never see the pool's lifetime. *)
let the_global = ref None

let global () =
  match !the_global with
  | Some t -> t
  | None ->
      let t = create () in
      the_global := Some t;
      at_exit (fun () -> shutdown t);
      t
