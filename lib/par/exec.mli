(** Lane-scheduled parallel execution over a deterministic partition,
    running on the persistent {!Pool}.

    The partition — how [0, n) splits into chunks — is a pure function of
    [(jobs, n, min_chunk)] ({!Partition.chunks}) and, together with
    index-derived PRNG streams and chunk-ordered join-replay, fully
    determines every observable result. Execution is then free to adapt to
    the machine: chunks are dealt round-robin onto
    [lanes = min #chunks (available domains)], lane 0 on the calling
    domain, each other lane on one pooled worker (chunk [c] runs on lane
    [c mod lanes], ascending). Capping active lanes at the hardware's
    domain count avoids OCaml 5's stop-the-world minor-GC penalty for
    oversubscribed running domains; parked pool workers are exempt.

    Worker lanes tag their persistent per-domain profiler state with the
    lane index via {!Fortress_prof.Profiler.set_merge_rank}, so sample
    rings merge in lane order at export. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — a sensible [--jobs]
    when the caller wants "use the machine". [jobs] counts the calling
    domain: a run at [jobs = j] uses the caller plus at most [j - 1]
    pooled workers, so this default saturates the machine without
    oversubscribing it. *)

val set_max_active_domains : int option -> unit
(** Test hook: override how many domains may run concurrently ([None]
    restores the hardware limit). Forcing a limit above the hardware count
    makes a box with few cores exercise the real multi-lane code path;
    results are unaffected either way, because the chunk → lane assignment
    never feeds back into the partition. *)

val map_chunks :
  ?min_chunk:int ->
  jobs:int ->
  n:int ->
  (chunk:int -> lo:int -> hi:int -> 'a) ->
  'a array
(** [map_chunks ~jobs ~n f] applies [f] to every chunk of
    [Partition.chunks ?min_chunk ~jobs ~n ()] and returns the results in
    chunk order. [f] receives the chunk number and its half-open index
    range. With one chunk (or one available domain) everything runs inline
    on the caller and the pool is not touched. If any chunk raises, every
    chunk still runs to completion and the exception of the
    lowest-numbered failing chunk is re-raised — regardless of which lane
    ran it. *)

val map_indices : ?min_chunk:int -> jobs:int -> n:int -> (int -> 'a) -> 'a array
(** [map_indices ~jobs ~n f] is [Array.init n f] computed under the same
    partition: element [i] is [f i], computed by the chunk owning [i],
    returned in index order. *)
