(** Fixed-pool parallel execution over a deterministic partition.

    One domain per chunk of {!Partition.chunks}: chunk 0 runs inline on
    the calling domain, every other chunk on a freshly spawned domain that
    is joined before the call returns. There is no shared queue and no
    work stealing, so the chunk that computes index [i] is fixed by
    [(jobs, n)] alone. Worker domains are tagged with their chunk index
    via {!Fortress_prof.Profiler.set_merge_rank} so profiler sample rings
    merge in partition order at export. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — a sensible
    --jobs when the caller wants "use the machine". *)

val map_chunks :
  jobs:int -> n:int -> f:(chunk:int -> lo:int -> hi:int -> 'a) -> 'a array
(** [map_chunks ~jobs ~n ~f] applies [f] to every chunk of
    [Partition.chunks ~jobs ~n] and returns the results in chunk order.
    [f] receives the chunk number and its half-open index range. With one
    chunk (or [jobs <= 1]) everything runs inline and no domain is
    spawned. If any chunk raises, all domains are still joined and the
    exception of the lowest-numbered failing chunk is re-raised. *)

val map_indices : jobs:int -> n:int -> f:(int -> 'a) -> 'a array
(** [map_indices ~jobs ~n ~f] is [Array.init n f] computed under the same
    partition: element [i] is [f i], computed by the chunk owning [i],
    returned in index order. *)
