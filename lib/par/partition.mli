(** Deterministic work partitioning for parallel Monte-Carlo trials.

    A partition is a pure function of the job count, the trial count and
    the chunk-size floor: contiguous index ranges, sizes differing by at
    most one, no work stealing. Combined with
    {!Fortress_util.Prng.split_nth} (per-trial streams derived from the
    trial index, never from execution order) this makes every per-trial
    outcome independent of how many domains ran the partition. *)

val chunks : ?min_chunk:int -> jobs:int -> n:int -> unit -> (int * int) array
(** [chunks ~jobs ~n ()] splits the index range [0, n) into
    [min (max jobs 1) n] contiguous half-open ranges [(lo, hi)], in index
    order. The first [n mod k] chunks hold one extra index. Returns [[||]]
    when [n = 0]. Raises [Invalid_argument] when [n < 0].

    [min_chunk] (default 1) is a coarse-chunking floor: the chunk count is
    reduced (never below 1) until every chunk holds at least [min_chunk]
    indices, so cheap trials aren't shredded into chunks smaller than the
    per-chunk overhead. Chunks within the reduced count keep the exact
    contiguous balanced shape — [chunks ~min_chunk ~jobs ~n ()] equals
    [chunks ~jobs:k' ~n ()] for the reduced count [k']. *)

val chunk_of : ?min_chunk:int -> jobs:int -> n:int -> int -> int
(** [chunk_of ~jobs ~n index] is the chunk number that owns [index] under
    the same partition — the closed form of searching {!chunks}. Raises
    [Invalid_argument] when [index] is outside [0, n). *)
