(** Deterministic work partitioning for parallel Monte-Carlo trials.

    A partition is a pure function of the job count and the trial count:
    contiguous index ranges, sizes differing by at most one, no work
    stealing. Combined with {!Fortress_util.Prng.split_nth} (per-trial
    streams derived from the trial index, never from execution order) this
    makes every per-trial outcome independent of how many domains ran the
    partition. *)

val chunks : jobs:int -> n:int -> (int * int) array
(** [chunks ~jobs ~n] splits the index range [0, n) into
    [min (max jobs 1) n] contiguous half-open ranges [(lo, hi)], in index
    order. The first [n mod k] chunks hold one extra index. Returns [[||]]
    when [n = 0]. Raises [Invalid_argument] when [n < 0]. *)

val chunk_of : jobs:int -> n:int -> int -> int
(** [chunk_of ~jobs ~n index] is the chunk number that owns [index] under
    the same partition — the closed form of searching {!chunks}. Raises
    [Invalid_argument] when [index] is outside [0, n). *)
