(** Bind a fault plan to a live FORTRESS deployment.

    Installs the link interceptor and Message corrupter on the deployment's
    network, schedules every timeline entry on the engine (via absolute
    [schedule_at], so the fault timeline itself is exempt from its own
    slowdown), and routes crash / restart / stall actions into the
    deployment and obfuscation hooks. *)

type handle

val install :
  Plan.t ->
  deployment:Fortress_core.Deployment.t ->
  ?obfuscation:Fortress_core.Obfuscation.t ->
  seed:int ->
  unit ->
  handle
(** Validates the plan (including that every named node exists in this
    deployment) before touching anything. [seed] drives the injector's own
    salted PRNG — it does not perturb the engine's stream, so a faulted run
    samples the same organic randomness as the baseline. Pass
    [?obfuscation] to let [Stall_obfuscation] actions reach the rekey
    daemon; without it they emit their events but wedge nothing. *)

val stats : handle -> Injector.stats

val uninstall : handle -> unit
(** Remove the interceptors, restore engine speed, unwedge the daemon and
    stop future timeline firings (in-flight scheduled entries become
    no-ops). Already-applied crashes and partitions are {e not} undone. *)
