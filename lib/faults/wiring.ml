module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Deployment = Fortress_core.Deployment
module Message = Fortress_core.Message
module Obfuscation = Fortress_core.Obfuscation
module Event = Fortress_obs.Event

type handle = {
  stats : Injector.stats;
  mutable active : bool;
  deployment : Deployment.t;
  obfuscation : Obfuscation.t option;
}

(* Corrupting a client request mangles the command in flight; the proxy
   still parses the frame and forwards garbage (our proxies log, they do
   not deep-inspect). Protocol-internal messages and signed replies fail
   their integrity checks instead, which the network models as a drop. *)
let corrupter = function
  | Message.Client_request { id; cmd; client } ->
      Some (Message.Client_request { id; cmd = "corrupt:" ^ cmd; client })
  | Message.Server _ | Message.Client_reply _ -> None

let resolve_address deployment = function
  | Plan.Server i ->
      let a = Deployment.server_addresses deployment in
      if i < 0 || i >= Array.length a then
        invalid_arg (Printf.sprintf "Wiring: no server %d in this deployment" i);
      a.(i)
  | Plan.Proxy i ->
      let a = Deployment.proxy_addresses deployment in
      if i < 0 || i >= Array.length a then
        invalid_arg (Printf.sprintf "Wiring: no proxy %d in this deployment" i);
      a.(i)
  | Plan.Nameserver -> invalid_arg "Wiring: the nameserver is not a network node"

let check_target deployment = function
  | Plan.Nameserver -> ()
  | t -> ignore (resolve_address deployment t)

let apply_action h action =
  let deployment = h.deployment in
  let engine = Deployment.engine deployment in
  let net = Deployment.network deployment in
  h.stats.Injector.timeline_fired <- h.stats.Injector.timeline_fired + 1;
  match action with
  | Plan.Crash (Plan.Server i) -> Deployment.crash_server deployment i
  | Plan.Crash (Plan.Proxy i) -> Deployment.crash_proxy deployment i
  | Plan.Crash Plan.Nameserver -> Deployment.crash_nameserver deployment
  | Plan.Restart (Plan.Server i) -> Deployment.restart_server deployment i
  | Plan.Restart (Plan.Proxy i) -> Deployment.restart_proxy deployment i
  | Plan.Restart Plan.Nameserver -> Deployment.restart_nameserver deployment
  | Plan.Partition (a, b) ->
      Network.partition net (resolve_address deployment a) (resolve_address deployment b);
      Engine.emit engine
        (Event.Fault
           {
             action = "partition";
             target =
               Printf.sprintf "%s|%s" (Plan.target_to_string a) (Plan.target_to_string b);
             detail = "";
           })
  | Plan.Heal_all ->
      Network.heal_all net;
      Engine.emit engine (Event.Fault { action = "heal"; target = "network"; detail = "all" })
  | Plan.Stall_obfuscation ->
      Option.iter (fun o -> Obfuscation.set_stalled o true) h.obfuscation;
      Engine.emit engine
        (Event.Fault { action = "stall"; target = "obfuscation"; detail = "daemon wedged" })
  | Plan.Resume_obfuscation ->
      Option.iter (fun o -> Obfuscation.set_stalled o false) h.obfuscation;
      Engine.emit engine
        (Event.Fault { action = "resume"; target = "obfuscation"; detail = "" })
  | Plan.Slowdown f ->
      Engine.set_delay_interceptor engine
        (if f = 1.0 then None else Some (fun d -> d *. f));
      Engine.emit engine
        (Event.Fault
           { action = "slowdown"; target = "engine"; detail = Printf.sprintf "x%g" f })

let schedule_entry h (e : Plan.entry) =
  let engine = Deployment.engine h.deployment in
  let rec arm time =
    ignore
      (Engine.schedule_at engine ~time (fun () ->
           if h.active then begin
             apply_action h e.Plan.action;
             match e.Plan.every with
             | Some period -> arm (Engine.now engine +. period)
             | None -> ()
           end))
  in
  if e.Plan.at >= Engine.now engine then arm e.Plan.at
  else invalid_arg "Wiring: timeline entry scheduled in the past"

let install plan ~deployment ?obfuscation ~seed () =
  Plan.validate plan;
  (* fail before touching anything if the plan names absent nodes *)
  List.iter
    (fun (e : Plan.entry) ->
      match e.Plan.action with
      | Plan.Crash t | Plan.Restart t -> check_target deployment t
      | Plan.Partition (a, b) ->
          check_target deployment a;
          check_target deployment b
      | Plan.Heal_all | Plan.Stall_obfuscation | Plan.Resume_obfuscation | Plan.Slowdown _ -> ())
    plan.Plan.timeline;
  let engine = Deployment.engine deployment in
  let net = Deployment.network deployment in
  let stats = Injector.fresh_stats () in
  let h = { stats; active = true; deployment; obfuscation } in
  let prng = Injector.derive_prng ~seed in
  Injector.install_link ~engine ~net ~prng ~stats plan.Plan.link;
  if plan.Plan.link.Plan.corrupt > 0.0 then Network.set_corrupter net (Some corrupter);
  List.iter (schedule_entry h) plan.Plan.timeline;
  Engine.emit engine
    (Event.Fault
       {
         action = "plan_installed";
         target = plan.Plan.name;
         detail = Printf.sprintf "%d timeline entries" (List.length plan.Plan.timeline);
       });
  h

let stats h = h.stats

let uninstall h =
  if h.active then begin
    h.active <- false;
    let net = Deployment.network h.deployment in
    let engine = Deployment.engine h.deployment in
    Network.set_interceptor net None;
    Network.set_corrupter net None;
    Engine.set_delay_interceptor engine None;
    Option.iter (fun o -> Obfuscation.set_stalled o false) h.obfuscation;
    Engine.emit engine
      (Event.Fault { action = "plan_uninstalled"; target = "deployment"; detail = "" })
  end
