module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Address = Fortress_net.Address
module Prng = Fortress_util.Prng
module Event = Fortress_obs.Event

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable delayed : int;
  mutable timeline_fired : int;
}

let fresh_stats () =
  { dropped = 0; duplicated = 0; reordered = 0; corrupted = 0; delayed = 0; timeline_fired = 0 }

let stats_total s = s.dropped + s.duplicated + s.reordered + s.corrupted + s.delayed

(* The injector draws from its own PRNG, salted away from the engine's, so
   installing a plan never perturbs the simulation's organic randomness:
   the baseline run and the faulted run sample identical latencies and
   keys, and two faulted runs with equal (plan, seed) are bit-identical. *)
let derive_prng ~seed = Prng.create ~seed:(seed lxor 0x6661756c74)

let link_label ~src ~dst = Printf.sprintf "link %d->%d" (Address.id src) (Address.id dst)

(* Compile the per-message fault rates into a network interceptor. Draw
   order is fixed (drop, corrupt, duplicate, reorder, jitter) so the PRNG
   stream — and hence the trace — is a pure function of the message
   sequence. *)
let link_interceptor ~engine ~prng ~stats (lf : Plan.link) =
  let emit ~src ~dst action =
    Engine.emit engine
      (Event.Fault { action; target = link_label ~src ~dst; detail = "" })
  in
  fun ~src ~dst _msg ->
    if lf.Plan.drop > 0.0 && Prng.bernoulli prng ~p:lf.Plan.drop then begin
      stats.dropped <- stats.dropped + 1;
      emit ~src ~dst "drop";
      Network.Drop "fault:drop"
    end
    else begin
      let corrupt = lf.Plan.corrupt > 0.0 && Prng.bernoulli prng ~p:lf.Plan.corrupt in
      let duplicate = lf.Plan.duplicate > 0.0 && Prng.bernoulli prng ~p:lf.Plan.duplicate in
      let reorder = lf.Plan.reorder > 0.0 && Prng.bernoulli prng ~p:lf.Plan.reorder in
      let jitter = if lf.Plan.jitter > 0.0 then Prng.float prng *. lf.Plan.jitter else 0.0 in
      let extra = lf.Plan.extra_latency +. jitter in
      if (not corrupt) && (not duplicate) && (not reorder) && extra = 0.0 then Network.Pass
      else begin
        if corrupt then begin
          stats.corrupted <- stats.corrupted + 1;
          emit ~src ~dst "corrupt"
        end;
        if duplicate then begin
          stats.duplicated <- stats.duplicated + 1;
          emit ~src ~dst "duplicate"
        end;
        if reorder then begin
          stats.reordered <- stats.reordered + 1;
          emit ~src ~dst "reorder"
        end;
        if (not corrupt) && (not duplicate) && not reorder then begin
          stats.delayed <- stats.delayed + 1;
          emit ~src ~dst "delay"
        end;
        let held = extra +. if reorder then lf.Plan.reorder_delay else 0.0 in
        let first = { Network.extra_delay = held; corrupt } in
        let deliveries =
          (* the duplicate travels clean and un-reordered: two distinct
             copies arriving at different times *)
          if duplicate then [ first; { Network.extra_delay = extra; corrupt = false } ]
          else [ first ]
        in
        Network.Deliver deliveries
      end
    end

let install_link ~engine ~net ~prng ~stats (lf : Plan.link) =
  if not (Plan.link_is_calm lf) then
    Network.set_interceptor net (Some (link_interceptor ~engine ~prng ~stats lf))
