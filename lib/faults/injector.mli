(** Compile a plan's link layer into a network interceptor.

    Generic over the network's message type: corruption is flagged on the
    verdict and resolved by the network's corrupter (see
    {!Fortress_net.Network.set_corrupter}), so this module needs no
    knowledge of the payload. {!Wiring} installs the FORTRESS-specific
    corrupter and the timeline on top. *)

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable delayed : int;  (** messages that only picked up extra latency *)
  mutable timeline_fired : int;  (** timeline actions applied (via Wiring) *)
}

val fresh_stats : unit -> stats
val stats_total : stats -> int
(** Injected link faults (excludes timeline actions). *)

val derive_prng : seed:int -> Fortress_util.Prng.t
(** The injector's own PRNG, salted so it never perturbs the engine's
    stream: baseline and faulted runs sample identical organic latencies
    and keys. *)

val link_interceptor :
  engine:Fortress_sim.Engine.t ->
  prng:Fortress_util.Prng.t ->
  stats:stats ->
  Plan.link ->
  'msg Fortress_net.Network.interceptor
(** Fixed draw order (drop, corrupt, duplicate, reorder, jitter) per
    message; every injected fault emits a [Fault] event. *)

val install_link :
  engine:Fortress_sim.Engine.t ->
  net:'msg Fortress_net.Network.t ->
  prng:Fortress_util.Prng.t ->
  stats:stats ->
  Plan.link ->
  unit
(** No-op when the link spec {!Plan.link_is_calm} — the hot path then keeps
    its zero-allocation interceptor-free behaviour. *)
