(** Declarative, seeded, virtual-time fault plans.

    A plan has two parts. The {b link layer} is a set of per-message fault
    rates sampled independently for every [Network.send] — drop, duplicate,
    reorder (an extra copy-free delay), corrupt, plus deterministic extra
    latency and uniform jitter. The {b timeline} is a list of entries fired
    at absolute virtual times (optionally repeating): process crash /
    restart, pairwise partitions with scheduled heal, rekey-daemon stalls
    and a global scheduling slowdown.

    Plans are pure data; {!Wiring.install} compiles one onto a live
    FORTRESS deployment. Identical (plan, seed) pairs reproduce bit-equal
    traces — nothing in a plan consults wall-clock time or global state. *)

type link = {
  drop : float;  (** per-message loss probability added by the fault layer *)
  duplicate : float;  (** probability a message is delivered twice *)
  reorder : float;
      (** probability a message is held back [reorder_delay] longer, letting
          later sends overtake it *)
  reorder_delay : float;
  corrupt : float;  (** probability the payload is mangled in flight *)
  extra_latency : float;  (** deterministic latency added to every message *)
  jitter : float;  (** extra uniform latency in [0, jitter) per message *)
}

val calm : link
(** All rates and delays zero. *)

val link_is_calm : link -> bool

type target = Fortress_model.Node_id.t =
  | Server of int
  | Proxy of int
  | Replica of int
  | Nameserver
(** Re-export of {!Fortress_model.Node_id.t}: plans, attacker observations
    and trace events share one node-naming scheme. [Server]/[Proxy] name
    FORTRESS nodes, [Replica] names an SMR node; each wiring rejects
    targets its deployment flavour does not have. *)

val target_to_string : target -> string
(** Alias of {!Fortress_model.Node_id.to_string} — the exact strings trace
    events always carried, so digests are unchanged. *)

val target_of_string : string -> target option

type action =
  | Crash of target
  | Restart of target
  | Partition of target * target  (** nameserver targets are rejected *)
  | Heal_all
  | Stall_obfuscation  (** boundaries elapse without rekey / recovery *)
  | Resume_obfuscation
  | Slowdown of float
      (** multiply every relative scheduling delay by this factor
          (1.0 restores normal speed) *)

val action_to_string : action -> string

type entry = { at : float; every : float option; action : action }

val once : at:float -> action -> entry
val repeat : at:float -> every:float -> action -> entry
(** First firing at [at], then every [every] time units forever (until the
    plan is uninstalled). *)

type t = { name : string; link : link; timeline : entry list }

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range rates, negative delays or
    times, non-positive repeat periods or slowdown factors, and partitions
    naming the nameserver. *)

(** {2 Built-in plans}

    An escalation ladder — each plan is its predecessor plus strictly more
    hostility, phrased against the default operating point (obfuscation
    period 100.0): [lossy] is link noise only; [partition] raises the loss
    rate and adds mid-step partition windows; [crashy] adds server crashes
    timed to miss rekey boundaries (stale keys survive) and proxy crashes
    that forget blocklists; [chaos] turns everything up and wedges the
    rekey daemon one boundary in four. *)

val none : t
val lossy : t
val partition : t
val crashy : t
val chaos : t

val builtins : t list
(** [none; lossy; partition; crashy; chaos] in escalation order. *)

val find : string -> t option
(** Look a built-in up by name. *)
