module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Smr_deployment = Fortress_core.Smr_deployment
module Smr = Fortress_replication.Smr
module Event = Fortress_obs.Event

type handle = {
  stats : Injector.stats;
  mutable active : bool;
  deployment : Smr_deployment.t;
  schedule : Smr_deployment.schedule option;
}

(* Corrupting a client request mangles the command in flight; the replica
   still parses the frame and executes garbage. Every protocol-internal
   message is signed or checksummed, so corruption there fails the
   integrity check — the network models that as a drop. *)
let corrupter = function
  | Smr.Request { id; cmd; reply_to } ->
      Some (Smr.Request { id; cmd = "corrupt:" ^ cmd; reply_to })
  | _ -> None

(* S0 has one tier of n replicas, so every plan target folds onto it:
   servers map index-for-index, proxies (the plan's front tier) fold onto
   the tail end — [Proxy i -> Replica (n-1-i)] — so a partition plan that
   separates the front from the back on S2 isolates a minority on S0.
   The nameserver has no S0 counterpart; actions on it are skipped with a
   visible event rather than rejected, so one plan drives both stacks. *)
let resolve_replica deployment = function
  | Plan.Server i | Plan.Replica i -> i
  | Plan.Proxy i -> Array.length (Smr_deployment.instances deployment) - 1 - i
  | Plan.Nameserver -> -1

let resolve_address deployment target =
  let i = resolve_replica deployment target in
  let a = Smr_deployment.addresses deployment in
  if i < 0 || i >= Array.length a then
    invalid_arg
      (Printf.sprintf "Smr_wiring: %s does not fold onto an S0 replica"
         (Plan.target_to_string target));
  a.(i)

let check_target deployment = function
  | Plan.Nameserver -> ()
  | t -> ignore (resolve_address deployment t)

let skip_nameserver h ~what =
  Engine.emit
    (Smr_deployment.engine h.deployment)
    (Event.Fault
       {
         action = "skip";
         target = "nameserver";
         detail = Printf.sprintf "S0 has no nameserver; %s skipped" what;
       })

let apply_action h action =
  let deployment = h.deployment in
  let engine = Smr_deployment.engine deployment in
  let net = Smr_deployment.network deployment in
  h.stats.Injector.timeline_fired <- h.stats.Injector.timeline_fired + 1;
  match action with
  | Plan.Crash Plan.Nameserver -> skip_nameserver h ~what:"crash"
  | Plan.Restart Plan.Nameserver -> skip_nameserver h ~what:"restart"
  | Plan.Crash t -> Smr_deployment.crash_replica deployment (resolve_replica deployment t)
  | Plan.Restart t -> Smr_deployment.restart_replica deployment (resolve_replica deployment t)
  | Plan.Partition (Plan.Nameserver, _) | Plan.Partition (_, Plan.Nameserver) ->
      skip_nameserver h ~what:"partition"
  | Plan.Partition (a, b) ->
      Network.partition net (resolve_address deployment a) (resolve_address deployment b);
      Engine.emit engine
        (Event.Fault
           {
             action = "partition";
             target =
               Printf.sprintf "%s|%s" (Plan.target_to_string a) (Plan.target_to_string b);
             detail = "";
           })
  | Plan.Heal_all ->
      Network.heal_all net;
      Engine.emit engine (Event.Fault { action = "heal"; target = "network"; detail = "all" })
  | Plan.Stall_obfuscation ->
      Option.iter (fun s -> Smr_deployment.set_stalled s true) h.schedule;
      Engine.emit engine
        (Event.Fault { action = "stall"; target = "obfuscation"; detail = "daemon wedged" })
  | Plan.Resume_obfuscation ->
      Option.iter (fun s -> Smr_deployment.set_stalled s false) h.schedule;
      Engine.emit engine
        (Event.Fault { action = "resume"; target = "obfuscation"; detail = "" })
  | Plan.Slowdown f ->
      Engine.set_delay_interceptor engine
        (if f = 1.0 then None else Some (fun d -> d *. f));
      Engine.emit engine
        (Event.Fault
           { action = "slowdown"; target = "engine"; detail = Printf.sprintf "x%g" f })

let schedule_entry h (e : Plan.entry) =
  let engine = Smr_deployment.engine h.deployment in
  let rec arm time =
    ignore
      (Engine.schedule_at engine ~time (fun () ->
           if h.active then begin
             apply_action h e.Plan.action;
             match e.Plan.every with
             | Some period -> arm (Engine.now engine +. period)
             | None -> ()
           end))
  in
  if e.Plan.at >= Engine.now engine then arm e.Plan.at
  else invalid_arg "Smr_wiring: timeline entry scheduled in the past"

let install plan ~deployment ?schedule ~seed () =
  Plan.validate plan;
  (* fail before touching anything if the plan names targets that do not
     fold onto a replica (the nameserver is skipped, not rejected) *)
  List.iter
    (fun (e : Plan.entry) ->
      match e.Plan.action with
      | Plan.Crash t | Plan.Restart t -> check_target deployment t
      | Plan.Partition (a, b) ->
          check_target deployment a;
          check_target deployment b
      | Plan.Heal_all | Plan.Stall_obfuscation | Plan.Resume_obfuscation | Plan.Slowdown _ -> ())
    plan.Plan.timeline;
  let engine = Smr_deployment.engine deployment in
  let net = Smr_deployment.network deployment in
  let stats = Injector.fresh_stats () in
  let h = { stats; active = true; deployment; schedule } in
  let prng = Injector.derive_prng ~seed in
  Injector.install_link ~engine ~net ~prng ~stats plan.Plan.link;
  if plan.Plan.link.Plan.corrupt > 0.0 then Network.set_corrupter net (Some corrupter);
  List.iter (schedule_entry h) plan.Plan.timeline;
  Engine.emit engine
    (Event.Fault
       {
         action = "plan_installed";
         target = plan.Plan.name;
         detail = Printf.sprintf "%d timeline entries" (List.length plan.Plan.timeline);
       });
  h

let stats h = h.stats

let uninstall h =
  if h.active then begin
    h.active <- false;
    let net = Smr_deployment.network h.deployment in
    let engine = Smr_deployment.engine h.deployment in
    Network.set_interceptor net None;
    Network.set_corrupter net None;
    Engine.set_delay_interceptor engine None;
    Option.iter (fun s -> Smr_deployment.set_stalled s false) h.schedule;
    Engine.emit engine
      (Event.Fault { action = "plan_uninstalled"; target = "deployment"; detail = "" })
  end
