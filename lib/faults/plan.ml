type link = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_delay : float;
  corrupt : float;
  extra_latency : float;
  jitter : float;
}

let calm =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_delay = 0.0;
    corrupt = 0.0;
    extra_latency = 0.0;
    jitter = 0.0;
  }

let link_is_calm l = l = calm

type target = Fortress_model.Node_id.t =
  | Server of int
  | Proxy of int
  | Replica of int
  | Nameserver

let target_to_string = Fortress_model.Node_id.to_string
let target_of_string = Fortress_model.Node_id.of_string

type action =
  | Crash of target
  | Restart of target
  | Partition of target * target
  | Heal_all
  | Stall_obfuscation
  | Resume_obfuscation
  | Slowdown of float

let action_to_string = function
  | Crash t -> "crash " ^ target_to_string t
  | Restart t -> "restart " ^ target_to_string t
  | Partition (a, b) ->
      Printf.sprintf "partition %s | %s" (target_to_string a) (target_to_string b)
  | Heal_all -> "heal all"
  | Stall_obfuscation -> "stall obfuscation"
  | Resume_obfuscation -> "resume obfuscation"
  | Slowdown f -> Printf.sprintf "slowdown x%g" f

type entry = { at : float; every : float option; action : action }

let once ~at action = { at; every = None; action }
let repeat ~at ~every action = { at; every = Some every; action }

type t = { name : string; link : link; timeline : entry list }

let validate t =
  if t.name = "" then invalid_arg "Plan: name must be non-empty";
  let rate what r =
    if r < 0.0 || r > 1.0 then invalid_arg (Printf.sprintf "Plan %s: %s in [0,1]" t.name what)
  in
  rate "drop" t.link.drop;
  rate "duplicate" t.link.duplicate;
  rate "reorder" t.link.reorder;
  rate "corrupt" t.link.corrupt;
  if t.link.reorder_delay < 0.0 || t.link.extra_latency < 0.0 || t.link.jitter < 0.0 then
    invalid_arg (Printf.sprintf "Plan %s: delays must be non-negative" t.name);
  List.iter
    (fun e ->
      if e.at < 0.0 then invalid_arg (Printf.sprintf "Plan %s: entry in the past" t.name);
      (match e.every with
      | Some p when p <= 0.0 ->
          invalid_arg (Printf.sprintf "Plan %s: repeat period must be positive" t.name)
      | _ -> ());
      match e.action with
      | Slowdown f when f <= 0.0 ->
          invalid_arg (Printf.sprintf "Plan %s: slowdown factor must be positive" t.name)
      | Partition (Nameserver, _) | Partition (_, Nameserver) ->
          invalid_arg (Printf.sprintf "Plan %s: the nameserver is not a network node" t.name)
      | _ -> ())
    t.timeline

(* ---- built-in plans ----

   The four built-ins form an escalation ladder: each is its predecessor
   plus strictly more hostility, which is what makes the EL ordering
   lossy >= partition >= crashy >= chaos meaningful at the default
   operating point (obfuscation period 100.0 time units — timeline entries
   below are phrased against that period). *)

let none = { name = "none"; link = calm; timeline = [] }

let lossy_link =
  {
    drop = 0.06;
    duplicate = 0.03;
    reorder = 0.06;
    reorder_delay = 1.5;
    corrupt = 0.02;
    extra_latency = 0.2;
    jitter = 0.4;
  }

let lossy = { name = "lossy"; link = lossy_link; timeline = [] }

(* Mid-step partition windows: proxy0 loses the whole server tier and the
   primary loses its backups for 30 time units out of every 100, plus a
   heavier loss rate on every link. *)
let partition_timeline =
  [
    repeat ~at:35.0 ~every:100.0 (Partition (Proxy 0, Server 0));
    repeat ~at:35.0 ~every:100.0 (Partition (Proxy 0, Server 1));
    repeat ~at:35.0 ~every:100.0 (Partition (Proxy 0, Server 2));
    repeat ~at:35.0 ~every:100.0 (Partition (Server 0, Server 1));
    repeat ~at:35.0 ~every:100.0 (Partition (Server 0, Server 2));
    repeat ~at:65.0 ~every:100.0 Heal_all;
  ]

let partition =
  {
    name = "partition";
    link = { lossy_link with drop = 0.10 };
    timeline = partition_timeline;
  }

(* Crashes on top: server0 goes down shortly before every obfuscation
   boundary and comes back after it, so it misses every rekey and keeps its
   stale key — the attacker's eliminations against the server tier survive
   each boundary, turning the hunt into straight key-space exhaustion.
   Proxy 1 crashes on a slower cycle, forgetting its blocklist. *)
let crashy_timeline =
  partition_timeline
  @ [
      repeat ~at:90.0 ~every:100.0 (Crash (Server 0));
      repeat ~at:125.0 ~every:100.0 (Restart (Server 0));
      repeat ~at:55.0 ~every:300.0 (Crash (Proxy 1));
      repeat ~at:80.0 ~every:300.0 (Restart (Proxy 1));
    ]

let crashy =
  { name = "crashy"; link = { lossy_link with drop = 0.10 }; timeline = crashy_timeline }

(* Everything above, heavier, plus a rekey daemon that wedges for good
   early in the run: from then on no boundary fires at all, so proxy keys,
   proxy compromise flags and the attacker's knowledge at every tier
   persist — launch pads accumulate instead of being evicted. A global
   1.5x slowdown and nameserver outages round it off. *)
let chaos =
  {
    name = "chaos";
    link = { lossy_link with drop = 0.12; corrupt = 0.05; jitter = 0.8 };
    timeline =
      crashy_timeline
      @ [
          once ~at:5.0 (Slowdown 1.5);
          once ~at:140.0 Stall_obfuscation;
          repeat ~at:150.0 ~every:500.0 (Crash Nameserver);
          repeat ~at:210.0 ~every:500.0 (Restart Nameserver);
        ];
  }

let builtins = [ none; lossy; partition; crashy; chaos ]
let find name = List.find_opt (fun p -> p.name = name) builtins
