(** Route a fault {!Plan} through the 1-tier SMR deployment (S0).

    The same plan drives both stacks: {!Wiring} interprets it on the
    FORTRESS deployment, this module folds it onto S0's single replica
    tier —

    - [Server i] and [Replica i] map to replica [i],
    - [Proxy i] (the plan's front tier) folds onto the tail end,
      [Replica (n - 1 - i)], so a partition plan that separates the front
      from the back on S2 isolates a minority on S0, and
    - [Nameserver] actions are {e skipped} with a visible [Fault] event
      (S0 has no directory), not rejected.

    [Stall_obfuscation] / [Resume_obfuscation] act on the
    {!Fortress_core.Smr_deployment.schedule} handle when one is passed;
    link-layer faults and slowdowns work exactly as on the FORTRESS
    stack. *)

type handle

val install :
  Plan.t ->
  deployment:Fortress_core.Smr_deployment.t ->
  ?schedule:Fortress_core.Smr_deployment.schedule ->
  seed:int ->
  unit ->
  handle
(** Validates the plan, rejects targets that do not fold onto a replica,
    installs the link interceptor and corrupter, and arms the timeline.
    The injector PRNG is derived from [seed] exactly as in {!Wiring}, so
    baseline and faulted runs stay paired. *)

val stats : handle -> Injector.stats

val uninstall : handle -> unit
(** Clears interceptors, corrupter, delay interceptor, and un-stalls the
    schedule; armed-but-unfired timeline entries become no-ops. *)
