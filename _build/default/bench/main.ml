(* Benchmark harness: one Bechamel test per reproduced artefact (figures,
   ordering, ablations, validation) plus substrate micro-benchmarks, then
   the regenerated tables themselves — the rows/series the paper reports.

   Run with: dune exec bench/main.exe *)

open Bechamel
module Systems = Fortress_model.Systems
module Step_level = Fortress_mc.Step_level
module Probe_level = Fortress_mc.Probe_level
module Figures = Fortress_exp.Figures
module Ablations = Fortress_exp.Ablations
module Validation = Fortress_exp.Validation
module Sha256 = Fortress_crypto.Sha256

(* ---- one Test.make per experiment artefact ---- *)

let test_figure1 =
  Test.make ~name:"figure1-analytic-rows"
    (Staged.stage (fun () -> ignore (Figures.figure1_rows ~points:7 ())))

let test_figure2 =
  Test.make ~name:"figure2-analytic-rows"
    (Staged.stage (fun () -> ignore (Figures.figure2_rows ~points:7 ())))

let test_ordering =
  Test.make ~name:"ordering-chain-check"
    (Staged.stage (fun () -> ignore (Figures.ordering ~points:5 ())))

let test_ablation_np =
  Test.make ~name:"ablation-np"
    (Staged.stage (fun () -> ignore (Ablations.proxy_count_table ~points:5 ())))

let test_ablation_chi =
  Test.make ~name:"ablation-chi"
    (Staged.stage (fun () ->
         ignore (Ablations.entropy_table ~chis:[ 256; 512 ] ~omega:8 ~trials:20 ())))

let test_ablation_launchpad =
  Test.make ~name:"ablation-launchpad"
    (Staged.stage (fun () -> ignore (Ablations.launchpad_table ())))

let test_ablation_kappa =
  Test.make ~name:"ablation-kappa-campaign"
    (Staged.stage (fun () -> ignore (Ablations.detection_table ~thresholds:[ 5 ] ~steps:5 ())))

let test_ablation_diversity =
  Test.make ~name:"ablation-diversity"
    (Staged.stage (fun () ->
         ignore
           (Ablations.limited_diversity_table ~candidate_counts:[ 1; 4 ] ~trials:100 ())))

let test_ablation_overhead =
  Test.make ~name:"ablation-overhead"
    (Staged.stage (fun () -> ignore (Ablations.overhead_table ~requests:20 ())))

let test_ablation_budget =
  Test.make ~name:"ablation-budget-split"
    (Staged.stage (fun () -> ignore (Ablations.budget_split_table ~kappas:[ 0.5 ] ())))

let test_degradation =
  Test.make ~name:"degradation-under-attack"
    (Staged.stage (fun () ->
         ignore (Fortress_exp.Degradation.run ~omegas:[ 0; 32 ] ~requests:30 ~horizon:10 ())))

let test_podc =
  Test.make ~name:"podc-claim-check"
    (Staged.stage (fun () -> ignore (Figures.podc_claim_holds ~points:5 ())))

let test_distributions =
  Test.make ~name:"distribution-shapes"
    (Staged.stage (fun () ->
         ignore
           (Fortress_exp.Distributions.profile ~trials:200 Systems.S1_PO ~alpha:0.01
              ~kappa:0.5)))

let test_validation =
  Test.make ~name:"validation-three-tier"
    (Staged.stage (fun () ->
         ignore
           (Validation.run ~chi:512 ~omega:8 ~trials:30
              ~systems:[ Systems.S1_PO; Systems.S2_PO ] ())))

let test_protocol_validation =
  Test.make ~name:"validation-packet-level-campaign"
    (Staged.stage (fun () -> ignore (Validation.protocol ~trials:10 ())))

(* ---- substrate micro-benchmarks ---- *)

let test_step_mc =
  Test.make ~name:"mc-step-s2po-1000-trials"
    (Staged.stage (fun () ->
         ignore
           (Step_level.estimate ~trials:1000 Systems.S2_PO
              { Step_level.default with alpha = 3e-3 })))

let test_probe_mc =
  Test.make ~name:"mc-probe-s2po-50-trials"
    (Staged.stage (fun () ->
         ignore
           (Probe_level.estimate ~trials:50 Systems.S2_PO
              { Probe_level.default with chi = 1024; omega = 8 })))

let test_markov =
  Test.make ~name:"model-s0so-inhomogeneous-chain"
    (Staged.stage (fun () -> ignore (Systems.s0_so ~alpha:1e-3)))

let test_sha256 =
  let payload = String.make 4096 'x' in
  Test.make ~name:"crypto-sha256-4KiB" (Staged.stage (fun () -> ignore (Sha256.digest payload)))

let test_pb_deployment =
  Test.make ~name:"protocol-fortress-request-roundtrip"
    (Staged.stage (fun () ->
         let module Deployment = Fortress_core.Deployment in
         let module Client = Fortress_core.Client in
         let module Engine = Fortress_sim.Engine in
         let deployment = Deployment.create Deployment.default_config in
         let client = Deployment.new_client deployment ~name:"bench-client" in
         let served = ref 0 in
         for i = 1 to 10 do
           ignore
             (Client.submit client
                ~cmd:(Printf.sprintf "put k%d v" i)
                ~on_response:(fun _ -> incr served))
         done;
         Engine.run ~until:100.0 (Deployment.engine deployment);
         assert (!served = 10)))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"fortress"
      [
        test_figure1;
        test_figure2;
        test_ordering;
        test_ablation_np;
        test_ablation_chi;
        test_ablation_launchpad;
        test_ablation_kappa;
        test_ablation_diversity;
        test_ablation_overhead;
        test_ablation_budget;
        test_degradation;
        test_podc;
        test_distributions;
        test_validation;
        test_protocol_validation;
        test_step_mc;
        test_probe_mc;
        test_markov;
        test_sha256;
        test_pb_deployment;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some (e :: _) -> Printf.sprintf "%13.1f ns/run" e
           | Some [] | None -> "            n/a"
         in
         Printf.printf "  %-45s %s\n" name ns)

let () =
  print_endline "== micro-benchmarks (bechamel, monotonic clock) ==";
  benchmark ();
  print_endline "";
  print_endline "== Figure 1: expected lifetime comparison (analytic, kappa = 0.5) ==";
  print_string (Fortress_util.Table.render (Figures.figure1_table ~points:13 ()));
  print_endline "";
  print_endline "== Figure 2: S2PO expected lifetime as kappa varies ==";
  print_string (Fortress_util.Table.render (Figures.figure2_table ~points:13 ()));
  print_endline "";
  print_endline "== Ordering check (paper section 6 summary chain) ==";
  print_string (Fortress_util.Table.render (Figures.ordering_table ~points:7 ()));
  print_endline "";
  print_endline "== Ablation A1: proxy count ==";
  print_string (Fortress_util.Table.render (Ablations.proxy_count_table ~points:5 ()));
  print_endline "";
  print_endline "== Ablation A2: key entropy under SO (probe-level) ==";
  print_string (Fortress_util.Table.render (Ablations.entropy_table ~trials:100 ()));
  print_endline "";
  print_endline "== Ablation A3: launch-pad discipline (alpha = 0.005) ==";
  print_string (Fortress_util.Table.render (Ablations.launchpad_table ()));
  print_endline "";
  print_endline "== Ablation A4: proxy detection threshold -> effective kappa ==";
  print_string (Fortress_util.Table.render (Ablations.detection_table ()));
  print_endline "";
  print_endline "== Ablation A5: limited diversity (candidate-set size) ==";
  print_string
    (Fortress_util.Table.render (Ablations.limited_diversity_table ~trials:1000 ()));
  print_endline "";
  print_endline "== Ablation A6: proxy overhead on the request path ==";
  print_string (Fortress_util.Table.render (Ablations.overhead_table ()));
  print_endline "";
  print_endline "== Ablation A7: optimizing attacker budget split ==";
  print_string (Fortress_util.Table.render (Ablations.budget_split_table ()));
  print_endline "";
  print_endline "== Service quality under attack (degradation) ==";
  print_string (Fortress_util.Table.render (Fortress_exp.Degradation.table (Fortress_exp.Degradation.run ())));
  print_endline "";
  print_endline "== PODC 2009 claim: fortified PB vs SMR with proactive recovery ==";
  print_string (Fortress_util.Table.render (Figures.podc_claim_table ~points:7 ()));
  print_endline "";
  print_endline "== Lifetime distribution shapes (alpha = 0.002, kappa = 0.5) ==";
  let shape_profiles =
    List.map
      (fun s -> Fortress_exp.Distributions.profile ~trials:2000 s ~alpha:0.002 ~kappa:0.5)
      [ Systems.S1_PO; Systems.S2_PO; Systems.S1_SO; Systems.S0_SO ]
  in
  print_string (Fortress_util.Table.render (Fortress_exp.Distributions.table shape_profiles));
  print_endline "";
  print_endline "== Threat matrix (paper section 2.1) ==";
  (let module Threat = Fortress_defense.Threat in
   let module Keyspace = Fortress_defense.Keyspace in
   let ks = Keyspace.pax_aslr_32bit in
   print_string
     (Fortress_util.Table.render
        (Threat.matrix_table
           [ []; [ Threat.W_xor_x ]; [ Threat.W_xor_x; Threat.Isr ks ];
             [ Threat.Aslr ks ]; [ Threat.W_xor_x; Threat.Aslr ks ];
             [ Threat.W_xor_x; Threat.Aslr ks; Threat.Got_randomization ks ] ])));
  print_endline "";
  print_endline "== Sensitivity: elasticities at alpha = 1e-3, kappa = 0.5 ==";
  print_string (Fortress_util.Table.render (Fortress_exp.Sensitivity.table ()));
  print_endline "";
  print_endline "== Validation V1: analytic vs step-level vs probe-level ==";
  let lines = Validation.run ~trials:200 () in
  print_string (Fortress_util.Table.render (Validation.table lines));
  Printf.printf "max |step-MC - analytic| / analytic = %.3f\n"
    (Validation.max_relative_error lines);
  print_endline "";
  print_endline "== Validation V2: full packet-level stack vs the models ==";
  let line = Validation.protocol ~trials:60 () in
  print_string (Fortress_util.Table.render (Validation.protocol_table line));
  Printf.printf "stack agreement: %s\n"
    (if Validation.protocol_agrees line then "holds" else "FAILS")
