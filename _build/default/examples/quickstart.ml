(* Quickstart: stand up a FORTRESS deployment (3 proxies over a 3-replica
   primary-backup KV service), run a few client commands through the proxy
   tier, and show the double-signature guarantee in action.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Fortress_sim.Engine
module Deployment = Fortress_core.Deployment
module Nameserver = Fortress_core.Nameserver
module Client = Fortress_core.Client
module Proxy = Fortress_core.Proxy
module Pb = Fortress_replication.Pb

let () =
  let deployment = Deployment.create Deployment.default_config in
  let engine = Deployment.engine deployment in

  (* what a client is allowed to learn from the trusted nameserver: proxy
     addresses and keys, server indices and keys — never server addresses *)
  print_endline "nameserver record (client view):";
  Printf.printf "  %s\n\n" (Nameserver.client_view (Deployment.record deployment));

  let client = Deployment.new_client deployment ~name:"alice" in
  let commands = [ "put city newcastle"; "put year 2010"; "get city"; "get year"; "size" ] in
  List.iter
    (fun cmd ->
      ignore
        (Client.submit client ~cmd ~on_response:(fun response ->
             Printf.printf "[t=%6.1f] %-18s -> %s\n" (Engine.now engine) cmd response)))
    commands;
  Engine.run ~until:100.0 engine;

  Printf.printf "\nclient accepted %d doubly-signed responses, rejected %d\n"
    (Client.accepted client) (Client.rejected client);
  Array.iter
    (fun proxy ->
      Printf.printf "proxy %d forwarded %d requests, relayed %d replies\n" (Proxy.index proxy)
        (Proxy.forwarded proxy) (Proxy.relayed proxy))
    (Deployment.proxies deployment);
  Array.iter
    (fun server ->
      Printf.printf "server %d: %s, applied %d updates\n" (Pb.index server)
        (if Pb.is_primary server then "primary" else "backup ")
        (Pb.applied_seq server))
    (Deployment.servers deployment);

  (* the primary crashes; the backup takes over and the service continues *)
  print_endline "\ncrashing the primary...";
  let servers = Deployment.servers deployment in
  Pb.stop servers.(0);
  Fortress_net.Network.set_down (Deployment.network deployment)
    (Deployment.server_addresses deployment).(0);
  ignore
    (Client.submit client ~cmd:"put resilient yes" ~on_response:(fun response ->
         Printf.printf "[t=%6.1f] %-18s -> %s (served after failover)\n" (Engine.now engine)
           "put resilient yes" response));
  Engine.run ~until:400.0 engine;
  Array.iter
    (fun server ->
      if Pb.alive server then
        Printf.printf "server %d is now %s (view %d)\n" (Pb.index server)
          (if Pb.is_primary server then "primary" else "backup")
          (Pb.view server))
    servers
