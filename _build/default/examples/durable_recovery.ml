(* Proactive recovery the Castro-Liskov way: reboot from stable storage.

   A primary-backup replica persists a snapshot every few commands plus a
   write-ahead log for the gap. When proactive recovery wipes its volatile
   state, the replica reloads locally and only reconciles the delta over
   the network — and a corrupted snapshot is detected by checksum and falls
   back to full peer synchronisation instead of silently loading garbage.

   Run with: dune exec examples/durable_recovery.exe *)

module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Latency = Fortress_net.Latency
module Sign = Fortress_crypto.Sign
module Prng = Fortress_util.Prng
open Fortress_replication

let () =
  let engine = Engine.create ~prng:(Prng.create ~seed:42) () in
  let net = Network.create ~latency:(Latency.constant 0.5) engine in
  let config = Pb.default_config in
  let client = Network.register net ~name:"client" ~handler:(fun ~src:_ _ -> ()) in
  let addresses =
    Array.init config.Pb.ns (fun i ->
        Network.register net ~name:(Printf.sprintf "s%d" i) ~handler:(fun ~src:_ _ -> ()))
  in
  let stores = Array.init config.Pb.ns (fun _ -> Storage.create ()) in
  let prng = Engine.prng engine in
  let replicas =
    Array.init config.Pb.ns (fun i ->
        let secret, _ = Sign.generate prng in
        Pb.create ~storage:stores.(i) ~engine ~config ~index:i ~service:Services.bank ~secret
          ~self:addresses.(i) ~addresses
          (fun ~dst msg -> Network.send net ~src:addresses.(i) ~dst msg))
  in
  Array.iteri
    (fun i addr ->
      Network.set_handler net addr (fun ~src msg -> Pb.handle replicas.(i) ~src msg))
    addresses;
  Array.iter Pb.start replicas;

  let submit id cmd =
    Array.iter
      (fun dst -> Network.send net ~src:client ~dst (Pb.Request { id; cmd; reply_to = client }))
      addresses
  in
  submit "t1" "open alice";
  submit "t2" "deposit alice 500";
  submit "t3" "open bob";
  Engine.run ~until:30.0 engine;
  for i = 0 to 9 do
    submit (Printf.sprintf "x%d" i) "transfer alice bob 25"
  done;
  Engine.run ~until:80.0 engine;
  Printf.printf "after 13 commands: replica 2 persisted seq %d locally\n"
    (Pb.persisted_seq replicas.(2));

  (* reboot replica 2 with volatile loss *)
  Pb.stop replicas.(2);
  Network.set_down net addresses.(2);
  Engine.run ~until:90.0 engine;
  Network.set_up net addresses.(2);
  let reloaded = Pb.restart_from_storage replicas.(2) in
  Printf.printf "reboot: reload from stable storage -> %b (seq %d recovered locally)\n" reloaded
    (Pb.applied_seq replicas.(2));
  Engine.run ~until:200.0 engine;
  Printf.printf "states agree after rejoin: %b\n"
    (Pb.service_digest replicas.(2) = Pb.service_digest replicas.(0));

  (* now the disk is damaged: the checksum catches it *)
  Storage.corrupt stores.(2) ~key:"pb-snapshot";
  Pb.stop replicas.(2);
  Engine.run ~until:210.0 engine;
  let reloaded = Pb.restart_from_storage replicas.(2) in
  Printf.printf "\ncorrupted snapshot: reload refused -> %b\n" reloaded;
  Pb.restart replicas.(2);
  Engine.run ~until:400.0 engine;
  Printf.printf "network sync recovered it instead: states agree = %b\n"
    (Pb.service_digest replicas.(2) = Pb.service_digest replicas.(0));
  Printf.printf "(replica 2 wrote %d storage records along the way)\n" (Storage.writes stores.(2))
