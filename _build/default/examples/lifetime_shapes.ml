(* Beyond expectations: the *shape* of the lifetime distribution.

   PO systems die on a memoryless (geometric) clock: surviving a thousand
   steps says nothing about the next one, and the tail is long. SO systems
   die on an exhaustion clock: the attacker's eliminations accumulate, the
   hazard climbs, and the lifetime distribution has a hard cutoff near
   chi/omega steps. Two systems with similar *expected* lifetimes can
   therefore carry very different operational risk.

   Run with: dune exec examples/lifetime_shapes.exe *)

module Systems = Fortress_model.Systems
module Distributions = Fortress_exp.Distributions

let () =
  let alpha = 0.002 and kappa = 0.5 in
  let profiles =
    List.map
      (fun system -> Distributions.profile ~trials:6000 system ~alpha ~kappa)
      [ Systems.S1_PO; Systems.S2_PO; Systems.S1_SO; Systems.S0_SO ]
  in
  print_string (Fortress_util.Table.render (Distributions.table profiles));
  print_endline "";
  List.iter
    (fun p ->
      Printf.printf "%s lifetime histogram (alpha = %g):\n"
        (Systems.system_to_string p.Distributions.system)
        alpha;
      print_string (Distributions.render_histogram p);
      print_endline "")
    [ List.nth profiles 0; List.nth profiles 2 ];
  print_endline "note the exponential tail of s1po against the near-uniform block of";
  print_endline "s1so: proactive obfuscation buys a longer mean at the price of a";
  print_endline "heavier tail, while start-up-only randomization guarantees the system";
  print_endline "is dead by the exhaustion horizon."
