examples/derandomize_attack.mli:
