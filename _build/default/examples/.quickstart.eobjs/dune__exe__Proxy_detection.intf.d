examples/proxy_detection.mli:
