examples/resilience_comparison.ml: Fortress_mc Fortress_model Fortress_util List Printf
