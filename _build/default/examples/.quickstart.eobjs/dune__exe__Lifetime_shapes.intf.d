examples/lifetime_shapes.mli:
