examples/fortress_over_smr.mli:
