examples/lifetime_shapes.ml: Fortress_exp Fortress_model Fortress_util List Printf
