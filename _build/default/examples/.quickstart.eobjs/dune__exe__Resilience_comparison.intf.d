examples/resilience_comparison.mli:
