examples/durable_recovery.mli:
