examples/fortified_kv_service.mli:
