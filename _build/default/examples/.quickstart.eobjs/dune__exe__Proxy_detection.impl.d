examples/proxy_detection.ml: Array Fortress_core Fortress_defense Fortress_net Fortress_sim List Printf
