examples/quickstart.mli:
