examples/quickstart.ml: Array Fortress_core Fortress_net Fortress_replication Fortress_sim List Printf
