(* FORTRESS with an SMR server tier — and why you would want one.

   The paper separates surviving attacks (proxies + obfuscation) from
   replication (PB or SMR). The PB tier is simpler and replicates any
   service, but a single intruded server poisons every reply, because
   backups attest to the primary's response. An SMR tier costs determinism
   and agreement traffic, but the proxies vote over f+1 signed replies, so
   one intruded replica is *masked*. This example runs the same intrusion
   against both tiers.

   Run with: dune exec examples/fortress_over_smr.exe *)

module Engine = Fortress_sim.Engine
module Deployment = Fortress_core.Deployment
module Client = Fortress_core.Client
module Smr_fortress = Fortress_core.Smr_fortress

let () =
  (* --- PB tier with an intruded primary --- *)
  let pb = Deployment.create Deployment.default_config in
  Deployment.compromise_server pb 0;
  let pb_client = Deployment.new_client pb ~name:"pb-client" in
  let pb_response = ref "(no answer)" in
  ignore (Client.submit pb_client ~cmd:"put k v" ~on_response:(fun r -> pb_response := r));
  Engine.run ~until:100.0 (Deployment.engine pb);
  Printf.printf "PB tier, primary intruded      -> client accepted: %s\n" !pb_response;

  (* --- SMR tier with one intruded replica --- *)
  let smr = Smr_fortress.create Smr_fortress.default_config in
  Smr_fortress.compromise_server smr 0;
  let smr_client = Smr_fortress.new_client smr ~name:"smr-client" in
  let smr_response = ref "(no answer)" in
  ignore
    (Smr_fortress.submit smr_client ~cmd:"put k v" ~on_response:(fun r -> smr_response := r));
  Engine.run ~until:200.0 (Smr_fortress.engine smr);
  Printf.printf "SMR tier, one replica intruded -> client accepted: %s\n" !smr_response;
  Printf.printf "SMR tier system compromised?      %b (tolerates f = 1)\n"
    (Smr_fortress.system_compromised smr);

  (* --- but SMR needs determinism: the lottery service diverges --- *)
  let lottery =
    Smr_fortress.create
      { Smr_fortress.default_config with service = Fortress_replication.Services.lottery }
  in
  let l_client = Smr_fortress.new_client lottery ~name:"l-client" in
  let l_response = ref "(no agreement)" in
  ignore
    (Smr_fortress.submit l_client ~cmd:"draw 1000000000"
       ~on_response:(fun r -> l_response := r));
  Engine.run ~until:200.0 (Smr_fortress.engine lottery);
  Printf.printf "\nSMR tier, nondeterministic service -> %s\n" !l_response;
  print_endline "(no f+1 replicas agree on a random draw, so no proxy can vote it";
  print_endline " through: this is the DSM requirement that motivates FORTRESS-over-PB)"
