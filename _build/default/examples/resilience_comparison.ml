(* A Figure-1-in-miniature: Monte-Carlo expected lifetimes with confidence
   intervals for all five systems at a few operating points, next to the
   analytic curves — the comparison the paper's evaluation is built on.

   Run with: dune exec examples/resilience_comparison.exe *)

module Systems = Fortress_model.Systems
module Step_level = Fortress_mc.Step_level
module Trial = Fortress_mc.Trial
module Table = Fortress_util.Table

let () =
  let kappa = 0.5 in
  let trials = 3000 in
  let table =
    Table.create ~headers:[ "alpha"; "system"; "analytic EL"; "monte-carlo EL"; "95% CI" ]
  in
  List.iter
    (fun alpha ->
      List.iter
        (fun system ->
          let analytic = Systems.expected_lifetime system ~alpha ~kappa in
          let cfg = { Step_level.default with alpha; kappa } in
          let r = Step_level.estimate ~trials system cfg in
          let lo, hi = r.Trial.ci95 in
          Table.add_row table
            [
              Printf.sprintf "%g" alpha;
              Systems.system_to_string system;
              Printf.sprintf "%.1f" analytic;
              Printf.sprintf "%.1f" r.Trial.mean;
              Printf.sprintf "[%.1f, %.1f]" lo hi;
            ])
        [ Systems.S0_SO; Systems.S1_SO; Systems.S1_PO; Systems.S2_PO ])
    [ 0.01; 0.003; 0.001 ];
  print_string (Table.render table);
  print_endline "";
  print_endline "reading the table:";
  print_endline "  - S1SO outlives S0SO: identical randomization beats diverse keys under";
  print_endline "    start-up-only obfuscation (one key to find vs any two of four)";
  print_endline "  - S1PO and S2PO outlive both SO systems: re-randomization resets the";
  print_endline "    attacker's key eliminations every step";
  print_endline "  - S2PO outlives S1PO at kappa = 0.5: proxies halve the effective";
  print_endline "    attack rate on the servers"
