(* The phase-1 de-randomization attack of Shacham et al. (CCS 2004),
   end-to-end against an unprotected forking server: the attacker probes
   key guesses over direct connections, observes child crashes as closed
   connections, and walks the key space until the layout key falls.

   The expected number of probes is (chi + 1) / 2 — randomization without
   proxies or re-randomization only buys linear work.

   Run with: dune exec examples/derandomize_attack.exe *)

module Engine = Fortress_sim.Engine
module Keyspace = Fortress_defense.Keyspace
module Instance = Fortress_defense.Instance
module Daemon = Fortress_defense.Daemon
module Derandomizer = Fortress_attack.Derandomizer
module Prng = Fortress_util.Prng
module Stats = Fortress_util.Stats

let attack_once ~bits ~seed =
  let engine = Engine.create ~prng:(Prng.create ~seed) () in
  let keyspace = Keyspace.of_entropy_bits bits in
  let instance = Instance.create keyspace (Engine.prng engine) in
  let daemon = Daemon.create engine ~instance in
  let result = ref None in
  Derandomizer.run ~engine ~daemon
    ~prng:(Prng.create ~seed:(seed + 1))
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run engine;
  match !result with
  | Some r -> r
  | None -> failwith "attack did not finish"

let () =
  print_endline "de-randomization attack vs key entropy (10 runs per point):";
  print_endline "bits      chi   mean probes  expected (chi+1)/2   mean sim time";
  List.iter
    (fun bits ->
      let probes = Stats.create () in
      let times = Stats.create () in
      for seed = 1 to 10 do
        let r = attack_once ~bits ~seed in
        (match r.Derandomizer.found_key with
        | Some _ -> ()
        | None -> failwith "key not found despite full budget");
        Stats.add probes (float_of_int r.Derandomizer.probes);
        Stats.add times r.Derandomizer.finished_at
      done;
      let chi = 1 lsl bits in
      Printf.printf "%4d  %7d  %11.0f  %18.0f  %14.0f\n" bits chi (Stats.mean probes)
        (float_of_int (chi + 1) /. 2.0)
        (Stats.mean times))
    [ 6; 8; 10; 12 ];
  print_endline "\neach wrong probe crashed a child; the forking daemon restarted it,";
  print_endline "and the attacker's closed TCP connection was the only signal needed."
