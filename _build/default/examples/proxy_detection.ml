(* Why kappa < 1: the proxy suspicion pipeline.

   Proxies cannot execute requests, but they can log what they see. A
   de-randomization probe arriving through a proxy is an invalid request;
   counted per source over a sliding window, enough of them get the source
   blocked. This example sends probe streams at several pacing rates
   through a single proxy and reports how many probes actually reached the
   server tier — the attacker's delivered fraction is exactly the kappa
   the paper's S2 model multiplies alpha by.

   Run with: dune exec examples/proxy_detection.exe *)

module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Deployment = Fortress_core.Deployment
module Proxy = Fortress_core.Proxy
module Message = Fortress_core.Message
module Keyspace = Fortress_defense.Keyspace

let run_pace ~probes_per_window =
  let window = 100.0 in
  let threshold = 10 in
  let deployment =
    Deployment.create
      {
        Deployment.default_config with
        keyspace = Keyspace.of_size 65536;
        seed = 5;
        proxy =
          {
            Proxy.default_config with
            detection_window = window;
            detection_threshold = threshold;
          };
      }
  in
  let engine = Deployment.engine deployment in
  let net = Deployment.network deployment in
  let proxy = (Deployment.proxies deployment).(0) in
  let proxy_addr = (Deployment.proxy_addresses deployment).(0) in
  let attacker =
    Deployment.new_attacker_address deployment ~name:"attacker" ~handler:(fun ~src:_ _ -> ())
  in
  let sent = ref 0 in
  let total_windows = 10 in
  let interval = window /. float_of_int probes_per_window in
  ignore
    (Engine.every engine ~period:interval
       ~until:(window *. float_of_int total_windows)
       (fun () ->
         incr sent;
         Network.send net ~src:attacker ~dst:proxy_addr
           (Message.Client_request
              { id = Printf.sprintf "p%d" !sent; cmd = Printf.sprintf "probe:%d" !sent;
                client = attacker })));
  (* bounded run: the deployment's heartbeat timers re-arm forever *)
  Engine.run ~until:(window *. float_of_int (total_windows + 1)) engine;
  let delivered = Proxy.forwarded proxy in
  (!sent, Proxy.invalid_observed proxy, delivered, Proxy.is_blocked proxy attacker)

let () =
  print_endline "probe pacing vs proxy detection (window 100, threshold 10):";
  print_endline "pace/window   sent   logged   delivered   blocked?   effective fraction";
  List.iter
    (fun pace ->
      let sent, logged, delivered, blocked = run_pace ~probes_per_window:pace in
      Printf.printf "%11d  %5d  %7d  %10d  %8s  %19.2f\n" pace sent logged delivered
        (if blocked then "yes" else "no")
        (float_of_int delivered /. float_of_int sent))
    [ 5; 9; 11; 20; 50 ];
  print_endline "";
  print_endline "below the threshold the attacker is never blocked (kappa ~ 1 but the";
  print_endline "pace itself is low); above it the source is cut off within one window,";
  print_endline "so the delivered fraction collapses. Either way the server-tier attack";
  print_endline "rate is a fraction kappa < 1 of the direct rate omega."
