open Fortress_replication
module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Latency = Fortress_net.Latency
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Prng = Fortress_util.Prng

(* ---- Dsm and services ---- *)

let test_kv_basic () =
  let inst = Dsm.Instance.create Services.kv in
  let run cmd = Dsm.Instance.apply inst ~entropy:0L cmd in
  Alcotest.(check string) "put" "ok" (run "put a 1");
  Alcotest.(check string) "get" "1" (run "get a");
  Alcotest.(check string) "missing" "err:not_found" (run "get b");
  Alcotest.(check string) "cas ok" "ok" (run "cas a 1 2");
  Alcotest.(check string) "cas mismatch" "err:mismatch" (run "cas a 1 3");
  Alcotest.(check string) "size" "1" (run "size");
  Alcotest.(check string) "del" "ok" (run "del a");
  Alcotest.(check string) "del missing" "err:not_found" (run "del a");
  Alcotest.(check string) "bad" "err:bad_command" (run "frobnicate")

let test_kv_snapshot_roundtrip () =
  let inst = Dsm.Instance.create Services.kv in
  ignore (Dsm.Instance.apply inst ~entropy:0L "put x 10");
  ignore (Dsm.Instance.apply inst ~entropy:0L "put y 20");
  let snap = Dsm.Instance.snapshot inst in
  let inst2 = Dsm.Instance.create Services.kv in
  Dsm.Instance.restore inst2 snap;
  Alcotest.(check string) "restored value" "10" (Dsm.Instance.apply inst2 ~entropy:0L "get x");
  Alcotest.(check string) "digests equal" (Dsm.Instance.digest inst) (Dsm.Instance.digest inst2)

let test_kv_snapshot_canonical () =
  let a = Dsm.Instance.create Services.kv and b = Dsm.Instance.create Services.kv in
  ignore (Dsm.Instance.apply a ~entropy:0L "put x 1");
  ignore (Dsm.Instance.apply a ~entropy:0L "put y 2");
  ignore (Dsm.Instance.apply b ~entropy:0L "put y 2");
  ignore (Dsm.Instance.apply b ~entropy:0L "put x 1");
  Alcotest.(check string) "insertion order irrelevant" (Dsm.Instance.snapshot a)
    (Dsm.Instance.snapshot b)

let test_counter () =
  let inst = Dsm.Instance.create Services.counter in
  let run cmd = Dsm.Instance.apply inst ~entropy:0L cmd in
  Alcotest.(check string) "incr" "1" (run "incr");
  Alcotest.(check string) "add" "11" (run "add 10");
  Alcotest.(check string) "decr" "10" (run "decr");
  Alcotest.(check string) "read" "10" (run "read")

let test_bank () =
  let inst = Dsm.Instance.create Services.bank in
  let run cmd = Dsm.Instance.apply inst ~entropy:0L cmd in
  Alcotest.(check string) "open" "ok" (run "open alice");
  Alcotest.(check string) "double open" "err:exists" (run "open alice");
  Alcotest.(check string) "deposit" "ok" (run "deposit alice 100");
  Alcotest.(check string) "withdraw" "ok" (run "withdraw alice 30");
  Alcotest.(check string) "overdraw" "err:insufficient" (run "withdraw alice 1000");
  Alcotest.(check string) "balance" "70" (run "balance alice");
  Alcotest.(check string) "open bob" "ok" (run "open bob");
  Alcotest.(check string) "transfer" "ok" (run "transfer alice bob 20");
  Alcotest.(check string) "alice" "50" (run "balance alice");
  Alcotest.(check string) "bob" "20" (run "balance bob");
  Alcotest.(check string) "no account" "err:no_account" (run "deposit carol 1")

let test_bank_conservation () =
  (* property: total balance is conserved by transfers *)
  let inst = Dsm.Instance.create Services.bank in
  let run cmd = ignore (Dsm.Instance.apply inst ~entropy:0L cmd) in
  run "open a";
  run "open b";
  run "open c";
  run "deposit a 300";
  let p = Prng.create ~seed:5 in
  let accounts = [| "a"; "b"; "c" |] in
  for _ = 1 to 200 do
    let x = Prng.choose p accounts and y = Prng.choose p accounts in
    run (Printf.sprintf "transfer %s %s %d" x y (Prng.int p ~bound:50))
  done;
  let total =
    List.fold_left
      (fun acc a -> acc + int_of_string (Dsm.Instance.apply inst ~entropy:0L ("balance " ^ a)))
      0 [ "a"; "b"; "c" ]
  in
  Alcotest.(check int) "conserved" 300 total

let test_lottery_entropy_dependence () =
  let a = Dsm.Instance.create Services.lottery in
  let b = Dsm.Instance.create Services.lottery in
  let ra = Dsm.Instance.apply a ~entropy:111L "draw 1000000" in
  let rb = Dsm.Instance.apply b ~entropy:222L "draw 1000000" in
  Alcotest.(check bool) "different entropy, different draw" false (ra = rb);
  let c = Dsm.Instance.create Services.lottery in
  let rc = Dsm.Instance.apply c ~entropy:111L "draw 1000000" in
  Alcotest.(check string) "same entropy, same draw" ra rc

let test_session_service () =
  let inst = Dsm.Instance.create Services.session in
  let token = Dsm.Instance.apply inst ~entropy:0xDEADBEEFL "login alice" in
  Alcotest.(check string) "token from entropy" "00000000deadbeef" token;
  Alcotest.(check string) "valid check" "valid"
    (Dsm.Instance.apply inst ~entropy:0L (Printf.sprintf "check alice %s" token));
  Alcotest.(check string) "wrong token" "err:invalid"
    (Dsm.Instance.apply inst ~entropy:0L "check alice 0000000000000000");
  Alcotest.(check string) "sessions" "1" (Dsm.Instance.apply inst ~entropy:0L "sessions");
  Alcotest.(check string) "logout" "ok" (Dsm.Instance.apply inst ~entropy:0L "logout alice");
  Alcotest.(check string) "no session" "err:no_session"
    (Dsm.Instance.apply inst ~entropy:0L "logout alice")

let test_service_registry () =
  Alcotest.(check int) "five services" 5 (List.length Services.all);
  Alcotest.(check bool) "find kv" true (Services.find "kv" <> None);
  Alcotest.(check bool) "find missing" true (Services.find "nope" = None)

let test_instance_reset () =
  let inst = Dsm.Instance.create Services.counter in
  ignore (Dsm.Instance.apply inst ~entropy:0L "incr");
  Dsm.Instance.reset inst;
  Alcotest.(check string) "back to init" "0" (Dsm.Instance.apply inst ~entropy:0L "read")

(* ---- PB cluster harness ---- *)

type pb_cluster = {
  pb_engine : Engine.t;
  pb_net : Pb.msg Network.t;
  pb_replicas : Pb.replica array;
  pb_addresses : Address.t array;
  pb_client : Address.t;
  pb_replies : Pb.reply list ref;
}

let make_pb_cluster ?(config = Pb.default_config) ?(service = Services.kv) ?(seed = 3) () =
  let engine = Engine.create ~prng:(Prng.create ~seed) () in
  let net = Network.create ~latency:(Latency.constant 0.5) engine in
  let replies = ref [] in
  let client =
    Network.register net ~name:"client" ~handler:(fun ~src:_ msg ->
        match msg with Pb.Reply r -> replies := r :: !replies | _ -> ())
  in
  let addresses =
    Array.init config.Pb.ns (fun i ->
        Network.register net ~name:(Printf.sprintf "s%d" i) ~handler:(fun ~src:_ _ -> ()))
  in
  let prng = Engine.prng engine in
  let replicas =
    Array.init config.Pb.ns (fun i ->
        let secret, _ = Sign.generate prng in
        Pb.create ~engine ~config ~index:i ~service ~secret ~self:addresses.(i) ~addresses
          (fun ~dst msg -> Network.send net ~src:addresses.(i) ~dst msg))
    |> fun reps ->
    Array.iteri
      (fun i addr -> Network.set_handler net addr (fun ~src msg -> Pb.handle reps.(i) ~src msg))
      addresses;
    reps
  in
  Array.iter Pb.start replicas;
  { pb_engine = engine; pb_net = net; pb_replicas = replicas; pb_addresses = addresses;
    pb_client = client; pb_replies = replies }

let pb_submit c ~id ~cmd =
  Array.iter
    (fun dst ->
      Network.send c.pb_net ~src:c.pb_client ~dst (Pb.Request { id; cmd; reply_to = c.pb_client }))
    c.pb_addresses

let replies_for c id = List.filter (fun r -> r.Pb.request_id = id) !(c.pb_replies)

let test_session_replicates_under_pb () =
  let c = make_pb_cluster ~service:Services.session () in
  pb_submit c ~id:"l1" ~cmd:"login alice";
  Engine.run ~until:50.0 c.pb_engine;
  let rs = replies_for c "l1" in
  Alcotest.(check int) "all replicas answer" 3 (List.length rs);
  (match rs with
  | r :: rest ->
      Alcotest.(check int) "token length" 16 (String.length r.Pb.response);
      List.iter
        (fun r' -> Alcotest.(check string) "identical token everywhere" r.Pb.response r'.Pb.response)
        rest;
      (* the session validates on every replica after failover *)
      Pb.stop c.pb_replicas.(0);
      Network.set_down c.pb_net c.pb_addresses.(0);
      pb_submit c ~id:"c1" ~cmd:(Printf.sprintf "check alice %s" r.Pb.response);
      Engine.run ~until:300.0 c.pb_engine;
      let checks = replies_for c "c1" in
      Alcotest.(check bool) "validated after failover" true
        (checks <> [] && List.for_all (fun x -> x.Pb.response = "valid") checks)
  | [] -> Alcotest.fail "no replies")

let test_pb_basic_request () =
  let c = make_pb_cluster () in
  pb_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:50.0 c.pb_engine;
  let rs = replies_for c "r1" in
  Alcotest.(check int) "reply from every replica" 3 (List.length rs);
  List.iter
    (fun r ->
      Alcotest.(check string) "response" "ok" r.Pb.response;
      let pk = Pb.public_key c.pb_replicas.(r.Pb.server_index) in
      Alcotest.(check bool) "signature valid" true (Pb.verify_reply pk r))
    rs;
  let indices = List.sort compare (List.map (fun r -> r.Pb.server_index) rs) in
  Alcotest.(check (list int)) "distinct signers" [ 0; 1; 2 ] indices

let test_pb_dedup () =
  let c = make_pb_cluster () in
  pb_submit c ~id:"r1" ~cmd:"incr-like put k v";
  Engine.run ~until:50.0 c.pb_engine;
  pb_submit c ~id:"r1" ~cmd:"incr-like put k v";
  Engine.run ~until:100.0 c.pb_engine;
  Array.iter
    (fun r -> Alcotest.(check int) "executed once" 1 (Pb.executed_count r))
    c.pb_replicas

let test_pb_state_convergence () =
  let c = make_pb_cluster () in
  for i = 1 to 20 do
    pb_submit c ~id:(Printf.sprintf "r%d" i) ~cmd:(Printf.sprintf "put k%d v%d" i i)
  done;
  Engine.run ~until:200.0 c.pb_engine;
  let d0 = Pb.service_digest c.pb_replicas.(0) in
  Array.iter
    (fun r -> Alcotest.(check string) "same digest" d0 (Pb.service_digest r))
    c.pb_replicas;
  Array.iter
    (fun r -> Alcotest.(check int) "same seq" 20 (Pb.applied_seq r))
    c.pb_replicas

let test_pb_nondeterministic_service_converges () =
  (* the headline PB property: a non-DSM service still replicates *)
  let c = make_pb_cluster ~service:Services.lottery () in
  for i = 1 to 10 do
    pb_submit c ~id:(Printf.sprintf "d%d" i) ~cmd:"draw 1000000"
  done;
  Engine.run ~until:200.0 c.pb_engine;
  let d0 = Pb.service_digest c.pb_replicas.(0) in
  Array.iter
    (fun r -> Alcotest.(check string) "lottery digests agree under PB" d0 (Pb.service_digest r))
    c.pb_replicas;
  (* all replicas report the same draw for a given request *)
  let rs = replies_for c "d5" in
  Alcotest.(check int) "three replies" 3 (List.length rs);
  (match rs with
  | r :: rest ->
      List.iter
        (fun r' -> Alcotest.(check string) "same draw" r.Pb.response r'.Pb.response)
        rest
  | [] -> Alcotest.fail "no replies")

let test_pb_primary_identity () =
  let c = make_pb_cluster () in
  Alcotest.(check bool) "replica 0 starts as primary" true (Pb.is_primary c.pb_replicas.(0));
  Alcotest.(check bool) "replica 1 is backup" false (Pb.is_primary c.pb_replicas.(1))

let test_pb_failover () =
  let c = make_pb_cluster () in
  pb_submit c ~id:"before" ~cmd:"put a 1";
  Engine.run ~until:20.0 c.pb_engine;
  (* crash the primary *)
  Pb.stop c.pb_replicas.(0);
  Network.set_down c.pb_net c.pb_addresses.(0);
  pb_submit c ~id:"after" ~cmd:"put b 2";
  Engine.run ~until:200.0 c.pb_engine;
  Alcotest.(check bool) "replica 1 took over" true (Pb.is_primary c.pb_replicas.(1));
  let rs = replies_for c "after" in
  Alcotest.(check bool) "request served after failover" true (List.length rs >= 1);
  List.iter (fun r -> Alcotest.(check string) "response" "ok" r.Pb.response) rs;
  (* both survivors hold both writes *)
  let digest r = Pb.service_digest r in
  Alcotest.(check string) "survivors agree" (digest c.pb_replicas.(1)) (digest c.pb_replicas.(2))

let test_pb_rejoin_after_failover () =
  let c = make_pb_cluster () in
  pb_submit c ~id:"w1" ~cmd:"put a 1";
  Engine.run ~until:20.0 c.pb_engine;
  Pb.stop c.pb_replicas.(0);
  Network.set_down c.pb_net c.pb_addresses.(0);
  pb_submit c ~id:"w2" ~cmd:"put b 2";
  Engine.run ~until:200.0 c.pb_engine;
  (* old primary recovers and resyncs *)
  Network.set_up c.pb_net c.pb_addresses.(0);
  Pb.restart c.pb_replicas.(0);
  Engine.run ~until:300.0 c.pb_engine;
  Alcotest.(check bool) "sync finished" false (Pb.syncing c.pb_replicas.(0));
  Alcotest.(check string) "rejoined replica caught up"
    (Pb.service_digest c.pb_replicas.(1))
    (Pb.service_digest c.pb_replicas.(0));
  (* and it now follows the advanced view *)
  Alcotest.(check bool) "old primary stepped down" false (Pb.is_primary c.pb_replicas.(0))

let test_pb_compromised_primary_poisons_replies () =
  (* the reason PB alone cannot tolerate intrusions *)
  let c = make_pb_cluster () in
  Pb.set_compromised c.pb_replicas.(0) true;
  pb_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:50.0 c.pb_engine;
  let rs = replies_for c "r1" in
  let poisoned = List.filter (fun r -> r.Pb.server_index = 0) rs in
  List.iter
    (fun r ->
      Alcotest.(check string) "poisoned response" "pwned:ok" r.Pb.response;
      let pk = Pb.public_key c.pb_replicas.(0) in
      Alcotest.(check bool) "yet validly signed" true (Pb.verify_reply pk r))
    poisoned;
  Alcotest.(check bool) "poisoned reply present" true (List.length poisoned = 1)

let test_pb_single_replica () =
  (* ns = 1: an unreplicated fortified server is allowed by FORTRESS *)
  let config = { Pb.default_config with ns = 1; ack_quorum = 0 } in
  let c = make_pb_cluster ~config () in
  pb_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:50.0 c.pb_engine;
  let rs = replies_for c "r1" in
  Alcotest.(check int) "one reply" 1 (List.length rs)

(* ---- SMR cluster harness ---- *)

type smr_cluster = {
  smr_engine : Engine.t;
  smr_net : Smr.msg Network.t;
  smr_replicas : Smr.replica array;
  smr_addresses : Address.t array;
  smr_client : Address.t;
  smr_replies : Smr.reply list ref;
}

let make_smr_cluster ?(config = Smr.default_config) ?(service = Services.kv) ?(seed = 4) () =
  let engine = Engine.create ~prng:(Prng.create ~seed) () in
  let net = Network.create ~latency:(Latency.constant 0.5) engine in
  let replies = ref [] in
  let client =
    Network.register net ~name:"client" ~handler:(fun ~src:_ msg ->
        match msg with Smr.Reply r -> replies := r :: !replies | _ -> ())
  in
  let addresses =
    Array.init config.Smr.n (fun i ->
        Network.register net ~name:(Printf.sprintf "s%d" i) ~handler:(fun ~src:_ _ -> ()))
  in
  let prng = Engine.prng engine in
  let replicas =
    Array.init config.Smr.n (fun i ->
        let secret, _ = Sign.generate prng in
        Smr.create ~engine ~config ~index:i ~service ~secret ~self:addresses.(i) ~addresses
          ~send:(fun ~dst msg -> Network.send net ~src:addresses.(i) ~dst msg))
    |> fun reps ->
    Array.iteri
      (fun i addr -> Network.set_handler net addr (fun ~src msg -> Smr.handle reps.(i) ~src msg))
      addresses;
    reps
  in
  Array.iter Smr.start replicas;
  { smr_engine = engine; smr_net = net; smr_replicas = replicas; smr_addresses = addresses;
    smr_client = client; smr_replies = replies }

let smr_submit c ~id ~cmd =
  Array.iter
    (fun dst ->
      Network.send c.smr_net ~src:c.smr_client ~dst
        (Smr.Request { id; cmd; reply_to = c.smr_client }))
    c.smr_addresses

let smr_replies_for c id = List.filter (fun r -> r.Smr.request_id = id) !(c.smr_replies)

let smr_voter c =
  Smr.Voter.create ~f:1 ~public_keys:(Array.map Smr.public_key c.smr_replicas)

let test_smr_basic_request () =
  let c = make_smr_cluster () in
  smr_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:100.0 c.smr_engine;
  let rs = smr_replies_for c "r1" in
  Alcotest.(check int) "reply from all four" 4 (List.length rs);
  let voter = smr_voter c in
  let decided = List.filter_map (fun r -> Smr.Voter.offer voter r) rs in
  Alcotest.(check (list string)) "vote decides once" [ "ok" ] decided

let test_smr_ordering_consistency () =
  let c = make_smr_cluster ~service:Services.counter () in
  for i = 1 to 15 do
    smr_submit c ~id:(Printf.sprintf "r%d" i) ~cmd:"incr"
  done;
  Engine.run ~until:300.0 c.smr_engine;
  Array.iter
    (fun r ->
      Alcotest.(check int) "all executed" 15 (Smr.last_executed r);
      Alcotest.(check string) "digests equal"
        (Smr.service_digest c.smr_replicas.(0))
        (Smr.service_digest r))
    c.smr_replicas

let test_smr_tolerates_one_crash () =
  let c = make_smr_cluster () in
  Smr.stop c.smr_replicas.(3);
  Network.set_down c.smr_net c.smr_addresses.(3);
  smr_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:100.0 c.smr_engine;
  let rs = smr_replies_for c "r1" in
  Alcotest.(check int) "three replies" 3 (List.length rs);
  List.iter (fun r -> Alcotest.(check string) "ok" "ok" r.Smr.response) rs

let test_smr_leader_crash_view_change () =
  let c = make_smr_cluster () in
  Smr.stop c.smr_replicas.(0);
  Network.set_down c.smr_net c.smr_addresses.(0);
  smr_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:500.0 c.smr_engine;
  let rs = smr_replies_for c "r1" in
  Alcotest.(check bool) "executed after view change" true (List.length rs >= 3);
  Alcotest.(check bool) "view advanced" true (Smr.view c.smr_replicas.(1) >= 1);
  Alcotest.(check bool) "new leader exists" true
    (Array.exists (fun r -> Smr.alive r && Smr.is_leader r) c.smr_replicas)

let test_smr_dedup () =
  let c = make_smr_cluster ~service:Services.counter () in
  smr_submit c ~id:"same" ~cmd:"incr";
  Engine.run ~until:100.0 c.smr_engine;
  smr_submit c ~id:"same" ~cmd:"incr";
  Engine.run ~until:200.0 c.smr_engine;
  Array.iter
    (fun r -> Alcotest.(check int) "incr applied once" 1 (Smr.executed_count r))
    c.smr_replicas

let test_smr_one_compromised_outvoted () =
  let c = make_smr_cluster () in
  Smr.set_compromised c.smr_replicas.(2) true;
  smr_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:100.0 c.smr_engine;
  let voter = smr_voter c in
  let decided = List.filter_map (fun r -> Smr.Voter.offer voter r) (smr_replies_for c "r1") in
  Alcotest.(check (list string)) "honest majority wins" [ "ok" ] decided

let test_smr_two_compromised_defeat_vote () =
  (* the paper's S0 failure condition: more than one compromised node *)
  let c = make_smr_cluster () in
  Smr.set_compromised c.smr_replicas.(1) true;
  Smr.set_compromised c.smr_replicas.(2) true;
  smr_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:100.0 c.smr_engine;
  let voter = smr_voter c in
  (* feed compromised replies first: the voter reaches f+1 on the poison *)
  let rs = smr_replies_for c "r1" in
  let poisoned, honest = List.partition (fun r -> r.Smr.response <> "ok") rs in
  let decided = List.filter_map (fun r -> Smr.Voter.offer voter r) (poisoned @ honest) in
  Alcotest.(check (list string)) "two intrusions poison the vote" [ "pwned:ok" ] decided

let test_smr_voter_rejects_bad_signature () =
  let c = make_smr_cluster () in
  smr_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:100.0 c.smr_engine;
  let voter = smr_voter c in
  match smr_replies_for c "r1" with
  | r :: _ ->
      let tampered = { r with Smr.response = "evil" } in
      Alcotest.(check bool) "tampered reply ignored" true
        (Smr.Voter.offer voter tampered = None)
  | [] -> Alcotest.fail "no replies"

let test_smr_checkpointing () =
  let config = { Smr.default_config with checkpoint_interval = 5 } in
  let c = make_smr_cluster ~config ~service:Services.counter () in
  for i = 1 to 12 do
    smr_submit c ~id:(Printf.sprintf "r%d" i) ~cmd:"incr"
  done;
  Engine.run ~until:300.0 c.smr_engine;
  Array.iter
    (fun r -> Alcotest.(check bool) "stable checkpoint advanced" true (Smr.stable_checkpoint r >= 5))
    c.smr_replicas

let test_smr_state_transfer () =
  let c = make_smr_cluster ~service:Services.counter () in
  smr_submit c ~id:"r1" ~cmd:"incr";
  Engine.run ~until:50.0 c.smr_engine;
  (* replica 3 is wiped by proactive recovery and must restore from peers *)
  Smr.stop c.smr_replicas.(3);
  Network.set_down c.smr_net c.smr_addresses.(3);
  smr_submit c ~id:"r2" ~cmd:"incr";
  Engine.run ~until:100.0 c.smr_engine;
  Network.set_up c.smr_net c.smr_addresses.(3);
  Smr.restart c.smr_replicas.(3);
  Smr.begin_state_transfer c.smr_replicas.(3);
  Engine.run ~until:200.0 c.smr_engine;
  Alcotest.(check bool) "transfer completed" false (Smr.in_state_transfer c.smr_replicas.(3));
  Alcotest.(check string) "state matches peers"
    (Smr.service_digest c.smr_replicas.(0))
    (Smr.service_digest c.smr_replicas.(3))

let test_smr_nondeterministic_service_diverges () =
  (* the paper's motivation: SMR is only sound for deterministic services *)
  let c = make_smr_cluster ~service:Services.lottery () in
  smr_submit c ~id:"d1" ~cmd:"draw 1000000000";
  Engine.run ~until:100.0 c.smr_engine;
  let digests =
    Array.to_list (Array.map Smr.service_digest c.smr_replicas) |> List.sort_uniq compare
  in
  Alcotest.(check bool) "replicas diverged" true (List.length digests > 1);
  let voter = smr_voter c in
  let decided =
    List.filter_map (fun r -> Smr.Voter.offer voter r) (smr_replies_for c "d1")
  in
  Alcotest.(check (list string)) "no f+1 agreement on a random draw" [] decided

let test_smr_f2_cluster () =
  (* the quorum arithmetic generalises: n = 7, f = 2 *)
  let config = { Smr.default_config with n = 7; f = 2 } in
  let c = make_smr_cluster ~config ~service:Services.counter () in
  (* crash two replicas: the cluster must still order and execute *)
  Smr.stop c.smr_replicas.(5);
  Network.set_down c.smr_net c.smr_addresses.(5);
  Smr.stop c.smr_replicas.(6);
  Network.set_down c.smr_net c.smr_addresses.(6);
  for i = 1 to 5 do
    smr_submit c ~id:(Printf.sprintf "r%d" i) ~cmd:"incr"
  done;
  Engine.run ~until:300.0 c.smr_engine;
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d executed all" i)
      5
      (Smr.last_executed c.smr_replicas.(i))
  done;
  (* and the f=2 voter needs three matching replies *)
  let voter = Smr.Voter.create ~f:2 ~public_keys:(Array.map Smr.public_key c.smr_replicas) in
  let decided = List.filter_map (fun r -> Smr.Voter.offer voter r) (smr_replies_for c "r1") in
  Alcotest.(check int) "vote decides once" 1 (List.length decided)

let test_smr_f2_two_compromised_masked () =
  let config = { Smr.default_config with n = 7; f = 2 } in
  let c = make_smr_cluster ~config () in
  Smr.set_compromised c.smr_replicas.(1) true;
  Smr.set_compromised c.smr_replicas.(2) true;
  smr_submit c ~id:"r1" ~cmd:"put k v";
  Engine.run ~until:200.0 c.smr_engine;
  let voter = Smr.Voter.create ~f:2 ~public_keys:(Array.map Smr.public_key c.smr_replicas) in
  let decided = List.filter_map (fun r -> Smr.Voter.offer voter r) (smr_replies_for c "r1") in
  Alcotest.(check (list string)) "two intruders masked at f=2" [ "ok" ] decided

let test_smr_config_validation () =
  let engine = Engine.create () in
  let net = Network.create engine in
  let addr = Network.register net ~name:"x" ~handler:(fun ~src:_ _ -> ()) in
  let secret, _ = Sign.generate (Prng.create ~seed:1) in
  Alcotest.check_raises "n must be 3f+1" (Invalid_argument "Smr.create: n must be 3f+1")
    (fun () ->
      ignore
        (Smr.create ~engine
           ~config:{ Smr.default_config with n = 5 }
           ~index:0 ~service:Services.kv ~secret ~self:addr ~addresses:[| addr |]
           ~send:(fun ~dst:_ _ -> ())))

let test_pb_double_failover () =
  (* both the primary and its first successor die; the last replica must
     still take over and serve *)
  let c = make_pb_cluster () in
  pb_submit c ~id:"w1" ~cmd:"put a 1";
  Engine.run ~until:20.0 c.pb_engine;
  Pb.stop c.pb_replicas.(0);
  Network.set_down c.pb_net c.pb_addresses.(0);
  Engine.run ~until:120.0 c.pb_engine;
  Alcotest.(check bool) "replica 1 took over first" true (Pb.is_primary c.pb_replicas.(1));
  Pb.stop c.pb_replicas.(1);
  Network.set_down c.pb_net c.pb_addresses.(1);
  pb_submit c ~id:"w2" ~cmd:"put b 2";
  Engine.run ~until:400.0 c.pb_engine;
  Alcotest.(check bool) "replica 2 ended as primary" true (Pb.is_primary c.pb_replicas.(2));
  let rs = replies_for c "w2" in
  Alcotest.(check bool) "lone survivor serves" true
    (rs <> [] && List.for_all (fun r -> r.Pb.response = "ok") rs)

let test_pb_ack_timeout_availability () =
  (* with every backup down the primary cannot gather acks, but after
     ack_timeout it answers anyway: availability over durability *)
  let config = { Pb.default_config with ack_timeout = 10.0 } in
  let c = make_pb_cluster ~config () in
  Pb.stop c.pb_replicas.(1);
  Network.set_down c.pb_net c.pb_addresses.(1);
  Pb.stop c.pb_replicas.(2);
  Network.set_down c.pb_net c.pb_addresses.(2);
  pb_submit c ~id:"solo" ~cmd:"put k v";
  Engine.run ~until:100.0 c.pb_engine;
  let rs = replies_for c "solo" in
  Alcotest.(check int) "only the primary replies" 1 (List.length rs);
  List.iter (fun r -> Alcotest.(check string) "served" "ok" r.Pb.response) rs

let test_pb_ns5_cluster () =
  (* the protocol generalises beyond the paper's ns = 3 *)
  let config = { Pb.default_config with ns = 5; ack_quorum = 2 } in
  let c = make_pb_cluster ~config () in
  for i = 1 to 8 do
    pb_submit c ~id:(Printf.sprintf "w%d" i) ~cmd:(Printf.sprintf "put k%d v" i)
  done;
  Engine.run ~until:150.0 c.pb_engine;
  Array.iter
    (fun r ->
      Alcotest.(check int) "all five applied everything" 8 (Pb.applied_seq r))
    c.pb_replicas;
  let rs = replies_for c "w3" in
  Alcotest.(check int) "five signed replies" 5 (List.length rs)

(* ---- stable storage ---- *)

let test_storage_roundtrip () =
  let s = Storage.create () in
  Storage.write s ~key:"a" "hello";
  Alcotest.(check (option string)) "read back" (Some "hello") (Storage.read s ~key:"a");
  Alcotest.(check bool) "mem" true (Storage.mem s ~key:"a");
  Storage.delete s ~key:"a";
  Alcotest.(check (option string)) "deleted" None (Storage.read s ~key:"a")

let test_storage_overwrite () =
  let s = Storage.create () in
  Storage.write s ~key:"a" "v1";
  Storage.write s ~key:"a" "v2";
  Alcotest.(check (option string)) "latest wins" (Some "v2") (Storage.read s ~key:"a");
  Alcotest.(check int) "two writes" 2 (Storage.writes s)

let test_storage_corruption_detected () =
  let s = Storage.create () in
  Storage.write s ~key:"a" "payload";
  Storage.corrupt s ~key:"a";
  Alcotest.(check (option string)) "damaged record rejected" None (Storage.read s ~key:"a");
  Alcotest.(check bool) "mem false" false (Storage.mem s ~key:"a")

let test_storage_keys_sorted () =
  let s = Storage.create () in
  Storage.write s ~key:"b" "2";
  Storage.write s ~key:"a" "1";
  Storage.write s ~key:"c" "3";
  Storage.corrupt s ~key:"c";
  Alcotest.(check (list string)) "intact keys only, sorted" [ "a"; "b" ] (Storage.keys s)

let test_storage_wipe () =
  let s = Storage.create () in
  Storage.write s ~key:"a" "1";
  Storage.wipe s;
  Alcotest.(check (list string)) "empty" [] (Storage.keys s)

let test_storage_log_append_entries () =
  let s = Storage.create () in
  let log = Storage.Log.attach s ~name:"wal" in
  Storage.Log.append log "e0";
  Storage.Log.append log "e1";
  Storage.Log.append log "e2";
  Alcotest.(check (list string)) "in order" [ "e0"; "e1"; "e2" ] (Storage.Log.entries log);
  Alcotest.(check int) "length" 3 (Storage.Log.length log)

let test_storage_log_reattach () =
  let s = Storage.create () in
  let log = Storage.Log.attach s ~name:"wal" in
  Storage.Log.append log "e0";
  Storage.Log.append log "e1";
  (* a new handle over the same store resumes where the old one stopped *)
  let log2 = Storage.Log.attach s ~name:"wal" in
  Alcotest.(check int) "recovered length" 2 (Storage.Log.length log2);
  Storage.Log.append log2 "e2";
  Alcotest.(check (list string)) "continues" [ "e0"; "e1"; "e2" ] (Storage.Log.entries log2)

let test_storage_log_hole_truncates () =
  let s = Storage.create () in
  let log = Storage.Log.attach s ~name:"wal" in
  List.iter (Storage.Log.append log) [ "e0"; "e1"; "e2"; "e3" ];
  Storage.corrupt s ~key:"log:wal:000001";
  Alcotest.(check (list string)) "prefix before the hole" [ "e0" ] (Storage.Log.entries log)

let test_storage_log_truncate () =
  let s = Storage.create () in
  let log = Storage.Log.attach s ~name:"wal" in
  List.iter (Storage.Log.append log) [ "e0"; "e1" ];
  Storage.Log.truncate log;
  Alcotest.(check (list string)) "empty" [] (Storage.Log.entries log);
  Storage.Log.append log "fresh";
  Alcotest.(check (list string)) "restarts from zero" [ "fresh" ] (Storage.Log.entries log)

let test_storage_independent_logs () =
  let s = Storage.create () in
  let a = Storage.Log.attach s ~name:"a" in
  let b = Storage.Log.attach s ~name:"b" in
  Storage.Log.append a "from-a";
  Storage.Log.append b "from-b";
  Alcotest.(check (list string)) "a" [ "from-a" ] (Storage.Log.entries a);
  Alcotest.(check (list string)) "b" [ "from-b" ] (Storage.Log.entries b)

(* ---- PB with stable storage ---- *)

let make_pb_cluster_with_storage ?(config = Pb.default_config) ?(seed = 3) () =
  let engine = Engine.create ~prng:(Prng.create ~seed) () in
  let net = Network.create ~latency:(Latency.constant 0.5) engine in
  let replies = ref [] in
  let client =
    Network.register net ~name:"client" ~handler:(fun ~src:_ msg ->
        match msg with Pb.Reply r -> replies := r :: !replies | _ -> ())
  in
  let addresses =
    Array.init config.Pb.ns (fun i ->
        Network.register net ~name:(Printf.sprintf "s%d" i) ~handler:(fun ~src:_ _ -> ()))
  in
  let prng = Engine.prng engine in
  let stores = Array.init config.Pb.ns (fun _ -> Storage.create ()) in
  let replicas =
    Array.init config.Pb.ns (fun i ->
        let secret, _ = Sign.generate prng in
        Pb.create ~storage:stores.(i) ~engine ~config ~index:i ~service:Services.counter ~secret
          ~self:addresses.(i) ~addresses
          (fun ~dst msg -> Network.send net ~src:addresses.(i) ~dst msg))
    |> fun reps ->
    Array.iteri
      (fun i addr -> Network.set_handler net addr (fun ~src msg -> Pb.handle reps.(i) ~src msg))
      addresses;
    reps
  in
  Array.iter Pb.start replicas;
  ( { pb_engine = engine; pb_net = net; pb_replicas = replicas; pb_addresses = addresses;
      pb_client = client; pb_replies = replies },
    stores )

let test_pb_persists_progress () =
  let c, _stores = make_pb_cluster_with_storage () in
  for i = 1 to 20 do
    pb_submit c ~id:(Printf.sprintf "w%d" i) ~cmd:"incr"
  done;
  Engine.run ~until:200.0 c.pb_engine;
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d persisted everything (%d)" (Pb.index r) (Pb.persisted_seq r))
        true
        (Pb.persisted_seq r = 20))
    c.pb_replicas

let test_pb_restart_from_storage () =
  let c, _stores = make_pb_cluster_with_storage () in
  for i = 1 to 13 do
    pb_submit c ~id:(Printf.sprintf "w%d" i) ~cmd:"incr"
  done;
  Engine.run ~until:200.0 c.pb_engine;
  let digest_before = Pb.service_digest c.pb_replicas.(2) in
  (* replica 2 reboots, losing volatile state; 13 = one snapshot (at 8)
     plus five WAL entries, so the reload exercises both paths *)
  Pb.stop c.pb_replicas.(2);
  Network.set_down c.pb_net c.pb_addresses.(2);
  Engine.run ~until:210.0 c.pb_engine;
  Network.set_up c.pb_net c.pb_addresses.(2);
  Alcotest.(check bool) "reload succeeded" true (Pb.restart_from_storage c.pb_replicas.(2));
  Alcotest.(check int) "sequence recovered locally" 13 (Pb.applied_seq c.pb_replicas.(2));
  Alcotest.(check string) "state recovered locally" digest_before
    (Pb.service_digest c.pb_replicas.(2));
  Engine.run ~until:400.0 c.pb_engine;
  Alcotest.(check string) "still consistent with peers"
    (Pb.service_digest c.pb_replicas.(0))
    (Pb.service_digest c.pb_replicas.(2))

let test_pb_restart_from_corrupt_storage_falls_back () =
  let c, stores = make_pb_cluster_with_storage () in
  for i = 1 to 10 do
    pb_submit c ~id:(Printf.sprintf "w%d" i) ~cmd:"incr"
  done;
  Engine.run ~until:200.0 c.pb_engine;
  Storage.corrupt stores.(2) ~key:"pb-snapshot";
  Pb.stop c.pb_replicas.(2);
  Alcotest.(check bool) "damaged snapshot refused" false
    (Pb.restart_from_storage c.pb_replicas.(2));
  (* plain restart still recovers over the network *)
  Pb.restart c.pb_replicas.(2);
  Engine.run ~until:400.0 c.pb_engine;
  Alcotest.(check string) "network sync recovered it"
    (Pb.service_digest c.pb_replicas.(0))
    (Pb.service_digest c.pb_replicas.(2))

let test_pb_no_storage_restart_from_storage_false () =
  let c = make_pb_cluster () in
  Alcotest.(check bool) "no storage attached" false
    (Pb.restart_from_storage c.pb_replicas.(0));
  Alcotest.(check int) "persisted_seq sentinel" (-1) (Pb.persisted_seq c.pb_replicas.(0))

(* ---- Byzantine injection ---- *)

let test_smr_equivocating_preprepares_no_divergence () =
  (* a Byzantine leader sends conflicting proposals for the same sequence
     number to different replicas; safety demands that no two honest
     replicas execute different commands at that sequence *)
  let c = make_smr_cluster ~service:Services.counter () in
  let seq = 1 and view = 0 in
  let forge dst msg = Network.send c.smr_net ~src:c.smr_addresses.(0) ~dst msg in
  forge c.smr_addresses.(1)
    (Smr.Preprepare { view; seq; id = "evil"; cmd = "incr"; reply_to = c.smr_client });
  forge c.smr_addresses.(2)
    (Smr.Preprepare { view; seq; id = "evil2"; cmd = "add 100"; reply_to = c.smr_client });
  forge c.smr_addresses.(3)
    (Smr.Preprepare { view; seq; id = "evil"; cmd = "incr"; reply_to = c.smr_client });
  (* commit needs 2f+1 = 3 votes, and the conflicting proposal splits the
     prepare/commit quorums, so neither command can commit in view 0; the
     request timeout then drives a view change and an honest leader
     re-proposes — liveness restores order, safety is never at risk *)
  Engine.run ~until:600.0 c.smr_engine;
  let digests =
    Array.to_list (Array.map Smr.service_digest c.smr_replicas) |> List.sort_uniq compare
  in
  Alcotest.(check int) "no state divergence" 1 (List.length digests);
  let last = Array.map Smr.last_executed c.smr_replicas in
  Array.iter
    (fun l -> Alcotest.(check int) "all replicas executed the same count" last.(0) l)
    last;
  (* whatever was (re)ordered, it is a serial subset of the two injected
     commands: counter value must be one of 0, 1, 100 or 101 *)
  let value =
    Dsm.Instance.apply
      (let i = Dsm.Instance.create Services.counter in
       Dsm.Instance.restore i (Smr.service_snapshot c.smr_replicas.(0));
       i)
      ~entropy:0L "read"
  in
  Alcotest.(check bool)
    (Printf.sprintf "serial outcome (counter = %s)" value)
    true
    (List.mem value [ "0"; "1"; "100"; "101" ])

let test_smr_forged_prepare_votes_insufficient () =
  (* prepares forged for an entry nobody preprepared are ignored *)
  let c = make_smr_cluster () in
  let digest = Fortress_crypto.Sha256.digest "bogus" in
  for voter = 0 to 3 do
    Network.send c.smr_net ~src:c.smr_addresses.(0) ~dst:c.smr_addresses.(1)
      (Smr.Prepare { view = 0; seq = 5; digest; index = voter })
  done;
  Engine.run ~until:50.0 c.smr_engine;
  Alcotest.(check int) "nothing executed" 0 (Smr.last_executed c.smr_replicas.(1))

let test_smr_stale_view_preprepare_ignored () =
  let c = make_smr_cluster ~service:Services.counter () in
  (* legitimate execution first, moving replicas to view 0 state *)
  smr_submit c ~id:"r1" ~cmd:"incr";
  Engine.run ~until:100.0 c.smr_engine;
  (* a preprepare for an already-executed sequence number must be ignored *)
  Network.send c.smr_net ~src:c.smr_addresses.(0) ~dst:c.smr_addresses.(1)
    (Smr.Preprepare { view = 0; seq = 1; id = "replay"; cmd = "add 50"; reply_to = c.smr_client });
  Engine.run ~until:200.0 c.smr_engine;
  Alcotest.(check int) "no replay execution" 1 (Smr.last_executed c.smr_replicas.(1));
  Alcotest.(check string) "states agree"
    (Smr.service_digest c.smr_replicas.(0))
    (Smr.service_digest c.smr_replicas.(1))

(* ---- fault-schedule property tests ---- *)

(* Drive a PB cluster through a random schedule of single-replica crashes
   and recoveries interleaved with writes; afterwards every live replica
   must hold the same state and every submitted request must have been
   answered. The schedule is a list of (victim, crash_gap, down_time)
   triples applied sequentially. *)
let pb_fault_schedule_holds schedule =
  let config = { Pb.default_config with heartbeat_period = 2.0; suspect_timeout = 8.0 } in
  let c = make_pb_cluster ~config ~seed:(Hashtbl.hash schedule land 0xFFFF) () in
  let engine = c.pb_engine in
  let now = ref 0.0 in
  let req = ref 0 in
  let submit_at t =
    incr req;
    let id = Printf.sprintf "fs%d" !req in
    ignore
      (Engine.schedule_at engine ~time:t (fun () ->
           pb_submit c ~id ~cmd:(Printf.sprintf "put k%d v%d" !req !req)))
  in
  List.iter
    (fun (victim, gap, down) ->
      let victim = victim mod 3 in
      let gap = float_of_int (5 + (gap mod 20)) in
      let down = float_of_int (15 + (down mod 30)) in
      let crash_at = !now +. gap in
      let restore_at = crash_at +. down in
      submit_at (!now +. 1.0);
      ignore
        (Engine.schedule_at engine ~time:crash_at (fun () ->
             Pb.stop c.pb_replicas.(victim);
             Network.set_down c.pb_net c.pb_addresses.(victim)));
      submit_at (crash_at +. 2.0);
      ignore
        (Engine.schedule_at engine ~time:restore_at (fun () ->
             Network.set_up c.pb_net c.pb_addresses.(victim);
             Pb.restart c.pb_replicas.(victim)));
      now := restore_at +. 40.0)
    schedule;
  submit_at (!now +. 1.0);
  Engine.run ~until:(!now +. 400.0) engine;
  let alive = Array.to_list c.pb_replicas |> List.filter Pb.alive in
  let digests = List.map Pb.service_digest alive |> List.sort_uniq compare in
  let answered =
    List.init !req (fun i -> Printf.sprintf "fs%d" (i + 1))
    |> List.for_all (fun id -> replies_for c id <> [])
  in
  List.length digests = 1 && answered && List.length alive = 3

let smr_fault_schedule_holds schedule =
  let c = make_smr_cluster ~seed:(Hashtbl.hash schedule land 0xFFFF) () in
  let engine = c.smr_engine in
  let now = ref 0.0 in
  let req = ref 0 in
  List.iter
    (fun (victim, down) ->
      let victim = victim mod 4 in
      let down = float_of_int (20 + (down mod 40)) in
      incr req;
      let id = Printf.sprintf "sf%d" !req in
      ignore
        (Engine.schedule_at engine ~time:(!now +. 1.0) (fun () -> smr_submit c ~id ~cmd:"incr"));
      ignore
        (Engine.schedule_at engine ~time:(!now +. 5.0) (fun () ->
             Smr.stop c.smr_replicas.(victim);
             Network.set_down c.smr_net c.smr_addresses.(victim)));
      ignore
        (Engine.schedule_at engine
           ~time:(!now +. 5.0 +. down)
           (fun () ->
             Network.set_up c.smr_net c.smr_addresses.(victim);
             Smr.restart c.smr_replicas.(victim);
             Smr.begin_state_transfer c.smr_replicas.(victim)));
      now := !now +. 5.0 +. down +. 120.0)
    schedule;
  Engine.run ~until:(!now +. 600.0) engine;
  (* all requests must be executed with agreement among the replicas *)
  let last = Array.map Smr.last_executed c.smr_replicas in
  let digests =
    Array.to_list (Array.map Smr.service_digest c.smr_replicas) |> List.sort_uniq compare
  in
  Array.for_all (fun l -> l = !req) last && List.length digests = 1

let fault_qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"pb survives random crash/recovery schedules" ~count:15
      (list_of_size (Gen.int_range 1 3) (triple small_nat small_nat small_nat))
      (fun schedule -> pb_fault_schedule_holds schedule);
    Test.make ~name:"smr converges under random single-crash schedules" ~count:10
      (list_of_size (Gen.int_range 1 3) (pair small_nat small_nat))
      (fun schedule -> smr_fault_schedule_holds schedule);
  ]

let () =
  Alcotest.run "fortress_replication"
    [
      ( "services",
        [
          Alcotest.test_case "kv basic" `Quick test_kv_basic;
          Alcotest.test_case "kv snapshot round-trip" `Quick test_kv_snapshot_roundtrip;
          Alcotest.test_case "kv snapshot canonical" `Quick test_kv_snapshot_canonical;
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "bank" `Quick test_bank;
          Alcotest.test_case "bank conservation" `Quick test_bank_conservation;
          Alcotest.test_case "lottery entropy dependence" `Quick test_lottery_entropy_dependence;
          Alcotest.test_case "session service" `Quick test_session_service;
          Alcotest.test_case "session replicates under PB" `Quick test_session_replicates_under_pb;
          Alcotest.test_case "registry" `Quick test_service_registry;
          Alcotest.test_case "instance reset" `Quick test_instance_reset;
        ] );
      ( "primary-backup",
        [
          Alcotest.test_case "basic request" `Quick test_pb_basic_request;
          Alcotest.test_case "request dedup" `Quick test_pb_dedup;
          Alcotest.test_case "state convergence" `Quick test_pb_state_convergence;
          Alcotest.test_case "nondeterministic service converges" `Quick
            test_pb_nondeterministic_service_converges;
          Alcotest.test_case "primary identity" `Quick test_pb_primary_identity;
          Alcotest.test_case "failover" `Quick test_pb_failover;
          Alcotest.test_case "rejoin after failover" `Quick test_pb_rejoin_after_failover;
          Alcotest.test_case "compromised primary poisons replies" `Quick
            test_pb_compromised_primary_poisons_replies;
          Alcotest.test_case "single replica" `Quick test_pb_single_replica;
          Alcotest.test_case "double failover" `Quick test_pb_double_failover;
          Alcotest.test_case "ack timeout availability" `Quick test_pb_ack_timeout_availability;
          Alcotest.test_case "five-replica cluster" `Quick test_pb_ns5_cluster;
        ] );
      ( "smr",
        [
          Alcotest.test_case "basic request with vote" `Quick test_smr_basic_request;
          Alcotest.test_case "ordering consistency" `Quick test_smr_ordering_consistency;
          Alcotest.test_case "tolerates one crash" `Quick test_smr_tolerates_one_crash;
          Alcotest.test_case "leader crash view change" `Quick test_smr_leader_crash_view_change;
          Alcotest.test_case "request dedup" `Quick test_smr_dedup;
          Alcotest.test_case "one compromised outvoted" `Quick test_smr_one_compromised_outvoted;
          Alcotest.test_case "two compromised defeat vote" `Quick
            test_smr_two_compromised_defeat_vote;
          Alcotest.test_case "voter rejects bad signature" `Quick
            test_smr_voter_rejects_bad_signature;
          Alcotest.test_case "checkpointing" `Quick test_smr_checkpointing;
          Alcotest.test_case "state transfer" `Quick test_smr_state_transfer;
          Alcotest.test_case "nondeterministic service diverges" `Quick
            test_smr_nondeterministic_service_diverges;
          Alcotest.test_case "config validation" `Quick test_smr_config_validation;
          Alcotest.test_case "f=2 cluster" `Quick test_smr_f2_cluster;
          Alcotest.test_case "f=2 masks two intruders" `Quick test_smr_f2_two_compromised_masked;
        ] );
      ( "storage",
        [
          Alcotest.test_case "round-trip" `Quick test_storage_roundtrip;
          Alcotest.test_case "overwrite" `Quick test_storage_overwrite;
          Alcotest.test_case "corruption detected" `Quick test_storage_corruption_detected;
          Alcotest.test_case "keys sorted and intact" `Quick test_storage_keys_sorted;
          Alcotest.test_case "wipe" `Quick test_storage_wipe;
          Alcotest.test_case "log append/entries" `Quick test_storage_log_append_entries;
          Alcotest.test_case "log reattach" `Quick test_storage_log_reattach;
          Alcotest.test_case "log hole truncates" `Quick test_storage_log_hole_truncates;
          Alcotest.test_case "log truncate" `Quick test_storage_log_truncate;
          Alcotest.test_case "independent logs" `Quick test_storage_independent_logs;
        ] );
      ( "pb-persistence",
        [
          Alcotest.test_case "persists progress" `Quick test_pb_persists_progress;
          Alcotest.test_case "restart from storage" `Quick test_pb_restart_from_storage;
          Alcotest.test_case "corrupt snapshot falls back" `Quick
            test_pb_restart_from_corrupt_storage_falls_back;
          Alcotest.test_case "no storage sentinel" `Quick
            test_pb_no_storage_restart_from_storage_false;
        ] );
      ( "byzantine-injection",
        [
          Alcotest.test_case "equivocation cannot diverge state" `Quick
            test_smr_equivocating_preprepares_no_divergence;
          Alcotest.test_case "forged prepares insufficient" `Quick
            test_smr_forged_prepare_votes_insufficient;
          Alcotest.test_case "stale preprepare ignored" `Quick
            test_smr_stale_view_preprepare_ignored;
        ] );
      ("fault-schedules", List.map QCheck_alcotest.to_alcotest fault_qcheck_tests);
    ]
