open Fortress_crypto

(* ---- SHA-256 NIST vectors ---- *)

let test_sha256_empty () =
  Alcotest.(check string) "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "")

let test_sha256_abc () =
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc")

let test_sha256_two_blocks () =
  Alcotest.(check string) "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_million_a () =
  Alcotest.(check string) "million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha256_streaming () =
  let ctx = Sha256.init () in
  Sha256.feed ctx "ab";
  Sha256.feed ctx "c";
  Alcotest.(check string) "chunked equals one-shot" (Sha256.hex "abc")
    (Sha256.to_hex (Sha256.finalize ctx))

let test_sha256_streaming_across_blocks () =
  let msg = String.init 200 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  Sha256.feed ctx (String.sub msg 0 63);
  Sha256.feed ctx (String.sub msg 63 2);
  Sha256.feed ctx (String.sub msg 65 135);
  Alcotest.(check string) "block-boundary chunking" (Sha256.hex msg)
    (Sha256.to_hex (Sha256.finalize ctx))

let test_sha256_finalize_once () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256.finalize: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let test_sha256_length_55_56_57 () =
  (* padding boundary cases around 56 bytes *)
  List.iter
    (fun n ->
      let msg = String.make n 'x' in
      let ctx = Sha256.init () in
      Sha256.feed ctx msg;
      Alcotest.(check string)
        (Printf.sprintf "length %d" n)
        (Sha256.hex msg)
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 55; 56; 57; 63; 64; 65 ]

(* ---- HMAC RFC 4231 vectors ---- *)

let test_hmac_rfc4231_case1 () =
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There")

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string) "case 2 (Jefe)"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  Alcotest.(check string) "case 3 (0xaa/0xdd)"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_long_key () =
  (* RFC 4231 case 6: 131-byte key is hashed down *)
  Alcotest.(check string) "case 6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "hello" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "valid tag" true (Hmac.verify ~key ~msg ~tag);
  Alcotest.(check bool) "wrong msg" false (Hmac.verify ~key ~msg:"hellO" ~tag);
  Alcotest.(check bool) "wrong key" false (Hmac.verify ~key:"Secret" ~msg ~tag);
  Alcotest.(check bool) "truncated tag" false
    (Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16))

(* ---- Sign ---- *)

let prng () = Fortress_util.Prng.create ~seed:2024

let test_sign_roundtrip () =
  let p = prng () in
  let sk, pk = Sign.generate p in
  let s = Sign.sign sk "attack at dawn" in
  Alcotest.(check bool) "verifies" true (Sign.verify pk ~msg:"attack at dawn" s);
  Alcotest.(check bool) "wrong msg rejected" false (Sign.verify pk ~msg:"attack at dusk" s)

let test_sign_cross_key_rejection () =
  let p = prng () in
  let sk1, _pk1 = Sign.generate p in
  let _sk2, pk2 = Sign.generate p in
  let s = Sign.sign sk1 "msg" in
  Alcotest.(check bool) "other key rejects" false (Sign.verify pk2 ~msg:"msg" s)

let test_sign_forgery_rejected () =
  let p = prng () in
  let _sk, pk = Sign.generate p in
  for _ = 1 to 100 do
    let forged = Sign.forge p in
    Alcotest.(check bool) "forgery rejected" false (Sign.verify pk ~msg:"msg" forged)
  done

let test_sign_public_of_secret () =
  let p = prng () in
  let sk, pk = Sign.generate p in
  Alcotest.(check bool) "fingerprint matches" true
    (Sign.equal_public pk (Sign.public_of_secret sk))

let test_sign_distinct_keys () =
  let p = prng () in
  let _, pk1 = Sign.generate p in
  let _, pk2 = Sign.generate p in
  Alcotest.(check bool) "distinct" false (Sign.equal_public pk1 pk2)

(* ---- Nonce ---- *)

let test_nonce_unique_within_source () =
  let p = prng () in
  let src = Nonce.source p in
  let ns = List.init 1000 (fun _ -> Nonce.fresh src) in
  let distinct = List.sort_uniq Nonce.compare ns in
  Alcotest.(check int) "all distinct" 1000 (List.length distinct)

let test_nonce_unique_across_sources () =
  let p = prng () in
  let s1 = Nonce.source p and s2 = Nonce.source p in
  let a = Nonce.fresh s1 and b = Nonce.fresh s2 in
  Alcotest.(check bool) "different streams" false (Nonce.equal a b)

let test_nonce_string_roundtrip () =
  let p = prng () in
  let src = Nonce.source p in
  let a = Nonce.fresh src and b = Nonce.fresh src in
  Alcotest.(check bool) "string ids differ" false (Nonce.to_string a = Nonce.to_string b)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sha256 is 32 bytes" ~count:200 string (fun s ->
        String.length (Sha256.digest s) = 32);
    Test.make ~name:"sha256 deterministic" ~count:200 string (fun s ->
        Sha256.digest s = Sha256.digest s);
    Test.make ~name:"hmac verify accepts own tag" ~count:200 (pair string string)
      (fun (key, msg) -> Hmac.verify ~key ~msg ~tag:(Hmac.mac ~key msg));
    Test.make ~name:"hmac differs per key" ~count:200 (triple string string string)
      (fun (k1, k2, msg) ->
        (* RFC 2104 pads short keys with zero bytes, so keys differing only
           by trailing NULs are the same key; compare after normalization *)
        let normalize k =
          let k = if String.length k > 64 then Sha256.digest k else k in
          k ^ String.make (64 - String.length k) '\x00'
        in
        assume (normalize k1 <> normalize k2);
        (* collision would be a catastrophic HMAC break *)
        Hmac.mac ~key:k1 msg <> Hmac.mac ~key:k2 msg);
  ]

let () =
  Alcotest.run "fortress_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty vector" `Quick test_sha256_empty;
          Alcotest.test_case "abc vector" `Quick test_sha256_abc;
          Alcotest.test_case "two-block vector" `Quick test_sha256_two_blocks;
          Alcotest.test_case "million a vector" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming" `Quick test_sha256_streaming;
          Alcotest.test_case "streaming across blocks" `Quick test_sha256_streaming_across_blocks;
          Alcotest.test_case "finalize once" `Quick test_sha256_finalize_once;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_length_55_56_57;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 case 6 long key" `Quick test_hmac_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "sign",
        [
          Alcotest.test_case "sign/verify round-trip" `Quick test_sign_roundtrip;
          Alcotest.test_case "cross-key rejection" `Quick test_sign_cross_key_rejection;
          Alcotest.test_case "forgery rejected" `Quick test_sign_forgery_rejected;
          Alcotest.test_case "public_of_secret" `Quick test_sign_public_of_secret;
          Alcotest.test_case "distinct keys" `Quick test_sign_distinct_keys;
        ] );
      ( "nonce",
        [
          Alcotest.test_case "unique within source" `Quick test_nonce_unique_within_source;
          Alcotest.test_case "unique across sources" `Quick test_nonce_unique_across_sources;
          Alcotest.test_case "string ids" `Quick test_nonce_string_roundtrip;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
