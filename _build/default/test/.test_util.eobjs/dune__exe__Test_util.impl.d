test/test_util.ml: Alcotest Array Float Fortress_util Fun Gen Histogram List Matrix Plot Prng Probability QCheck QCheck_alcotest Stats String Table Test
