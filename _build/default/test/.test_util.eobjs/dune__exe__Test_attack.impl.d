test/test_attack.ml: Alcotest Campaign Derandomizer Fortress_attack Fortress_core Fortress_defense Fortress_model Fortress_sim Fortress_util Hashtbl Knowledge List Option Pacing Printf Smr_campaign
