test/test_sim.ml: Alcotest Engine Fortress_sim Fortress_util Heap List String Trace
