test/test_model.ml: Alcotest Array Float Fortress_model Fortress_util List Markov Printf QCheck QCheck_alcotest Systems Test
