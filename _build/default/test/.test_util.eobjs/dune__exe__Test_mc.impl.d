test/test_mc.ml: Alcotest Array Float Fortress_mc Fortress_model Fortress_util List Printf Probe_level QCheck QCheck_alcotest Step_level Test Trial
