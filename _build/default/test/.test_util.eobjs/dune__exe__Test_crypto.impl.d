test/test_crypto.ml: Alcotest Char Fortress_crypto Fortress_util Hmac List Nonce Printf QCheck QCheck_alcotest Sha256 Sign String Test
