test/test_net.ml: Address Alcotest Conn Fortress_net Fortress_sim Fortress_util Latency List Network
