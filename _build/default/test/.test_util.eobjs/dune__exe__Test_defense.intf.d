test/test_defense.mli:
