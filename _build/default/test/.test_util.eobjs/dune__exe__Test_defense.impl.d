test/test_defense.ml: Alcotest Daemon Format Fortress_defense Fortress_sim Fortress_util Instance Keyspace List QCheck QCheck_alcotest String Test Threat
