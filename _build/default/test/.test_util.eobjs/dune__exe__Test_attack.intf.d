test/test_attack.mli:
