test/test_mc.mli:
