test/test_net.mli:
