test/test_replication.mli:
