open Fortress_defense
module Engine = Fortress_sim.Engine
module Prng = Fortress_util.Prng

let prng () = Prng.create ~seed:7

(* ---- Keyspace ---- *)

let test_keyspace_entropy () =
  let ks = Keyspace.of_entropy_bits 16 in
  Alcotest.(check int) "2^16 keys" 65536 (Keyspace.size ks);
  Alcotest.(check (float 1e-9)) "entropy bits" 16.0 (Keyspace.entropy_bits ks)

let test_keyspace_bounds () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Keyspace.of_entropy_bits: need 1 <= bits <= 30") (fun () ->
      ignore (Keyspace.of_entropy_bits 0));
  Alcotest.check_raises "size too small" (Invalid_argument "Keyspace.of_size: need at least 2 keys")
    (fun () -> ignore (Keyspace.of_size 1))

let test_keyspace_contains () =
  let ks = Keyspace.of_size 100 in
  Alcotest.(check bool) "0 in" true (Keyspace.contains ks 0);
  Alcotest.(check bool) "99 in" true (Keyspace.contains ks 99);
  Alcotest.(check bool) "100 out" false (Keyspace.contains ks 100);
  Alcotest.(check bool) "negative out" false (Keyspace.contains ks (-1))

let test_keyspace_random_key () =
  let ks = Keyspace.of_size 10 in
  let p = prng () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "in space" true (Keyspace.contains ks (Keyspace.random_key ks p))
  done

let test_keyspace_default () =
  Alcotest.(check int) "paper default" 65536 (Keyspace.size Keyspace.pax_aslr_32bit)

(* ---- Instance ---- *)

let test_instance_probe_semantics () =
  let ks = Keyspace.of_size 50 in
  let p = prng () in
  let inst = Instance.create ks p in
  let key = Instance.key inst in
  Alcotest.(check bool) "correct guess intrudes" true
    (Instance.probe inst ~guess:key = Instance.Intrusion);
  let wrong = (key + 1) mod 50 in
  Alcotest.(check bool) "wrong guess crashes" true
    (Instance.probe inst ~guess:wrong = Instance.Crash)

let test_instance_probe_out_of_space () =
  let ks = Keyspace.of_size 50 in
  let inst = Instance.create ks (prng ()) in
  Alcotest.check_raises "bad guess" (Invalid_argument "Instance.probe: guess outside the key space")
    (fun () -> ignore (Instance.probe inst ~guess:50))

let test_instance_rekey_changes_epoch () =
  let ks = Keyspace.of_entropy_bits 16 in
  let p = prng () in
  let inst = Instance.create ks p in
  Alcotest.(check int) "epoch 0" 0 (Instance.epoch inst);
  Instance.rekey inst p;
  Alcotest.(check int) "epoch 1" 1 (Instance.epoch inst)

let test_instance_rekey_usually_changes_key () =
  let ks = Keyspace.of_entropy_bits 16 in
  let p = prng () in
  let inst = Instance.create ks p in
  let changed = ref 0 in
  for _ = 1 to 100 do
    let before = Instance.key inst in
    Instance.rekey inst p;
    if Instance.key inst <> before then incr changed
  done;
  Alcotest.(check bool) "almost always fresh" true (!changed >= 99)

let test_instance_recover_keeps_key () =
  let ks = Keyspace.of_entropy_bits 16 in
  let inst = Instance.create ks (prng ()) in
  let before = Instance.key inst in
  Instance.recover inst;
  Alcotest.(check int) "same key" before (Instance.key inst);
  Alcotest.(check int) "epoch advanced" 1 (Instance.epoch inst)

let test_instance_schemes () =
  Alcotest.(check int) "four schemes" 4 (List.length Instance.all_schemes);
  List.iter
    (fun s ->
      let str = Format.asprintf "%a" Instance.pp_scheme s in
      match Instance.scheme_of_string str with
      | Some s' -> Alcotest.(check bool) "round-trips" true (s = s')
      | None -> Alcotest.fail "scheme name did not round-trip")
    Instance.all_schemes

(* ---- Daemon: the forking-server attack surface ---- *)

let setup_daemon ?(keys = 16) () =
  let engine = Engine.create ~prng:(Prng.create ~seed:11) () in
  let ks = Keyspace.of_size keys in
  let inst = Instance.create ks (Engine.prng engine) in
  let daemon = Daemon.create engine ~instance:inst in
  (engine, daemon)

let test_daemon_legit_request () =
  let engine, daemon = setup_daemon () in
  let reply = ref "" in
  let submit, _ =
    Daemon.accept daemon ~on_reply:(fun r -> reply := r) ~on_crash_observed:(fun () -> ())
  in
  submit (Daemon.Legit "hello");
  Engine.run engine;
  Alcotest.(check string) "echoed" "ok:hello" !reply;
  Alcotest.(check int) "served" 1 (Daemon.request_count daemon)

let test_daemon_wrong_probe_crashes_child () =
  let engine, daemon = setup_daemon () in
  let crashed = ref false in
  let key = Instance.key (Daemon.instance daemon) in
  let wrong = (key + 1) mod 16 in
  let submit, is_open =
    Daemon.accept daemon ~on_reply:(fun _ -> ()) ~on_crash_observed:(fun () -> crashed := true)
  in
  submit (Daemon.Probe wrong);
  Engine.run engine;
  Alcotest.(check bool) "attacker observes the crash" true !crashed;
  Alcotest.(check bool) "connection closed" false (is_open ());
  Alcotest.(check int) "crash counted" 1 (Daemon.crash_count daemon);
  Alcotest.(check bool) "daemon itself survives" false (Daemon.compromised daemon)

let test_daemon_correct_probe_compromises () =
  let engine, daemon = setup_daemon () in
  let reply = ref "" in
  let key = Instance.key (Daemon.instance daemon) in
  let submit, is_open =
    Daemon.accept daemon ~on_reply:(fun r -> reply := r) ~on_crash_observed:(fun () -> ())
  in
  submit (Daemon.Probe key);
  Engine.run engine;
  Alcotest.(check bool) "compromised" true (Daemon.compromised daemon);
  Alcotest.(check string) "attacker gets a shell" "shell" !reply;
  Alcotest.(check bool) "connection stays open" true (is_open ())

let test_daemon_forks_replacement () =
  let engine, daemon = setup_daemon () in
  let key = Instance.key (Daemon.instance daemon) in
  let wrong = (key + 1) mod 16 in
  let submit, _ =
    Daemon.accept daemon ~on_reply:(fun _ -> ()) ~on_crash_observed:(fun () -> ())
  in
  submit (Daemon.Probe wrong);
  Engine.run engine;
  Alcotest.(check int) "forked a replacement" 2 (Daemon.fork_count daemon);
  (* a new connection works after the crash *)
  let reply = ref "" in
  let submit2, _ =
    Daemon.accept daemon ~on_reply:(fun r -> reply := r) ~on_crash_observed:(fun () -> ())
  in
  submit2 (Daemon.Legit "again");
  Engine.run engine;
  Alcotest.(check string) "still serving" "ok:again" !reply

let test_daemon_rekey_clears_compromise () =
  let engine, daemon = setup_daemon () in
  let key = Instance.key (Daemon.instance daemon) in
  let submit, _ =
    Daemon.accept daemon ~on_reply:(fun _ -> ()) ~on_crash_observed:(fun () -> ())
  in
  submit (Daemon.Probe key);
  Engine.run engine;
  Alcotest.(check bool) "compromised" true (Daemon.compromised daemon);
  Daemon.rekey daemon (Engine.prng engine);
  Alcotest.(check bool) "rekey evicts the attacker" false (Daemon.compromised daemon)

let test_daemon_recover_clears_compromise_same_key () =
  let engine, daemon = setup_daemon () in
  let key = Instance.key (Daemon.instance daemon) in
  let submit, _ =
    Daemon.accept daemon ~on_reply:(fun _ -> ()) ~on_crash_observed:(fun () -> ())
  in
  submit (Daemon.Probe key);
  Engine.run engine;
  Daemon.recover daemon;
  Alcotest.(check bool) "attacker evicted" false (Daemon.compromised daemon);
  (* but with proactive recovery the key is unchanged: the attacker walks
     straight back in *)
  let submit2, _ =
    Daemon.accept daemon ~on_reply:(fun _ -> ()) ~on_crash_observed:(fun () -> ())
  in
  submit2 (Daemon.Probe key);
  Engine.run engine;
  Alcotest.(check bool) "recovery without rekey is no defence" true (Daemon.compromised daemon)

let test_daemon_exhaustive_derandomization () =
  (* the Shacham-style phase-1 loop over a tiny key space *)
  let engine, daemon = setup_daemon ~keys:32 () in
  let compromised_after = ref (-1) in
  let rec probe guess =
    if guess < 32 && !compromised_after < 0 then begin
      let submit, _ =
        Daemon.accept daemon
          ~on_reply:(fun r -> if r = "shell" then compromised_after := guess)
          ~on_crash_observed:(fun () -> probe (guess + 1))
      in
      submit (Daemon.Probe guess)
    end
  in
  probe 0;
  Engine.run engine;
  Alcotest.(check bool) "key found within the space" true (!compromised_after >= 0);
  Alcotest.(check int) "every miss crashed a child" !compromised_after
    (Daemon.crash_count daemon)

let test_request_codec () =
  let cases = [ Daemon.Probe 42; Daemon.Legit "body" ] in
  List.iter
    (fun r ->
      match Daemon.decode_request (Daemon.encode_request r) with
      | Some r' -> Alcotest.(check bool) "round-trip" true (r = r')
      | None -> Alcotest.fail "codec failed")
    cases;
  Alcotest.(check bool) "garbage rejected" true (Daemon.decode_request "nonsense" = None);
  Alcotest.(check bool) "bad probe rejected" true (Daemon.decode_request "probe:xyz" = None)

(* ---- Threat matrix (paper section 2.1) ---- *)

let ks16 = Keyspace.of_entropy_bits 16

let test_threat_wxorx_bypassed () =
  (* W^X alone: injection is dead, but return-to-libc walks straight in *)
  let stack = [ Threat.W_xor_x ] in
  let inj = Threat.assess stack Threat.Code_injection in
  Alcotest.(check bool) "injection blocked" true inj.Threat.blocked;
  match Threat.best_vector stack with
  | Some a ->
      Alcotest.(check bool) "attacker switches to ret2libc" true
        (a.Threat.vector = Threat.Return_to_libc);
      Alcotest.(check (float 0.0)) "no key needed" 1.0 a.Threat.effective_keys
  | None -> Alcotest.fail "ret2libc should remain"

let test_threat_isr_and_heap_also_bypassed () =
  (* the paper: W^X, ISR and heap randomization are all bypassed by
     return-to-libc *)
  List.iter
    (fun stack ->
      match Threat.best_vector stack with
      | Some a ->
          Alcotest.(check bool) "ret2libc unimpeded" true
            (a.Threat.vector = Threat.Return_to_libc && a.Threat.effective_keys = 1.0)
      | None -> Alcotest.fail "should not be blocked")
    [ [ Threat.Isr ks16 ]; [ Threat.Heap_randomization ks16 ];
      [ Threat.W_xor_x; Threat.Isr ks16; Threat.Heap_randomization ks16 ] ]

let test_threat_aslr_degrades_both () =
  let stack = [ Threat.Aslr ks16 ] in
  List.iter
    (fun vector ->
      let a = Threat.assess stack vector in
      Alcotest.(check bool) "keyed, not blocked" true
        ((not a.Threat.blocked) && a.Threat.effective_keys = 65536.0))
    Threat.all_vectors

let test_threat_layering_multiplies_entropy () =
  (* stacking ASLR and GOT randomization: the attacker must guess both
     keys to land a return-to-libc *)
  let stack = [ Threat.W_xor_x; Threat.Aslr ks16; Threat.Got_randomization ks16 ] in
  match Threat.best_vector stack with
  | Some a ->
      Alcotest.(check bool) "only ret2libc remains" true
        (a.Threat.vector = Threat.Return_to_libc);
      Alcotest.(check (float 1.0)) "32 bits effective" (65536.0 *. 65536.0)
        a.Threat.effective_keys
  | None -> Alcotest.fail "ret2libc should remain keyed, not blocked"

let test_threat_alpha_against () =
  Alcotest.(check (float 1e-12)) "paper operating point: omega/chi"
    (256.0 /. 65536.0)
    (Threat.alpha_against [ Threat.Aslr ks16 ] ~omega:256);
  Alcotest.(check (float 0.0)) "undefended: certain compromise" 1.0
    (Threat.alpha_against [] ~omega:256);
  Alcotest.(check (float 0.0)) "w^x alone does not slow ret2libc" 1.0
    (Threat.alpha_against [ Threat.W_xor_x ] ~omega:256)

let test_threat_matrix_table () =
  let table =
    Threat.matrix_table
      [ []; [ Threat.W_xor_x ]; [ Threat.Aslr ks16 ];
        [ Threat.W_xor_x; Threat.Aslr ks16; Threat.Got_randomization ks16 ] ]
  in
  Alcotest.(check bool) "renders" true
    (String.length (Fortress_util.Table.render table) > 0)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"probe intrudes iff guess equals key" ~count:500
      (pair (int_range 2 1000) small_int)
      (fun (size, seed) ->
        let ks = Keyspace.of_size size in
        let p = Prng.create ~seed in
        let inst = Instance.create ks p in
        let guess = Prng.int p ~bound:size in
        let outcome = Instance.probe inst ~guess in
        (outcome = Instance.Intrusion) = (guess = Instance.key inst));
    Test.make ~name:"rekey keeps key inside the space" ~count:500 small_int (fun seed ->
        let ks = Keyspace.of_size 17 in
        let p = Prng.create ~seed in
        let inst = Instance.create ks p in
        Instance.rekey inst p;
        Keyspace.contains ks (Instance.key inst));
  ]

let () =
  Alcotest.run "fortress_defense"
    [
      ( "keyspace",
        [
          Alcotest.test_case "entropy" `Quick test_keyspace_entropy;
          Alcotest.test_case "bounds" `Quick test_keyspace_bounds;
          Alcotest.test_case "contains" `Quick test_keyspace_contains;
          Alcotest.test_case "random key" `Quick test_keyspace_random_key;
          Alcotest.test_case "paper default" `Quick test_keyspace_default;
        ] );
      ( "instance",
        [
          Alcotest.test_case "probe semantics" `Quick test_instance_probe_semantics;
          Alcotest.test_case "probe out of space" `Quick test_instance_probe_out_of_space;
          Alcotest.test_case "rekey epoch" `Quick test_instance_rekey_changes_epoch;
          Alcotest.test_case "rekey freshness" `Quick test_instance_rekey_usually_changes_key;
          Alcotest.test_case "recover keeps key" `Quick test_instance_recover_keeps_key;
          Alcotest.test_case "schemes round-trip" `Quick test_instance_schemes;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "legit request" `Quick test_daemon_legit_request;
          Alcotest.test_case "wrong probe crashes child" `Quick test_daemon_wrong_probe_crashes_child;
          Alcotest.test_case "correct probe compromises" `Quick test_daemon_correct_probe_compromises;
          Alcotest.test_case "forks replacement" `Quick test_daemon_forks_replacement;
          Alcotest.test_case "rekey evicts attacker" `Quick test_daemon_rekey_clears_compromise;
          Alcotest.test_case "recovery without rekey" `Quick
            test_daemon_recover_clears_compromise_same_key;
          Alcotest.test_case "exhaustive de-randomization" `Quick
            test_daemon_exhaustive_derandomization;
          Alcotest.test_case "request codec" `Quick test_request_codec;
        ] );
      ( "threat-matrix",
        [
          Alcotest.test_case "w^x bypassed by ret2libc" `Quick test_threat_wxorx_bypassed;
          Alcotest.test_case "isr and heap-rand bypassed" `Quick
            test_threat_isr_and_heap_also_bypassed;
          Alcotest.test_case "aslr degrades both vectors" `Quick test_threat_aslr_degrades_both;
          Alcotest.test_case "layering multiplies entropy" `Quick
            test_threat_layering_multiplies_entropy;
          Alcotest.test_case "alpha against stacks" `Quick test_threat_alpha_against;
          Alcotest.test_case "matrix table" `Quick test_threat_matrix_table;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
