open Fortress_model
module Matrix = Fortress_util.Matrix
module Prng = Fortress_util.Prng

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ---- Markov chains ---- *)

let two_state p =
  (* safe -> compromised with probability p per step *)
  Markov.create ~labels:[| "safe"; "compromised" |] ~absorbing:[| false; true |]
    (Matrix.of_rows [| [| 1.0 -. p; p |]; [| 0.0; 1.0 |] |])

let test_markov_geometric () =
  let chain = two_state 0.25 in
  check_close 1e-9 "EL = 1/p" 4.0 (Markov.expected_steps chain ~start:0)

let test_markov_absorbing_start () =
  let chain = two_state 0.25 in
  check_float "already absorbed" 0.0 (Markov.expected_steps chain ~start:1)

let test_markov_validation () =
  Alcotest.check_raises "rows must sum to 1"
    (Invalid_argument "Markov.create: row does not sum to 1") (fun () ->
      ignore
        (Markov.create ~labels:[| "a"; "b" |] ~absorbing:[| false; true |]
           (Matrix.of_rows [| [| 0.5; 0.4 |]; [| 0.0; 1.0 |] |])));
  Alcotest.check_raises "absorbing must self-loop"
    (Invalid_argument "Markov.create: absorbing state must self-loop") (fun () ->
      ignore
        (Markov.create ~labels:[| "a"; "b" |] ~absorbing:[| false; true |]
           (Matrix.of_rows [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |])))

let test_markov_three_state () =
  (* gambler's chain: 0 -> 1 -> absorbed, each w.p. 1/2, no skipping *)
  let chain =
    Markov.create ~labels:[| "s0"; "s1"; "done" |] ~absorbing:[| false; false; true |]
      (Matrix.of_rows
         [| [| 0.5; 0.5; 0.0 |]; [| 0.0; 0.5; 0.5 |]; [| 0.0; 0.0; 1.0 |] |])
  in
  (* E[steps from s0] = E[geom(1/2)] + E[geom(1/2)] = 4 *)
  check_close 1e-9 "additive stages" 4.0 (Markov.expected_steps chain ~start:0);
  check_close 1e-9 "one stage left" 2.0 (Markov.expected_steps chain ~start:1)

let test_markov_absorption_probabilities () =
  (* two absorbing outcomes, equally likely *)
  let chain =
    Markov.create ~labels:[| "s"; "a"; "b" |] ~absorbing:[| false; true; true |]
      (Matrix.of_rows
         [| [| 0.0; 0.5; 0.5 |]; [| 0.0; 1.0; 0.0 |]; [| 0.0; 0.0; 1.0 |] |])
  in
  let probs = Markov.absorption_probabilities chain ~start:0 in
  check_float "p(a)" 0.5 probs.(1);
  check_float "p(b)" 0.5 probs.(2);
  check_float "transient position zero" 0.0 probs.(0)

let test_markov_simulation_agrees () =
  let chain = two_state 0.2 in
  let prng = Prng.create ~seed:1 in
  let acc = Fortress_util.Stats.create () in
  for _ = 1 to 20_000 do
    match Markov.simulate chain ~start:0 ~prng ~max_steps:10_000 with
    | Some steps -> Fortress_util.Stats.add acc (float_of_int steps)
    | None -> Alcotest.fail "should absorb"
  done;
  let analytic = Markov.expected_steps chain ~start:0 in
  let mc = Fortress_util.Stats.mean acc in
  Alcotest.(check bool) "simulation within 3%" true (Float.abs (mc -. analytic) /. analytic < 0.03)

let test_markov_inhomogeneous_constant_matches () =
  (* a constant-hazard inhomogeneous chain must equal the homogeneous one *)
  let p = 0.1 in
  let step_matrix _ = Matrix.of_rows [| [| 1.0 -. p; p |] |] in
  let el = Markov.expected_steps_inhomogeneous ~transient:1 ~start:0 ~step_matrix () in
  check_close 1e-6 "matches 1/p" 10.0 el

let test_markov_inhomogeneous_deterministic () =
  (* certain absorption at step 3 *)
  let step_matrix k =
    if k < 3 then Matrix.of_rows [| [| 1.0; 0.0 |] |] else Matrix.of_rows [| [| 0.0; 1.0 |] |]
  in
  let el = Markov.expected_steps_inhomogeneous ~transient:1 ~start:0 ~step_matrix () in
  check_float "absorbs at 3" 3.0 el

let test_markov_reproduces_po_closed_forms () =
  (* build the two-state absorbing chain from each PO one-step law and
     verify the fundamental-matrix lifetime equals the closed form — the
     chain machinery and the formulas must be two views of one model *)
  let alpha = 4e-3 and kappa = 0.6 in
  List.iter
    (fun (label, p, closed_form) ->
      let chain = two_state p in
      let via_chain = Markov.expected_steps chain ~start:0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: chain %.4g vs closed form %.4g" label via_chain closed_form)
        true
        (Float.abs (via_chain -. closed_form) /. closed_form < 1e-9))
    [
      ("s1po", Systems.s1_po_step ~alpha, Systems.s1_po ~alpha);
      ("s0po", Systems.s0_po_step ~alpha, Systems.s0_po ~alpha);
      ("s2po", Systems.s2_po_step ~alpha ~kappa (), Systems.s2_po ~alpha ~kappa ());
    ]

(* ---- hazards ---- *)

let test_so_hazard_monotone () =
  let alpha = 1e-3 in
  let prev = ref 0.0 in
  for i = 1 to 900 do
    let h = Systems.so_hazard ~alpha i in
    Alcotest.(check bool) "non-decreasing" true (h >= !prev);
    Alcotest.(check bool) "in [0,1]" true (h >= 0.0 && h <= 1.0);
    prev := h
  done

let test_so_hazard_first_step () =
  check_float "step 1 is alpha" 1e-3 (Systems.so_hazard ~alpha:1e-3 1)

let test_so_hazard_exhaustion () =
  (* by step ~1/alpha the key space is gone and the hazard saturates *)
  check_float "saturates at 1" 1.0 (Systems.so_hazard ~alpha:0.01 101)

(* ---- one-step laws ---- *)

let test_s1_po_step () = check_float "identity" 0.004 (Systems.s1_po_step ~alpha:0.004)

let test_s0_po_step_formula () =
  let alpha = 0.01 in
  let expected =
    1.0 -. ((1.0 -. alpha) ** 4.0) -. (4.0 *. alpha *. ((1.0 -. alpha) ** 3.0))
  in
  check_close 1e-12 "binomial >= 2 of 4" expected (Systems.s0_po_step ~alpha)

let test_s2_po_step_kappa_zero_next_step () =
  (* with kappa = 0 and no launch pad, only the all-proxies event remains *)
  let alpha = 0.01 in
  let p = Systems.s2_po_step ~launchpad:Systems.Next_step ~alpha ~kappa:0.0 () in
  check_close 1e-12 "alpha^3" (alpha ** 3.0) p

let test_s2_po_step_monotone_kappa () =
  let alpha = 0.005 in
  let prev = ref 0.0 in
  List.iter
    (fun kappa ->
      let p = Systems.s2_po_step ~alpha ~kappa () in
      Alcotest.(check bool) "increasing in kappa" true (p >= !prev);
      prev := p)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let test_s2_po_step_launchpad_ordering () =
  let alpha = 0.01 and kappa = 0.5 in
  let p lp = Systems.s2_po_step ~launchpad:lp ~alpha ~kappa () in
  Alcotest.(check bool) "Full is the upper bound" true (p Systems.Full >= p Systems.Remaining);
  Alcotest.(check bool) "Next_step is the lower bound" true
    (p Systems.Remaining >= p Systems.Next_step)

(* ---- expected lifetimes ---- *)

let test_el_geometric_consistency () =
  let alpha = 2e-3 in
  check_close 1e-6 "S1PO = 1/alpha" (1.0 /. alpha) (Systems.s1_po ~alpha);
  check_close 1e-6 "S0PO = 1/p" (1.0 /. Systems.s0_po_step ~alpha) (Systems.s0_po ~alpha)

let test_s1_so_approximation () =
  (* sampling without replacement: the key is uniform over 1/alpha steps of
     exposure, so EL ~ 1/(2 alpha) *)
  let alpha = 1e-3 in
  let el = Systems.s1_so ~alpha in
  check_close 10.0 "about half the horizon" 500.0 el

let test_s0_so_below_s1_so () =
  List.iter
    (fun alpha ->
      Alcotest.(check bool) "S1SO outlives S0SO" true
        (Systems.s1_so ~alpha > Systems.s0_so ~alpha))
    [ 1e-4; 1e-3; 1e-2 ]

let test_paper_trend_po_beats_so () =
  List.iter
    (fun alpha ->
      Alcotest.(check bool) "S1PO outlives S1SO" true
        (Systems.s1_po ~alpha > Systems.s1_so ~alpha);
      Alcotest.(check bool) "S2PO outlives S1SO" true
        (Systems.s2_po ~alpha ~kappa:0.5 () > Systems.s1_so ~alpha))
    [ 1e-4; 1e-3; 1e-2 ]

let test_paper_trend_s2po_vs_s1po () =
  List.iter
    (fun alpha ->
      Alcotest.(check bool) "S2PO outlives S1PO at kappa 0.5" true
        (Systems.s2_po ~alpha ~kappa:0.5 () > Systems.s1_po ~alpha);
      Alcotest.(check bool) "S2PO loses at kappa 1" true
        (Systems.s2_po ~alpha ~kappa:1.0 () < Systems.s1_po ~alpha))
    [ 1e-4; 1e-3; 1e-2 ]

let test_paper_trend_s0po_dominates () =
  List.iter
    (fun alpha ->
      List.iter
        (fun kappa ->
          Alcotest.(check bool) "S0PO outlives S2PO for kappa > 0" true
            (Systems.s0_po ~alpha > Systems.s2_po ~alpha ~kappa ()))
        [ 0.1; 0.5; 1.0 ])
    [ 1e-4; 1e-3; 1e-2 ]

let test_s2po_kappa_zero_near_unbeatable () =
  (* at kappa = 0 with Next_step only alpha^np remains: S2PO ~ S0PO scale *)
  let alpha = 1e-3 in
  let el = Systems.s2_po ~launchpad:Systems.Next_step ~alpha ~kappa:0.0 () in
  Alcotest.(check bool) "huge lifetime" true (el > 1e8)

let test_s2_so_below_s2_po () =
  List.iter
    (fun alpha ->
      Alcotest.(check bool) "re-randomization helps FORTRESS too" true
        (Systems.s2_po ~alpha ~kappa:0.5 () > Systems.s2_so ~alpha ~kappa:0.5 ()))
    [ 1e-3; 1e-2 ]

let test_el_monotone_alpha () =
  let els sys = List.map (fun alpha -> Systems.expected_lifetime sys ~alpha ~kappa:0.5) in
  List.iter
    (fun sys ->
      let values = els sys [ 1e-4; 1e-3; 1e-2 ] in
      match values with
      | [ a; b; c ] ->
          Alcotest.(check bool) "decreasing in alpha" true (a > b && b > c)
      | _ -> assert false)
    Systems.all_systems

let test_budgeted_attacker_concentrates () =
  let total = 256.0 and chi = 65536.0 in
  (* with a usable indirect channel, proxy capture (an O(alpha^2) route) is
     a waste of budget: the optimum is all-indirect *)
  let x_half, _ = Systems.s2_po_worst_case ~total ~chi ~kappa:0.5 () in
  Alcotest.(check bool) "all-indirect at kappa 0.5" true (x_half < 0.05);
  (* with kappa = 0 the indirect channel is dead: all-direct *)
  let x_zero, _ = Systems.s2_po_worst_case ~total ~chi ~kappa:0.0 () in
  Alcotest.(check bool) "all-direct at kappa 0" true (x_zero > 0.95)

let test_budgeted_attacker_beats_per_channel_model () =
  (* concentrating one budget is at least as strong as splitting it evenly
     across np+1 fixed channels *)
  let total = 256.0 and chi = 65536.0 in
  let alpha = total /. 4.0 /. chi in
  List.iter
    (fun kappa ->
      let _, worst = Systems.s2_po_worst_case ~total ~chi ~kappa () in
      Alcotest.(check bool) "worst-case is at most the per-channel EL" true
        (worst <= Systems.s2_po ~alpha ~kappa () +. 1e-6))
    [ 0.0; 0.25; 0.5; 1.0 ]

let test_budgeted_step_bounds () =
  List.iter
    (fun x ->
      let p =
        Systems.s2_po_budgeted_step ~total:100.0 ~chi:4096.0 ~kappa:0.7 ~direct_fraction:x ()
      in
      Alcotest.(check bool) "probability" true (p >= 0.0 && p <= 1.0))
    [ 0.0; 0.3; 0.7; 1.0 ];
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Systems.s2_po_budgeted_step: direct_fraction in [0,1]") (fun () ->
      ignore
        (Systems.s2_po_budgeted_step ~total:10.0 ~chi:100.0 ~kappa:0.5 ~direct_fraction:1.5 ()))

let test_s2_smr_dominates_everything () =
  (* fortifying the SMR tier composes the two defences: the attacker needs
     f+1 simultaneous intrusions AND each one is attenuated by kappa *)
  List.iter
    (fun alpha ->
      List.iter
        (fun kappa ->
          let composed = Systems.s2_smr_po ~alpha ~kappa () in
          Alcotest.(check bool) "beats bare S0PO" true
            (composed >= Systems.s0_po ~alpha *. 0.99);
          Alcotest.(check bool) "beats FORTRESS-over-PB" true
            (composed > Systems.s2_po ~alpha ~kappa ()))
        [ 0.1; 0.5; 0.9 ])
    [ 1e-4; 1e-3; 1e-2 ]

let test_s2_smr_kappa_scaling () =
  (* EL ~ S0PO / kappa^2 while the indirect channel dominates *)
  let alpha = 1e-3 in
  let at kappa = Systems.s2_smr_po ~alpha ~kappa () in
  let ratio = at 0.5 /. at 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "halving kappa quadruples the lifetime (ratio %.2f)" ratio)
    true
    (ratio > 3.5 && ratio < 4.5)

let test_s2_smr_matches_s0po_at_kappa_one () =
  let alpha = 1e-3 in
  let composed = Systems.s2_smr_po ~launchpad:Systems.Next_step ~alpha ~kappa:1.0 () in
  let bare = Systems.s0_po ~alpha in
  Alcotest.(check bool) "kappa=1, no launch pads: proxies buy nothing" true
    (Float.abs (composed -. bare) /. bare < 0.01)

let test_s2_smr_validation () =
  Alcotest.check_raises "bad shape" (Invalid_argument "Systems.s2_smr_po_step: bad tier shape")
    (fun () -> ignore (Systems.s2_smr_po_step ~f:4 ~n:4 ~alpha:1e-3 ~kappa:0.5 ()))

let test_system_string_roundtrip () =
  List.iter
    (fun sys ->
      match Systems.system_of_string (Systems.system_to_string sys) with
      | Some s -> Alcotest.(check bool) "round-trips" true (s = sys)
      | None -> Alcotest.fail "missing system name")
    Systems.all_systems;
  Alcotest.(check bool) "unknown rejected" true (Systems.system_of_string "zzz" = None)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"s2_po_step within [0,1]" ~count:300
      (pair (float_range 0.0 0.05) (float_range 0.0 1.0))
      (fun (alpha, kappa) ->
        let p = Systems.s2_po_step ~alpha ~kappa () in
        p >= 0.0 && p <= 1.0);
    Test.make ~name:"next-step: more proxies live at least as long" ~count:100
      (pair (float_range 1e-4 0.01) (float_range 0.0 1.0))
      (fun (alpha, kappa) ->
        Systems.s2_po ~launchpad:Systems.Next_step ~np:4 ~alpha ~kappa ()
        >= Systems.s2_po ~launchpad:Systems.Next_step ~np:3 ~alpha ~kappa () -. 1e-6);
    Test.make ~name:"within-step: more proxies are more attack surface" ~count:100
      (pair (float_range 1e-4 0.01) (float_range 0.0 1.0))
      (fun (alpha, kappa) ->
        Systems.s2_po ~launchpad:Systems.Remaining ~np:4 ~alpha ~kappa ()
        <= Systems.s2_po ~launchpad:Systems.Remaining ~np:3 ~alpha ~kappa () +. 1e-6);
    Test.make ~name:"markov geometric equals closed form" ~count:50
      (float_range 0.01 0.9)
      (fun p ->
        let chain = two_state p in
        Float.abs (Markov.expected_steps chain ~start:0 -. (1.0 /. p)) < 1e-6);
  ]

let () =
  Alcotest.run "fortress_model"
    [
      ( "markov",
        [
          Alcotest.test_case "geometric chain" `Quick test_markov_geometric;
          Alcotest.test_case "absorbing start" `Quick test_markov_absorbing_start;
          Alcotest.test_case "validation" `Quick test_markov_validation;
          Alcotest.test_case "three-state chain" `Quick test_markov_three_state;
          Alcotest.test_case "absorption probabilities" `Quick test_markov_absorption_probabilities;
          Alcotest.test_case "simulation agrees" `Slow test_markov_simulation_agrees;
          Alcotest.test_case "inhomogeneous constant" `Quick
            test_markov_inhomogeneous_constant_matches;
          Alcotest.test_case "inhomogeneous deterministic" `Quick
            test_markov_inhomogeneous_deterministic;
          Alcotest.test_case "reproduces PO closed forms" `Quick
            test_markov_reproduces_po_closed_forms;
        ] );
      ( "hazards",
        [
          Alcotest.test_case "SO hazard monotone" `Quick test_so_hazard_monotone;
          Alcotest.test_case "SO hazard first step" `Quick test_so_hazard_first_step;
          Alcotest.test_case "SO hazard exhaustion" `Quick test_so_hazard_exhaustion;
        ] );
      ( "step laws",
        [
          Alcotest.test_case "s1po identity" `Quick test_s1_po_step;
          Alcotest.test_case "s0po binomial" `Quick test_s0_po_step_formula;
          Alcotest.test_case "s2po kappa 0 next-step" `Quick test_s2_po_step_kappa_zero_next_step;
          Alcotest.test_case "s2po monotone in kappa" `Quick test_s2_po_step_monotone_kappa;
          Alcotest.test_case "launchpad ordering" `Quick test_s2_po_step_launchpad_ordering;
        ] );
      ( "lifetimes",
        [
          Alcotest.test_case "geometric consistency" `Quick test_el_geometric_consistency;
          Alcotest.test_case "s1so half horizon" `Quick test_s1_so_approximation;
          Alcotest.test_case "s1so beats s0so" `Quick test_s0_so_below_s1_so;
          Alcotest.test_case "PO beats SO" `Quick test_paper_trend_po_beats_so;
          Alcotest.test_case "s2po vs s1po crossover" `Quick test_paper_trend_s2po_vs_s1po;
          Alcotest.test_case "s0po dominates" `Quick test_paper_trend_s0po_dominates;
          Alcotest.test_case "s2po kappa 0" `Quick test_s2po_kappa_zero_near_unbeatable;
          Alcotest.test_case "s2so below s2po" `Quick test_s2_so_below_s2_po;
          Alcotest.test_case "EL monotone in alpha" `Quick test_el_monotone_alpha;
          Alcotest.test_case "budgeted attacker concentrates" `Quick
            test_budgeted_attacker_concentrates;
          Alcotest.test_case "budgeted beats per-channel" `Quick
            test_budgeted_attacker_beats_per_channel_model;
          Alcotest.test_case "budgeted step bounds" `Quick test_budgeted_step_bounds;
          Alcotest.test_case "fortified SMR dominates" `Quick test_s2_smr_dominates_everything;
          Alcotest.test_case "fortified SMR kappa scaling" `Quick test_s2_smr_kappa_scaling;
          Alcotest.test_case "fortified SMR at kappa 1" `Quick
            test_s2_smr_matches_s0po_at_kappa_one;
          Alcotest.test_case "fortified SMR validation" `Quick test_s2_smr_validation;
          Alcotest.test_case "system names round-trip" `Quick test_system_string_roundtrip;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
