(** Bounded event trace for simulation debugging and example output.

    The trace keeps the most recent [capacity] entries plus named counters
    that are never evicted, so long simulations can still report aggregate
    event counts. *)

type entry = { time : float; label : string; detail : string }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 10_000 entries. *)

val record : t -> time:float -> label:string -> string -> unit
val incr : t -> string -> unit
(** Bump the named counter by one. *)

val counter : t -> string -> int
val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Number of retained entries (at most [capacity]). *)

val recorded : t -> int
(** Total entries ever recorded, including evicted ones. *)

val pp_entry : Format.formatter -> entry -> unit
val dump : ?limit:int -> t -> string
(** Render the last [limit] (default all retained) entries. *)
