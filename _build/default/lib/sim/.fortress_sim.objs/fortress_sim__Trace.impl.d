lib/sim/trace.ml: Array Buffer Format Hashtbl List Option String
