lib/sim/engine.ml: Fortress_util Heap List Trace
