lib/sim/heap.mli:
