lib/sim/engine.mli: Fortress_util Trace
