(** Binary min-heap keyed by [(priority, sequence)], giving stable FIFO
    ordering among events scheduled for the same instant. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> seq:int -> 'a -> unit
(** Insert an element; [seq] breaks priority ties (lower first). *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum; [None] when empty. *)

val peek : 'a t -> (float * int * 'a) option
val clear : 'a t -> unit
