type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b = a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let data = Array.make ncap entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority ~seq value =
  let entry = { priority; seq; value } in
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.priority, top.seq, top.value)
  end

let peek t =
  if t.size = 0 then None
  else
    let top = t.data.(0) in
    Some (top.priority, top.seq, top.value)

let clear t =
  t.data <- [||];
  t.size <- 0
