type entry = { time : float; label : string; detail : string }

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;
  mutable recorded : int;
  counters : (string, int) Hashtbl.t;
}

let create ?(capacity = 10_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; recorded = 0; counters = Hashtbl.create 16 }

let record t ~time ~label detail =
  t.ring.(t.next) <- Some { time; label; detail };
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1

let incr t name =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
  Hashtbl.replace t.counters name (current + 1)

let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)

let counters t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entries t =
  let retained = min t.recorded t.capacity in
  let start = if t.recorded <= t.capacity then 0 else t.next in
  List.init retained (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let length t = min t.recorded t.capacity
let recorded t = t.recorded

let pp_entry ppf e = Format.fprintf ppf "[%10.4f] %-18s %s" e.time e.label e.detail

let dump ?limit t =
  let es = entries t in
  let es =
    match limit with
    | None -> es
    | Some n ->
        let len = List.length es in
        if len <= n then es else List.filteri (fun i _ -> i >= len - n) es
  in
  let buf = Buffer.create 1024 in
  List.iter (fun e -> Buffer.add_string buf (Format.asprintf "%a@." pp_entry e)) es;
  Buffer.contents buf
