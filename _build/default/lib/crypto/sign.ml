type secret_key = string
type public_key = string (* SHA-256 fingerprint of the secret *)
type signature = string

let registry : (public_key, secret_key) Hashtbl.t = Hashtbl.create 64

let equal_public = String.equal
let compare_public = String.compare
let public_to_hex = Sha256.to_hex
let pp_public ppf pk = Format.pp_print_string ppf (String.sub (public_to_hex pk) 0 12)

let signature_to_hex = Sha256.to_hex
let equal_signature = String.equal

let generate prng =
  let buf = Bytes.create 32 in
  for i = 0 to 3 do
    Bytes.set_int64_be buf (8 * i) (Fortress_util.Prng.bits64 prng)
  done;
  let secret = Bytes.to_string buf in
  let public = Sha256.digest secret in
  Hashtbl.replace registry public secret;
  (secret, public)

let public_of_secret secret = Sha256.digest secret

let sign secret msg = Hmac.mac ~key:secret msg

let verify public ~msg signature =
  match Hashtbl.find_opt registry public with
  | None -> false
  | Some secret -> Hmac.verify ~key:secret ~msg ~tag:signature

let forge prng =
  let buf = Bytes.create 32 in
  for i = 0 to 3 do
    Bytes.set_int64_be buf (8 * i) (Fortress_util.Prng.bits64 prng)
  done;
  Bytes.to_string buf
