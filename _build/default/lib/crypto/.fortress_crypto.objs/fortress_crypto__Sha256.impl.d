lib/crypto/sha256.ml: Array Buffer Bytes Char Int32 Int64 Printf String
