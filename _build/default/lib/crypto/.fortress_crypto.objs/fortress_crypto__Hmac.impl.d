lib/crypto/hmac.ml: Char Sha256 String
