lib/crypto/nonce.ml: Format Fortress_util Hashtbl Int Int64 Printf
