lib/crypto/nonce.mli: Format Fortress_util
