lib/crypto/hmac.mli:
