lib/crypto/sign.mli: Format Fortress_util
