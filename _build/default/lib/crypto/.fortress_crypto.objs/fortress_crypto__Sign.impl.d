lib/crypto/sign.ml: Bytes Format Fortress_util Hashtbl Hmac Sha256 String
