type t = { prefix : int64; counter : int }

let equal a b = Int64.equal a.prefix b.prefix && Int.equal a.counter b.counter

let compare a b =
  match Int64.compare a.prefix b.prefix with 0 -> Int.compare a.counter b.counter | c -> c

let hash a = Hashtbl.hash a
let to_string a = Printf.sprintf "%Lx-%d" a.prefix a.counter
let pp ppf a = Format.pp_print_string ppf (to_string a)

type source = { stream : int64; mutable next : int }

let source prng = { stream = Fortress_util.Prng.bits64 prng; next = 0 }

let fresh s =
  let n = { prefix = s.stream; counter = s.next } in
  s.next <- s.next + 1;
  n
