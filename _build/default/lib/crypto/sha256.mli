(** Pure-OCaml SHA-256 (FIPS 180-4).

    Used for message digests inside the simulated signature scheme. The
    implementation is validated in the test suite against the NIST vectors
    for "", "abc", and the 448-bit two-block message. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val finalize : ctx -> string
(** Return the 32-byte raw digest and invalidate the context (further
    [feed]/[finalize] raises [Invalid_argument]). *)

val digest : string -> string
(** One-shot raw 32-byte digest. *)

val hex : string -> string
(** One-shot lowercase hex digest (64 characters). *)

val to_hex : string -> string
(** Hex-encode arbitrary bytes. *)
