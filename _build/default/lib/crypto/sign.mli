(** Simulated public-key signatures.

    The paper's protocol needs servers and proxies to sign responses and
    clients to verify a proxy signature over a server signature. No
    asymmetric-crypto library is available in this environment, so we
    substitute an HMAC-based scheme with a process-local verification
    registry: generating a keypair registers the MAC secret under its public
    fingerprint, [sign] MACs with the secret, and [verify] looks the secret
    up by fingerprint. The security property the protocol relies on is
    preserved inside the simulation: a principal that does not hold the
    secret key cannot mint a signature that verifies (tags are 256-bit MACs),
    while any principal can verify given only the public fingerprint. *)

type secret_key
type public_key

val equal_public : public_key -> public_key -> bool
val compare_public : public_key -> public_key -> int
val public_to_hex : public_key -> string
val pp_public : Format.formatter -> public_key -> unit

type signature

val signature_to_hex : signature -> string
val equal_signature : signature -> signature -> bool

val generate : Fortress_util.Prng.t -> secret_key * public_key
(** Draw a fresh keypair and register it for verification. *)

val public_of_secret : secret_key -> public_key

val sign : secret_key -> string -> signature
val verify : public_key -> msg:string -> signature -> bool
(** [verify pk ~msg s] holds iff [s] was produced by [sign sk msg] for the
    [sk] matching [pk]. Unknown fingerprints verify nothing. *)

val forge : Fortress_util.Prng.t -> signature
(** A random 32-byte tag, for attack tests: verifies with negligible
    probability. *)
