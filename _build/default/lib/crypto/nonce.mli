(** Unique request identifiers for deduplication at the primary and at
    proxies. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

type source

val source : Fortress_util.Prng.t -> source
(** A nonce source: a random stream prefix plus a counter, so two sources
    created from split PRNGs do not collide. *)

val fresh : source -> t
