(** HMAC-SHA-256 (RFC 2104), validated against RFC 4231 test vectors. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the raw 32-byte HMAC-SHA-256 tag. Keys longer than the
    64-byte block are hashed first, per the RFC. *)

val mac_hex : key:string -> string -> string
(** Hex-encoded tag. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time tag comparison. *)
