module Pb = Fortress_replication.Pb
module Sign = Fortress_crypto.Sign

type t =
  | Server of Pb.msg
  | Client_request of { id : string; cmd : string; client : Fortress_net.Address.t }
  | Client_reply of {
      reply : Pb.reply;
      proxy_index : int;
      proxy_signature : Sign.signature;
    }

let over_sign_payload ~reply ~proxy_index =
  Printf.sprintf "fortress-oversign|%s|%s|%d|%s|%d" reply.Pb.request_id reply.Pb.response
    reply.Pb.server_index
    (Sign.signature_to_hex reply.Pb.signature)
    proxy_index

let is_probe_command cmd =
  String.length cmd >= 6 && String.sub cmd 0 6 = "probe:"
