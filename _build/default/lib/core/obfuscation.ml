module Engine = Fortress_sim.Engine

type mode = PO | SO

let mode_to_string = function PO -> "po" | SO -> "so"
let mode_of_string = function "po" -> Some PO | "so" -> Some SO | _ -> None

type t = {
  obf_mode : mode;
  obf_period : float;
  mutable steps : int;
  handle : Engine.handle;
}

let attach deployment ~mode ~period =
  if period <= 0.0 then invalid_arg "Obfuscation.attach: period must be positive";
  let t_ref = ref None in
  let handle =
    Engine.every (Deployment.engine deployment) ~period (fun () ->
        (match mode with
        | PO -> Deployment.rekey deployment
        | SO -> Deployment.recover deployment);
        match !t_ref with Some t -> t.steps <- t.steps + 1 | None -> ())
  in
  let t = { obf_mode = mode; obf_period = period; steps = 0; handle } in
  t_ref := Some t;
  t

let mode t = t.obf_mode
let period t = t.obf_period
let steps_completed t = t.steps
let detach t = Engine.cancel t.handle
