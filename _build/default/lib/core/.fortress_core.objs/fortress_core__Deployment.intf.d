lib/core/deployment.mli: Client Fortress_defense Fortress_net Fortress_replication Fortress_sim Message Nameserver Proxy
