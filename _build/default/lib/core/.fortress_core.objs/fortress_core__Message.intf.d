lib/core/message.mli: Fortress_crypto Fortress_net Fortress_replication
