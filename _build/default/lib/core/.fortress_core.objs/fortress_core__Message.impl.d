lib/core/message.ml: Fortress_crypto Fortress_net Fortress_replication Printf String
