lib/core/client.mli: Fortress_crypto Fortress_net Fortress_sim Fortress_util Message Nameserver
