lib/core/nameserver.mli: Fortress_crypto Fortress_net
