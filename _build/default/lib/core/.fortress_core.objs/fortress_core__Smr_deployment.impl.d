lib/core/smr_deployment.ml: Array Fortress_crypto Fortress_defense Fortress_net Fortress_replication Fortress_sim Fortress_util Fun Hashtbl List Obfuscation Printf
