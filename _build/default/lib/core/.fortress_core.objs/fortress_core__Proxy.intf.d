lib/core/proxy.mli: Fortress_crypto Fortress_net Fortress_sim Message
