lib/core/obfuscation.mli: Deployment
