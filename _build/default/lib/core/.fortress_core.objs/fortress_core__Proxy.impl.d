lib/core/proxy.ml: Array Fortress_crypto Fortress_net Fortress_replication Fortress_sim Hashtbl List Message Printf Queue
