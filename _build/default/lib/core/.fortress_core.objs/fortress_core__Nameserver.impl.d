lib/core/nameserver.ml: Array Format Fortress_crypto Fortress_net Hashtbl List Printf String
