lib/core/deployment.ml: Array Client Fortress_crypto Fortress_defense Fortress_net Fortress_replication Fortress_sim Fortress_util Fun List Message Nameserver Printf Proxy
