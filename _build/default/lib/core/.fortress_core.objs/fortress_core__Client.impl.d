lib/core/client.ml: Array Fortress_crypto Fortress_net Fortress_replication Fortress_sim Hashtbl Message Nameserver
