lib/core/obfuscation.ml: Deployment Fortress_sim
