module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Latency = Fortress_net.Latency
module Address = Fortress_net.Address
module Sign = Fortress_crypto.Sign
module Nonce = Fortress_crypto.Nonce
module Smr = Fortress_replication.Smr
module Dsm = Fortress_replication.Dsm
module Keyspace = Fortress_defense.Keyspace
module Instance = Fortress_defense.Instance
module Prng = Fortress_util.Prng

type msg =
  | Server of Smr.msg
  | Client_request of { id : string; cmd : string; client : Address.t }
  | Client_reply of {
      reply : Smr.reply;
      proxy_index : int;
      proxy_signature : Sign.signature;
    }

let over_sign_payload ~reply ~proxy_index =
  Printf.sprintf "fortress-smr-oversign|%s|%s|%d|%d|%s|%d" reply.Smr.request_id
    reply.Smr.response reply.Smr.server_index reply.Smr.view
    (Sign.signature_to_hex reply.Smr.signature)
    proxy_index

type config = {
  np : int;
  n : int;
  f : int;
  service : Dsm.t;
  keyspace : Keyspace.t;
  smr : Smr.config;
  proxy_detection_window : float;
  proxy_detection_threshold : int;
  latency : Latency.t;
  seed : int;
}

let default_config =
  {
    np = 3;
    n = 4;
    f = 1;
    service = Fortress_replication.Services.kv;
    keyspace = Keyspace.pax_aslr_32bit;
    smr = Smr.default_config;
    proxy_detection_window = 100.0;
    proxy_detection_threshold = 10;
    latency = Latency.constant 0.5;
    seed = 0;
  }

(* A proxy's view of one outstanding request. *)
type pending = { mutable waiting : Address.t list; mutable answered : bool }

type proxy = {
  p_index : int;
  p_secret : Sign.secret_key;
  p_self : Address.t;
  voter : Smr.Voter.t;
  p_pending : (string, pending) Hashtbl.t;
  invalid_log : (Address.t, float Queue.t) Hashtbl.t;
  blocked : (Address.t, unit) Hashtbl.t;
  mutable invalid_total : int;
  mutable p_relayed : int;
  mutable p_compromised : bool;
}

type t = {
  cfg : config;
  engine : Engine.t;
  net : msg Network.t;
  replicas : Smr.replica array;
  proxies : proxy array;
  proxy_instances : Instance.t array;
  server_instances : Instance.t array;
  server_addresses : Address.t array;
  proxy_addresses : Address.t array;
  server_comp : bool array;
  proxy_comp : bool array;
}

let rec distinct_key ks prng avoid =
  let k = Keyspace.random_key ks prng in
  if List.mem k avoid then distinct_key ks prng avoid else k

let diverse_instances ks prng count =
  let used = ref [] in
  Array.init count (fun _ ->
      let inst = Instance.create ks prng in
      let k = distinct_key ks prng !used in
      used := k :: !used;
      Instance.set_key inst k;
      inst)

(* ---- proxy behaviour ---- *)

let note_invalid t proxy src =
  proxy.invalid_total <- proxy.invalid_total + 1;
  let now = Engine.now t.engine in
  let q =
    match Hashtbl.find_opt proxy.invalid_log src with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace proxy.invalid_log src q;
        q
  in
  Queue.push now q;
  while
    (not (Queue.is_empty q)) && Queue.peek q < now -. t.cfg.proxy_detection_window
  do
    ignore (Queue.pop q)
  done;
  if Queue.length q > t.cfg.proxy_detection_threshold then Hashtbl.replace proxy.blocked src ()

let proxy_handle_request t proxy ~src ~id ~cmd ~client =
  if not (Hashtbl.mem proxy.blocked src) then begin
    if Message.is_probe_command cmd then note_invalid t proxy src;
    if not (Hashtbl.mem proxy.blocked src) then begin
      let entry =
        match Hashtbl.find_opt proxy.p_pending id with
        | Some p -> p
        | None ->
            let p = { waiting = []; answered = false } in
            Hashtbl.replace proxy.p_pending id p;
            p
      in
      if not (List.mem client entry.waiting) then entry.waiting <- client :: entry.waiting;
      Array.iter
        (fun dst ->
          Network.send t.net ~src:proxy.p_self ~dst
            (Server (Smr.Request { id; cmd; reply_to = proxy.p_self })))
        t.server_addresses
    end
  end

let proxy_handle_reply t proxy (reply : Smr.reply) =
  (* the vote both authenticates and masks up to f intruded replicas *)
  match Smr.Voter.offer proxy.voter reply with
  | None -> ()
  | Some _agreed -> (
      match Hashtbl.find_opt proxy.p_pending reply.Smr.request_id with
      | None -> ()
      | Some entry ->
          if not entry.answered then begin
            entry.answered <- true;
            let proxy_signature =
              Sign.sign proxy.p_secret
                (over_sign_payload ~reply ~proxy_index:proxy.p_index)
            in
            List.iter
              (fun client ->
                proxy.p_relayed <- proxy.p_relayed + 1;
                Network.send t.net ~src:proxy.p_self ~dst:client
                  (Client_reply { reply; proxy_index = proxy.p_index; proxy_signature }))
              entry.waiting;
            entry.waiting <- []
          end)

let proxy_handler t proxy ~src msg =
  if not proxy.p_compromised then
    match msg with
    | Client_request { id; cmd; client } -> proxy_handle_request t proxy ~src ~id ~cmd ~client
    | Server (Smr.Reply reply) -> proxy_handle_reply t proxy reply
    | Server _ | Client_reply _ -> ()

(* ---- construction ---- *)

let create cfg =
  if cfg.np < 1 then invalid_arg "Smr_fortress.create: np must be >= 1";
  let engine = Engine.create ~prng:(Prng.create ~seed:cfg.seed) () in
  let prng = Engine.prng engine in
  let net = Network.create ~latency:cfg.latency engine in
  let server_addresses =
    Array.init cfg.n (fun i ->
        Network.register net ~name:(Printf.sprintf "smr-server%d" i)
          ~handler:(fun ~src:_ _ -> ()))
  in
  let proxy_addresses =
    Array.init cfg.np (fun i ->
        Network.register net ~name:(Printf.sprintf "smr-proxy%d" i)
          ~handler:(fun ~src:_ _ -> ()))
  in
  let server_instances = diverse_instances cfg.keyspace prng cfg.n in
  let proxy_instances = diverse_instances cfg.keyspace prng cfg.np in
  let smr_config = { cfg.smr with Smr.n = cfg.n; f = cfg.f } in
  let replicas =
    Array.init cfg.n (fun i ->
        let secret, _ = Sign.generate prng in
        Smr.create ~engine ~config:smr_config ~index:i ~service:cfg.service ~secret
          ~self:server_addresses.(i) ~addresses:server_addresses
          ~send:(fun ~dst msg -> Network.send net ~src:server_addresses.(i) ~dst (Server msg)))
  in
  Array.iteri
    (fun i addr ->
      Network.set_handler net addr (fun ~src msg ->
          match msg with
          | Server m -> Smr.handle replicas.(i) ~src m
          | Client_request _ | Client_reply _ -> ()))
    server_addresses;
  Array.iter Smr.start replicas;
  let server_keys = Array.map Smr.public_key replicas in
  let proxies =
    Array.init cfg.np (fun i ->
        let secret, _ = Sign.generate prng in
        {
          p_index = i;
          p_secret = secret;
          p_self = proxy_addresses.(i);
          voter = Smr.Voter.create ~f:cfg.f ~public_keys:server_keys;
          p_pending = Hashtbl.create 32;
          invalid_log = Hashtbl.create 16;
          blocked = Hashtbl.create 16;
          invalid_total = 0;
          p_relayed = 0;
          p_compromised = false;
        })
  in
  let t =
    {
      cfg;
      engine;
      net;
      replicas;
      proxies;
      proxy_instances;
      server_instances;
      server_addresses;
      proxy_addresses;
      server_comp = Array.make cfg.n false;
      proxy_comp = Array.make cfg.np false;
    }
  in
  Array.iteri
    (fun i addr ->
      Network.set_handler net addr (fun ~src msg -> proxy_handler t t.proxies.(i) ~src msg))
    proxy_addresses;
  t

let engine t = t.engine
let replicas t = t.replicas
let proxy_instances t = t.proxy_instances
let server_instances t = t.server_instances
let proxy_invalid_observed t i = t.proxies.(i).invalid_total
let proxy_is_blocked t i src = Hashtbl.mem t.proxies.(i).blocked src
let proxy_relayed t i = t.proxies.(i).p_relayed

(* ---- client ---- *)

type client = {
  c_net : msg Network.t;
  c_self : Address.t;
  c_proxy_addresses : Address.t array;
  c_proxy_keys : Sign.public_key array;
  c_server_keys : Sign.public_key array;
  nonce_source : Nonce.source;
  callbacks : (string, string -> unit) Hashtbl.t;
  mutable c_accepted : int;
  mutable c_rejected : int;
}

let new_client t ~name =
  let self = Network.register t.net ~name ~handler:(fun ~src:_ _ -> ()) in
  let client =
    {
      c_net = t.net;
      c_self = self;
      c_proxy_addresses = t.proxy_addresses;
      c_proxy_keys = Array.map (fun p -> Sign.public_of_secret p.p_secret) t.proxies;
      c_server_keys = Array.map Smr.public_key t.replicas;
      nonce_source = Nonce.source (Prng.split (Engine.prng t.engine));
      callbacks = Hashtbl.create 16;
      c_accepted = 0;
      c_rejected = 0;
    }
  in
  Network.set_handler t.net self (fun ~src:_ msg ->
      match msg with
      | Client_reply { reply; proxy_index; proxy_signature } ->
          let proxy_ok =
            proxy_index >= 0
            && proxy_index < Array.length client.c_proxy_keys
            && Sign.verify
                 client.c_proxy_keys.(proxy_index)
                 ~msg:(over_sign_payload ~reply ~proxy_index)
                 proxy_signature
          in
          let server_ok =
            reply.Smr.server_index >= 0
            && reply.Smr.server_index < Array.length client.c_server_keys
            && Smr.verify_reply client.c_server_keys.(reply.Smr.server_index) reply
          in
          if proxy_ok && server_ok then (
            match Hashtbl.find_opt client.callbacks reply.Smr.request_id with
            | Some k ->
                Hashtbl.remove client.callbacks reply.Smr.request_id;
                client.c_accepted <- client.c_accepted + 1;
                k reply.Smr.response
            | None -> () (* duplicate from another proxy *))
          else client.c_rejected <- client.c_rejected + 1
      | Server _ | Client_request _ -> ());
  client

let submit c ~cmd ~on_response =
  let id = Nonce.to_string (Nonce.fresh c.nonce_source) in
  Hashtbl.replace c.callbacks id on_response;
  Array.iter
    (fun dst ->
      Network.send c.c_net ~src:c.c_self ~dst (Client_request { id; cmd; client = c.c_self }))
    c.c_proxy_addresses;
  id

let client_accepted c = c.c_accepted
let client_rejected c = c.c_rejected

(* ---- obfuscation ---- *)

let rekey_proxies t =
  let prng = Engine.prng t.engine in
  let used = ref [] in
  Array.iteri
    (fun i inst ->
      let k = distinct_key t.cfg.keyspace prng !used in
      used := k :: !used;
      Instance.set_key inst k;
      t.proxy_comp.(i) <- false;
      t.proxies.(i).p_compromised <- false)
    t.proxy_instances

let cycle_server t i ~fresh_key =
  let replica = t.replicas.(i) in
  Smr.stop replica;
  Network.set_down t.net t.server_addresses.(i);
  (if fresh_key then begin
     let prng = Engine.prng t.engine in
     let rec fresh () =
       let k = Keyspace.random_key t.cfg.keyspace prng in
       let clash =
         Array.exists
           (fun inst -> inst != t.server_instances.(i) && Instance.key inst = k)
           t.server_instances
       in
       if clash then fresh () else k
     in
     Instance.set_key t.server_instances.(i) (fresh ())
   end
   else Instance.recover t.server_instances.(i));
  t.server_comp.(i) <- false;
  Smr.set_compromised replica false;
  ignore
    (Engine.schedule t.engine ~delay:0.5 (fun () ->
         Network.set_up t.net t.server_addresses.(i);
         Smr.restart replica;
         Smr.begin_state_transfer replica))

let rekey_server_batch t batch = List.iter (fun i -> cycle_server t i ~fresh_key:true) batch

let batches t =
  let rec chunk acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | i :: rest ->
        if count = t.cfg.f then chunk (List.rev current :: acc) [ i ] 1 rest
        else chunk acc (i :: current) (count + 1) rest
  in
  chunk [] [] 0 (List.init t.cfg.n Fun.id)

let attach_schedule t ~mode ~period =
  let bs = batches t in
  let nb = List.length bs in
  let spacing = period /. float_of_int (nb + 1) in
  ignore
    (Engine.every t.engine ~period (fun () ->
         (match mode with
         | Obfuscation.PO -> rekey_proxies t
         | Obfuscation.SO ->
             Array.iter Instance.recover t.proxy_instances;
             Array.iteri
               (fun i p ->
                 t.proxy_comp.(i) <- false;
                 p.p_compromised <- false)
               t.proxies);
         List.iteri
           (fun bi batch ->
             ignore
               (Engine.schedule t.engine ~delay:(spacing *. float_of_int bi) (fun () ->
                    List.iter
                      (fun i ->
                        cycle_server t i
                          ~fresh_key:(match mode with Obfuscation.PO -> true | Obfuscation.SO -> false))
                      batch)))
           bs))

(* ---- compromise bookkeeping ---- *)

let compromise_server t i =
  t.server_comp.(i) <- true;
  Smr.set_compromised t.replicas.(i) true

let compromise_proxy t i =
  t.proxy_comp.(i) <- true;
  t.proxies.(i).p_compromised <- true

let system_compromised t =
  let servers_down = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.server_comp in
  let proxies_down = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.proxy_comp in
  servers_down > t.cfg.f || proxies_down = t.cfg.np
