(** The wire message type of a FORTRESS deployment.

    One network carries three kinds of traffic: the server tier's
    primary-backup protocol (proxies submit requests as {!Pb.Request} and
    servers answer with {!Pb.Reply} to the submitting proxy), client
    requests to proxies, and doubly-signed replies back to clients. *)

module Pb := Fortress_replication.Pb

type t =
  | Server of Pb.msg
      (** server-tier traffic: proxy->server submissions, primary->backup
          updates, server->proxy signed replies *)
  | Client_request of { id : string; cmd : string; client : Fortress_net.Address.t }
  | Client_reply of {
      reply : Pb.reply;  (** the server-signed reply, relayed verbatim *)
      proxy_index : int;
      proxy_signature : Fortress_crypto.Sign.signature;
    }

val over_sign_payload : reply:Pb.reply -> proxy_index:int -> string
(** The byte string a proxy's over-signature covers: the full server-signed
    reply plus the proxy's index, so a client can attribute the relay. *)

val is_probe_command : string -> bool
(** FORTRESS proxies cannot execute commands, but they can recognise the
    de-randomization probe shape (["probe:<key>"]) as not being a valid
    service request. *)
