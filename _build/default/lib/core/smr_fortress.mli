(** FORTRESS with an SMR server tier.

    The architecture separates surviving attacks from service replication:
    the fortified tier "may not even be replicated; if replicated, it can
    be by PB or SMR" (paper section 1). This module is the SMR variant:
    np proxies front an n = 3f + 1 Byzantine-agreement tier. Each proxy
    votes over the servers' signed replies ([f + 1] matching) before
    over-signing one representative reply and relaying it; the client needs
    only the usual two authentic signatures, so the client protocol is
    identical to the primary-backup variant — replication is invisible
    behind the proxies, as in Saidane et al.

    Unlike the PB tier (one shared key), SMR replicas execute
    independently, so nothing forces identical randomization: each replica
    gets its own key (diverse randomization, as in S0), and obfuscation
    uses the batched Roeder-Schneider schedule so the tier never stops. *)

type msg =
  | Server of Fortress_replication.Smr.msg
  | Client_request of { id : string; cmd : string; client : Fortress_net.Address.t }
  | Client_reply of {
      reply : Fortress_replication.Smr.reply;
      proxy_index : int;
      proxy_signature : Fortress_crypto.Sign.signature;
    }

val over_sign_payload : reply:Fortress_replication.Smr.reply -> proxy_index:int -> string

type config = {
  np : int;
  n : int;
  f : int;
  service : Fortress_replication.Dsm.t;
  keyspace : Fortress_defense.Keyspace.t;
  smr : Fortress_replication.Smr.config;  (** [n], [f] overridden *)
  proxy_detection_window : float;
  proxy_detection_threshold : int;
  latency : Fortress_net.Latency.t;
  seed : int;
}

val default_config : config
(** np = 3 proxies over n = 4 / f = 1, kv service, chi = 2^16. *)

type t

val create : config -> t
val engine : t -> Fortress_sim.Engine.t
val replicas : t -> Fortress_replication.Smr.replica array
val proxy_instances : t -> Fortress_defense.Instance.t array
val server_instances : t -> Fortress_defense.Instance.t array

val proxy_invalid_observed : t -> int -> int
val proxy_is_blocked : t -> int -> Fortress_net.Address.t -> bool
val proxy_relayed : t -> int -> int

type client

val new_client : t -> name:string -> client
val submit : client -> cmd:string -> on_response:(string -> unit) -> string
(** [on_response] fires once, on the first reply carrying a valid proxy
    over-signature on a validly server-signed reply. *)

val client_accepted : client -> int
val client_rejected : client -> int

(** {1 Obfuscation} *)

val rekey_proxies : t -> unit
(** Fresh distinct keys for all proxies (instant — proxies are stateless). *)

val rekey_server_batch : t -> int list -> unit
(** Re-randomize and recover the given replicas; they rejoin via state
    transfer from the remaining majority. *)

val batches : t -> int list list
val attach_schedule : t -> mode:Obfuscation.mode -> period:float -> unit
(** Each period: proxies rekey at the boundary and the server batches cycle
    inside the step, at most [f] at a time. *)

(** {1 Compromise bookkeeping} *)

val compromise_server : t -> int -> unit
val compromise_proxy : t -> int -> unit
val system_compromised : t -> bool
(** More than [f] servers compromised, or all proxies. A single intruded
    replica is {e tolerated} here — the vote masks it — which is precisely
    what the PB tier cannot offer. *)
