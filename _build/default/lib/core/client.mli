(** The FORTRESS client library.

    A client learns proxies and public keys from the {!Nameserver} record,
    sends each request to {e all} proxies, and accepts a response iff it
    carries two authentic signatures: the relaying proxy's over-signature
    and, underneath it, a server's signature over the response (paper
    section 3). The first doubly-authentic reply wins; later duplicates are
    counted but ignored.

    In a bare S1 deployment (no proxies) the same client is created with
    [direct_servers]; it then accepts singly-signed server replies —
    exactly the weaker guarantee the paper ascribes to unfortified PB. *)

type t

type mode =
  | Via_proxies of Nameserver.record
  | Direct_servers of {
      addresses : Fortress_net.Address.t array;
      keys : Fortress_crypto.Sign.public_key array;
    }

val create :
  ?retry_period:float ->
  ?max_retries:int ->
  engine:Fortress_sim.Engine.t ->
  mode:mode ->
  self:Fortress_net.Address.t ->
  send:(dst:Fortress_net.Address.t -> Message.t -> unit) ->
  Fortress_util.Prng.t ->
  t
(** [retry_period] (default 25.0) and [max_retries] (default 10) govern
    resubmission: an unanswered request is re-sent to all targets until an
    authenticated reply arrives or the retry budget runs out — requests are
    idempotent end to end (servers deduplicate by id, proxies answer
    retries from their pending/answered state), so retries are safe over
    lossy links. Pass [max_retries:0] to disable. *)

val retries_sent : t -> int

val submit : t -> cmd:string -> on_response:(string -> unit) -> string
(** Send a command; returns the request id. [on_response] fires exactly
    once, on the first authenticated reply. *)

val handle : t -> src:Fortress_net.Address.t -> Message.t -> unit

val accepted : t -> int
(** Requests answered with an authenticated response. *)

val rejected : t -> int
(** Replies discarded for signature or attribution failures. *)

val outstanding : t -> int
(** Requests not yet answered. *)

val response_for : t -> id:string -> string option
