(** Analytic expected-lifetime models for the paper's five system classes.

    All models take the per-step, per-node direct-attack success
    probability alpha (Definition 4/6) as primitive; the paper sweeps
    alpha over [1e-5, 1e-2]. Lifetimes are in whole unit time-steps; a
    constant per-step compromise probability p yields EL = 1/p.

    {b PO} (proactive obfuscation) keeps alpha constant across steps —
    sampling with replacement. {b SO} (start-up-only randomization with
    proactive recovery) makes the hazard grow: with omega = alpha * chi
    probes per step eliminating fresh keys, the step-i hazard per attacked
    key is alpha_i = alpha / (1 - (i-1) alpha), the paper's
    sampling-without-replacement recursion (valid for chi >> omega; the
    hazard is clamped at 1 when the key space runs out).

    System classes (section 4): S0 is 4-replica SMR with distinct keys,
    compromised when 2 replicas fall in the same exposure window; S1 is
    3-replica primary-backup with one shared key, compromised when that key
    is found; S2 is FORTRESS (np proxies with distinct keys over
    identically randomized PB servers), compromised by an indirect server
    hit (kappa * alpha), by a launch-pad escalation from a captured proxy,
    or by losing all np proxies at once. *)

type launchpad =
  | Remaining  (** a proxy captured mid-step attacks the server with the
                   remaining fraction of that step's budget (default) *)
  | Full  (** the escalation gets a whole step's budget — an upper bound *)
  | Next_step  (** escalation waits for the next step; under PO the rekey
                   boundary has already evicted the intruder, so launch
                   pads contribute nothing *)

val so_hazard : alpha:float -> int -> float
(** [so_hazard ~alpha i] is alpha_i, clamped to [0, 1]. *)

(** {1 Per-step compromise probabilities (PO)} *)

val s0_po_step : alpha:float -> float
(** P(at least 2 of the 4 diversely keyed replicas fall in one step). *)

val s1_po_step : alpha:float -> float
(** The shared key falls: alpha. *)

val s2_po_step : ?launchpad:launchpad -> ?np:int -> alpha:float -> kappa:float -> unit -> float
(** Exact one-step law for FORTRESS under PO; [np] defaults to 3. See the
    implementation notes for the closed form. *)

(** {1 Expected lifetimes} *)

val s0_po : alpha:float -> float
val s1_po : alpha:float -> float
val s2_po : ?launchpad:launchpad -> ?np:int -> alpha:float -> kappa:float -> unit -> float

val s1_so : alpha:float -> float
(** Inhomogeneous hazard alpha_i on a single key. *)

val s0_so : alpha:float -> float
(** Two-state inhomogeneous absorbing chain: 0 or 1 of the four keys
    uncovered so far; absorption when the second key falls. *)

val s2_so : ?launchpad:launchpad -> ?np:int -> alpha:float -> kappa:float -> unit -> float
(** FORTRESS with start-up-only randomization (not evaluated in the paper;
    provided as an extension). State: number of proxy keys the attacker has
    permanently learned — under SO a recovered proxy keeps its key, so a
    learned proxy is a permanent launch pad. *)

(** {1 FORTRESS over an SMR tier (extension)}

    The paper's conclusion leaves "detailed comparison of FORTRESS with
    SMR that is firewalled" as future work. The natural composition — np
    proxies over an f-tolerant, diversely randomized n = 3f+1 SMR tier —
    is modelled here: the server tier falls only when more than [f]
    replicas are compromised in one exposure window, each via the
    attenuated indirect channel (kappa alpha) or a launch pad; losing all
    proxies still ends the system. *)

val s2_smr_po_step :
  ?launchpad:launchpad -> ?np:int -> ?n:int -> ?f:int -> alpha:float -> kappa:float -> unit -> float

val s2_smr_po :
  ?launchpad:launchpad -> ?np:int -> ?n:int -> ?f:int -> alpha:float -> kappa:float -> unit -> float
(** Defaults np = 3, n = 4, f = 1. For kappa < 1 this composition
    dominates bare S0PO by roughly 1/kappa^(f+1): fortifying the SMR
    system buys attenuation on every one of the f+1 intrusions the
    attacker must land. *)

(** {1 An optimizing attacker (extension)}

    The paper gives every attack channel its own omega (Definition 4). A
    strictly weaker attacker has one {e total} budget Omega per step and
    chooses how to split it: an equal share q = x Omega / np at each proxy
    (direct), and r = (1 - x) Omega at the server through the proxies
    (indirect, attenuated by kappa). Per-probe success is 1/chi; a proxy
    captured mid-stream turns its unexpended probes on the server. *)

val s2_po_budgeted_step :
  ?np:int -> total:float -> chi:float -> kappa:float -> direct_fraction:float -> unit -> float
(** One-step compromise probability for the split [direct_fraction] = x.
    Raises [Invalid_argument] unless [total > 0], [chi > 1] and
    [x] is in [0, 1]. *)

val s2_po_worst_case :
  ?np:int -> total:float -> chi:float -> kappa:float -> unit -> float * float
(** [(x*, el)]: the attacker's optimal split and the resulting (minimal)
    expected lifetime — the defender's worst case. Found by grid search
    plus golden-section refinement; the objective is smooth. *)

(** {1 Convenience} *)

type system = S0_SO | S1_SO | S0_PO | S1_PO | S2_PO | S2_SO

val all_systems : system list
val system_to_string : system -> string
val system_of_string : string -> system option

val expected_lifetime :
  ?launchpad:launchpad -> ?np:int -> system -> alpha:float -> kappa:float -> float
(** Dispatch on the system tag; [kappa] is ignored by the 1-tier systems. *)
