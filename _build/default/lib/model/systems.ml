module Probability = Fortress_util.Probability
module Matrix = Fortress_util.Matrix

type launchpad = Remaining | Full | Next_step

let clamp = Probability.clamp01

(* Sampling without replacement: after i-1 steps, (i-1) * omega of the chi
   keys are eliminated, so the step-i hazard is
   omega / (chi - (i-1) omega) = alpha / (1 - (i-1) alpha). *)
let so_hazard ~alpha i =
  let denom = 1.0 -. (float_of_int (i - 1) *. alpha) in
  if denom <= alpha then 1.0 else clamp (alpha /. denom)

(* ---- one-step compromise laws under PO ---- *)

let s0_po_step ~alpha =
  (* two of the four diversely keyed replicas must fall in the same step *)
  Probability.at_least ~k:2 ~p:alpha ~n:4

let s1_po_step ~alpha = clamp alpha

(* FORTRESS one-step law. Condition on each proxy independently: it falls
   during the step with probability alpha, at a uniformly distributed
   instant U; a fallen proxy's launch pad then attacks the server with the
   remaining budget, succeeding w.p. (1-U) alpha (Remaining), a full
   alpha (Full), or not at all this step (Next_step; under PO the rekey at
   the boundary evicts the intruder before the next step starts).

   Per proxy, P(no server hit via this proxy) =
     (1 - alpha) + alpha * lp_fail     with lp_fail = E[1 - (1-U) alpha].
   The system survives the step iff the indirect attack missed, no launch
   pad hit the server, and not all np proxies fell:

     P(survive) = (1 - kappa alpha)
                  * [ ((1-alpha) + alpha lp_fail)^np - (alpha lp_fail)^np ]
                  + 0 * (all-fell configurations)

   where the subtracted term removes the all-fell-but-launchpads-missed
   configurations that the product wrongly counts as survival. *)
let s2_po_step ?(launchpad = Remaining) ?(np = 3) ~alpha ~kappa () =
  if np <= 0 then invalid_arg "Systems.s2_po_step: np must be positive";
  let alpha = clamp alpha and kappa = clamp kappa in
  let lp_fail =
    match launchpad with
    | Remaining -> 1.0 -. (alpha /. 2.0)
    | Full -> 1.0 -. alpha
    | Next_step -> 1.0
  in
  let per_proxy_quiet = (1.0 -. alpha) +. (alpha *. lp_fail) in
  let all_fell_quiet = alpha *. lp_fail in
  let survive =
    (1.0 -. (kappa *. alpha))
    *. ((per_proxy_quiet ** float_of_int np) -. (all_fell_quiet ** float_of_int np))
  in
  clamp (1.0 -. survive)

(* ---- expected lifetimes ---- *)

let s0_po ~alpha = Probability.geometric_lifetime (s0_po_step ~alpha)
let s1_po ~alpha = Probability.geometric_lifetime (s1_po_step ~alpha)

let s2_po ?(launchpad = Remaining) ?(np = 3) ~alpha ~kappa () =
  Probability.geometric_lifetime (s2_po_step ~launchpad ~np ~alpha ~kappa ())

let s1_so ~alpha = Probability.expected_lifetime (so_hazard ~alpha)

(* S0 under SO: two transient states — 0 or 1 of the four keys uncovered.
   At step i each still-hidden key is uncovered with the without-replacement
   hazard h_i (independently across the four distinct keys); absorption is
   reaching two uncovered keys in total. *)
let s0_so ~alpha =
  let step_matrix i =
    let h = so_hazard ~alpha i in
    let q = 1.0 -. h in
    let stay0 = q ** 4.0 in
    let to1 = 4.0 *. h *. (q ** 3.0) in
    let absorb0 = clamp (1.0 -. stay0 -. to1) in
    let stay1 = q ** 3.0 in
    let absorb1 = clamp (1.0 -. stay1) in
    Matrix.of_rows [| [| stay0; to1; absorb0 |]; [| 0.0; stay1; absorb1 |] |]
  in
  Markov.expected_steps_inhomogeneous ~transient:2 ~start:0 ~step_matrix ()

(* S2 under SO (an extension; the paper evaluates only S2PO). Under SO a
   proxy whose key the attacker has learned stays capturable after every
   recovery, so it is a permanent launch pad whose whole per-step budget
   turns on the server. State: j = number of proxy keys learned. The server
   key's eliminated mass grows with the indirect stream (rate kappa alpha)
   plus one full stream per captured proxy; we track its expectation as a
   scalar — exact per-state tracking would couple the dimensions without
   changing the shape. *)
let s2_so ?(launchpad = Remaining) ?(np = 3) ~alpha ~kappa () =
  ignore launchpad;
  if np <= 0 then invalid_arg "Systems.s2_so: np must be positive";
  let alpha = clamp alpha and kappa = clamp kappa in
  let dist = Array.make (np + 1) 0.0 in
  dist.(0) <- 1.0;
  let eliminated = ref 0.0 (* expected eliminated fraction of the server key space *) in
  let el = ref 0.0 in
  let alive = ref 1.0 in
  let i = ref 1 in
  let eps = 1e-12 in
  let max_steps = 10_000_000 in
  let finished = ref false in
  while not !finished do
    let hp = so_hazard ~alpha !i in
    let server_hazard j =
      let rate = (kappa +. float_of_int j) *. alpha in
      let denom = 1.0 -. !eliminated in
      if denom <= rate then 1.0 else clamp (rate /. denom)
    in
    let next = Array.make (np + 1) 0.0 in
    let absorbed = ref 0.0 in
    let mean_j = ref 0.0 in
    for j = 0 to np do
      if dist.(j) > 0.0 then begin
        mean_j := !mean_j +. (float_of_int j *. dist.(j));
        let hs = server_hazard j in
        let survive_server = dist.(j) *. (1.0 -. hs) in
        absorbed := !absorbed +. (dist.(j) *. hs);
        (* new proxy keys found this step: Binomial(np - j, hp) *)
        for dj = 0 to np - j do
          let pdj = Probability.binomial_pmf ~k:dj ~p:hp ~n:(np - j) in
          if pdj > 0.0 then begin
            let j' = j + dj in
            if j' = np then
              (* all proxies captured: the system is compromised *)
              absorbed := !absorbed +. (survive_server *. pdj)
            else next.(j') <- next.(j') +. (survive_server *. pdj)
          end
        done
      end
    done;
    el := !el +. (float_of_int !i *. !absorbed);
    alive := !alive -. !absorbed;
    let live_mass = Array.fold_left ( +. ) 0.0 next in
    let mean_j = if live_mass > 0.0 then !mean_j /. (live_mass +. !absorbed) else 0.0 in
    eliminated := min 0.999999 (!eliminated +. ((kappa +. mean_j) *. alpha));
    Array.blit next 0 dist 0 (np + 1);
    if !alive < eps then finished := true
    else if !i >= max_steps then begin
      let hazard = if !alive > 0.0 then !absorbed /. (!alive +. !absorbed) else 1.0 in
      el :=
        !el
        +. (if hazard <= 0.0 then infinity
            else !alive *. (float_of_int !i +. ((1.0 -. hazard) /. hazard)));
      finished := true
    end
    else incr i
  done;
  !el

(* ---- FORTRESS over an SMR tier ---- *)

(* One step under PO. The diversely keyed server tier needs more than f
   simultaneous intrusions: each server falls to the attenuated indirect
   channel with probability kappa alpha, and each captured proxy
   contributes one extra launch-pad kill attempt against a fresh server
   (success alpha/2 for `Remaining`, alpha for `Full`, none for
   `Next_step`). Kills from the two sources convolve; losing all np proxies
   is still fatal on its own. The all-proxies overlap is treated as
   independent — an O(alpha^(np+f+1)) error. *)
let s2_smr_po_step ?(launchpad = Remaining) ?(np = 3) ?(n = 4) ?(f = 1) ~alpha ~kappa () =
  if np <= 0 || n <= 0 || f < 0 || f >= n then
    invalid_arg "Systems.s2_smr_po_step: bad tier shape";
  let alpha = clamp alpha and kappa = clamp kappa in
  let p_indirect = clamp (kappa *. alpha) in
  let lp_kill =
    match launchpad with
    | Remaining -> alpha *. (alpha /. 2.0)
    | Full -> alpha *. alpha
    | Next_step -> 0.0
  in
  (* P(total kills >= f+1), kills = Bin(n, p_indirect) + Bin(np, lp_kill) *)
  let p_tier_falls =
    let acc = ref 0.0 in
    for i = 0 to n do
      for j = 0 to np do
        if i + j >= f + 1 then
          acc :=
            !acc
            +. (Probability.binomial_pmf ~k:i ~p:p_indirect ~n
               *. Probability.binomial_pmf ~k:j ~p:lp_kill ~n:np)
      done
    done;
    clamp !acc
  in
  let p_all_proxies = alpha ** float_of_int np in
  clamp (1.0 -. ((1.0 -. p_tier_falls) *. (1.0 -. p_all_proxies)))

let s2_smr_po ?(launchpad = Remaining) ?(np = 3) ?(n = 4) ?(f = 1) ~alpha ~kappa () =
  Probability.geometric_lifetime (s2_smr_po_step ~launchpad ~np ~n ~f ~alpha ~kappa ())

(* ---- optimizing attacker ---- *)

let s2_po_budgeted_step ?(np = 3) ~total ~chi ~kappa ~direct_fraction () =
  if total <= 0.0 then invalid_arg "Systems.s2_po_budgeted_step: total must be positive";
  if chi <= 1.0 then invalid_arg "Systems.s2_po_budgeted_step: chi must exceed 1";
  if direct_fraction < 0.0 || direct_fraction > 1.0 then
    invalid_arg "Systems.s2_po_budgeted_step: direct_fraction in [0,1]";
  let kappa = clamp kappa in
  let q = direct_fraction *. total /. float_of_int np in
  let r = (1.0 -. direct_fraction) *. total in
  let p_proxy = clamp (q /. chi) in
  let p_indirect = clamp (kappa *. r /. chi) in
  (* a proxy that falls mid-stream spends its remaining ~q/2 probes on the
     server key *)
  let lp_fail = 1.0 -. clamp (q /. (2.0 *. chi)) in
  let per_proxy_quiet = (1.0 -. p_proxy) +. (p_proxy *. lp_fail) in
  let all_fell_quiet = p_proxy *. lp_fail in
  let survive =
    (1.0 -. p_indirect)
    *. ((per_proxy_quiet ** float_of_int np) -. (all_fell_quiet ** float_of_int np))
  in
  clamp (1.0 -. survive)

let s2_po_worst_case ?(np = 3) ~total ~chi ~kappa () =
  let p x = s2_po_budgeted_step ~np ~total ~chi ~kappa ~direct_fraction:x () in
  (* coarse grid to find the basin, then golden-section refinement *)
  let best = ref (0.0, p 0.0) in
  for i = 0 to 100 do
    let x = float_of_int i /. 100.0 in
    let v = p x in
    if v > snd !best then best := (x, v)
  done;
  let lo = ref (Float.max 0.0 (fst !best -. 0.01)) in
  let hi = ref (Float.min 1.0 (fst !best +. 0.01)) in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  for _ = 1 to 60 do
    let a = !hi -. (phi *. (!hi -. !lo)) in
    let b = !lo +. (phi *. (!hi -. !lo)) in
    if p a < p b then lo := a else hi := b
  done;
  let x_star = (!lo +. !hi) /. 2.0 in
  (x_star, Probability.geometric_lifetime (p x_star))

type system = S0_SO | S1_SO | S0_PO | S1_PO | S2_PO | S2_SO

let all_systems = [ S0_SO; S1_SO; S0_PO; S1_PO; S2_PO; S2_SO ]

let system_to_string = function
  | S0_SO -> "s0so"
  | S1_SO -> "s1so"
  | S0_PO -> "s0po"
  | S1_PO -> "s1po"
  | S2_PO -> "s2po"
  | S2_SO -> "s2so"

let system_of_string = function
  | "s0so" -> Some S0_SO
  | "s1so" -> Some S1_SO
  | "s0po" -> Some S0_PO
  | "s1po" -> Some S1_PO
  | "s2po" -> Some S2_PO
  | "s2so" -> Some S2_SO
  | _ -> None

let expected_lifetime ?(launchpad = Remaining) ?(np = 3) system ~alpha ~kappa =
  match system with
  | S0_SO -> s0_so ~alpha
  | S1_SO -> s1_so ~alpha
  | S0_PO -> s0_po ~alpha
  | S1_PO -> s1_po ~alpha
  | S2_PO -> s2_po ~launchpad ~np ~alpha ~kappa ()
  | S2_SO -> s2_so ~launchpad ~np ~alpha ~kappa ()
