lib/model/markov.ml: Array Float Fortress_util Fun List
