lib/model/systems.mli:
