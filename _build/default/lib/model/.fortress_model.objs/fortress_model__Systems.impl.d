lib/model/systems.ml: Array Float Fortress_util Markov
