lib/model/markov.mli: Fortress_util
