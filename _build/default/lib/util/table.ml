type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows_rev : string array list;
  mutable count : int;
}

let create ~headers =
  let headers = Array.of_list headers in
  if Array.length headers = 0 then invalid_arg "Table.create: no headers";
  { headers; aligns = Array.make (Array.length headers) Right; rows_rev = []; count = 0 }

let set_align t i a =
  if i < 0 || i >= Array.length t.aligns then invalid_arg "Table.set_align: bad column";
  t.aligns.(i) <- a

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows_rev <- row :: t.rows_rev;
  t.count <- t.count + 1

let default_fmt v = Printf.sprintf "%.6g" v

let add_float_row ?(fmt = default_fmt) t values = add_row t (List.map fmt values)

let row_count t = t.count

let render t =
  let rows = List.rev t.rows_rev in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let buf = Buffer.create 512 in
  let emit_row cells =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cells.(i))
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  for i = 0 to ncols - 1 do
    if i > 0 then Buffer.add_string buf "  ";
    Buffer.add_string buf (String.make widths.(i) '-')
  done;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let csv_escape s =
  if String.contains s ',' || String.contains s '"' then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape (Array.to_list cells)));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter emit (List.rev t.rows_rev);
  Buffer.contents buf
