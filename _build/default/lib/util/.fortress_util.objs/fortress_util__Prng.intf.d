lib/util/prng.mli:
