lib/util/table.mli:
