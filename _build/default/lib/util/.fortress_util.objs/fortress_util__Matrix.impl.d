lib/util/matrix.ml: Array Float Format
