lib/util/plot.ml: Array Buffer Bytes Float List Printf String
