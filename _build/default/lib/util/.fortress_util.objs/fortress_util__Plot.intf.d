lib/util/plot.mli:
