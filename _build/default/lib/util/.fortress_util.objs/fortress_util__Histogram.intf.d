lib/util/histogram.mli:
