lib/util/probability.ml: List
