lib/util/matrix.mli: Format
