lib/util/probability.mli:
