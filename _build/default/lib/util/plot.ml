type scale = Linear_scale | Log_scale

type series = { name : string; glyph : char; points : (float * float) list }

type t = {
  width : int;
  height : int;
  x_scale : scale;
  y_scale : scale;
  x_label : string;
  y_label : string;
  mutable series : series list;  (** reverse order of addition *)
}

let create ?(width = 72) ?(height = 24) ?(x_scale = Log_scale) ?(y_scale = Log_scale)
    ?(x_label = "x") ?(y_label = "y") () =
  if width < 20 || height < 8 then invalid_arg "Plot.create: plot area too small";
  { width; height; x_scale; y_scale; x_label; y_label; series = [] }

let usable scale v = match scale with Linear_scale -> true | Log_scale -> v > 0.0

let add_series t ~name ~glyph points =
  if points = [] then invalid_arg "Plot.add_series: empty series";
  if List.exists (fun s -> s.glyph = glyph) t.series then
    invalid_arg "Plot.add_series: duplicate glyph";
  t.series <- { name; glyph; points } :: t.series

let transform scale v = match scale with Linear_scale -> v | Log_scale -> log10 v

let render t =
  let drawable =
    List.concat_map
      (fun s ->
        List.filter (fun (x, y) -> usable t.x_scale x && usable t.y_scale y) s.points)
      t.series
  in
  if drawable = [] then failwith "Plot.render: nothing to draw";
  let xs = List.map (fun (x, _) -> transform t.x_scale x) drawable in
  let ys = List.map (fun (_, y) -> transform t.y_scale y) drawable in
  let fold f = List.fold_left f in
  let x_min = fold Float.min infinity xs and x_max = fold Float.max neg_infinity xs in
  let y_min = fold Float.min infinity ys and y_max = fold Float.max neg_infinity ys in
  (* avoid a degenerate range *)
  let pad v_min v_max = if v_max -. v_min < 1e-12 then (v_min -. 1.0, v_max +. 1.0) else (v_min, v_max) in
  let x_min, x_max = pad x_min x_max in
  let y_min, y_max = pad y_min y_max in
  let grid = Array.make_matrix t.height t.width ' ' in
  let place x y glyph =
    if usable t.x_scale x && usable t.y_scale y then begin
      let fx = (transform t.x_scale x -. x_min) /. (x_max -. x_min) in
      let fy = (transform t.y_scale y -. y_min) /. (y_max -. y_min) in
      let col = int_of_float (fx *. float_of_int (t.width - 1)) in
      let row = t.height - 1 - int_of_float (fy *. float_of_int (t.height - 1)) in
      grid.(row).(col) <- glyph
    end
  in
  List.iter
    (fun s -> List.iter (fun (x, y) -> place x y s.glyph) s.points)
    (List.rev t.series);
  let buf = Buffer.create (t.width * t.height * 2) in
  let back scale v = match scale with Linear_scale -> v | Log_scale -> 10.0 ** v in
  (* y-axis labels on the left edge, every quarter *)
  let y_tick row =
    let frac = 1.0 -. (float_of_int row /. float_of_int (t.height - 1)) in
    back t.y_scale (y_min +. (frac *. (y_max -. y_min)))
  in
  Buffer.add_string buf (Printf.sprintf "%s\n" t.y_label);
  for row = 0 to t.height - 1 do
    let label =
      if row mod ((t.height - 1) / 4) = 0 || row = t.height - 1 then
        Printf.sprintf "%9.2g |" (y_tick row)
      else String.make 9 ' ' ^ " |"
    in
    Buffer.add_string buf label;
    Buffer.add_string buf (String.init t.width (fun col -> grid.(row).(col)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 10 ' ' ^ "+" ^ String.make t.width '-');
  Buffer.add_char buf '\n';
  (* x tick labels at the quarters *)
  let x_tick frac = back t.x_scale (x_min +. (frac *. (x_max -. x_min))) in
  let labels =
    List.map (fun f -> Printf.sprintf "%.2g" (x_tick f)) [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  let line = Bytes.make (t.width + 11) ' ' in
  List.iteri
    (fun i label ->
      let pos = 11 + (i * (t.width - 1) / 4) - (String.length label / 2) in
      let pos = max 0 (min pos (Bytes.length line - String.length label)) in
      Bytes.blit_string label 0 line pos (String.length label))
    labels;
  Buffer.add_string buf (Bytes.to_string line);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make 10 ' ' ^ t.x_label ^ "\n");
  Buffer.add_string buf "\n";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  %c  %s\n" s.glyph s.name))
    (List.rev t.series);
  Buffer.contents buf
