(** ASCII line plots for terminal reproduction of the paper's figures.

    Supports multiple named series over a shared x-axis, linear or
    logarithmic on either axis (the paper's Figures 1 and 2 are log-log).
    Each series is drawn with its own glyph; collisions show the glyph of
    the last series drawn. Axis tick labels are printed in scientific
    notation. *)

type scale = Linear_scale | Log_scale

type t

val create :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  ?x_label:string ->
  ?y_label:string ->
  unit ->
  t
(** Default 72 x 24 plot area, log-log. *)

val add_series : t -> name:string -> glyph:char -> (float * float) list -> unit
(** Points with non-positive coordinates on a log axis are skipped.
    Raises [Invalid_argument] on an empty series or a duplicate glyph. *)

val render : t -> string
(** Raises [Failure] when no drawable points exist. *)
