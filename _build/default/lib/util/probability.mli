(** Probability utilities shared by the analytic models: hazard sequences,
    survival products and expected-lifetime summation.

    A {e hazard sequence} gives, for each unit time-step i (1-based), the
    probability h(i) that the system is compromised during step i given it
    survived steps 1..i-1. The expected lifetime in whole time-steps is
    EL = sum over k >= 1 of k * P(compromise in step k)
       = sum over k >= 1 of S(k-1) * h(k) * k,
    where S(k) = prod_{i<=k} (1 - h(i)) is the survival function. *)

val clamp01 : float -> float
(** Clamp to the closed unit interval. *)

val complement_product : float list -> float
(** [complement_product ps] is [1 - prod (1 - p)] over the list: the
    probability that at least one of independent events with probabilities
    [ps] occurs. Computed in log-space when possible for accuracy. *)

val at_least : k:int -> p:float -> n:int -> float
(** [at_least ~k ~p ~n] is P(Binomial(n, p) >= k). Raises
    [Invalid_argument] for [k < 0], [n < 0]. *)

val binomial_pmf : k:int -> p:float -> n:int -> float

val expected_lifetime : ?eps:float -> ?max_steps:int -> (int -> float) -> float
(** [expected_lifetime hazard] evaluates EL for the hazard sequence
    [hazard i] (i starting at 1). Summation stops when the remaining
    survival mass falls below [eps] (default 1e-12) or after [max_steps]
    (default 100_000_000) steps; in the latter case the partial sum plus a
    tail bound using the final hazard is returned. A hazard of 0 forever
    yields [infinity]. *)

val geometric_lifetime : float -> float
(** [geometric_lifetime p] is the closed-form EL = 1/p for a constant
    per-step hazard [p]; [infinity] when [p <= 0]. *)

val survival : (int -> float) -> int -> float
(** [survival hazard k] is S(k), the probability of surviving the first [k]
    steps. *)
