(** Plain-text table rendering for experiment output (figure/table rows). *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with the given column headers; columns default to
    right-alignment, which suits numeric output. *)

val set_align : t -> int -> align -> unit
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the row width differs from the header
    width. *)

val add_float_row : ?fmt:(float -> string) -> t -> float list -> unit
(** Formats each float (default [%.6g]) and appends the row. *)

val row_count : t -> int
val render : t -> string
(** Column-aligned rendering with a header separator line. *)

val to_csv : t -> string
(** Comma-separated rendering (values containing commas are quoted). *)
