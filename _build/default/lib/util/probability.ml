let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let complement_product ps =
  let log_surv =
    List.fold_left
      (fun acc p ->
        let p = clamp01 p in
        if p >= 1.0 then neg_infinity else acc +. log1p (-.p))
      0.0 ps
  in
  1.0 -. exp log_surv

let binomial_pmf ~k ~p ~n =
  if k < 0 || n < 0 then invalid_arg "Probability.binomial_pmf: negative argument";
  if k > n then 0.0
  else begin
    let p = clamp01 p in
    (* log-space binomial coefficient to avoid overflow for larger n *)
    let log_choose =
      let acc = ref 0.0 in
      for i = 1 to k do
        acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
      done;
      !acc
    in
    if p = 0.0 then (if k = 0 then 1.0 else 0.0)
    else if p = 1.0 then (if k = n then 1.0 else 0.0)
    else exp (log_choose +. (float_of_int k *. log p) +. (float_of_int (n - k) *. log1p (-.p)))
  end

let at_least ~k ~p ~n =
  if k < 0 || n < 0 then invalid_arg "Probability.at_least: negative argument";
  if k = 0 then 1.0
  else if k > n then 0.0
  else begin
    (* sum the smaller tail for accuracy *)
    let below = ref 0.0 in
    for j = 0 to k - 1 do
      below := !below +. binomial_pmf ~k:j ~p ~n
    done;
    clamp01 (1.0 -. !below)
  end

let geometric_lifetime p = if p <= 0.0 then infinity else 1.0 /. p

let expected_lifetime ?(eps = 1e-12) ?(max_steps = 100_000_000) hazard =
  let rec go k surv acc =
    if surv < eps then acc
    else if k > max_steps then
      (* bound the tail by treating the hazard as constant from here on *)
      let h = clamp01 (hazard k) in
      if h <= 0.0 then infinity else acc +. (surv *. (float_of_int k +. ((1.0 -. h) /. h)))
    else begin
      let h = clamp01 (hazard k) in
      if h <= 0.0 && surv = 1.0 && k > 1_000_000 then infinity
      else
        let acc = acc +. (surv *. h *. float_of_int k) in
        go (k + 1) (surv *. (1.0 -. h)) acc
    end
  in
  go 1 1.0 0.0

let survival hazard k =
  let rec go i acc = if i > k then acc else go (i + 1) (acc *. (1.0 -. clamp01 (hazard i))) in
  go 1 1.0
