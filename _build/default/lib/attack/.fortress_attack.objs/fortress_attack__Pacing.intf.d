lib/attack/pacing.mli:
