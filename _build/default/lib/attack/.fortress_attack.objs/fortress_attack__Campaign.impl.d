lib/attack/campaign.ml: Array Float Fortress_core Fortress_defense Fortress_net Fortress_replication Fortress_sim Fortress_util Knowledge List Pacing Printf
