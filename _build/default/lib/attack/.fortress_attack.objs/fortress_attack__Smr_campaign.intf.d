lib/attack/smr_campaign.mli: Fortress_core
