lib/attack/campaign.mli: Fortress_core Pacing
