lib/attack/knowledge.ml: Fortress_defense Fortress_util Hashtbl
