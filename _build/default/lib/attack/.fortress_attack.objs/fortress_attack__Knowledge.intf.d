lib/attack/knowledge.mli: Fortress_defense Fortress_util
