lib/attack/pacing.ml: Float Fortress_util List Printf String
