lib/attack/smr_campaign.ml: Array Fortress_core Fortress_defense Fortress_sim Fortress_util Knowledge
