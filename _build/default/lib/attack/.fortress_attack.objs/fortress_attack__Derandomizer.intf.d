lib/attack/derandomizer.mli: Fortress_defense Fortress_sim Fortress_util
