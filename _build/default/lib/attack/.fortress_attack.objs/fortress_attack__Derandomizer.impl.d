lib/attack/derandomizer.ml: Fortress_defense Fortress_sim Knowledge
