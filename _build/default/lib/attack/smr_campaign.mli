(** Attack campaign against the 1-tier SMR system (the paper's S0).

    S0's replicas are directly reachable, so every channel is a direct
    attack: each replica gets its own omega-probe stream per unit
    time-step against its own key. The system falls when more than f
    replicas are compromised {e simultaneously} — under proactive
    obfuscation a compromised replica is evicted (and re-keyed) when its
    batch cycles, so the attacker must land its second intrusion while the
    first still stands. Run together with
    {!Fortress_core.Smr_deployment.attach_schedule}. *)

type config = {
  omega : int;
  period : float;
  target_mode : Fortress_core.Obfuscation.mode;
  seed : int;
}

val default_config : config
(** omega 64, period 100.0, PO, seed 0. *)

type t

val launch : Fortress_core.Smr_deployment.t -> config -> t
val run_until_compromise : t -> max_steps:int -> int option
val compromised_at_step : t -> int option
val probes_sent : t -> int
val intrusions : t -> int
(** Individual replica compromises achieved (including ones later evicted
    by recovery). *)
