(** The phase-1 de-randomization attack of Shacham et al. (CCS 2004) and
    Sovarel et al. (USENIX Security 2005), driven end-to-end against a
    forking {!Fortress_defense.Daemon}.

    The attacker opens a connection, sends a probe carrying a guessed key,
    and relies on the close-on-crash observable: a closed connection means
    the guess was wrong (one key eliminated), a ["shell"] reply means the
    guess was the key. The loop continues — the forking daemon obligingly
    keeps serving fresh children — until the key is found or the probe
    budget is exhausted. *)

type result = {
  found_key : int option;  (** [None] if the budget ran out *)
  probes : int;
  crashes_caused : int;
  finished_at : float;  (** simulation time *)
}

val run :
  engine:Fortress_sim.Engine.t ->
  daemon:Fortress_defense.Daemon.t ->
  prng:Fortress_util.Prng.t ->
  ?max_probes:int ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Start the attack; [on_done] fires when the key is found or after
    [max_probes] (default: the whole key space) failures. *)
