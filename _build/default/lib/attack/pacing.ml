type t =
  | Uniform
  | Burst
  | Below_threshold of { window : float; threshold : int }

let check ~budget ~period =
  if budget <= 0 then invalid_arg "Pacing: budget must be positive";
  if period <= 0.0 then invalid_arg "Pacing: period must be positive"

let effective_budget t ~budget ~period =
  check ~budget ~period;
  match t with
  | Uniform | Burst -> budget
  | Below_threshold { window; threshold } ->
      if threshold <= 0 then 0
      else begin
        (* at most [threshold] probes per [window]: the sustainable rate is
           threshold / window probes per time unit *)
        let sustainable = float_of_int threshold /. window *. period in
        min budget (int_of_float (Float.floor sustainable))
      end

let offsets t ~budget ~period =
  check ~budget ~period;
  let n = effective_budget t ~budget ~period in
  if n = 0 then []
  else
    match t with
    | Uniform | Below_threshold _ ->
        (* even spread, strictly inside the step *)
        List.init n (fun i -> period *. float_of_int (i + 1) /. float_of_int (n + 1))
    | Burst ->
        (* everything packed into the first 1% of the step *)
        List.init n (fun i -> period *. 0.01 *. float_of_int (i + 1) /. float_of_int (n + 1))

let effective_kappa t ~omega ~period =
  if omega <= 0 then invalid_arg "Pacing.effective_kappa: omega must be positive";
  let eff = effective_budget t ~budget:omega ~period in
  Fortress_util.Probability.clamp01 (float_of_int eff /. float_of_int omega)

let to_string = function
  | Uniform -> "uniform"
  | Burst -> "burst"
  | Below_threshold { window; threshold } -> Printf.sprintf "below:%g:%d" window threshold

let of_string s =
  match String.split_on_char ':' s with
  | [ "uniform" ] -> Some Uniform
  | [ "burst" ] -> Some Burst
  | [ "below"; window; threshold ] -> (
      match (float_of_string_opt window, int_of_string_opt threshold) with
      | Some window, Some threshold when window > 0.0 && threshold >= 0 ->
          Some (Below_threshold { window; threshold })
      | _ -> None)
  | _ -> None
