(** Attacker pacing strategies.

    The paper's kappa coefficient exists because proxies log invalid
    requests per source over a window: an attacker who fires indiscriminately
    is blocked almost immediately, while one who paces probes under the
    detection threshold trades speed for stealth. A pacing strategy turns a
    per-step probe budget into concrete launch offsets within the step, and
    caps the budget when evading a known detector. *)

type t =
  | Uniform  (** spread the budget evenly across the step *)
  | Burst  (** fire everything at the start of the step *)
  | Below_threshold of { window : float; threshold : int }
      (** stay strictly under a detector: at most [threshold] probes per
          [window], spread evenly *)

val offsets : t -> budget:int -> period:float -> float list
(** [offsets t ~budget ~period] returns the launch instants, strictly
    inside [(0, period)], at which probes should fire; the list's length is
    the {e effective} budget — [Below_threshold] may return fewer than
    [budget]. Raises [Invalid_argument] for non-positive budget or
    period. *)

val effective_budget : t -> budget:int -> period:float -> int
(** Length of {!offsets} without materialising it. *)

val effective_kappa : t -> omega:int -> period:float -> float
(** The indirect-attack coefficient this pacing achieves against a clean
    window: effective budget over omega, clamped to [0, 1] — the bridge
    from a concrete detector configuration to the paper's abstract
    kappa. *)

val to_string : t -> string
val of_string : string -> t option
(** Parses ["uniform"], ["burst"], and ["below:<window>:<threshold>"]. *)
