(** The attack-vector / defence-layer matrix of paper section 2.1.

    Code-injection attacks exploit unchecked buffers, double frees, integer
    overflows and format-string errors to (1) inject code and (2) redirect
    control to it. W xor X pages, instruction-set randomization and heap
    randomization frustrate step (1) — but all three "are easily bypassed
    by return-to-libc attacks", which reuse existing code. Address-space
    randomization instead hides the {e addresses} step (2) needs, so it
    degrades return-to-libc too. This module encodes that matrix and
    computes, for a given defence stack, the attack vector a rational
    attacker picks and the effective key entropy a de-randomization
    campaign must defeat. *)

type vector =
  | Code_injection  (** inject shellcode and redirect control into it *)
  | Return_to_libc  (** reuse existing executable code *)

val all_vectors : vector list
val vector_to_string : vector -> string

type layer =
  | W_xor_x  (** non-executable data pages *)
  | Isr of Keyspace.t  (** instruction-set randomization *)
  | Heap_randomization of Keyspace.t
  | Aslr of Keyspace.t  (** address-space layout randomization *)
  | Got_randomization of Keyspace.t  (** TRR-style GOT relocation *)

val layer_to_string : layer -> string

type effect_ =
  | Hard_block  (** the vector cannot work at all through this layer *)
  | Keyed  (** works only with this layer's key guessed *)
  | No_effect

val effect_on : layer -> vector -> effect_
(** The section-2.1 matrix entry. *)

type assessment = {
  vector : vector;
  blocked : bool;  (** some layer hard-blocks this vector *)
  keyed_layers : layer list;  (** layers whose keys must all be guessed *)
  effective_keys : float;  (** product of the keyed layers' key-space sizes
                               (1 if none: the vector works unimpeded) *)
}

val assess : layer list -> vector -> assessment

val best_vector : layer list -> assessment option
(** The unblocked vector with the smallest effective key space — what a
    rational attacker runs. [None] when every vector is hard-blocked. *)

val alpha_against : layer list -> omega:int -> float
(** Per-step success probability of a de-randomization campaign with
    [omega] probes per step against the stack: omega / effective_keys for
    the best vector, clamped to [0, 1]; 0 when everything is blocked. *)

val matrix_table : layer list list -> Fortress_util.Table.t
(** One row per stack: best vector, effective entropy (bits), and alpha at
    omega = 256 — the defence-selection table the paper's section 2.1
    argues informally. *)
