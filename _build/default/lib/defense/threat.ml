type vector = Code_injection | Return_to_libc

let all_vectors = [ Code_injection; Return_to_libc ]

let vector_to_string = function
  | Code_injection -> "code-injection"
  | Return_to_libc -> "return-to-libc"

type layer =
  | W_xor_x
  | Isr of Keyspace.t
  | Heap_randomization of Keyspace.t
  | Aslr of Keyspace.t
  | Got_randomization of Keyspace.t

let layer_to_string = function
  | W_xor_x -> "w^x"
  | Isr _ -> "isr"
  | Heap_randomization _ -> "heap-rand"
  | Aslr _ -> "aslr"
  | Got_randomization _ -> "got-rand"

type effect_ = Hard_block | Keyed | No_effect

(* Section 2.1: W^X makes injected pages non-executable (absolute against
   injection, useless against code reuse); ISR garbles injected
   instructions unless the encoding key is known; heap randomization makes
   heap grooming for injection keyed; all three are bypassed by
   return-to-libc. ASLR and GOT randomization hide the addresses both
   vectors need. *)
let effect_on layer vector =
  match (layer, vector) with
  | W_xor_x, Code_injection -> Hard_block
  | W_xor_x, Return_to_libc -> No_effect
  | Isr _, Code_injection -> Keyed
  | Isr _, Return_to_libc -> No_effect
  | Heap_randomization _, Code_injection -> Keyed
  | Heap_randomization _, Return_to_libc -> No_effect
  | Aslr _, (Code_injection | Return_to_libc) -> Keyed
  | Got_randomization _, (Code_injection | Return_to_libc) -> Keyed

let keyspace_of = function
  | W_xor_x -> None
  | Isr ks | Heap_randomization ks | Aslr ks | Got_randomization ks -> Some ks

type assessment = {
  vector : vector;
  blocked : bool;
  keyed_layers : layer list;
  effective_keys : float;
}

let assess stack vector =
  let blocked = List.exists (fun layer -> effect_on layer vector = Hard_block) stack in
  let keyed_layers = List.filter (fun layer -> effect_on layer vector = Keyed) stack in
  let effective_keys =
    List.fold_left
      (fun acc layer ->
        match keyspace_of layer with
        | Some ks -> acc *. float_of_int (Keyspace.size ks)
        | None -> acc)
      1.0 keyed_layers
  in
  { vector; blocked; keyed_layers; effective_keys }

let best_vector stack =
  all_vectors
  |> List.map (assess stack)
  |> List.filter (fun a -> not a.blocked)
  |> List.sort (fun a b -> Float.compare a.effective_keys b.effective_keys)
  |> function
  | [] -> None
  | best :: _ -> Some best

let alpha_against stack ~omega =
  if omega <= 0 then invalid_arg "Threat.alpha_against: omega must be positive";
  match best_vector stack with
  | None -> 0.0
  | Some a -> Fortress_util.Probability.clamp01 (float_of_int omega /. a.effective_keys)

let matrix_table stacks =
  let t =
    Fortress_util.Table.create
      ~headers:[ "defence stack"; "best vector"; "effective entropy"; "alpha (omega=256)" ]
  in
  List.iter
    (fun stack ->
      let name = String.concat "+" (List.map layer_to_string stack) in
      match best_vector stack with
      | None ->
          Fortress_util.Table.add_row t [ name; "(all blocked)"; "-"; "0" ]
      | Some a ->
          Fortress_util.Table.add_row t
            [
              name;
              vector_to_string a.vector;
              Printf.sprintf "%.1f bits" (log (Float.max a.effective_keys 1.0) /. log 2.0);
              Printf.sprintf "%.3g" (alpha_against stack ~omega:256);
            ])
    stacks;
  t
