module Engine = Fortress_sim.Engine

type request = Probe of int | Legit of string

let encode_request = function
  | Probe k -> Printf.sprintf "probe:%d" k
  | Legit body -> "req:" ^ body

let decode_request s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      let tag = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "probe" -> Option.map (fun k -> Probe k) (int_of_string_opt rest)
      | "req" -> Some (Legit rest)
      | _ -> None)

type t = {
  engine : Engine.t;
  instance : Instance.t;
  restart_delay : float;
  conn_latency : float;
  mutable compromised : bool;
  mutable crash_count : int;
  mutable fork_count : int;
  mutable request_count : int;
}

let create ?(restart_delay = 0.1) engine ~instance =
  {
    engine;
    instance;
    restart_delay;
    conn_latency = 0.05;
    compromised = false;
    crash_count = 0;
    fork_count = 1;
    request_count = 0;
  }

let instance t = t.instance
let compromised t = t.compromised
let crash_count t = t.crash_count
let fork_count t = t.fork_count
let request_count t = t.request_count

let accept t ~on_reply ~on_crash_observed =
  let open_ = ref true in
  let serve request =
    if !open_ then
      match request with
      | Legit body ->
          t.request_count <- t.request_count + 1;
          ignore
            (Engine.schedule t.engine ~delay:t.conn_latency (fun () ->
                 if !open_ then on_reply ("ok:" ^ body)))
      | Probe guess -> (
          match Instance.probe t.instance ~guess with
          | Instance.Intrusion ->
              t.compromised <- true;
              Engine.record t.engine ~label:"daemon" "intrusion: correct key probed";
              ignore
                (Engine.schedule t.engine ~delay:t.conn_latency (fun () ->
                     if !open_ then on_reply "shell"))
          | Instance.Crash ->
              (* the child dies: close this connection, fork a replacement *)
              t.crash_count <- t.crash_count + 1;
              open_ := false;
              ignore
                (Engine.schedule t.engine ~delay:t.conn_latency (fun () ->
                     on_crash_observed ()));
              ignore
                (Engine.schedule t.engine ~delay:t.restart_delay (fun () ->
                     t.fork_count <- t.fork_count + 1)))
  in
  let submit request =
    if !open_ then
      ignore (Engine.schedule t.engine ~delay:t.conn_latency (fun () -> serve request))
  in
  (submit, fun () -> !open_)

let rekey t prng =
  Instance.rekey t.instance prng;
  t.compromised <- false

let recover t =
  Instance.recover t.instance;
  t.compromised <- false
