(** A randomized executable instance.

    An instance models a server or proxy executable whose memory layout (or
    instruction encoding, depending on the scheme) is determined by a secret
    key drawn from a {!Keyspace.t}. An attack probe carries a guessed key:
    a correct guess yields an intrusion, an incorrect one crashes the
    serving process. [rekey] models proactive obfuscation (a fresh random
    key); [recover] models proactive recovery (reinstall, same key). *)

type scheme =
  | Aslr  (** address-space layout randomization (PaX-style) *)
  | Isr  (** instruction-set randomization *)
  | Got_shuffle  (** global-offset-table randomization (TRR-style) *)
  | Heap  (** heap/allocator randomization *)

val pp_scheme : Format.formatter -> scheme -> unit
val scheme_of_string : string -> scheme option
val all_schemes : scheme list

type t

type outcome = Intrusion | Crash

val create : ?scheme:scheme -> Keyspace.t -> Fortress_util.Prng.t -> t
(** Draw an initial key (the start-up randomization). *)

val scheme : t -> scheme
val keyspace : t -> Keyspace.t
val epoch : t -> int
(** Number of rekey/recover operations applied so far. *)

val key : t -> int
(** The current secret key. Exposed for white-box tests and for the
    probe-level simulator's bookkeeping; attacker code must only use
    {!probe}. *)

val probe : t -> guess:int -> outcome
(** Raises [Invalid_argument] when the guess lies outside the key space. *)

val rekey : t -> Fortress_util.Prng.t -> unit
(** Proactive obfuscation: draw a fresh key uniformly (possibly equal to a
    previous one — sampling with replacement across epochs) and bump the
    epoch. *)

val set_key : t -> int -> unit
(** Install a specific key and bump the epoch. FORTRESS randomizes all
    primary-backup servers {e identically} so state updates need no
    marshalling layer; the deployment draws one key and installs it on every
    server with [set_key]. Raises [Invalid_argument] outside the key
    space. *)

val recover : t -> unit
(** Proactive recovery: reinstall the same executable — the key is
    unchanged, only the epoch advances (any attacker presence in the process
    is flushed). *)

val pp : Format.formatter -> t -> unit
