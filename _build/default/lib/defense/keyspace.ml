type t = { size : int }

let of_entropy_bits b =
  if b < 1 || b > 30 then invalid_arg "Keyspace.of_entropy_bits: need 1 <= bits <= 30";
  { size = 1 lsl b }

let of_size n =
  if n < 2 then invalid_arg "Keyspace.of_size: need at least 2 keys";
  { size = n }

let size t = t.size
let entropy_bits t = log (float_of_int t.size) /. log 2.0
let contains t k = k >= 0 && k < t.size
let random_key t prng = Fortress_util.Prng.int prng ~bound:t.size
let pax_aslr_32bit = of_entropy_bits 16
let pp ppf t = Format.fprintf ppf "chi=%d (%.1f bits)" t.size (entropy_bits t)
